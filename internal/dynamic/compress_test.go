package dynamic

import (
	"math/rand"
	"testing"

	"repro/pam"
)

// Compressed-ladder tests: Options.Compress travels in the prototype
// structure, so every level the ladder builds stores packed leaf
// blocks. The write buffer (bounded at FlushCap records) stays flat by
// design — its maps are zero values — which these tests pin too.

func compProto() testS {
	return pam.NewAugMap[int, int64, struct{}, pam.NoAug[int, int64]](pam.Options{Compress: pam.CompressInt()})
}

func newCompLadder() testLadder {
	return New[int, int64, testS, pam.NoAug[int, int64]](compProto())
}

// TestLadderCompressedLevels checks that a compressed prototype reaches
// every level structure the ladder builds, and that the levels really
// pack (physical bytes well under the flat layout's).
func TestLadderCompressedLevels(t *testing.T) {
	l := newCompLadder()
	const n = 8 * BufCap
	for i := 0; i < n; i++ {
		l = l.Insert(testBE, i, int64(i%97), nil)
	}
	levels := 0
	l.EachSide(func(sign int64, s testS) {
		levels++
		if !s.Tree().Compressed() {
			t.Fatal("ladder level built without compression despite compressed prototype")
		}
	})
	if levels == 0 {
		t.Fatalf("%d inserts left no ladder levels", n)
	}
	s := l.Condense(testBE)
	if !s.Tree().Compressed() {
		t.Fatal("Condense dropped the compressed layout")
	}
	stats := s.Tree().SpaceStats()
	if stats.CompressionRatio < 2 {
		t.Fatalf("condensed level compression ratio %.2f, want >= 2 for dense keys", stats.CompressionRatio)
	}
	if err := l.Validate(testBE); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestLadderCompressedDifferential mirrors TestLadderDifferential with
// a compressed prototype, running flat and compressed ladders through
// the same op sequence and demanding identical observable state.
func TestLadderCompressedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cl := newCompLadder()
	fl := New[int, int64, testS, pam.NoAug[int, int64]](testS{})
	m := map[int]int64{}
	for i := 0; i < 4000; i++ {
		k := rng.Intn(400)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			cl = cl.Insert(testBE, k, int64(i), addv)
			fl = fl.Insert(testBE, k, int64(i), addv)
			m[k] += int64(i)
		case 6, 7:
			cl = cl.Delete(testBE, k)
			fl = fl.Delete(testBE, k)
			delete(m, k)
		default:
			cv, cok := cl.Find(testBE, k)
			fv, fok := fl.Find(testBE, k)
			wv, wok := m[k]
			if cok != wok || cv != wv || fok != cok || fv != cv {
				t.Fatalf("step %d: Find(%d) = %d,%v compressed / %d,%v flat, oracle %d,%v",
					i, k, cv, cok, fv, fok, wv, wok)
			}
		}
		if i%500 == 499 {
			ladderMustAgree(t, cl, m, "compressed")
			ladderMustAgree(t, fl, m, "flat")
		}
	}
	ladderMustAgree(t, cl, m, "compressed final")
	ce, fe := cl.Entries(testBE), fl.Entries(testBE)
	if len(ce) != len(fe) {
		t.Fatalf("compressed ladder has %d entries, flat %d", len(ce), len(fe))
	}
	for i := range ce {
		if ce[i] != fe[i] {
			t.Fatalf("entry %d: %v compressed vs %v flat", i, ce[i], fe[i])
		}
	}
}

// TestLadderCompressedHydrate round-trips a compressed ladder through
// Dehydrate/Rehydrate: the rebuilt levels must come back compressed
// (the prototype supplies the options), shape-identical, and valid.
func TestLadderCompressedHydrate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	l := newCompLadder()
	m := map[int]int64{}
	for i := 0; i < 3*BufCap; i++ {
		k := rng.Intn(500)
		if rng.Intn(4) == 0 {
			l = l.Delete(testBE, k)
			delete(m, k)
		} else {
			l = l.Insert(testBE, k, int64(i), nil)
			m[k] = int64(i)
		}
	}
	st := l.Dehydrate(testBE)
	rl, err := New[int, int64, testS, pam.NoAug[int, int64]](compProto()).Rehydrate(testBE, st)
	if err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	ladderMustAgree(t, rl, m, "rehydrated")
	rl.EachSide(func(sign int64, s testS) {
		if !s.Tree().Compressed() {
			t.Fatal("rehydrated level lost compression")
		}
	})
	if got, want := rl.LevelRecordCounts(), l.CarryAll(testBE).LevelRecordCounts(); len(got) != len(want) {
		t.Fatalf("rehydrated level count %d, want %d", len(got), len(want))
	}
}

// FuzzDynamicLadder drives flat and compressed ladders through the
// same byte-decoded op program (with a small flush cap, so carries
// cascade constantly) against a map oracle.
func FuzzDynamicLadder(f *testing.F) {
	old := SetFlushCap(8)
	f.Cleanup(func() { SetFlushCap(old) })
	f.Add([]byte{})
	f.Add([]byte{0, 10, 1, 10, 0, 20, 2, 15, 0, 30})
	// Carry edges: a run of inserts past the flush boundary, then
	// cancelling deletes (whole-level annihilation).
	var carry []byte
	for i := 0; i < 20; i++ {
		carry = append(carry, 0, byte(i))
	}
	for i := 0; i < 20; i++ {
		carry = append(carry, 1, byte(i))
	}
	f.Add(carry)
	f.Fuzz(func(t *testing.T, prog []byte) {
		cl := newCompLadder()
		fl := New[int, int64, testS, pam.NoAug[int, int64]](testS{})
		m := map[int]int64{}
		for i := 0; i+1 < len(prog) && i < 160; i += 2 {
			op, k := prog[i], int(prog[i+1])
			switch op % 4 {
			case 0:
				v := int64(k) * 7
				cl = cl.Insert(testBE, k, v, nil)
				fl = fl.Insert(testBE, k, v, nil)
				m[k] = v
			case 1:
				cl = cl.Delete(testBE, k)
				fl = fl.Delete(testBE, k)
				delete(m, k)
			case 2:
				cl = cl.InsertDeferred(testBE, k, 1, addv)
				fl = fl.InsertDeferred(testBE, k, 1, addv)
				m[k]++
			case 3:
				cl = cl.CarryAll(testBE)
				fl = fl.CarryAll(testBE)
			}
			cv, cok := cl.Find(testBE, k)
			wv, wok := m[k]
			if cok != wok || (wok && cv != wv) {
				t.Fatalf("op %d: compressed Find(%d) = %d,%v, oracle %d,%v", i, k, cv, cok, wv, wok)
			}
		}
		ladderMustAgree(t, cl.CarryAll(testBE), m, "compressed")
		ladderMustAgree(t, fl.CarryAll(testBE), m, "flat")
	})
}
