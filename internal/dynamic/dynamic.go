// Package dynamic implements the shared dynamization engine that turns
// the build-once nested-augmentation structures (rangetree, segcount,
// stabbing) into dynamic ones supporting Insert and Delete with
// worst-case polylogarithmic queries.
//
// Those structures cannot afford single-key tree updates: their
// augmented values are themselves maps combined by union, so
// recomputing the augmentation along a root path costs up to O(n) per
// update. PR 2 layered each structure as {immutable bulk layer + one
// flat persistent update buffer}, which makes updates amortized polylog
// but leaves queries paying an O(|buffer|) tail (up to n/FoldRatio
// records) while updates are pending. This package replaces that single
// buffer with the logarithmic method (Bentley–Saxe): a Ladder of
// O(log n) immutable levels of geometrically increasing capacity, so
// no query ever scans an unbounded buffer.
//
//   - Level -1 (the write Buffer) absorbs single updates in O(log B)
//     for a constant capacity B = BufCap; queries scan it in O(B) =
//     O(1).
//   - Level i >= 0 is an immutable pair of static structures of the
//     consumer's own type (capacity BufCap << i records): Adds holds
//     live entries, Dels holds tombstones. Queries consult every
//     nonempty level — O(log n) of them, each answering in its own
//     polylog bound — and add the Adds contribution while subtracting
//     the Dels contribution.
//
// When the write buffer fills, it is flushed into a run and carried
// down the ladder exactly like incrementing a binary counter: while the
// next level is occupied, the run and that level merge (annihilating
// tombstones against the live entries they cancel) and the carry
// continues; the run settles in the first empty level. Each record is
// therefore rebuilt O(log n) times in total, each time by the
// consumer's parallel Build machinery, so updates stay amortized
// O(polylog n) while queries become worst-case O(polylog n).
//
// # The carry-propagation invariant
//
// Levels are ordered by age: every record in level i is newer than
// every record in level j > i, and the write buffer is newer than all
// levels. A tombstone always cancels exactly one live entry that is
// strictly older (deeper) than it, and carries the cancelled entry's
// value. Because carries always merge a contiguous, newest-first prefix
// of the ladder, this age ordering is preserved by every merge, and
// within any merged run at most one live entry and at most one
// tombstone per key survive annihilation:
//
//   - a surviving live entry is the key's current value;
//   - a surviving tombstone cancels a live entry deeper than the run.
//
// Consequently each level stores at most one record of each kind per
// key, lookups resolve a key at the first (newest) level holding any
// record for it — a live record means present, a tombstone means absent
// — and counting queries are exact under signed summation. A full
// cascade over every level (Entries/Condense) must consume every
// tombstone; a leftover tombstone is an invariant violation.
//
// All level structures are persistent pam maps (or consumer composites
// of them) and the level vector is copied on write, so the layered
// structures inherit the pam snapshot guarantee: an update returns a
// new handle capturing the level vector by reference, and every old
// handle keeps answering from exactly the contents it had.
//
// # Deferred carries and the background Carrier
//
// A carry that reaches a deep level rebuilds a large prefix of the
// ladder — an O(n) stall on whatever goroutine performs it. The
// deferred write path (InsertDeferred/DeleteDeferred) removes that
// stall from the writer: a full buffer spills into an overflow run (a
// small immutable level-shaped pair, O(BufCap) to build) appended to an
// oldest-first pending list instead of cascading. Queries consult
// overflow runs between the buffer and the levels — age order is
// buffer, newest run, ..., oldest run, level 0, ... — so the signed-sum
// semantics stay exact while runs are pending; CarryAll folds all
// pending runs (newest-first, preserving age order) and settles the
// result at the first level whose capacity holds it.
//
// Carrier + CarryPool run that settling off-thread: the single-owner
// Carrier captures (runs, levels) when a spill occurs, hands the pure
// merge to a shared worker pool, and installs the result only if no
// newer invalidation (Invalidate, used on rebalance) has discarded the
// source ladder. At most one carry per Carrier is in flight; past
// MaxPending spilled runs the writer blocks until the current carry
// lands — bounded memory, unbounded progress.
package dynamic

import (
	"sync/atomic"

	"repro/pam"
)

// BufCap is the default capacity of the level -1 write buffer: the
// number of buffered update records that triggers a flush into the
// ladder, and the worst-case number of extra records any query scans
// linearly. Small enough to be "O(1)" for the worst-case query bound,
// large enough that flush builds amortize their constant overhead and
// the ladder stays shallow (each halving of the capacity adds one
// level to every query).
const BufCap = 256

// flushCap is the active write-buffer capacity (see SetFlushCap).
var flushCap atomic.Int64

func init() { flushCap.Store(BufCap) }

// FlushCap reports the active write-buffer capacity.
func FlushCap() int { return int(flushCap.Load()) }

// SetFlushCap overrides the write-buffer capacity and returns the
// previous value. It exists for tests (like parallel.SetParallelism):
// a small capacity packs many carry cascades into a short update
// sequence. Set it before building any ladder and restore it after —
// Validate checks level capacities against the active value.
func SetFlushCap(c int) int {
	if c < 2 {
		c = 2
	}
	return int(flushCap.Swap(int64(c)))
}

// Buffer is the write buffer: the updates not yet flushed into the
// ladder levels. E fixes the key order (the augmentation slot is
// unused); K and V are the consumer structure's element and value types
// — set structures use struct{} values.
//
// Invariants (maintained by Insert/Delete given truthful lookups of the
// static levels beneath it):
//   - every Dels key is live in the static levels, with that value;
//   - every Adds key that is live in the static levels is also in Dels
//     (its static contribution is cancelled, the Adds value overrides).
//
// The logical contents of the buffered structure are therefore
// (static − Dels) ∪ Adds, with all three key sets involved in the
// union disjoint. The zero value is an empty buffer, immediately
// usable; all methods are persistent.
type Buffer[K, V any, E pam.Aug[K, V, struct{}]] struct {
	Adds pam.AugMap[K, V, struct{}, E]
	Dels pam.AugMap[K, V, struct{}, E]
}

// Pending returns the number of buffered update records.
func (b Buffer[K, V, E]) Pending() int64 { return b.Adds.Size() + b.Dels.Size() }

// IsEmpty reports whether no updates are buffered.
func (b Buffer[K, V, E]) IsEmpty() bool { return b.Adds.IsEmpty() && b.Dels.IsEmpty() }

// LogicalSize returns the entry count of the buffered structure given
// the entry count of the layers beneath it.
func (b Buffer[K, V, E]) LogicalSize(staticSize int64) int64 {
	return staticSize - b.Dels.Size() + b.Adds.Size()
}

// Insert returns the buffer with (k, v) inserted. staticVal and
// inStatic are the static levels' logical lookup of k. When k is
// logically present and combine is non-nil the stored value becomes
// combine(current, v); with a nil combine v overwrites.
func (b Buffer[K, V, E]) Insert(k K, v V, staticVal V, inStatic bool, combine func(old, new V) V) Buffer[K, V, E] {
	if combine != nil {
		if cur, ok := b.Adds.Find(k); ok {
			v = combine(cur, v)
		} else if inStatic && !b.Dels.Contains(k) {
			v = combine(staticVal, v)
		}
	}
	nb := b
	nb.Adds = b.Adds.Insert(k, v)
	if inStatic {
		// Cancel the static contribution; the Adds value is absolute.
		nb.Dels = b.Dels.Insert(k, staticVal)
	}
	return nb
}

// Delete returns the buffer with k removed from the logical contents.
// staticVal and inStatic are the static levels' logical lookup of k.
// Deleting an absent key is a no-op.
func (b Buffer[K, V, E]) Delete(k K, staticVal V, inStatic bool) Buffer[K, V, E] {
	nb := b
	nb.Adds = b.Adds.Delete(k)
	if inStatic {
		nb.Dels = b.Dels.Insert(k, staticVal)
	}
	return nb
}

// Contains reports whether k is logically present, given whether the
// static levels hold it live.
func (b Buffer[K, V, E]) Contains(k K, inStatic bool) bool {
	if b.Adds.Contains(k) {
		return true
	}
	return inStatic && !b.Dels.Contains(k)
}

// Find returns the logical value at k, given the static levels' lookup.
func (b Buffer[K, V, E]) Find(k K, staticVal V, inStatic bool) (V, bool) {
	if v, ok := b.Adds.Find(k); ok {
		return v, true
	}
	if inStatic && !b.Dels.Contains(k) {
		return staticVal, true
	}
	var zero V
	return zero, false
}

// Validate checks the Buffer invariants against the static levels'
// logical lookup function and value equality; it returns a non-nil
// error naming the first violation (for the structures' Validate
// methods).
func (b Buffer[K, V, E]) Validate(staticFind func(K) (V, bool), valEq func(a, b V) bool) error {
	var err error
	b.Dels.ForEach(func(k K, v V) bool {
		sv, ok := staticFind(k)
		if !ok {
			err = errTombstoneMissing
			return false
		}
		if valEq != nil && !valEq(sv, v) {
			err = errTombstoneValue
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	b.Adds.ForEach(func(k K, _ V) bool {
		if _, ok := staticFind(k); ok && !b.Dels.Contains(k) {
			err = errAddNotCancelled
			return false
		}
		return true
	})
	return err
}

type ladderError string

func (e ladderError) Error() string { return string(e) }

const (
	errTombstoneMissing = ladderError("dynamic: tombstone for a key not live in the static levels")
	errTombstoneValue   = ladderError("dynamic: tombstone value differs from the static levels'")
	errAddNotCancelled  = ladderError("dynamic: buffered insert shadows a live static entry without a tombstone")
	errDupLive          = ladderError("dynamic: two live entries for one key in a merged run")
	errDupTombstone     = ladderError("dynamic: two tombstones for one key in a merged run")
	errTombstoneValues  = ladderError("dynamic: tombstone annihilated a live entry with a different value")
	errOrphanTombstone  = ladderError("dynamic: tombstone without a matching live entry after a full cascade")
	errLevelSize        = ladderError("dynamic: level record count disagrees with its structure size")
	errLevelCap         = ladderError("dynamic: level exceeds its geometric capacity")
	errOverCap          = ladderError("dynamic: overflow run exceeds the write-buffer capacity")
)
