// Package dynamic implements the shared bulk-rebuild amortization that
// turns the build-once nested-augmentation structures (rangetree,
// segcount, stabbing) into dynamic ones supporting Insert and Delete.
//
// Those structures cannot afford single-key tree updates: their
// augmented values are themselves maps combined by union, so
// recomputing the augmentation along a root path costs up to O(n) per
// update. Following the secondary-structure design sketched for exactly
// these structures in the follow-up paper (arXiv:1803.08621), each
// dynamic structure instead keeps two layers:
//
//   - an immutable bulk layer — the existing nested-augmentation
//     structure, rebuilt only in bulk; and
//   - a Buffer — a pair of small plain persistent maps recording the
//     updates since the last rebuild: Adds holds inserted entries
//     (absolute values, overriding the bulk layer) and Dels holds
//     tombstones for bulk entries that were deleted or overwritten.
//
// Queries consult both layers: counts and sums add the Adds
// contribution and subtract the Dels contribution, reports concatenate
// the Adds matches and cancel the tombstoned ones. When the buffer
// grows past a fixed fraction of the bulk layer (ShouldFold) the owner
// folds it down: materialize the surviving entries, apply the buffer,
// and rebuild the bulk layer with the structure's existing parallel
// Build/Merge machinery. A fold over n elements costs O(n·polylog n)
// but is paid for by the Ω(n/FoldRatio) buffered updates that
// triggered it, so updates cost amortized O(polylog n) — against the
// O(n) a rebuild-per-update design pays — while queries pay at most
// O(|buffer|) = O(n/FoldRatio) extra on top of their polylog bulk cost
// (and nothing while the buffer is empty, the state Build and Merge
// always return).
//
// Both buffer maps are persistent pam maps and the bulk layer is only
// ever replaced wholesale, so the layered structures inherit the pam
// snapshot guarantee: an update returns a new handle and every old
// handle keeps answering from exactly the contents it had.
package dynamic

import "repro/pam"

// Fold policy: fold once at least FoldMin updates are buffered AND the
// buffer is at least 1/FoldRatio of the bulk layer. FoldMin keeps tiny
// structures from rebuilding on every update; FoldRatio trades query
// overhead (buffer scans, at most bulk/FoldRatio entries) against
// amortized update cost (O(FoldRatio · polylog n)).
const (
	FoldMin   = 16
	FoldRatio = 8
)

// ShouldFold reports whether a buffer holding pending updates over a
// bulk layer of bulkSize entries must be folded down.
func ShouldFold(pending, bulkSize int64) bool {
	return pending >= FoldMin && pending*FoldRatio >= bulkSize
}

// Buffer is the secondary layer: the updates not yet folded into the
// bulk structure. E fixes the key order (the augmentation slot is
// unused); K and V are the bulk structure's element and value types —
// set structures use struct{} values.
//
// Invariants (maintained by Insert/Delete given truthful bulk lookups):
//   - every Dels key is present in the bulk layer, with the bulk value;
//   - every Adds key that is present in the bulk layer is also in Dels
//     (its bulk contribution is cancelled, the Adds value overrides).
//
// The logical contents of the layered structure are therefore
// (bulk − Dels) ∪ Adds, with all three key sets involved in the union
// disjoint. The zero value is an empty buffer, immediately usable; all
// methods are persistent.
type Buffer[K, V any, E pam.Aug[K, V, struct{}]] struct {
	Adds pam.AugMap[K, V, struct{}, E]
	Dels pam.AugMap[K, V, struct{}, E]
}

// Pending returns the number of buffered update records (the size
// ShouldFold is fed).
func (b Buffer[K, V, E]) Pending() int64 { return b.Adds.Size() + b.Dels.Size() }

// IsEmpty reports whether no updates are buffered.
func (b Buffer[K, V, E]) IsEmpty() bool { return b.Adds.IsEmpty() && b.Dels.IsEmpty() }

// LogicalSize returns the entry count of the layered structure given
// the bulk layer's entry count.
func (b Buffer[K, V, E]) LogicalSize(bulkSize int64) int64 {
	return bulkSize - b.Dels.Size() + b.Adds.Size()
}

// ShouldFold reports whether the buffer must be folded into a bulk
// layer of bulkSize entries.
func (b Buffer[K, V, E]) ShouldFold(bulkSize int64) bool {
	return ShouldFold(b.Pending(), bulkSize)
}

// Insert returns the buffer with (k, v) inserted. bulkVal and inBulk
// are the bulk layer's lookup of k. When k is logically present and
// combine is non-nil the stored value becomes combine(current, v);
// with a nil combine v overwrites.
func (b Buffer[K, V, E]) Insert(k K, v V, bulkVal V, inBulk bool, combine func(old, new V) V) Buffer[K, V, E] {
	if combine != nil {
		if cur, ok := b.Adds.Find(k); ok {
			v = combine(cur, v)
		} else if inBulk && !b.Dels.Contains(k) {
			v = combine(bulkVal, v)
		}
	}
	nb := b
	nb.Adds = b.Adds.Insert(k, v)
	if inBulk {
		// Cancel the bulk contribution; the Adds value is absolute.
		nb.Dels = b.Dels.Insert(k, bulkVal)
	}
	return nb
}

// Delete returns the buffer with k removed from the logical contents.
// bulkVal and inBulk are the bulk layer's lookup of k. Deleting an
// absent key is a no-op.
func (b Buffer[K, V, E]) Delete(k K, bulkVal V, inBulk bool) Buffer[K, V, E] {
	nb := b
	nb.Adds = b.Adds.Delete(k)
	if inBulk {
		nb.Dels = b.Dels.Insert(k, bulkVal)
	}
	return nb
}

// Contains reports whether k is logically present, given whether the
// bulk layer holds it.
func (b Buffer[K, V, E]) Contains(k K, inBulk bool) bool {
	if b.Adds.Contains(k) {
		return true
	}
	return inBulk && !b.Dels.Contains(k)
}

// Find returns the logical value at k, given the bulk layer's lookup.
func (b Buffer[K, V, E]) Find(k K, bulkVal V, inBulk bool) (V, bool) {
	if v, ok := b.Adds.Find(k); ok {
		return v, true
	}
	if inBulk && !b.Dels.Contains(k) {
		return bulkVal, true
	}
	var zero V
	return zero, false
}

// Apply folds the buffer into a materialized bulk entry list: it drops
// the tombstoned entries and appends the Adds entries. The result's
// keys are pairwise distinct (by the Buffer invariants) but not sorted
// across the two parts; feed it to the structure's parallel Build. The
// input slice is consumed (filtered in place).
func (b Buffer[K, V, E]) Apply(bulk []pam.KV[K, V]) []pam.KV[K, V] {
	if b.IsEmpty() {
		return bulk
	}
	keep := bulk[:0]
	for _, e := range bulk {
		if !b.Dels.Contains(e.Key) {
			keep = append(keep, e)
		}
	}
	return append(keep, b.Adds.Entries()...)
}

// ApplyKeys is Apply for set structures that materialize bare keys.
func (b Buffer[K, V, E]) ApplyKeys(bulk []K) []K {
	if b.IsEmpty() {
		return bulk
	}
	keep := bulk[:0]
	for _, k := range bulk {
		if !b.Dels.Contains(k) {
			keep = append(keep, k)
		}
	}
	return append(keep, b.Adds.Keys()...)
}

// Validate checks the Buffer invariants against the bulk layer's
// lookup function and value equality; it returns a non-nil error
// naming the first violation (for the structures' Validate methods).
func (b Buffer[K, V, E]) Validate(bulkFind func(K) (V, bool), valEq func(a, b V) bool) error {
	var err error
	b.Dels.ForEach(func(k K, v V) bool {
		bv, ok := bulkFind(k)
		if !ok {
			err = errTombstoneMissing
			return false
		}
		if valEq != nil && !valEq(bv, v) {
			err = errTombstoneValue
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	b.Adds.ForEach(func(k K, _ V) bool {
		if _, ok := bulkFind(k); ok && !b.Dels.Contains(k) {
			err = errAddNotCancelled
			return false
		}
		return true
	})
	return err
}

type bufferError string

func (e bufferError) Error() string { return string(e) }

const (
	errTombstoneMissing = bufferError("dynamic: tombstone for a key absent from the bulk layer")
	errTombstoneValue   = bufferError("dynamic: tombstone value differs from the bulk layer's")
	errAddNotCancelled  = bufferError("dynamic: buffered insert shadows a live bulk entry without a tombstone")
)
