package dynamic

import (
	"sync"

	"repro/pam"
)

// Background carries: a Carrier moves a ladder's level merges off the
// updating goroutine. The updating goroutine writes through
// InsertDeferred/DeleteDeferred, so a full write buffer spills to a
// cheap overflow run instead of cascading; the Carrier captures the
// pending runs plus the level vector (both immutable persistent
// values), folds them on a shared CarryPool worker, and hands the
// finished level vector back for the owner to install — a pointer
// swap. Queries stay exact throughout because overflow runs are
// consulted like extra newest levels.

// CarryPool is a fixed pool of workers executing background carry
// jobs, shared by the carriers of one store.
type CarryPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// NewCarryPool starts a pool of the given number of workers (min 1).
func NewCarryPool(workers int) *CarryPool {
	if workers < 1 {
		workers = 1
	}
	p := &CarryPool{jobs: make(chan func(), workers)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// submit enqueues one job, blocking while every worker is busy and the
// queue is full. Callers must not hold a carrier's mutex: a worker
// finishing a job needs that mutex to deliver the result.
func (p *CarryPool) submit(f func()) { p.jobs <- f }

// Close waits for in-flight jobs and stops the workers. No submits may
// follow.
func (p *CarryPool) Close() {
	close(p.jobs)
	p.wg.Wait()
}

// Carrier schedules the background carries of one ladder. All entry
// points except Invalidate must be called from the single goroutine
// that owns the ladder (in serve, the shard goroutine); the mutex only
// coordinates with pool workers delivering results.
//
// At most one carry is in flight per carrier. While the pending
// overflow runs stay under maxPending the owner never waits; at
// maxPending the write blocks until the in-flight carry lands, which
// surfaces upstream as ordinary admission backpressure.
type Carrier[K, V, S any, E pam.Aug[K, V, struct{}]] struct {
	be         *Backend[K, V, S]
	pool       *CarryPool
	maxPending int

	mu       sync.Mutex
	cond     *sync.Cond
	gen      uint64 // bumped by Invalidate; stale results are dropped
	inflight bool
	done     bool
	consumed int
	result   []Level[S]
	carries  uint64 // completed carries, for stats/tests
}

// NewCarrier returns a carrier feeding the given pool. maxPending is
// the overflow-run count at which writes block on the in-flight carry
// (min 1).
func NewCarrier[K, V, S any, E pam.Aug[K, V, struct{}]](be *Backend[K, V, S], pool *CarryPool, maxPending int) *Carrier[K, V, S, E] {
	if maxPending < 1 {
		maxPending = 1
	}
	c := &Carrier[K, V, S, E]{be: be, pool: pool, maxPending: maxPending}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Insert writes through the carrier: the update is deferred
// (spill-don't-carry) and pending carries are managed — finished
// results install, new carries schedule, and the write blocks only at
// the maxPending bound.
func (c *Carrier[K, V, S, E]) Insert(l Ladder[K, V, S, E], k K, v V, combine func(old, new V) V) Ladder[K, V, S, E] {
	return c.manage(l.InsertDeferred(c.be, k, v, combine))
}

// Delete is the write-through counterpart of Insert for removals.
func (c *Carrier[K, V, S, E]) Delete(l Ladder[K, V, S, E], k K) Ladder[K, V, S, E] {
	return c.manage(l.DeleteDeferred(c.be, k))
}

// manage installs any finished carry into l, schedules a carry when
// runs are pending and none is in flight, and blocks while the pending
// count is at the limit.
func (c *Carrier[K, V, S, E]) manage(l Ladder[K, V, S, E]) Ladder[K, V, S, E] {
	for {
		c.mu.Lock()
		if c.done {
			l = l.withCarry(c.consumed, c.result)
			c.done, c.inflight, c.result = false, false, nil
			c.carries++
			c.mu.Unlock()
			continue
		}
		over := l.OverflowRuns()
		if over == 0 {
			c.mu.Unlock()
			return l
		}
		if !c.inflight {
			c.inflight = true
			gen := c.gen
			runs, levels := l.captureCarry()
			proto := l.Proto()
			c.mu.Unlock()
			c.pool.submit(func() {
				out := carryInto(c.be, proto, runs, levels)
				c.mu.Lock()
				if gen == c.gen {
					c.result, c.consumed, c.done = out, len(runs), true
					c.cond.Broadcast()
				}
				c.mu.Unlock()
			})
			continue
		}
		if over < c.maxPending {
			c.mu.Unlock()
			return l
		}
		// Backpressure: wait for the in-flight carry to land (or be
		// invalidated), then reconsider from the top.
		for !c.done && c.inflight {
			c.cond.Wait()
		}
		c.mu.Unlock()
	}
}

// Invalidate discards any in-flight or undelivered carry result. The
// owner calls it when the ladder the carrier serves is replaced
// wholesale (serve's rebalance rebuilds shard structures), so a carry
// captured from the old ladder can't be installed into the new one. It
// is safe to call from another goroutine while the owner is quiescent.
func (c *Carrier[K, V, S, E]) Invalidate() {
	c.mu.Lock()
	c.gen++
	c.done, c.inflight, c.result = false, false, nil
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Carries reports the number of background carries installed so far.
func (c *Carrier[K, V, S, E]) Carries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.carries
}
