package dynamic

import (
	"math"
	"math/bits"

	"repro/pam"
)

// Backend tells the generic ladder how to drive one consumer's static
// structure type S (for rangetree an outer map, for segcount and
// stabbing a composite of several maps). All functions must be
// stateless; per-instance configuration (pam.Options) travels in the
// prototype structure each Ladder carries.
type Backend[K, V, S any] struct {
	// Build constructs a static structure over items (distinct keys,
	// not necessarily sorted) with the prototype's options, in
	// parallel. proto's contents are ignored.
	Build func(proto S, items []pam.KV[K, V]) S
	// Entries materializes a structure's records in ascending key
	// order.
	Entries func(S) []pam.KV[K, V]
	// Size returns the record count of a structure.
	Size func(S) int64
	// Find looks a key up in a structure.
	Find func(S, K) (V, bool)
	// Less is the key order shared by the buffer, Entries, and Build.
	Less func(a, b K) bool
	// ValEq compares values for the annihilation debug check; nil skips
	// value checking (set structures).
	ValEq func(a, b V) bool
}

// Level is one immutable rung of the ladder: live entries and
// tombstones as two static structures of the consumer's type, plus
// their record counts (a zero structure has no options configured, so
// counts are tracked explicitly and consumers skip empty sides).
type Level[S any] struct {
	Adds, Dels   S
	AddsN, DelsN int64
}

// IsEmpty reports whether the level holds no records.
func (lv Level[S]) IsEmpty() bool { return lv.AddsN == 0 && lv.DelsN == 0 }

// Ladder is the logarithmic-method dynamization of one consumer
// structure: a constant-capacity write Buffer over O(log n) immutable
// levels of geometrically increasing capacity (level i holds at most
// (BufCap+1)<<i records). See the package comment for the design and the
// carry-propagation invariant.
//
// The zero value is an empty ladder whose levels build with default
// options; New configures a prototype. All methods are persistent: the
// level vector is copied on write and levels are immutable, so every
// old handle keeps answering from exactly the contents it had.
type Ladder[K, V, S any, E pam.Aug[K, V, struct{}]] struct {
	proto S
	buf   Buffer[K, V, E]
	// over holds spilled write-buffer runs whose carry into the levels
	// has been deferred (InsertDeferred/DeleteDeferred), oldest first.
	// Every run is newer than every level, and over[j] is newer than
	// over[i] for j > i, so queries treat the slice as extra top-of-
	// ladder levels visited newest first.
	over   []Level[S]
	levels []Level[S]
}

// New returns an empty ladder whose levels are built with the
// prototype's options.
func New[K, V, S any, E pam.Aug[K, V, struct{}]](proto S) Ladder[K, V, S, E] {
	return Ladder[K, V, S, E]{proto: proto}
}

// Proto returns the prototype structure (for consumers that need the
// configured options outside the ladder).
func (l Ladder[K, V, S, E]) Proto() S { return l.proto }

// Buf returns the write buffer, for the consumers' O(BufCap) query
// corrections.
func (l Ladder[K, V, S, E]) Buf() Buffer[K, V, E] { return l.buf }

// Levels returns the level vector, oldest records at the highest
// index. Callers must treat it as read-only and skip empty levels.
func (l Ladder[K, V, S, E]) Levels() []Level[S] { return l.levels }

// EachSide visits every nonempty level structure, newest first, with
// its sign: +1 for live entries, -1 for tombstones. Consumers sum
// signed per-structure query answers — each structure answers in its
// own polylog bound, and the ladder has O(log n) of them; signed
// summation cancels each tombstoned entry exactly.
func (l Ladder[K, V, S, E]) EachSide(f func(sign int64, s S)) {
	for i := len(l.over) - 1; i >= 0; i-- {
		if lv := l.over[i]; lv.AddsN > 0 {
			f(+1, lv.Adds)
		}
		if lv := l.over[i]; lv.DelsN > 0 {
			f(-1, lv.Dels)
		}
	}
	for _, lv := range l.levels {
		if lv.AddsN > 0 {
			f(+1, lv.Adds)
		}
		if lv.DelsN > 0 {
			f(-1, lv.Dels)
		}
	}
}

// Single returns the sole pure level structure when the ladder is
// fully condensed — empty write buffer, exactly one nonempty level,
// no tombstones — the state Build and Merge produce. Queries can take
// an allocation-light direct path over it instead of the signed
// multi-level aggregation.
func (l Ladder[K, V, S, E]) Single() (S, bool) {
	var zero S
	if !l.buf.IsEmpty() || len(l.over) > 0 {
		return zero, false
	}
	found := -1
	for i, lv := range l.levels {
		if lv.IsEmpty() {
			continue
		}
		if lv.DelsN > 0 || found >= 0 {
			return zero, false
		}
		found = i
	}
	if found < 0 {
		return zero, false
	}
	return l.levels[found].Adds, true
}

// LevelRecordCounts reports the per-level record counts (Adds + Dels),
// index 0 first — diagnostics for the geometric-growth tests.
func (l Ladder[K, V, S, E]) LevelRecordCounts() []int64 {
	out := make([]int64, len(l.levels))
	for i, lv := range l.levels {
		out[i] = lv.AddsN + lv.DelsN
	}
	return out
}

// Pending returns the number of buffered update records not yet
// flushed into the levels (always < BufCap after an update returns; 0
// after WithStatic, i.e. after the consumers' Build and Merge).
func (l Ladder[K, V, S, E]) Pending() int64 { return l.buf.Pending() }

// Size returns the number of logical entries.
func (l Ladder[K, V, S, E]) Size() int64 {
	var s int64
	for _, lv := range l.over {
		s += lv.AddsN - lv.DelsN
	}
	for _, lv := range l.levels {
		s += lv.AddsN - lv.DelsN
	}
	return l.buf.LogicalSize(s)
}

// records returns the total physical record count of the overflow runs
// and levels.
func (l Ladder[K, V, S, E]) records() int64 {
	var s int64
	for _, lv := range l.over {
		s += lv.AddsN + lv.DelsN
	}
	for _, lv := range l.levels {
		s += lv.AddsN + lv.DelsN
	}
	return s
}

// staticFind resolves k against the overflow runs and levels (ignoring
// the write buffer): the first (newest) structure holding any record
// for k decides — a live entry means present with that value, a
// tombstone means absent.
func (l Ladder[K, V, S, E]) staticFind(be *Backend[K, V, S], k K) (V, bool) {
	for i := len(l.over) - 1; i >= 0; i-- {
		if v, ok, decided := levelFind(be, l.over[i], k); decided {
			return v, ok
		}
	}
	for _, lv := range l.levels {
		if v, ok, decided := levelFind(be, lv, k); decided {
			return v, ok
		}
	}
	var zero V
	return zero, false
}

// levelFind resolves k against one level; decided reports whether the
// level held any record for k.
func levelFind[K, V, S any](be *Backend[K, V, S], lv Level[S], k K) (v V, ok, decided bool) {
	if lv.AddsN > 0 {
		if v, ok := be.Find(lv.Adds, k); ok {
			return v, true, true
		}
	}
	if lv.DelsN > 0 {
		if _, ok := be.Find(lv.Dels, k); ok {
			var zero V
			return zero, false, true
		}
	}
	var zero V
	return zero, false, false
}

// Find returns the logical value at k. O(log^2 n) worst case: the
// buffer lookup plus one lookup per level.
func (l Ladder[K, V, S, E]) Find(be *Backend[K, V, S], k K) (V, bool) {
	sv, ok := l.staticFind(be, k)
	return l.buf.Find(k, sv, ok)
}

// Contains reports whether k is logically present.
func (l Ladder[K, V, S, E]) Contains(be *Backend[K, V, S], k K) bool {
	_, ok := l.Find(be, k)
	return ok
}

// Insert returns the ladder with (k, v) inserted. When k is logically
// present and combine is non-nil the stored value becomes
// combine(current, v); with a nil combine v overwrites. Amortized
// O(polylog n): the record lands in the write buffer, whose flushes
// carry down the geometric levels.
func (l Ladder[K, V, S, E]) Insert(be *Backend[K, V, S], k K, v V, combine func(old, new V) V) Ladder[K, V, S, E] {
	sv, ok := l.staticFind(be, k)
	nl := l
	nl.buf = l.buf.Insert(k, v, sv, ok, combine)
	return nl.maybeFlush(be)
}

// Delete returns the ladder with k removed; deleting an absent key is
// a no-op. Amortized O(polylog n).
func (l Ladder[K, V, S, E]) Delete(be *Backend[K, V, S], k K) Ladder[K, V, S, E] {
	sv, ok := l.staticFind(be, k)
	nl := l
	nl.buf = l.buf.Delete(k, sv, ok)
	return nl.maybeFlush(be)
}

// fitLevel returns the smallest level index whose capacity cap<<i
// holds n records, for the active write-buffer capacity. Computed with
// bits.Len64 rather than by shifting cap upward: cap<<i wraps negative
// past i = 62 and a comparison loop against it never terminates for
// huge n.
func fitLevel(n int64) int {
	c := flushCap.Load()
	if n <= c {
		return 0
	}
	// Smallest i with c<<i >= n, i.e. with 2^i >= ceil(n/c).
	q := (n-1)/c + 1
	return bits.Len64(uint64(q - 1))
}

// levelCap returns level i's record capacity, saturating instead of
// wrapping for indices whose shifted capacity overflows int64.
func levelCap(i int) int64 {
	c := flushCap.Load() + 1
	if i >= 62 || c > math.MaxInt64>>i {
		return math.MaxInt64
	}
	return c << i
}

// WithStatic returns a ladder (with l's prototype) holding exactly the
// given pre-built structure and nothing else: one full level at the
// smallest fitting index, an empty buffer. It is how the consumers'
// Build and Merge produce fully condensed structures.
func (l Ladder[K, V, S, E]) WithStatic(be *Backend[K, V, S], s S) Ladder[K, V, S, E] {
	n := be.Size(s)
	if n == 0 {
		return Ladder[K, V, S, E]{proto: l.proto}
	}
	levels := make([]Level[S], fitLevel(n)+1)
	levels[len(levels)-1] = Level[S]{Adds: s, AddsN: n}
	return Ladder[K, V, S, E]{proto: l.proto, levels: levels}
}

// run is a merged, key-sorted batch of records in transit down the
// ladder: live entries and the tombstones whose targets are deeper.
type runRec[K, V any] struct {
	adds, dels []pam.KV[K, V]
}

func (r runRec[K, V]) size() int { return len(r.adds) + len(r.dels) }

// levelRun materializes a level's records.
func levelRun[K, V, S any](be *Backend[K, V, S], lv Level[S]) runRec[K, V] {
	var r runRec[K, V]
	if lv.AddsN > 0 {
		r.adds = be.Entries(lv.Adds)
	}
	if lv.DelsN > 0 {
		r.dels = be.Entries(lv.Dels)
	}
	return r
}

// bufRun materializes the write buffer's records.
func (l Ladder[K, V, S, E]) bufRun() runRec[K, V] {
	return runRec[K, V]{adds: l.buf.Adds.Entries(), dels: l.buf.Dels.Entries()}
}

// mergeRun merges a newer run over an older one, annihilating each
// newer tombstone against the older live entry it cancels. Both inputs
// are key-sorted with distinct keys; so is the result. Contiguity of
// the merged runs (the carry-propagation invariant) guarantees the
// surviving adds — and the surviving dels — are key-disjoint; a
// violation reports an error naming the bug.
func mergeRun[K, V, S any](be *Backend[K, V, S], newer, older runRec[K, V]) (runRec[K, V], error) {
	// Annihilate newer tombstones against older live entries.
	survDels, survAdds, err := annihilate(be, newer.dels, older.adds)
	if err != nil {
		return runRec[K, V]{}, err
	}
	adds, err := mergeDisjoint(be, newer.adds, survAdds, errDupLive)
	if err != nil {
		return runRec[K, V]{}, err
	}
	dels, err := mergeDisjoint(be, survDels, older.dels, errDupTombstone)
	if err != nil {
		return runRec[K, V]{}, err
	}
	return runRec[K, V]{adds: adds, dels: dels}, nil
}

// annihilate removes matching-key pairs from the two sorted slices:
// each tombstone in dels cancels the live entry of the same key in
// adds. It returns the surviving tombstones and surviving live
// entries.
func annihilate[K, V, S any](be *Backend[K, V, S], dels, adds []pam.KV[K, V]) (sd, sa []pam.KV[K, V], err error) {
	i, j := 0, 0
	for i < len(dels) && j < len(adds) {
		switch {
		case be.Less(dels[i].Key, adds[j].Key):
			sd = append(sd, dels[i])
			i++
		case be.Less(adds[j].Key, dels[i].Key):
			sa = append(sa, adds[j])
			j++
		default: // cancelled pair
			if be.ValEq != nil && !be.ValEq(dels[i].Val, adds[j].Val) {
				return nil, nil, errTombstoneValues
			}
			i++
			j++
		}
	}
	sd = append(sd, dels[i:]...)
	sa = append(sa, adds[j:]...)
	return sd, sa, nil
}

// mergeDisjoint merges two key-sorted, key-disjoint slices; a shared
// key reports dup.
func mergeDisjoint[K, V, S any](be *Backend[K, V, S], a, b []pam.KV[K, V], dup error) ([]pam.KV[K, V], error) {
	if len(a) == 0 {
		return b, nil
	}
	if len(b) == 0 {
		return a, nil
	}
	out := make([]pam.KV[K, V], 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case be.Less(a[i].Key, b[j].Key):
			out = append(out, a[i])
			i++
		case be.Less(b[j].Key, a[i].Key):
			out = append(out, b[j])
			j++
		default:
			return nil, dup
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, nil
}

// maybeFlush flushes the write buffer once it reaches capacity.
func (l Ladder[K, V, S, E]) maybeFlush(be *Backend[K, V, S]) Ladder[K, V, S, E] {
	if l.buf.Pending() < flushCap.Load() {
		return l
	}
	return l.flush(be)
}

// flush empties the write buffer into the ladder with binary-counter
// carry-propagation: the buffered records (folded together with any
// pending overflow runs, newest first) become a run that merges with
// each occupied level in turn (annihilating cancelled pairs) and
// settles in the first empty level that can hold it. Mass cancellation
// can shrink or even empty the run — a delete-heavy batch erases whole
// levels without leaving residue. When tombstones and their cancelled
// targets come to dominate the physical records, the whole ladder is
// condensed into one level of pure live entries, keeping the level
// count O(log(live size)).
func (l Ladder[K, V, S, E]) flush(be *Backend[K, V, S]) Ladder[K, V, S, E] {
	run := l.bufRun()
	for i := len(l.over) - 1; i >= 0; i-- {
		merged, err := mergeRun(be, run, levelRun(be, l.over[i]))
		if err != nil {
			panic(err)
		}
		run = merged
	}
	nl := Ladder[K, V, S, E]{proto: l.proto, levels: settle(be, l.proto, run, l.levels)}
	// Dead-record bound: physical records exceed twice the live size
	// only when at least half the ladder is tombstones plus their
	// cancelled targets; condensing then is paid for by the deletes
	// that created them.
	if live := nl.Size(); nl.records() > 2*live && nl.records() > 4*flushCap.Load() {
		return nl.condense(be)
	}
	return nl
}

// settle carries a run down a level vector: while a level is occupied
// it merges into the run; the run settles in the first empty level
// large enough to hold it. A single-buffer run always fits the first
// empty level (the prefix sum (cap+1)·2^i bounds it), but a coalesced
// multi-run carry can overflow it, in which case the carry keeps
// descending — merging any occupied levels it passes — until a fitting
// slot appears. The input vector is not mutated.
func settle[K, V, S any](be *Backend[K, V, S], proto S, run runRec[K, V], levels []Level[S]) []Level[S] {
	out := append([]Level[S](nil), levels...)
	i := 0
	for {
		if i < len(out) && !out[i].IsEmpty() {
			merged, err := mergeRun(be, run, levelRun(be, out[i]))
			if err != nil {
				panic(err)
			}
			run = merged
			out[i] = Level[S]{}
			i++
			continue
		}
		// Empty (or past-the-end) slot: stop at the first one with
		// capacity for the run — past the end included, since a coalesced
		// carry can outgrow even the level just beyond the old vector.
		if int64(run.size()) <= levelCap(i) {
			break
		}
		i++
	}
	if run.size() > 0 {
		lv := buildLevel(be, proto, run)
		for len(out) <= i {
			out = append(out, Level[S]{})
		}
		out[i] = lv
	}
	return out
}

// InsertDeferred is Insert for carrier-managed ladders: when the write
// buffer fills it spills to a pending overflow run — a cheap O(cap)
// build — instead of carrying down the levels synchronously. The carry
// is performed later, off the updating goroutine, by carryInto (see
// Carrier) or synchronously by CarryAll. Queries remain exact
// meanwhile: overflow runs are consulted like extra newest levels.
func (l Ladder[K, V, S, E]) InsertDeferred(be *Backend[K, V, S], k K, v V, combine func(old, new V) V) Ladder[K, V, S, E] {
	sv, ok := l.staticFind(be, k)
	nl := l
	nl.buf = l.buf.Insert(k, v, sv, ok, combine)
	return nl.maybeSpill(be)
}

// DeleteDeferred is Delete for carrier-managed ladders; see
// InsertDeferred.
func (l Ladder[K, V, S, E]) DeleteDeferred(be *Backend[K, V, S], k K) Ladder[K, V, S, E] {
	sv, ok := l.staticFind(be, k)
	nl := l
	nl.buf = l.buf.Delete(k, sv, ok)
	return nl.maybeSpill(be)
}

// maybeSpill converts a full write buffer into a pending overflow run.
func (l Ladder[K, V, S, E]) maybeSpill(be *Backend[K, V, S]) Ladder[K, V, S, E] {
	if l.buf.Pending() < flushCap.Load() {
		return l
	}
	lv := buildLevel(be, l.proto, l.bufRun())
	nl := Ladder[K, V, S, E]{proto: l.proto, levels: l.levels}
	nl.over = append(append(make([]Level[S], 0, len(l.over)+1), l.over...), lv)
	return nl
}

// OverflowRuns reports the number of spilled runs whose carry into the
// levels is still pending.
func (l Ladder[K, V, S, E]) OverflowRuns() int { return len(l.over) }

// CarryAll synchronously folds every pending overflow run into the
// levels (the write buffer stays buffered), returning a ladder with no
// pending carries. Dehydrate uses it so checkpoints never record
// overflow runs, and carriers use it to quiesce.
func (l Ladder[K, V, S, E]) CarryAll(be *Backend[K, V, S]) Ladder[K, V, S, E] {
	if len(l.over) == 0 {
		return l
	}
	return Ladder[K, V, S, E]{proto: l.proto, buf: l.buf, levels: carryInto(be, l.proto, l.over, l.levels)}
}

// captureCarry returns copies of the pending overflow runs (oldest
// first) and the level vector — the immutable inputs of a background
// carryInto.
func (l Ladder[K, V, S, E]) captureCarry() (runs, levels []Level[S]) {
	return append([]Level[S](nil), l.over...), append([]Level[S](nil), l.levels...)
}

// withCarry installs a finished carry: the consumed oldest overflow
// runs are dropped and the level vector is replaced. Runs spilled after
// the capture stay pending — they are newer than every record in the
// new levels, so the age ordering is preserved.
func (l Ladder[K, V, S, E]) withCarry(consumed int, levels []Level[S]) Ladder[K, V, S, E] {
	nl := Ladder[K, V, S, E]{proto: l.proto, buf: l.buf, levels: levels}
	if rest := l.over[consumed:]; len(rest) > 0 {
		nl.over = append([]Level[S](nil), rest...)
	}
	return nl
}

// carryInto is the background half of a deferred carry: it folds the
// captured overflow runs (oldest first, as stored) newest-first into a
// single run, settles it into the captured level vector, and condenses
// when dead records dominate. It is a pure function of immutable
// persistent values, so it can run on any goroutine while the owner
// keeps updating its ladder.
func carryInto[K, V, S any](be *Backend[K, V, S], proto S, runs, levels []Level[S]) []Level[S] {
	run := levelRun(be, runs[len(runs)-1])
	for i := len(runs) - 2; i >= 0; i-- {
		merged, err := mergeRun(be, run, levelRun(be, runs[i]))
		if err != nil {
			panic(err)
		}
		run = merged
	}
	out := settle(be, proto, run, levels)
	var live, recs int64
	for _, lv := range out {
		live += lv.AddsN - lv.DelsN
		recs += lv.AddsN + lv.DelsN
	}
	if recs > 2*live && recs > 4*flushCap.Load() {
		out = condenseLevels(be, proto, out)
	}
	return out
}

// condenseLevels cascades a closed level vector — every tombstone's
// target inside it — into a single level of pure live entries.
func condenseLevels[K, V, S any](be *Backend[K, V, S], proto S, levels []Level[S]) []Level[S] {
	var run runRec[K, V]
	for _, lv := range levels {
		if lv.IsEmpty() {
			continue
		}
		merged, err := mergeRun(be, run, levelRun(be, lv))
		if err != nil {
			panic(err)
		}
		run = merged
	}
	if len(run.dels) > 0 {
		panic(errOrphanTombstone)
	}
	if len(run.adds) == 0 {
		return nil
	}
	out := make([]Level[S], fitLevel(int64(len(run.adds)))+1)
	out[len(out)-1] = buildLevel(be, proto, run)
	return out
}

// buildLevel builds one immutable level from a run via the consumer's
// parallel Build.
func buildLevel[K, V, S any](be *Backend[K, V, S], proto S, run runRec[K, V]) Level[S] {
	var lv Level[S]
	if len(run.adds) > 0 {
		lv.Adds = be.Build(proto, run.adds)
		lv.AddsN = int64(len(run.adds))
	}
	if len(run.dels) > 0 {
		lv.Dels = be.Build(proto, run.dels)
		lv.DelsN = int64(len(run.dels))
	}
	return lv
}

// cascade folds the write buffer, every pending overflow run, and
// every level, newest first, into a single fully-annihilated run.
// After a full cascade every tombstone has met its target; a leftover
// one reports errOrphanTombstone.
func (l Ladder[K, V, S, E]) cascade(be *Backend[K, V, S]) (runRec[K, V], error) {
	run := l.bufRun()
	for i := len(l.over) - 1; i >= 0; i-- {
		merged, err := mergeRun(be, run, levelRun(be, l.over[i]))
		if err != nil {
			return runRec[K, V]{}, err
		}
		run = merged
	}
	for _, lv := range l.levels {
		if lv.IsEmpty() {
			continue
		}
		merged, err := mergeRun(be, run, levelRun(be, lv))
		if err != nil {
			return runRec[K, V]{}, err
		}
		run = merged
	}
	if len(run.dels) > 0 {
		return runRec[K, V]{}, errOrphanTombstone
	}
	return run, nil
}

// Entries materializes the logical contents in ascending key order.
func (l Ladder[K, V, S, E]) Entries(be *Backend[K, V, S]) []pam.KV[K, V] {
	run, err := l.cascade(be)
	if err != nil {
		panic(err)
	}
	return run.adds
}

// Condense builds the logical contents into a single static structure
// — the consumers' Merge condenses both sides, unions them with the
// structure's own parallel union, and re-wraps with WithStatic.
func (l Ladder[K, V, S, E]) Condense(be *Backend[K, V, S]) S {
	// Fast path: already a single pure level with nothing buffered.
	if l.buf.IsEmpty() && len(l.over) == 0 {
		nonEmpty := -1
		pure := true
		for i, lv := range l.levels {
			if lv.IsEmpty() {
				continue
			}
			if nonEmpty >= 0 || lv.DelsN > 0 {
				pure = false
				break
			}
			nonEmpty = i
		}
		if pure {
			if nonEmpty < 0 {
				return be.Build(l.proto, nil)
			}
			return l.levels[nonEmpty].Adds
		}
	}
	return be.Build(l.proto, l.Entries(be))
}

// condense rebuilds the whole ladder as a single level of pure live
// entries at the smallest fitting index.
func (l Ladder[K, V, S, E]) condense(be *Backend[K, V, S]) Ladder[K, V, S, E] {
	run, err := l.cascade(be)
	if err != nil {
		panic(err)
	}
	if len(run.adds) == 0 {
		return Ladder[K, V, S, E]{proto: l.proto}
	}
	levels := make([]Level[S], fitLevel(int64(len(run.adds)))+1)
	levels[len(levels)-1] = buildLevel(be, l.proto, run)
	return Ladder[K, V, S, E]{proto: l.proto, levels: levels}
}

// Validate checks the ladder invariants: the write buffer's contract
// against the static levels, per-level record counts, per-level
// capacity (level i holds at most (BufCap+1)<<i records), and the
// carry-propagation invariant via a full cascade — every tombstone
// must annihilate exactly one deeper live entry with an equal value,
// and no key may be live twice. It returns a non-nil error naming the
// first violation.
func (l Ladder[K, V, S, E]) Validate(be *Backend[K, V, S]) error {
	if err := l.buf.Validate(func(k K) (V, bool) { return l.staticFind(be, k) }, be.ValEq); err != nil {
		return err
	}
	for _, lv := range l.over {
		// An overflow run is one spilled write buffer, so it holds at
		// most cap+1 records (one update appends up to two).
		if lv.AddsN+lv.DelsN > flushCap.Load()+1 {
			return errOverCap
		}
		if (lv.AddsN > 0 && be.Size(lv.Adds) != lv.AddsN) ||
			(lv.DelsN > 0 && be.Size(lv.Dels) != lv.DelsN) {
			return errLevelSize
		}
	}
	for i, lv := range l.levels {
		// One update can append two records (a live entry plus the
		// tombstone cancelling its predecessor), so a flushed run holds
		// up to cap+1 records and level i at most (cap+1)<<i.
		if lv.AddsN+lv.DelsN > levelCap(i) {
			return errLevelCap
		}
		if (lv.AddsN > 0 && be.Size(lv.Adds) != lv.AddsN) ||
			(lv.DelsN > 0 && be.Size(lv.Dels) != lv.DelsN) {
			return errLevelSize
		}
	}
	_, err := l.cascade(be)
	return err
}
