package dynamic

import (
	"math"
	"math/rand"
	"testing"

	"repro/pam"
)

// TestFitLevelExtremes pins the shift-free fitLevel at sizes where the
// old `for cap<<i < n` loop overflowed: the shifted capacity wrapped
// negative around i = 55 (cap 256), staying below n forever. The
// arithmetic form must terminate and still return the minimal level
// whose capacity covers n.
func TestFitLevelExtremes(t *testing.T) {
	// cap = 256 = 2^8: fitLevel(n) is the smallest i with 2^(8+i) >= n.
	cases := []struct {
		n    int64
		want int
	}{
		{1 << 40, 32},
		{1<<40 + 1, 33},
		{1 << 62, 54},
		{math.MaxInt64, 55},
	}
	for _, c := range cases {
		if got := fitLevel(c.n); got != c.want {
			t.Errorf("fitLevel(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// The matching capacity check must saturate, not wrap: a level index
	// that would shift past 63 bits reports MaxInt64 capacity.
	if got := levelCap(62); got != math.MaxInt64 {
		t.Errorf("levelCap(62) = %d, want saturation", got)
	}
	if got := levelCap(3); got != (flushCap.Load()+1)<<3 {
		t.Errorf("levelCap(3) = %d", got)
	}

	// A tiny capacity pushes the level index to the very top of the
	// int64 range; the old loop shifted 2<<62 straight into the sign bit.
	old := SetFlushCap(2)
	defer SetFlushCap(old)
	if got := fitLevel(math.MaxInt64); got != 62 {
		t.Errorf("fitLevel(MaxInt64) with cap 2 = %d, want 62", got)
	}
	if got := levelCap(62); got != math.MaxInt64 {
		t.Errorf("levelCap(62) with cap 2 = %d, want saturation", got)
	}
}

// TestLadderDeferredDifferential drives the spill-don't-carry write
// path against the synchronous path and a map oracle: queries must be
// exact while overflow runs are pending, and CarryAll must settle to a
// ladder indistinguishable (logically) from the synchronous one.
func TestLadderDeferredDifferential(t *testing.T) {
	old := SetFlushCap(4) // tiny buffer so runs spill constantly
	defer SetFlushCap(old)

	rng := rand.New(rand.NewSource(7))
	sync := New[int, int64, testS, pam.NoAug[int, int64]](testS{})
	def := sync
	m := map[int]int64{}
	for i := 0; i < 3000; i++ {
		k := rng.Intn(200)
		if rng.Intn(4) < 3 {
			sync = sync.Insert(testBE, k, int64(i), addv)
			def = def.InsertDeferred(testBE, k, int64(i), addv)
			m[k] += int64(i)
		} else {
			sync = sync.Delete(testBE, k)
			def = def.DeleteDeferred(testBE, k)
			delete(m, k)
		}
		if i%97 == 0 {
			kq := rng.Intn(200)
			v, ok := def.Find(testBE, kq)
			wv, wok := m[kq]
			if ok != wok || v != wv {
				t.Fatalf("step %d: deferred Find(%d) = %d,%v, oracle %d,%v (overflow runs: %d)",
					i, kq, v, ok, wv, wok, def.OverflowRuns())
			}
		}
		if i%701 == 700 {
			def = def.CarryAll(testBE)
			if def.OverflowRuns() != 0 {
				t.Fatalf("step %d: CarryAll left %d overflow runs", i, def.OverflowRuns())
			}
			ladderMustAgree(t, def, m, "mid-carry")
		}
	}
	if def.OverflowRuns() == 0 {
		t.Fatal("deferred path never spilled an overflow run; test is vacuous")
	}
	if err := def.Validate(testBE); err != nil {
		t.Fatalf("Validate with pending runs: %v", err)
	}
	ladderMustAgree(t, def, m, "deferred, runs pending")
	def = def.CarryAll(testBE)
	ladderMustAgree(t, def, m, "deferred, settled")
	if got, want := def.Size(), sync.Size(); got != want {
		t.Fatalf("settled deferred Size = %d, sync %d", got, want)
	}
}

// TestCarrierBackground runs writes through a Carrier backed by a real
// worker pool: installs happen asynchronously, the final state must
// match the oracle, and at least one background carry must have landed.
func TestCarrierBackground(t *testing.T) {
	old := SetFlushCap(4)
	defer SetFlushCap(old)

	pool := NewCarryPool(2)
	defer pool.Close()
	c := NewCarrier[int, int64, testS, pam.NoAug[int, int64]](testBE, pool, 2)

	rng := rand.New(rand.NewSource(11))
	l := New[int, int64, testS, pam.NoAug[int, int64]](testS{})
	m := map[int]int64{}
	for i := 0; i < 5000; i++ {
		k := rng.Intn(300)
		if rng.Intn(4) < 3 {
			l = c.Insert(l, k, int64(i), addv)
			m[k] += int64(i)
		} else {
			l = c.Delete(l, k)
			delete(m, k)
		}
		if i%211 == 0 {
			kq := rng.Intn(300)
			v, ok := l.Find(testBE, kq)
			wv, wok := m[kq]
			if ok != wok || v != wv {
				t.Fatalf("step %d: Find(%d) = %d,%v, oracle %d,%v", i, kq, v, ok, wv, wok)
			}
		}
	}
	if c.Carries() == 0 {
		t.Fatal("no background carry ever landed")
	}
	l = l.CarryAll(testBE)
	ladderMustAgree(t, l, m, "settled")
}

// TestCarrierInvalidate checks the rebalance contract: after
// Invalidate, a carry captured from the discarded ladder must never
// install into the replacement.
func TestCarrierInvalidate(t *testing.T) {
	old := SetFlushCap(4)
	defer SetFlushCap(old)

	pool := NewCarryPool(1)
	defer pool.Close()
	c := NewCarrier[int, int64, testS, pam.NoAug[int, int64]](testBE, pool, 4)

	l := New[int, int64, testS, pam.NoAug[int, int64]](testS{})
	for i := 0; i < 64; i++ {
		l = c.Insert(l, i, 1, addv)
	}
	// Simulate a rebalance: the old ladder is discarded wholesale.
	c.Invalidate()
	fresh := New[int, int64, testS, pam.NoAug[int, int64]](testS{})
	m := map[int]int64{}
	for i := 0; i < 2000; i++ {
		k := 1000 + i%50
		fresh = c.Insert(fresh, k, 1, addv)
		m[k]++
	}
	fresh = fresh.CarryAll(testBE)
	ladderMustAgree(t, fresh, m, "post-invalidate")
	for i := 0; i < 64; i++ {
		if _, ok := fresh.Find(testBE, i); ok {
			t.Fatalf("key %d from the invalidated ladder leaked into the replacement", i)
		}
	}
}
