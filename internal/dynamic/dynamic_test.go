package dynamic

import (
	"math/rand"
	"testing"

	"repro/pam"
)

type buf = Buffer[int, int64, pam.NoAug[int, int64]]

func addv(a, b int64) int64 { return a + b }

// bulkOf builds a lookup function over a fixed static layer.
func bulkOf(m map[int]int64) func(int) (int64, bool) {
	return func(k int) (int64, bool) { v, ok := m[k]; return v, ok }
}

func TestBufferInsertDeleteFind(t *testing.T) {
	bulk := map[int]int64{1: 10, 2: 20}
	lookup := bulkOf(bulk)
	var b buf

	ins := func(b buf, k int, v int64) buf {
		bv, ok := lookup(k)
		return b.Insert(k, v, bv, ok, addv)
	}
	del := func(b buf, k int) buf {
		bv, ok := lookup(k)
		return b.Delete(k, bv, ok)
	}
	find := func(b buf, k int) (int64, bool) {
		bv, ok := lookup(k)
		return b.Find(k, bv, ok)
	}

	// Fresh key: stored as-is.
	b = ins(b, 5, 7)
	if v, ok := find(b, 5); !ok || v != 7 {
		t.Fatalf("Find(5) = %v, %v; want 7, true", v, ok)
	}
	// Key in the static layer: combined with its value, which is tombstoned.
	b = ins(b, 1, 3)
	if v, ok := find(b, 1); !ok || v != 13 {
		t.Fatalf("Find(1) = %v, %v; want 13, true", v, ok)
	}
	if !b.Dels.Contains(1) {
		t.Fatal("insert over a static key must tombstone the static entry")
	}
	// Key untouched by the buffer: answered from the static layer.
	if v, ok := find(b, 2); !ok || v != 20 {
		t.Fatalf("Find(2) = %v, %v; want 20, true", v, ok)
	}
	// Delete a static key: tombstone only.
	b = del(b, 2)
	if _, ok := find(b, 2); ok {
		t.Fatal("deleted static key still logically present")
	}
	// Re-insert after delete: the combine must NOT see the dead value.
	b = ins(b, 2, 4)
	if v, ok := find(b, 2); !ok || v != 4 {
		t.Fatalf("reinserted Find(2) = %v, %v; want 4, true", v, ok)
	}
	// Delete a buffered-only key.
	b = del(b, 5)
	if b.Contains(5, false) {
		t.Fatal("deleted buffered key still present")
	}
	// Deleting an absent key is a no-op.
	before := b.Pending()
	b = del(b, 99)
	if b.Pending() != before {
		t.Fatal("deleting an absent key changed the buffer")
	}
	if err := b.Validate(lookup, func(a, c int64) bool { return a == c }); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Logical size: static {1,2} both tombstoned, adds {1, 2}.
	if got := b.LogicalSize(int64(len(bulk))); got != 2 {
		t.Fatalf("LogicalSize = %d, want 2", got)
	}
}

func TestBufferPersistence(t *testing.T) {
	var b0 buf
	b1 := b0.Insert(1, 1, 0, false, addv)
	b2 := b1.Insert(2, 2, 0, false, addv)
	b3 := b2.Delete(1, 0, false)
	if b0.Pending() != 0 || b1.Pending() != 1 || b2.Pending() != 2 {
		t.Fatal("older buffer handles changed by later updates")
	}
	if !b2.Contains(1, false) || b3.Contains(1, false) {
		t.Fatal("snapshot isolation violated across Delete")
	}
}

func TestBufferValidateDetectsViolations(t *testing.T) {
	lookup := bulkOf(map[int]int64{1: 10})
	eq := func(a, b int64) bool { return a == b }

	var b buf
	b.Dels = b.Dels.Insert(9, 0) // tombstone for a key not in the static layer
	if err := b.Validate(lookup, eq); err == nil {
		t.Fatal("missing-key tombstone not detected")
	}
	var b2 buf
	b2.Dels = b2.Dels.Insert(1, 999) // wrong cached static value
	if err := b2.Validate(lookup, eq); err == nil {
		t.Fatal("stale tombstone value not detected")
	}
	var b3 buf
	b3.Adds = b3.Adds.Insert(1, 5) // shadows a live static entry, no tombstone
	if err := b3.Validate(lookup, eq); err == nil {
		t.Fatal("uncancelled shadowing insert not detected")
	}
}

// ---- the ladder over a plain sum map -------------------------------

type testS = pam.AugMap[int, int64, struct{}, pam.NoAug[int, int64]]
type testLadder = Ladder[int, int64, testS, pam.NoAug[int, int64]]

var testBE = &Backend[int, int64, testS]{
	Build:   func(proto testS, items []pam.KV[int, int64]) testS { return proto.Build(items, nil) },
	Entries: testS.Entries,
	Size:    testS.Size,
	Find:    testS.Find,
	Less:    func(a, b int) bool { return a < b },
	ValEq:   func(a, b int64) bool { return a == b },
}

func ladderMustAgree(t *testing.T, l testLadder, m map[int]int64, label string) {
	t.Helper()
	if got, want := l.Size(), int64(len(m)); got != want {
		t.Fatalf("%s: Size = %d, oracle %d", label, got, want)
	}
	for _, e := range l.Entries(testBE) {
		if v, ok := m[e.Key]; !ok || v != e.Val {
			t.Fatalf("%s: Entries has (%d, %d), oracle %v %v", label, e.Key, e.Val, v, ok)
		}
	}
	if err := l.Validate(testBE); err != nil {
		t.Fatalf("%s: Validate: %v", label, err)
	}
}

func TestLadderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := New[int, int64, testS, pam.NoAug[int, int64]](testS{})
	m := map[int]int64{}
	type snap struct {
		l testLadder
		m map[int]int64
	}
	var snaps []snap
	for i := 0; i < 4000; i++ {
		k := rng.Intn(400)
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert with combine
			l = l.Insert(testBE, k, int64(i), addv)
			m[k] += int64(i)
		case 6, 7: // delete
			l = l.Delete(testBE, k)
			delete(m, k)
		case 8: // point lookups
			v, ok := l.Find(testBE, k)
			wv, wok := m[k]
			if ok != wok || v != wv {
				t.Fatalf("step %d: Find(%d) = %d,%v, oracle %d,%v", i, k, v, ok, wv, wok)
			}
		case 9: // snapshot
			mc := make(map[int]int64, len(m))
			for k, v := range m {
				mc[k] = v
			}
			snaps = append(snaps, snap{l, mc})
		}
		if i%500 == 499 {
			ladderMustAgree(t, l, m, "current")
		}
	}
	ladderMustAgree(t, l, m, "final")
	for i, s := range snaps {
		if got, want := s.l.Size(), int64(len(s.m)); got != want {
			t.Fatalf("snapshot %d: Size = %d, frozen oracle %d", i, got, want)
		}
	}
	if len(snaps) > 0 {
		ladderMustAgree(t, snaps[0].l, snaps[0].m, "snapshot 0")
	}
}

// TestLadderGeometricLevels checks the binary-counter shape: after n
// distinct inserts, levels are capacity-bounded (level i holds at most
// BufCap<<i records), the level count is logarithmic, and the occupied
// levels mirror the binary representation of n/BufCap.
func TestLadderGeometricLevels(t *testing.T) {
	l := New[int, int64, testS, pam.NoAug[int, int64]](testS{})
	const n = 20 * BufCap
	for i := 0; i < n; i++ {
		l = l.Insert(testBE, i, 1, nil)
	}
	counts := l.LevelRecordCounts()
	var total int64 = l.Pending()
	for i, c := range counts {
		if c > int64(BufCap)<<i {
			t.Fatalf("level %d holds %d records, capacity %d", i, c, BufCap<<i)
		}
		total += c
	}
	if total != n {
		t.Fatalf("records across ladder = %d, want %d", total, n)
	}
	// 20*BufCap inserts = binary 10100 flushes: levels 2 and 4 occupied.
	want := map[int]int64{2: 4 * BufCap, 4: 16 * BufCap}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("level %d holds %d records, want %d (counter shape)", i, c, want[i])
		}
	}
}

// TestLadderDeleteCancelsLevels checks mass annihilation: deleting
// everything must cancel whole levels and condense back to an empty
// ladder with no tombstone residue.
func TestLadderDeleteCancelsLevels(t *testing.T) {
	l := New[int, int64, testS, pam.NoAug[int, int64]](testS{})
	const n = 8 * BufCap
	for i := 0; i < n; i++ {
		l = l.Insert(testBE, i, int64(i), nil)
	}
	snapshot := l
	for i := 0; i < n; i++ {
		l = l.Delete(testBE, i)
	}
	if l.Size() != 0 {
		t.Fatalf("Size after deleting all = %d", l.Size())
	}
	if got := l.records(); got != 0 {
		t.Fatalf("physical records after deleting all = %d, want 0 (condensed)", got)
	}
	if err := l.Validate(testBE); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The pre-delete snapshot still answers from its frozen contents.
	if snapshot.Size() != n {
		t.Fatalf("snapshot Size = %d, want %d", snapshot.Size(), n)
	}
	if v, ok := snapshot.Find(testBE, 7); !ok || v != 7 {
		t.Fatalf("snapshot Find(7) = %d, %v", v, ok)
	}
}

func TestLadderWithStaticAndCondense(t *testing.T) {
	items := make([]pam.KV[int, int64], 100)
	for i := range items {
		items[i] = pam.KV[int, int64]{Key: i, Val: int64(i)}
	}
	s := testBE.Build(testS{}, items)
	l := New[int, int64, testS, pam.NoAug[int, int64]](testS{}).WithStatic(testBE, s)
	if l.Pending() != 0 || l.Size() != 100 {
		t.Fatalf("WithStatic: pending %d size %d", l.Pending(), l.Size())
	}
	// Condense of a pure single level returns the level itself.
	if got := l.Condense(testBE); got.Size() != 100 {
		t.Fatalf("Condense size = %d", got.Size())
	}
	// After updates, Condense folds everything into live entries.
	l = l.Insert(testBE, 1000, 5, nil).Delete(testBE, 0)
	c := l.Condense(testBE)
	if c.Size() != 100 {
		t.Fatalf("Condense after updates size = %d, want 100", c.Size())
	}
	if _, ok := c.Find(0); ok {
		t.Fatal("deleted key survived Condense")
	}
	if v, ok := c.Find(1000); !ok || v != 5 {
		t.Fatalf("inserted key lost by Condense: %d, %v", v, ok)
	}
}

func TestFitLevel(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{0, 0}, {1, 0}, {BufCap, 0}, {BufCap + 1, 1}, {2 * BufCap, 1},
		{2*BufCap + 1, 2}, {64 * BufCap, 6},
	}
	for _, c := range cases {
		if got := fitLevel(c.n); got != c.want {
			t.Errorf("fitLevel(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
