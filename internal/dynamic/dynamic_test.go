package dynamic

import (
	"testing"

	"repro/pam"
)

type buf = Buffer[int, int64, pam.NoAug[int, int64]]

func addv(a, b int64) int64 { return a + b }

// bulkOf builds a lookup function over a fixed bulk layer.
func bulkOf(m map[int]int64) func(int) (int64, bool) {
	return func(k int) (int64, bool) { v, ok := m[k]; return v, ok }
}

func TestShouldFold(t *testing.T) {
	cases := []struct {
		pending, bulk int64
		want          bool
	}{
		{0, 0, false},
		{FoldMin - 1, 0, false}, // below the minimum, never
		{FoldMin, 0, true},      // empty bulk: fold at the minimum
		{FoldMin, FoldMin * FoldRatio, true},
		{FoldMin, FoldMin*FoldRatio + 1, false}, // buffer under bulk/ratio
		{1000, 8000, true},
		{999, 8000, false},
	}
	for _, c := range cases {
		if got := ShouldFold(c.pending, c.bulk); got != c.want {
			t.Errorf("ShouldFold(%d, %d) = %v, want %v", c.pending, c.bulk, got, c.want)
		}
	}
}

func TestBufferInsertDeleteFind(t *testing.T) {
	bulk := map[int]int64{1: 10, 2: 20}
	lookup := bulkOf(bulk)
	var b buf

	ins := func(b buf, k int, v int64) buf {
		bv, ok := lookup(k)
		return b.Insert(k, v, bv, ok, addv)
	}
	del := func(b buf, k int) buf {
		bv, ok := lookup(k)
		return b.Delete(k, bv, ok)
	}
	find := func(b buf, k int) (int64, bool) {
		bv, ok := lookup(k)
		return b.Find(k, bv, ok)
	}

	// Fresh key: stored as-is.
	b = ins(b, 5, 7)
	if v, ok := find(b, 5); !ok || v != 7 {
		t.Fatalf("Find(5) = %v, %v; want 7, true", v, ok)
	}
	// Key in bulk: combined with the bulk value, bulk copy tombstoned.
	b = ins(b, 1, 3)
	if v, ok := find(b, 1); !ok || v != 13 {
		t.Fatalf("Find(1) = %v, %v; want 13, true", v, ok)
	}
	if !b.Dels.Contains(1) {
		t.Fatal("insert over a bulk key must tombstone the bulk entry")
	}
	// Key untouched by the buffer: answered from bulk.
	if v, ok := find(b, 2); !ok || v != 20 {
		t.Fatalf("Find(2) = %v, %v; want 20, true", v, ok)
	}
	// Delete a bulk key: tombstone only.
	b = del(b, 2)
	if _, ok := find(b, 2); ok {
		t.Fatal("deleted bulk key still logically present")
	}
	// Re-insert after delete: the combine must NOT see the dead bulk value.
	b = ins(b, 2, 4)
	if v, ok := find(b, 2); !ok || v != 4 {
		t.Fatalf("reinserted Find(2) = %v, %v; want 4, true", v, ok)
	}
	// Delete a buffered-only key.
	b = del(b, 5)
	if b.Contains(5, false) {
		t.Fatal("deleted buffered key still present")
	}
	// Deleting an absent key is a no-op.
	before := b.Pending()
	b = del(b, 99)
	if b.Pending() != before {
		t.Fatal("deleting an absent key changed the buffer")
	}
	if err := b.Validate(lookup, func(a, c int64) bool { return a == c }); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Logical size: bulk {1,2} both tombstoned, adds {1, 2}.
	if got := b.LogicalSize(int64(len(bulk))); got != 2 {
		t.Fatalf("LogicalSize = %d, want 2", got)
	}
}

func TestBufferPersistence(t *testing.T) {
	var b0 buf
	b1 := b0.Insert(1, 1, 0, false, addv)
	b2 := b1.Insert(2, 2, 0, false, addv)
	b3 := b2.Delete(1, 0, false)
	if b0.Pending() != 0 || b1.Pending() != 1 || b2.Pending() != 2 {
		t.Fatal("older buffer handles changed by later updates")
	}
	if !b2.Contains(1, false) || b3.Contains(1, false) {
		t.Fatal("snapshot isolation violated across Delete")
	}
}

func TestBufferApply(t *testing.T) {
	bulk := map[int]int64{1: 10, 2: 20, 3: 30}
	lookup := bulkOf(bulk)
	var b buf
	bv, ok := lookup(2)
	b = b.Delete(2, bv, ok)
	bv, ok = lookup(3)
	b = b.Insert(3, 5, bv, ok, nil) // overwrite semantics
	b = b.Insert(7, 70, 0, false, nil)

	entries := []pam.KV[int, int64]{{Key: 1, Val: 10}, {Key: 2, Val: 20}, {Key: 3, Val: 30}}
	got := b.Apply(entries)
	want := map[int]int64{1: 10, 3: 5, 7: 70}
	if len(got) != len(want) {
		t.Fatalf("Apply returned %d entries, want %d: %v", len(got), len(want), got)
	}
	for _, e := range got {
		if want[e.Key] != e.Val {
			t.Fatalf("Apply entry %v, want value %d", e, want[e.Key])
		}
	}
	keys := b.ApplyKeys([]int{1, 2, 3})
	if len(keys) != 3 { // 1, 3 (re-added), 7
		t.Fatalf("ApplyKeys = %v, want three keys", keys)
	}
}

func TestBufferValidateDetectsViolations(t *testing.T) {
	lookup := bulkOf(map[int]int64{1: 10})
	eq := func(a, b int64) bool { return a == b }

	var b buf
	b.Dels = b.Dels.Insert(9, 0) // tombstone for a key not in bulk
	if err := b.Validate(lookup, eq); err == nil {
		t.Fatal("missing-key tombstone not detected")
	}
	var b2 buf
	b2.Dels = b2.Dels.Insert(1, 999) // wrong cached bulk value
	if err := b2.Validate(lookup, eq); err == nil {
		t.Fatal("stale tombstone value not detected")
	}
	var b3 buf
	b3.Adds = b3.Adds.Insert(1, 5) // shadows a live bulk entry, no tombstone
	if err := b3.Validate(lookup, eq); err == nil {
		t.Fatal("uncancelled shadowing insert not detected")
	}
}
