package dynamic

import "repro/pam"

// Ladder de/re-hydration: the durable-serving layer checkpoints a
// ladder-backed structure (rangetree.Tree inside serve.PointStore) by
// materializing its records per rung and rebuilds an equivalent ladder
// at recovery. The dehydrated form is records, not tree bytes: level
// structures are consumer composites (nested-augmentation maps) whose
// static Build machinery already reconstructs them in parallel, so
// re-hydration reuses Build per level instead of deserializing node
// graphs — the level shapes (and therefore the amortization state of
// the binary counter) are preserved exactly.

// LevelState is one dehydrated ladder rung: the live entries and the
// tombstones, each in ascending key order.
type LevelState[K, V any] struct {
	Adds, Dels []pam.KV[K, V]
}

// LadderState is a dehydrated ladder: the write buffer's records plus
// one LevelState per rung (empty rungs included, preserving level
// indices). FlushCap records the write-buffer capacity the ladder was
// built under; Rehydrate rejects a state whose capacities no longer fit
// (see SetFlushCap).
type LadderState[K, V any] struct {
	FlushCap         int64
	BufAdds, BufDels []pam.KV[K, V]
	Levels           []LevelState[K, V]
}

// Dehydrate materializes the ladder's exact layered contents — write
// buffer and per-level records, preserving rung boundaries — for
// serialization. Pending overflow runs (deferred carries) are folded
// into the levels first: the dehydrated format deliberately has no
// overflow notion, so a checkpoint taken mid-carry records the settled
// shape the background carry would eventually publish.
func (l Ladder[K, V, S, E]) Dehydrate(be *Backend[K, V, S]) LadderState[K, V] {
	l = l.CarryAll(be)
	st := LadderState[K, V]{
		FlushCap: flushCap.Load(),
		BufAdds:  l.buf.Adds.Entries(),
		BufDels:  l.buf.Dels.Entries(),
		Levels:   make([]LevelState[K, V], len(l.levels)),
	}
	for i, lv := range l.levels {
		if lv.AddsN > 0 {
			st.Levels[i].Adds = be.Entries(lv.Adds)
		}
		if lv.DelsN > 0 {
			st.Levels[i].Dels = be.Entries(lv.Dels)
		}
	}
	return st
}

// Rehydrate rebuilds a ladder from a dehydrated state, using l's
// prototype for options: each nonempty level side is rebuilt with the
// consumer's parallel Build, and the write buffer is rebuilt by sorted
// insertion. The result is validated (capacities, the buffer contract,
// and the carry-propagation invariant via a full cascade), so corrupt
// or crafted states yield an error, never a structurally broken ladder.
func (l Ladder[K, V, S, E]) Rehydrate(be *Backend[K, V, S], st LadderState[K, V]) (Ladder[K, V, S, E], error) {
	if st.FlushCap != flushCap.Load() {
		return Ladder[K, V, S, E]{}, errHydrateCap
	}
	nl := Ladder[K, V, S, E]{proto: l.proto}
	if len(st.Levels) > 0 {
		nl.levels = make([]Level[S], len(st.Levels))
		for i, lv := range st.Levels {
			nl.levels[i] = buildLevel(be, l.proto, runRec[K, V]{adds: lv.Adds, dels: lv.Dels})
		}
	}
	for _, e := range st.BufAdds {
		nl.buf.Adds = nl.buf.Adds.Insert(e.Key, e.Val)
	}
	for _, e := range st.BufDels {
		nl.buf.Dels = nl.buf.Dels.Insert(e.Key, e.Val)
	}
	if nl.buf.Pending() >= flushCap.Load() {
		return Ladder[K, V, S, E]{}, errHydrateBuf
	}
	if err := nl.Validate(be); err != nil {
		return Ladder[K, V, S, E]{}, err
	}
	return nl, nil
}

const (
	errHydrateCap = ladderError("dynamic: dehydrated ladder was built under a different flush capacity")
	errHydrateBuf = ladderError("dynamic: dehydrated write buffer at or above the flush capacity")
)
