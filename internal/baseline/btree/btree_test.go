package btree

import (
	"math/rand"
	"sync"
	"testing"
)

func TestInsertFind(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	m := map[uint64]int64{}
	for i := 0; i < 20_000; i++ {
		k := rng.Uint64() % 8000
		tr.Insert(k, int64(i))
		m[k] = int64(i)
	}
	if tr.Size() != len(m) {
		t.Fatalf("size %d want %d", tr.Size(), len(m))
	}
	for k, v := range m {
		if got, ok := tr.Find(k); !ok || got != v {
			t.Fatalf("Find(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	if _, ok := tr.Find(99_999_999); ok {
		t.Fatal("found absent key")
	}
}

func TestOrderedIteration(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		tr.Insert(rng.Uint64()%10_000, 1)
	}
	var prev uint64
	first := true
	count := 0
	tr.ForEach(func(k uint64, _ int64) bool {
		if !first && k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		count++
		return true
	})
	if count != tr.Size() {
		t.Fatalf("iterated %d, size %d", count, tr.Size())
	}
}

func TestRangeSum(t *testing.T) {
	tr := New()
	for i := uint64(1); i <= 1000; i++ {
		tr.Insert(i, int64(i))
	}
	if got := tr.RangeSum(10, 20); got != 165 {
		t.Fatalf("RangeSum = %d want 165", got)
	}
	if got := tr.RangeSum(1, 1000); got != 500500 {
		t.Fatalf("full RangeSum = %d", got)
	}
}

func TestConcurrentReads(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 50_000; i++ {
		tr.Insert(i*2, int64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10_000; i++ {
				k := rng.Uint64() % 100_000
				v, ok := tr.Find(k)
				if ok != (k%2 == 0) || (ok && v != int64(k/2)) {
					panic("btree concurrent read wrong")
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
