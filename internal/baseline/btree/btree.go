// Package btree is an in-memory B+-tree, the cache-friendly ordered-map
// baseline of Figure 6(a)/(b): wide nodes, values only in leaves, linked
// leaves for range scans. Writes are single-threaded (the benchmark
// shards the load phase); reads are safe concurrently once loading is
// done, which is the shape of the paper's YCSB-C comparison.
package btree

import "sort"

// degree is the fanout: each internal node holds up to degree-1 keys.
const degree = 32

// Tree is an ordered map from uint64 to int64.
type Tree struct {
	root  inode
	size  int
	first *leaf // leftmost leaf, for ordered scans
}

// inode is either *branch or *leaf.
type inode interface {
	find(k uint64) (int64, bool)
	// insert returns (newRight, splitKey, grew): newRight non-nil when
	// the node split, splitKey the first key of the right part.
	insert(k uint64, v int64) (inode, uint64, bool)
}

type branch struct {
	keys     []uint64 // len = len(children)-1; child i holds keys < keys[i]
	children []inode
}

type leaf struct {
	keys []uint64
	vals []int64
	next *leaf
}

// New returns an empty tree.
func New() *Tree {
	l := &leaf{}
	return &Tree{root: l, first: l}
}

// Size returns the number of entries.
func (t *Tree) Size() int { return t.size }

// Find returns the value at k. Safe for concurrent readers when no
// writer is active.
func (t *Tree) Find(k uint64) (int64, bool) { return t.root.find(k) }

// Insert adds or replaces (k, v). Single writer only.
func (t *Tree) Insert(k uint64, v int64) {
	right, splitKey, grew := t.root.insert(k, v)
	if right != nil {
		t.root = &branch{keys: []uint64{splitKey}, children: []inode{t.root, right}}
	}
	if grew {
		t.size++
	}
}

func (b *branch) childIdx(k uint64) int {
	return sort.Search(len(b.keys), func(i int) bool { return k < b.keys[i] })
}

func (b *branch) find(k uint64) (int64, bool) {
	return b.children[b.childIdx(k)].find(k)
}

func (b *branch) insert(k uint64, v int64) (inode, uint64, bool) {
	i := b.childIdx(k)
	right, splitKey, grew := b.children[i].insert(k, v)
	if right != nil {
		b.keys = append(b.keys, 0)
		copy(b.keys[i+1:], b.keys[i:])
		b.keys[i] = splitKey
		b.children = append(b.children, nil)
		copy(b.children[i+2:], b.children[i+1:])
		b.children[i+1] = right
		if len(b.children) > degree {
			mid := len(b.keys) / 2
			upKey := b.keys[mid]
			rb := &branch{
				keys:     append([]uint64(nil), b.keys[mid+1:]...),
				children: append([]inode(nil), b.children[mid+1:]...),
			}
			b.keys = b.keys[:mid]
			b.children = b.children[:mid+1]
			return rb, upKey, grew
		}
	}
	return nil, 0, grew
}

func (l *leaf) slot(k uint64) (int, bool) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= k })
	return i, i < len(l.keys) && l.keys[i] == k
}

func (l *leaf) find(k uint64) (int64, bool) {
	i, ok := l.slot(k)
	if !ok {
		return 0, false
	}
	return l.vals[i], true
}

func (l *leaf) insert(k uint64, v int64) (inode, uint64, bool) {
	i, ok := l.slot(k)
	if ok {
		l.vals[i] = v
		return nil, 0, false
	}
	l.keys = append(l.keys, 0)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = k
	l.vals = append(l.vals, 0)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = v
	if len(l.keys) > degree {
		mid := len(l.keys) / 2
		rl := &leaf{
			keys: append([]uint64(nil), l.keys[mid:]...),
			vals: append([]int64(nil), l.vals[mid:]...),
			next: l.next,
		}
		l.keys = l.keys[:mid]
		l.vals = l.vals[:mid]
		l.next = rl
		return rl, rl.keys[0], true
	}
	return nil, 0, true
}

// RangeSum scans [lo, hi] through the linked leaves.
func (t *Tree) RangeSum(lo, hi uint64) int64 {
	// Descend to the leaf containing lo.
	n := t.root
	for {
		b, ok := n.(*branch)
		if !ok {
			break
		}
		n = b.children[b.childIdx(lo)]
	}
	l := n.(*leaf)
	var s int64
	for l != nil {
		for i, k := range l.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return s
			}
			s += l.vals[i]
		}
		l = l.next
	}
	return s
}

// ForEach visits entries in key order.
func (t *Tree) ForEach(visit func(k uint64, v int64) bool) {
	for l := t.first; l != nil; l = l.next {
		for i, k := range l.keys {
			if !visit(k, l.vals[i]) {
				return
			}
		}
	}
}
