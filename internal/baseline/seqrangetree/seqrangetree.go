// Package seqrangetree is a dedicated sequential static 2D range tree,
// the stand-in for CGAL's dD range tree in Table 5 / Figure 6(e): a
// classic array-backed two-level structure — recursion on x with, at
// every internal node, the node's points sorted by y (plus prefix sums
// of weights for O(log^2 n) weight queries). Build is O(n log n) time
// and O(n log n) space; queries descend two logarithmic paths and merge
// O(log n) sorted y-arrays.
//
// Unlike the PAM-based rangetree package it is mutable-free, pointerless
// and sequential: the strongest form of the "hand-specialized sequential
// structure" the paper compares its generic parallel one against.
package seqrangetree

import (
	"slices"
	"sort"
)

// Point is a weighted point.
type Point struct {
	X, Y float64
	W    int64
}

// Tree is the range tree. The y-sorted node arrays are built lazily on
// the first query and cached — the oracle analogue of the bulk-rebuild
// idea — so persistent Insert/Delete cost O(n) array copies instead of
// an O(n log n) rebuild each, which keeps the large adversarial
// differential runs (thousands of updates) affordable. Not safe for
// concurrent use.
type Tree struct {
	// xs: points sorted by (x, y); the implicit segment tree over this
	// array defines the x-recursion.
	xs []Point
	// idx is the lazily-built static index over xs.
	idx *index
}

// index holds the per-node y-sorted arrays: node i covers xs[lo:hi];
// ys[i] holds those points sorted by y and pre[i] the exclusive prefix
// sums of their weights.
type index struct {
	ys  [][]Point
	pre [][]int64
}

func cmpXY(a, b Point) int {
	switch {
	case a.X < b.X:
		return -1
	case a.X > b.X:
		return 1
	case a.Y < b.Y:
		return -1
	case a.Y > b.Y:
		return 1
	default:
		return 0
	}
}

// Build constructs the tree over the points; the query index is built
// on first use.
func Build(pts []Point) *Tree {
	xs := make([]Point, len(pts))
	copy(xs, pts)
	slices.SortFunc(xs, cmpXY)
	return &Tree{xs: xs}
}

// ensure builds and caches the static index. O(n log n): each level of
// the implicit segment tree merges its children's y-sorted arrays.
func (t *Tree) ensure() *index {
	if t.idx != nil {
		return t.idx
	}
	ix := &index{
		ys:  make([][]Point, 4*len(t.xs)),
		pre: make([][]int64, 4*len(t.xs)),
	}
	if len(t.xs) > 0 {
		t.buildNode(ix, 1, 0, len(t.xs))
	}
	t.idx = ix
	return ix
}

func (t *Tree) buildNode(ix *index, node, lo, hi int) {
	if hi-lo == 1 {
		ix.ys[node] = t.xs[lo : lo+1]
		ix.pre[node] = []int64{0, t.xs[lo].W}
		return
	}
	mid := (lo + hi) / 2
	t.buildNode(ix, 2*node, lo, mid)
	t.buildNode(ix, 2*node+1, mid, hi)
	l, r := ix.ys[2*node], ix.ys[2*node+1]
	merged := make([]Point, 0, len(l)+len(r))
	i, j := 0, 0
	for i < len(l) && j < len(r) {
		if l[i].Y <= r[j].Y {
			merged = append(merged, l[i])
			i++
		} else {
			merged = append(merged, r[j])
			j++
		}
	}
	merged = append(merged, l[i:]...)
	merged = append(merged, r[j:]...)
	ix.ys[node] = merged
	pre := make([]int64, len(merged)+1)
	for k, p := range merged {
		pre[k+1] = pre[k] + p.W
	}
	ix.pre[node] = pre
}

// Size returns the number of points (duplicates included).
func (t *Tree) Size() int { return len(t.xs) }

// Points returns the stored points in (x, y) order (duplicates
// included).
func (t *Tree) Points() []Point {
	return append([]Point(nil), t.xs...)
}

// Insert returns a new tree with p added (t is unchanged): an O(n)
// sorted-array copy, with the O(n log n) index rebuild deferred to the
// next query — the linear per-update cost the PAM-based rangetree's
// ladder amortizes away. Duplicate coordinates coexist; queries sum
// their weights, matching rangetree's weight-adding Insert.
func (t *Tree) Insert(p Point) *Tree {
	i := sort.Search(len(t.xs), func(i int) bool { return cmpXY(t.xs[i], p) >= 0 })
	pts := make([]Point, 0, len(t.xs)+1)
	pts = append(pts, t.xs[:i]...)
	pts = append(pts, p)
	pts = append(pts, t.xs[i:]...)
	return &Tree{xs: pts}
}

// Delete returns a new tree without any point at (x, y), whatever the
// weights (t is unchanged); O(n) copy, index rebuild deferred,
// mirroring rangetree.Delete.
func (t *Tree) Delete(x, y float64) *Tree {
	pts := make([]Point, 0, len(t.xs))
	for _, p := range t.xs {
		if p.X != x || p.Y != y {
			pts = append(pts, p)
		}
	}
	return &Tree{xs: pts}
}

// xRange returns the index range [i, j) of points with XLo <= x <= XHi.
func (t *Tree) xRange(xlo, xhi float64) (int, int) {
	i := sort.Search(len(t.xs), func(i int) bool { return t.xs[i].X >= xlo })
	j := sort.Search(len(t.xs), func(i int) bool { return t.xs[i].X > xhi })
	return i, j
}

// QuerySum returns the weight sum inside the closed rectangle.
// O(log^2 n) once the index is built.
func (t *Tree) QuerySum(xlo, xhi, ylo, yhi float64) int64 {
	if len(t.xs) == 0 {
		return 0
	}
	i, j := t.xRange(xlo, xhi)
	if i >= j {
		return 0
	}
	return t.querySum(t.ensure(), 1, 0, len(t.xs), i, j, ylo, yhi)
}

func (t *Tree) querySum(ix *index, node, lo, hi, i, j int, ylo, yhi float64) int64 {
	if j <= lo || hi <= i {
		return 0
	}
	if i <= lo && hi <= j {
		ys := ix.ys[node]
		a := sort.Search(len(ys), func(k int) bool { return ys[k].Y >= ylo })
		b := sort.Search(len(ys), func(k int) bool { return ys[k].Y > yhi })
		if a >= b {
			return 0
		}
		return ix.pre[node][b] - ix.pre[node][a]
	}
	mid := (lo + hi) / 2
	return t.querySum(ix, 2*node, lo, mid, i, j, ylo, yhi) +
		t.querySum(ix, 2*node+1, mid, hi, i, j, ylo, yhi)
}

// ReportAll returns the points inside the closed rectangle.
// O(log^2 n + k) once the index is built.
func (t *Tree) ReportAll(xlo, xhi, ylo, yhi float64) []Point {
	if len(t.xs) == 0 {
		return nil
	}
	i, j := t.xRange(xlo, xhi)
	var out []Point
	if i >= j {
		return nil
	}
	t.report(t.ensure(), 1, 0, len(t.xs), i, j, ylo, yhi, &out)
	return out
}

func (t *Tree) report(ix *index, node, lo, hi, i, j int, ylo, yhi float64, out *[]Point) {
	if j <= lo || hi <= i {
		return
	}
	if i <= lo && hi <= j {
		ys := ix.ys[node]
		a := sort.Search(len(ys), func(k int) bool { return ys[k].Y >= ylo })
		for ; a < len(ys) && ys[a].Y <= yhi; a++ {
			*out = append(*out, ys[a])
		}
		return
	}
	mid := (lo + hi) / 2
	t.report(ix, 2*node, lo, mid, i, j, ylo, yhi, out)
	t.report(ix, 2*node+1, mid, hi, i, j, ylo, yhi, out)
}
