// Package seqrangetree is a dedicated sequential static 2D range tree,
// the stand-in for CGAL's dD range tree in Table 5 / Figure 6(e): a
// classic array-backed two-level structure — recursion on x with, at
// every internal node, the node's points sorted by y (plus prefix sums
// of weights for O(log^2 n) weight queries). Build is O(n log n) time
// and O(n log n) space; queries descend two logarithmic paths and merge
// O(log n) sorted y-arrays.
//
// Unlike the PAM-based rangetree package it is mutable-free, pointerless
// and sequential: the strongest form of the "hand-specialized sequential
// structure" the paper compares its generic parallel one against.
package seqrangetree

import (
	"slices"
	"sort"
)

// Point is a weighted point.
type Point struct {
	X, Y float64
	W    int64
}

// Tree is the static range tree.
type Tree struct {
	// xs: points sorted by (x, y); the implicit segment tree over this
	// array defines the x-recursion.
	xs []Point
	// node i covers xs[lo:hi]; ys[i] holds those points sorted by y and
	// pre[i] the exclusive prefix sums of their weights.
	ys  [][]Point
	pre [][]int64
}

// Build constructs the tree. O(n log n): each level of the implicit
// segment tree merges its children's y-sorted arrays.
func Build(pts []Point) *Tree {
	xs := make([]Point, len(pts))
	copy(xs, pts)
	slices.SortFunc(xs, func(a, b Point) int {
		switch {
		case a.X < b.X:
			return -1
		case a.X > b.X:
			return 1
		case a.Y < b.Y:
			return -1
		case a.Y > b.Y:
			return 1
		default:
			return 0
		}
	})
	t := &Tree{xs: xs}
	if len(xs) == 0 {
		return t
	}
	t.ys = make([][]Point, 4*len(xs))
	t.pre = make([][]int64, 4*len(xs))
	t.build(1, 0, len(xs))
	return t
}

func (t *Tree) build(node, lo, hi int) {
	if hi-lo == 1 {
		t.ys[node] = t.xs[lo : lo+1]
		t.pre[node] = []int64{0, t.xs[lo].W}
		return
	}
	mid := (lo + hi) / 2
	t.build(2*node, lo, mid)
	t.build(2*node+1, mid, hi)
	l, r := t.ys[2*node], t.ys[2*node+1]
	merged := make([]Point, 0, len(l)+len(r))
	i, j := 0, 0
	for i < len(l) && j < len(r) {
		if l[i].Y <= r[j].Y {
			merged = append(merged, l[i])
			i++
		} else {
			merged = append(merged, r[j])
			j++
		}
	}
	merged = append(merged, l[i:]...)
	merged = append(merged, r[j:]...)
	t.ys[node] = merged
	pre := make([]int64, len(merged)+1)
	for k, p := range merged {
		pre[k+1] = pre[k] + p.W
	}
	t.pre[node] = pre
}

// Size returns the number of points (duplicates included).
func (t *Tree) Size() int { return len(t.xs) }

// Points returns the stored points in (x, y) order (duplicates
// included).
func (t *Tree) Points() []Point {
	return append([]Point(nil), t.xs...)
}

// Insert returns a new tree with p added (t is unchanged): the naive
// dynamic baseline — a full O(n log n) rebuild per update, the linear
// cost the PAM-based rangetree's buffered updates amortize away.
// Duplicate coordinates coexist; queries sum their weights, matching
// rangetree's weight-adding Insert.
func (t *Tree) Insert(p Point) *Tree {
	pts := make([]Point, 0, len(t.xs)+1)
	pts = append(pts, t.xs...)
	pts = append(pts, p)
	return Build(pts)
}

// Delete returns a new tree without any point at (x, y), whatever the
// weights (t is unchanged); full rebuild, mirroring rangetree.Delete.
func (t *Tree) Delete(x, y float64) *Tree {
	pts := make([]Point, 0, len(t.xs))
	for _, p := range t.xs {
		if p.X != x || p.Y != y {
			pts = append(pts, p)
		}
	}
	return Build(pts)
}

// xRange returns the index range [i, j) of points with XLo <= x <= XHi.
func (t *Tree) xRange(xlo, xhi float64) (int, int) {
	i := sort.Search(len(t.xs), func(i int) bool { return t.xs[i].X >= xlo })
	j := sort.Search(len(t.xs), func(i int) bool { return t.xs[i].X > xhi })
	return i, j
}

// QuerySum returns the weight sum inside the closed rectangle.
// O(log^2 n).
func (t *Tree) QuerySum(xlo, xhi, ylo, yhi float64) int64 {
	if len(t.xs) == 0 {
		return 0
	}
	i, j := t.xRange(xlo, xhi)
	if i >= j {
		return 0
	}
	return t.querySum(1, 0, len(t.xs), i, j, ylo, yhi)
}

func (t *Tree) querySum(node, lo, hi, i, j int, ylo, yhi float64) int64 {
	if j <= lo || hi <= i {
		return 0
	}
	if i <= lo && hi <= j {
		ys := t.ys[node]
		a := sort.Search(len(ys), func(k int) bool { return ys[k].Y >= ylo })
		b := sort.Search(len(ys), func(k int) bool { return ys[k].Y > yhi })
		if a >= b {
			return 0
		}
		return t.pre[node][b] - t.pre[node][a]
	}
	mid := (lo + hi) / 2
	return t.querySum(2*node, lo, mid, i, j, ylo, yhi) +
		t.querySum(2*node+1, mid, hi, i, j, ylo, yhi)
}

// ReportAll returns the points inside the closed rectangle.
// O(log^2 n + k).
func (t *Tree) ReportAll(xlo, xhi, ylo, yhi float64) []Point {
	if len(t.xs) == 0 {
		return nil
	}
	i, j := t.xRange(xlo, xhi)
	var out []Point
	if i >= j {
		return nil
	}
	t.report(1, 0, len(t.xs), i, j, ylo, yhi, &out)
	return out
}

func (t *Tree) report(node, lo, hi, i, j int, ylo, yhi float64, out *[]Point) {
	if j <= lo || hi <= i {
		return
	}
	if i <= lo && hi <= j {
		ys := t.ys[node]
		a := sort.Search(len(ys), func(k int) bool { return ys[k].Y >= ylo })
		for ; a < len(ys) && ys[a].Y <= yhi; a++ {
			*out = append(*out, ys[a])
		}
		return
	}
	mid := (lo + hi) / 2
	t.report(2*node, lo, mid, i, j, ylo, yhi, out)
	t.report(2*node+1, mid, hi, i, j, ylo, yhi, out)
}
