package seqrangetree

import (
	"math/rand"
	"testing"
)

func naiveSum(pts []Point, xlo, xhi, ylo, yhi float64) int64 {
	var s int64
	for _, p := range pts {
		if p.X >= xlo && p.X <= xhi && p.Y >= ylo && p.Y <= yhi {
			s += p.W
		}
	}
	return s
}

func TestQuerySumMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 3000)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, W: int64(rng.Intn(50))}
	}
	tr := Build(pts)
	if tr.Size() != len(pts) {
		t.Fatalf("size %d", tr.Size())
	}
	for trial := 0; trial < 300; trial++ {
		x1, x2 := rng.Float64()*1000, rng.Float64()*1000
		y1, y2 := rng.Float64()*1000, rng.Float64()*1000
		xlo, xhi := min(x1, x2), max(x1, x2)
		ylo, yhi := min(y1, y2), max(y1, y2)
		if got, want := tr.QuerySum(xlo, xhi, ylo, yhi), naiveSum(pts, xlo, xhi, ylo, yhi); got != want {
			t.Fatalf("QuerySum = %d want %d", got, want)
		}
	}
}

func TestReportAllMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100, W: 1}
	}
	tr := Build(pts)
	for trial := 0; trial < 100; trial++ {
		x1, x2 := rng.Float64()*100, rng.Float64()*100
		y1, y2 := rng.Float64()*100, rng.Float64()*100
		xlo, xhi := min(x1, x2), max(x1, x2)
		ylo, yhi := min(y1, y2), max(y1, y2)
		got := tr.ReportAll(xlo, xhi, ylo, yhi)
		want := naiveSum(pts, xlo, xhi, ylo, yhi) // weights are 1: count
		if int64(len(got)) != want {
			t.Fatalf("ReportAll returned %d points want %d", len(got), want)
		}
		for _, p := range got {
			if p.X < xlo || p.X > xhi || p.Y < ylo || p.Y > yhi {
				t.Fatalf("reported point outside rect: %+v", p)
			}
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	e := Build(nil)
	if e.QuerySum(0, 1, 0, 1) != 0 || len(e.ReportAll(0, 1, 0, 1)) != 0 {
		t.Fatal("empty tree returned results")
	}
	s := Build([]Point{{X: 5, Y: 5, W: 7}})
	if s.QuerySum(5, 5, 5, 5) != 7 {
		t.Fatal("point query wrong")
	}
	if s.QuerySum(6, 9, 0, 10) != 0 {
		t.Fatal("miss query wrong")
	}
}
