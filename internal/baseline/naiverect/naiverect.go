// Package naiverect is the linear-scan baseline for rectangle stabbing:
// the differential-testing oracle for the stabbing package and the O(n)
// reference point its benchmarks compare against.
package naiverect

import "sort"

// Rect is a closed axis-parallel rectangle [XLo, XHi] x [YLo, YHi].
type Rect struct {
	XLo, XHi, YLo, YHi float64
}

// Contains reports whether the rectangle contains (x, y).
func (r Rect) Contains(x, y float64) bool {
	return r.XLo <= x && x <= r.XHi && r.YLo <= y && y <= r.YHi
}

// Set is a rectangle collection (stored in (XLo, XHi, YLo, YHi) order)
// with O(n) queries. Exact duplicates collapse, matching stabbing's set
// semantics. Updates are persistent — Insert and Delete copy the slice
// and return a new Set — so snapshots mirror stabbing's and the
// differential harness can re-query old versions.
type Set struct {
	rects []Rect
}

func rectLess(a, b Rect) bool {
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	if a.XHi != b.XHi {
		return a.XHi < b.XHi
	}
	if a.YLo != b.YLo {
		return a.YLo < b.YLo
	}
	return a.YHi < b.YHi
}

// Build stores the rectangles, deduplicated. O(n log n).
func Build(rects []Rect) *Set {
	s := make([]Rect, len(rects))
	copy(s, rects)
	sort.Slice(s, func(i, j int) bool { return rectLess(s[i], s[j]) })
	out := s[:0]
	for i, r := range s {
		if i == 0 || r != s[i-1] {
			out = append(out, r)
		}
	}
	return &Set{rects: out}
}

// Size returns the number of distinct rectangles.
func (s *Set) Size() int { return len(s.rects) }

// Rects returns the distinct rectangles in (XLo, XHi, YLo, YHi) order.
func (s *Set) Rects() []Rect {
	return append([]Rect(nil), s.rects...)
}

// search returns the insertion index of r in the sorted slice.
func (s *Set) search(r Rect) int {
	return sort.Search(len(s.rects), func(i int) bool { return !rectLess(s.rects[i], r) })
}

// Contains reports whether r is present. O(log n).
func (s *Set) Contains(r Rect) bool {
	i := s.search(r)
	return i < len(s.rects) && s.rects[i] == r
}

// Insert returns a new Set with r added (s is unchanged); inserting a
// duplicate returns s. O(n).
func (s *Set) Insert(r Rect) *Set {
	i := s.search(r)
	if i < len(s.rects) && s.rects[i] == r {
		return s
	}
	out := make([]Rect, 0, len(s.rects)+1)
	out = append(out, s.rects[:i]...)
	out = append(out, r)
	out = append(out, s.rects[i:]...)
	return &Set{rects: out}
}

// Delete returns a new Set without r (s is unchanged); deleting an
// absent rectangle returns s. O(n).
func (s *Set) Delete(r Rect) *Set {
	i := s.search(r)
	if i >= len(s.rects) || s.rects[i] != r {
		return s
	}
	out := make([]Rect, 0, len(s.rects)-1)
	out = append(out, s.rects[:i]...)
	out = append(out, s.rects[i+1:]...)
	return &Set{rects: out}
}

// Merge returns a new Set holding the union of s and other (both
// unchanged). O(n + m).
func (s *Set) Merge(other *Set) *Set {
	out := make([]Rect, 0, len(s.rects)+len(other.rects))
	i, j := 0, 0
	for i < len(s.rects) && j < len(other.rects) {
		switch {
		case s.rects[i] == other.rects[j]:
			out = append(out, s.rects[i])
			i++
			j++
		case rectLess(s.rects[i], other.rects[j]):
			out = append(out, s.rects[i])
			i++
		default:
			out = append(out, other.rects[j])
			j++
		}
	}
	out = append(out, s.rects[i:]...)
	out = append(out, other.rects[j:]...)
	return &Set{rects: out}
}

// CountStab counts rectangles containing (x, y). O(n).
func (s *Set) CountStab(x, y float64) int {
	n := 0
	for _, r := range s.rects {
		if r.Contains(x, y) {
			n++
		}
	}
	return n
}

// ReportStab returns the rectangles containing (x, y), in
// (XLo, XHi, YLo, YHi) order. O(n).
func (s *Set) ReportStab(x, y float64) []Rect {
	var out []Rect
	for _, r := range s.rects {
		if r.Contains(x, y) {
			out = append(out, r)
		}
	}
	return out
}
