// Package naiverect is the linear-scan baseline for rectangle stabbing:
// the differential-testing oracle for the stabbing package and the O(n)
// reference point its benchmarks compare against.
package naiverect

import "sort"

// Rect is a closed axis-parallel rectangle [XLo, XHi] x [YLo, YHi].
type Rect struct {
	XLo, XHi, YLo, YHi float64
}

// Contains reports whether the rectangle contains (x, y).
func (r Rect) Contains(x, y float64) bool {
	return r.XLo <= x && x <= r.XHi && r.YLo <= y && y <= r.YHi
}

// Set is an unordered rectangle collection with O(n) queries. Exact
// duplicates collapse, matching stabbing's set semantics.
type Set struct {
	rects []Rect
}

// Build stores the rectangles, deduplicated. O(n log n).
func Build(rects []Rect) *Set {
	s := make([]Rect, len(rects))
	copy(s, rects)
	sort.Slice(s, func(i, j int) bool {
		a, b := s[i], s[j]
		if a.XLo != b.XLo {
			return a.XLo < b.XLo
		}
		if a.XHi != b.XHi {
			return a.XHi < b.XHi
		}
		if a.YLo != b.YLo {
			return a.YLo < b.YLo
		}
		return a.YHi < b.YHi
	})
	out := s[:0]
	for i, r := range s {
		if i == 0 || r != s[i-1] {
			out = append(out, r)
		}
	}
	return &Set{rects: out}
}

// Size returns the number of distinct rectangles.
func (s *Set) Size() int { return len(s.rects) }

// CountStab counts rectangles containing (x, y). O(n).
func (s *Set) CountStab(x, y float64) int {
	n := 0
	for _, r := range s.rects {
		if r.Contains(x, y) {
			n++
		}
	}
	return n
}

// ReportStab returns the rectangles containing (x, y), in
// (XLo, XHi, YLo, YHi) order. O(n).
func (s *Set) ReportStab(x, y float64) []Rect {
	var out []Rect
	for _, r := range s.rects {
		if r.Contains(x, y) {
			out = append(out, r)
		}
	}
	return out
}
