package naiverect

import "testing"

func TestBuildDedupsAndQueries(t *testing.T) {
	s := Build([]Rect{
		{XLo: 0, XHi: 10, YLo: 0, YHi: 10},
		{XLo: 0, XHi: 10, YLo: 0, YHi: 10}, // duplicate
		{XLo: 5, XHi: 15, YLo: 5, YHi: 15},
		{XLo: 20, XHi: 30, YLo: 0, YHi: 1},
	})
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (duplicate should collapse)", s.Size())
	}
	if got := s.CountStab(7, 7); got != 2 {
		t.Fatalf("CountStab(7,7) = %d, want 2", got)
	}
	if got := s.CountStab(12, 12); got != 1 {
		t.Fatalf("CountStab(12,12) = %d, want 1", got)
	}
	if got := len(s.ReportStab(7, 7)); got != 2 {
		t.Fatalf("ReportStab(7,7) returned %d rects, want 2", got)
	}
}

func TestClosedEdges(t *testing.T) {
	s := Build([]Rect{{XLo: 0, XHi: 1, YLo: 0, YHi: 1}})
	for _, pt := range [][2]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}} {
		if s.CountStab(pt[0], pt[1]) != 1 {
			t.Fatalf("corner (%v,%v) should stab (closed rectangle)", pt[0], pt[1])
		}
	}
	if s.CountStab(1.0001, 0.5) != 0 {
		t.Fatal("point past the right edge should not stab")
	}
}
