package sortedarray

import (
	"math/rand"
	"testing"
)

func build(keys []uint64) (Map, map[uint64]int64) {
	items := make([]Pair, len(keys))
	m := map[uint64]int64{}
	for i, k := range keys {
		items[i] = Pair{Key: k, Val: int64(k)}
		m[k] = int64(k)
	}
	return Build(items), m
}

func randomKeys(rng *rand.Rand, n int, space uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() % space
	}
	return out
}

func TestBuildDedups(t *testing.T) {
	m := Build([]Pair{{5, 1}, {3, 2}, {5, 9}, {1, 0}})
	if m.Size() != 3 {
		t.Fatalf("size %d", m.Size())
	}
	if v, ok := m.Find(5); !ok || v != 9 {
		t.Fatalf("Find(5)=%d,%v want 9 (last wins)", v, ok)
	}
	if _, ok := m.Find(4); ok {
		t.Fatal("found absent key")
	}
}

func TestSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, ma := build(randomKeys(rng, 500, 700))
	b, mb := build(randomKeys(rng, 400, 700))

	u := Union(a, b)
	wantU := map[uint64]int64{}
	for k, v := range ma {
		wantU[k] = v
	}
	for k, v := range mb {
		wantU[k] = v
	}
	if u.Size() != len(wantU) {
		t.Fatalf("union size %d want %d", u.Size(), len(wantU))
	}
	for k, v := range wantU {
		if got, ok := u.Find(k); !ok || got != v {
			t.Fatalf("union Find(%d)", k)
		}
	}

	in := Intersect(a, b)
	cnt := 0
	for k := range ma {
		if _, ok := mb[k]; ok {
			cnt++
			if _, ok := in.Find(k); !ok {
				t.Fatalf("intersect missing %d", k)
			}
		}
	}
	if in.Size() != cnt {
		t.Fatalf("intersect size %d want %d", in.Size(), cnt)
	}

	d := Difference(a, b)
	cnt = 0
	for k := range ma {
		if _, ok := mb[k]; !ok {
			cnt++
		}
	}
	if d.Size() != cnt {
		t.Fatalf("difference size %d want %d", d.Size(), cnt)
	}
}

func TestRangeSum(t *testing.T) {
	a, ma := build([]uint64{1, 5, 9, 12, 40})
	var want int64
	for k, v := range ma {
		if k >= 5 && k <= 12 {
			want += v
		}
	}
	if got := a.RangeSum(5, 12); got != want {
		t.Fatalf("RangeSum = %d want %d", got, want)
	}
	if a.RangeSum(100, 200) != 0 {
		t.Fatal("out-of-range sum nonzero")
	}
}
