// Package sortedarray is the flat-array ordered-map baseline: the
// analogue of C++ std::set_union on sorted vectors ("Union-Array" in
// Table 3 of the paper). Union, intersection and difference are linear
// merges — O(n+m) regardless of the size ratio — which beats tree union
// at n ≈ m (flat memory, no pointer chasing) and loses badly when
// m << n, which is exactly the crossover the paper reports.
package sortedarray

import (
	"slices"

	"repro/internal/seq"
)

// Pair is a key-value entry.
type Pair struct {
	Key uint64
	Val int64
}

// Map is an immutable sorted array of distinct-key pairs.
type Map struct {
	s []Pair
}

func pairLess(a, b Pair) bool { return a.Key < b.Key }

// Build sorts items (stably) and keeps the last value of duplicate keys.
func Build(items []Pair) Map {
	s := make([]Pair, len(items))
	copy(s, items)
	seq.SortStable(s, pairLess)
	out := s[:0]
	for i, p := range s {
		if i+1 < len(s) && s[i+1].Key == p.Key {
			continue // a later duplicate wins
		}
		out = append(out, p)
	}
	return Map{s: slices.Clip(out)}
}

// FromSorted adopts an already-sorted distinct slice (no copy).
func FromSorted(s []Pair) Map { return Map{s: s} }

// Size returns the number of entries.
func (m Map) Size() int { return len(m.s) }

// Find binary-searches for k.
func (m Map) Find(k uint64) (int64, bool) {
	i, ok := slices.BinarySearchFunc(m.s, k, func(p Pair, key uint64) int {
		switch {
		case p.Key < key:
			return -1
		case p.Key > key:
			return 1
		default:
			return 0
		}
	})
	if !ok {
		return 0, false
	}
	return m.s[i].Val, true
}

// Union merges two maps in O(n+m); values of m2 win on shared keys.
func Union(m1, m2 Map) Map {
	a, b := m1.s, m2.s
	out := make([]Pair, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			out = append(out, a[i])
			i++
		case b[j].Key < a[i].Key:
			out = append(out, b[j])
			j++
		default:
			out = append(out, b[j])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return Map{s: out}
}

// Intersect keeps shared keys (m2's values) in O(n+m).
func Intersect(m1, m2 Map) Map {
	a, b := m1.s, m2.s
	out := make([]Pair, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			i++
		case b[j].Key < a[i].Key:
			j++
		default:
			out = append(out, b[j])
			i++
			j++
		}
	}
	return Map{s: out}
}

// Difference keeps the entries of m1 absent from m2, in O(n+m).
func Difference(m1, m2 Map) Map {
	a, b := m1.s, m2.s
	out := make([]Pair, 0, len(a))
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j].Key < a[i].Key {
			j++
		}
		if j < len(b) && b[j].Key == a[i].Key {
			i++
			continue
		}
		out = append(out, a[i])
		i++
	}
	return Map{s: out}
}

// RangeSum scans [lo, hi] and sums values: the non-augmented range-sum
// baseline, O(log n + output size).
func (m Map) RangeSum(lo, hi uint64) int64 {
	i := seq.LowerBound(m.s, Pair{Key: lo}, pairLess)
	var s int64
	for ; i < len(m.s) && m.s[i].Key <= hi; i++ {
		s += m.s[i].Val
	}
	return s
}

// Entries exposes the underlying slice (read-only by convention).
func (m Map) Entries() []Pair { return m.s }
