package sortrebuild

import (
	"math/rand"
	"testing"

	"repro/internal/baseline/sortedarray"
)

func TestMultiInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New()
	m := map[uint64]int64{}
	for batch := 0; batch < 10; batch++ {
		items := make([]sortedarray.Pair, 500)
		for i := range items {
			k := rng.Uint64() % 3000
			items[i] = sortedarray.Pair{Key: k, Val: int64(batch*1000 + i)}
			m[k] = items[i].Val
		}
		// Within a batch later duplicates win, matching Build's dedup.
		s.MultiInsert(items)
	}
	if s.Size() != len(m) {
		t.Fatalf("size %d want %d", s.Size(), len(m))
	}
	for k, v := range m {
		if got, ok := s.Find(k); !ok || got != v {
			t.Fatalf("Find(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
}

func TestFromPairs(t *testing.T) {
	s := FromPairs([]sortedarray.Pair{{Key: 2, Val: 1}, {Key: 1, Val: 2}})
	if s.Size() != 2 {
		t.Fatalf("size %d", s.Size())
	}
	if v, ok := s.Find(1); !ok || v != 2 {
		t.Fatal("find after FromPairs")
	}
}
