// Package sortrebuild is the bulk-update baseline standing in for
// MCSTL's parallel multi-insert (Table 3): merge the existing contents
// with the sorted batch and rebuild a flat structure. It has optimal
// O((n+m) + m log m) work for a batch of m into n — the comparison point
// that shows where PAM's O(m log(n/m+1)) tree multi-insert wins (small
// batches) and where a flat rebuild wins (huge batches).
package sortrebuild

import (
	"repro/internal/baseline/sortedarray"
	"repro/internal/seq"
)

// Store is a sorted-array map refreshed by bulk rebuilds.
type Store struct {
	m sortedarray.Map
}

// New returns an empty store.
func New() *Store { return &Store{} }

// FromPairs bulk-loads the store.
func FromPairs(items []sortedarray.Pair) *Store {
	return &Store{m: sortedarray.Build(items)}
}

// Size returns the number of entries.
func (s *Store) Size() int { return s.m.Size() }

// Find binary-searches for k.
func (s *Store) Find(k uint64) (int64, bool) { return s.m.Find(k) }

// MultiInsert applies a batch: parallel sort of the batch, dedup, then a
// parallel merge with the existing array.
func (s *Store) MultiInsert(items []sortedarray.Pair) {
	batch := sortedarray.Build(items) // parallel sort + dedup
	old := s.m.Entries()
	neu := batch.Entries()
	if len(old) == 0 {
		s.m = batch
		return
	}
	merged := make([]sortedarray.Pair, len(old)+len(neu))
	seq.MergeInto(old, neu, merged, func(a, b sortedarray.Pair) bool { return a.Key < b.Key })
	// Collapse duplicate keys (batch entries follow existing ones in the
	// stable merge; the batch value wins).
	out := merged[:0]
	for i, p := range merged {
		if i+1 < len(merged) && merged[i+1].Key == p.Key {
			continue
		}
		out = append(out, p)
	}
	s.m = sortedarray.FromSorted(out)
}
