// Package naiveseg is the linear-scan baseline for segment queries: the
// differential-testing oracle for the segcount package and the O(n)
// reference point its benchmarks compare against.
package naiveseg

import "sort"

// Segment is a closed horizontal segment [XLo, XHi] at height Y.
type Segment struct {
	XLo, XHi, Y float64
}

// Set is a segment collection (stored in (Y, XLo, XHi) order) with O(n)
// queries. Exact duplicates collapse, matching segcount's set
// semantics. Updates are persistent — Insert and Delete copy the slice
// and return a new Set — so snapshots mirror segcount's and the
// differential harness can re-query old versions.
type Set struct {
	segs []Segment
}

func segLess(a, b Segment) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	return a.XHi < b.XHi
}

// Build stores the segments, deduplicated. O(n log n).
func Build(segs []Segment) *Set {
	s := make([]Segment, len(segs))
	copy(s, segs)
	sort.Slice(s, func(i, j int) bool { return segLess(s[i], s[j]) })
	out := s[:0]
	for i, seg := range s {
		if i == 0 || seg != s[i-1] {
			out = append(out, seg)
		}
	}
	return &Set{segs: out}
}

// Size returns the number of distinct segments.
func (s *Set) Size() int { return len(s.segs) }

// Segments returns the distinct segments in (Y, XLo, XHi) order.
func (s *Set) Segments() []Segment {
	return append([]Segment(nil), s.segs...)
}

// search returns the insertion index of seg in the sorted slice.
func (s *Set) search(seg Segment) int {
	return sort.Search(len(s.segs), func(i int) bool { return !segLess(s.segs[i], seg) })
}

// Contains reports whether seg is present. O(log n).
func (s *Set) Contains(seg Segment) bool {
	i := s.search(seg)
	return i < len(s.segs) && s.segs[i] == seg
}

// Insert returns a new Set with seg added (s is unchanged); inserting a
// duplicate returns s. O(n).
func (s *Set) Insert(seg Segment) *Set {
	i := s.search(seg)
	if i < len(s.segs) && s.segs[i] == seg {
		return s
	}
	out := make([]Segment, 0, len(s.segs)+1)
	out = append(out, s.segs[:i]...)
	out = append(out, seg)
	out = append(out, s.segs[i:]...)
	return &Set{segs: out}
}

// Delete returns a new Set without seg (s is unchanged); deleting an
// absent segment returns s. O(n).
func (s *Set) Delete(seg Segment) *Set {
	i := s.search(seg)
	if i >= len(s.segs) || s.segs[i] != seg {
		return s
	}
	out := make([]Segment, 0, len(s.segs)-1)
	out = append(out, s.segs[:i]...)
	out = append(out, s.segs[i+1:]...)
	return &Set{segs: out}
}

// Merge returns a new Set holding the union of s and other (both
// unchanged). O(n + m).
func (s *Set) Merge(other *Set) *Set {
	out := make([]Segment, 0, len(s.segs)+len(other.segs))
	i, j := 0, 0
	for i < len(s.segs) && j < len(other.segs) {
		switch {
		case s.segs[i] == other.segs[j]:
			out = append(out, s.segs[i])
			i++
			j++
		case segLess(s.segs[i], other.segs[j]):
			out = append(out, s.segs[i])
			i++
		default:
			out = append(out, other.segs[j])
			j++
		}
	}
	out = append(out, s.segs[i:]...)
	out = append(out, other.segs[j:]...)
	return &Set{segs: out}
}

func crosses(seg Segment, x, yLo, yHi float64) bool {
	return seg.XLo <= x && x <= seg.XHi && yLo <= seg.Y && seg.Y <= yHi
}

func inWindow(seg Segment, xLo, xHi, yLo, yHi float64) bool {
	return seg.XLo <= xHi && seg.XHi >= xLo && yLo <= seg.Y && seg.Y <= yHi
}

// CountCrossing counts segments crossing the vertical query segment at x
// spanning [yLo, yHi]. O(n).
func (s *Set) CountCrossing(x, yLo, yHi float64) int {
	n := 0
	for _, seg := range s.segs {
		if crosses(seg, x, yLo, yHi) {
			n++
		}
	}
	return n
}

// ReportCrossing returns the crossing segments in (Y, XLo, XHi) order. O(n).
func (s *Set) ReportCrossing(x, yLo, yHi float64) []Segment {
	var out []Segment
	for _, seg := range s.segs {
		if crosses(seg, x, yLo, yHi) {
			out = append(out, seg)
		}
	}
	return out
}

// CountWindow counts segments intersecting the closed window. O(n).
func (s *Set) CountWindow(xLo, xHi, yLo, yHi float64) int {
	n := 0
	for _, seg := range s.segs {
		if inWindow(seg, xLo, xHi, yLo, yHi) {
			n++
		}
	}
	return n
}

// ReportWindow returns the intersecting segments in (Y, XLo, XHi) order. O(n).
func (s *Set) ReportWindow(xLo, xHi, yLo, yHi float64) []Segment {
	var out []Segment
	for _, seg := range s.segs {
		if inWindow(seg, xLo, xHi, yLo, yHi) {
			out = append(out, seg)
		}
	}
	return out
}
