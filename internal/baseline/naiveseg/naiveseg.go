// Package naiveseg is the linear-scan baseline for segment queries: the
// differential-testing oracle for the segcount package and the O(n)
// reference point its benchmarks compare against.
package naiveseg

import "sort"

// Segment is a closed horizontal segment [XLo, XHi] at height Y.
type Segment struct {
	XLo, XHi, Y float64
}

// Set is an unordered segment collection with O(n) queries. Exact
// duplicates collapse, matching segcount's set semantics.
type Set struct {
	segs []Segment
}

// Build stores the segments, deduplicated. O(n log n).
func Build(segs []Segment) *Set {
	s := make([]Segment, len(segs))
	copy(s, segs)
	sort.Slice(s, func(i, j int) bool {
		a, b := s[i], s[j]
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.XLo != b.XLo {
			return a.XLo < b.XLo
		}
		return a.XHi < b.XHi
	})
	out := s[:0]
	for i, seg := range s {
		if i == 0 || seg != s[i-1] {
			out = append(out, seg)
		}
	}
	return &Set{segs: out}
}

// Size returns the number of distinct segments.
func (s *Set) Size() int { return len(s.segs) }

func crosses(seg Segment, x, yLo, yHi float64) bool {
	return seg.XLo <= x && x <= seg.XHi && yLo <= seg.Y && seg.Y <= yHi
}

func inWindow(seg Segment, xLo, xHi, yLo, yHi float64) bool {
	return seg.XLo <= xHi && seg.XHi >= xLo && yLo <= seg.Y && seg.Y <= yHi
}

// CountCrossing counts segments crossing the vertical query segment at x
// spanning [yLo, yHi]. O(n).
func (s *Set) CountCrossing(x, yLo, yHi float64) int {
	n := 0
	for _, seg := range s.segs {
		if crosses(seg, x, yLo, yHi) {
			n++
		}
	}
	return n
}

// ReportCrossing returns the crossing segments in (Y, XLo, XHi) order. O(n).
func (s *Set) ReportCrossing(x, yLo, yHi float64) []Segment {
	var out []Segment
	for _, seg := range s.segs {
		if crosses(seg, x, yLo, yHi) {
			out = append(out, seg)
		}
	}
	return out
}

// CountWindow counts segments intersecting the closed window. O(n).
func (s *Set) CountWindow(xLo, xHi, yLo, yHi float64) int {
	n := 0
	for _, seg := range s.segs {
		if inWindow(seg, xLo, xHi, yLo, yHi) {
			n++
		}
	}
	return n
}

// ReportWindow returns the intersecting segments in (Y, XLo, XHi) order. O(n).
func (s *Set) ReportWindow(xLo, xHi, yLo, yHi float64) []Segment {
	var out []Segment
	for _, seg := range s.segs {
		if inWindow(seg, xLo, xHi, yLo, yHi) {
			out = append(out, seg)
		}
	}
	return out
}
