package naiveseg

import "testing"

func TestBuildDedupsAndQueries(t *testing.T) {
	s := Build([]Segment{
		{XLo: 0, XHi: 10, Y: 1},
		{XLo: 0, XHi: 10, Y: 1}, // duplicate
		{XLo: 5, XHi: 6, Y: 2},
		{XLo: 20, XHi: 30, Y: 1},
	})
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (duplicate should collapse)", s.Size())
	}
	if got := s.CountCrossing(5, 0, 3); got != 2 {
		t.Fatalf("CountCrossing(5, [0,3]) = %d, want 2", got)
	}
	if got := s.CountCrossing(5, 1.5, 3); got != 1 {
		t.Fatalf("CountCrossing(5, [1.5,3]) = %d, want 1", got)
	}
	if got := s.CountWindow(8, 25, 0, 1); got != 2 {
		t.Fatalf("CountWindow([8,25]x[0,1]) = %d, want 2", got)
	}
	if got := len(s.ReportCrossing(5, 0, 3)); got != 2 {
		t.Fatalf("ReportCrossing returned %d segments, want 2", got)
	}
	if got := len(s.ReportWindow(8, 25, 0, 1)); got != 2 {
		t.Fatalf("ReportWindow returned %d segments, want 2", got)
	}
}

func TestClosedEndpoints(t *testing.T) {
	s := Build([]Segment{{XLo: 0, XHi: 1, Y: 5}})
	if s.CountCrossing(1, 5, 5) != 1 {
		t.Fatal("right endpoint should be included (closed segment)")
	}
	if s.CountCrossing(0, 5, 5) != 1 {
		t.Fatal("left endpoint should be included (closed segment)")
	}
	if s.CountCrossing(1.0001, 5, 5) != 0 {
		t.Fatal("point past the right endpoint should not cross")
	}
}
