package llrb

import (
	"math/rand"
	"testing"
)

func TestInsertFindDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &Tree{}
	m := map[uint64]int64{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64() % 2000
		tr.Insert(k, int64(i))
		m[k] = int64(i)
		if i%500 == 0 && !tr.Validate() {
			t.Fatalf("LLRB invariant broken at step %d", i)
		}
	}
	if tr.Size() != len(m) {
		t.Fatalf("size %d want %d", tr.Size(), len(m))
	}
	for k, v := range m {
		if got, ok := tr.Find(k); !ok || got != v {
			t.Fatalf("Find(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	for k := range m {
		if k%2 == 0 {
			tr.Delete(k)
			delete(m, k)
		}
	}
	tr.Delete(99_999_999) // absent
	if !tr.Validate() {
		t.Fatal("invariant broken after deletes")
	}
	if tr.Size() != len(m) {
		t.Fatalf("size after deletes %d want %d", tr.Size(), len(m))
	}
	for k, v := range m {
		if got, ok := tr.Find(k); !ok || got != v {
			t.Fatalf("post-delete Find(%d)", k)
		}
	}
}

func TestForEachOrdered(t *testing.T) {
	tr := &Tree{}
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		tr.Insert(k, int64(k))
	}
	var prev uint64
	first := true
	tr.ForEach(func(k uint64, v int64) bool {
		if !first && k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		return true
	})
}

func TestUnionInto(t *testing.T) {
	a, b := &Tree{}, &Tree{}
	for i := uint64(0); i < 100; i++ {
		a.Insert(i*2, 1) // evens
		b.Insert(i*3, 2) // multiples of 3
	}
	u := UnionInto(a, b)
	if !u.Validate() {
		t.Fatal("union invariant")
	}
	want := map[uint64]int64{}
	a.ForEach(func(k uint64, v int64) bool { want[k] = v; return true })
	b.ForEach(func(k uint64, v int64) bool { want[k] = v; return true })
	if u.Size() != len(want) {
		t.Fatalf("union size %d want %d", u.Size(), len(want))
	}
	for k, v := range want {
		if got, ok := u.Find(k); !ok || got != v {
			t.Fatalf("union Find(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	// Inputs untouched.
	if a.Size() != 100 || b.Size() != 100 {
		t.Fatal("union modified inputs")
	}
}

func TestRangeSum(t *testing.T) {
	tr := &Tree{}
	for i := uint64(1); i <= 100; i++ {
		tr.Insert(i, int64(i))
	}
	if got := tr.RangeSum(10, 20); got != 165 {
		t.Fatalf("RangeSum = %d want 165", got)
	}
}
