// Package llrb is a classic mutable left-leaning red-black tree: the
// stand-in for C++ std::map / std::set in the paper's sequential
// comparisons ("Union-Tree" and "Insert" in Table 3). It is a
// specialized, insertion-optimized, ephemeral structure — no
// persistence, no parallelism, no augmentation — so it bounds what a
// highly-tuned sequential tree achieves, the way STL does for PAM.
package llrb

// Tree is a mutable ordered map from uint64 to int64.
type Tree struct {
	root *node
	size int
}

type node struct {
	key         uint64
	val         int64
	left, right *node
	red         bool
}

func isRed(n *node) bool { return n != nil && n.red }

// Size returns the number of entries.
func (t *Tree) Size() int { return t.size }

// Find returns the value at k.
func (t *Tree) Find(k uint64) (int64, bool) {
	n := t.root
	for n != nil {
		switch {
		case k < n.key:
			n = n.left
		case k > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	return 0, false
}

// Insert adds or replaces (k, v).
func (t *Tree) Insert(k uint64, v int64) {
	var grew bool
	t.root, grew = insert(t.root, k, v)
	t.root.red = false
	if grew {
		t.size++
	}
}

func insert(n *node, k uint64, v int64) (*node, bool) {
	if n == nil {
		return &node{key: k, val: v, red: true}, true
	}
	var grew bool
	switch {
	case k < n.key:
		n.left, grew = insert(n.left, k, v)
	case k > n.key:
		n.right, grew = insert(n.right, k, v)
	default:
		n.val = v
	}
	return fixUp(n), grew
}

func rotateLeft(n *node) *node {
	x := n.right
	n.right = x.left
	x.left = n
	x.red = n.red
	n.red = true
	return x
}

func rotateRight(n *node) *node {
	x := n.left
	n.left = x.right
	x.right = n
	x.red = n.red
	n.red = true
	return x
}

func flipColors(n *node) {
	n.red = !n.red
	n.left.red = !n.left.red
	n.right.red = !n.right.red
}

func fixUp(n *node) *node {
	if isRed(n.right) && !isRed(n.left) {
		n = rotateLeft(n)
	}
	if isRed(n.left) && isRed(n.left.left) {
		n = rotateRight(n)
	}
	if isRed(n.left) && isRed(n.right) {
		flipColors(n)
	}
	return n
}

// Delete removes k if present.
func (t *Tree) Delete(k uint64) {
	if _, ok := t.Find(k); !ok {
		return
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.red = true
	}
	t.root = del(t.root, k)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
}

func moveRedLeft(n *node) *node {
	flipColors(n)
	if isRed(n.right.left) {
		n.right = rotateRight(n.right)
		n = rotateLeft(n)
		flipColors(n)
	}
	return n
}

func moveRedRight(n *node) *node {
	flipColors(n)
	if isRed(n.left.left) {
		n = rotateRight(n)
		flipColors(n)
	}
	return n
}

func minNode(n *node) *node {
	for n.left != nil {
		n = n.left
	}
	return n
}

func delMin(n *node) *node {
	if n.left == nil {
		return nil
	}
	if !isRed(n.left) && !isRed(n.left.left) {
		n = moveRedLeft(n)
	}
	n.left = delMin(n.left)
	return fixUp(n)
}

func del(n *node, k uint64) *node {
	if k < n.key {
		if !isRed(n.left) && !isRed(n.left.left) {
			n = moveRedLeft(n)
		}
		n.left = del(n.left, k)
	} else {
		if isRed(n.left) {
			n = rotateRight(n)
		}
		if k == n.key && n.right == nil {
			return nil
		}
		if !isRed(n.right) && !isRed(n.right.left) {
			n = moveRedRight(n)
		}
		if k == n.key {
			m := minNode(n.right)
			n.key, n.val = m.key, m.val
			n.right = delMin(n.right)
		} else {
			n.right = del(n.right, k)
		}
	}
	return fixUp(n)
}

// ForEach visits entries in key order.
func (t *Tree) ForEach(visit func(k uint64, v int64) bool) {
	var rec func(n *node) bool
	rec = func(n *node) bool {
		if n == nil {
			return true
		}
		return rec(n.left) && visit(n.key, n.val) && rec(n.right)
	}
	rec(t.root)
}

// UnionInto builds a NEW tree containing the union of a and b (b's
// values win), by merged in-order iteration with per-element insertion —
// the behaviour of std::set_union into a std::set, the paper's
// "Union-Tree" baseline with its O((n+m) log(n+m)) cost.
func UnionInto(a, b *Tree) *Tree {
	out := &Tree{}
	ae := entries(a)
	be := entries(b)
	i, j := 0, 0
	for i < len(ae) && j < len(be) {
		switch {
		case ae[i].key < be[j].key:
			out.Insert(ae[i].key, ae[i].val)
			i++
		case be[j].key < ae[i].key:
			out.Insert(be[j].key, be[j].val)
			j++
		default:
			out.Insert(be[j].key, be[j].val)
			i++
			j++
		}
	}
	for ; i < len(ae); i++ {
		out.Insert(ae[i].key, ae[i].val)
	}
	for ; j < len(be); j++ {
		out.Insert(be[j].key, be[j].val)
	}
	return out
}

type kv struct {
	key uint64
	val int64
}

func entries(t *Tree) []kv {
	out := make([]kv, 0, t.size)
	t.ForEach(func(k uint64, v int64) bool {
		out = append(out, kv{k, v})
		return true
	})
	return out
}

// RangeSum scans [lo, hi]: the non-augmented baseline for range sums.
func (t *Tree) RangeSum(lo, hi uint64) int64 {
	var s int64
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		if n.key > lo {
			rec(n.left)
		}
		if n.key >= lo && n.key <= hi {
			s += n.val
		}
		if n.key < hi {
			rec(n.right)
		}
	}
	rec(t.root)
	return s
}

// Validate checks the LLRB invariants (for tests).
func (t *Tree) Validate() bool {
	if isRed(t.root) {
		return false
	}
	blacks := -1
	var rec func(n *node, depth int) bool
	rec = func(n *node, depth int) bool {
		if n == nil {
			if blacks == -1 {
				blacks = depth
			}
			return blacks == depth
		}
		if isRed(n) && (isRed(n.left) || isRed(n.right)) {
			return false
		}
		if isRed(n.right) {
			return false // left-leaning
		}
		d := depth
		if !isRed(n) {
			d++
		}
		return rec(n.left, d) && rec(n.right, d)
	}
	return rec(t.root, 0)
}
