// Package naiveinterval is the linear-scan interval baseline (the role
// the Python intervaltree library plays in §6.2: a reference point that
// is orders of magnitude slower than the augmented-map interval tree on
// stabbing queries).
package naiveinterval

// Interval is a closed interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Set is an unordered interval collection with O(n) queries.
type Set struct {
	ivs []Interval
}

// Build stores the intervals (O(n)).
func Build(ivs []Interval) *Set {
	s := make([]Interval, len(ivs))
	copy(s, ivs)
	return &Set{ivs: s}
}

// Size returns the number of intervals.
func (s *Set) Size() int { return len(s.ivs) }

// Stab reports whether any interval covers p. O(n).
func (s *Set) Stab(p float64) bool {
	for _, iv := range s.ivs {
		if iv.Lo <= p && p <= iv.Hi {
			return true
		}
	}
	return false
}

// ReportAll returns the intervals covering p. O(n).
func (s *Set) ReportAll(p float64) []Interval {
	var out []Interval
	for _, iv := range s.ivs {
		if iv.Lo <= p && p <= iv.Hi {
			out = append(out, iv)
		}
	}
	return out
}
