package naiveinterval

import "testing"

func TestStabAndReport(t *testing.T) {
	s := Build([]Interval{{1, 5}, {3, 9}, {10, 12}})
	if s.Size() != 3 {
		t.Fatalf("size %d", s.Size())
	}
	if !s.Stab(4) || !s.Stab(1) || !s.Stab(12) {
		t.Fatal("missed covered points")
	}
	if s.Stab(9.5) || s.Stab(0) {
		t.Fatal("stabbed uncovered points")
	}
	if got := s.ReportAll(4); len(got) != 2 {
		t.Fatalf("ReportAll(4) returned %d", len(got))
	}
	if got := s.ReportAll(100); len(got) != 0 {
		t.Fatalf("ReportAll(100) returned %d", len(got))
	}
	empty := Build(nil)
	if empty.Stab(0) || empty.Size() != 0 {
		t.Fatal("empty set misbehaves")
	}
}

func TestBuildCopiesInput(t *testing.T) {
	in := []Interval{{1, 2}}
	s := Build(in)
	in[0] = Interval{50, 60}
	if s.Stab(55) || !s.Stab(1.5) {
		t.Fatal("Build aliased its input")
	}
}
