package skiplist

import (
	"math/rand"
	"sync"
	"testing"
)

func TestInsertFind(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := New()
	m := map[uint64]int64{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64() % 2000
		l.Insert(k, int64(i))
		m[k] = int64(i)
	}
	if int(l.Size()) != len(m) {
		t.Fatalf("size %d want %d", l.Size(), len(m))
	}
	for k, v := range m {
		if got, ok := l.Find(k); !ok || got != v {
			t.Fatalf("Find(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	if _, ok := l.Find(999_999_999); ok {
		t.Fatal("found absent key")
	}
}

func TestConcurrentInserts(t *testing.T) {
	l := New()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := rng.Uint64() % 50_000
				l.Insert(k, int64(k))
			}
		}(w)
	}
	wg.Wait()
	// Every inserted key must be findable with its (deterministic) value,
	// and level-0 order must be strictly increasing.
	var prev uint64
	first := true
	count := 0
	var preds, succs [24]*node
	l.findNode(0, &preds, &succs)
	for cur := succs[0]; cur != nil; cur = cur.next[0].Load() {
		if !first && cur.key <= prev {
			t.Fatalf("level-0 out of order: %d after %d", cur.key, prev)
		}
		if cur.val.Load() != int64(cur.key) {
			t.Fatalf("value mismatch at %d", cur.key)
		}
		prev, first = cur.key, false
		count++
	}
	if int64(count) != l.Size() {
		t.Fatalf("size counter %d but %d nodes at level 0", l.Size(), count)
	}
}

func TestConcurrentInsertThenRead(t *testing.T) {
	// The Fig 6(b) shape: load, then concurrent read-only lookups.
	l := New()
	for i := uint64(0); i < 10_000; i++ {
		l.Insert(i*2, int64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := rng.Uint64() % 20_000
				v, ok := l.Find(k)
				if ok != (k%2 == 0) {
					panic("membership wrong")
				}
				if ok && v != int64(k/2) {
					panic("value wrong")
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestRangeSum(t *testing.T) {
	l := New()
	for i := uint64(1); i <= 100; i++ {
		l.Insert(i, int64(i))
	}
	if got := l.RangeSum(10, 20); got != 165 {
		t.Fatalf("RangeSum = %d want 165", got)
	}
	if l.RangeSum(200, 300) != 0 {
		t.Fatal("out-of-range sum nonzero")
	}
}
