// Package skiplist is a concurrent lock-free skip list, the classic
// pointer-based concurrent ordered map the paper compares against in
// Figure 6(a)/(b). Insertion uses per-level compare-and-swap splicing
// (Fraser/Herlihy-Shavit style, insert-only: the benchmark workloads —
// concurrent loads then read-only lookups, YCSB-C — never delete, which
// is also how the paper's comparison used it).
package skiplist

import (
	"sync/atomic"

	"repro/internal/seq"
)

const maxLevel = 24

// List is a concurrent ordered map from uint64 to int64.
type List struct {
	head   [maxLevel]atomic.Pointer[node]
	length atomic.Int64
	salt   uint64
}

type node struct {
	key  uint64
	val  atomic.Int64
	next [maxLevel]atomic.Pointer[node]
	lvl  int
}

// New returns an empty list.
func New() *List {
	return &List{salt: 0x9e3779b97f4a7c15}
}

// Size returns the number of entries.
func (l *List) Size() int64 { return l.length.Load() }

// levelFor derives a geometric level from the key hash, deterministic
// per key so that racing inserts of the same key agree.
func (l *List) levelFor(k uint64) int {
	h := seq.Mix64(k ^ l.salt)
	lvl := 1
	for h&1 == 1 && lvl < maxLevel {
		lvl++
		h >>= 1
	}
	return lvl
}

// Find returns the value at k. Wait-free.
func (l *List) Find(k uint64) (int64, bool) {
	var pred *node
	for lvl := maxLevel - 1; lvl >= 0; lvl-- {
		cur := l.nextOf(pred, lvl)
		for cur != nil && cur.key < k {
			pred = cur
			cur = cur.next[lvl].Load()
		}
		if cur != nil && cur.key == k {
			return cur.val.Load(), true
		}
	}
	return 0, false
}

func (l *List) nextOf(pred *node, lvl int) *node {
	if pred == nil {
		return l.head[lvl].Load()
	}
	return pred.next[lvl].Load()
}

func (l *List) casNext(pred *node, lvl int, old, new *node) bool {
	if pred == nil {
		return l.head[lvl].CompareAndSwap(old, new)
	}
	return pred.next[lvl].CompareAndSwap(old, new)
}

// Insert adds or updates (k, v). Lock-free; safe for concurrent use.
func (l *List) Insert(k uint64, v int64) {
	var preds, succs [maxLevel]*node
	for {
		if found := l.findNode(k, &preds, &succs); found != nil {
			found.val.Store(v)
			return
		}
		lvl := l.levelFor(k)
		n := &node{key: k, lvl: lvl}
		n.val.Store(v)
		for i := 0; i < lvl; i++ {
			n.next[i].Store(succs[i])
		}
		// Splice at level 0 first; that linearizes the insert.
		if !l.casNext(preds[0], 0, succs[0], n) {
			continue // raced; retry from scratch
		}
		l.length.Add(1)
		// Upper levels are best-effort (losing a race only costs search
		// performance, not correctness).
		for i := 1; i < lvl; i++ {
			for {
				if l.casNext(preds[i], i, succs[i], n) {
					break
				}
				l.findNode(k, &preds, &succs)
				if succs[i] == n {
					break // someone saw us already linked
				}
				n.next[i].Store(succs[i])
			}
		}
		return
	}
}

// findNode fills preds/succs around k and returns the node if present.
func (l *List) findNode(k uint64, preds, succs *[maxLevel]*node) *node {
	var found *node
	var pred *node
	for lvl := maxLevel - 1; lvl >= 0; lvl-- {
		cur := l.nextOf(pred, lvl)
		for cur != nil && cur.key < k {
			pred = cur
			cur = cur.next[lvl].Load()
		}
		preds[lvl] = pred
		succs[lvl] = cur
		if found == nil && cur != nil && cur.key == k {
			found = cur
		}
	}
	return found
}

// RangeSum scans [lo, hi] at level 0: the non-augmented range baseline.
func (l *List) RangeSum(lo, hi uint64) int64 {
	var preds, succs [maxLevel]*node
	l.findNode(lo, &preds, &succs)
	var s int64
	for cur := succs[0]; cur != nil && cur.key <= hi; cur = cur.next[0].Load() {
		s += cur.val.Load()
	}
	return s
}

// ExpectedLevels reports the theoretical expected node level (geometric
// with p = 1/2), for the experiment report.
func ExpectedLevels() float64 { return 2 }
