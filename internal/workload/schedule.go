package workload

import "repro/internal/seq"

// Concurrent schedules: the deterministic inputs of the serve
// differential harness. A schedule is one batched op stream per writer;
// the writers submit their batches concurrently, so the global
// interleaving is decided at run time by the store's sequencer — the
// harness reads it back and replays it against a sequential oracle.

// KVOp is one key-value operation of a concurrent serving schedule.
type KVOp struct {
	Del bool
	Key uint64
	Val int64
}

// KVBatch is one write batch. Snap marks batches after which the
// issuing writer takes (and records) a snapshot — the real-time
// visibility probe of the harness.
type KVBatch struct {
	Ops  []KVOp
	Snap bool
}

// ScheduleCfg sizes a concurrent schedule. The key space should be
// small enough that concurrent writers collide on keys, or the
// interleaving order would be unobservable.
type ScheduleCfg struct {
	Writers   int
	Batches   int    // batches per writer
	BatchLen  int    // maximum ops per batch (actual lengths vary in [1, BatchLen])
	KeySpace  uint64 // keys are uniform in [0, KeySpace)
	DelEvery  int    // about 1 op in DelEvery is a delete; 0 disables deletes
	SnapEvery int    // about 1 batch in SnapEvery is snapshot-marked; 0 disables
}

// Schedule returns the per-writer batched op streams for seed and cfg
// (same inputs, same schedule — the splittable-stream discipline of the
// other generators).
func Schedule(seed uint64, cfg ScheduleCfg) [][]KVBatch {
	out := make([][]KVBatch, cfg.Writers)
	for w := range out {
		r := seq.NewRNG(seed).Split(uint64(w + 1))
		kr, vr, lr, dr, sr := r.Split(1), r.Split(2), r.Split(3), r.Split(4), r.Split(5)
		batches := make([]KVBatch, cfg.Batches)
		idx := uint64(0)
		for b := range batches {
			ln := 1 + int(lr.AtRange(uint64(b), uint64(max(cfg.BatchLen, 1))))
			ops := make([]KVOp, ln)
			for i := range ops {
				idx++
				op := KVOp{
					Key: kr.AtRange(idx, max(cfg.KeySpace, 1)),
					Val: int64(vr.AtRange(idx, 1000)),
				}
				if cfg.DelEvery > 0 && dr.AtRange(idx, uint64(cfg.DelEvery)) == 0 {
					op.Del = true
				}
				ops[i] = op
			}
			batches[b] = KVBatch{
				Ops:  ops,
				Snap: cfg.SnapEvery > 0 && sr.AtRange(uint64(b), uint64(cfg.SnapEvery)) == 0,
			}
		}
		out[w] = batches
	}
	return out
}

// WriterOps splits one deterministic dynamic-structure op stream (the
// Mix/Ops machinery of opseq.go) into per-writer streams, for
// concurrent harnesses over the spatial structures.
func WriterOps(seed uint64, writers, n int, mix Mix) [][]Op {
	out := make([][]Op, writers)
	r := seq.NewRNG(seed)
	for w := range out {
		out[w] = Ops(r.At(uint64(w)), n, mix)
	}
	return out
}
