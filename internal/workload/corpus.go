package workload

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/seq"
)

// Corpus generation — the substitute for the paper's Wikipedia dump
// (8.13M documents, 1.96G words, 5.09M unique words). What the inverted
// index experiments depend on is the *shape* of the word-frequency
// distribution (Zipfian, so posting-list lengths span from millions of
// documents to singletons) and random weights; both are reproduced
// synthetically and scale down with n. See DESIGN.md §1.

// Occurrence is one (word, document, weight) token, the build input of
// the inverted index.
type Occurrence struct {
	Word string
	Doc  uint32
	W    float64
}

// CorpusSpec sizes a synthetic corpus.
type CorpusSpec struct {
	Docs        int     // number of documents
	WordsPerDoc int     // tokens per document
	Vocabulary  int     // number of distinct words
	ZipfS       float64 // word-frequency skew (Wikipedia-like: ~1.0)
	Seed        uint64
}

// DefaultCorpus returns a spec with totalWords tokens, scaling the
// paper's corpus shape down: vocabulary ~ totalWords/400 (Wikipedia:
// 1.96e9 words, 5.09e6 unique ≈ 385:1), 400 words per document.
func DefaultCorpus(totalWords int, seed uint64) CorpusSpec {
	wpd := 400
	docs := max(totalWords/wpd, 1)
	vocab := max(totalWords/400, 16)
	return CorpusSpec{Docs: docs, WordsPerDoc: wpd, Vocabulary: vocab, ZipfS: 1.0, Seed: seed}
}

// TotalWords returns the token count of the spec.
func (c CorpusSpec) TotalWords() int { return c.Docs * c.WordsPerDoc }

// Generate produces the corpus occurrences in parallel. Words are named
// w<zipf-rank>, so w0 is the most frequent word.
func (c CorpusSpec) Generate() []Occurrence {
	z := NewZipf(c.Seed, c.ZipfS, c.Vocabulary-1)
	wr := seq.NewRNG(c.Seed).Split(7)
	n := c.TotalWords()
	out := make([]Occurrence, n)
	parallel.For(n, 0, func(i int) {
		out[i] = Occurrence{
			Word: wordName(z.At(uint64(i))),
			Doc:  uint32(i / c.WordsPerDoc),
			W:    wr.AtFloat(uint64(i)),
		}
	})
	return out
}

// QueryWords returns q two-word conjunction queries sampled from the
// vocabulary with the same skew as the corpus (frequent words are asked
// about often, like real search traffic).
func (c CorpusSpec) QueryWords(q int) [][2]string {
	z := NewZipf(c.Seed^0xabcdef, c.ZipfS, c.Vocabulary-1)
	out := make([][2]string, q)
	parallel.For(q, 0, func(i int) {
		a := z.At(uint64(2 * i))
		b := z.At(uint64(2*i + 1))
		if a == b {
			b = (b + 1) % c.Vocabulary
		}
		out[i] = [2]string{wordName(a), wordName(b)}
	})
	return out
}

func wordName(rank int) string { return fmt.Sprintf("w%06d", rank) }
