package workload

import (
	"testing"
)

func TestKeysDeterministicAndInRange(t *testing.T) {
	a := Keys(42, 10000, 1000)
	b := Keys(42, 10000, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Keys not deterministic")
		}
		if a[i] >= 1000 {
			t.Fatalf("key %d out of range", a[i])
		}
	}
	c := Keys(43, 100, 1000)
	same := true
	for i := range c {
		if c[i] != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical keys")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1, 1.0, 999)
	counts := make([]int, 1000)
	n := 200_000
	for i := 0; i < n; i++ {
		v := z.At(uint64(i))
		if v < 0 || v > 999 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 99 by roughly 100x (within loose bounds).
	if counts[0] < counts[99]*20 {
		t.Fatalf("zipf not skewed: rank0=%d rank99=%d", counts[0], counts[99])
	}
	// And the tail must still be populated.
	tail := 0
	for _, c := range counts[500:] {
		tail += c
	}
	if tail == 0 {
		t.Fatal("zipf tail empty")
	}
}

func TestIntervalsShape(t *testing.T) {
	ivs := Intervals(7, 10000, 1000, 5)
	var totalLen float64
	for _, iv := range ivs {
		if iv.Lo < 0 || iv.Lo >= 1000 {
			t.Fatalf("interval lo out of range: %v", iv)
		}
		if iv.Hi < iv.Lo {
			t.Fatalf("inverted interval: %v", iv)
		}
		totalLen += iv.Hi - iv.Lo
	}
	mean := totalLen / float64(len(ivs))
	if mean < 3 || mean > 7 {
		t.Fatalf("interval mean length %v, want ~5", mean)
	}
}

func TestPoints(t *testing.T) {
	pts := Points(9, 5000, 100, 50)
	for _, p := range pts {
		if p.X < 0 || p.X >= 100 || p.Y < 0 || p.Y >= 100 {
			t.Fatalf("point out of range: %+v", p)
		}
		if p.W < 0 || p.W >= 50 {
			t.Fatalf("weight out of range: %+v", p)
		}
	}
}

func TestReadStream(t *testing.T) {
	loaded := Keys(1, 1000, 1_000_000)
	inSet := map[uint64]bool{}
	for _, k := range loaded {
		inSet[k] = true
	}
	for _, zipf := range []bool{false, true} {
		reads := ReadStream(2, 5000, loaded, zipf)
		for _, k := range reads {
			if !inSet[k] {
				t.Fatalf("read key %d not in loaded set (zipf=%v)", k, zipf)
			}
		}
	}
	if got := ReadStream(3, 10, nil, false); len(got) != 10 {
		t.Fatal("empty loaded set mishandled")
	}
}

func TestCorpusGenerate(t *testing.T) {
	spec := DefaultCorpus(50_000, 5)
	occ := spec.Generate()
	if len(occ) != spec.TotalWords() {
		t.Fatalf("generated %d tokens want %d", len(occ), spec.TotalWords())
	}
	freq := map[string]int{}
	maxDoc := uint32(0)
	for _, o := range occ {
		freq[o.Word]++
		if o.Doc > maxDoc {
			maxDoc = o.Doc
		}
		if o.W < 0 || o.W >= 1 {
			t.Fatalf("weight out of range: %v", o.W)
		}
	}
	if int(maxDoc) != spec.Docs-1 {
		t.Fatalf("doc ids up to %d want %d", maxDoc, spec.Docs-1)
	}
	// Zipf head dominates.
	if freq["w000000"] < freq["w000050"] {
		t.Fatal("corpus word frequencies not skewed")
	}
	qs := spec.QueryWords(100)
	if len(qs) != 100 {
		t.Fatal("query count")
	}
	for _, q := range qs {
		if q[0] == q[1] {
			t.Fatalf("degenerate query %v", q)
		}
	}
}

func TestScheduleDeterministicAndShaped(t *testing.T) {
	cfg := ScheduleCfg{Writers: 3, Batches: 8, BatchLen: 6, KeySpace: 64, DelEvery: 3, SnapEvery: 2}
	a := Schedule(7, cfg)
	b := Schedule(7, cfg)
	if len(a) != cfg.Writers {
		t.Fatalf("writers = %d", len(a))
	}
	var dels, snaps, ops int
	for w := range a {
		if len(a[w]) != cfg.Batches {
			t.Fatalf("writer %d has %d batches", w, len(a[w]))
		}
		for bi, batch := range a[w] {
			if len(batch.Ops) < 1 || len(batch.Ops) > cfg.BatchLen {
				t.Fatalf("batch length %d outside [1,%d]", len(batch.Ops), cfg.BatchLen)
			}
			if batch.Snap != b[w][bi].Snap {
				t.Fatal("Schedule not deterministic (Snap)")
			}
			if batch.Snap {
				snaps++
			}
			for oi, op := range batch.Ops {
				if op != b[w][bi].Ops[oi] {
					t.Fatal("Schedule not deterministic (op)")
				}
				if op.Key >= cfg.KeySpace {
					t.Fatalf("key %d outside space", op.Key)
				}
				if op.Del {
					dels++
				}
				ops++
			}
		}
	}
	if dels == 0 || dels == ops {
		t.Fatalf("delete mix degenerate: %d of %d", dels, ops)
	}
	if snaps == 0 {
		t.Fatal("no snapshot-marked batches")
	}
	// Writers must differ from each other.
	if a[0][0].Ops[0] == a[1][0].Ops[0] && a[0][1].Ops[0] == a[1][1].Ops[0] {
		t.Fatal("writers share a stream")
	}
}

func TestWriterOpsSplitsStreams(t *testing.T) {
	streams := WriterOps(3, 3, 50, DefaultMix)
	if len(streams) != 3 {
		t.Fatalf("writers = %d", len(streams))
	}
	for w, ops := range streams {
		if len(ops) != 50 {
			t.Fatalf("writer %d has %d ops", w, len(ops))
		}
	}
	if streams[0][0] == streams[1][0] && streams[0][1] == streams[1][1] {
		t.Fatal("writer streams identical")
	}
	again := WriterOps(3, 3, 50, DefaultMix)
	for w := range streams {
		for i := range streams[w] {
			if streams[w][i] != again[w][i] {
				t.Fatal("WriterOps not deterministic")
			}
		}
	}
}
