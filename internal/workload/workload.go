// Package workload generates the deterministic synthetic inputs driving
// every experiment: uniform and Zipf-distributed 64-bit keys, intervals,
// weighted 2D points, YCSB-C style read streams, and — standing in for
// the paper's Wikipedia dump — a Zipf-worded document corpus (see
// DESIGN.md §1 for the substitution rationale).
//
// Everything is generated from splittable splitmix64 streams, so inputs
// are reproducible across runs and machines and can be produced in
// parallel.
package workload

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/seq"
)

// Keys returns n uniform uint64 keys in [0, space) from the given seed
// stream (deterministic, generated in parallel).
func Keys(seed uint64, n int, space uint64) []uint64 {
	r := seq.NewRNG(seed)
	out := make([]uint64, n)
	parallel.For(n, 0, func(i int) { out[i] = r.AtRange(uint64(i), space) })
	return out
}

// KeyValues returns n uniform key-value pairs (values derived from keys).
func KeyValues(seed uint64, n int, space uint64) ([]uint64, []int64) {
	r := seq.NewRNG(seed)
	ks := make([]uint64, n)
	vs := make([]int64, n)
	parallel.For(n, 0, func(i int) {
		ks[i] = r.AtRange(uint64(i), space)
		vs[i] = int64(r.Split(1).At(uint64(i)) % 1000)
	})
	return ks, vs
}

// Zipf samples n values in [0, imax] with P(k) ∝ 1/(k+1)^s using
// inverse-CDF over a precomputed table (exact, not approximate; table
// size imax+1 so keep imax ≤ ~10^7).
type Zipf struct {
	cdf []float64
	rng seq.RNG
}

// NewZipf builds a sampler with exponent s over [0, imax].
func NewZipf(seed uint64, s float64, imax int) *Zipf {
	cdf := make([]float64, imax+1)
	acc := 0.0
	for k := 0; k <= imax; k++ {
		acc += 1 / math.Pow(float64(k+1), s)
		cdf[k] = acc
	}
	for k := range cdf {
		cdf[k] /= acc
	}
	return &Zipf{cdf: cdf, rng: seq.NewRNG(seed)}
}

// At returns the i-th sample of the stream.
func (z *Zipf) At(i uint64) int {
	u := z.rng.AtFloat(i)
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Interval is a generated [Lo, Hi] interval.
type Interval struct {
	Lo, Hi float64
}

// expSample draws the i-th sample of an inverse-CDF exponential stream
// with the given mean (shared by the interval, segment, and rectangle
// generators so their length distributions stay identical).
func expSample(r seq.RNG, i uint64, mean float64) float64 {
	u := r.AtFloat(i)
	if u >= 1 {
		u = 0.999999
	}
	return -mean * math.Log(1-u)
}

// Intervals returns n random intervals with left endpoints uniform in
// [0, span) and lengths exponential-ish with the given mean.
func Intervals(seed uint64, n int, span, meanLen float64) []Interval {
	r := seq.NewRNG(seed)
	lenR := r.Split(1)
	out := make([]Interval, n)
	parallel.For(n, 0, func(i int) {
		lo := r.AtFloat(uint64(i)) * span
		out[i] = Interval{Lo: lo, Hi: lo + expSample(lenR, uint64(i), meanLen)}
	})
	return out
}

// Point is a generated weighted point.
type Point struct {
	X, Y float64
	W    int64
}

// Points returns n random weighted points in [0, span)^2.
func Points(seed uint64, n int, span float64, maxW int64) []Point {
	r := seq.NewRNG(seed)
	ry := r.Split(1)
	rw := r.Split(2)
	out := make([]Point, n)
	parallel.For(n, 0, func(i int) {
		out[i] = Point{
			X: r.AtFloat(uint64(i)) * span,
			Y: ry.AtFloat(uint64(i)) * span,
			W: int64(rw.AtRange(uint64(i), uint64(maxW))),
		}
	})
	return out
}

// Seg is a generated horizontal segment [XLo, XHi] at height Y.
type Seg struct {
	XLo, XHi, Y float64
}

// Segments returns n random horizontal segments with left endpoints and
// heights uniform in [0, span) and lengths exponential-ish with the
// given mean (the segment-query analogue of Intervals).
func Segments(seed uint64, n int, span, meanLen float64) []Seg {
	r := seq.NewRNG(seed)
	lenR := r.Split(1)
	yR := r.Split(2)
	out := make([]Seg, n)
	parallel.For(n, 0, func(i int) {
		lo := r.AtFloat(uint64(i)) * span
		out[i] = Seg{
			XLo: lo,
			XHi: lo + expSample(lenR, uint64(i), meanLen),
			Y:   yR.AtFloat(uint64(i)) * span,
		}
	})
	return out
}

// Rect is a generated axis-parallel rectangle.
type Rect struct {
	XLo, XHi, YLo, YHi float64
}

// Rects returns n random rectangles with lower-left corners uniform in
// [0, span)^2 and side lengths exponential-ish with the given mean.
func Rects(seed uint64, n int, span, meanSide float64) []Rect {
	r := seq.NewRNG(seed)
	yR := r.Split(1)
	wR := r.Split(2)
	hR := r.Split(3)
	out := make([]Rect, n)
	parallel.For(n, 0, func(i int) {
		xlo := r.AtFloat(uint64(i)) * span
		ylo := yR.AtFloat(uint64(i)) * span
		out[i] = Rect{
			XLo: xlo, XHi: xlo + expSample(wR, uint64(i), meanSide),
			YLo: ylo, YHi: ylo + expSample(hR, uint64(i), meanSide),
		}
	})
	return out
}

// ReadStream returns n keys to look up, sampled from the loaded key set
// (YCSB workload C: 100% reads). If zipf is true the sampled indices are
// Zipf-skewed (YCSB's default request distribution), else uniform.
func ReadStream(seed uint64, n int, loaded []uint64, zipf bool) []uint64 {
	out := make([]uint64, n)
	if len(loaded) == 0 {
		return out
	}
	if zipf {
		z := NewZipf(seed, 0.99, min(len(loaded)-1, 1<<20))
		parallel.For(n, 0, func(i int) { out[i] = loaded[z.At(uint64(i))%len(loaded)] })
		return out
	}
	r := seq.NewRNG(seed)
	parallel.For(n, 0, func(i int) { out[i] = loaded[r.AtRange(uint64(i), uint64(len(loaded)))] })
	return out
}
