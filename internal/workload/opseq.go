package workload

import "repro/internal/seq"

// OpKind enumerates the steps of a dynamic operation sequence, the
// input of the differential op-sequence harness exercising the dynamic
// nested-augmentation structures (rangetree, segcount, stabbing)
// against their naive baselines.
type OpKind uint8

const (
	// OpInsert adds an element derived from the op's coordinates.
	OpInsert OpKind = iota
	// OpDelete removes the element derived from the op's coordinates
	// (often a live one when coordinates are drawn from a small grid).
	OpDelete
	// OpQuery compares a query derived from the op's coordinates
	// between the structure and its baseline.
	OpQuery
	// OpMerge merges in a small freshly built structure derived from
	// the op's coordinates.
	OpMerge
	// OpSnapshot retains the current version for later re-querying —
	// the persistence check.
	OpSnapshot
	numOpKinds
)

// Op is one step of a dynamic operation sequence. A, B, C, D are
// uniform in [0, 1); interpreters scale them onto whatever geometry the
// structure under test needs (a point, a segment, a query window, or a
// seed for a merge batch). W is a small positive weight.
type Op struct {
	Kind       OpKind
	A, B, C, D float64
	W          int64
}

// Mix weights the op kinds of a generated sequence (a zero weight
// disables the kind).
type Mix struct {
	Insert, Delete, Query, Merge, Snapshot int
}

// DefaultMix interleaves updates with queries, the occasional merge,
// and snapshots — the proportions the differential harness wants:
// enough updates to trigger buffer folds, enough queries to catch a
// divergence near the op that introduced it.
var DefaultMix = Mix{Insert: 8, Delete: 4, Query: 8, Merge: 1, Snapshot: 1}

func (m Mix) total() int { return m.Insert + m.Delete + m.Query + m.Merge + m.Snapshot }

// Ops returns a deterministic sequence of n ops drawn from the mix
// (same seed, same sequence — the splittable-stream discipline of the
// other generators).
func Ops(seed uint64, n int, mix Mix) []Op {
	total := mix.total()
	if total <= 0 || n <= 0 {
		return nil
	}
	r := seq.NewRNG(seed)
	ra, rb, rc, rd, rw := r.Split(1), r.Split(2), r.Split(3), r.Split(4), r.Split(5)
	out := make([]Op, n)
	for i := range out {
		t := int(r.AtRange(uint64(i), uint64(total)))
		var k OpKind
		switch {
		case t < mix.Insert:
			k = OpInsert
		case t < mix.Insert+mix.Delete:
			k = OpDelete
		case t < mix.Insert+mix.Delete+mix.Query:
			k = OpQuery
		case t < mix.Insert+mix.Delete+mix.Query+mix.Merge:
			k = OpMerge
		default:
			k = OpSnapshot
		}
		out[i] = Op{
			Kind: k,
			A:    ra.AtFloat(uint64(i)),
			B:    rb.AtFloat(uint64(i)),
			C:    rc.AtFloat(uint64(i)),
			D:    rd.AtFloat(uint64(i)),
			W:    int64(rw.AtRange(uint64(i), 9)) + 1,
		}
	}
	return out
}
