package experiments

import (
	"repro/internal/workload"
	"repro/pam"
)

// Shared typed instantiations used across experiments: 64-bit keys and
// values, as in §6.1.

// SumMap is the paper's Equation-1 map (augmented by value sum).
type SumMap = pam.AugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]]

// MaxMap is augmented by max value (the AugFilter experiments).
type MaxMap = pam.AugMap[uint64, int64, int64, pam.MaxEntry[uint64, int64]]

// PlainMap is the non-augmented comparison map.
type PlainMap = pam.Map[uint64, int64]

func newSumMap() SumMap {
	return pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
}

func newMaxMap() MaxMap {
	return pam.NewAugMap[uint64, int64, int64, pam.MaxEntry[uint64, int64]](pam.Options{})
}

func newPlainMap() PlainMap { return pam.NewMap[uint64, int64](pam.Options{}) }

// kvInput generates n random key-value pairs over a key space of 2n
// (roughly half the keys collide, like the paper's uniform workloads).
func kvInput(seed uint64, n int) []pam.KV[uint64, int64] {
	ks, vs := workload.KeyValues(seed, n, uint64(2*n))
	out := make([]pam.KV[uint64, int64], n)
	for i := range out {
		out[i] = pam.KV[uint64, int64]{Key: ks[i], Val: vs[i]}
	}
	return out
}

func addV(a, b int64) int64 { return a + b }

// buildSum builds a SumMap from n seeded pairs.
func buildSum(seed uint64, n int) SumMap {
	return newSumMap().Build(kvInput(seed, n), addV)
}

func buildMax(seed uint64, n int) MaxMap {
	return newMaxMap().Build(kvInput(seed, n), nil)
}

func buildPlain(seed uint64, n int) PlainMap {
	return newPlainMap().Build(kvInput(seed, n), nil)
}
