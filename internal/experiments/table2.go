package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Table 2 lists asymptotic work/span bounds. This experiment verifies
// the work bounds empirically by counting key comparisons at two sizes
// and reporting the measured growth against the predicted term, the same
// methodology as the complexity tests in internal/core but rendered as a
// table (the span bounds are theory; see DESIGN.md).

func init() {
	register(Experiment{
		Name: "table2",
		Desc: "Empirical work bounds by comparison counting (Table 2)",
		Run:  runTable2,
	})
}

// countingEntry counts comparisons through a package-level counter.
type countingEntry struct{}

var cmpCounter int64 // experiments run these sequentially; no atomics needed

func (countingEntry) Less(a, b uint64) bool { cmpCounter++; return a < b }
func (countingEntry) Id() int64             { return 0 }
func (countingEntry) Base(_ uint64, v int64) int64 {
	return v
}
func (countingEntry) Combine(x, y int64) int64 { return x + y }

type countTree = core.Tree[uint64, int64, int64, countingEntry]

func buildCount(n int) countTree {
	items := make([]core.Entry[uint64, int64], n)
	for i := range items {
		items[i] = core.Entry[uint64, int64]{Key: uint64(2 * i), Val: 1}
	}
	return core.New[uint64, int64, int64, countingEntry](core.Config{}).BuildSorted(items)
}

func counted(f func()) int64 {
	cmpCounter = 0
	f()
	return cmpCounter
}

func runTable2(c Config) []Table {
	c = c.WithDefaults()
	old := parallel.Parallelism()
	parallel.SetParallelism(1) // exact deterministic counts
	defer parallel.SetParallelism(old)

	n := min(c.N, 1<<20)
	n2 := n / 4
	t := buildCount(n)
	tSmall := buildCount(n2)

	lg := func(x int) float64 { return math.Log2(float64(x)) }
	var rows [][]string
	add := func(op string, measured, predicted float64, bound string) {
		rows = append(rows, []string{
			op, bound,
			fmt.Sprintf("%.1f", measured),
			fmt.Sprintf("%.1f", predicted),
			fmt.Sprintf("%.2f", measured/predicted),
		})
	}

	// find: log n comparisons per op (2 per level).
	const qn = 1000
	cFind := counted(func() {
		for i := 0; i < qn; i++ {
			t.Find(uint64(i * 37 % (2 * n)))
		}
	})
	add("find (per op)", float64(cFind)/qn, 2*lg(n), "log n")

	// insert.
	cIns := counted(func() {
		tt := t
		for i := 0; i < qn; i++ {
			tt = tt.Insert(uint64(i*2+1), 0)
		}
	})
	add("insert (per op)", float64(cIns)/qn, 4*lg(n), "log n")

	// union at m = n/1000.
	m := max(n/1000, 16)
	small := buildCount(m)
	cU := counted(func() { t.UnionWith(small, addV) })
	add("union (total)", float64(cU), 3*float64(m)*(lg(n/m)+1), "m log(n/m+1)")

	// augRange: log n per query, independent of width.
	cAR := counted(func() {
		for i := 0; i < qn; i++ {
			t.AugRange(uint64(i), uint64(i+n))
		}
	})
	add("augRange (per op)", float64(cAR)/qn, 4*lg(n), "log n")

	// build (pre-sorted): O(n).
	cB := counted(func() { buildCount(n) })
	add("build sorted (total)", float64(cB), 4*float64(n), "n")

	// split: log n.
	cS := counted(func() {
		for i := 0; i < qn; i++ {
			t.Split(uint64(i * 31 % (2 * n)))
		}
	})
	add("split (per op)", float64(cS)/qn, 6*lg(n), "log n")

	// growth check: find at n vs n/4 should differ by ~log(4) = 2 cmps/level*2.
	cFindSmall := counted(func() {
		for i := 0; i < qn; i++ {
			tSmall.Find(uint64(i * 37 % (2 * n2)))
		}
	})
	rows = append(rows, []string{
		"find growth n vs n/4", "log n",
		fmt.Sprintf("%.2f", float64(cFind)/float64(cFindSmall)),
		fmt.Sprintf("%.2f", lg(n)/lg(n2)),
		"-",
	})

	return []Table{{
		Title:  "Table 2: empirical work bounds (comparison counts)",
		Note:   "ratio column = measured / (constant × predicted term); all well below 1 confirms the bound. Span bounds are theoretical (see paper Table 2).",
		Header: []string{"Operation", "Bound", "Measured cmps", "C × bound", "ratio"},
		Rows:   rows,
	}}
}
