package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/pam"
	"repro/rangetree"
)

// Table 4: space — per-node size and augmentation overhead, and the node
// savings that persistence (path copying) buys: union with a skewed size
// ratio shares about half of all nodes; the range tree's inner maps
// share across levels.

func init() {
	register(Experiment{
		Name: "table4",
		Desc: "Space: node sizes, augmentation overhead, sharing from persistence (Table 4)",
		Run:  runTable4,
	})
}

func runTable4(c Config) []Table {
	c = c.WithDefaults()
	n := c.N

	// Node sizes with and without the augmented-value field.
	augSize := core.NodeSize[uint64, int64, int64, pam.SumEntry[uint64, int64]]()
	plainSize := core.NodeSize[uint64, int64, struct{}, pam.NoAug[uint64, int64]]()
	sizes := Table{
		Title:  "Table 4a: node sizes",
		Header: []string{"Type", "node size (B)", "aug field (B)", "overhead"},
		Rows: [][]string{
			{"plain map (u64->i64)", fmt.Sprintf("%d", plainSize), "0", "-"},
			{"augmented map (+i64 sum)", fmt.Sprintf("%d", augSize),
				fmt.Sprintf("%d", augSize-plainSize),
				fmt.Sprintf("%.0f%%", 100*float64(augSize-plainSize)/float64(plainSize))},
		},
		Note: "paper: 48B node, 8B aug, 20% overhead",
	}

	// Union sharing at two size ratios. "Theory" is the unshared count:
	// both inputs plus a fully fresh output.
	sharing := Table{
		Title:  "Table 4b: node sharing from persistent union",
		Header: []string{"m", "unshared #nodes", "actual #nodes", "saving"},
	}
	for _, m := range []int{n, max(n/1000, 1)} {
		t1 := buildSumCore(c.Seed, n)
		t2 := buildSumCore(c.Seed+100, m)
		u := t1.UnionWith(t2, addV)
		unshared := t1.Size() + t2.Size() + u.Size()
		actual := core.CountUniqueNodes(t1, t2, u)
		sharing.Rows = append(sharing.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", unshared),
			fmt.Sprintf("%d", actual),
			fmt.Sprintf("%.1f%%", 100*(1-float64(actual)/float64(unshared))),
		})
	}
	sharing.Note = "paper: 1.2% saving at m=n, 49.0% at m=n/1000"

	// Range tree inner-map sharing: the unshared count is the sum of
	// inner-map sizes over all outer nodes (every outer node would store
	// its own copy); path copying shares most of each child's inner map
	// with its parent's.
	rn := max(n/10, 1000)
	ptsIn := workload.Points(c.Seed+5, rn, float64(rn), 100)
	pts := make([]rangetree.Weighted, rn)
	for i, pt := range ptsIn {
		pts[i] = rangetree.Weighted{Point: rangetree.Point{X: pt.X, Y: pt.Y}, W: pt.W}
	}
	rt := rangetree.New(pam.Options{}).Build(pts)
	theory, actual := rt.InnerNodeCounts()
	inner := Table{
		Title:  "Table 4c: range tree inner-map sharing",
		Header: []string{"outer n", "unshared inner #nodes", "actual inner #nodes", "saving"},
		Rows: [][]string{{
			fmt.Sprintf("%d", rn),
			fmt.Sprintf("%d", theory),
			fmt.Sprintf("%d", actual),
			fmt.Sprintf("%.1f%%", 100*(1-float64(actual)/float64(theory))),
		}},
		Note: "paper: 13.8% saving on inner tree nodes",
	}

	return []Table{sizes, sharing, inner}
}

// buildSumCore builds directly at the core layer so CountUniqueNodes can
// inspect physical sharing.
func buildSumCore(seed uint64, n int) core.Tree[uint64, int64, int64, pam.SumEntry[uint64, int64]] {
	items := kvInput(seed, n)
	entries := make([]core.Entry[uint64, int64], len(items))
	for i, e := range items {
		entries[i] = core.Entry[uint64, int64]{Key: e.Key, Val: e.Val}
	}
	t := core.New[uint64, int64, int64, pam.SumEntry[uint64, int64]](core.Config{})
	return t.Build(entries, addV)
}
