package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/pam"
	"repro/rangetree"
)

// Table 4: space — per-node size and augmentation overhead, and the node
// savings that persistence (path copying) buys: union with a skewed size
// ratio shares about half of all nodes; the range tree's inner maps
// share across levels.

func init() {
	register(Experiment{
		Name: "table4",
		Desc: "Space: node sizes, augmentation overhead, sharing from persistence (Table 4)",
		Run:  runTable4,
	})
}

func runTable4(c Config) []Table {
	c = c.WithDefaults()
	n := c.N

	// Node sizes with and without the augmented-value field.
	augSize := core.NodeSize[uint64, int64, int64, pam.SumEntry[uint64, int64]]()
	plainSize := core.NodeSize[uint64, int64, struct{}, pam.NoAug[uint64, int64]]()
	sizes := Table{
		Title:  "Table 4a: node sizes",
		Header: []string{"Type", "node size (B)", "aug field (B)", "overhead"},
		Rows: [][]string{
			{"plain map (u64->i64)", fmt.Sprintf("%d", plainSize), "0", "-"},
			{"augmented map (+i64 sum)", fmt.Sprintf("%d", augSize),
				fmt.Sprintf("%d", augSize-plainSize),
				fmt.Sprintf("%.0f%%", 100*float64(augSize-plainSize)/float64(plainSize))},
		},
		Note: "paper: 48B node, 8B aug, 20% overhead",
	}

	// Blocked-leaf layout (PaC-tree style, PR 5): the same map built at a
	// few block sizes. With one entry per node (the original PAM layout)
	// bytes/entry is the node size; blocked leaves amortize the node
	// header over B entries, approaching sizeof(entry) + nodeSize/B.
	blocked := Table{
		Title:  "Table 4a': blocked-leaf layout (entries n=" + fmt.Sprintf("%d", n) + ")",
		Header: []string{"block B", "interior nodes", "leaf blocks", "bytes/entry"},
	}
	for _, b := range []int{2, 8, 32, 128} {
		t := buildSumCoreBlocked(c.Seed, n, b)
		ss := t.SpaceStats()
		blocked.Rows = append(blocked.Rows, []string{
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%d", ss.InteriorNodes),
			fmt.Sprintf("%d", ss.LeafBlocks),
			fmt.Sprintf("%.1f", ss.BytesPerEntry),
		})
	}
	blocked.Note = fmt.Sprintf("entry size %dB; PaC-trees (arXiv:2204.06077) report the same ~B-fold header amortization",
		core.EntrySize[uint64, int64]())

	// Compressed blocks (PR 10): the same map with difference-encoded
	// keys and varint values inside each block, against the flat blocked
	// layout at the same block size.
	compressed := Table{
		Title:  "Table 4a'': compressed leaf blocks (entries n=" + fmt.Sprintf("%d", n) + ")",
		Header: []string{"block B", "layout", "bytes/entry", "ratio"},
	}
	for _, b := range []int{8, 32, 128} {
		flat := buildSumCoreBlocked(c.Seed, n, b).SpaceStats()
		comp := buildSumCoreCompressed(c.Seed, n, b).SpaceStats()
		compressed.Rows = append(compressed.Rows,
			[]string{fmt.Sprintf("%d", b), "blocked", fmt.Sprintf("%.1f", flat.BytesPerEntry), "1.0"},
			[]string{fmt.Sprintf("%d", b), "compressed", fmt.Sprintf("%.1f", comp.BytesPerEntry),
				fmt.Sprintf("%.1f", comp.CompressionRatio)},
		)
	}
	compressed.Note = "first-key anchor + zig-zag varint key deltas, varint values; " +
		"ratio is logical/physical bytes (CDS in arXiv:2204.06077 reports ~2-4x on integer keys)"

	// Union sharing at two size ratios. "Unshared" is the physical node
	// count (interior nodes + leaf blocks) if the two inputs and the
	// output were fully private copies; "actual" counts shared nodes
	// once.
	sharing := Table{
		Title:  "Table 4b: node sharing from persistent union",
		Header: []string{"m", "unshared #nodes", "actual #nodes", "saving"},
	}
	for _, m := range []int{n, max(n/1000, 1)} {
		t1 := buildSumCore(c.Seed, n)
		t2 := buildSumCore(c.Seed+100, m)
		u := t1.UnionWith(t2, addV)
		unshared := core.CountUniqueNodes(t1) + core.CountUniqueNodes(t2) + core.CountUniqueNodes(u)
		actual := core.CountUniqueNodes(t1, t2, u)
		sharing.Rows = append(sharing.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", unshared),
			fmt.Sprintf("%d", actual),
			fmt.Sprintf("%.1f%%", 100*(1-float64(actual)/float64(unshared))),
		})
	}
	sharing.Note = "paper: 1.2% saving at m=n, 49.0% at m=n/1000 (per-entry nodes; " +
		"blocked leaves shift savings toward the skewed case, where the big tree's blocks are reused whole)"

	// Range tree inner-map sharing: the unshared count is the sum of
	// inner-map sizes over all outer nodes (every outer node would store
	// its own copy); path copying shares most of each child's inner map
	// with its parent's.
	rn := max(n/10, 1000)
	ptsIn := workload.Points(c.Seed+5, rn, float64(rn), 100)
	pts := make([]rangetree.Weighted, rn)
	for i, pt := range ptsIn {
		pts[i] = rangetree.Weighted{Point: rangetree.Point{X: pt.X, Y: pt.Y}, W: pt.W}
	}
	rt := rangetree.New(pam.Options{}).Build(pts)
	theory, actual := rt.InnerNodeCounts()
	inner := Table{
		Title:  "Table 4c: range tree inner-map sharing",
		Header: []string{"outer n", "unshared inner #nodes", "actual inner #nodes", "saving"},
		Rows: [][]string{{
			fmt.Sprintf("%d", rn),
			fmt.Sprintf("%d", theory),
			fmt.Sprintf("%d", actual),
			fmt.Sprintf("%.1f%%", 100*(1-float64(actual)/float64(theory))),
		}},
		Note: "paper: 13.8% saving on inner tree nodes with per-entry nodes; " +
			"blocked leaves merge small inner maps into fresh blocks (y-keys of sibling " +
			"x-ranges interleave finely), trading structural sharing for ~B-fold fewer inner nodes overall",
	}

	return []Table{sizes, blocked, compressed, sharing, inner}
}

// buildSumCore builds directly at the core layer so CountUniqueNodes can
// inspect physical sharing.
func buildSumCore(seed uint64, n int) core.Tree[uint64, int64, int64, pam.SumEntry[uint64, int64]] {
	return buildSumCoreBlocked(seed, n, 0)
}

func buildSumCoreBlocked(seed uint64, n, block int) core.Tree[uint64, int64, int64, pam.SumEntry[uint64, int64]] {
	items := kvInput(seed, n)
	entries := make([]core.Entry[uint64, int64], len(items))
	for i, e := range items {
		entries[i] = core.Entry[uint64, int64]{Key: e.Key, Val: e.Val}
	}
	t := core.New[uint64, int64, int64, pam.SumEntry[uint64, int64]](core.Config{Block: block})
	return t.Build(entries, addV)
}

func buildSumCoreCompressed(seed uint64, n, block int) core.Tree[uint64, int64, int64, pam.SumEntry[uint64, int64]] {
	items := kvInput(seed, n)
	entries := make([]core.Entry[uint64, int64], len(items))
	for i, e := range items {
		entries[i] = core.Entry[uint64, int64]{Key: e.Key, Val: e.Val}
	}
	t := core.New[uint64, int64, int64, pam.SumEntry[uint64, int64]](
		core.Config{Block: block, Compress: pam.CompressUint64()})
	return t.Build(entries, addV)
}
