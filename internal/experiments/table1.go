package experiments

import (
	"fmt"

	"repro/internal/workload"
	"repro/interval"
	"repro/invindex"
	"repro/pam"
	"repro/rangetree"
)

// Table 1: the headline summary — construction and query time,
// sequential vs parallel, for all four applications.

func init() {
	register(Experiment{
		Name: "table1",
		Desc: "Application summary: construct + query, seq/par/speedup (Table 1)",
		Run:  runTable1,
	})
}

func runTable1(c Config) []Table {
	c = c.WithDefaults()
	p := maxThreads(c)
	var rows [][]string
	addRow := func(app string, n, q int, bc1, bcp, q1, qp float64) {
		rows = append(rows, []string{
			app, fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", bc1), fmt.Sprintf("%.4f", bcp), fmt.Sprintf("%.2f", safeDiv(bc1, bcp)),
			fmt.Sprintf("%d", q), fmt.Sprintf("%.4f", q1), fmt.Sprintf("%.4f", qp), fmt.Sprintf("%.2f", safeDiv(q1, qp)),
		})
	}

	// Range sum (the augmented-sum map).
	n, q := c.N, c.Q
	items := kvInput(c.Seed, n)
	b1 := timeAt(1, func() { _ = newSumMap().Build(items, addV) })
	bp := timeAt(p, func() { _ = newSumMap().Build(items, addV) })
	m := newSumMap().Build(items, addV)
	los := workload.Keys(c.Seed+1, q, uint64(2*n))
	span := uint64(max(2*n/100, 1))
	q1 := timeAt(1, func() {
		for _, lo := range los {
			_ = m.AugRange(lo, lo+span)
		}
	})
	qp := timeAt(p, func() { parallelQueries(p, q, func(i int) { _ = m.AugRange(los[i], los[i]+span) }) })
	addRow("Range Sum", n, q, b1.Seconds(), bp.Seconds(), q1.Seconds(), qp.Seconds())

	// Interval tree: build + stabbing queries.
	ivsIn := workload.Intervals(c.Seed+2, n, float64(n), float64(n)/1000)
	ivs := make([]interval.Interval, n)
	for i, iv := range ivsIn {
		ivs[i] = interval.Interval{Lo: iv.Lo, Hi: iv.Hi}
	}
	b1 = timeAt(1, func() { _ = interval.New(pam.Options{}).Build(ivs) })
	bp = timeAt(p, func() { _ = interval.New(pam.Options{}).Build(ivs) })
	im := interval.New(pam.Options{}).Build(ivs)
	probes := workload.Keys(c.Seed+3, q, uint64(n))
	q1 = timeAt(1, func() {
		for _, pr := range probes {
			_ = im.Stab(float64(pr))
		}
	})
	qp = timeAt(p, func() { parallelQueries(p, q, func(i int) { _ = im.Stab(float64(probes[i])) }) })
	addRow("Interval Tree", n, q, b1.Seconds(), bp.Seconds(), q1.Seconds(), qp.Seconds())

	// 2D range tree: build is heavier (nested maps), scale n down as the
	// paper scales queries down.
	rn := max(c.N/10, 1000)
	ptsIn := workload.Points(c.Seed+4, rn, float64(rn), 100)
	pts := make([]rangetree.Weighted, rn)
	for i, pt := range ptsIn {
		pts[i] = rangetree.Weighted{Point: rangetree.Point{X: pt.X, Y: pt.Y}, W: pt.W}
	}
	b1 = timeAt(1, func() { _ = rangetree.New(pam.Options{}).Build(pts) })
	bp = timeAt(p, func() { _ = rangetree.New(pam.Options{}).Build(pts) })
	rt := rangetree.New(pam.Options{}).Build(pts)
	rq := max(q/10, 100)
	rects := rectsFor(c.Seed+5, rq, float64(rn))
	q1 = timeAt(1, func() {
		for _, r := range rects {
			_ = rt.QuerySum(r)
		}
	})
	qp = timeAt(p, func() { parallelQueries(p, rq, func(i int) { _ = rt.QuerySum(rects[i]) }) })
	addRow("2d Range Tree", rn, rq, b1.Seconds(), bp.Seconds(), q1.Seconds(), qp.Seconds())

	// Inverted index: build + (and, top-10) queries.
	spec := workload.DefaultCorpus(c.N, c.Seed+6)
	occ := spec.Generate()
	triples := make([]invindex.Triple, len(occ))
	for i, o := range occ {
		triples[i] = invindex.Triple{Word: o.Word, Doc: invindex.DocID(o.Doc), W: invindex.Weight(o.W)}
	}
	b1 = timeAt(1, func() { _ = invindex.Build(triples) })
	bp = timeAt(p, func() { _ = invindex.Build(triples) })
	ix := invindex.Build(triples)
	iq := max(q/10, 100)
	queries := spec.QueryWords(iq)
	runQ := func(i int) {
		and := ix.QueryAnd(queries[i][0], queries[i][1])
		_ = invindex.TopK(and, 10)
	}
	q1 = timeAt(1, func() {
		for i := range queries {
			runQ(i)
		}
	})
	qp = timeAt(p, func() { parallelQueries(p, iq, runQ) })
	addRow("Inverted Index", len(triples), iq, b1.Seconds(), bp.Seconds(), q1.Seconds(), qp.Seconds())

	return []Table{{
		Title:  "Table 1: application summary",
		Note:   fmt.Sprintf("p = %d threads; paper: 72 cores / 144 hyperthreads, n = 10^8..10^10", p),
		Header: []string{"Application", "n", "Build T1", "Build Tp", "Spd", "q", "Query T1", "Query Tp", "Spd"},
		Rows:   rows,
	}}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func rectsFor(seed uint64, q int, span float64) []rangetree.Rect {
	xs := workload.Points(seed, q, span, 1)
	out := make([]rangetree.Rect, q)
	w := span / 10
	for i, p := range xs {
		out[i] = rangetree.Rect{XLo: p.X, XHi: p.X + w, YLo: p.Y, YHi: p.Y + w}
	}
	return out
}
