// Background-carry and read-replica experiments (PR 9): the per-update
// latency tail of the spatial store with ladder carries moved off the
// shard goroutine, and the aggregate throughput of replica reads served
// from published per-shard views without touching the write path.
package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/seq"
	"repro/pam"
	"repro/rangetree"
	"repro/serve"
)

// PointUpdateTail measures the sustained-write update-latency tail of
// a single-shard point store: one writer pipelines async insert
// batches with a small in-flight window and the per-batch commit
// latency (enqueue -> resolved) is summarized. With carryWorkers == 0
// every ladder carry — including the top-level merges that rebuild
// most of the structure — runs inline on the shard goroutine, so a
// deep carry stalls the shard and every batch queued behind it spikes
// together; with workers the flush spills an overflow run in O(BufCap)
// and the shard keeps applying, so the tail flattens. The window is
// deliberately small: a deep pipeline's queueing delay would drown the
// carry stalls the benchmark exists to expose. The p50 moves little
// (most flushes are cheap either way, and on a starved machine the
// offloaded merges still compete for the same cores); the p99 is where
// the modes separate.
func PointUpdateTail(carryWorkers, totalOps int) TailStats {
	const (
		window   = 4
		batchLen = 64
	)
	s := serve.NewPointStore(pam.Options{}, nil,
		serve.Tuning{CarryWorkers: carryWorkers, MaxPendingCarries: 4})
	defer s.Close()
	batches := totalOps / batchLen
	lat := make([]time.Duration, 0, batches)
	inflight := make([]*serve.Future, 0, window)
	reap := func(f *serve.Future) {
		lat = append(lat, f.Wait().CommitLatency())
	}
	for b := 0; b < batches; b++ {
		batch := make([]serve.PointOp, batchLen)
		for j := range batch {
			i := b*batchLen + j
			batch[j] = serve.InsertPoint(rangetree.Point{X: float64(i % 4096), Y: float64(i)}, 1)
		}
		f, err := s.ApplyAsync(batch)
		if err != nil {
			panic(err) // block-mode admission on an open store cannot fail
		}
		inflight = append(inflight, f)
		if len(inflight) == window {
			reap(inflight[0])
			inflight = inflight[1:]
		}
	}
	for _, f := range inflight {
		reap(f)
	}
	return tailStats(lat)
}

// ReplicaReadThroughput measures aggregate reads/s from readers
// goroutines doing ReaderView + routed Find against the published
// per-shard replica views while a background writer streams batches.
// Replica reads take no locks and never enter a mailbox, so throughput
// should scale with the reader count until memory bandwidth runs out.
func ReplicaReadThroughput(shards, readers, totalReads int) float64 {
	s := newServeStore(shards)
	defer s.Close()
	serveWriteOnce(s, 1, 1<<14) // preload so reads have something to find

	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		batch := make([]serve.Op[uint64, int64], serveBatchLen)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range batch {
				batch[j] = serve.Put(uint64(i*serveBatchLen+j)%serveKeySpace, int64(j))
			}
			s.Apply(batch)
		}
	}()

	perReader := totalReads / readers
	var done atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			k := uint64(r) * 0x9e3779b97f4a7c15
			n := 0
			for i := 0; i < perReader; i++ {
				v, err := s.ReaderView()
				if err != nil {
					panic(err)
				}
				k = seq.Mix64(k + 1)
				v.Find(k % serveKeySpace)
				n++
			}
			done.Add(int64(n))
		}(r)
	}
	wg.Wait()
	d := time.Since(start)
	close(stop)
	bg.Wait()
	return float64(done.Load()) / d.Seconds()
}

func init() {
	register(Experiment{
		Name: "replica",
		Desc: "background ladder carries: update-latency tail with carries on/off the shard goroutine, replica read scaling",
		Run: func(cfg Config) []Table {
			cfg = cfg.WithDefaults()
			ops := cfg.N
			if ops > 1<<18 {
				ops = 1 << 18
			}
			if ops < 1<<13 {
				ops = 1 << 13
			}
			var trows [][]string
			for _, cw := range []int{0, 1, 2} {
				runtime.GC()
				ts := PointUpdateTail(cw, ops)
				trows = append(trows, []string{
					strconv.Itoa(cw),
					ts.P50.String(), ts.P99.String(), ts.Mean.String(),
				})
			}
			reads := 1 << 19
			var rrows [][]string
			for rd := 1; rd <= min(8, 2*runtime.NumCPU()); rd *= 2 {
				ops := ReplicaReadThroughput(min(4, runtime.NumCPU()), rd, reads)
				rrows = append(rrows, []string{
					strconv.Itoa(rd),
					fmt.Sprintf("%.0f", ops),
				})
			}
			return []Table{
				{
					Title:  "Point update latency vs carry workers",
					Note:   fmt.Sprintf("%d pipelined async inserts (64-op batches, window 4), single shard; 0 workers = carries inline", ops),
					Header: []string{"carry workers", "p50", "p99", "mean"},
					Rows:   trows,
				},
				{
					Title:  "Replica read throughput",
					Note:   fmt.Sprintf("%d ReaderView+Find reads under a sustained write stream", reads),
					Header: []string{"readers", "reads/s"},
					Rows:   rrows,
				},
			}
		},
	})
}
