package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline/btree"
	"repro/internal/baseline/skiplist"
	"repro/internal/baseline/sortedarray"
	"repro/internal/baseline/sortrebuild"
	"repro/internal/workload"
	"repro/interval"
	"repro/pam"
	"repro/rangetree"

	"repro/internal/baseline/seqrangetree"
)

// Figure 6 experiments: throughput / time curves. Each produces one
// Table whose rows are the points of the paper's plot.

func init() {
	register(Experiment{Name: "fig6a", Desc: "Insert throughput vs threads: PAM multi-insert vs concurrent structures (Fig 6a)", Run: runFig6a})
	register(Experiment{Name: "fig6b", Desc: "Read throughput vs threads, YCSB-C (Fig 6b)", Run: runFig6b})
	register(Experiment{Name: "fig6c", Desc: "Union and Build parallel time vs input size (Fig 6c)", Run: runFig6c})
	register(Experiment{Name: "fig6d", Desc: "Interval tree build & query speedup vs threads (Fig 6d)", Run: runFig6d})
	register(Experiment{Name: "fig6e", Desc: "Range tree sequential build time vs size, vs CGAL analogue (Fig 6e)", Run: runFig6e})
}

// runFig6a loads n keys into an empty store and reports throughput
// (million inserts/second) per thread count. PAM uses parallel
// multi-insert batches (the paper notes this is less general than true
// concurrent insertion); skiplist uses concurrent CAS inserts; the
// B+-tree is single-writer (flat line); sort+rebuild is the bulk
// baseline.
func runFig6a(c Config) []Table {
	c = c.WithDefaults()
	n := c.N
	ks, vs := workload.KeyValues(c.Seed, n, uint64(2*n))
	items := make([]pam.KV[uint64, int64], n)
	pairs := make([]sortedarray.Pair, n)
	for i := range ks {
		items[i] = pam.KV[uint64, int64]{Key: ks[i], Val: vs[i]}
		pairs[i] = sortedarray.Pair{Key: ks[i], Val: vs[i]}
	}
	const batches = 10
	batchSize := n / batches

	var rows [][]string
	for _, th := range c.Threads {
		// PAM: sequential loop of parallel multi-insert batches.
		dPam := timeAt(th, func() {
			m := newSumMap()
			for b := 0; b < batches; b++ {
				lo, hi := b*batchSize, min((b+1)*batchSize, n)
				m.MultiInsertInPlace(items[lo:hi], addV)
			}
		})
		// Skip list: th goroutines inserting concurrently.
		dSkip := timeIt(func() {
			l := skiplist.New()
			var wg sync.WaitGroup
			for w := 0; w < th; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < n; i += th {
						l.Insert(ks[i], vs[i])
					}
				}(w)
			}
			wg.Wait()
		})
		// Sort+rebuild bulk loads in the same batch pattern as PAM.
		dReb := timeAt(th, func() {
			s := sortrebuild.New()
			for b := 0; b < batches; b++ {
				lo, hi := b*batchSize, min((b+1)*batchSize, n)
				s.MultiInsert(pairs[lo:hi])
			}
		})
		// B+-tree: single writer regardless of th.
		dBt := timeIt(func() {
			t := btree.New()
			for i := range ks {
				t.Insert(ks[i], vs[i])
			}
		})
		rows = append(rows, []string{
			fmt.Sprint(th), rate(n, dPam), rate(n, dSkip), rate(n, dReb), rate(n, dBt),
		})
	}
	return []Table{{
		Title:  "Figure 6(a): insert throughput (M/s) vs threads",
		Note:   fmt.Sprintf("n = %d inserts into an empty store; paper: 5e7, PAM fastest at all thread counts", n),
		Header: []string{"threads", "PAM multi-insert", "skiplist", "sort+rebuild", "B+tree (1 writer)"},
		Rows:   rows,
	}}
}

// runFig6b loads n keys then measures read-only lookup throughput per
// thread count (YCSB workload C).
func runFig6b(c Config) []Table {
	c = c.WithDefaults()
	n, q := c.N, c.Q
	ks, vs := workload.KeyValues(c.Seed, n, uint64(2*n))
	items := make([]pam.KV[uint64, int64], n)
	for i := range ks {
		items[i] = pam.KV[uint64, int64]{Key: ks[i], Val: vs[i]}
	}
	m := newSumMap().Build(items, addV)
	l := skiplist.New()
	bt := btree.New()
	for i := range ks {
		l.Insert(ks[i], vs[i])
		bt.Insert(ks[i], vs[i])
	}
	reads := workload.ReadStream(c.Seed+1, q, ks, false)

	var rows [][]string
	for _, th := range c.Threads {
		dPam := timeIt(func() { parallelQueries(th, q, func(i int) { m.Find(reads[i]) }) })
		dSkip := timeIt(func() { parallelQueries(th, q, func(i int) { l.Find(reads[i]) }) })
		dBt := timeIt(func() { parallelQueries(th, q, func(i int) { bt.Find(reads[i]) }) })
		rows = append(rows, []string{fmt.Sprint(th), rate(q, dPam), rate(q, dSkip), rate(q, dBt)})
	}
	return []Table{{
		Title:  "Figure 6(b): read throughput (M/s) vs threads (YCSB-C)",
		Note:   fmt.Sprintf("store of %d keys, %d uniform reads; paper: PAM ~= B+tree/Masstree below 72 cores, ahead at 144 threads", n, q),
		Header: []string{"threads", "PAM find", "skiplist find", "B+tree find"},
		Rows:   rows,
	}}
}

// runFig6c: parallel UNION time with one side fixed at n while the other
// sweeps 10^2..n, and parallel BUILD time vs size.
func runFig6c(c Config) []Table {
	c = c.WithDefaults()
	n := c.N
	p := maxThreads(c)
	big := buildSum(c.Seed, n)
	var rows [][]string
	for m := 100; m <= n; m *= 10 {
		small := buildSum(c.Seed+uint64(m), m)
		dU := timeAt(p, func() { _ = big.UnionWith(small, addV) })
		items := kvInput(c.Seed+uint64(m)+1, m)
		dB := timeAt(p, func() { _ = newSumMap().Build(items, addV) })
		rows = append(rows, []string{fmt.Sprint(m), secs(dU), secs(dB)})
	}
	return []Table{{
		Title:  "Figure 6(c): parallel Union (other side fixed at n) and Build time vs input size",
		Note:   fmt.Sprintf("n = %d, p = %d; paper: flat below ~10^6 (insufficient parallelism), then scaling ~linearly", n, p),
		Header: []string{"size", "Union (s)", "Build (s)"},
		Rows:   rows,
	}}
}

// runFig6d: interval tree build and query speedup vs thread count.
func runFig6d(c Config) []Table {
	c = c.WithDefaults()
	n, q := c.N, c.Q
	ivsIn := workload.Intervals(c.Seed, n, float64(n), float64(n)/1000)
	ivs := make([]interval.Interval, n)
	for i, iv := range ivsIn {
		ivs[i] = interval.Interval{Lo: iv.Lo, Hi: iv.Hi}
	}
	probes := make([]float64, q)
	for i, k := range workload.Keys(c.Seed+1, q, uint64(n)) {
		probes[i] = float64(k)
	}
	im := interval.New(pam.Options{}).Build(ivs)
	var b1, q1 time.Duration
	var rows [][]string
	for _, th := range c.Threads {
		b := timeAt(th, func() { _ = interval.New(pam.Options{}).Build(ivs) })
		qd := timeIt(func() { parallelQueries(th, q, func(i int) { _ = im.Stab(probes[i]) }) })
		if th == 1 {
			b1, q1 = b, qd
		}
		rows = append(rows, []string{fmt.Sprint(th), secs(b), speedup(b1, b), secs(qd), speedup(q1, qd)})
	}
	return []Table{{
		Title:  "Figure 6(d): interval tree speedup vs threads",
		Note:   fmt.Sprintf("n = %d intervals, %d stabbing queries; paper: 63x build / 93x query at 144 threads", n, q),
		Header: []string{"threads", "Build (s)", "Build speedup", "Query (s)", "Query speedup"},
		Rows:   rows,
	}}
}

// runFig6e: sequential range tree build time vs number of points,
// against the dedicated sequential baseline.
func runFig6e(c Config) []Table {
	c = c.WithDefaults()
	var rows [][]string
	maxN := max(c.N/10, 10_000)
	for n := 1000; n <= maxN; n *= 10 {
		ptsIn := workload.Points(c.Seed, n, float64(n), 100)
		pts := make([]rangetree.Weighted, n)
		spts := make([]seqrangetree.Point, n)
		for i, pt := range ptsIn {
			pts[i] = rangetree.Weighted{Point: rangetree.Point{X: pt.X, Y: pt.Y}, W: pt.W}
			spts[i] = seqrangetree.Point{X: pt.X, Y: pt.Y, W: pt.W}
		}
		dPam := timeAt(1, func() { _ = rangetree.New(pam.Options{}).Build(pts) })
		dSeq := timeIt(func() { _ = seqrangetree.Build(spts) })
		rows = append(rows, []string{fmt.Sprint(n), secs(dPam), secs(dSeq)})
	}
	return []Table{{
		Title:  "Figure 6(e): sequential range tree build time vs #points",
		Note:   "paper: PAM less than half CGAL's build time at 10^8 points; both O(n log n)",
		Header: []string{"points", "PAM build (s)", "seq baseline build (s)"},
		Rows:   rows,
	}}
}
