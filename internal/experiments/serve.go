// The serving-layer experiment and its perf-suite entries: write
// throughput against shard count (concurrent writers submitting
// batches through the shard mailboxes) and read latency under a
// sustained write stream (each read is a full Snapshot + routed Find on
// the assembled view).
package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/seq"
	"repro/pam"
	"repro/serve"
)

// serveStore is the store shape every serving measurement uses: a
// sum-augmented uint64->int64 map, hash-partitioned with the shared
// splitmix64 finalizer.
type serveStore = serve.Store[uint64, int64, int64, pam.SumEntry[uint64, int64]]

func newServeStore(shards int) *serveStore {
	s, err := serve.NewHashStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
		pam.Options{}, shards, seq.Mix64)
	if err != nil {
		panic(err) // shards >= 1 everywhere in the suite
	}
	return s
}

const (
	serveBatchLen = 64
	serveWriters  = 4
	serveKeySpace = 1 << 20
)

// serveWriteOnce has w concurrent writers push totalOps ops in
// serveBatchLen-sized batches through the store and returns the
// duration.
func serveWriteOnce(s *serveStore, writers, totalOps int) time.Duration {
	perWriter := totalOps / writers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * uint64(perWriter)
			batch := make([]serve.Op[uint64, int64], 0, serveBatchLen)
			for i := 0; i < perWriter; i++ {
				k := (base + uint64(i)*0x9e3779b9) % serveKeySpace
				batch = append(batch, serve.Put(k, int64(i)))
				if len(batch) == serveBatchLen {
					s.Apply(batch)
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				s.Apply(batch)
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// ServeWriteThroughput measures sustained batched write throughput
// (ops/s) at the given shard count.
func ServeWriteThroughput(shards, totalOps int) float64 {
	s := newServeStore(shards)
	defer s.Close()
	d := serveWriteOnce(s, serveWriters, totalOps)
	return float64(totalOps) / d.Seconds()
}

// asyncWriteTail drives writers that each keep a window of in-flight
// async batches (apply is Store.ApplyAsync or DurableStore.ApplyAsync)
// and collects every batch's commit latency — the enqueue-to-resolve
// time of a sustained-load fire-and-forget write. The window models a
// client pipelining writes instead of blocking per batch.
func asyncWriteTail(apply func([]serve.Op[uint64, int64]) (*serve.Future, error), writers, totalOps int) TailStats {
	const window = 64
	batches := totalOps / writers / serveBatchLen
	lats := make([][]time.Duration, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats[w] = make([]time.Duration, 0, batches)
			inflight := make([]*serve.Future, 0, window)
			reap := func(f *serve.Future) {
				lats[w] = append(lats[w], f.Wait().CommitLatency())
			}
			base := uint64(w) * uint64(batches*serveBatchLen)
			for b := 0; b < batches; b++ {
				batch := make([]serve.Op[uint64, int64], serveBatchLen)
				for j := range batch {
					k := (base + uint64(b*serveBatchLen+j)*0x9e3779b9) % serveKeySpace
					batch[j] = serve.Put(k, int64(j))
				}
				f, err := apply(batch)
				if err != nil {
					panic(err) // block-mode admission on an open store cannot fail
				}
				inflight = append(inflight, f)
				if len(inflight) == window {
					reap(inflight[0])
					inflight = inflight[1:]
				}
			}
			for _, f := range inflight {
				reap(f)
			}
		}(w)
	}
	wg.Wait()
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	return tailStats(all)
}

// ServeAsyncWriteLatency measures the commit-latency tail of sustained
// pipelined async writes (ApplyAsync + future resolution) at the given
// shard count.
func ServeAsyncWriteLatency(shards, totalOps int) TailStats {
	s := newServeStore(shards)
	defer s.Close()
	return asyncWriteTail(s.ApplyAsync, serveWriters, totalOps)
}

// ServeReadUnderWrites measures per-read latency (Snapshot + Find)
// while a background writer streams batches, returning tail stats over
// q reads.
func ServeReadUnderWrites(shards, q int) TailStats {
	s := newServeStore(shards)
	defer s.Close()
	// Preload so reads have something to find.
	serveWriteOnce(s, 1, 1<<14)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]serve.Op[uint64, int64], serveBatchLen)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range batch {
				batch[j] = serve.Put(uint64(i*serveBatchLen+j)%serveKeySpace, int64(j))
			}
			s.Apply(batch)
		}
	}()
	lat := make([]time.Duration, 0, q)
	for i := 0; i < q; i++ {
		k := uint64(i) * 0x9e3779b9 % serveKeySpace
		lat = append(lat, timeQuery(func() {
			v, _ := s.Snapshot()
			v.Find(k)
		}))
	}
	close(stop)
	wg.Wait()
	return tailStats(lat)
}

// serveShardCounts is the sweep 1, 2, 4, ... up to at least NumCPU
// (shard count may exceed the core count: shards are goroutines, not
// threads, and the sweep's point is the 1 -> GOMAXPROCS scaling shape).
func serveShardCounts() []int {
	var out []int
	for p := 1; p <= runtime.NumCPU(); p *= 2 {
		out = append(out, p)
	}
	if last := out[len(out)-1]; last < 4 {
		// Keep the sweep meaningful on small machines.
		for p := last * 2; p <= 4; p *= 2 {
			out = append(out, p)
		}
	}
	return out
}

func init() {
	register(Experiment{
		Name: "serve",
		Desc: "sharded serving layer: write throughput vs shard count, read latency under sustained writes",
		Run: func(cfg Config) []Table {
			cfg = cfg.WithDefaults()
			totalOps := cfg.N
			if totalOps > 1<<20 {
				totalOps = 1 << 20
			}
			if totalOps < 1<<14 {
				totalOps = 1 << 14
			}
			var wrows [][]string
			for _, sc := range serveShardCounts() {
				ops := ServeWriteThroughput(sc, totalOps)
				wrows = append(wrows, []string{
					strconv.Itoa(sc),
					fmt.Sprintf("%.0f", ops),
				})
			}
			q := cfg.Q
			if q > 4096 {
				q = 4096
			}
			if q < 256 {
				q = 256
			}
			rd := ServeReadUnderWrites(min(4, runtime.NumCPU()*2), q)
			aw := ServeAsyncWriteLatency(min(4, runtime.NumCPU()*2), totalOps)
			return []Table{
				{
					Title:  "Serve write throughput",
					Note:   fmt.Sprintf("%d ops in %d-op batches from %d concurrent writers", totalOps, serveBatchLen, serveWriters),
					Header: []string{"shards", "ops/s"},
					Rows:   wrows,
				},
				{
					Title:  "Serve read latency under writes",
					Note:   fmt.Sprintf("Snapshot+Find per read, %d reads, background writer streaming %d-op batches", q, serveBatchLen),
					Header: []string{"p50", "p99", "mean"},
					Rows: [][]string{{
						rd.P50.String(), rd.P99.String(), rd.Mean.String(),
					}},
				},
				{
					Title:  "Serve async write commit latency",
					Note:   fmt.Sprintf("ApplyAsync enqueue-to-resolve per %d-op batch, %d writers pipelining 64 in-flight batches", serveBatchLen, serveWriters),
					Header: []string{"p50", "p99", "mean"},
					Rows: [][]string{{
						aw.P50.String(), aw.P99.String(), aw.Mean.String(),
					}},
				},
			}
		},
	})
}
