package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline/llrb"
	"repro/internal/baseline/sortedarray"
	"repro/internal/baseline/sortrebuild"
	"repro/internal/workload"
	"repro/pam"
)

// Table 3: timings for the core functions on the augmented-sum map, the
// same functions without augmentation, and the STL / MCSTL baselines.
// Every row reports T1, Tp and speedup exactly like the paper (sizes are
// scaled by -n; the paper used n = 10^8 and m ∈ {n, 10^-3 n}).

func init() {
	register(Experiment{
		Name: "table3",
		Desc: "Core function timings: augmented vs plain PAM vs STL/MCSTL analogues (Table 3)",
		Run:  runTable3,
	})
}

func runTable3(c Config) []Table {
	c = c.WithDefaults()
	n := c.N
	m := max(n/1000, 1)
	p := maxThreads(c)

	var rows [][]string
	add := func(name string, n2, m2 int, t1, tp time.Duration) {
		mCol := "-"
		if m2 >= 0 {
			mCol = fmt.Sprintf("%d", m2)
		}
		tpCol, spd := "-", "-"
		if tp > 0 {
			tpCol, spd = secs(tp), speedup(t1, tp)
		}
		rows = append(rows, []string{name, fmt.Sprintf("%d", n2), mCol, secs(t1), tpCol, spd})
	}

	// --- PAM with augmentation ---
	big := buildSum(c.Seed, n)
	big2 := buildSum(c.Seed+1, n)
	small := buildSum(c.Seed+2, m)

	add("Union", n, n,
		timeAt(1, func() { _ = big.UnionWith(big2, addV) }),
		timeAt(p, func() { _ = big.UnionWith(big2, addV) }))
	add("Union", n, m,
		timeAt(1, func() { _ = big.UnionWith(small, addV) }),
		timeAt(p, func() { _ = big.UnionWith(small, addV) }))

	finds := workload.Keys(c.Seed+3, c.Q, uint64(2*n))
	findLoop := func(mp SumMap) func() {
		return func() {
			var sink int64
			for _, k := range finds {
				if v, ok := mp.Find(k); ok {
					sink += v
				}
			}
			_ = sink
		}
	}
	// Find is read-only: the parallel version shards the query stream.
	add("Find", n, c.Q,
		timeAt(1, findLoop(big)),
		timeAt(p, func() { parallelQueries(p, len(finds), func(i int) { big.Find(finds[i]) }) }))

	insN := min(n, 2_000_000) // n sequential inserts; cap the slowest row
	insItems := kvInput(c.Seed+4, insN)
	add("Insert", insN, -1,
		timeAt(1, func() {
			t := newSumMap()
			for _, e := range insItems {
				t.InsertInPlace(e.Key, e.Val)
			}
		}), 0)

	buildItems := kvInput(c.Seed+5, n)
	add("Build", n, -1,
		timeAt(1, func() { _ = newSumMap().Build(buildItems, addV) }),
		timeAt(p, func() { _ = newSumMap().Build(buildItems, addV) }))

	add("Filter", n, -1,
		timeAt(1, func() { _ = big.Filter(func(k uint64, _ int64) bool { return k%2 == 0 }) }),
		timeAt(p, func() { _ = big.Filter(func(k uint64, _ int64) bool { return k%2 == 0 }) }))

	miBig := kvInput(c.Seed+6, n)
	miSmall := kvInput(c.Seed+7, m)
	add("Multi-Insert", n, n,
		timeAt(1, func() { _ = big.MultiInsert(miBig, addV) }),
		timeAt(p, func() { _ = big.MultiInsert(miBig, addV) }))
	add("Multi-Insert", n, m,
		timeAt(1, func() { _ = big.MultiInsert(miSmall, addV) }),
		timeAt(p, func() { _ = big.MultiInsert(miSmall, addV) }))

	// Q range extractions / augmented queries over random windows.
	los := workload.Keys(c.Seed+8, c.Q, uint64(2*n))
	span := uint64(max(2*n/100, 1))
	add("Range", n, c.Q,
		timeAt(1, func() {
			for _, lo := range los {
				_ = big.Range(lo, lo+span)
			}
		}),
		timeAt(p, func() { parallelQueries(p, len(los), func(i int) { _ = big.Range(los[i], los[i]+span) }) }))

	add("AugLeft", n, c.Q,
		timeAt(1, func() {
			var s int64
			for _, lo := range los {
				s += big.AugLeft(lo)
			}
			_ = s
		}),
		timeAt(p, func() { parallelQueries(p, len(los), func(i int) { _ = big.AugLeft(los[i]) }) }))

	add("AugRange", n, c.Q,
		timeAt(1, func() {
			var s int64
			for _, lo := range los {
				s += big.AugRange(lo, lo+span)
			}
			_ = s
		}),
		timeAt(p, func() { parallelQueries(p, len(los), func(i int) { _ = big.AugRange(los[i], los[i]+span) }) }))

	// AugFilter at two output sizes (the paper's m = 10^6 and 10^5 for
	// n = 10^8, i.e. n/100 and n/1000).
	maxM := buildMax(c.Seed, n)
	for _, k := range []int{n / 100, n / 1000} {
		th := thresholdFor(maxM, k)
		add("AugFilter", n, k,
			timeAt(1, func() { _ = maxM.AugFilter(func(a int64) bool { return a >= th }) }),
			timeAt(p, func() { _ = maxM.AugFilter(func(a int64) bool { return a >= th }) }))
	}
	augRows := rows

	// --- Non-augmented PAM: same general functions ---
	rows = nil
	pbig := buildPlain(c.Seed, n)
	pbig2 := buildPlain(c.Seed+1, n)
	add("Union", n, n,
		timeAt(1, func() { _ = pbig.UnionWith(pbig2, addV) }),
		timeAt(p, func() { _ = pbig.UnionWith(pbig2, addV) }))
	add("Insert", insN, -1,
		timeAt(1, func() {
			t := newPlainMap()
			for _, e := range insItems {
				t.InsertInPlace(e.Key, e.Val)
			}
		}), 0)
	add("Build", n, -1,
		timeAt(1, func() { _ = newPlainMap().Build(buildItems, nil) }),
		timeAt(p, func() { _ = newPlainMap().Build(buildItems, nil) }))
	add("Range", n, c.Q,
		timeAt(1, func() {
			for _, lo := range los {
				_ = pbig.Range(lo, lo+span)
			}
		}),
		timeAt(p, func() { parallelQueries(p, len(los), func(i int) { _ = pbig.Range(los[i], los[i]+span) }) }))

	// --- Non-augmented PAM: augmented functions done the slow way ---
	scanQ := max(c.Q/100, 1) // the paper used 100x fewer queries here
	add("AugRange(scan)", n, scanQ,
		timeAt(1, func() {
			for _, lo := range los[:scanQ] {
				var s int64
				pbig.Range(lo, lo+span).ForEach(func(_ uint64, v int64) bool { s += v; return true })
				_ = s
			}
		}),
		timeAt(p, func() {
			parallelQueries(p, scanQ, func(i int) {
				var s int64
				pbig.Range(los[i], los[i]+span).ForEach(func(_ uint64, v int64) bool { s += v; return true })
				_ = s
			})
		}))
	pmaxVals := buildPlain(c.Seed+9, n)
	for _, k := range []int{n / 100, n / 1000} {
		th := int64(k) // plain filter cost is k-independent; threshold only shapes output
		add("AugFilter(plain)", n, k,
			timeAt(1, func() { _ = pmaxVals.Filter(func(_ uint64, v int64) bool { return v >= th }) }),
			timeAt(p, func() { _ = pmaxVals.Filter(func(_ uint64, v int64) bool { return v >= th }) }))
	}
	plainRows := rows

	// --- STL analogues (sequential by design) ---
	rows = nil
	lt1 := llrbFrom(buildItems)
	lt2 := llrbFrom(miBig)
	lts := llrbFrom(miSmall)
	add("Union-Tree", n, n, timeIt(func() { _ = llrb.UnionInto(lt1, lt2) }), 0)
	add("Union-Tree", n, m, timeIt(func() { _ = llrb.UnionInto(lt1, lts) }), 0)
	sa1 := sortedarray.Build(toPairs(buildItems))
	sa2 := sortedarray.Build(toPairs(miBig))
	sas := sortedarray.Build(toPairs(miSmall))
	add("Union-Array", n, n, timeIt(func() { _ = sortedarray.Union(sa1, sa2) }), 0)
	add("Union-Array", n, m, timeIt(func() { _ = sortedarray.Union(sa1, sas) }), 0)
	add("Insert", insN, -1, timeIt(func() {
		t := &llrb.Tree{}
		for _, e := range insItems {
			t.Insert(e.Key, e.Val)
		}
	}), 0)
	stlRows := rows

	// --- MCSTL analogue: bulk rebuild multi-insert ---
	rows = nil
	add("Multi-Insert", n, n,
		timeAt(1, func() { rebuildMI(toPairs(buildItems), toPairs(miBig)) }),
		timeAt(p, func() { rebuildMI(toPairs(buildItems), toPairs(miBig)) }))
	add("Multi-Insert", n, m,
		timeAt(1, func() { rebuildMI(toPairs(buildItems), toPairs(miSmall)) }),
		timeAt(p, func() { rebuildMI(toPairs(buildItems), toPairs(miSmall)) }))
	mcstlRows := rows

	header := []string{"Function", "n", "m", "T1 (s)", "Tp (s)", "Speedup"}
	return []Table{
		{Title: "Table 3a: PAM (with augmentation)", Header: header, Rows: augRows},
		{Title: "Table 3b: Non-augmented PAM (general map functions)", Header: header, Rows: plainRows},
		{Title: "Table 3c: Non-augmented PAM (augmented functions by scanning)", Header: header, Rows: plainRows[len(plainRows)-3:],
			Note: "expected: orders slower than 3a's AugRange/AugFilter and insensitive to output size"},
		{Title: "Table 3d: STL analogues (LLRB tree / sorted array), sequential", Header: header, Rows: stlRows},
		{Title: "Table 3e: MCSTL analogue (sort+merge rebuild multi-insert)", Header: header, Rows: mcstlRows},
	}
}

func llrbFrom(items []pam.KV[uint64, int64]) *llrb.Tree {
	t := &llrb.Tree{}
	for _, e := range items {
		t.Insert(e.Key, e.Val)
	}
	return t
}

func toPairs(items []pam.KV[uint64, int64]) []sortedarray.Pair {
	out := make([]sortedarray.Pair, len(items))
	for i, e := range items {
		out[i] = sortedarray.Pair{Key: e.Key, Val: e.Val}
	}
	return out
}

func rebuildMI(base, batch []sortedarray.Pair) {
	s := sortrebuild.FromPairs(base)
	s.MultiInsert(batch)
}

// thresholdFor picks a value threshold so that roughly k entries of the
// max-augmented map exceed it (values are uniform in [0, 1000)).
func thresholdFor(m MaxMap, k int) int64 {
	n := int(m.Size())
	if k >= n {
		return 0
	}
	frac := float64(k) / float64(n)
	return int64((1 - frac) * 1000)
}
