package experiments

import (
	"fmt"

	"repro/internal/workload"
	"repro/invindex"
)

// Table 6: the inverted index — build rate (million elements/second) and
// query throughput for and-then-top-10 queries, sequential vs parallel.
// The corpus is synthetic Zipf (DESIGN.md §1); the paper used the
// 2016-10-01 Wikipedia dump (1.96e9 words).

func init() {
	register(Experiment{
		Name: "table6",
		Desc: "Inverted index: build and ranked and/top-10 query rates (Table 6)",
		Run:  runTable6,
	})
}

func runTable6(c Config) []Table {
	c = c.WithDefaults()
	p := maxThreads(c)
	spec := workload.DefaultCorpus(c.N, c.Seed)
	occ := spec.Generate()
	triples := make([]invindex.Triple, len(occ))
	for i, o := range occ {
		triples[i] = invindex.Triple{Word: o.Word, Doc: invindex.DocID(o.Doc), W: invindex.Weight(o.W)}
	}

	b1 := timeAt(1, func() { _ = invindex.Build(triples) })
	bp := timeAt(p, func() { _ = invindex.Build(triples) })
	ix := invindex.Build(triples)

	nq := max(c.Q/10, 100)
	queries := spec.QueryWords(nq)
	// The paper reports query throughput in documents processed across
	// all queries (177e9 docs over 100K queries), since and/or cost
	// scales with posting sizes, not query count.
	var docsProcessed int64
	for _, q := range queries {
		docsProcessed += ix.Posting(q[0]).Size() + ix.Posting(q[1]).Size()
	}
	runQ := func(i int) {
		and := ix.QueryAnd(queries[i][0], queries[i][1])
		_ = invindex.TopK(and, 10)
	}
	q1 := timeAt(1, func() {
		for i := range queries {
			runQ(i)
		}
	})
	qp := timeAt(p, func() { parallelQueries(p, nq, runQ) })

	return []Table{{
		Title: "Table 6: inverted index",
		Note: fmt.Sprintf("synthetic corpus: %d docs, %d tokens, %d-word vocabulary (Zipf s=%.2f); %d and+top-10 queries touching %d posting entries; paper: build 1.89 Melts/s seq / 82x spd, queries 0.37 G docs/s seq",
			spec.Docs, spec.TotalWords(), spec.Vocabulary, spec.ZipfS, nq, docsProcessed),
		Header: []string{"Op", "elements", "T1 (s)", "Melts/s (T1)", "Tp (s)", "Melts/s (Tp)", "Speedup"},
		Rows: [][]string{
			{"Build", fmt.Sprint(len(triples)), secs(b1), rate(len(triples), b1), secs(bp), rate(len(triples), bp), speedup(b1, bp)},
			{"Queries", fmt.Sprint(docsProcessed), secs(q1), rate(int(docsProcessed), q1), secs(qp), rate(int(docsProcessed), qp), speedup(q1, qp)},
		},
	}}
}
