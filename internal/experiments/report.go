package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Render writes tables as aligned text, the pambench output format.
func Render(w io.Writer, tables []Table) {
	for _, t := range tables {
		fmt.Fprintf(w, "\n%s\n", t.Title)
		if t.Note != "" {
			fmt.Fprintf(w, "  (%s)\n", t.Note)
		}
		widths := make([]int, len(t.Header))
		for i, h := range t.Header {
			widths[i] = len(h)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			parts := make([]string, len(cells))
			for i, cell := range cells {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			}
			fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		}
		line(t.Header)
		sep := make([]string, len(t.Header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
		for _, row := range t.Rows {
			line(row)
		}
	}
}

// RenderCSV writes tables as CSV blocks (one blank-line-separated block
// per table) for plotting.
func RenderCSV(w io.Writer, tables []Table) {
	for _, t := range tables {
		fmt.Fprintf(w, "# %s\n", t.Title)
		fmt.Fprintln(w, strings.Join(t.Header, ","))
		for _, row := range t.Rows {
			fmt.Fprintln(w, strings.Join(row, ","))
		}
		fmt.Fprintln(w)
	}
}
