package experiments

import (
	"fmt"

	"repro/internal/baseline/naiveinterval"
	"repro/internal/baseline/seqrangetree"
	"repro/internal/workload"
	"repro/interval"
	"repro/pam"
	"repro/rangetree"
)

// Table 5: the interval tree and range tree applications — build and
// query times, speedups, and the dedicated sequential baselines (the
// paper compared against CGAL's range tree and noted a Python interval
// tree library ~1000x slower).

func init() {
	register(Experiment{
		Name: "table5",
		Desc: "Interval tree and range tree: build/query vs dedicated baselines (Table 5)",
		Run:  runTable5,
	})
}

func runTable5(c Config) []Table {
	c = c.WithDefaults()
	p := maxThreads(c)
	n, q := c.N, c.Q

	// ---- Interval tree ----
	ivsIn := workload.Intervals(c.Seed, n, float64(n), float64(n)/1000)
	ivs := make([]interval.Interval, n)
	nivs := make([]naiveinterval.Interval, n)
	for i, iv := range ivsIn {
		ivs[i] = interval.Interval{Lo: iv.Lo, Hi: iv.Hi}
		nivs[i] = naiveinterval.Interval{Lo: iv.Lo, Hi: iv.Hi}
	}
	probes := make([]float64, q)
	pr := workload.Keys(c.Seed+1, q, uint64(n))
	for i, k := range pr {
		probes[i] = float64(k)
	}

	var ivRows [][]string
	b1 := timeAt(1, func() { _ = interval.New(pam.Options{}).Build(ivs) })
	bp := timeAt(p, func() { _ = interval.New(pam.Options{}).Build(ivs) })
	ivRows = append(ivRows, []string{"PAM interval", "Build", fmt.Sprint(n), "-", secs(b1), secs(bp), speedup(b1, bp)})
	im := interval.New(pam.Options{}).Build(ivs)
	q1 := timeAt(1, func() {
		for _, x := range probes {
			_ = im.Stab(x)
		}
	})
	qp := timeAt(p, func() { parallelQueries(p, q, func(i int) { _ = im.Stab(probes[i]) }) })
	ivRows = append(ivRows, []string{"PAM interval", "Stab", fmt.Sprint(n), fmt.Sprint(q), secs(q1), secs(qp), speedup(q1, qp)})

	// Naive baseline at a reduced size (it is O(n) per query).
	nn := min(n, 20_000)
	nq := min(q, 200)
	naive := naiveinterval.Build(nivs[:nn])
	nq1 := timeIt(func() {
		for _, x := range probes[:nq] {
			_ = naive.Stab(x)
		}
	})
	ivRows = append(ivRows, []string{"naive scan", "Stab", fmt.Sprint(nn), fmt.Sprint(nq), secs(nq1), "-", "-"})
	ivTable := Table{
		Title:  "Table 5a: interval tree",
		Note:   "expected: PAM per-query cost ~log n; naive baseline linear per query (the paper's Python library was ~1000x slower)",
		Header: []string{"Impl", "Op", "n", "q", "T1 (s)", "Tp (s)", "Speedup"},
		Rows:   ivRows,
	}

	// ---- Range tree ----
	rn := max(n/10, 1000)
	rq := max(q/10, 100)
	ptsIn := workload.Points(c.Seed+2, rn, float64(rn), 100)
	pts := make([]rangetree.Weighted, rn)
	spts := make([]seqrangetree.Point, rn)
	for i, pt := range ptsIn {
		pts[i] = rangetree.Weighted{Point: rangetree.Point{X: pt.X, Y: pt.Y}, W: pt.W}
		spts[i] = seqrangetree.Point{X: pt.X, Y: pt.Y, W: pt.W}
	}
	rects := rectsFor(c.Seed+3, rq, float64(rn))

	var rtRows [][]string
	b1 = timeAt(1, func() { _ = rangetree.New(pam.Options{}).Build(pts) })
	bp = timeAt(p, func() { _ = rangetree.New(pam.Options{}).Build(pts) })
	rtRows = append(rtRows, []string{"PAM range tree", "Build", fmt.Sprint(rn), "-", secs(b1), secs(bp), speedup(b1, bp)})
	rt := rangetree.New(pam.Options{}).Build(pts)
	q1 = timeAt(1, func() {
		for _, r := range rects {
			_ = rt.QuerySum(r)
		}
	})
	qp = timeAt(p, func() { parallelQueries(p, rq, func(i int) { _ = rt.QuerySum(rects[i]) }) })
	rtRows = append(rtRows, []string{"PAM range tree", "Q-Sum", fmt.Sprint(rn), fmt.Sprint(rq), secs(q1), secs(qp), speedup(q1, qp)})
	q1 = timeAt(1, func() {
		for _, r := range rects {
			_ = rt.ReportAll(r)
		}
	})
	qp = timeAt(p, func() { parallelQueries(p, rq, func(i int) { _ = rt.ReportAll(rects[i]) }) })
	rtRows = append(rtRows, []string{"PAM range tree", "Q-All", fmt.Sprint(rn), fmt.Sprint(rq), secs(q1), secs(qp), speedup(q1, qp)})

	sb := timeIt(func() { _ = seqrangetree.Build(spts) })
	rtRows = append(rtRows, []string{"seq range tree (CGAL analogue)", "Build", fmt.Sprint(rn), "-", secs(sb), "-", "-"})
	st := seqrangetree.Build(spts)
	sq := timeIt(func() {
		for _, r := range rects {
			_ = st.ReportAll(r.XLo, r.XHi, r.YLo, r.YHi)
		}
	})
	rtRows = append(rtRows, []string{"seq range tree (CGAL analogue)", "Q-All", fmt.Sprint(rn), fmt.Sprint(rq), secs(sq), "-", "-"})
	sqs := timeIt(func() {
		for _, r := range rects {
			_ = st.QuerySum(r.XLo, r.XHi, r.YLo, r.YHi)
		}
	})
	rtRows = append(rtRows, []string{"seq range tree (CGAL analogue)", "Q-Sum", fmt.Sprint(rn), fmt.Sprint(rq), secs(sqs), "-", "-"})

	rtTable := Table{
		Title:  "Table 5b: 2D range tree",
		Note:   "paper: PAM beat CGAL ~2.6x on build and ~2.5x on Q-All sequentially; both structures answer Q-Sum in O(log^2 n)",
		Header: []string{"Impl", "Op", "n", "q", "T1 (s)", "Tp (s)", "Speedup"},
		Rows:   rtRows,
	}
	return []Table{ivTable, rtTable}
}
