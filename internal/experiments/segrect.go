package experiments

import (
	"fmt"

	"repro/internal/baseline/naiverect"
	"repro/internal/baseline/naiveseg"
	"repro/internal/workload"
	"repro/pam"
	"repro/segcount"
	"repro/stabbing"
)

// The segment- and rectangle-query structures from the follow-up paper
// "Parallel Range, Segment and Rectangle Queries with Augmented Maps"
// (Sun & Blelloch, arXiv:1803.08621): build and query times against the
// linear-scan baselines, in the same format as the Table 5 applications.

func init() {
	register(Experiment{
		Name: "segrect",
		Desc: "Segment crossing and rectangle stabbing: build/query vs naive scans (arXiv:1803.08621)",
		Run:  runSegRect,
	})
}

func runSegRect(c Config) []Table {
	c = c.WithDefaults()
	p := maxThreads(c)
	// The nested union augmentations make builds ~log n times more
	// expensive than a flat map's, like the range tree: scale n down.
	n := max(c.N/10, 1000)
	q := max(c.Q/10, 100)

	// ---- Segment queries ----
	span := float64(n)
	segsIn := workload.Segments(c.Seed, n, span, span/1000)
	segs := make([]segcount.Segment, n)
	nsegs := make([]naiveseg.Segment, n)
	for i, s := range segsIn {
		segs[i] = segcount.Segment{XLo: s.XLo, XHi: s.XHi, Y: s.Y}
		nsegs[i] = naiveseg.Segment{XLo: s.XLo, XHi: s.XHi, Y: s.Y}
	}
	probes := make([][3]float64, q)
	pr := workload.Keys(c.Seed+1, 3*q, uint64(n))
	for i := range probes {
		yLo := float64(pr[3*i+1])
		probes[i] = [3]float64{float64(pr[3*i]), yLo, yLo + float64(pr[3*i+2])/20}
	}

	var segRows [][]string
	b1 := timeAt(1, func() { _ = segcount.New(pam.Options{}).Build(segs) })
	bp := timeAt(p, func() { _ = segcount.New(pam.Options{}).Build(segs) })
	segRows = append(segRows, []string{"PAM segcount", "Build", fmt.Sprint(n), "-", secs(b1), secs(bp), speedup(b1, bp)})
	sm := segcount.New(pam.Options{}).Build(segs)
	q1 := timeAt(1, func() {
		for _, pq := range probes {
			_ = sm.CountCrossing(pq[0], pq[1], pq[2])
		}
	})
	qp := timeAt(p, func() {
		parallelQueries(p, q, func(i int) { _ = sm.CountCrossing(probes[i][0], probes[i][1], probes[i][2]) })
	})
	segRows = append(segRows, []string{"PAM segcount", "Count", fmt.Sprint(n), fmt.Sprint(q), secs(q1), secs(qp), speedup(q1, qp)})
	q1 = timeAt(1, func() {
		for _, pq := range probes {
			_ = sm.ReportCrossing(pq[0], pq[1], pq[2])
		}
	})
	qp = timeAt(p, func() {
		parallelQueries(p, q, func(i int) { _ = sm.ReportCrossing(probes[i][0], probes[i][1], probes[i][2]) })
	})
	segRows = append(segRows, []string{"PAM segcount", "Report", fmt.Sprint(n), fmt.Sprint(q), secs(q1), secs(qp), speedup(q1, qp)})

	nn := min(n, 20_000)
	nq := min(q, 200)
	naiveS := naiveseg.Build(nsegs[:nn])
	nq1 := timeIt(func() {
		for _, pq := range probes[:nq] {
			_ = naiveS.CountCrossing(pq[0], pq[1], pq[2])
		}
	})
	segRows = append(segRows, []string{"naive scan", "Count", fmt.Sprint(nn), fmt.Sprint(nq), secs(nq1), "-", "-"})
	segTable := Table{
		Title:  "Segment queries (arXiv:1803.08621 §4)",
		Note:   "expected: PAM count ~log^2 n per query via nested count maps; naive baseline linear per query",
		Header: []string{"Impl", "Op", "n", "q", "T1 (s)", "Tp (s)", "Speedup"},
		Rows:   segRows,
	}

	// ---- Rectangle stabbing ----
	rectsIn := workload.Rects(c.Seed+2, n, span, span/1000)
	rects := make([]stabbing.Rect, n)
	nrects := make([]naiverect.Rect, n)
	for i, r := range rectsIn {
		rects[i] = stabbing.Rect{XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi}
		nrects[i] = naiverect.Rect{XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi}
	}
	pts := workload.Points(c.Seed+3, q, span, 1)

	var rcRows [][]string
	b1 = timeAt(1, func() { _ = stabbing.New(pam.Options{}).Build(rects) })
	bp = timeAt(p, func() { _ = stabbing.New(pam.Options{}).Build(rects) })
	rcRows = append(rcRows, []string{"PAM stabbing", "Build", fmt.Sprint(n), "-", secs(b1), secs(bp), speedup(b1, bp)})
	rm := stabbing.New(pam.Options{}).Build(rects)
	q1 = timeAt(1, func() {
		for _, pt := range pts {
			_ = rm.CountStab(pt.X, pt.Y)
		}
	})
	qp = timeAt(p, func() { parallelQueries(p, q, func(i int) { _ = rm.CountStab(pts[i].X, pts[i].Y) }) })
	rcRows = append(rcRows, []string{"PAM stabbing", "Count", fmt.Sprint(n), fmt.Sprint(q), secs(q1), secs(qp), speedup(q1, qp)})
	q1 = timeAt(1, func() {
		for _, pt := range pts {
			_ = rm.ReportStab(pt.X, pt.Y)
		}
	})
	qp = timeAt(p, func() { parallelQueries(p, q, func(i int) { _ = rm.ReportStab(pts[i].X, pts[i].Y) }) })
	rcRows = append(rcRows, []string{"PAM stabbing", "Report", fmt.Sprint(n), fmt.Sprint(q), secs(q1), secs(qp), speedup(q1, qp)})

	naiveR := naiverect.Build(nrects[:nn])
	nq1 = timeIt(func() {
		for _, pt := range pts[:nq] {
			_ = naiveR.CountStab(pt.X, pt.Y)
		}
	})
	rcRows = append(rcRows, []string{"naive scan", "Count", fmt.Sprint(nn), fmt.Sprint(nq), secs(nq1), "-", "-"})
	rcTable := Table{
		Title:  "Rectangle stabbing (arXiv:1803.08621 §5)",
		Note:   "expected: PAM count ~log^2 n per query composing the interval-map idea in both dimensions; naive baseline linear per query",
		Header: []string{"Impl", "Op", "n", "q", "T1 (s)", "Tp (s)", "Speedup"},
		Rows:   rcRows,
	}
	return []Table{segTable, rcTable}
}
