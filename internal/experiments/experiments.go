// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) at a configurable scale. Each experiment is a named
// function from a Config to one or more Tables whose rows mirror the
// paper's rows/series; cmd/pambench renders them as text, and the
// root-level benchmarks wrap them in testing.B harnesses.
//
// Paper sizes (10^8–10^10 elements, 72 cores) are scaled by Config.N;
// EXPERIMENTS.md records the shape comparisons. "T1" rows run with
// parallelism forced to 1 and "Tp" rows with the configured maximum, so
// speedups are measured exactly as in the paper (same code, different
// worker counts).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/parallel"
)

// Config scales and seeds an experiment run.
type Config struct {
	// N is the primary input size (the paper's n, typically 10^8 there).
	N int
	// Q is the number of queries where applicable (the paper's m).
	Q int
	// Threads is the list of parallelism levels to sweep for the
	// figure-6 curves; empty means {1, 2, 4, ..., NumCPU}.
	Threads []int
	// Seed makes runs reproducible.
	Seed uint64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.Q == 0 {
		c.Q = c.N / 10
	}
	if len(c.Threads) == 0 {
		for p := 1; p <= runtime.NumCPU(); p *= 2 {
			c.Threads = append(c.Threads, p)
		}
		if last := c.Threads[len(c.Threads)-1]; last != runtime.NumCPU() {
			c.Threads = append(c.Threads, runtime.NumCPU())
		}
	}
	if c.Seed == 0 {
		c.Seed = 20180328 // the paper's arXiv v3 date
	}
	return c
}

// Table is one rendered result table (or one figure's data series).
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	Name string
	Desc string
	Run  func(Config) []Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by name.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName finds an experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// timeIt measures one execution of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// timeAt runs f at the given parallelism level and restores the previous
// level afterwards.
func timeAt(threads int, f func()) time.Duration {
	old := parallel.Parallelism()
	parallel.SetParallelism(threads)
	defer parallel.SetParallelism(old)
	return timeIt(f)
}

// maxThreads returns the largest configured thread count.
func maxThreads(c Config) int {
	m := 1
	for _, t := range c.Threads {
		if t > m {
			m = t
		}
	}
	return m
}

// secs formats a duration in seconds like the paper's tables.
func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// speedup formats T1/Tp.
func speedup(t1, tp time.Duration) string {
	if tp <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", t1.Seconds()/tp.Seconds())
}

// rate formats ops/second in millions (the paper's "M/s" and "Melts/s").
func rate(ops int, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(ops)/d.Seconds()/1e6)
}

// parallelQueries shards a read-only query stream across p goroutines
// (queries are independent: the paper's concurrent-read measurements).
func parallelQueries(p, n int, f func(i int)) {
	if p <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += p {
				f(i)
			}
		}(w)
	}
	wg.Wait()
}
