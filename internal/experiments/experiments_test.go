package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.N == 0 || c.Q == 0 || len(c.Threads) == 0 || c.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.Threads[0] != 1 {
		t.Fatalf("thread sweep must start at 1: %v", c.Threads)
	}
	// Explicit values survive.
	c2 := Config{N: 42, Q: 7, Threads: []int{3}, Seed: 9}.WithDefaults()
	if c2.N != 42 || c2.Q != 7 || c2.Threads[0] != 3 || c2.Seed != 9 {
		t.Fatalf("explicit config clobbered: %+v", c2)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := secs(1500 * time.Millisecond); got != "1.5000" {
		t.Fatalf("secs = %q", got)
	}
	if got := speedup(2*time.Second, time.Second); got != "2.00" {
		t.Fatalf("speedup = %q", got)
	}
	if got := speedup(time.Second, 0); got != "-" {
		t.Fatalf("speedup(0) = %q", got)
	}
	if got := rate(2_000_000, time.Second); got != "2.00" {
		t.Fatalf("rate = %q", got)
	}
	if got := rate(1, 0); got != "-" {
		t.Fatalf("rate(0) = %q", got)
	}
}

func TestParallelQueriesCoversAll(t *testing.T) {
	n := 1000
	seen := make([]int32, n)
	parallelQueries(4, n, func(i int) { seen[i]++ })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	parallelQueries(1, 10, func(i int) {}) // sequential path
}

func TestRenderers(t *testing.T) {
	tables := []Table{{
		Title:  "T",
		Note:   "note",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}}
	var txt bytes.Buffer
	Render(&txt, tables)
	out := txt.String()
	for _, want := range []string{"T", "note", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	RenderCSV(&csv, tables)
	if !strings.Contains(csv.String(), "a,bb") || !strings.Contains(csv.String(), "333,4") {
		t.Fatalf("csv output malformed:\n%s", csv.String())
	}
}

func TestThresholdFor(t *testing.T) {
	m := buildMax(1, 10_000)
	th := thresholdFor(m, 100)
	got := m.AugFilter(func(a int64) bool { return a >= th }).Size()
	// Values are uniform in [0,1000); with n=10^4 the count near the
	// threshold is approximate — accept a factor-of-4 window.
	if got < 25 || got > 400 {
		t.Fatalf("threshold selected %d entries, wanted ~100", got)
	}
	if thresholdFor(m, 20_000) != 0 {
		t.Fatal("k >= n must disable the threshold")
	}
}
