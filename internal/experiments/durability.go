// Durability measurements (PR 6): the WAL's write-path overhead,
// incremental checkpoint cost, and recovery (checkpoint load + WAL
// replay) time. All run against the in-memory failpoint filesystem, so
// the numbers isolate the serialization and protocol cost from disk
// hardware; the relative trajectory is what the perf suite tracks.
package experiments

import (
	"sync"
	"time"

	"repro/internal/seq"
	"repro/pam"
	"repro/serve"
)

type durableStore = serve.DurableStore[uint64, int64, int64, pam.SumEntry[uint64, int64]]

func openDurableStore(fs serve.FS, shards int) (*durableStore, error) {
	return serve.OpenDurableStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
		pam.Options{}, shards, seq.Mix64, pam.Uint64Codec(), serve.DurableConfig{FS: fs})
}

// DurableWriteThroughput is ServeWriteThroughput with the WAL on: the
// same writer/batch shape, but every batch is acknowledged only after
// its log record is flushed. Read against serve_write_<n>shard, the
// gap is the sequencer-granularity logging overhead (group commit
// amortizes the flushes across concurrent writers).
func DurableWriteThroughput(shards, totalOps int) float64 {
	d, err := openDurableStore(serve.NewMemFS(), shards)
	if err != nil {
		panic(err)
	}
	defer d.Close()
	perWriter := totalOps / serveWriters
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < serveWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * uint64(perWriter)
			batch := make([]serve.Op[uint64, int64], 0, serveBatchLen)
			for i := 0; i < perWriter; i++ {
				k := (base + uint64(i)*0x9e3779b9) % serveKeySpace
				batch = append(batch, serve.Put(k, int64(i)))
				if len(batch) == serveBatchLen {
					d.Apply(batch)
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				d.Apply(batch)
			}
		}(w)
	}
	wg.Wait()
	return float64(totalOps) / time.Since(start).Seconds()
}

// DurableAsyncWriteLatency is ServeAsyncWriteLatency with the WAL on:
// a pipelined async batch resolves only after its group-commit fsync,
// so the gap to serve_write_async_<n>shard is the durability cost a
// fire-and-forget writer pays per acknowledged batch.
func DurableAsyncWriteLatency(shards, totalOps int) TailStats {
	d, err := openDurableStore(serve.NewMemFS(), shards)
	if err != nil {
		panic(err)
	}
	defer d.Close()
	return asyncWriteTail(d.ApplyAsync, serveWriters, totalOps)
}

// durableBase builds an n-entry durable store with one full checkpoint
// taken, the starting state for the incremental-checkpoint and recovery
// measurements.
func durableBase(fs serve.FS, shards, n int) *durableStore {
	d, err := openDurableStore(fs, shards)
	if err != nil {
		panic(err)
	}
	batch := make([]serve.Op[uint64, int64], 0, 1024)
	for i := 0; i < n; i++ {
		batch = append(batch, serve.Put(uint64(i), int64(i)))
		if len(batch) == cap(batch) {
			d.Apply(batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		d.Apply(batch)
	}
	if _, err := d.Checkpoint(); err != nil {
		panic(err)
	}
	return d
}

// CheckpointIncremental returns the time for one incremental checkpoint
// capturing k fresh single-key updates against an n-entry base —
// O(k · polylog n) records, independent of n up to the log factor.
// Reported per checkpoint, averaged over rounds.
func CheckpointIncremental(n, k, rounds int) time.Duration {
	d := durableBase(serve.NewMemFS(), 2, n)
	defer d.Close()
	var total time.Duration
	key := uint64(n)
	for r := 0; r < rounds; r++ {
		for i := 0; i < k; i++ {
			key += 0x9e3779b9
			d.Apply([]serve.Op[uint64, int64]{serve.Put(key%uint64(4*n), int64(i))})
		}
		start := time.Now()
		if _, err := d.Checkpoint(); err != nil {
			panic(err)
		}
		total += time.Since(start)
	}
	return total / time.Duration(rounds)
}

// RecoveryReplay returns the time to reopen a durable store from a
// checkpoint of n entries plus a WAL tail of tailBatches batches —
// checkpoint decode, chain re-seeding, and sequential log replay.
func RecoveryReplay(n, tailBatches, rounds int) time.Duration {
	fs := serve.NewMemFS()
	d := durableBase(fs, 2, n)
	for i := 0; i < tailBatches; i++ {
		batch := make([]serve.Op[uint64, int64], serveBatchLen)
		for j := range batch {
			batch[j] = serve.Put(uint64(i*serveBatchLen+j)%uint64(2*n), int64(j))
		}
		d.Apply(batch)
	}
	d.Close()
	state := fs.DurableState()

	var total time.Duration
	for r := 0; r < rounds; r++ {
		start := time.Now()
		rd, err := openDurableStore(serve.NewMemFSFrom(state), 2)
		if err != nil {
			panic(err)
		}
		total += time.Since(start)
		rd.Close()
	}
	return total / time.Duration(rounds)
}

// RecoveryReplayCompacted is RecoveryReplay after chain compaction: the
// store accumulates a long incremental chain through churning
// checkpoints, then Compact rewrites the live state into a single base.
// Recovery time is then bounded by the live set, not the update
// history — read against recovery_replay, this is the payoff compaction
// buys (PR 8).
func RecoveryReplayCompacted(n, rounds int) time.Duration {
	fs := serve.NewMemFS()
	d := durableBase(fs, 2, n)
	for round := 0; round < 8; round++ { // churn: overwrites growing the chain, not the live set
		batch := make([]serve.Op[uint64, int64], serveBatchLen)
		for j := range batch {
			batch[j] = serve.Put(uint64((round*serveBatchLen+j)*0x9e3779b9)%uint64(n), int64(j))
		}
		d.Apply(batch)
		if _, err := d.Checkpoint(); err != nil {
			panic(err)
		}
	}
	if _, err := d.Compact(); err != nil {
		panic(err)
	}
	d.Close()
	state := fs.DurableState()

	var total time.Duration
	for r := 0; r < rounds; r++ {
		start := time.Now()
		rd, err := openDurableStore(serve.NewMemFSFrom(state), 2)
		if err != nil {
			panic(err)
		}
		total += time.Since(start)
		rd.Close()
	}
	return total / time.Duration(rounds)
}
