package experiments

import (
	"runtime"
	"strconv"
	"testing"

	"repro/internal/parallel"
	"repro/pam"
	"repro/rangetree"
	"repro/segcount"
	"repro/stabbing"
)

// scanSink keeps the scan benchmarks' fold from being dead-code
// eliminated.
var scanSink int64

// bench measures one operation with the testing harness (usable outside
// go test) and records ns/op and allocs/op.
func bench(op string, n int, f func(b *testing.B)) BenchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	return BenchResult{
		Op:          op,
		N:           n,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
	}
}

// runPerfSuite is the curated operation list behind `pambench -json`:
// the core map operations, the static query structures, the dynamic
// update paths, and the dynamic query-tail percentiles. Sizes are
// laptop-scale so the whole suite runs in a couple of minutes.
func runPerfSuite() []BenchResult {
	const (
		coreN = 100_000
		geomN = 10_000
		tailN = 1 << 16
		tailU = tailN / 4
	)
	var out []BenchResult

	type sumMap = pam.AugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]]
	add := func(a, b int64) int64 { return a + b }
	mkSum := func(seed uint64, n int) sumMap {
		return pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}).
			Build(perfItems(seed, n), add)
	}

	items := perfItems(1, coreN)
	out = append(out, bench("rangesum_build", coreN, func(b *testing.B) {
		m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
		for i := 0; i < b.N; i++ {
			_ = m.Build(items, add)
		}
	}))

	m1 := mkSum(1, coreN)
	span := uint64(2 * coreN / 100)
	out = append(out, bench("rangesum_query", coreN, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := uint64(i%coreN) * 2
			_ = m1.AugRange(lo, lo+span)
		}
	}))

	m2 := mkSum(2, coreN)
	out = append(out, bench("union_equal", coreN, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m1.UnionWith(m2, add)
		}
	}))

	// Parallel scaling of the two headline bulk paths (the same sweep as
	// BenchmarkParallelScaling): recorded per explicit parallelism level
	// so the trajectory JSON shows speedup — or honestly shows its
	// absence when num_cpu/gomaxprocs is 1.
	for _, p := range []int{1, 2, 4} {
		old := parallel.Parallelism()
		parallel.SetParallelism(p)
		out = append(out, bench("rangesum_build_par"+strconv.Itoa(p), coreN, func(b *testing.B) {
			m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
			for i := 0; i < b.N; i++ {
				_ = m.Build(items, add)
			}
		}))
		out = append(out, bench("union_equal_par"+strconv.Itoa(p), coreN, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m1.UnionWith(m2, add)
			}
		}))
		parallel.SetParallelism(old)
	}

	out = append(out, bench("find", coreN, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m1.Find(uint64(i % (2 * coreN)))
		}
	}))

	// Compressed leaf blocks (PR 10): space per entry of a 1M-entry
	// uint64→int64 map — blocked baseline vs difference-encoded packed
	// blocks — and the full ordered-scan cost over both layouts (the
	// block cursor decodes packed blocks on the fly; the gate holds the
	// compressed scan to the envelope).
	const spaceN = 1 << 20
	spaceItems := perfItems(9, spaceN)
	flatSpace := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}).
		Build(spaceItems, add)
	compSpace := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{Compress: pam.CompressUint64()}).
		Build(spaceItems, add)
	out = append(out,
		BenchResult{Op: "bytes_per_entry", N: spaceN,
			BytesPerEntry: flatSpace.Tree().SpaceStats().BytesPerEntry},
		BenchResult{Op: "bytes_per_entry_compressed", N: spaceN,
			BytesPerEntry: compSpace.Tree().SpaceStats().BytesPerEntry},
	)
	scan := func(op string, m sumMap) BenchResult {
		return bench(op, spaceN, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var s int64
				m.ForEach(func(_ uint64, v int64) bool { s += v; return true })
				scanSink = s
			}
		})
	}
	out = append(out,
		scan("block_scan_throughput", flatSpace),
		scan("block_scan_throughput_compressed", compSpace),
	)

	pts := perfPoints(geomN)
	out = append(out, bench("rangetree_build", geomN, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rangetree.New(pam.Options{}).Build(pts)
		}
	}))

	segs := perfSegs(geomN)
	out = append(out, bench("segcount_build", geomN, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = segcount.New(pam.Options{}).Build(segs)
		}
	}))

	sc := segcount.New(pam.Options{}).Build(segs)
	out = append(out, bench("segcount_count_crossing", geomN, func(b *testing.B) {
		w := float64(geomN) / 10
		for i := 0; i < b.N; i++ {
			x := float64(i % geomN)
			_ = sc.CountCrossing(x, x-w, x+w)
		}
	}))

	rt := rangetree.New(pam.Options{}).Build(pts)
	out = append(out, bench("dynamic_rangetree_insert", geomN, func(b *testing.B) {
		t := rt
		for i := 0; i < b.N; i++ {
			t = t.Insert(rangetree.Point{X: float64(i%geomN) + 0.25, Y: float64(i / geomN)}, 1)
		}
	}))

	out = append(out, bench("dynamic_segcount_insert", geomN, func(b *testing.B) {
		m := sc
		for i := 0; i < b.N; i++ {
			x := float64(i%geomN) + 0.25
			m = m.Insert(segcount.Segment{XLo: x, XHi: x + 50, Y: float64(i / geomN)})
		}
	}))

	st := stabbing.New(pam.Options{}).Build(perfRects(geomN))
	out = append(out, bench("dynamic_stabbing_insert", geomN, func(b *testing.B) {
		m := st
		for i := 0; i < b.N; i++ {
			x := float64(i%geomN) + 0.25
			m = m.Insert(stabbing.Rect{XLo: x, XHi: x + 20, YLo: x, YHi: x + 20})
		}
	}))

	// The serving layer (PR 4): batched write throughput per shard
	// count, and the read tail under a sustained write stream.
	const serveOps = 1 << 17
	for _, nsh := range serveShardCounts() {
		ops := ServeWriteThroughput(nsh, serveOps)
		out = append(out, BenchResult{
			Op:      "serve_write_" + strconv.Itoa(nsh) + "shard",
			N:       serveOps,
			NsPerOp: 1e9 / ops,
		})
	}
	runtime.GC()
	out = append(out, tailResult("serve_read_under_writes", 2048,
		ServeReadUnderWrites(min(4, 2*runtime.NumCPU()), 2048)))

	// Async pipeline (PR 7): per-batch commit latency of sustained
	// pipelined fire-and-forget writes, in-memory and with the WAL on
	// (the gap is the group-commit fsync each async ack waits for).
	runtime.GC()
	out = append(out, tailResult("serve_write_async_4shard", serveOps,
		ServeAsyncWriteLatency(4, serveOps)))
	runtime.GC()
	out = append(out, tailResult("serve_write_async_wal_4shard", serveOps,
		DurableAsyncWriteLatency(4, serveOps)))

	// Durability (PR 6): the same write shape with the WAL on (the gap
	// to serve_write_4shard is the logging overhead), the cost of an
	// incremental checkpoint capturing 64 updates against a 100k-entry
	// base, and recovery time from that checkpoint plus a WAL tail.
	out = append(out, BenchResult{
		Op:      "serve_write_wal_4shard",
		N:       serveOps,
		NsPerOp: 1e9 / DurableWriteThroughput(4, serveOps),
	})
	out = append(out, BenchResult{
		Op:      "checkpoint_incremental",
		N:       coreN,
		NsPerOp: float64(CheckpointIncremental(coreN, 64, 8).Nanoseconds()),
	})
	out = append(out, BenchResult{
		Op:      "recovery_replay",
		N:       coreN,
		NsPerOp: float64(RecoveryReplay(coreN, 256, 8).Nanoseconds()),
	})
	// Self-healing durability (PR 8): recovery from a compacted base —
	// the chain collapsed to the live set — against recovery_replay's
	// incremental chain plus WAL tail.
	out = append(out, BenchResult{
		Op:      "recovery_replay_compacted",
		N:       coreN,
		NsPerOp: float64(RecoveryReplayCompacted(coreN, 8).Nanoseconds()),
	})

	// Background carries + replicas (PR 9): the sustained-write
	// update-latency tail of the spatial store (pipelined async insert
	// batches, per-batch commit latency) with ladder carries off the
	// shard goroutine vs inline — the p99 is the headline, because a
	// deep inline carry stalls the shard and spikes every queued batch
	// at once — and replica read throughput from published per-shard
	// views. NsPerOp of the tail entries is the p99 itself so the gate
	// tracks what the optimization targets.
	const carryOps = 1 << 18
	runtime.GC()
	bgTail := PointUpdateTail(2, carryOps)
	runtime.GC()
	syncTail := PointUpdateTail(0, carryOps)
	out = append(out,
		BenchResult{
			Op: "update_tail_p99", N: carryOps,
			NsPerOp: float64(bgTail.P99.Nanoseconds()),
			P50Ns:   float64(bgTail.P50.Nanoseconds()),
			P99Ns:   float64(bgTail.P99.Nanoseconds()),
		},
		BenchResult{
			Op: "update_tail_p99_synccarry", N: carryOps,
			NsPerOp: float64(syncTail.P99.Nanoseconds()),
			P50Ns:   float64(syncTail.P50.Nanoseconds()),
			P99Ns:   float64(syncTail.P99.Nanoseconds()),
		},
	)
	runtime.GC()
	out = append(out, BenchResult{
		Op:      "replica_read_throughput",
		N:       1 << 19,
		NsPerOp: 1e9 / ReplicaReadThroughput(min(4, runtime.NumCPU()), 4, 1<<19),
	})

	// Let the allocations of the ns/op entries above get collected
	// before the latency-percentile runs, so their GC debt doesn't
	// bleed into the tails.
	runtime.GC()
	ladTail := QueryTailLadder(tailN, tailU)
	runtime.GC()
	bufTail := QueryTailBuffer(tailN, tailU)
	out = append(out,
		tailResult("dynamic_querytail_ladder", tailN, ladTail),
		tailResult("dynamic_querytail_pr2buffer", tailN, bufTail),
	)
	return out
}
