// Perf suite: the measured performance trajectory. `pambench -json`
// (and `make bench-json`) runs RunPerfSuite and emits BENCH_PRn.json —
// one record per operation with ns/op, allocs/op, and worst-case query
// percentiles where measured — so successive PRs can be compared with
// benchstat-style tooling over committed artifacts.
//
// The headline entry is the dynamic query tail: p50/p99 query latency
// under a sustained update stream, measured for the logarithmic-method
// ladder (the current engine) and for an in-file re-implementation of
// the PR-2 single-buffer design (static bulk structure + one flat
// persistent update buffer scanned by every query, folded at the
// size-ratio threshold). The ladder's worst-case polylog claim is
// exactly the p99 gap between the two.
package experiments

import (
	"slices"
	"strconv"
	"time"

	"repro/internal/dynamic"
	"repro/internal/workload"
	"repro/pam"
	"repro/rangetree"
	"repro/segcount"
	"repro/stabbing"
)

// The PR-2 fold policy (the constants the single-buffer design used):
// fold once at least pr2FoldMin updates are buffered AND the buffer is
// at least 1/pr2FoldRatio of the bulk layer.
const (
	pr2FoldMin   = 16
	pr2FoldRatio = 8
)

// TailStats summarizes per-query latencies under an update stream.
type TailStats struct {
	P50, P99, Mean time.Duration
	Queries        int
}

// timeQuery measures the structural latency of one query as the
// minimum of three back-to-back runs: single-shot timings on a busy
// machine fold scheduler preemptions and GC assists (triggered by the
// untimed update stream) into the tail, drowning the structural
// difference the benchmark exists to measure. The minimum keeps every
// deterministic cost — the PR-2 buffer scan is identical on all three
// runs — and sheds only transient stalls. Both engines are measured
// identically.
func timeQuery(f func()) time.Duration {
	best := time.Duration(1 << 62)
	for r := 0; r < 3; r++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func tailStats(lat []time.Duration) TailStats {
	slices.Sort(lat)
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return TailStats{
		P50:     lat[len(lat)/2],
		P99:     lat[len(lat)*99/100],
		Mean:    sum / time.Duration(len(lat)),
		Queries: len(lat),
	}
}

// tailSegments builds the base set and the update stream for the
// query-tail workloads.
func tailSegments(n, updates int) (base, stream []segcount.Segment) {
	raw := workload.Segments(99, n, float64(n), float64(n)/1000)
	base = make([]segcount.Segment, n)
	for i, s := range raw {
		base[i] = segcount.Segment{XLo: s.XLo, XHi: s.XHi, Y: s.Y}
	}
	stream = make([]segcount.Segment, updates)
	for i := range stream {
		x := float64(i%n) + 0.25
		stream[i] = segcount.Segment{XLo: x, XHi: x + 50, Y: float64(n + i)}
	}
	return base, stream
}

// QueryTailLadder measures CountLine latency after every insert of a
// sustained stream into the ladder-based segcount map: the worst-case
// polylog read path (folds happen inside the untimed Insert).
func QueryTailLadder(n, updates int) TailStats {
	base, stream := tailSegments(n, updates)
	m := segcount.New(pam.Options{}).Build(base)
	lat := make([]time.Duration, 0, updates)
	for i, s := range stream {
		m = m.Insert(s)
		x := float64(i % n)
		lat = append(lat, timeQuery(func() { _ = m.CountLine(x) }))
	}
	return tailStats(lat)
}

// pr2Entry orders the PR-2 emulation buffer in segcount's canonical
// (y, xLo, xHi) order, unaugmented.
type pr2Entry struct{}

func (pr2Entry) Less(a, b segcount.Segment) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	return a.XHi < b.XHi
}
func (pr2Entry) Id() struct{}                             { return struct{}{} }
func (pr2Entry) Base(segcount.Segment, struct{}) struct{} { return struct{}{} }
func (pr2Entry) Combine(struct{}, struct{}) struct{}      { return struct{}{} }

// QueryTailBuffer is the PR-2 design re-implemented for comparison: a
// fully built (static) segcount map plus one flat persistent update
// buffer (dynamic.Buffer, exactly the PR-2 secondary layer); every
// query pays the static polylog cost plus a scan of the whole buffer —
// the O(|buffer|) tail the ladder eliminates — and the buffer folds
// into a full rebuild at the PR-2 size-ratio threshold.
func QueryTailBuffer(n, updates int) TailStats {
	base, stream := tailSegments(n, updates)
	static := segcount.New(pam.Options{}).Build(base)
	var buf dynamic.Buffer[segcount.Segment, struct{}, pr2Entry]
	lat := make([]time.Duration, 0, updates)
	for i, s := range stream {
		buf = buf.Insert(s, struct{}{}, struct{}{}, static.Contains(s), nil)
		if p := buf.Pending(); p >= pr2FoldMin && p*pr2FoldRatio >= static.Size() {
			// PR-2 fold: materialize survivors, apply the buffer,
			// rebuild the bulk layer.
			keys := static.Segments()
			kept := keys[:0]
			for _, k := range keys {
				if !buf.Dels.Contains(k) {
					kept = append(kept, k)
				}
			}
			buf.Adds.ForEach(func(k segcount.Segment, _ struct{}) bool {
				kept = append(kept, k)
				return true
			})
			static = static.Build(kept)
			buf = dynamic.Buffer[segcount.Segment, struct{}, pr2Entry]{}
		}
		x := float64(i % n)
		lat = append(lat, timeQuery(func() {
			c := static.CountLine(x)
			// The PR-2 read path: correct the bulk answer by scanning
			// the buffered updates.
			buf.Adds.ForEach(func(s segcount.Segment, _ struct{}) bool {
				if s.CrossesLine(x) {
					c++
				}
				return true
			})
			buf.Dels.ForEach(func(s segcount.Segment, _ struct{}) bool {
				if s.CrossesLine(x) {
					c--
				}
				return true
			})
			_ = c
		}))
	}
	return tailStats(lat)
}

func init() {
	register(Experiment{
		Name: "dynamic",
		Desc: "dynamic-structure query tail: p50/p99 CountLine latency under a sustained insert stream, ladder vs PR-2 buffer",
		Run: func(cfg Config) []Table {
			cfg = cfg.WithDefaults()
			n := cfg.N
			if n > 1<<16 {
				n = 1 << 16
			}
			if n < 1<<12 {
				n = 1 << 12
			}
			updates := n / 4
			lad := QueryTailLadder(n, updates)
			buf := QueryTailBuffer(n, updates)
			row := func(name string, s TailStats) []string {
				return []string{
					name,
					time.Duration(s.P50).String(),
					time.Duration(s.P99).String(),
					time.Duration(s.Mean).String(),
				}
			}
			return []Table{{
				Title:  "Dynamic query tail",
				Note:   "CountLine latency after each of " + strconv.Itoa(updates) + " inserts into a " + strconv.Itoa(n) + "-segment segcount map",
				Header: []string{"engine", "p50", "p99", "mean"},
				Rows: [][]string{
					row("ladder (this PR)", lad),
					row("PR-2 buffer", buf),
				},
			}}
		},
	})
}

// ---- the JSON perf suite -------------------------------------------

// BenchResult is one line of the committed perf trajectory.
type BenchResult struct {
	Op          string  `json:"op"`
	N           int     `json:"n,omitempty"`
	NsPerOp     float64 `json:"ns_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_op,omitempty"`
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
	// BytesPerEntry carries the space entries of the trajectory
	// (bytes_per_entry*): physical bytes per stored entry from
	// SpaceStats, not a timing.
	BytesPerEntry float64 `json:"bytes_per_entry,omitempty"`
}

// RunPerfSuite measures the registered perf-suite operations (via
// testing.Benchmark) plus the dynamic query-tail percentiles, and
// returns the records `pambench -json` serializes.
func RunPerfSuite() []BenchResult {
	return runPerfSuite()
}

// tailResult converts TailStats to a BenchResult.
func tailResult(op string, n int, s TailStats) BenchResult {
	return BenchResult{
		Op:      op,
		N:       n,
		NsPerOp: float64(s.Mean.Nanoseconds()),
		P50Ns:   float64(s.P50.Nanoseconds()),
		P99Ns:   float64(s.P99.Nanoseconds()),
	}
}

// Workloads shared by the ns/op entries.

func perfItems(seed uint64, n int) []pam.KV[uint64, int64] {
	ks, vs := workload.KeyValues(seed, n, uint64(2*n))
	out := make([]pam.KV[uint64, int64], n)
	for i := range out {
		out[i] = pam.KV[uint64, int64]{Key: ks[i], Val: vs[i]}
	}
	return out
}

func perfPoints(n int) []rangetree.Weighted {
	raw := workload.Points(12, n, float64(n), 100)
	out := make([]rangetree.Weighted, n)
	for i, p := range raw {
		out[i] = rangetree.Weighted{Point: rangetree.Point{X: p.X, Y: p.Y}, W: p.W}
	}
	return out
}

func perfSegs(n int) []segcount.Segment {
	raw := workload.Segments(13, n, float64(n), float64(n)/1000)
	out := make([]segcount.Segment, n)
	for i, s := range raw {
		out[i] = segcount.Segment{XLo: s.XLo, XHi: s.XHi, Y: s.Y}
	}
	return out
}

func perfRects(n int) []stabbing.Rect {
	raw := workload.Rects(14, n, float64(n), float64(n)/1000)
	out := make([]stabbing.Rect, n)
	for i, r := range raw {
		out[i] = stabbing.Rect{XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi}
	}
	return out
}
