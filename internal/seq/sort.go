// Package seq provides the parallel sequence primitives that the paper's
// BUILD and MULTI-INSERT functions depend on (§4 "Build"): work-efficient
// parallel sorting, parallel merging, removal of duplicates in sorted
// order, prefix sums, and packing, plus the deterministic random streams
// used by the workload generators.
//
// All functions take explicit comparison or predicate closures and are
// deterministic; parallelism comes from internal/parallel and respects its
// configured level, so the same code path produces the paper's T1 and Tp
// measurements.
package seq

import (
	"slices"

	"repro/internal/parallel"
)

// sortSeqCutoff is the subproblem size below which parallel sort falls
// back to the (sequential) standard-library sort: small slices are
// cheaper to sort in place than to fork over.
const sortSeqCutoff = 4096

// mergeSeqCutoff bounds the sequential base case of parallel merge.
const mergeSeqCutoff = 4096

// Sort sorts s in place with a work-efficient parallel merge sort:
// O(n log n) work and O(log^3 n) span (binary-search parallel merge).
// The sort is not stable; see SortStable.
func Sort[T any](s []T, less func(a, b T) bool) {
	if len(s) < sortSeqCutoff || parallel.Parallelism() == 1 {
		slices.SortFunc(s, lessToCmp(less))
		return
	}
	buf := make([]T, len(s))
	mergeSortInto(s, buf, false, less)
}

// SortStable is Sort but preserves the relative order of equal elements;
// BUILD relies on this so that duplicate-key combining sees values in
// input order.
func SortStable[T any](s []T, less func(a, b T) bool) {
	if len(s) < sortSeqCutoff || parallel.Parallelism() == 1 {
		slices.SortStableFunc(s, lessToCmp(less))
		return
	}
	buf := make([]T, len(s))
	mergeSortInto(s, buf, false, less)
}

func lessToCmp[T any](less func(a, b T) bool) func(a, b T) int {
	return func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	}
}

// mergeSortInto sorts s; if intoBuf is true the sorted data ends up in buf,
// otherwise in s. buf must have the same length as s. The ping-pong
// between the two arrays avoids a copy per merge level. Merging is stable
// (left side wins ties), so the overall sort is stable.
func mergeSortInto[T any](s, buf []T, intoBuf bool, less func(a, b T) bool) {
	if len(s) <= sortSeqCutoff {
		slices.SortStableFunc(s, lessToCmp(less))
		if intoBuf {
			copy(buf, s)
		}
		return
	}
	mid := len(s) / 2
	parallel.Do(
		func() { mergeSortInto(s[:mid], buf[:mid], !intoBuf, less) },
		func() { mergeSortInto(s[mid:], buf[mid:], !intoBuf, less) },
	)
	if intoBuf {
		mergeInto(s[:mid], s[mid:], buf, less)
	} else {
		mergeInto(buf[:mid], buf[mid:], s, less)
	}
}

// MergeInto merges sorted a and b into out (len(out) must be
// len(a)+len(b)) in parallel. The merge is stable: on ties, elements of a
// precede elements of b.
func MergeInto[T any](a, b, out []T, less func(a, b T) bool) {
	mergeInto(a, b, out, less)
}

func mergeInto[T any](a, b, out []T, less func(x, y T) bool) {
	if len(a)+len(b) <= mergeSeqCutoff {
		seqMerge(a, b, out, less)
		return
	}
	// Split the larger side at its midpoint and binary-search the split
	// point in the other side; recurse on the two halves in parallel.
	if len(a) < len(b) {
		// Keep a as the larger side. b's elements must stay *after* equal
		// elements of a, so when splitting on a b-element we binary search
		// for the first a-element greater than it (upper bound).
		mid := len(b) / 2
		pivot := b[mid]
		i := upperBound(a, pivot, less)
		parallel.Do(
			func() { mergeInto(a[:i], b[:mid], out[:i+mid], less) },
			func() { mergeInto(a[i:], b[mid:], out[i+mid:], less) },
		)
		return
	}
	mid := len(a) / 2
	pivot := a[mid]
	j := lowerBound(b, pivot, less)
	parallel.Do(
		func() { mergeInto(a[:mid], b[:j], out[:mid+j], less) },
		func() { mergeInto(a[mid:], b[j:], out[mid+j:], less) },
	)
}

func seqMerge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}

// lowerBound returns the first index i with !less(s[i], x), i.e. the
// insertion point before any elements equal to x.
func lowerBound[T any](s []T, x T, less func(a, b T) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(s[mid], x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index i with less(x, s[i]), i.e. the
// insertion point after any elements equal to x.
func upperBound[T any](s []T, x T, less func(a, b T) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(x, s[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LowerBound exposes lowerBound for callers outside the package.
func LowerBound[T any](s []T, x T, less func(a, b T) bool) int {
	return lowerBound(s, x, less)
}

// UpperBound exposes upperBound for callers outside the package.
func UpperBound[T any](s []T, x T, less func(a, b T) bool) int {
	return upperBound(s, x, less)
}

// IsSorted reports whether s is sorted by less.
func IsSorted[T any](s []T, less func(a, b T) bool) bool {
	for i := 1; i < len(s); i++ {
		if less(s[i], s[i-1]) {
			return false
		}
	}
	return true
}
