package seq

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 1000, 50000} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(n/2 + 1) // force duplicates
		}
		want := slices.Clone(s)
		slices.Sort(want)
		Sort(s, intLess)
		if !slices.Equal(s, want) {
			t.Fatalf("n=%d: parallel sort differs from stdlib", n)
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(s []int16) bool {
		in := make([]int, len(s))
		for i, v := range s {
			in[i] = int(v)
		}
		want := slices.Clone(in)
		slices.Sort(want)
		Sort(in, intLess)
		return slices.Equal(in, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type kv struct{ k, seq int }

func TestSortStableKeepsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 30000
	s := make([]kv, n)
	for i := range s {
		s[i] = kv{k: rng.Intn(50), seq: i}
	}
	SortStable(s, func(a, b kv) bool { return a.k < b.k })
	for i := 1; i < n; i++ {
		if s[i-1].k == s[i].k && s[i-1].seq > s[i].seq {
			t.Fatalf("stability violated at %d: %v then %v", i, s[i-1], s[i])
		}
		if s[i-1].k > s[i].k {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestMergeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sizes := range [][2]int{{0, 0}, {0, 5}, {5, 0}, {1000, 1}, {1, 1000}, {9000, 11000}} {
		a := make([]int, sizes[0])
		b := make([]int, sizes[1])
		for i := range a {
			a[i] = rng.Intn(1000)
		}
		for i := range b {
			b[i] = rng.Intn(1000)
		}
		slices.Sort(a)
		slices.Sort(b)
		out := make([]int, len(a)+len(b))
		MergeInto(a, b, out, intLess)
		want := append(slices.Clone(a), b...)
		slices.Sort(want)
		if !slices.Equal(out, want) {
			t.Fatalf("sizes %v: merge incorrect", sizes)
		}
	}
}

func TestBounds(t *testing.T) {
	s := []int{1, 3, 3, 3, 7}
	if got := LowerBound(s, 3, intLess); got != 1 {
		t.Fatalf("LowerBound=%d want 1", got)
	}
	if got := UpperBound(s, 3, intLess); got != 4 {
		t.Fatalf("UpperBound=%d want 4", got)
	}
	if got := LowerBound(s, 0, intLess); got != 0 {
		t.Fatalf("LowerBound(0)=%d want 0", got)
	}
	if got := UpperBound(s, 9, intLess); got != 5 {
		t.Fatalf("UpperBound(9)=%d want 5", got)
	}
}

func TestScanExclusive(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100000} {
		s := make([]int64, n)
		for i := range s {
			s[i] = int64(i%7 - 3)
		}
		want := make([]int64, n)
		var acc int64
		for i := range s {
			want[i] = acc
			acc += s[i]
		}
		total := ScanExclusive(s)
		if total != acc {
			t.Fatalf("n=%d: total=%d want %d", n, total, acc)
		}
		if !slices.Equal(s, want) {
			t.Fatalf("n=%d: prefix sums wrong", n)
		}
	}
}

func TestPack(t *testing.T) {
	n := 100000
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	got := Pack(s, func(x int) bool { return x%3 == 0 })
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("Pack[%d]=%d want %d", i, v, i*3)
		}
	}
	if len(got) != (n+2)/3 {
		t.Fatalf("Pack length %d", len(got))
	}
}

func TestCount(t *testing.T) {
	if got := Count(100000, func(i int) bool { return i%10 == 0 }); got != 10000 {
		t.Fatalf("Count=%d want 10000", got)
	}
}

func TestDedupSortedBy(t *testing.T) {
	type pair struct{ k, v int }
	in := []pair{{1, 1}, {1, 2}, {2, 5}, {3, 1}, {3, 1}, {3, 1}, {9, 9}}
	got := DedupSortedBy(in,
		func(a, b pair) bool { return a.k == b.k },
		func(acc, next pair) pair { return pair{acc.k, acc.v + next.v} })
	want := []pair{{1, 3}, {2, 5}, {3, 3}, {9, 9}}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if DedupSortedBy([]pair(nil), func(a, b pair) bool { return a.k == b.k }, func(a, b pair) pair { return a }) != nil {
		t.Fatalf("empty dedup should be nil")
	}
}

func TestDedupLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 200000
	s := make([]int, n)
	for i := range s {
		s[i] = rng.Intn(1000)
	}
	slices.Sort(s)
	got := DedupSortedBy(s, func(a, b int) bool { return a == b }, func(a, b int) int { return a })
	want := slices.Compact(slices.Clone(s))
	if !slices.Equal(got, want) {
		t.Fatalf("dedup mismatch: got %d unique, want %d", len(got), len(want))
	}
}

func TestFillAndReduce(t *testing.T) {
	s := Fill(1000, func(i int) int64 { return int64(i) })
	for i, v := range s {
		if v != int64(i) {
			t.Fatalf("Fill[%d]=%d", i, v)
		}
	}
	if got := ReduceInt64(1001, func(i int) int64 { return int64(i) }); got != 500500 {
		t.Fatalf("ReduceInt64=%d want 500500", got)
	}
}

func TestRNGDeterministic(t *testing.T) {
	r := NewRNG(42)
	if r.At(5) != NewRNG(42).At(5) {
		t.Fatal("RNG not deterministic")
	}
	if r.At(5) == r.At(6) {
		t.Fatal("adjacent RNG outputs identical")
	}
	if r.Split(1).At(0) == r.Split(2).At(0) {
		t.Fatal("split streams identical")
	}
	// Crude uniformity check on AtRange.
	var buckets [10]int
	for i := uint64(0); i < 100000; i++ {
		buckets[r.AtRange(i, 10)]++
	}
	for b, c := range buckets {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d badly skewed: %d", b, c)
		}
	}
	for i := uint64(0); i < 1000; i++ {
		f := r.AtFloat(i)
		if f < 0 || f >= 1 {
			t.Fatalf("AtFloat out of range: %v", f)
		}
	}
}
