package seq

import "repro/internal/parallel"

// ScanExclusive replaces s with its exclusive prefix sums and returns the
// total. It uses the classic two-pass blocked algorithm: a parallel pass
// computes per-block sums, a sequential pass scans the (few) block sums,
// and a second parallel pass scans within blocks seeded by the block
// offsets. O(n) work, O(blocks + grain) span.
func ScanExclusive(s []int64) int64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	blocks, grain := parallel.NumBlocks(n, 0)
	if blocks == 1 {
		return scanSeq(s, 0)
	}
	sums := make([]int64, blocks)
	parallel.ForBlocked(n, grain, func(lo, hi int) {
		var t int64
		for i := lo; i < hi; i++ {
			t += s[i]
		}
		sums[lo/grain] = t
	})
	var total int64
	for b := range sums {
		t := sums[b]
		sums[b] = total
		total += t
	}
	parallel.ForBlocked(n, grain, func(lo, hi int) {
		scanSeq(s[lo:hi], sums[lo/grain])
	})
	return total
}

func scanSeq(s []int64, offset int64) int64 {
	acc := offset
	for i := range s {
		v := s[i]
		s[i] = acc
		acc += v
	}
	return acc - offset
}

// Count returns the number of indices in [0, n) for which pred is true,
// evaluated in parallel.
func Count(n int, pred func(i int) bool) int64 {
	blocks, grain := parallel.NumBlocks(n, 0)
	if blocks <= 1 {
		var c int64
		for i := 0; i < n; i++ {
			if pred(i) {
				c++
			}
		}
		return c
	}
	sums := make([]int64, blocks)
	parallel.ForBlocked(n, grain, func(lo, hi int) {
		var c int64
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		sums[lo/grain] = c
	})
	var total int64
	for _, c := range sums {
		total += c
	}
	return total
}

// PackIndex returns the elements make(i) for every index i in [0, n) with
// flag(i) true, in index order, using flags → prefix sums → parallel
// scatter (the standard parallel pack).
func PackIndex[T any](n int, flag func(i int) bool, make_ func(i int) T) []T {
	if n == 0 {
		return nil
	}
	blocks, grain := parallel.NumBlocks(n, 0)
	offsets := make([]int64, blocks)
	parallel.ForBlocked(n, grain, func(lo, hi int) {
		var c int64
		for i := lo; i < hi; i++ {
			if flag(i) {
				c++
			}
		}
		offsets[lo/grain] = c
	})
	total := ScanExclusive(offsets)
	out := make([]T, total)
	parallel.ForBlocked(n, grain, func(lo, hi int) {
		k := offsets[lo/grain]
		for i := lo; i < hi; i++ {
			if flag(i) {
				out[k] = make_(i)
				k++
			}
		}
	})
	return out
}

// Pack returns the elements of s whose flag is true, in order.
func Pack[T any](s []T, flag func(x T) bool) []T {
	return PackIndex(len(s), func(i int) bool { return flag(s[i]) }, func(i int) T { return s[i] })
}

// Fill populates a fresh slice of length n with gen(i) in parallel.
func Fill[T any](n int, gen func(i int) T) []T {
	out := make([]T, n)
	parallel.For(n, 0, func(i int) { out[i] = gen(i) })
	return out
}

// ReduceInt64 sums f(i) over [0, n) in parallel.
func ReduceInt64(n int, f func(i int) int64) int64 {
	blocks, grain := parallel.NumBlocks(n, 0)
	if blocks <= 1 {
		var t int64
		for i := 0; i < n; i++ {
			t += f(i)
		}
		return t
	}
	sums := make([]int64, blocks)
	parallel.ForBlocked(n, grain, func(lo, hi int) {
		var t int64
		for i := lo; i < hi; i++ {
			t += f(i)
		}
		sums[lo/grain] = t
	})
	var total int64
	for _, v := range sums {
		total += v
	}
	return total
}
