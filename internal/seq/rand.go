package seq

// Splittable pseudo-random numbers (splitmix64). Workload generation and
// treap priorities need cheap, deterministic, parallel-safe randomness;
// splitmix64 hashes an index directly to a well-mixed 64-bit value, so any
// element of the stream can be computed independently — exactly what a
// parallel generator requires.

// Mix64 returns the splitmix64 mix of x. It is a bijection on uint64 with
// good avalanche behaviour.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RNG is a splittable deterministic random stream: element i of stream
// with seed s is Mix64(s, i). The zero value is a valid stream with seed 0.
type RNG struct {
	seed uint64
}

// NewRNG returns a stream for the given seed.
func NewRNG(seed uint64) RNG { return RNG{seed: Mix64(seed)} }

// At returns the i-th element of the stream. Safe for concurrent use.
func (r RNG) At(i uint64) uint64 { return Mix64(r.seed + i*0x9e3779b97f4a7c15) }

// AtRange returns the i-th element reduced to [0, n). n must be > 0.
func (r RNG) AtRange(i, n uint64) uint64 { return r.At(i) % n }

// AtFloat returns the i-th element as a float64 in [0, 1).
func (r RNG) AtFloat(i uint64) float64 {
	return float64(r.At(i)>>11) / (1 << 53)
}

// Split derives an independent stream; Split(i) and Split(j) for i != j
// produce (with overwhelming probability) unrelated sequences.
func (r RNG) Split(i uint64) RNG { return RNG{seed: Mix64(r.seed ^ Mix64(i+0x61c8864680b583eb))} }
