package seq

// DedupSortedBy collapses runs of equal elements (equality defined by eq)
// in the sorted slice s into a single element each, combining values
// left-to-right with combine (combine(acc, next) where acc is the earlier
// element). It returns a fresh slice. BUILD uses this after sorting to
// implement the paper's REMOVEDUPLICATES with a user-supplied value
// combiner (the "h" argument of build in Figure 1).
//
// The algorithm is the standard parallel one: mark run heads, prefix-sum
// the marks to get output slots, then for each head scan its run and fold
// the values. Runs are typically tiny (duplicate keys are rare), so the
// per-head scan does not hurt the work bound in practice; a single run of
// length n degrades to O(n) sequential folding, matching the inherently
// sequential left-to-right combine semantics.
func DedupSortedBy[T any](s []T, eq func(a, b T) bool, combine func(acc, next T) T) []T {
	n := len(s)
	if n == 0 {
		return nil
	}
	isHead := func(i int) bool { return i == 0 || !eq(s[i-1], s[i]) }
	return PackIndex(n, isHead, func(i int) T {
		acc := s[i]
		for j := i + 1; j < n && eq(s[j-1], s[j]); j++ {
			acc = combine(acc, s[j])
		}
		return acc
	})
}
