package core

import (
	"testing"
)

// Native fuzz targets. Under plain `go test` the seed corpus runs as
// regular tests; under `go test -fuzz=FuzzTreeOps ./internal/core` the
// engine explores the op-sequence space. The harness decodes a byte
// string as a program over the map and checks every invariant plus a
// model after each instruction.

func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 10, 0, 20, 2, 15, 3, 5, 25, 4})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 1, 3, 1, 9})
	f.Add([]byte{5, 6, 7, 0, 200, 3, 0, 255, 2, 128})
	// Leaf-block boundary seed: fill past a full block (DefaultBlock+2
	// sequential inserts force a block split), split inside the block
	// run, then delete back down so blocks re-merge.
	var leafSeed []byte
	for i := 0; i < DefaultBlock+2; i++ {
		leafSeed = append(leafSeed, 0, byte(i))
	}
	leafSeed = append(leafSeed, 3, byte(DefaultBlock/2)) // split+rejoin mid-block
	for i := 0; i < DefaultBlock; i++ {
		leafSeed = append(leafSeed, 1, byte(i))
	}
	f.Add(leafSeed)
	f.Fuzz(func(t *testing.T, prog []byte) {
		for _, sch := range allSchemes {
			// Each program runs under both leaf layouts: flat blocks and
			// compressed (packed) blocks.
			for _, compress := range []any{nil, testComp{}} {
				tr := New[int, int64, int64, sumTraits](Config{Scheme: sch, Compress: compress})
				m := model{}
				i := 0
				next := func() (byte, bool) {
					if i >= len(prog) {
						return 0, false
					}
					b := prog[i]
					i++
					return b, true
				}
				for {
					op, ok := next()
					if !ok {
						break
					}
					arg, ok := next()
					if !ok {
						break
					}
					k := int(arg)
					switch op % 6 {
					case 0: // insert
						tr = tr.Insert(k, int64(k)*3)
						m[k] = int64(k) * 3
					case 1: // delete
						tr = tr.Delete(k)
						delete(m, k)
					case 2: // insert-with accumulate
						tr = tr.InsertWith(k, 1, func(o, n int64) int64 { return o + n })
						m[k]++
					case 3: // split and rejoin (must be identity)
						l, v, found, r := tr.Split(k)
						if found {
							tr = l.Join(k, v, r)
						} else {
							tr = l.Concat(r)
						}
					case 4: // range restrict to [k, k+64]
						tr = tr.Range(k, k+64)
						for kk := range m {
							if kk < k || kk > k+64 {
								delete(m, kk)
							}
						}
					case 5: // pop min
						if pk, _, rest, ok := tr.RemoveFirst(); ok {
							delete(m, pk)
							tr = rest
						}
					}
				}
				if err := tr.Validate(i64eq); err != nil {
					t.Fatalf("%v after program %v: %v", sch, prog, err)
				}
				if int(tr.Size()) != len(m) {
					t.Fatalf("%v: size %d want %d (program %v)", sch, tr.Size(), len(m), prog)
				}
				for k, v := range m {
					got, ok := tr.Find(k)
					if !ok || got != v {
						t.Fatalf("%v: Find(%d)=%d,%v want %d (program %v)", sch, k, got, ok, v, prog)
					}
				}
				var sum int64
				for _, v := range m {
					sum += v
				}
				if tr.AugVal() != sum {
					t.Fatalf("%v: AugVal %d want %d (program %v)", sch, tr.AugVal(), sum, prog)
				}
			}
		}
	})
}

// FuzzBuildDedup checks Build against a map model for arbitrary
// duplicate-laden inputs.
func FuzzBuildDedup(f *testing.F) {
	f.Add([]byte{1, 1, 2, 3, 1, 5})
	f.Add([]byte{255, 0, 255, 1, 0, 0})
	f.Fuzz(func(t *testing.T, keys []byte) {
		items := make([]Entry[int, int64], len(keys))
		m := model{}
		for i, b := range keys {
			items[i] = Entry[int, int64]{Key: int(b), Val: int64(i)}
			if old, ok := m[int(b)]; ok {
				m[int(b)] = old + int64(i)
			} else {
				m[int(b)] = int64(i)
			}
		}
		tr := newSum(RedBlack).Build(items, func(o, n int64) int64 { return o + n })
		if err := tr.Validate(i64eq); err != nil {
			t.Fatal(err)
		}
		if int(tr.Size()) != len(m) {
			t.Fatalf("size %d want %d", tr.Size(), len(m))
		}
		for k, v := range m {
			if got, _ := tr.Find(k); got != v {
				t.Fatalf("Find(%d)=%d want %d", k, got, v)
			}
		}
	})
}
