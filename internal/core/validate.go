package core

import "fmt"

// Validate checks every structural invariant of the tree: key ordering,
// size fields, augmented values (compared with augEq; pass nil to skip),
// positive reference counts, the balance invariant of the configured
// scheme, and the leaf block invariants (occupancy 1..B, in-block
// ordering, precomputed block augmentation, scheme-correct block aux).
// It is the backbone of the property-based tests and is O(n).
func (t Tree[K, V, A, T]) Validate(augEq func(x, y A) bool) error {
	o := t.o()
	_, err := o.validateRec(t.root, augEq)
	if err != nil {
		return err
	}
	return o.validateOrder(t.root)
}

type nodeInfo struct {
	size   int64
	height uint32 // AVL height or RB black height, scheme-dependent
}

func (o *ops[K, V, A, T]) validateLeaf(t *node[K, V, A], augEq func(x, y A) bool) (nodeInfo, error) {
	if t.left != nil || t.right != nil {
		return nodeInfo{}, fmt.Errorf("core: leaf block with children")
	}
	items := t.items
	switch {
	case t.packed != nil:
		if t.items != nil {
			return nodeInfo{}, fmt.Errorf("core: leaf block with both flat and packed payloads")
		}
		// Defensive decode: enforces count bounds, in-block ordering,
		// full consumption, and canonical encoding.
		var err error
		items, err = o.validatePacked(t)
		if err != nil {
			return nodeInfo{}, err
		}
	case o.comp != nil:
		return nodeInfo{}, fmt.Errorf("core: flat leaf block in a compressed tree family")
	}
	n := len(items)
	if n < 1 || n > o.blockSize() {
		return nodeInfo{}, fmt.Errorf("core: leaf occupancy %d outside [1, %d]", n, o.blockSize())
	}
	for i := 1; i < n; i++ {
		if !o.tr.Less(items[i-1].Key, items[i].Key) {
			return nodeInfo{}, fmt.Errorf("core: leaf block keys out of order at %d", i)
		}
	}
	if t.size != int64(n) {
		return nodeInfo{}, fmt.Errorf("core: leaf size field %d, want %d", t.size, n)
	}
	if augEq != nil && !augEq(t.aug, o.leafAug(items)) {
		return nodeInfo{}, fmt.Errorf("core: leaf augmented value mismatch (%d entries)", n)
	}
	if t.aux != o.leafAux() {
		return nodeInfo{}, fmt.Errorf("core: leaf aux %d, want %d (%v)", t.aux, o.leafAux(), o.sch)
	}
	// Height 1 for AVL; black height 1 for red-black; both encoded by
	// leafAux and reported upward as 1.
	return nodeInfo{size: int64(n), height: 1}, nil
}

func (o *ops[K, V, A, T]) validateRec(t *node[K, V, A], augEq func(x, y A) bool) (nodeInfo, error) {
	if t == nil {
		return nodeInfo{}, nil
	}
	if t.refs.Load() < 1 {
		return nodeInfo{}, fmt.Errorf("core: node with nonpositive refcount %d", t.refs.Load())
	}
	if isLeaf(t) {
		return o.validateLeaf(t, augEq)
	}
	li, err := o.validateRec(t.left, augEq)
	if err != nil {
		return nodeInfo{}, err
	}
	ri, err := o.validateRec(t.right, augEq)
	if err != nil {
		return nodeInfo{}, err
	}
	if want := li.size + ri.size + 1; t.size != want {
		return nodeInfo{}, fmt.Errorf("core: size field %d, want %d", t.size, want)
	}
	if augEq != nil {
		want := o.tr.Combine(o.augOf(t.left), o.tr.Combine(o.tr.Base(t.key, t.val), o.augOf(t.right)))
		if !augEq(t.aug, want) {
			return nodeInfo{}, fmt.Errorf("core: augmented value mismatch at size-%d subtree", t.size)
		}
	}
	info := nodeInfo{size: t.size}
	switch o.sch {
	case WeightBalanced:
		if !wbBalanced(li.size+1, ri.size+1) {
			return nodeInfo{}, fmt.Errorf("core: weight-balance violated: children sizes %d, %d", li.size, ri.size)
		}
	case AVL:
		if li.height > ri.height+1 || ri.height > li.height+1 {
			return nodeInfo{}, fmt.Errorf("core: AVL balance violated: heights %d, %d", li.height, ri.height)
		}
		info.height = 1 + max(li.height, ri.height)
		if t.aux != info.height {
			return nodeInfo{}, fmt.Errorf("core: AVL height field %d, want %d", t.aux, info.height)
		}
	case RedBlack:
		if li.height != ri.height {
			return nodeInfo{}, fmt.Errorf("core: black heights differ: %d, %d", li.height, ri.height)
		}
		if rbIsRed(t) && (rbIsRed(t.left) || rbIsRed(t.right)) {
			return nodeInfo{}, fmt.Errorf("core: red node with red child")
		}
		info.height = li.height
		if !rbIsRed(t) {
			info.height++
		}
		if rbBH(t) != info.height {
			return nodeInfo{}, fmt.Errorf("core: black-height field %d, want %d", rbBH(t), info.height)
		}
	case Treap:
		if (t.left != nil && treapPrio(t.left) > treapPrio(t)) ||
			(t.right != nil && treapPrio(t.right) > treapPrio(t)) {
			return nodeInfo{}, fmt.Errorf("core: treap priority heap violated")
		}
	}
	return info, nil
}

// validateOrder checks strict key ordering by in-order traversal.
func (o *ops[K, V, A, T]) validateOrder(t *node[K, V, A]) error {
	var prev *K
	ok := o.forEach(t, func(k K, _ V) bool {
		if prev != nil && !o.tr.Less(*prev, k) {
			return false
		}
		kk := k
		prev = &kk
		return true
	})
	if !ok {
		return fmt.Errorf("core: keys out of order")
	}
	return nil
}

// RootRefs reports the reference count of the root node (1 for an
// unshared tree), for the persistence tests. Returns 0 for an empty tree.
func (t Tree[K, V, A, T]) RootRefs() int32 {
	if t.root == nil {
		return 0
	}
	return t.root.refs.Load()
}

// Height returns the height of the tree (0 for empty, 1 for a single
// leaf block), for balance diagnostics in tests and experiments.
func (t Tree[K, V, A, T]) Height() int {
	var h func(n *node[K, V, A]) int
	h = func(n *node[K, V, A]) int {
		if n == nil {
			return 0
		}
		if isLeaf(n) {
			return 1
		}
		return 1 + max(h(n.left), h(n.right))
	}
	return h(t.root)
}

// SharesStructureWith reports whether t and u share at least one node,
// for the persistence/space experiments (Table 4).
func (t Tree[K, V, A, T]) SharesStructureWith(u Tree[K, V, A, T]) bool {
	set := map[*node[K, V, A]]struct{}{}
	var collect func(n *node[K, V, A])
	collect = func(n *node[K, V, A]) {
		if n == nil {
			return
		}
		set[n] = struct{}{}
		collect(n.left)
		collect(n.right)
	}
	collect(t.root)
	found := false
	var check func(n *node[K, V, A])
	check = func(n *node[K, V, A]) {
		if n == nil || found {
			return
		}
		if _, ok := set[n]; ok {
			found = true
			return
		}
		check(n.left)
		check(n.right)
	}
	check(u.root)
	return found
}

// CountUniqueNodes returns the number of distinct nodes (interior nodes
// plus leaf blocks) reachable from any of the given trees, counting
// shared nodes once — the quantity reported in Table 4 ("actual
// #nodes").
func CountUniqueNodes[K, V, A any, T Traits[K, V, A]](ts ...Tree[K, V, A, T]) int64 {
	seen := map[*node[K, V, A]]struct{}{}
	var walk func(n *node[K, V, A])
	walk = func(n *node[K, V, A]) {
		if n == nil {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		walk(n.left)
		walk(n.right)
	}
	for _, t := range ts {
		walk(t.root)
	}
	return int64(len(seen))
}
