package core

// Red-black join. The aux word packs (blackHeight << 1) | redBit, where
// blackHeight counts the black nodes on any path from the node down to
// (but excluding) nil, including the node itself if black; nil has black
// height 0 and a leaf block is black with black height 1.
//
// joinRB blackens both roots, then:
//   - equal black heights: a fresh *black* parent is always valid;
//   - otherwise descend the spine of the taller tree to the first black
//     node whose black height matches the shorter tree, attach a *red*
//     parent there, and repair red-red violations on the way up with the
//     classic Okasaki restructuring, finally blackening the root.
//
// Blocked layout: blocks are black with black height 1, so a descent
// with target >= 1 stops at or above every block and the classic
// algorithm applies unchanged. Only target == 0 (the other side empty)
// reaches *into* a block; there the middle entry is merged into the
// block in place — or, when the block is full, the block is split under
// a red parent of unchanged black height, which the normal red-red
// repair machinery then absorbs.

func rbMake(bh uint32, red bool) uint32 {
	x := bh << 1
	if red {
		x |= 1
	}
	return x
}

func rbIsRed[K, V, A any](t *node[K, V, A]) bool { return t != nil && t.aux&1 == 1 }

func rbIsBlack[K, V, A any](t *node[K, V, A]) bool { return t == nil || t.aux&1 == 0 }

// rbBH returns the black height of t (0 for nil).
func rbBH[K, V, A any](t *node[K, V, A]) uint32 {
	if t == nil {
		return 0
	}
	return t.aux >> 1
}

// rbBlacken returns t with a black root, consuming t. Blackening a red
// root increments its black height and is always valid.
func (o *ops[K, V, A, T]) rbBlacken(t *node[K, V, A]) *node[K, V, A] {
	if t == nil || !rbIsRed(t) {
		return t
	}
	t = o.mutable(t)
	t.aux = rbMake(rbBH(t)+1, false)
	return t
}

func (o *ops[K, V, A, T]) joinRB(l, m, r *node[K, V, A]) *node[K, V, A] {
	l = o.rbBlacken(l)
	r = o.rbBlacken(r)
	bl, br := rbBH(l), rbBH(r)
	switch {
	case bl > br:
		t := o.joinRightRB(l, m, r, br)
		return o.rbBlacken(t)
	case br > bl:
		t := o.joinLeftRB(l, m, r, bl)
		return o.rbBlacken(t)
	default:
		// Equal black heights with black roots: a black parent is valid
		// unconditionally.
		t := o.attach(m, l, r)
		t.aux = rbMake(bl+1, false)
		return t
	}
}

// rbAbsorbRight merges m's entry (the maximum of the region) into the
// leaf block l, consuming l and m. When the block is full it is split
// under a red parent, preserving the block height 1 the context expects;
// a resulting red-red violation with the caller's spine is repaired by
// rbFixRight on the way up, exactly like the red parent the unblocked
// algorithm attaches.
func (o *ops[K, V, A, T]) rbAbsorbRight(l, m *node[K, V, A]) *node[K, V, A] {
	if l.packed != nil {
		items := o.leafRead(l)
		if len(items) < o.blockSize() {
			items = append(items, Entry[K, V]{Key: m.key, Val: m.val})
			m.left, m.right = nil, nil
			o.dec(m)
			return o.rebuildLeaf(l, items)
		}
		mid := len(items) / 2
		left := o.mkLeafOwned(items[:mid:mid])
		rest := make([]Entry[K, V], 0, len(items)-mid)
		rest = append(rest, items[mid+1:]...)
		rest = append(rest, Entry[K, V]{Key: m.key, Val: m.val})
		piv := o.alloc(items[mid].Key, items[mid].Val)
		m.left, m.right = nil, nil
		o.dec(m)
		o.dec(l)
		t := o.attach(piv, left, o.mkLeafOwned(rest))
		t.aux = rbMake(1, true)
		return t
	}
	items := l.items
	if len(items) < o.blockSize() {
		l = o.mutable(l)
		l.items = append(l.items, Entry[K, V]{Key: m.key, Val: m.val})
		l.size = int64(len(l.items))
		l.aug = o.leafAug(l.items)
		m.left, m.right = nil, nil
		o.dec(m)
		return l
	}
	mid := len(items) / 2
	left := o.mkLeafCopy(items[:mid])
	rest := make([]Entry[K, V], 0, len(items)-mid)
	rest = append(rest, items[mid+1:]...)
	rest = append(rest, Entry[K, V]{Key: m.key, Val: m.val})
	piv := o.alloc(items[mid].Key, items[mid].Val)
	m.left, m.right = nil, nil
	o.dec(m)
	o.dec(l)
	t := o.attach(piv, left, o.mkLeafOwned(rest))
	t.aux = rbMake(1, true)
	return t
}

// rbAbsorbLeft is the mirror: m's entry is the minimum of the region.
func (o *ops[K, V, A, T]) rbAbsorbLeft(m, r *node[K, V, A]) *node[K, V, A] {
	if r.packed != nil {
		items := o.leafRead(r)
		if len(items) < o.blockSize() {
			grown := make([]Entry[K, V], 0, len(items)+1)
			grown = append(grown, Entry[K, V]{Key: m.key, Val: m.val})
			grown = append(grown, items...)
			m.left, m.right = nil, nil
			o.dec(m)
			return o.rebuildLeaf(r, grown)
		}
		mid := (len(items) - 1) / 2 // both halves non-empty, m included left
		first := make([]Entry[K, V], 0, mid+1)
		first = append(first, Entry[K, V]{Key: m.key, Val: m.val})
		first = append(first, items[:mid]...)
		right := o.mkLeafOwned(items[mid+1:])
		piv := o.alloc(items[mid].Key, items[mid].Val)
		m.left, m.right = nil, nil
		o.dec(m)
		o.dec(r)
		t := o.attach(piv, o.mkLeafOwned(first), right)
		t.aux = rbMake(1, true)
		return t
	}
	items := r.items
	if len(items) < o.blockSize() {
		r = o.mutable(r)
		grown := make([]Entry[K, V], 0, len(items)+1)
		grown = append(grown, Entry[K, V]{Key: m.key, Val: m.val})
		grown = append(grown, r.items...)
		r.items = grown
		r.size = int64(len(grown))
		r.aug = o.leafAug(grown)
		m.left, m.right = nil, nil
		o.dec(m)
		return r
	}
	mid := (len(items) - 1) / 2 // both halves non-empty, m included left
	first := make([]Entry[K, V], 0, mid+1)
	first = append(first, Entry[K, V]{Key: m.key, Val: m.val})
	first = append(first, items[:mid]...)
	right := o.mkLeafCopy(items[mid+1:])
	piv := o.alloc(items[mid].Key, items[mid].Val)
	m.left, m.right = nil, nil
	o.dec(m)
	o.dec(r)
	t := o.attach(piv, o.mkLeafOwned(first), right)
	t.aux = rbMake(1, true)
	return t
}

// joinRightRB descends l's right spine to the first black node of black
// height target, attaches a red parent of it and r there, and repairs on
// the way up. Precondition: rbBH(l) > target, r black with
// rbBH(r) == target.
func (o *ops[K, V, A, T]) joinRightRB(l, m, r *node[K, V, A], target uint32) *node[K, V, A] {
	if isLeaf(l) && rbBH(l) > target {
		// target == 0 (r empty) with the spine ending in a block: fold
		// the middle entry into the block instead of descending.
		return o.rbAbsorbRight(l, m)
	}
	if rbIsBlack(l) && rbBH(l) == target {
		t := o.attach(m, l, r)
		t.aux = rbMake(target, true)
		return t
	}
	l = o.mutable(l)
	l.right = o.joinRightRB(l.right, m, r, target)
	o.update(l)
	return o.rbFixRight(l)
}

// rbFixRight repairs a potential red-red violation between l.right and
// l.right.right after a right-spine join. Only fires at black l:
//
//	B(a, x, R(b, y, R(c, z, d))) -> R(B(a, x, b), y, B(c, z, d))
func (o *ops[K, V, A, T]) rbFixRight(l *node[K, V, A]) *node[K, V, A] {
	if !rbIsBlack(l) {
		return l // a red l cannot repair; its (black) parent will
	}
	q := l.right
	if !rbIsRed(q) || !rbIsRed(q.right) {
		return l
	}
	bh := rbBH(l)
	q = o.mutable(q)
	l.right = q.left
	o.update(l) // l keeps color and black height: bh(q.left) == bh(q)
	q.left = l
	// Blacken the red right grandchild.
	rc := o.mutable(q.right)
	rc.aux = rbMake(rbBH(rc)+1, false)
	q.right = rc
	o.update(q)
	q.aux = rbMake(bh, true) // red root at the old position's black height
	return q
}

func (o *ops[K, V, A, T]) joinLeftRB(l, m, r *node[K, V, A], target uint32) *node[K, V, A] {
	if isLeaf(r) && rbBH(r) > target {
		return o.rbAbsorbLeft(m, r)
	}
	if rbIsBlack(r) && rbBH(r) == target {
		t := o.attach(m, l, r)
		t.aux = rbMake(target, true)
		return t
	}
	r = o.mutable(r)
	r.left = o.joinLeftRB(l, m, r.left, target)
	o.update(r)
	return o.rbFixLeft(r)
}

func (o *ops[K, V, A, T]) rbFixLeft(r *node[K, V, A]) *node[K, V, A] {
	if !rbIsBlack(r) {
		return r
	}
	q := r.left
	if !rbIsRed(q) || !rbIsRed(q.left) {
		return r
	}
	bh := rbBH(r)
	q = o.mutable(q)
	r.left = q.right
	o.update(r)
	q.right = r
	lc := o.mutable(q.left)
	lc.aux = rbMake(rbBH(lc)+1, false)
	q.left = lc
	o.update(q)
	q.aux = rbMake(bh, true)
	return q
}
