package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Compressed leaf blocks — the second half of the PaC-trees agenda
// (Dhulipala et al., arXiv:2204.06077 §5 "Compression"). PR 5 blocked
// the fringe into sorted flat arrays; with a Compressor configured the
// fringe goes one step further: a block's entries are stored as one
// contiguous byte string — a first-key anchor plus zig-zag varint key
// deltas, values encoded by the compressor — instead of an []Entry
// array. For integer-keyed maps whose keys are locally dense (ids,
// timestamps, offsets) this cuts bytes/entry by 2-5x, which is the
// memory axis of scale: more entries per machine, smaller checkpoints
// (packed blocks serialize near-verbatim), less cache traffic on cold
// scans.
//
// Representation invariant: a tree family either has a compressor (and
// then *every* leaf stores packed bytes, items == nil) or has none (and
// every leaf stores a flat []Entry, packed == nil). The two layouts
// never mix inside one tree, so each operation picks its branch once
// per leaf.
//
// Access paths:
//
//   - Scans (forEach, fold, Cursor, aug folds, projections) decode on
//     the fly through packedCursor — sequential zig-zag delta walking,
//     no materialization.
//   - Probes (find, rank, bounds) walk the block sequentially; the
//     O(B) walk replaces the binary search, which is the PaC-trees
//     trade: B is small (32) and the walk is branch-predictable over
//     one cache-resident byte string.
//   - Mutations decode the block into a scratch slice, edit it, and
//     re-encode on the copy-on-write path (rebuildLeaf); an exclusively
//     owned node reuses its packed buffer in place.
//
// The payload layout of one packed block:
//
//	uvarint count | uvarint KeyUint(k0) | val0 |
//	count-1 × ( varint KeyUint(ki)-KeyUint(ki-1) | vali )
//
// Deltas are computed modulo 2^64 on the compressor's integer key
// images, so any round-tripping KeyUint/KeyFromUint pair is valid even
// when the image order disagrees with the tree order; zig-zag encoding
// keeps accidental negative deltas cheap. Values use the compressor's
// AppendVal/ValAt, the same contract as Codec (varint values for the
// stock integer instances).

// Compressor supplies the integer key image and the value byte codec of
// a compressed-leaf instantiation. Implementations should be zero-size
// struct types so calls devirtualize; KeyUint/KeyFromUint must be exact
// inverses, and ValAt must decode exactly what AppendVal appended
// (returning an error, never panicking, on truncated or foreign bytes).
type Compressor[K, V any] interface {
	// KeyUint maps a key to its integer image (need not preserve
	// order; must round-trip with KeyFromUint).
	KeyUint(k K) uint64
	// KeyFromUint inverts KeyUint.
	KeyFromUint(u uint64) K
	// AppendVal appends the canonical encoding of v to buf.
	AppendVal(buf []byte, v V) []byte
	// ValAt decodes a value from the front of data, returning it and
	// the number of bytes consumed.
	ValAt(data []byte) (V, int, error)
}

// ErrBadPacked reports a malformed compressed-block payload (truncated,
// overlong, non-canonical, or with an invalid entry count).
var ErrBadPacked = errors.New("core: malformed compressed block")

// ErrNoCompressor reports a compressed record met by a tree family
// configured without a Compressor (or vice versa at the config layer).
var ErrNoCompressor = errors.New("core: compressed block requires a configured Compressor")

// packLeafInto appends the packed encoding of items (non-empty, sorted)
// to dst and returns it. The encoding is canonical: equal entry runs
// produce identical bytes.
func (o *ops[K, V, A, T]) packLeafInto(dst []byte, items []Entry[K, V]) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	prev := o.comp.KeyUint(items[0].Key)
	dst = binary.AppendUvarint(dst, prev)
	dst = o.comp.AppendVal(dst, items[0].Val)
	for _, e := range items[1:] {
		u := o.comp.KeyUint(e.Key)
		dst = binary.AppendVarint(dst, int64(u-prev))
		prev = u
		dst = o.comp.AppendVal(dst, e.Val)
	}
	return dst
}

// packedCursor streams the entries of one packed payload. The zero
// cursor is exhausted; start with o.packedCursor(t).
type packedCursor[K, V any] struct {
	comp Compressor[K, V]
	data []byte
	n    int // entries remaining
	prev uint64
	at   int // index of the entry next() will return
}

// packedCursorOf opens a cursor over a packed leaf t.
func (o *ops[K, V, A, T]) packedCursorOf(t *node[K, V, A]) packedCursor[K, V] {
	n, sz := binary.Uvarint(t.packed)
	// The count was validated at construction; sz <= 0 cannot happen on
	// a live node.
	return packedCursor[K, V]{comp: o.comp, data: t.packed[sz:], n: int(n)}
}

// next decodes the next entry. ok is false when exhausted; malformed
// bytes panic (live blocks were validated at construction — use
// decodePacked for untrusted input).
func (c *packedCursor[K, V]) next() (Entry[K, V], bool) {
	if c.n == 0 {
		return Entry[K, V]{}, false
	}
	var u uint64
	if c.at == 0 {
		v, sz := binary.Uvarint(c.data)
		if sz <= 0 {
			panic("core: corrupt packed block reached a live tree")
		}
		u = v
		c.data = c.data[sz:]
	} else {
		d, sz := binary.Varint(c.data)
		if sz <= 0 {
			panic("core: corrupt packed block reached a live tree")
		}
		u = c.prev + uint64(d)
		c.data = c.data[sz:]
	}
	c.prev = u
	val, vn, err := c.comp.ValAt(c.data)
	if err != nil {
		panic("core: corrupt packed block reached a live tree")
	}
	c.data = c.data[vn:]
	c.n--
	c.at++
	return Entry[K, V]{Key: c.comp.KeyFromUint(u), Val: val}, true
}

// decodePacked appends the entries of a packed payload to buf,
// defensively: arbitrary bytes yield an error, never a panic. It
// enforces count in [1, maxCount], strictly increasing keys (by less),
// full consumption of data, and canonical encoding — re-encoding the
// decoded entries must reproduce data byte for byte, so a packed block
// accepted from disk is indistinguishable from one built locally.
func decodePacked[K, V any](comp Compressor[K, V], less func(a, b K) bool, data []byte, maxCount int, buf []Entry[K, V]) ([]Entry[K, V], error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return buf, ErrBadPacked
	}
	rest := data[sz:]
	if n == 0 {
		return buf, ErrBadPacked
	}
	if n > uint64(maxCount) {
		return buf, ErrBadBlockSize
	}
	start := len(buf)
	var prev uint64
	for i := 0; i < int(n); i++ {
		var u uint64
		if i == 0 {
			v, un := binary.Uvarint(rest)
			if un <= 0 {
				return buf, ErrBadPacked
			}
			u = v
			rest = rest[un:]
		} else {
			d, dn := binary.Varint(rest)
			if dn <= 0 {
				return buf, ErrBadPacked
			}
			u = prev + uint64(d)
			rest = rest[dn:]
		}
		prev = u
		val, vn, err := comp.ValAt(rest)
		if err != nil {
			return buf, err
		}
		rest = rest[vn:]
		k := comp.KeyFromUint(u)
		if i > 0 && !less(buf[len(buf)-1].Key, k) {
			return buf, ErrUnsortedBlock
		}
		buf = append(buf, Entry[K, V]{Key: k, Val: val})
	}
	if len(rest) != 0 {
		return buf, ErrBadPacked
	}
	// Canonicality: varints admit overlong forms and KeyUint images may
	// collide only if the compressor is broken; re-encode and compare so
	// accepted payloads are exactly the ones we would produce.
	check := binary.AppendUvarint(nil, n)
	check = appendPackedEntries(comp, check, buf[start:])
	if string(check) != string(data) {
		return buf, ErrBadPacked
	}
	return buf, nil
}

// appendPackedEntries appends anchor+deltas+values (everything after the
// count) for items.
func appendPackedEntries[K, V any](comp Compressor[K, V], dst []byte, items []Entry[K, V]) []byte {
	prev := comp.KeyUint(items[0].Key)
	dst = binary.AppendUvarint(dst, prev)
	dst = comp.AppendVal(dst, items[0].Val)
	for _, e := range items[1:] {
		u := comp.KeyUint(e.Key)
		dst = binary.AppendVarint(dst, int64(u-prev))
		prev = u
		dst = comp.AppendVal(dst, e.Val)
	}
	return dst
}

// ---------------------------------------------------------------------
// Leaf access helpers. Every operation reads leaf blocks through these
// (or through packedCursorOf directly), so the two layouts stay behind
// one seam.

// leafLen returns the entry count of a leaf block.
func leafLen[K, V, A any](t *node[K, V, A]) int { return int(t.size) }

// leafRead returns the entries of a leaf block: the items array itself
// for a flat leaf (callers must not mutate it), a freshly decoded slice
// for a packed leaf (the caller owns it).
func (o *ops[K, V, A, T]) leafRead(t *node[K, V, A]) []Entry[K, V] {
	if t.items != nil {
		return t.items
	}
	buf := make([]Entry[K, V], 0, leafLen(t))
	return o.leafAppendTo(buf, t)
}

// leafAppendTo appends a leaf block's entries to buf.
func (o *ops[K, V, A, T]) leafAppendTo(buf []Entry[K, V], t *node[K, V, A]) []Entry[K, V] {
	if t.items != nil {
		return append(buf, t.items...)
	}
	c := o.packedCursorOf(t)
	for {
		e, ok := c.next()
		if !ok {
			return buf
		}
		buf = append(buf, e)
	}
}

// leafBound returns the index of the first entry with key >= k and
// whether that entry's key equals k: a binary search on a flat block, a
// sequential delta walk on a packed one (the PaC-trees probe: decoding
// is so much cheaper than a cache miss that the O(B) walk competes with
// the O(log B) search).
func (o *ops[K, V, A, T]) leafBound(t *node[K, V, A], k K) (int, bool) {
	if t.items != nil {
		return o.leafSearch(t.items, k)
	}
	c := o.packedCursorOf(t)
	i := 0
	for {
		e, ok := c.next()
		if !ok {
			return i, false
		}
		if !o.tr.Less(e.Key, k) {
			return i, !o.tr.Less(k, e.Key)
		}
		i++
	}
}

// leafAt returns the entry at index i of a leaf block (0 <= i < len).
func (o *ops[K, V, A, T]) leafAt(t *node[K, V, A], i int) Entry[K, V] {
	if t.items != nil {
		return t.items[i]
	}
	c := o.packedCursorOf(t)
	for ; i > 0; i-- {
		c.next()
	}
	e, _ := c.next()
	return e
}

// leafScanRange visits the entries with index in [i, j) in order; visit
// returning false stops the walk and returns false.
func (o *ops[K, V, A, T]) leafScanRange(t *node[K, V, A], i, j int, visit func(e Entry[K, V]) bool) bool {
	if t.items != nil {
		for ; i < j; i++ {
			if !visit(t.items[i]) {
				return false
			}
		}
		return true
	}
	c := o.packedCursorOf(t)
	for ; i > 0; i-- {
		c.next()
		j--
	}
	for ; j > 0; j-- {
		e, ok := c.next()
		if !ok {
			return true
		}
		if !visit(e) {
			return false
		}
	}
	return true
}

// leafAugRange folds Base over the entries with index in [i, j), Id for
// an empty range — the partial-block fold behind the augmented queries.
func (o *ops[K, V, A, T]) leafAugRange(t *node[K, V, A], i, j int) A {
	if t.items != nil {
		return o.leafAugSlice(t.items, i, j)
	}
	acc := o.tr.Id()
	first := true
	o.leafScanRange(t, i, j, func(e Entry[K, V]) bool {
		if first {
			acc = o.tr.Base(e.Key, e.Val)
			first = false
		} else {
			acc = o.tr.Combine(acc, o.tr.Base(e.Key, e.Val))
		}
		return true
	})
	return acc
}

// leafSlice builds a fresh leaf block over entries [i, j) of a borrowed
// leaf t (nil when the range is empty).
func (o *ops[K, V, A, T]) leafSlice(t *node[K, V, A], i, j int) *node[K, V, A] {
	if i >= j {
		return nil
	}
	if t.items != nil {
		return o.mkLeafCopy(t.items[i:j])
	}
	buf := make([]Entry[K, V], 0, j-i)
	o.leafScanRange(t, i, j, func(e Entry[K, V]) bool { buf = append(buf, e); return true })
	return o.mkLeafOwned(buf)
}

// rebuildLeaf replaces the contents of a leaf block with items
// (non-empty, sorted, at most one block), consuming t and taking
// ownership of items. An exclusively owned node is reused in place —
// for a packed leaf that re-encodes into the retained buffer, the
// copy-on-write re-encode path of every compressed mutation.
func (o *ops[K, V, A, T]) rebuildLeaf(t *node[K, V, A], items []Entry[K, V]) *node[K, V, A] {
	if t.refs.Load() == 1 {
		if o.stats != nil {
			o.stats.Reuses.Add(1)
		}
		if o.comp != nil {
			t.packed = o.packLeafInto(t.packed[:0], items)
		} else {
			t.items = items
		}
		t.size = int64(len(items))
		t.aug = o.leafAug(items)
		return t
	}
	n := o.mkLeafOwned(items)
	o.dec(t)
	return n
}

// validatePacked checks a packed leaf's payload defensively and returns
// the decoded entries. Used by Validate (and, transitively, the fuzz
// harnesses) — live operations trust their blocks.
func (o *ops[K, V, A, T]) validatePacked(t *node[K, V, A]) ([]Entry[K, V], error) {
	if o.comp == nil {
		return nil, ErrNoCompressor
	}
	items, err := decodePacked(o.comp, o.tr.Less, t.packed, o.blockSize(), nil)
	if err != nil {
		return nil, fmt.Errorf("core: packed leaf: %w", err)
	}
	return items, nil
}

// Compressed reports whether this tree family stores its leaf blocks
// compressed (a Compressor was configured).
func (t Tree[K, V, A, T]) Compressed() bool { return t.op.comp != nil }
