package core

// Single-element operations (Table 2 "Map operations", all O(log n),
// plus O(B) array work inside the leaf block an operation lands in).
// insert and delete are built on join alone — independent of the
// balancing scheme, as in Figure 2 of the paper.

// insert adds (k, v) to t (consumed). If k is present, the stored value
// becomes h(old, v); a nil h replaces the old value.
func (o *ops[K, V, A, T]) insert(t *node[K, V, A], k K, v V, h func(old, new V) V) *node[K, V, A] {
	if t == nil {
		return o.singleton(k, v)
	}
	if t.items != nil {
		return o.leafInsert(t, k, v, h)
	}
	switch {
	case o.tr.Less(k, t.key):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(o.insert(l, k, v, h), t, r)
	case o.tr.Less(t.key, k):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(l, t, o.insert(r, k, v, h))
	default:
		t = o.mutable(t)
		if h != nil {
			t.val = h(t.val, v)
		} else {
			t.val = v
		}
		o.update(t)
		return t
	}
}

// leafInsert adds (k, v) to a leaf block (consumed). An overflowing
// block is split into an interior node over two half blocks.
func (o *ops[K, V, A, T]) leafInsert(t *node[K, V, A], k K, v V, h func(old, new V) V) *node[K, V, A] {
	i, found := o.leafSearch(t.items, k)
	if found {
		t = o.mutable(t)
		if h != nil {
			t.items[i].Val = h(t.items[i].Val, v)
		} else {
			t.items[i].Val = v
		}
		t.aug = o.leafAug(t.items)
		return t
	}
	b := o.blockSize()
	if len(t.items) < b {
		if t.refs.Load() == 1 && cap(t.items) > len(t.items) {
			// Exclusively owned with slack: shift in place.
			if o.stats != nil {
				o.stats.Reuses.Add(1)
			}
			t.items = t.items[:len(t.items)+1]
			copy(t.items[i+1:], t.items[i:])
			t.items[i] = Entry[K, V]{Key: k, Val: v}
			t.size = int64(len(t.items))
			t.aug = o.leafAug(t.items)
			return t
		}
		// Regrow with slack so in-place loads amortize reallocation.
		grown := make([]Entry[K, V], len(t.items)+1, min(b, max(len(t.items)+1, 2*len(t.items))))
		copy(grown, t.items[:i])
		grown[i] = Entry[K, V]{Key: k, Val: v}
		copy(grown[i+1:], t.items[i:])
		if t.refs.Load() == 1 {
			if o.stats != nil {
				o.stats.Reuses.Add(1)
			}
			t.items = grown
			t.size = int64(len(grown))
			t.aug = o.leafAug(grown)
			return t
		}
		n := o.mkLeafOwned(grown)
		o.dec(t)
		return n
	}
	// Full block: split around the median into two blocks.
	all := make([]Entry[K, V], 0, len(t.items)+1)
	all = append(all, t.items[:i]...)
	all = append(all, Entry[K, V]{Key: k, Val: v})
	all = append(all, t.items[i:]...)
	o.dec(t)
	return o.twoBlockNode(all)
}

// remove deletes k from t (consumed) if present.
func (o *ops[K, V, A, T]) remove(t *node[K, V, A], k K) *node[K, V, A] {
	if t == nil {
		return nil
	}
	if t.items != nil {
		i, found := o.leafSearch(t.items, k)
		if !found {
			return t
		}
		return o.leafWithout(t, i)
	}
	switch {
	case o.tr.Less(k, t.key):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(o.remove(l, k), t, r)
	case o.tr.Less(t.key, k):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(l, t, o.remove(r, k))
	default:
		l, r := o.detach(t)
		return o.join2(l, r)
	}
}

// find looks up k (borrows t).
func (o *ops[K, V, A, T]) find(t *node[K, V, A], k K) (V, bool) {
	for t != nil {
		if t.items != nil {
			if i, found := o.leafSearch(t.items, k); found {
				return t.items[i].Val, true
			}
			break
		}
		switch {
		case o.tr.Less(k, t.key):
			t = t.left
		case o.tr.Less(t.key, k):
			t = t.right
		default:
			return t.val, true
		}
	}
	var zero V
	return zero, false
}

// first returns the minimum entry (borrows t, which must be non-nil).
func first[K, V, A any](t *node[K, V, A]) (K, V) {
	for t.items == nil && t.left != nil {
		t = t.left
	}
	if t.items != nil {
		return t.items[0].Key, t.items[0].Val
	}
	return t.key, t.val
}

// last returns the maximum entry (borrows t, which must be non-nil).
func last[K, V, A any](t *node[K, V, A]) (K, V) {
	for t.items == nil && t.right != nil {
		t = t.right
	}
	if t.items != nil {
		e := t.items[len(t.items)-1]
		return e.Key, e.Val
	}
	return t.key, t.val
}

// previous returns the largest entry with key strictly less than k.
func (o *ops[K, V, A, T]) previous(t *node[K, V, A], k K) (K, V, bool) {
	var bk K
	var bv V
	ok := false
	for t != nil {
		if t.items != nil {
			if i, _ := o.leafSearch(t.items, k); i > 0 {
				bk, bv, ok = t.items[i-1].Key, t.items[i-1].Val, true
			}
			break
		}
		if o.tr.Less(t.key, k) {
			bk, bv, ok = t.key, t.val, true
			t = t.right
		} else {
			t = t.left
		}
	}
	return bk, bv, ok
}

// next returns the smallest entry with key strictly greater than k.
func (o *ops[K, V, A, T]) next(t *node[K, V, A], k K) (K, V, bool) {
	var bk K
	var bv V
	ok := false
	for t != nil {
		if t.items != nil {
			i, found := o.leafSearch(t.items, k)
			if found {
				i++
			}
			if i < len(t.items) {
				bk, bv, ok = t.items[i].Key, t.items[i].Val, true
			}
			break
		}
		if o.tr.Less(k, t.key) {
			bk, bv, ok = t.key, t.val, true
			t = t.left
		} else {
			t = t.right
		}
	}
	return bk, bv, ok
}

// rank returns the number of entries with key strictly less than k.
func (o *ops[K, V, A, T]) rank(t *node[K, V, A], k K) int64 {
	var r int64
	for t != nil {
		if t.items != nil {
			i, _ := o.leafSearch(t.items, k)
			return r + int64(i)
		}
		if o.tr.Less(t.key, k) {
			r += size(t.left) + 1
			t = t.right
		} else {
			t = t.left
		}
	}
	return r
}

// selectAt returns the entry with rank i (0-based); ok is false if i is
// out of range.
func (o *ops[K, V, A, T]) selectAt(t *node[K, V, A], i int64) (K, V, bool) {
	for t != nil {
		if t.items != nil {
			if i < 0 || i >= int64(len(t.items)) {
				break
			}
			e := t.items[i]
			return e.Key, e.Val, true
		}
		ls := size(t.left)
		switch {
		case i < ls:
			t = t.left
		case i == ls:
			return t.key, t.val, true
		default:
			i -= ls + 1
			t = t.right
		}
	}
	var zk K
	var zv V
	return zk, zv, false
}
