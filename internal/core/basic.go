package core

// Single-element operations (Table 2 "Map operations", all O(log n)).
// insert and delete are built on join alone — independent of the
// balancing scheme, as in Figure 2 of the paper.

// insert adds (k, v) to t (consumed). If k is present, the stored value
// becomes h(old, v); a nil h replaces the old value.
func (o *ops[K, V, A, T]) insert(t *node[K, V, A], k K, v V, h func(old, new V) V) *node[K, V, A] {
	if t == nil {
		return o.singleton(k, v)
	}
	switch {
	case o.tr.Less(k, t.key):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(o.insert(l, k, v, h), t, r)
	case o.tr.Less(t.key, k):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(l, t, o.insert(r, k, v, h))
	default:
		t = o.mutable(t)
		if h != nil {
			t.val = h(t.val, v)
		} else {
			t.val = v
		}
		o.update(t)
		return t
	}
}

// remove deletes k from t (consumed) if present.
func (o *ops[K, V, A, T]) remove(t *node[K, V, A], k K) *node[K, V, A] {
	if t == nil {
		return nil
	}
	switch {
	case o.tr.Less(k, t.key):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(o.remove(l, k), t, r)
	case o.tr.Less(t.key, k):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(l, t, o.remove(r, k))
	default:
		l, r := o.detach(t)
		return o.join2(l, r)
	}
}

// find looks up k (borrows t).
func (o *ops[K, V, A, T]) find(t *node[K, V, A], k K) (V, bool) {
	for t != nil {
		switch {
		case o.tr.Less(k, t.key):
			t = t.left
		case o.tr.Less(t.key, k):
			t = t.right
		default:
			return t.val, true
		}
	}
	var zero V
	return zero, false
}

// first returns the minimum entry (borrows t, which must be non-nil).
func first[K, V, A any](t *node[K, V, A]) (K, V) {
	for t.left != nil {
		t = t.left
	}
	return t.key, t.val
}

// last returns the maximum entry (borrows t, which must be non-nil).
func last[K, V, A any](t *node[K, V, A]) (K, V) {
	for t.right != nil {
		t = t.right
	}
	return t.key, t.val
}

// previous returns the largest entry with key strictly less than k.
func (o *ops[K, V, A, T]) previous(t *node[K, V, A], k K) (K, V, bool) {
	var bk K
	var bv V
	ok := false
	for t != nil {
		if o.tr.Less(t.key, k) {
			bk, bv, ok = t.key, t.val, true
			t = t.right
		} else {
			t = t.left
		}
	}
	return bk, bv, ok
}

// next returns the smallest entry with key strictly greater than k.
func (o *ops[K, V, A, T]) next(t *node[K, V, A], k K) (K, V, bool) {
	var bk K
	var bv V
	ok := false
	for t != nil {
		if o.tr.Less(k, t.key) {
			bk, bv, ok = t.key, t.val, true
			t = t.left
		} else {
			t = t.right
		}
	}
	return bk, bv, ok
}

// rank returns the number of entries with key strictly less than k.
func (o *ops[K, V, A, T]) rank(t *node[K, V, A], k K) int64 {
	var r int64
	for t != nil {
		if o.tr.Less(t.key, k) {
			r += size(t.left) + 1
			t = t.right
		} else {
			t = t.left
		}
	}
	return r
}

// selectAt returns the entry with rank i (0-based); ok is false if i is
// out of range.
func (o *ops[K, V, A, T]) selectAt(t *node[K, V, A], i int64) (K, V, bool) {
	for t != nil {
		ls := size(t.left)
		switch {
		case i < ls:
			t = t.left
		case i == ls:
			return t.key, t.val, true
		default:
			i -= ls + 1
			t = t.right
		}
	}
	var zk K
	var zv V
	return zk, zv, false
}
