package core

// Single-element operations (Table 2 "Map operations", all O(log n),
// plus O(B) array work inside the leaf block an operation lands in).
// insert and delete are built on join alone — independent of the
// balancing scheme, as in Figure 2 of the paper.

// insert adds (k, v) to t (consumed). If k is present, the stored value
// becomes h(old, v); a nil h replaces the old value.
func (o *ops[K, V, A, T]) insert(t *node[K, V, A], k K, v V, h func(old, new V) V) *node[K, V, A] {
	if t == nil {
		return o.singleton(k, v)
	}
	if isLeaf(t) {
		return o.leafInsert(t, k, v, h)
	}
	switch {
	case o.tr.Less(k, t.key):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(o.insert(l, k, v, h), t, r)
	case o.tr.Less(t.key, k):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(l, t, o.insert(r, k, v, h))
	default:
		t = o.mutable(t)
		if h != nil {
			t.val = h(t.val, v)
		} else {
			t.val = v
		}
		o.update(t)
		return t
	}
}

// leafInsert adds (k, v) to a leaf block (consumed). An overflowing
// block is split into an interior node over two half blocks.
func (o *ops[K, V, A, T]) leafInsert(t *node[K, V, A], k K, v V, h func(old, new V) V) *node[K, V, A] {
	if t.packed != nil {
		return o.leafInsertPacked(t, k, v, h)
	}
	i, found := o.leafSearch(t.items, k)
	if found {
		t = o.mutable(t)
		if h != nil {
			t.items[i].Val = h(t.items[i].Val, v)
		} else {
			t.items[i].Val = v
		}
		t.aug = o.leafAug(t.items)
		return t
	}
	b := o.blockSize()
	if len(t.items) < b {
		if t.refs.Load() == 1 && cap(t.items) > len(t.items) {
			// Exclusively owned with slack: shift in place.
			if o.stats != nil {
				o.stats.Reuses.Add(1)
			}
			t.items = t.items[:len(t.items)+1]
			copy(t.items[i+1:], t.items[i:])
			t.items[i] = Entry[K, V]{Key: k, Val: v}
			t.size = int64(len(t.items))
			t.aug = o.leafAug(t.items)
			return t
		}
		// Regrow with slack so in-place loads amortize reallocation.
		grown := make([]Entry[K, V], len(t.items)+1, min(b, max(len(t.items)+1, 2*len(t.items))))
		copy(grown, t.items[:i])
		grown[i] = Entry[K, V]{Key: k, Val: v}
		copy(grown[i+1:], t.items[i:])
		if t.refs.Load() == 1 {
			if o.stats != nil {
				o.stats.Reuses.Add(1)
			}
			t.items = grown
			t.size = int64(len(grown))
			t.aug = o.leafAug(grown)
			return t
		}
		n := o.mkLeafOwned(grown)
		o.dec(t)
		return n
	}
	// Full block: split around the median into two blocks.
	all := make([]Entry[K, V], 0, len(t.items)+1)
	all = append(all, t.items[:i]...)
	all = append(all, Entry[K, V]{Key: k, Val: v})
	all = append(all, t.items[i:]...)
	o.dec(t)
	return o.twoBlockNode(all)
}

// leafInsertPacked is leafInsert for a compressed block: decode into a
// scratch slice, edit, re-encode (in place when exclusively owned).
func (o *ops[K, V, A, T]) leafInsertPacked(t *node[K, V, A], k K, v V, h func(old, new V) V) *node[K, V, A] {
	items := o.leafAppendTo(make([]Entry[K, V], 0, leafLen(t)+1), t)
	i, found := o.leafSearch(items, k)
	if found {
		if h != nil {
			items[i].Val = h(items[i].Val, v)
		} else {
			items[i].Val = v
		}
		return o.rebuildLeaf(t, items)
	}
	if len(items) < o.blockSize() {
		items = append(items, Entry[K, V]{})
		copy(items[i+1:], items[i:])
		items[i] = Entry[K, V]{Key: k, Val: v}
		return o.rebuildLeaf(t, items)
	}
	// Full block: split around the median into two blocks.
	items = append(items, Entry[K, V]{})
	copy(items[i+1:], items[i:])
	items[i] = Entry[K, V]{Key: k, Val: v}
	o.dec(t)
	return o.twoBlockNode(items)
}

// remove deletes k from t (consumed) if present.
func (o *ops[K, V, A, T]) remove(t *node[K, V, A], k K) *node[K, V, A] {
	if t == nil {
		return nil
	}
	if isLeaf(t) {
		i, found := o.leafBound(t, k)
		if !found {
			return t
		}
		return o.leafWithout(t, i)
	}
	switch {
	case o.tr.Less(k, t.key):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(o.remove(l, k), t, r)
	case o.tr.Less(t.key, k):
		t = o.mutable(t)
		l, r := t.left, t.right
		return o.join(l, t, o.remove(r, k))
	default:
		l, r := o.detach(t)
		return o.join2(l, r)
	}
}

// find looks up k (borrows t).
func (o *ops[K, V, A, T]) find(t *node[K, V, A], k K) (V, bool) {
	for t != nil {
		if isLeaf(t) {
			if t.packed != nil {
				// One sequential pass: decode-and-compare beats the
				// walk-twice leafBound+leafAt combination on the hot path.
				c := o.packedCursorOf(t)
				for {
					e, more := c.next()
					if !more || o.tr.Less(k, e.Key) {
						break
					}
					if !o.tr.Less(e.Key, k) {
						return e.Val, true
					}
				}
				break
			}
			if i, found := o.leafSearch(t.items, k); found {
				return t.items[i].Val, true
			}
			break
		}
		switch {
		case o.tr.Less(k, t.key):
			t = t.left
		case o.tr.Less(t.key, k):
			t = t.right
		default:
			return t.val, true
		}
	}
	var zero V
	return zero, false
}

// first returns the minimum entry (borrows t, which must be non-nil).
func (o *ops[K, V, A, T]) first(t *node[K, V, A]) (K, V) {
	for !isLeaf(t) && t.left != nil {
		t = t.left
	}
	if isLeaf(t) {
		e := o.leafAt(t, 0)
		return e.Key, e.Val
	}
	return t.key, t.val
}

// last returns the maximum entry (borrows t, which must be non-nil).
func (o *ops[K, V, A, T]) last(t *node[K, V, A]) (K, V) {
	for !isLeaf(t) && t.right != nil {
		t = t.right
	}
	if isLeaf(t) {
		e := o.leafAt(t, leafLen(t)-1)
		return e.Key, e.Val
	}
	return t.key, t.val
}

// previous returns the largest entry with key strictly less than k.
func (o *ops[K, V, A, T]) previous(t *node[K, V, A], k K) (K, V, bool) {
	var bk K
	var bv V
	ok := false
	for t != nil {
		if isLeaf(t) {
			if i, _ := o.leafBound(t, k); i > 0 {
				e := o.leafAt(t, i-1)
				bk, bv, ok = e.Key, e.Val, true
			}
			break
		}
		if o.tr.Less(t.key, k) {
			bk, bv, ok = t.key, t.val, true
			t = t.right
		} else {
			t = t.left
		}
	}
	return bk, bv, ok
}

// next returns the smallest entry with key strictly greater than k.
func (o *ops[K, V, A, T]) next(t *node[K, V, A], k K) (K, V, bool) {
	var bk K
	var bv V
	ok := false
	for t != nil {
		if isLeaf(t) {
			i, found := o.leafBound(t, k)
			if found {
				i++
			}
			if i < leafLen(t) {
				e := o.leafAt(t, i)
				bk, bv, ok = e.Key, e.Val, true
			}
			break
		}
		if o.tr.Less(k, t.key) {
			bk, bv, ok = t.key, t.val, true
			t = t.left
		} else {
			t = t.right
		}
	}
	return bk, bv, ok
}

// rank returns the number of entries with key strictly less than k.
func (o *ops[K, V, A, T]) rank(t *node[K, V, A], k K) int64 {
	var r int64
	for t != nil {
		if isLeaf(t) {
			i, _ := o.leafBound(t, k)
			return r + int64(i)
		}
		if o.tr.Less(t.key, k) {
			r += size(t.left) + 1
			t = t.right
		} else {
			t = t.left
		}
	}
	return r
}

// selectAt returns the entry with rank i (0-based); ok is false if i is
// out of range.
func (o *ops[K, V, A, T]) selectAt(t *node[K, V, A], i int64) (K, V, bool) {
	for t != nil {
		if isLeaf(t) {
			if i < 0 || i >= int64(leafLen(t)) {
				break
			}
			e := o.leafAt(t, int(i))
			return e.Key, e.Val, true
		}
		ls := size(t.left)
		switch {
		case i < ls:
			t = t.left
		case i == ls:
			return t.key, t.val, true
		default:
			i -= ls + 1
			t = t.right
		}
	}
	var zk K
	var zv V
	return zk, zv, false
}
