package core

// augProject (Figure 1): equivalent to g(augRange(t, lo, hi)) projected
// through the monoid (B, f, g(I)), required to satisfy
// f(g(a), g(b)) == g(Combine(a, b)). Instead of combining augmented
// values with Combine (which may be expensive — for range trees Combine
// is a map union) it projects each whole-subtree augmented value through
// g and combines the small projected values with f. O(log n) work given
// constant-time f and g, plus per-entry projection over the two boundary
// leaf blocks (whole blocks inside the range use their stored augmented
// value: one g each).
//
// These are free functions because the projected type B is not a
// parameter of ops.

func augProjectNode[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], lo, hi K, g func(A) B, f func(x, y B) B, id B) B {
	gkv := func(k K, v V) B { return g(o.tr.Base(k, v)) }
	return augProjectKVNode(o, t, lo, hi, gkv, g, f, id)
}

// augProjectKVNode is the shared engine: gEntry projects one entry
// (for the plain variant it is g∘Base).
func augProjectKVNode[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], lo, hi K, gEntry func(K, V) B, g func(A) B, f func(x, y B) B, id B) B {
	for t != nil {
		if isLeaf(t) {
			return projectLeafRange(o, t, lo, hi, true, true, gEntry, f, id)
		}
		switch {
		case o.tr.Less(t.key, lo):
			t = t.right
		case o.tr.Less(hi, t.key):
			t = t.left
		default:
			l := projectKVGE(o, t.left, lo, gEntry, g, f, id)
			m := gEntry(t.key, t.val)
			r := projectKVLE(o, t.right, hi, gEntry, g, f, id)
			return f(l, f(m, r))
		}
	}
	return id
}

// projectLeafRange folds f over the projections of a leaf block's
// entries restricted to the query range (either bound optional).
func projectLeafRange[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], lo, hi K, useLo, useHi bool, gEntry func(K, V) B, f func(x, y B) B, id B) B {
	i, j := 0, leafLen(t)
	if useLo {
		i, _ = o.leafBound(t, lo)
	}
	if useHi {
		var found bool
		j, found = o.leafBound(t, hi)
		if found {
			j++
		}
	}
	acc := id
	o.leafScanRange(t, i, j, func(e Entry[K, V]) bool {
		acc = f(acc, gEntry(e.Key, e.Val))
		return true
	})
	return acc
}

// projectKVGE projects entries with key >= lo.
func projectKVGE[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], lo K, gEntry func(K, V) B, g func(A) B, f func(x, y B) B, id B) B {
	if t == nil {
		return id
	}
	if isLeaf(t) {
		var hi K
		return projectLeafRange(o, t, lo, hi, true, false, gEntry, f, id)
	}
	if o.tr.Less(t.key, lo) {
		return projectKVGE(o, t.right, lo, gEntry, g, f, id)
	}
	l := projectKVGE(o, t.left, lo, gEntry, g, f, id)
	return f(l, f(gEntry(t.key, t.val), g(o.augOf(t.right))))
}

// projectKVLE projects entries with key <= hi.
func projectKVLE[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], hi K, gEntry func(K, V) B, g func(A) B, f func(x, y B) B, id B) B {
	if t == nil {
		return id
	}
	if isLeaf(t) {
		var lo K
		return projectLeafRange(o, t, lo, hi, false, true, gEntry, f, id)
	}
	if o.tr.Less(hi, t.key) {
		return projectKVLE(o, t.left, hi, gEntry, g, f, id)
	}
	r := projectKVLE(o, t.right, hi, gEntry, g, f, id)
	return f(f(g(o.augOf(t.left)), gEntry(t.key, t.val)), r)
}
