package core

// augProject (Figure 1): equivalent to g(augRange(t, lo, hi)) projected
// through the monoid (B, f, g(I)), required to satisfy
// f(g(a), g(b)) == g(Combine(a, b)). Instead of combining augmented
// values with Combine (which may be expensive — for range trees Combine
// is a map union) it projects each whole-subtree augmented value through
// g and combines the small projected values with f. O(log n) work given
// constant-time f and g.
//
// These are free functions because the projected type B is not a
// parameter of ops.

func augProjectNode[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], lo, hi K, g func(A) B, f func(x, y B) B, id B) B {
	for t != nil {
		switch {
		case o.tr.Less(t.key, lo):
			t = t.right
		case o.tr.Less(hi, t.key):
			t = t.left
		default:
			l := projectGE(o, t.left, lo, g, f, id)
			m := g(o.tr.Base(t.key, t.val))
			r := projectLE(o, t.right, hi, g, f, id)
			return f(l, f(m, r))
		}
	}
	return id
}

// projectGE projects entries with key >= lo.
func projectGE[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], lo K, g func(A) B, f func(x, y B) B, id B) B {
	if t == nil {
		return id
	}
	if o.tr.Less(t.key, lo) {
		return projectGE(o, t.right, lo, g, f, id)
	}
	l := projectGE(o, t.left, lo, g, f, id)
	return f(l, f(g(o.tr.Base(t.key, t.val)), g(o.augOf(t.right))))
}

// projectLE projects entries with key <= hi.
func projectLE[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], hi K, g func(A) B, f func(x, y B) B, id B) B {
	if t == nil {
		return id
	}
	if o.tr.Less(hi, t.key) {
		return projectLE(o, t.left, hi, g, f, id)
	}
	r := projectLE(o, t.right, hi, g, f, id)
	return f(f(g(o.augOf(t.left)), g(o.tr.Base(t.key, t.val))), r)
}

// augProjectKV is augProject with the projection of a single boundary
// entry supplied directly as gEntry, which must satisfy
// gEntry(k, v) == g(Base(k, v)). The generic version materializes
// Base(k, v) for every node on the two O(log n) search paths; when the
// augmented value is itself a map (range trees, segment maps) each
// Base is a heap-allocated singleton structure, so the direct
// projection removes O(log n) allocations per query — the difference
// between an allocation-free count query and one that feeds the GC.

func augProjectKVNode[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], lo, hi K, gEntry func(K, V) B, g func(A) B, f func(x, y B) B, id B) B {
	for t != nil {
		switch {
		case o.tr.Less(t.key, lo):
			t = t.right
		case o.tr.Less(hi, t.key):
			t = t.left
		default:
			l := projectKVGE(o, t.left, lo, gEntry, g, f, id)
			m := gEntry(t.key, t.val)
			r := projectKVLE(o, t.right, hi, gEntry, g, f, id)
			return f(l, f(m, r))
		}
	}
	return id
}

func projectKVGE[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], lo K, gEntry func(K, V) B, g func(A) B, f func(x, y B) B, id B) B {
	if t == nil {
		return id
	}
	if o.tr.Less(t.key, lo) {
		return projectKVGE(o, t.right, lo, gEntry, g, f, id)
	}
	l := projectKVGE(o, t.left, lo, gEntry, g, f, id)
	return f(l, f(gEntry(t.key, t.val), g(o.augOf(t.right))))
}

func projectKVLE[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], hi K, gEntry func(K, V) B, g func(A) B, f func(x, y B) B, id B) B {
	if t == nil {
		return id
	}
	if o.tr.Less(hi, t.key) {
		return projectKVLE(o, t.left, hi, gEntry, g, f, id)
	}
	r := projectKVLE(o, t.right, hi, gEntry, g, f, id)
	return f(f(g(o.augOf(t.left)), gEntry(t.key, t.val)), r)
}
