package core

// Bounded in-order iteration: visits entries with lo <= key <= hi
// without materializing a sub-map — O(log n + k) for k visited entries.

// forEachRange visits the in-range entries of t in key order; visit
// returning false stops the walk. Returns false if stopped early.
func (o *ops[K, V, A, T]) forEachRange(t *node[K, V, A], lo, hi K, visit func(k K, v V) bool) bool {
	if t == nil {
		return true
	}
	if isLeaf(t) {
		i, _ := o.leafBound(t, lo)
		return o.leafScanRange(t, i, leafLen(t), func(e Entry[K, V]) bool {
			if o.tr.Less(hi, e.Key) {
				return true
			}
			return visit(e.Key, e.Val)
		})
	}
	if o.tr.Less(t.key, lo) {
		return o.forEachRange(t.right, lo, hi, visit)
	}
	if o.tr.Less(hi, t.key) {
		return o.forEachRange(t.left, lo, hi, visit)
	}
	return o.forEachRange(t.left, lo, hi, visit) &&
		visit(t.key, t.val) &&
		o.forEachRange(t.right, lo, hi, visit)
}

// ForEachRange visits entries with lo <= key <= hi in key order until
// visit returns false. O(log n + k) for k visited entries, allocation
// free.
func (t Tree[K, V, A, T]) ForEachRange(lo, hi K, visit func(k K, v V) bool) {
	t.o().forEachRange(t.root, lo, hi, visit)
}

// Values materializes the values in key order (in parallel).
func (t Tree[K, V, A, T]) Values() []V {
	out := make([]V, size(t.root))
	t.o().fillValues(t.root, out)
	return out
}

func (o *ops[K, V, A, T]) fillValues(t *node[K, V, A], out []V) {
	if t == nil {
		return
	}
	if isLeaf(t) {
		i := 0
		o.leafScanRange(t, 0, leafLen(t), func(e Entry[K, V]) bool {
			out[i] = e.Val
			i++
			return true
		})
		return
	}
	ls := size(t.left)
	out[ls] = t.val
	o.fillValues(t.left, out[:ls])
	o.fillValues(t.right, out[ls+1:])
}
