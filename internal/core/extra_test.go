package core

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestForEachRange(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(61))
		tr, m := fromKeysBulk(sch, randKeys(rng, 1000, 3000))
		for trial := 0; trial < 100; trial++ {
			lo := rng.Intn(3200) - 100
			hi := lo + rng.Intn(600)
			var got []int
			tr.ForEachRange(lo, hi, func(k int, _ int64) bool {
				got = append(got, k)
				return true
			})
			var want []int
			for k := range m {
				if k >= lo && k <= hi {
					want = append(want, k)
				}
			}
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("ForEachRange(%d,%d): got %d keys want %d", lo, hi, len(got), len(want))
			}
		}
		// Early stop.
		count := 0
		tr.ForEachRange(0, 1<<30, func(int, int64) bool {
			count++
			return count < 5
		})
		if count != 5 {
			t.Fatalf("early stop visited %d", count)
		}
	})
}

func TestValues(t *testing.T) {
	tr := newSum(WeightBalanced)
	for i := 0; i < 500; i++ {
		tr = tr.Insert(i, int64(i*i))
	}
	vals := tr.Values()
	for i, v := range vals {
		if v != int64(i*i) {
			t.Fatalf("Values[%d] = %d", i, v)
		}
	}
	if len(newSum(AVL).Values()) != 0 {
		t.Fatal("empty Values")
	}
}

func TestRemoveFirstLast(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(62))
		tr, m := fromKeysBulk(sch, randKeys(rng, 500, 2000))
		orig := tr
		// Drain from the front: keys must come out in increasing order.
		var drained []int
		cur := tr
		for {
			k, v, rest, ok := cur.RemoveFirst()
			if !ok {
				break
			}
			if v != m[k] {
				t.Fatalf("RemoveFirst value mismatch at %d", k)
			}
			drained = append(drained, k)
			cur = rest
		}
		if !slices.IsSorted(drained) || len(drained) != len(m) {
			t.Fatalf("drained %d keys, sorted=%v", len(drained), slices.IsSorted(drained))
		}
		// Original untouched (persistence).
		mustMatch(t, orig, m)
		// Drain from the back.
		var back []int
		cur = tr
		for {
			k, _, rest, ok := cur.RemoveLast()
			if !ok {
				break
			}
			back = append(back, k)
			cur = rest
			if err := cur.Validate(i64eq); err != nil {
				t.Fatal(err)
			}
			if cur.Size() > 450 {
				continue // validate a prefix only, then fast-drain
			}
			break
		}
		for i := 1; i < len(back); i++ {
			if back[i-1] < back[i] {
				t.Fatal("RemoveLast not decreasing")
			}
		}
		// Empty-map behaviour.
		var empty sumTree
		if _, _, _, ok := empty.RemoveFirst(); ok {
			t.Fatal("RemoveFirst on empty returned ok")
		}
		if _, _, _, ok := empty.RemoveLast(); ok {
			t.Fatal("RemoveLast on empty returned ok")
		}
	})
}

func TestTopKByAug(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(63))
		n := 3000
		tr := newMax(sch)
		vals := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			v := int64(rng.Intn(1_000_000))
			tr = tr.Insert(i, v)
			vals = append(vals, v)
		}
		sorted := slices.Clone(vals)
		slices.SortFunc(sorted, func(a, b int64) int {
			switch {
			case a > b:
				return -1
			case a < b:
				return 1
			default:
				return 0
			}
		})
		for _, k := range []int{0, 1, 7, 100, n, n + 10} {
			got := TopKByAug(tr, k, func(a, b int64) bool { return a < b })
			want := min(k, n)
			if len(got) != want {
				t.Fatalf("TopK(%d) returned %d", k, len(got))
			}
			for i, e := range got {
				if e.Val != sorted[i] {
					t.Fatalf("TopK(%d)[%d] = %d want %d", k, i, e.Val, sorted[i])
				}
			}
		}
	})
}

// Property (quick): difference and union interact correctly on key sets:
// (a ∪ b) \ b == a \ b.
func TestUnionDifferenceQuick(t *testing.T) {
	f := func(a, b []uint8) bool {
		ta, _ := fromKeys(WeightBalanced, bytesToInts(a))
		tb, _ := fromKeys(WeightBalanced, bytesToInts(b))
		lhs := ta.Union(tb).Difference(tb)
		rhs := ta.Difference(tb)
		le, re := lhs.Entries(), rhs.Entries()
		if len(le) != len(re) {
			return false
		}
		for i := range le {
			if le[i].Key != re[i].Key {
				return false
			}
		}
		return lhs.Validate(i64eq) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): split at a random key partitions rank space:
// Rank(k) == left.Size() and sizes add up.
func TestSplitRankQuick(t *testing.T) {
	f := func(keys []uint8, at uint8) bool {
		tr, _ := fromKeys(RedBlack, bytesToInts(keys))
		l, _, found, r := tr.Split(int(at))
		extra := int64(0)
		if found {
			extra = 1
		}
		return l.Size()+r.Size()+extra == tr.Size() &&
			tr.Rank(int(at)) == l.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): MultiDelete(t, keys) == Difference(t, set(keys)).
func TestMultiDeleteDifferenceQuick(t *testing.T) {
	f := func(base, del []uint8) bool {
		tr, _ := fromKeys(AVL, bytesToInts(base))
		keys := bytesToInts(del)
		viaMD := tr.MultiDelete(keys)
		delTree, _ := fromKeys(AVL, keys)
		viaDiff := tr.Difference(delTree)
		a, b := viaMD.Entries(), viaDiff.Entries()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSizeReporting(t *testing.T) {
	plain := NodeSize[uint64, int64, struct{}, noAugU64]()
	aug := NodeSize[uint64, int64, int64, sumU64]()
	if aug <= plain {
		t.Fatalf("augmented node (%d B) not larger than plain (%d B)", aug, plain)
	}
	if aug-plain != 8 {
		t.Fatalf("aug field costs %d bytes, want 8", aug-plain)
	}
}

type noAugU64 struct{}

func (noAugU64) Less(a, b uint64) bool               { return a < b }
func (noAugU64) Id() struct{}                        { return struct{}{} }
func (noAugU64) Base(uint64, int64) struct{}         { return struct{}{} }
func (noAugU64) Combine(struct{}, struct{}) struct{} { return struct{}{} }

type sumU64 struct{}

func (sumU64) Less(a, b uint64) bool        { return a < b }
func (sumU64) Id() int64                    { return 0 }
func (sumU64) Base(_ uint64, v int64) int64 { return v }
func (sumU64) Combine(x, y int64) int64     { return x + y }

func TestNodeAugsEnumeratesAllNodes(t *testing.T) {
	tr := newSum(WeightBalanced)
	for i := 0; i < 100; i++ {
		tr = tr.Insert(i, 1)
	}
	// One augmented value per node: interior nodes and leaf blocks each
	// store exactly one, so the count matches CountUniqueNodes, and with
	// blocking it is far below the entry count.
	augs := NodeAugs(tr)
	if int64(len(augs)) != CountUniqueNodes(tr) {
		t.Fatalf("NodeAugs returned %d values for %d nodes", len(augs), CountUniqueNodes(tr))
	}
	if int64(len(augs)) >= tr.Size() {
		t.Fatalf("blocked tree stores %d augs for %d entries; want fewer", len(augs), tr.Size())
	}
	// The root's augmented value (the full sum) must be among them.
	found := false
	for _, a := range augs {
		if a == 100 {
			found = true
		}
	}
	if !found {
		t.Fatal("root augmented value missing from NodeAugs")
	}
}

func TestAugFilterWithTakeAll(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		// Min-augmented view via max traits won't work for take-all; use
		// a band filter on a sum... Simplest sound setup: max-aug with
		// hAny(a) = a >= lo and hAll(a) = true only when the whole
		// subtree's min >= lo — not expressible with max alone, so use
		// values equal to keys and filter "key-range" style where hAll
		// can never fire except on single-sided data. Instead, verify
		// with hAll = hAny on data where values are constant per region:
		// all entries share value 7, so max == 7 implies every entry is 7.
		tr := newMax(sch)
		for i := 0; i < 2000; i++ {
			tr = tr.Insert(i, 7)
		}
		got := tr.AugFilterWith(
			func(a int64) bool { return a >= 7 },
			func(a int64) bool { return a >= 7 }, // constant values: max>=7 => all>=7
		)
		if got.Size() != 2000 {
			t.Fatalf("take-all filter kept %d", got.Size())
		}
		if err := got.Validate(i64eq); err != nil {
			t.Fatal(err)
		}
		// With a threshold nothing satisfies, result is empty.
		none := tr.AugFilterWith(
			func(a int64) bool { return a >= 100 }, nil)
		if !none.IsEmpty() {
			t.Fatal("expected empty")
		}
		// Mixed data: hAll never true, equivalence with plain AugFilter.
		rng := rand.New(rand.NewSource(64))
		tr2 := newMax(sch)
		for i := 0; i < 3000; i++ {
			tr2 = tr2.Insert(i, int64(rng.Intn(1000)))
		}
		th := int64(900)
		a := tr2.AugFilterWith(func(x int64) bool { return x >= th }, nil)
		b := tr2.AugFilter(func(x int64) bool { return x >= th })
		ae, be := a.Entries(), b.Entries()
		if len(ae) != len(be) {
			t.Fatalf("AugFilterWith(nil) differs from AugFilter: %d vs %d", len(ae), len(be))
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("entry %d differs", i)
			}
		}
	})
}

func TestAugFilterWithSharesSubtrees(t *testing.T) {
	// The take-all path must take whole subtrees by reference: the
	// result of an all-pass filter shares its root with the input.
	st := &Stats{}
	tr := New[int, int64, int64, maxTraits](Config{Stats: st})
	for i := 0; i < 1000; i++ {
		tr.InsertInPlace(i, 5)
	}
	st.Reset()
	out := tr.AugFilterWith(
		func(a int64) bool { return a >= 0 },
		func(a int64) bool { return a >= 0 })
	if st.Allocated.Load() != 0 {
		t.Fatalf("take-all filter allocated %d nodes; want 0 (pure sharing)", st.Allocated.Load())
	}
	if out.Size() != tr.Size() {
		t.Fatal("take-all filter lost entries")
	}
	if !out.SharesStructureWith(tr) {
		t.Fatal("take-all result does not share structure")
	}
}

func TestReleaseParallel(t *testing.T) {
	st := &Stats{}
	tr := New[int, int64, int64, sumTraits](Config{Stats: st})
	items := make([]Entry[int, int64], 100_000)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i, Val: 1}
	}
	tr = tr.BuildSorted(items)
	live := st.Live()
	// Blocked layout: ~100000/B blocks plus the interior skeleton.
	if live < 100_000/DefaultBlock {
		t.Fatalf("expected >= %d live nodes, got %d", 100_000/DefaultBlock, live)
	}
	tr.ReleaseParallel()
	if st.Live() != 0 {
		t.Fatalf("ReleaseParallel leaked %d nodes", st.Live())
	}
	// Shared structure must survive a parallel release of one owner.
	a := New[int, int64, int64, sumTraits](Config{Stats: st}).BuildSorted(items)
	b := a.Insert(-1, 1)
	a.ReleaseParallel()
	if err := b.Validate(i64eq); err != nil {
		t.Fatalf("shared tree corrupted by parallel release: %v", err)
	}
	if b.Size() != 100_001 {
		t.Fatalf("b size %d", b.Size())
	}
}

func TestCursor(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(65))
		tr, m := fromKeysBulk(sch, randKeys(rng, 800, 3000))
		// Full scan matches Entries.
		want := tr.Entries()
		c := tr.Cursor()
		for i := 0; ; i++ {
			k, v, ok := c.Next()
			if !ok {
				if i != len(want) {
					t.Fatalf("cursor ended at %d of %d", i, len(want))
				}
				break
			}
			if want[i].Key != k || want[i].Val != v {
				t.Fatalf("cursor[%d] = %d=%d want %v", i, k, v, want[i])
			}
		}
		// SeekGE to random targets.
		for trial := 0; trial < 100; trial++ {
			target := rng.Intn(3200) - 100
			c.SeekGE(tr, target)
			k, _, ok := c.Next()
			// Expected: smallest key >= target.
			wantK, wantOK := 1<<31, false
			for kk := range m {
				if kk >= target && kk < wantK {
					wantK, wantOK = kk, true
				}
			}
			if ok != wantOK || (ok && k != wantK) {
				t.Fatalf("SeekGE(%d) -> %d,%v want %d,%v", target, k, ok, wantK, wantOK)
			}
		}
		// Cursor survives later updates (persistence).
		c.SeekGE(tr, -1000)
		_ = tr.Insert(99999, 1)
		count := 0
		for {
			if _, _, ok := c.Next(); !ok {
				break
			}
			count++
		}
		if count != len(want) {
			t.Fatalf("cursor over snapshot saw %d entries, want %d", count, len(want))
		}
		// Empty tree cursor.
		var empty sumTree
		if _, _, ok := empty.Cursor().Next(); ok {
			t.Fatal("empty cursor yielded an entry")
		}
	})
}
