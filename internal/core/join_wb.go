package core

// Weight-balanced (BB[alpha]) join, the PAM default scheme. Balance is
// defined on weights (subtree size + 1, counting entries — a leaf block
// of m entries weighs m+1): a node is balanced when each child's weight
// is at least alpha times the node's weight. We use alpha = 0.29, inside
// the valid range (1/4, 1 - 1/sqrt(2)] for which a single or double
// rotation per level restores balance after join (Blelloch, Ferizovic,
// Sun, SPAA'16). All arithmetic is integral: alpha = 29/100.
//
// Blocked layout: collapsing a small subtree into a leaf block and
// expanding a block at its median both preserve weights, so the
// weight-balance argument is indifferent to blocking. The spine descent
// collapses once the remaining region fits a block, and expands a block
// when it must descend into (or rotate around) one.

const wbAlphaNum, wbAlphaDen = 29, 100

// wbBalanced reports whether sibling subtrees of weights wl and wr
// satisfy the BB[alpha] criterion.
func wbBalanced(wl, wr int64) bool {
	w := wl + wr
	return wbAlphaNum*w <= wbAlphaDen*wl && wbAlphaNum*w <= wbAlphaDen*wr
}

func (o *ops[K, V, A, T]) joinWB(l, m, r *node[K, V, A]) *node[K, V, A] {
	wl, wr := weight(l), weight(r)
	if wbBalanced(wl, wr) {
		return o.attach(m, l, r)
	}
	if wl > wr {
		return o.joinRightWB(l, m, r)
	}
	return o.joinLeftWB(l, m, r)
}

// joinRightWB handles the left-heavy case: descend l's right spine until
// the remainder balances against r, attach there, and restore balance
// with at most one single or double rotation per level on the way back.
func (o *ops[K, V, A, T]) joinRightWB(l, m, r *node[K, V, A]) *node[K, V, A] {
	if size(l)+size(r)+1 <= int64(o.blockSize()) {
		return o.collapseJoin(l, m, r)
	}
	if wbBalanced(weight(l), weight(r)) {
		return o.attach(m, l, r)
	}
	if isLeaf(l) {
		// The spine bottomed out in a block that is still too heavy for
		// r: split it open and keep descending into its right half.
		l = o.expandLeaf(l)
	}
	l = o.mutable(l)
	t := o.joinRightWB(l.right, m, r)
	l.right = t
	o.update(l)
	ll := l.left
	if !wbBalanced(weight(ll), weight(t)) {
		// t grew too heavy. A single left rotation promotes t; it is
		// valid exactly when the resulting node (ll + t.left) balances
		// both internally and against t.right. Otherwise rotate t right
		// first (double rotation). Rotation needs to look inside t, so a
		// block there is expanded (weight-neutral).
		if isLeaf(t) {
			t = o.expandLeaf(t)
			l.right = t
		}
		if wbBalanced(weight(ll), weight(t.left)) &&
			wbBalanced(weight(ll)+weight(t.left), weight(t.right)) {
			return o.rotateLeft(l)
		}
		l.right = o.rotateRight(t)
		return o.rotateLeft(l)
	}
	return l
}

// joinLeftWB is the mirror image of joinRightWB for the right-heavy case.
func (o *ops[K, V, A, T]) joinLeftWB(l, m, r *node[K, V, A]) *node[K, V, A] {
	if size(l)+size(r)+1 <= int64(o.blockSize()) {
		return o.collapseJoin(l, m, r)
	}
	if wbBalanced(weight(l), weight(r)) {
		return o.attach(m, l, r)
	}
	if isLeaf(r) {
		r = o.expandLeaf(r)
	}
	r = o.mutable(r)
	t := o.joinLeftWB(l, m, r.left)
	r.left = t
	o.update(r)
	rr := r.right
	if !wbBalanced(weight(t), weight(rr)) {
		if isLeaf(t) {
			t = o.expandLeaf(t)
			r.left = t
		}
		if wbBalanced(weight(t.right), weight(rr)) &&
			wbBalanced(weight(t.right)+weight(rr), weight(t.left)) {
			return o.rotateRight(r)
		}
		r.left = o.rotateLeft(t)
		return o.rotateRight(r)
	}
	return r
}
