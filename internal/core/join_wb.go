package core

// Weight-balanced (BB[alpha]) join, the PAM default scheme. Balance is
// defined on weights (subtree size + 1): a node is balanced when each
// child's weight is at least alpha times the node's weight. We use
// alpha = 0.29, inside the valid range (1/4, 1 - 1/sqrt(2)] for which a
// single or double rotation per level restores balance after join
// (Blelloch, Ferizovic, Sun, SPAA'16). All arithmetic is integral:
// alpha = 29/100.

const wbAlphaNum, wbAlphaDen = 29, 100

// wbBalanced reports whether sibling subtrees of weights wl and wr
// satisfy the BB[alpha] criterion.
func wbBalanced(wl, wr int64) bool {
	w := wl + wr
	return wbAlphaNum*w <= wbAlphaDen*wl && wbAlphaNum*w <= wbAlphaDen*wr
}

func (o *ops[K, V, A, T]) joinWB(l, m, r *node[K, V, A]) *node[K, V, A] {
	wl, wr := weight(l), weight(r)
	if wbBalanced(wl, wr) {
		return o.attach(m, l, r)
	}
	if wl > wr {
		return o.joinRightWB(l, m, r)
	}
	return o.joinLeftWB(l, m, r)
}

// joinRightWB handles the left-heavy case: descend l's right spine until
// the remainder balances against r, attach there, and restore balance
// with at most one single or double rotation per level on the way back.
func (o *ops[K, V, A, T]) joinRightWB(l, m, r *node[K, V, A]) *node[K, V, A] {
	if wbBalanced(weight(l), weight(r)) {
		return o.attach(m, l, r)
	}
	l = o.mutable(l)
	t := o.joinRightWB(l.right, m, r)
	l.right = t
	o.update(l)
	ll := l.left
	if !wbBalanced(weight(ll), weight(t)) {
		// t grew too heavy. A single left rotation promotes t; it is
		// valid exactly when the resulting node (ll + t.left) balances
		// both internally and against t.right. Otherwise rotate t right
		// first (double rotation).
		if wbBalanced(weight(ll), weight(t.left)) &&
			wbBalanced(weight(ll)+weight(t.left), weight(t.right)) {
			return o.rotateLeft(l)
		}
		l.right = o.rotateRight(t)
		return o.rotateLeft(l)
	}
	return l
}

// joinLeftWB is the mirror image of joinRightWB for the right-heavy case.
func (o *ops[K, V, A, T]) joinLeftWB(l, m, r *node[K, V, A]) *node[K, V, A] {
	if wbBalanced(weight(l), weight(r)) {
		return o.attach(m, l, r)
	}
	r = o.mutable(r)
	t := o.joinLeftWB(l, m, r.left)
	r.left = t
	o.update(r)
	rr := r.right
	if !wbBalanced(weight(t), weight(rr)) {
		if wbBalanced(weight(t.right), weight(rr)) &&
			wbBalanced(weight(t.right)+weight(rr), weight(t.left)) {
			return o.rotateRight(r)
		}
		r.left = o.rotateLeft(t)
		return o.rotateRight(r)
	}
	return r
}
