package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// Compressed leaf-block tests: the boundary suite from leaf_test.go
// replayed under the packed layout, differential runs against the flat
// layout, the space accounting, serialization round trips (including
// cross-layout decode and compressor mismatch), and defensive decoding
// of corrupt payloads.

// testComp is the core-level test Compressor: int keys via the
// two's-complement uint64 image, zig-zag varint values (the same shape
// as pam.CompressInt).
type testComp struct{}

func (testComp) KeyUint(k int) uint64     { return uint64(k) }
func (testComp) KeyFromUint(u uint64) int { return int(u) }
func (testComp) AppendVal(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}
func (testComp) ValAt(data []byte) (int64, int, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, 0, ErrCorrupt
	}
	return v, n, nil
}

func newSumComp(sch Scheme, block int) sumTree {
	return New[int, int64, int64, sumTraits](Config{Scheme: sch, Block: block, Compress: testComp{}})
}

// TestCompressedBoundaryOccupancy drives a packed block through the
// exact fill boundary (B-1, B, B+1) for several block sizes and all
// schemes, mirroring TestLeafBoundaryOccupancy, with a negative-key run
// to exercise wrap-around key images and negative deltas.
func TestCompressedBoundaryOccupancy(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		for _, b := range []int{2, 3, 4, 7, DefaultBlock} {
			for _, base := range []int{0, -1_000_000} {
				tr := newSumComp(sch, b)
				if !tr.Compressed() {
					t.Fatal("tree with a Compressor reports Compressed() == false")
				}
				m := model{}
				for i := 0; i < b+1; i++ {
					k := base + 7*i
					tr = tr.Insert(k, int64(i))
					m[k] = int64(i)
					if err := tr.Validate(i64eq); err != nil {
						t.Fatalf("block=%d base=%d after %d inserts: %v", b, base, i+1, err)
					}
				}
				mustMatch(t, tr, m)
				probe := newSumComp(sch, b)
				for i := 0; i < b; i++ {
					probe = probe.Insert(base+7*i, 1)
				}
				if h := probe.Height(); h != 1 {
					t.Fatalf("block=%d: %d entries have height %d, want a single block", b, b, h)
				}
				if h := tr.Height(); h < 2 {
					t.Fatalf("block=%d: %d entries still height %d, split expected", b, b+1, h)
				}
				for i := b; i >= 1; i-- {
					k := base + 7*i
					tr = tr.Delete(k)
					delete(m, k)
					if err := tr.Validate(i64eq); err != nil {
						t.Fatalf("block=%d deleting %d: %v", b, k, err)
					}
				}
				mustMatch(t, tr, m)
			}
		}
	})
}

// TestCompressedSplitInsideLeaf splits a compressed map at every
// possible position — interior of packed blocks included — and checks
// the pieces and their rejoin.
func TestCompressedSplitInsideLeaf(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		n := 3*DefaultBlock + 5
		items := make([]Entry[int, int64], n)
		for i := range items {
			items[i] = Entry[int, int64]{Key: 2 * i, Val: int64(i)}
		}
		tr := newSumComp(sch, 0).BuildSorted(items)
		for k := -1; k <= 2*n; k++ {
			l, v, found, r := tr.Split(k)
			wantFound := k >= 0 && k < 2*n && k%2 == 0
			if found != wantFound {
				t.Fatalf("Split(%d) found=%v want %v", k, found, wantFound)
			}
			if found && v != int64(k/2) {
				t.Fatalf("Split(%d) value %d", k, v)
			}
			if err := l.Validate(i64eq); err != nil {
				t.Fatalf("left of Split(%d): %v", k, err)
			}
			if err := r.Validate(i64eq); err != nil {
				t.Fatalf("right of Split(%d): %v", k, err)
			}
			var re sumTree
			if found {
				re = l.Join(k, v, r)
			} else {
				re = l.Concat(r)
			}
			if err := re.Validate(i64eq); err != nil {
				t.Fatalf("rejoin of Split(%d): %v", k, err)
			}
			if re.Size() != int64(n) {
				t.Fatalf("rejoin of Split(%d) lost entries: %d", k, re.Size())
			}
		}
	})
}

// TestCompressedSharingBetweenSnapshots pins per-block copy-on-write
// under the packed layout: snapshots share packed blocks; an update
// re-encodes only the touched block.
func TestCompressedSharingBetweenSnapshots(t *testing.T) {
	st := &Stats{}
	tr := New[int, int64, int64, sumTraits](Config{Stats: st, Compress: testComp{}})
	items := make([]Entry[int, int64], 1000)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i, Val: int64(i)}
	}
	tr = tr.BuildSorted(items)
	snap := tr

	st.Reset()
	upd := tr.Insert(500, -1)
	if c := st.Copies.Load(); c == 0 {
		t.Fatal("insert into shared compressed tree did not copy-on-write")
	}
	unique := CountUniqueNodes(tr, snap, upd)
	base := CountUniqueNodes(tr)
	if unique > base+64 {
		t.Fatalf("block update copied too much: %d unique vs %d base", unique, base)
	}
	if v, _ := snap.Find(500); v != 500 {
		t.Fatalf("snapshot value changed to %d", v)
	}
	if v, _ := upd.Find(500); v != -1 {
		t.Fatalf("update lost: %d", v)
	}
	if err := snap.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
	if err := upd.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
	if !snap.SharesStructureWith(upd) {
		t.Fatal("snapshot and update share nothing")
	}
}

// TestCompressedInPlaceGrowth: an unshared compressed map re-encodes
// its blocks into the retained buffer — filling must not allocate a
// node per entry.
func TestCompressedInPlaceGrowth(t *testing.T) {
	st := &Stats{}
	tr := New[int, int64, int64, sumTraits](Config{Stats: st, Compress: testComp{}})
	for i := 0; i < 10*DefaultBlock; i++ {
		tr.InsertInPlace(i, int64(i))
	}
	if a := st.Allocated.Load(); a > int64(10*DefaultBlock/4) {
		t.Fatalf("in-place fill of %d entries allocated %d nodes", 10*DefaultBlock, a)
	}
	if st.Copies.Load() != 0 {
		t.Fatalf("unshared fill copied %d nodes", st.Copies.Load())
	}
	if err := tr.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
}

// TestCompressedDifferential runs identical random op sequences over a
// compressed and an uncompressed tree at small block sizes (every op
// crosses block boundaries) and demands identical observable state,
// including the bulk and ordered-query operations.
func TestCompressedDifferential(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		for _, b := range []int{2, 5} {
			rng := rand.New(rand.NewSource(int64(500 + b)))
			ct := newSumComp(sch, b)
			ft := newSumBlock(sch, b)
			check := func(step int) {
				if err := ct.Validate(i64eq); err != nil {
					t.Fatalf("block=%d step %d: compressed: %v", b, step, err)
				}
				ce, fe := ct.Entries(), ft.Entries()
				if len(ce) != len(fe) {
					t.Fatalf("block=%d step %d: %d entries vs %d flat", b, step, len(ce), len(fe))
				}
				for i := range ce {
					if ce[i] != fe[i] {
						t.Fatalf("block=%d step %d: entry %d = %v, flat has %v", b, step, i, ce[i], fe[i])
					}
				}
				if ct.AugVal() != ft.AugVal() {
					t.Fatalf("block=%d step %d: AugVal %d vs %d", b, step, ct.AugVal(), ft.AugVal())
				}
			}
			for step := 0; step < 900; step++ {
				k := rng.Intn(400) - 200
				switch rng.Intn(10) {
				case 0, 1, 2:
					v := int64(rng.Intn(1000) - 500)
					ct, ft = ct.Insert(k, v), ft.Insert(k, v)
				case 3:
					ct, ft = ct.Delete(k), ft.Delete(k)
				case 4:
					cl, cv, cf, cr := ct.Split(k)
					fl, fv, ff, fr := ft.Split(k)
					if cf != ff || cv != fv {
						t.Fatalf("Split(%d): %v/%d vs %v/%d", k, cf, cv, ff, fv)
					}
					if cf {
						ct, ft = cl.Join(k, cv, cr), fl.Join(k, fv, fr)
					} else {
						ct, ft = cl.Concat(cr), fl.Concat(fr)
					}
				case 5:
					batch := make([]Entry[int, int64], rng.Intn(12))
					for i := range batch {
						batch[i] = Entry[int, int64]{Key: rng.Intn(400) - 200, Val: int64(i)}
					}
					keep := func(o, n int64) int64 { return o }
					ct, ft = ct.MultiInsert(batch, keep), ft.MultiInsert(batch, keep)
				case 6:
					keys := make([]int, rng.Intn(8))
					for i := range keys {
						keys[i] = rng.Intn(400) - 200
					}
					ct, ft = ct.MultiDelete(keys), ft.MultiDelete(keys)
				case 7:
					other := make([]Entry[int, int64], 20)
					for i := range other {
						other[i] = Entry[int, int64]{Key: rng.Intn(400) - 200, Val: 7}
					}
					co := newSumComp(sch, b).Build(other, func(o, n int64) int64 { return n })
					fo := newSumBlock(sch, b).Build(other, func(o, n int64) int64 { return n })
					switch rng.Intn(3) {
					case 0:
						ct, ft = ct.Union(co), ft.Union(fo)
					case 1:
						ct, ft = ct.Intersect(co), ft.Intersect(fo)
					case 2:
						ct, ft = ct.Difference(co), ft.Difference(fo)
					}
				case 8:
					pred := func(k int, v int64) bool { return (k+int(v))%3 != 0 }
					ct, ft = ct.Filter(pred), ft.Filter(pred)
				case 9:
					fn := func(k int, v int64) int64 { return v + int64(k%5) }
					ct, ft = ct.MapValues(fn), ft.MapValues(fn)
				}
				// Point and ordered queries agree every step.
				cv, cok := ct.Find(k)
				fv, fok := ft.Find(k)
				if cok != fok || cv != fv {
					t.Fatalf("Find(%d): %d,%v vs %d,%v", k, cv, cok, fv, fok)
				}
				if ct.Rank(k) != ft.Rank(k) {
					t.Fatalf("Rank(%d): %d vs %d", k, ct.Rank(k), ft.Rank(k))
				}
				pk, pv, pok := ct.Previous(k)
				qk, qv, qok := ft.Previous(k)
				if pk != qk || pv != qv || pok != qok {
					t.Fatalf("Previous(%d) diverged", k)
				}
				if ct.AugRange(k-30, k+30) != ft.AugRange(k-30, k+30) {
					t.Fatalf("AugRange around %d diverged", k)
				}
				if step%150 == 149 {
					check(step)
				}
			}
			check(-1)
		}
	})
}

// TestCompressedSpaceStats pins the space win: locally dense int keys
// pack to a fraction of the 16-byte flat entry.
func TestCompressedSpaceStats(t *testing.T) {
	items := make([]Entry[int, int64], 10_000)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i, Val: int64(i % 128)}
	}
	flat := newSum(WeightBalanced).BuildSorted(items)
	comp := newSumComp(WeightBalanced, 0).BuildSorted(items)
	fs, cs := flat.SpaceStats(), comp.SpaceStats()
	if cs.Entries != 10_000 || fs.Entries != 10_000 {
		t.Fatalf("entries %d / %d", cs.Entries, fs.Entries)
	}
	if fs.CompressionRatio != 1 {
		t.Fatalf("flat tree compression ratio %.2f, want 1", fs.CompressionRatio)
	}
	if cs.CompressionRatio < 2 {
		t.Fatalf("compressed ratio %.2f, want >= 2 for dense keys", cs.CompressionRatio)
	}
	if cs.BytesPerEntry >= fs.BytesPerEntry/2 {
		t.Fatalf("compressed %.1f B/entry vs flat %.1f — less than 2x win", cs.BytesPerEntry, fs.BytesPerEntry)
	}
	if cs.LogicalBytes != fs.PhysicalBytes {
		// Same entries, same block geometry: logical bytes of the packed
		// tree should equal what the flat layout occupies, modulo slack
		// capacity in flat blocks.
		if cs.LogicalBytes > fs.PhysicalBytes {
			t.Fatalf("logical %d exceeds flat physical %d", cs.LogicalBytes, fs.PhysicalBytes)
		}
	}
}

// TestCompressedEncodeDecode round-trips compressed trees through the
// checkpoint wire format: packed records decode byte-identically (same
// digests), a compressed stream into an uncompressed family fails with
// ErrNoCompressor, and a plain stream decodes into a compressed family
// by re-packing.
func TestCompressedEncodeDecode(t *testing.T) {
	for sch := Scheme(0); sch < NumSchemes; sch++ {
		for _, block := range []int{0, 2, 5} {
			for _, n := range []int{1, 7, 300} {
				cfg := Config{Scheme: sch, Block: block, Compress: testComp{}}
				tr := New[int, int64, int64, sumTraits](cfg)
				for i := 0; i < n; i++ {
					tr = tr.Insert((i*37)%(2*n+1), int64(i))
				}
				rs := NewRecordSet[int, int64, int64]()
				buf, root, wrote := EncodeDelta(tr, rs, testCodec(), nil)
				tb := NewDecodeTable[int, int64, int64, sumTraits](cfg)
				rest, err := tb.DecodeRecords(testCodec(), buf, wrote)
				if err != nil {
					t.Fatalf("scheme %v block %d n %d: decode: %v", sch, block, n, err)
				}
				if len(rest) != 0 {
					t.Fatalf("decode left %d bytes", len(rest))
				}
				got, err := tb.Tree(root)
				if err != nil {
					t.Fatalf("Tree(%d): %v", root, err)
				}
				if !got.Compressed() {
					t.Fatal("decoded tree lost its compressor")
				}
				if err := got.Validate(i64eq); err != nil {
					t.Fatalf("scheme %v block %d n %d: decoded tree invalid: %v", sch, block, n, err)
				}
				we, ge := tr.Entries(), got.Entries()
				if len(we) != len(ge) {
					t.Fatalf("decoded %d entries, want %d", len(ge), len(we))
				}
				for i := range we {
					if we[i] != ge[i] {
						t.Fatalf("entry %d = %v, want %v", i, ge[i], we[i])
					}
				}
				// Canonical packing means a re-encode of the decoded tree
				// reproduces identical record digests.
				wd, ok := RootDigest(tr, rs)
				if !ok {
					t.Fatal("encoded tree has no root digest")
				}
				gd, err := tb.Digest(root)
				if err != nil || gd != wd {
					t.Fatalf("digest mismatch after round trip: %v vs %v (%v)", gd, wd, err)
				}

				// Compressed stream into an uncompressed family: must fail
				// with ErrNoCompressor, not panic or misdecode.
				plainTb := NewDecodeTable[int, int64, int64, sumTraits](Config{Scheme: sch, Block: block})
				if _, err := plainTb.DecodeRecords(testCodec(), buf, wrote); !errors.Is(err, ErrNoCompressor) {
					t.Fatalf("plain family decoded compressed stream: err=%v", err)
				}

				// Plain stream into a compressed family: leaves re-pack.
				flat := New[int, int64, int64, sumTraits](Config{Scheme: sch, Block: block}).Build(tr.Entries(), nil)
				frs := NewRecordSet[int, int64, int64]()
				fbuf, froot, fwrote := EncodeDelta(flat, frs, testCodec(), nil)
				xtb := NewDecodeTable[int, int64, int64, sumTraits](cfg)
				if _, err := xtb.DecodeRecords(testCodec(), fbuf, fwrote); err != nil {
					t.Fatalf("cross decode: %v", err)
				}
				xt, err := xtb.Tree(froot)
				if err != nil {
					t.Fatalf("cross decode Tree: %v", err)
				}
				if !xt.Compressed() {
					t.Fatal("cross-decoded tree not compressed")
				}
				if err := xt.Validate(i64eq); err != nil {
					t.Fatalf("cross-decoded tree invalid: %v", err)
				}
				xe := xt.Entries()
				if len(xe) != len(we) {
					t.Fatalf("cross decode %d entries, want %d", len(xe), len(we))
				}
			}
		}
	}
}

// TestCompressedDecodeRejectsCorrupt exercises decodePacked on damaged
// payloads: every strict prefix errors, trailing garbage errors,
// non-canonical (overlong-varint) re-encodings error, and single-bit
// flips never panic.
func TestCompressedDecodeRejectsCorrupt(t *testing.T) {
	base := newSumComp(WeightBalanced, DefaultBlock)
	o := base.o()
	items := []Entry[int, int64]{{Key: -500, Val: 1}, {Key: 3, Val: -70000}, {Key: 4, Val: 0}, {Key: 90000, Val: 12}}
	payload := o.packLeafInto(nil, items)
	less := func(a, b int) bool { return a < b }

	dec, err := decodePacked[int, int64](testComp{}, less, payload, DefaultBlock, nil)
	if err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	for i, e := range items {
		if dec[i] != e {
			t.Fatalf("decoded entry %d = %v, want %v", i, dec[i], e)
		}
	}

	for i := 0; i < len(payload); i++ {
		if _, err := decodePacked[int, int64](testComp{}, less, payload[:i], DefaultBlock, nil); err == nil {
			t.Fatalf("prefix of length %d decoded without error", i)
		}
	}
	if _, err := decodePacked[int, int64](testComp{}, less, append(append([]byte{}, payload...), 0), DefaultBlock, nil); err == nil {
		t.Fatal("payload with trailing garbage decoded without error")
	}
	// Count larger than the block size.
	over := binary.AppendUvarint(nil, uint64(DefaultBlock+1))
	over = append(over, payload[1:]...)
	if _, err := decodePacked[int, int64](testComp{}, less, over, DefaultBlock, nil); !errors.Is(err, ErrBadBlockSize) {
		t.Fatalf("oversized count: err=%v, want ErrBadBlockSize", err)
	}
	// Zero count.
	if _, err := decodePacked[int, int64](testComp{}, less, []byte{0}, DefaultBlock, nil); err == nil {
		t.Fatal("zero count decoded without error")
	}
	// Non-canonical: re-encode the anchor as an overlong varint. The
	// entries are identical, so only the canonicality check can reject it.
	overlong := []byte{payload[0]}
	overlong = append(overlong, payload[1]|0x80, 0x00)
	overlong = append(overlong, payload[2:]...)
	if payload[1] < 0x80 { // anchor fit one byte, so the overlong form is valid varint syntax
		if _, err := decodePacked[int, int64](testComp{}, less, overlong, DefaultBlock, nil); !errors.Is(err, ErrBadPacked) {
			t.Fatalf("overlong anchor: err=%v, want ErrBadPacked", err)
		}
	}
	// Single-bit flips: must never panic; anything accepted must be
	// canonical (decodePacked enforces it internally).
	for i := 0; i < len(payload); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte{}, payload...)
			mut[i] ^= 1 << bit
			decodePacked[int, int64](testComp{}, less, mut, DefaultBlock, nil)
		}
	}
}

// TestCompressedConfigMismatch pins the fail-fast on a Compressor whose
// type parameters don't match the tree's.
func TestCompressedConfigMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a Compressor of the wrong type")
		}
	}()
	New[int, int64, int64, sumTraits](Config{Compress: "not a compressor"})
}

// FuzzCompressedBlock fuzzes the packed-block codec from both sides:
// arbitrary bytes through the defensive decoder (error, never panic;
// anything accepted re-encodes byte-identically and rejects all strict
// prefixes), and entry sets derived from the input through a full
// encode -> decode -> compare round trip.
func FuzzCompressedBlock(f *testing.F) {
	base := newSumComp(WeightBalanced, DefaultBlock)
	o := base.o()
	f.Add(o.packLeafInto(nil, []Entry[int, int64]{{Key: 1, Val: 10}, {Key: 5, Val: -3}, {Key: 1000, Val: 7}}))
	f.Add(o.packLeafInto(nil, []Entry[int, int64]{{Key: -1 << 40, Val: 1 << 50}}))
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0})
	f.Add([]byte{1, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		comp := testComp{}
		less := func(a, b int) bool { return a < b }

		items, err := decodePacked[int, int64](comp, less, data, DefaultBlock, nil)
		if err == nil {
			re := binary.AppendUvarint(nil, uint64(len(items)))
			re = appendPackedEntries[int, int64](comp, re, items)
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted payload is not canonical: %x re-encodes to %x", data, re)
			}
			for i := 0; i < len(data); i++ {
				if _, err := decodePacked[int, int64](comp, less, data[:i], DefaultBlock, nil); err == nil {
					t.Fatalf("strict prefix %d of a valid payload decoded", i)
				}
			}
		}

		// Derive a sorted entry set from the input and round-trip it.
		var entries []Entry[int, int64]
		k := -300
		for i := 0; i+1 < len(data) && len(entries) < DefaultBlock; i += 2 {
			k += int(data[i]) + 1
			entries = append(entries, Entry[int, int64]{Key: k, Val: int64(int8(data[i+1])) * 1001})
		}
		if len(entries) == 0 {
			return
		}
		enc := binary.AppendUvarint(nil, uint64(len(entries)))
		enc = appendPackedEntries[int, int64](comp, enc, entries)
		dec, err := decodePacked[int, int64](comp, less, enc, DefaultBlock, nil)
		if err != nil {
			t.Fatalf("round trip of %d entries failed: %v", len(entries), err)
		}
		if len(dec) != len(entries) {
			t.Fatalf("round trip decoded %d entries, want %d", len(dec), len(entries))
		}
		for i := range entries {
			if dec[i] != entries[i] {
				t.Fatalf("round trip entry %d = %v, want %v", i, dec[i], entries[i])
			}
		}
	})
}
