package core

// join is the single scheme-specific operation (§4): everything else is
// built from it. join(l, m, r) composes two trees and a middle node m
// with max(l) < m.key < min(r), returning a balanced tree. All three
// arguments are consumed: l and r transfer one reference each, and m must
// be an exclusively-owned bare interior node (its child pointers are
// ignored and overwritten; callers pass either a fresh allocation or a
// node they have detached from its old children via mutable).
//
// Blocked layout: when the whole result fits in one leaf block it is
// collapsed into one — valid under every scheme, since join's contract
// is "compose any two valid trees" and a leaf is a valid tree. This is
// the single point where fragmented fringes re-compact.
func (o *ops[K, V, A, T]) join(l *node[K, V, A], m *node[K, V, A], r *node[K, V, A]) *node[K, V, A] {
	if size(l)+size(r)+1 <= int64(o.blockSize()) {
		return o.collapseJoin(l, m, r)
	}
	switch o.sch {
	case AVL:
		return o.joinAVL(l, m, r)
	case RedBlack:
		return o.joinRB(l, m, r)
	case Treap:
		return o.joinTreap(l, m, r)
	default:
		return o.joinWB(l, m, r)
	}
}

// joinKV is join with a middle entry supplied directly, so a collapse
// into a leaf block skips allocating the middle node.
func (o *ops[K, V, A, T]) joinKV(l *node[K, V, A], k K, v V, r *node[K, V, A]) *node[K, V, A] {
	if total := size(l) + size(r) + 1; total <= int64(o.blockSize()) {
		buf := make([]Entry[K, V], 0, total)
		buf = o.gather(l, buf)
		buf = append(buf, Entry[K, V]{Key: k, Val: v})
		buf = o.gather(r, buf)
		o.dec(l)
		o.dec(r)
		return o.mkLeafOwned(buf)
	}
	return o.join(l, o.alloc(k, v), r)
}

// collapseJoin merges l, m's entry, and r (all consumed; total size at
// most one block) into a single leaf block.
func (o *ops[K, V, A, T]) collapseJoin(l, m, r *node[K, V, A]) *node[K, V, A] {
	buf := make([]Entry[K, V], 0, size(l)+size(r)+1)
	buf = o.gather(l, buf)
	buf = append(buf, Entry[K, V]{Key: m.key, Val: m.val})
	buf = o.gather(r, buf)
	o.dec(l)
	o.dec(r)
	m.left, m.right = nil, nil
	o.dec(m)
	return o.mkLeafOwned(buf)
}

// attach makes m the parent of l and r and recomputes its derived fields.
// m must be exclusively owned.
func (o *ops[K, V, A, T]) attach(m, l, r *node[K, V, A]) *node[K, V, A] {
	m.left, m.right = l, r
	o.update(m)
	return m
}

// rotateLeft performs a left rotation at t (t.right becomes the root) and
// returns the new root. t is consumed; t.right must be non-nil. A leaf
// pivot is expanded first (weight-balanced callers only — expansion is
// weight-neutral).
func (o *ops[K, V, A, T]) rotateLeft(t *node[K, V, A]) *node[K, V, A] {
	t = o.mutable(t)
	if isLeaf(t.right) {
		t.right = o.expandLeaf(t.right)
	}
	r := o.mutable(t.right)
	t.right = r.left
	o.update(t)
	r.left = t
	o.update(r)
	return r
}

// rotateRight performs a right rotation at t (t.left becomes the root).
func (o *ops[K, V, A, T]) rotateRight(t *node[K, V, A]) *node[K, V, A] {
	t = o.mutable(t)
	if isLeaf(t.left) {
		t.left = o.expandLeaf(t.left)
	}
	l := o.mutable(t.left)
	t.left = l.right
	o.update(t)
	l.right = t
	o.update(l)
	return l
}

// splitOut is the result of split: the entries less than the split key,
// those greater, and the value at the key if present.
type splitOut[K, V, A any] struct {
	l, r  *node[K, V, A]
	v     V
	found bool
}

// split divides t (consumed) around key k. O(log n + B) work for
// balanced t. Interior nodes along the split path are reused as join
// middles when exclusively owned (the reuse optimization); the leaf the
// key lands in is cut into two fresh blocks.
func (o *ops[K, V, A, T]) split(t *node[K, V, A], k K) splitOut[K, V, A] {
	if t == nil {
		return splitOut[K, V, A]{}
	}
	if isLeaf(t) {
		i, found := o.leafBound(t, k)
		out := splitOut[K, V, A]{found: found}
		j := i
		if found {
			out.v = o.leafAt(t, i).Val
			j = i + 1
		}
		out.l = o.leafSlice(t, 0, i)
		out.r = o.leafSlice(t, j, leafLen(t))
		o.dec(t)
		return out
	}
	switch {
	case o.tr.Less(k, t.key):
		t = o.mutable(t)
		l0, r0 := t.left, t.right
		s := o.split(l0, k)
		s.r = o.join(s.r, t, r0)
		return s
	case o.tr.Less(t.key, k):
		t = o.mutable(t)
		l0, r0 := t.left, t.right
		s := o.split(r0, k)
		s.l = o.join(l0, t, s.l)
		return s
	default:
		val := t.val
		l0, r0 := o.detach(t)
		return splitOut[K, V, A]{l: l0, r: r0, v: val, found: true}
	}
}

// splitLast removes the maximum entry of t (consumed, non-nil), returning
// the remaining tree and the removed entry.
func (o *ops[K, V, A, T]) splitLast(t *node[K, V, A]) (rest *node[K, V, A], k K, v V) {
	if isLeaf(t) {
		e := o.leafAt(t, leafLen(t)-1)
		rest = o.leafWithout(t, leafLen(t)-1)
		return rest, e.Key, e.Val
	}
	if t.right == nil {
		k, v = t.key, t.val
		l0, _ := o.detach(t)
		return l0, k, v
	}
	t = o.mutable(t)
	l0, r0 := t.left, t.right
	rest, k, v = o.splitLast(r0)
	return o.join(l0, t, rest), k, v
}

// splitFirst removes the minimum entry of t (consumed, non-nil).
func (o *ops[K, V, A, T]) splitFirst(t *node[K, V, A]) (rest *node[K, V, A], k K, v V) {
	if isLeaf(t) {
		e := o.leafAt(t, 0)
		rest = o.leafWithout(t, 0)
		return rest, e.Key, e.Val
	}
	if t.left == nil {
		k, v = t.key, t.val
		_, r0 := o.detach(t)
		return r0, k, v
	}
	t = o.mutable(t)
	l0, r0 := t.left, t.right
	rest, k, v = o.splitFirst(l0)
	return o.join(rest, t, r0), k, v
}

// leafWithout returns t (an owned leaf) without the entry at index i,
// consuming t; nil when it was the last entry. An exclusively owned
// block is edited in place.
func (o *ops[K, V, A, T]) leafWithout(t *node[K, V, A], i int) *node[K, V, A] {
	if leafLen(t) == 1 {
		o.dec(t)
		return nil
	}
	if t.packed != nil {
		items := o.leafRead(t)
		return o.rebuildLeaf(t, append(items[:i], items[i+1:]...))
	}
	t = o.mutable(t)
	t.items = append(t.items[:i], t.items[i+1:]...)
	t.size = int64(len(t.items))
	t.aug = o.leafAug(t.items)
	return t
}

// join2 composes two trees without a middle entry (max(l) < min(r)).
func (o *ops[K, V, A, T]) join2(l, r *node[K, V, A]) *node[K, V, A] {
	if l == nil {
		return r
	}
	rest, k, v := o.splitLast(l)
	return o.joinKV(rest, k, v, r)
}
