package core

// join is the single scheme-specific operation (§4): everything else is
// built from it. join(l, m, r) composes two trees and a middle node m
// with max(l) < m.key < min(r), returning a balanced tree. All three
// arguments are consumed: l and r transfer one reference each, and m must
// be an exclusively-owned bare node (its child pointers are ignored and
// overwritten; callers pass either a fresh allocation or a node they have
// detached from its old children via mutable).
func (o *ops[K, V, A, T]) join(l *node[K, V, A], m *node[K, V, A], r *node[K, V, A]) *node[K, V, A] {
	switch o.sch {
	case AVL:
		return o.joinAVL(l, m, r)
	case RedBlack:
		return o.joinRB(l, m, r)
	case Treap:
		return o.joinTreap(l, m, r)
	default:
		return o.joinWB(l, m, r)
	}
}

// joinKV is join with a freshly allocated middle entry.
func (o *ops[K, V, A, T]) joinKV(l *node[K, V, A], k K, v V, r *node[K, V, A]) *node[K, V, A] {
	return o.join(l, o.alloc(k, v), r)
}

// attach makes m the parent of l and r and recomputes its derived fields.
// m must be exclusively owned.
func (o *ops[K, V, A, T]) attach(m, l, r *node[K, V, A]) *node[K, V, A] {
	m.left, m.right = l, r
	o.update(m)
	return m
}

// rotateLeft performs a left rotation at t (t.right becomes the root) and
// returns the new root. t is consumed; t.right must be non-nil.
func (o *ops[K, V, A, T]) rotateLeft(t *node[K, V, A]) *node[K, V, A] {
	t = o.mutable(t)
	r := o.mutable(t.right)
	t.right = r.left
	o.update(t)
	r.left = t
	o.update(r)
	return r
}

// rotateRight performs a right rotation at t (t.left becomes the root).
func (o *ops[K, V, A, T]) rotateRight(t *node[K, V, A]) *node[K, V, A] {
	t = o.mutable(t)
	l := o.mutable(t.left)
	t.left = l.right
	o.update(t)
	l.right = t
	o.update(l)
	return l
}

// splitOut is the result of split: the entries less than the split key,
// those greater, and the value at the key if present.
type splitOut[K, V, A any] struct {
	l, r  *node[K, V, A]
	v     V
	found bool
}

// split divides t (consumed) around key k. O(log n) work for balanced t.
// Nodes along the split path are reused as join middles when exclusively
// owned (the reuse optimization), so splitting a uniquely-referenced tree
// allocates nothing.
func (o *ops[K, V, A, T]) split(t *node[K, V, A], k K) splitOut[K, V, A] {
	if t == nil {
		return splitOut[K, V, A]{}
	}
	switch {
	case o.tr.Less(k, t.key):
		t = o.mutable(t)
		l0, r0 := t.left, t.right
		s := o.split(l0, k)
		s.r = o.join(s.r, t, r0)
		return s
	case o.tr.Less(t.key, k):
		t = o.mutable(t)
		l0, r0 := t.left, t.right
		s := o.split(r0, k)
		s.l = o.join(l0, t, s.l)
		return s
	default:
		val := t.val
		l0, r0 := o.detach(t)
		return splitOut[K, V, A]{l: l0, r: r0, v: val, found: true}
	}
}

// splitLast removes the maximum entry of t (consumed, non-nil), returning
// the remaining tree and the removed entry.
func (o *ops[K, V, A, T]) splitLast(t *node[K, V, A]) (rest *node[K, V, A], k K, v V) {
	if t.right == nil {
		k, v = t.key, t.val
		l0, _ := o.detach(t)
		return l0, k, v
	}
	t = o.mutable(t)
	l0, r0 := t.left, t.right
	rest, k, v = o.splitLast(r0)
	return o.join(l0, t, rest), k, v
}

// splitFirst removes the minimum entry of t (consumed, non-nil).
func (o *ops[K, V, A, T]) splitFirst(t *node[K, V, A]) (rest *node[K, V, A], k K, v V) {
	if t.left == nil {
		k, v = t.key, t.val
		_, r0 := o.detach(t)
		return r0, k, v
	}
	t = o.mutable(t)
	l0, r0 := t.left, t.right
	rest, k, v = o.splitFirst(l0)
	return o.join(rest, t, r0), k, v
}

// join2 composes two trees without a middle entry (max(l) < min(r)).
func (o *ops[K, V, A, T]) join2(l, r *node[K, V, A]) *node[K, V, A] {
	if l == nil {
		return r
	}
	rest, k, v := o.splitLast(l)
	return o.joinKV(rest, k, v, r)
}
