package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type maxTree = Tree[int, int64, int64, maxTraits]

func newMax(sch Scheme) maxTree {
	return New[int, int64, int64, maxTraits](Config{Scheme: sch})
}

// naiveRangeSum computes the reference answer by scanning the model.
func naiveRangeSum(m model, lo, hi int) int64 {
	var s int64
	for k, v := range m {
		if k >= lo && k <= hi {
			s += v
		}
	}
	return s
}

func TestAugValMaintained(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(31))
		tr := newSum(sch)
		var want int64
		vals := map[int]int64{}
		for i := 0; i < 2000; i++ {
			k := rng.Intn(700)
			v := int64(rng.Intn(100))
			if old, ok := vals[k]; ok {
				want -= old
			}
			vals[k] = v
			want += v
			tr = tr.Insert(k, v)
			if tr.AugVal() != want {
				t.Fatalf("step %d: AugVal %d want %d", i, tr.AugVal(), want)
			}
		}
		// Deletions maintain it too.
		for k, v := range vals {
			tr = tr.Delete(k)
			want -= v
			if tr.AugVal() != want {
				t.Fatalf("delete %d: AugVal %d want %d", k, tr.AugVal(), want)
			}
		}
	})
}

func TestAugLeftRightRange(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(32))
		tr, m := fromKeysBulk(sch, randKeys(rng, 1000, 2000))
		for trial := 0; trial < 200; trial++ {
			lo := rng.Intn(2200) - 100
			hi := lo + rng.Intn(500)
			if got, want := tr.AugRange(lo, hi), naiveRangeSum(m, lo, hi); got != want {
				t.Fatalf("AugRange(%d,%d) = %d want %d", lo, hi, got, want)
			}
			k := rng.Intn(2200) - 100
			if got, want := tr.AugLeft(k), naiveRangeSum(m, -1<<30, k); got != want {
				t.Fatalf("AugLeft(%d) = %d want %d", k, got, want)
			}
			if got, want := tr.AugRight(k), naiveRangeSum(m, k, 1<<30); got != want {
				t.Fatalf("AugRight(%d) = %d want %d", k, got, want)
			}
		}
		// Boundary inclusivity: AugLeft includes the key itself.
		keys := tr.Keys()
		k0 := keys[len(keys)/2]
		if got := tr.AugRange(k0, k0); got != m[k0] {
			t.Fatalf("AugRange(k,k) = %d want %d", got, m[k0])
		}
	})
}

func TestAugRangeEmptyAndDegenerate(t *testing.T) {
	tr := newSum(WeightBalanced)
	if tr.AugRange(1, 100) != 0 {
		t.Fatal("empty AugRange nonzero")
	}
	tr = tr.Insert(5, 50)
	if tr.AugRange(6, 10) != 0 {
		t.Fatal("disjoint AugRange nonzero")
	}
	if tr.AugRange(10, 6) != 0 {
		t.Fatal("inverted AugRange nonzero")
	}
	if tr.AugRange(5, 5) != 50 {
		t.Fatal("point AugRange wrong")
	}
}

func TestAugFilterMatchesFilter(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(33))
		tr := newMax(sch)
		vals := map[int]int64{}
		items := make([]Entry[int, int64], 4000)
		for i := range items {
			k := i * 3
			v := int64(rng.Intn(1_000_000))
			items[i] = Entry[int, int64]{Key: k, Val: v}
			vals[k] = v
		}
		tr = tr.Build(items, nil)
		for _, theta := range []int64{0, 250_000, 900_000, 999_999} {
			th := theta
			// h on augmented values (max): satisfies
			// h(max(a,b)) == h(a)||h(b).
			got := tr.AugFilter(func(a int64) bool { return a > th })
			want := tr.Filter(func(_ int, v int64) bool { return v > th })
			ge, we := got.Entries(), want.Entries()
			if len(ge) != len(we) {
				t.Fatalf("theta=%d: augFilter %d entries, filter %d", th, len(ge), len(we))
			}
			for i := range ge {
				if ge[i] != we[i] {
					t.Fatalf("theta=%d entry %d: %v vs %v", th, i, ge[i], we[i])
				}
			}
			if err := got.Validate(i64eq); err != nil {
				t.Fatal(err)
			}
		}
		// Filter that keeps nothing.
		none := tr.AugFilter(func(a int64) bool { return a > 1<<40 })
		if !none.IsEmpty() {
			t.Fatal("expected empty result")
		}
	})
}

func TestFilterMatchesModel(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(34))
		tr, m := fromKeysBulk(sch, randKeys(rng, 3000, 6000))
		got := tr.Filter(func(k int, _ int64) bool { return k%5 == 0 })
		md := model{}
		for k, v := range m {
			if k%5 == 0 {
				md[k] = v
			}
		}
		mustMatch(t, got, md)
		mustMatch(t, tr, m)
	})
}

func TestMapReduce(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		tr := newSum(sch)
		n := 5000
		for i := 1; i <= n; i++ {
			tr.InsertInPlace(i, int64(i))
		}
		// Sum of squares via mapReduce.
		got := MapReduce(tr,
			func(_ int, v int64) int64 { return v * v },
			func(x, y int64) int64 { return x + y }, 0)
		var want int64
		for i := int64(1); i <= int64(n); i++ {
			want += i * i
		}
		if got != want {
			t.Fatalf("mapReduce sum of squares = %d want %d", got, want)
		}
		// Count via mapReduce with a different result type.
		cnt := MapReduce(tr,
			func(int, int64) int { return 1 },
			func(x, y int) int { return x + y }, 0)
		if cnt != n {
			t.Fatalf("count = %d", cnt)
		}
	})
}

func TestAugProjectEqualsProjectedAugRange(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(35))
		tr, m := fromKeysBulk(sch, randKeys(rng, 2000, 5000))
		// Project the int64 sum through "is nonzero parity" — here use
		// g' = identity and f' = +, the simplest valid projection, plus a
		// second projection onto a different type (float64).
		for trial := 0; trial < 100; trial++ {
			lo := rng.Intn(5200) - 100
			hi := lo + rng.Intn(1000)
			want := naiveRangeSum(m, lo, hi)
			got := AugProject(tr, lo, hi,
				func(a int64) int64 { return a },
				func(x, y int64) int64 { return x + y }, 0)
			if got != want {
				t.Fatalf("AugProject(%d,%d) = %d want %d", lo, hi, got, want)
			}
			gotF := AugProject(tr, lo, hi,
				func(a int64) float64 { return float64(a) },
				func(x, y float64) float64 { return x + y }, 0)
			if int64(gotF) != want {
				t.Fatalf("float AugProject = %v want %d", gotF, want)
			}
		}
	})
}

// Property: for the max augmentation, AugRange equals the max over a
// scan, for arbitrary key/value sets and ranges.
func TestAugRangeMaxQuick(t *testing.T) {
	f := func(pairs map[int8]int16, lo, hi int8) bool {
		tr := newMax(WeightBalanced)
		for k, v := range pairs {
			tr = tr.Insert(int(k), int64(v))
		}
		want := negInf
		for k, v := range pairs {
			if int(k) >= int(lo) && int(k) <= int(hi) {
				want = max(want, int64(v))
			}
		}
		return tr.AugRange(int(lo), int(hi)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
