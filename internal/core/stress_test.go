package core

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// TestStressMixedOps interleaves every bulk operation against the model
// across all schemes — the interaction test for refcounts, joins, and
// parallelism. Sizes exceed the parallel grain so the forked paths run.
func TestStressMixedOps(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(77))
		tr, m := fromKeysBulk(sch, randKeys(rng, 5000, 20000))
		var snaps []sumTree
		var snapModels []model
		for step := 0; step < 60; step++ {
			switch rng.Intn(7) {
			case 0: // union with a random batch tree
				other, mo := fromKeysBulk(sch, randKeys(rng, rng.Intn(3000), 20000))
				tr = tr.UnionWith(other, func(a, b int64) int64 { return a + b })
				for k, v := range mo {
					if old, ok := m[k]; ok {
						m[k] = old + v
					} else {
						m[k] = v
					}
				}
			case 1: // intersect with a supserset-ish tree to trim
				other, mo := fromKeysBulk(sch, randKeys(rng, 4000+rng.Intn(3000), 20000))
				tr = tr.IntersectWith(other, func(a, b int64) int64 { return a })
				for k := range m {
					if _, ok := mo[k]; !ok {
						delete(m, k)
					}
				}
			case 2: // difference with a small tree
				other, mo := fromKeysBulk(sch, randKeys(rng, rng.Intn(1000), 20000))
				tr = tr.Difference(other)
				for k := range mo {
					delete(m, k)
				}
			case 3: // multi-insert
				batch := make([]Entry[int, int64], rng.Intn(2000))
				for i := range batch {
					k := rng.Intn(20000)
					batch[i] = Entry[int, int64]{Key: k, Val: int64(k)}
					m[k] = int64(k)
				}
				tr = tr.MultiInsert(batch, nil)
			case 4: // filter
				mod := rng.Intn(5) + 2
				tr = tr.Filter(func(k int, _ int64) bool { return k%mod != 0 })
				for k := range m {
					if k%mod == 0 {
						delete(m, k)
					}
				}
			case 5: // range restriction
				if len(m) > 1000 {
					lo := rng.Intn(10000)
					hi := lo + 10000
					tr = tr.Range(lo, hi)
					for k := range m {
						if k < lo || k > hi {
							delete(m, k)
						}
					}
				}
			case 6: // snapshot
				snaps = append(snaps, tr)
				mc := model{}
				for k, v := range m {
					mc[k] = v
				}
				snapModels = append(snapModels, mc)
			}
			if step%10 == 9 {
				mustMatch(t, tr, m)
			}
		}
		mustMatch(t, tr, m)
		for i := range snaps {
			mustMatch(t, snaps[i], snapModels[i])
		}
	})
}

// TestStressPooledParallel exercises the node pool together with
// parallel bulk operations and releases — the path where a refcount bug
// would resurface as cross-tree corruption.
func TestStressPooledParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	st := &Stats{}
	cfg := Config{Stats: st, Pool: true, Grain: 256}
	base := New[int, int64, int64, sumTraits](cfg)
	items := make([]Entry[int, int64], 20000)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i * 3, Val: int64(i)}
	}
	base = base.BuildSorted(items)
	for round := 0; round < 30; round++ {
		other := New[int, int64, int64, sumTraits](cfg)
		oi := make([]Entry[int, int64], 5000)
		for i := range oi {
			oi[i] = Entry[int, int64]{Key: i*7 + round, Val: int64(i)}
		}
		other = other.Build(oi, nil)
		u := base.UnionWith(other, func(a, b int64) int64 { return a + b })
		if err := u.Validate(i64eq); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		f := u.Filter(func(k int, _ int64) bool { return k%2 == 0 })
		f.Release()
		u.Release()
		other.Release()
		// base must remain fully intact after every release cycle.
		if base.Size() != 20000 {
			t.Fatalf("round %d: base size %d", round, base.Size())
		}
	}
	if err := base.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
	base.Release()
	if st.Live() != 0 {
		t.Fatalf("leaked %d pooled nodes", st.Live())
	}
}

// TestPooledUseAfterReleasePanics pins the Config.Pool safety
// invariant: a Tree handle used after Release must fail loudly. The
// freed nodes' poisoned refcounts turn the TestStressPooledParallel
// misuse shape — keeping a second handle across a Release instead of
// Retain — into a panic rather than silent cross-tree corruption (and
// give `go test -race` a racing address when the misuse is
// concurrent).
func TestPooledUseAfterReleasePanics(t *testing.T) {
	build := func() Tree[int, int64, int64, sumTraits] {
		tr := New[int, int64, int64, sumTraits](Config{Pool: true})
		items := make([]Entry[int, int64], 64)
		for i := range items {
			items[i] = Entry[int, int64]{Key: i, Val: int64(i)}
		}
		return tr.BuildSorted(items)
	}
	mustPanic := func(t *testing.T, name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s through a stale pooled handle did not panic", name)
			}
		}()
		f()
	}
	t.Run("double-release", func(t *testing.T) {
		tr := build()
		stale := tr // snapshot without Retain: dead once tr releases
		tr.Release()
		mustPanic(t, "Release", func() { stale.Release() })
	})
	t.Run("mutate-after-release", func(t *testing.T) {
		tr := build()
		stale := tr
		tr.Release()
		mustPanic(t, "InsertInPlace", func() { stale.InsertInPlace(999, 1) })
	})
	t.Run("retain-is-safe", func(t *testing.T) {
		tr := build()
		snap := tr.Retain()
		tr.Release()
		if snap.Size() != 64 {
			t.Fatalf("retained snapshot lost entries: %d", snap.Size())
		}
		snap.Release()
	})
}

// TestStressHighParallelism runs the same workload at an exaggerated
// parallelism level to shake out token accounting and fork storms.
func TestStressHighParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	old := parallel.Parallelism()
	defer parallel.SetParallelism(old)
	parallel.SetParallelism(32)
	tr, m := fromKeysBulk(WeightBalanced, randKeys(rand.New(rand.NewSource(88)), 60000, 200000))
	other, mo := fromKeysBulk(WeightBalanced, randKeys(rand.New(rand.NewSource(89)), 60000, 200000))
	u := tr.UnionWith(other, func(a, b int64) int64 { return b })
	mu := model{}
	for k, v := range m {
		mu[k] = v
	}
	for k, v := range mo {
		mu[k] = v
	}
	if int(u.Size()) != len(mu) {
		t.Fatalf("union size %d want %d", u.Size(), len(mu))
	}
	if err := u.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
	got := u.Filter(func(k int, _ int64) bool { return k%3 == 0 })
	var want int64
	for k := range mu {
		if k%3 == 0 {
			want++
		}
	}
	if got.Size() != want {
		t.Fatalf("filter size %d want %d", got.Size(), want)
	}
}
