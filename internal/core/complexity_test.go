package core

import (
	"math"
	"testing"

	"repro/internal/parallel"
)

// Empirical verification of the Table 2 work bounds, by counting key
// comparisons (the comparison model the paper's bounds are stated in).
// Constant factors are checked against generous multiples of the
// asymptotic terms; growth is checked by comparing two sizes.

type cmpTree = Tree[int, int64, int64, countingTraits]

func newCounting() cmpTree {
	return New[int, int64, int64, countingTraits](Config{})
}

func buildCounting(n, stride, offset int) cmpTree {
	items := make([]Entry[int, int64], n)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i*stride + offset, Val: int64(i)}
	}
	return newCounting().BuildSorted(items)
}

// withSequential forces parallelism 1 so comparison counts are exact and
// deterministic.
func withSequential(t *testing.T, f func()) {
	t.Helper()
	old := parallel.Parallelism()
	parallel.SetParallelism(1)
	defer parallel.SetParallelism(old)
	f()
}

func countCmps(f func()) int64 {
	cmpCount.Store(0)
	f()
	return cmpCount.Load()
}

func TestWorkBoundFind(t *testing.T) {
	withSequential(t, func() {
		n := 1 << 16
		tr := buildCounting(n, 2, 0)
		c := countCmps(func() {
			for i := 0; i < 1000; i++ {
				tr.Find(i * 7 % (2 * n))
			}
		})
		perOp := float64(c) / 1000
		bound := 3 * math.Log2(float64(n)) // 2 comparisons per level + slack
		if perOp > bound {
			t.Fatalf("find: %.1f comparisons/op, bound %.1f", perOp, bound)
		}
	})
}

func TestWorkBoundInsert(t *testing.T) {
	withSequential(t, func() {
		n := 1 << 15
		tr := buildCounting(n, 2, 0)
		c := countCmps(func() {
			for i := 0; i < 500; i++ {
				tr = tr.Insert(i*2+1, 0)
			}
		})
		perOp := float64(c) / 500
		bound := 6 * math.Log2(float64(n))
		if perOp > bound {
			t.Fatalf("insert: %.1f comparisons/op, bound %.1f", perOp, bound)
		}
	})
}

// TestWorkBoundUnion verifies the O(m log(n/m + 1)) union bound: with
// n fixed and m small, the work must be near m·log(n/m), far below n.
func TestWorkBoundUnion(t *testing.T) {
	withSequential(t, func() {
		n := 1 << 17
		for _, m := range []int{1 << 4, 1 << 8, 1 << 12} {
			big := buildCounting(n, 2, 0)
			small := buildCounting(m, 2*n/m, 1)
			c := countCmps(func() { big.UnionWith(small, nil) })
			term := float64(m) * (math.Log2(float64(n)/float64(m)) + 1)
			bound := 8 * term
			if float64(c) > bound {
				t.Fatalf("union n=%d m=%d: %d comparisons, bound %.0f (m log(n/m+1) = %.0f)",
					n, m, c, bound, term)
			}
			// And decisively sublinear in n for small m.
			if m <= 1<<8 && c > int64(n)/4 {
				t.Fatalf("union with m=%d did linear work: %d comparisons", m, c)
			}
		}
	})
}

// TestWorkBoundAugFilter verifies O(k log(n/k + 1)): the work must track
// the output size k, not n.
func TestWorkBoundAugFilter(t *testing.T) {
	withSequential(t, func() {
		n := 1 << 16
		items := make([]Entry[int, int64], n)
		for i := range items {
			items[i] = Entry[int, int64]{Key: i, Val: int64(i % (1 << 16))}
		}
		// Values are a permutation-ish spread; selecting v >= n-k keeps
		// about k entries.
		tr := New[int, int64, int64, countingMaxTraits](Config{}).BuildSorted(items)
		costs := map[int]int64{}
		for _, k := range []int{1 << 4, 1 << 10} {
			th := int64(n - k)
			costs[k] = countCmps(func() {
				tr.AugFilter(func(a int64) bool { return a >= th })
			})
		}
		// Work for k=16 must be drastically below k=1024, and both far
		// below n (a plain filter would pay ~n).
		if costs[1<<4]*8 > costs[1<<10] && costs[1<<10] > int64(n) {
			t.Fatalf("augFilter costs do not scale with k: %v", costs)
		}
		if costs[1<<4] > int64(n)/8 {
			t.Fatalf("augFilter k=16 did near-linear work: %d", costs[1<<4])
		}
	})
}

// countingMaxTraits is countingTraits with max combine (augFilter needs
// the max augmentation for threshold predicates).
type countingMaxTraits struct{}

func (countingMaxTraits) Less(a, b int) bool        { cmpCount.Add(1); return a < b }
func (countingMaxTraits) Id() int64                 { return negInf }
func (countingMaxTraits) Base(_ int, v int64) int64 { return v }
func (countingMaxTraits) Combine(x, y int64) int64  { return max(x, y) }

// TestWorkBoundAugRange: O(log n) — constant number of comparisons per
// query regardless of the range width.
func TestWorkBoundAugRange(t *testing.T) {
	withSequential(t, func() {
		n := 1 << 16
		tr := buildCounting(n, 1, 0)
		wide := countCmps(func() { tr.AugRange(0, n) }) // whole map
		narrow := countCmps(func() { tr.AugRange(n/2, n/2+1) })
		bound := int64(6 * 17)
		if wide > bound || narrow > bound {
			t.Fatalf("augRange comparisons: wide=%d narrow=%d bound=%d", wide, narrow, bound)
		}
	})
}

// TestWorkBoundBuildSorted: O(n) comparisons for pre-sorted distinct
// input (the sort is skipped; joins on balanced halves are cheap).
func TestWorkBoundBuildSorted(t *testing.T) {
	withSequential(t, func() {
		n := 1 << 15
		c := countCmps(func() { buildCounting(n, 1, 0) })
		if c > int64(8*n) {
			t.Fatalf("buildSorted did %d comparisons for n=%d", c, n)
		}
	})
}

// TestSpanScaling sanity-checks that bulk operations produce the same
// results at any parallelism level (determinism across schedules).
func TestParallelDeterminism(t *testing.T) {
	n := 1 << 15
	mk := func() sumTree {
		items := make([]Entry[int, int64], n)
		for i := range items {
			items[i] = Entry[int, int64]{Key: i * 3 % (2 * n), Val: int64(i)}
		}
		a := newSum(WeightBalanced).Build(items, func(o, nn int64) int64 { return o + nn })
		for i := range items {
			items[i] = Entry[int, int64]{Key: i*3%(2*n) + 1, Val: int64(i)}
		}
		b := newSum(WeightBalanced).Build(items, func(o, nn int64) int64 { return o + nn })
		u := a.UnionWith(b, func(x, y int64) int64 { return x - y })
		u = u.Filter(func(k int, _ int64) bool { return k%5 != 0 })
		return u
	}
	old := parallel.Parallelism()
	defer parallel.SetParallelism(old)
	parallel.SetParallelism(1)
	seqResult := mk().Entries()
	parallel.SetParallelism(8)
	parResult := mk().Entries()
	if len(seqResult) != len(parResult) {
		t.Fatalf("parallel result size differs: %d vs %d", len(seqResult), len(parResult))
	}
	for i := range seqResult {
		if seqResult[i] != parResult[i] {
			t.Fatalf("entry %d differs between schedules: %v vs %v", i, seqResult[i], parResult[i])
		}
	}
}
