package core

import "unsafe"

// Space accounting helpers for the Table 4 experiments.

// NodeSize reports the in-memory size in bytes of one tree node for the
// given type instantiation, including the augmented-value field — the
// quantity behind Table 4's "node size / aug size / overhead" columns.
func NodeSize[K, V, A any, T Traits[K, V, A]]() uintptr {
	return unsafe.Sizeof(node[K, V, A]{})
}

// NodeAugs returns the augmented value stored in every tree node (one
// per node, in-order). Range trees use this to enumerate their inner
// maps when measuring structural sharing. Borrows t; O(n).
func NodeAugs[K, V, A any, T Traits[K, V, A]](t Tree[K, V, A, T]) []A {
	out := make([]A, 0, size(t.root))
	var rec func(n *node[K, V, A])
	rec = func(n *node[K, V, A]) {
		if n == nil {
			return
		}
		rec(n.left)
		out = append(out, n.aug)
		rec(n.right)
	}
	rec(t.root)
	return out
}
