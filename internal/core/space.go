package core

import "unsafe"

// Space accounting helpers for the Table 4 experiments.

// NodeSize reports the in-memory size in bytes of one tree node for the
// given type instantiation, including the augmented-value field and the
// (empty for interior nodes) leaf block slice header — the quantity
// behind Table 4's "node size / aug size / overhead" columns.
func NodeSize[K, V, A any, T Traits[K, V, A]]() uintptr {
	return unsafe.Sizeof(node[K, V, A]{})
}

// EntrySize reports the in-memory size in bytes of one entry inside a
// leaf block.
func EntrySize[K, V any]() uintptr {
	return unsafe.Sizeof(Entry[K, V]{})
}

// SpaceStats describes the physical footprint of one tree under the
// blocked layout, the quantities behind the Table 4 reproduction: with
// one entry per node (the original PAM layout) Entries == InteriorNodes
// and BytesPerEntry is the node size; with blocked leaves the leaf
// entries dominate and per-entry overhead drops toward
// sizeof(Entry) + sizeof(node)/B.
type SpaceStats struct {
	InteriorNodes int64 // nodes carrying a single entry
	LeafBlocks    int64 // fringe blocks
	LeafEntries   int64 // entries stored inside blocks
	Entries       int64 // total entries (interior + leaf)
	Bytes         int64 // alias of PhysicalBytes (kept for the Table 4 callers)
	// PhysicalBytes is what the tree actually occupies: node structs plus
	// block arrays (by capacity) or packed byte strings. LogicalBytes is
	// what the flat blocked layout would occupy for the same entries, so
	// CompressionRatio = LogicalBytes / PhysicalBytes is 1 for an
	// uncompressed tree and the Table-4a'' space win for a compressed one.
	PhysicalBytes    int64
	LogicalBytes     int64
	CompressionRatio float64
	BytesPerEntry    float64 // PhysicalBytes / Entries
}

// SpaceStats walks the tree and reports its blocked-layout footprint.
// Shared nodes are counted once per occurrence in this tree (the
// sharing-aware unique count is CountUniqueNodes). Borrows t; O(n).
func (t Tree[K, V, A, T]) SpaceStats() SpaceStats {
	var s SpaceStats
	nodeSz := int64(unsafe.Sizeof(node[K, V, A]{}))
	entrySz := int64(unsafe.Sizeof(Entry[K, V]{}))
	var rec func(n *node[K, V, A])
	rec = func(n *node[K, V, A]) {
		if n == nil {
			return
		}
		s.PhysicalBytes += nodeSz
		s.LogicalBytes += nodeSz
		if isLeaf(n) {
			s.LeafBlocks++
			cnt := int64(leafLen(n))
			s.LeafEntries += cnt
			s.LogicalBytes += cnt * entrySz
			if n.packed != nil {
				s.PhysicalBytes += int64(cap(n.packed))
			} else {
				s.PhysicalBytes += int64(cap(n.items)) * entrySz
			}
			return
		}
		s.InteriorNodes++
		rec(n.left)
		rec(n.right)
	}
	rec(t.root)
	s.Bytes = s.PhysicalBytes
	s.Entries = s.InteriorNodes + s.LeafEntries
	if s.Entries > 0 {
		s.BytesPerEntry = float64(s.PhysicalBytes) / float64(s.Entries)
	}
	if s.PhysicalBytes > 0 {
		s.CompressionRatio = float64(s.LogicalBytes) / float64(s.PhysicalBytes)
	}
	return s
}

// NodeAugs returns the augmented value stored in every tree node — one
// per interior node plus one per leaf block (a block stores a single
// precomputed augmented value for all its entries), in key order. Range
// trees use this to enumerate their inner maps when measuring structural
// sharing. Borrows t; O(#nodes).
func NodeAugs[K, V, A any, T Traits[K, V, A]](t Tree[K, V, A, T]) []A {
	out := make([]A, 0, size(t.root))
	var rec func(n *node[K, V, A])
	rec = func(n *node[K, V, A]) {
		if n == nil {
			return
		}
		if isLeaf(n) {
			out = append(out, n.aug)
			return
		}
		rec(n.left)
		out = append(out, n.aug)
		rec(n.right)
	}
	rec(t.root)
	return out
}
