package core

import (
	"fmt"
	"iter"
	"sync"
)

// Config selects the representation options of a tree family.
type Config struct {
	// Scheme is the balancing scheme (default WeightBalanced).
	Scheme Scheme
	// Grain is the sequential-grain size for parallel bulk operations;
	// 0 means DefaultGrain.
	Grain int64
	// Block is the leaf block size B: the fringe of the tree stores runs
	// of up to B entries as sorted flat arrays (PaC-tree style), cutting
	// node count, allocations, and pointer chasing by roughly a factor
	// of B on bulk paths at the price of O(B) array work inside the
	// block an update lands in. 0 means DefaultBlock; any other value
	// below 2 is clamped to 2. Trees that are combined (Union, Concat,
	// ...) must share the same Block, as they must the same Scheme.
	Block int
	// Stats, when non-nil, receives node allocation statistics
	// (Table 4 experiments).
	Stats *Stats
	// Compress, when non-nil, must be a Compressor[K, V] for the tree's
	// key and value types: leaf blocks are then stored as
	// difference-encoded byte strings (first-key anchor + zig-zag
	// varint key deltas, compressor-encoded values) instead of flat
	// []Entry arrays — see compress.go. The field is untyped because
	// Config is shared across instantiations; New panics on a type
	// mismatch. Like Scheme and Block, Compress must agree between
	// trees that are combined.
	Compress any
	// Pool enables sync.Pool node recycling (the analogue of PAM's
	// local/global allocator pools). Safety invariant: no Tree value —
	// including snapshots and handles sharing structure with one — may
	// be used after a Release whose reference count drops their shared
	// nodes to zero. Releasing hands nodes back to the pool for
	// immediate reuse, so a stale handle reads (or worse, releases)
	// another tree's nodes. Freed nodes carry a poisoned refcount:
	// releasing or mutating through a stale handle panics (best-effort,
	// until the pool re-issues the node), and under the race detector
	// concurrent misuse additionally reports a race on the freed node's
	// fields.
	Pool bool
}

// Tree is a persistent augmented ordered map (the paper's aug_map).
//
// All exported methods are functional: they never modify the receiver,
// and any previously obtained Tree remains valid, sharing structure with
// derived trees. The zero Tree value is an empty weight-balanced map with
// default options, immediately usable when T is a zero-size traits type.
//
// Methods with the InPlace suffix consume the receiver's reference (the
// receiver must not be used afterwards) and enable the reference-count-1
// reuse optimization; they exist for performance parity with ephemeral
// structures and are used by the benchmarks.
type Tree[K, V, A any, T Traits[K, V, A]] struct {
	root *node[K, V, A]
	op   ops[K, V, A, T]
}

// New returns an empty tree with the given configuration.
func New[K, V, A any, T Traits[K, V, A]](cfg Config) Tree[K, V, A, T] {
	t := Tree[K, V, A, T]{}
	t.op.sch = cfg.Scheme
	t.op.grain = cfg.Grain
	t.op.block = cfg.Block
	t.op.stats = cfg.Stats
	if cfg.Compress != nil {
		comp, ok := cfg.Compress.(Compressor[K, V])
		if !ok {
			panic(fmt.Sprintf("core: Config.Compress is %T, want a core.Compressor matching the tree's key and value types", cfg.Compress))
		}
		t.op.comp = comp
	}
	if cfg.Pool {
		t.op.pool = &sync.Pool{}
	}
	return t
}

func (t *Tree[K, V, A, T]) o() *ops[K, V, A, T] { return &t.op }

// with returns a tree handle with the same configuration and the given
// root, taking ownership of root.
func (t Tree[K, V, A, T]) with(root *node[K, V, A]) Tree[K, V, A, T] {
	return Tree[K, V, A, T]{root: root, op: t.op}
}

// Size returns the number of entries.
func (t Tree[K, V, A, T]) Size() int64 { return size(t.root) }

// IsEmpty reports whether the map has no entries.
func (t Tree[K, V, A, T]) IsEmpty() bool { return t.root == nil }

// Scheme reports the balancing scheme of this tree family.
func (t Tree[K, V, A, T]) Scheme() Scheme { return t.op.sch }

// Stats returns the allocation statistics sink, if configured.
func (t Tree[K, V, A, T]) Stats() *Stats { return t.op.stats }

// Find returns the value stored at k.
func (t Tree[K, V, A, T]) Find(k K) (V, bool) { return t.o().find(t.root, k) }

// Contains reports whether k is present.
func (t Tree[K, V, A, T]) Contains(k K) bool {
	_, ok := t.o().find(t.root, k)
	return ok
}

// Insert returns t with (k, v) added, replacing any existing value at k.
func (t Tree[K, V, A, T]) Insert(k K, v V) Tree[K, V, A, T] {
	return t.with(t.o().insert(inc(t.root), k, v, nil))
}

// InsertWith returns t with (k, v) added; an existing value old at k is
// replaced by h(old, v).
func (t Tree[K, V, A, T]) InsertWith(k K, v V, h func(old, new V) V) Tree[K, V, A, T] {
	return t.with(t.o().insert(inc(t.root), k, v, h))
}

// Delete returns t without key k.
func (t Tree[K, V, A, T]) Delete(k K) Tree[K, V, A, T] {
	return t.with(t.o().remove(inc(t.root), k))
}

// Union returns the union of t and u; for keys in both, u's value wins.
func (t Tree[K, V, A, T]) Union(u Tree[K, V, A, T]) Tree[K, V, A, T] {
	return t.with(t.o().union(inc(t.root), inc(u.root), nil))
}

// UnionWith returns the union of t and u, combining values of shared keys
// as h(t's value, u's value).
func (t Tree[K, V, A, T]) UnionWith(u Tree[K, V, A, T], h func(v1, v2 V) V) Tree[K, V, A, T] {
	return t.with(t.o().union(inc(t.root), inc(u.root), h))
}

// Intersect returns the intersection of t and u keeping u's values.
func (t Tree[K, V, A, T]) Intersect(u Tree[K, V, A, T]) Tree[K, V, A, T] {
	return t.with(t.o().intersect(inc(t.root), inc(u.root), nil))
}

// IntersectWith returns the intersection of t and u with values
// h(t's value, u's value).
func (t Tree[K, V, A, T]) IntersectWith(u Tree[K, V, A, T], h func(v1, v2 V) V) Tree[K, V, A, T] {
	return t.with(t.o().intersect(inc(t.root), inc(u.root), h))
}

// Difference returns the entries of t whose keys are not in u.
func (t Tree[K, V, A, T]) Difference(u Tree[K, V, A, T]) Tree[K, V, A, T] {
	return t.with(t.o().difference(inc(t.root), inc(u.root)))
}

// Filter returns the entries satisfying pred.
func (t Tree[K, V, A, T]) Filter(pred func(k K, v V) bool) Tree[K, V, A, T] {
	return t.with(t.o().filter(inc(t.root), pred))
}

// AugFilter returns the entries e with h(Base(e)) true, for h satisfying
// h(Combine(a,b)) == h(a) || h(b); subtrees whose augmented value fails h
// are pruned wholesale (O(k log(n/k+1)) work for k results).
func (t Tree[K, V, A, T]) AugFilter(h func(a A) bool) Tree[K, V, A, T] {
	return t.with(t.o().augFilter(inc(t.root), h))
}

// Build returns a new tree (with t's configuration) holding the given
// entries; values of duplicate keys are combined left-to-right with h
// (nil h keeps the last). The receiver's contents are ignored.
func (t Tree[K, V, A, T]) Build(items []Entry[K, V], h func(old, new V) V) Tree[K, V, A, T] {
	return t.with(t.o().build(items, h))
}

// BuildSorted is Build for strictly-increasing (by key) input, skipping
// the sort and deduplication passes.
func (t Tree[K, V, A, T]) BuildSorted(items []Entry[K, V]) Tree[K, V, A, T] {
	return t.with(t.o().buildSorted(items))
}

// MultiInsert returns t with all entries added; duplicates within items
// and collisions with existing keys combine as h(old, new) (nil h keeps
// the newest).
func (t Tree[K, V, A, T]) MultiInsert(items []Entry[K, V], h func(old, new V) V) Tree[K, V, A, T] {
	return t.with(t.o().multiInsert(inc(t.root), items, h))
}

// MultiDelete returns t without any of the given keys.
func (t Tree[K, V, A, T]) MultiDelete(keys []K) Tree[K, V, A, T] {
	return t.with(t.o().multiDelete(inc(t.root), keys))
}

// Range returns the entries with lo <= key <= hi.
func (t Tree[K, V, A, T]) Range(lo, hi K) Tree[K, V, A, T] {
	return t.with(t.o().rangeKeys(t.root, lo, hi))
}

// UpTo returns the entries with key <= hi.
func (t Tree[K, V, A, T]) UpTo(hi K) Tree[K, V, A, T] {
	return t.with(t.o().rangeLE(t.root, hi))
}

// DownTo returns the entries with key >= lo.
func (t Tree[K, V, A, T]) DownTo(lo K) Tree[K, V, A, T] {
	return t.with(t.o().rangeGE(t.root, lo))
}

// Split divides t at k into the entries less than k, the value at k (if
// present), and the entries greater than k.
func (t Tree[K, V, A, T]) Split(k K) (left Tree[K, V, A, T], v V, found bool, right Tree[K, V, A, T]) {
	s := t.o().split(inc(t.root), k)
	return t.with(s.l), s.v, s.found, t.with(s.r)
}

// Join composes t, the entry (k, v), and u; every key of t must be less
// than k and every key of u greater.
func (t Tree[K, V, A, T]) Join(k K, v V, u Tree[K, V, A, T]) Tree[K, V, A, T] {
	return t.with(t.o().joinKV(inc(t.root), k, v, inc(u.root)))
}

// Concat composes t and u (join2); every key of t must be less than every
// key of u.
func (t Tree[K, V, A, T]) Concat(u Tree[K, V, A, T]) Tree[K, V, A, T] {
	return t.with(t.o().join2(inc(t.root), inc(u.root)))
}

// First returns the minimum entry.
func (t Tree[K, V, A, T]) First() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	k, v := t.o().first(t.root)
	return k, v, true
}

// Last returns the maximum entry.
func (t Tree[K, V, A, T]) Last() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	k, v := t.o().last(t.root)
	return k, v, true
}

// Previous returns the largest entry with key strictly less than k.
func (t Tree[K, V, A, T]) Previous(k K) (K, V, bool) { return t.o().previous(t.root, k) }

// Next returns the smallest entry with key strictly greater than k.
func (t Tree[K, V, A, T]) Next(k K) (K, V, bool) { return t.o().next(t.root, k) }

// Rank returns the number of keys strictly less than k.
func (t Tree[K, V, A, T]) Rank(k K) int64 { return t.o().rank(t.root, k) }

// Select returns the entry with the i-th smallest key (0-based).
func (t Tree[K, V, A, T]) Select(i int64) (K, V, bool) { return t.o().selectAt(t.root, i) }

// AugVal returns the augmented value of the whole map in O(1).
func (t Tree[K, V, A, T]) AugVal() A { return t.o().augVal(t.root) }

// AugLeft returns the augmented value over entries with key <= k.
func (t Tree[K, V, A, T]) AugLeft(k K) A { return t.o().augLeft(t.root, k) }

// AugRight returns the augmented value over entries with key >= k.
func (t Tree[K, V, A, T]) AugRight(k K) A { return t.o().augRight(t.root, k) }

// AugRange returns the augmented value over entries with lo <= key <= hi.
func (t Tree[K, V, A, T]) AugRange(lo, hi K) A { return t.o().augRange(t.root, lo, hi) }

// ForEach visits entries in key order until visit returns false.
func (t Tree[K, V, A, T]) ForEach(visit func(k K, v V) bool) { t.o().forEach(t.root, visit) }

// All returns an in-order iterator over the entries.
func (t Tree[K, V, A, T]) All() iter.Seq2[K, V] {
	return func(yield func(K, V) bool) { t.o().forEach(t.root, yield) }
}

// Entries materializes the entries in key order (in parallel).
func (t Tree[K, V, A, T]) Entries() []Entry[K, V] { return t.o().toSlice(t.root) }

// Keys materializes the keys in order (in parallel).
func (t Tree[K, V, A, T]) Keys() []K { return t.o().keys(t.root) }

// MapValues returns t with every value replaced by fn(k, v); the key set
// and tree shape are unchanged and augmented values are recomputed.
func (t Tree[K, V, A, T]) MapValues(fn func(k K, v V) V) Tree[K, V, A, T] {
	return t.with(t.o().mapValues(inc(t.root), fn))
}

// Retain takes an additional reference to the tree, for callers that use
// the InPlace operations or Release on multiple handle copies.
func (t Tree[K, V, A, T]) Retain() Tree[K, V, A, T] {
	inc(t.root)
	return t
}

// Release drops the receiver's reference and empties the handle. After
// Release (or any InPlace call) the original handle must not be used.
func (t *Tree[K, V, A, T]) Release() {
	t.o().dec(t.root)
	t.root = nil
}

// InsertInPlace is Insert consuming the receiver's reference, enabling
// in-place node reuse when the tree is not shared.
func (t *Tree[K, V, A, T]) InsertInPlace(k K, v V) {
	t.root = t.o().insert(t.root, k, v, nil)
}

// DeleteInPlace is Delete consuming the receiver's reference.
func (t *Tree[K, V, A, T]) DeleteInPlace(k K) {
	t.root = t.o().remove(t.root, k)
}

// UnionInPlace is Union consuming both references (u is emptied).
func (t *Tree[K, V, A, T]) UnionInPlace(u *Tree[K, V, A, T], h func(v1, v2 V) V) {
	t.root = t.o().union(t.root, u.root, h)
	u.root = nil
}

// MultiInsertInPlace is MultiInsert consuming the receiver's reference.
func (t *Tree[K, V, A, T]) MultiInsertInPlace(items []Entry[K, V], h func(old, new V) V) {
	t.root = t.o().multiInsert(t.root, items, h)
}

// MapReduce applies g to every entry of t and combines the results with
// the monoid (B, f, id), in parallel (MAPREDUCE in Figure 2).
func MapReduce[K, V, A, B any, T Traits[K, V, A]](t Tree[K, V, A, T], g func(k K, v V) B, f func(x, y B) B, id B) B {
	return mapReduceNode(t.o(), t.root, g, f, id)
}

// AugProject computes f over g of the augmented values of the maximal
// subtrees covering [lo, hi]: the result equals g(AugRange(lo, hi))
// whenever f(g(a), g(b)) == g(Combine(a, b)), but costs O(log n)
// applications of f and g even when Combine is expensive.
func AugProject[K, V, A, B any, T Traits[K, V, A]](t Tree[K, V, A, T], lo, hi K, g func(A) B, f func(x, y B) B, id B) B {
	return augProjectNode(t.o(), t.root, lo, hi, g, f, id)
}

// AugProjectKV is AugProject with the projection of a single boundary
// entry supplied directly: gEntry must satisfy
// gEntry(k, v) == g(Base(k, v)). It skips materializing Base on the
// search paths, which for map-valued augmentations removes O(log n)
// singleton-structure allocations per query.
func AugProjectKV[K, V, A, B any, T Traits[K, V, A]](t Tree[K, V, A, T], lo, hi K, gEntry func(K, V) B, g func(A) B, f func(x, y B) B, id B) B {
	return augProjectKVNode(t.o(), t.root, lo, hi, gEntry, g, f, id)
}

// AugFilterWith is AugFilter with an additional take-all predicate
// (footnote 3 of the paper): subtrees whose augmented value satisfies
// hAll are taken whole, by reference, without being visited, so a filter
// that selects large contiguous regions costs O(1) per region instead of
// rebuilding it. hAll must satisfy hAll(Combine(a,b)) == hAll(a) &&
// hAll(b); pass nil to disable take-all pruning.
func (t Tree[K, V, A, T]) AugFilterWith(hAny, hAll func(a A) bool) Tree[K, V, A, T] {
	return t.with(t.o().augFilter2(inc(t.root), hAny, hAll))
}

// ReleaseParallel is Release with the recursive reference drop done in
// parallel over the tree structure — PAM decrements in parallel too,
// since the final release of a huge tree is itself a bulk operation.
func (t *Tree[K, V, A, T]) ReleaseParallel() {
	t.o().decParallel(t.root)
	t.root = nil
}
