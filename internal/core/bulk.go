package core

import "repro/internal/parallel"

// Bulk set operations (§4 "Join, Split, Join2 and Union"): parallel
// join-based union, intersection and difference with the work bounds of
// Table 2 — O(m·log(n/m + 1)) work and O(log n · log m) span for input
// sizes n >= m. Each splits one tree by the other's root and recurses on
// the two sides in parallel, down to a sequential grain.
//
// Blocked layout: once either side shrinks to a single leaf block the
// recursion switches to flat-array merging — a block against a tree is a
// sorted bulk update, and block against block is one array merge.

// union merges t1 and t2 (both consumed). For keys present in both, the
// result value is h(v1, v2); nil h keeps t2's value (the paper's "right
// wins" default for UNION(T1, T2)).
func (o *ops[K, V, A, T]) union(t1, t2 *node[K, V, A], h func(v1, v2 V) V) *node[K, V, A] {
	if t1 == nil {
		return t2
	}
	if t2 == nil {
		return t1
	}
	if isLeaf(t2) {
		// t2's entries are a sorted batch into t1; multiInsertSorted's
		// h(old, new) = h(t1's value, t2's value) matches union, and its
		// nil-h "overwrite with new" matches t2-wins.
		n := o.multiInsertSorted(t1, o.leafRead(t2), h)
		o.dec(t2)
		return n
	}
	if isLeaf(t1) {
		// Mirror: t1's entries enter t2, so old/new swap roles.
		hh := func(old, new V) V { return old } // t2 (the tree) wins
		if h != nil {
			hh = func(old, new V) V { return h(new, old) }
		}
		n := o.multiInsertSorted(t2, o.leafRead(t1), hh)
		o.dec(t1)
		return n
	}
	// Reuse t2's root as the join middle (its entry survives into the
	// output, with a possibly combined value).
	t2 = o.mutable(t2)
	l2, r2 := t2.left, t2.right
	t2.left, t2.right = nil, nil
	s := o.split(t1, t2.key)
	if s.found && h != nil {
		t2.val = h(s.v, t2.val)
	}
	var l, r *node[K, V, A]
	big := size(s.l)+size(l2) > o.grainSize() || size(s.r)+size(r2) > o.grainSize()
	parallel.DoIf(big,
		func() { l = o.union(s.l, l2, h) },
		func() { r = o.union(s.r, r2, h) },
	)
	return o.join(l, t2, r)
}

// intersect keeps the keys present in both t1 and t2 (both consumed),
// with values h(v1, v2); nil h keeps t2's value.
func (o *ops[K, V, A, T]) intersect(t1, t2 *node[K, V, A], h func(v1, v2 V) V) *node[K, V, A] {
	if t1 == nil || t2 == nil {
		o.dec(t1)
		o.dec(t2)
		return nil
	}
	if isLeaf(t2) {
		kept := make([]Entry[K, V], 0, leafLen(t2))
		o.leafScanRange(t2, 0, leafLen(t2), func(e Entry[K, V]) bool {
			if v1, ok := o.find(t1, e.Key); ok {
				if h != nil {
					e.Val = h(v1, e.Val)
				}
				kept = append(kept, e)
			}
			return true
		})
		o.dec(t1)
		o.dec(t2)
		return o.mkLeafOwned(kept)
	}
	if isLeaf(t1) {
		kept := make([]Entry[K, V], 0, leafLen(t1))
		o.leafScanRange(t1, 0, leafLen(t1), func(e Entry[K, V]) bool {
			if v2, ok := o.find(t2, e.Key); ok {
				if h != nil {
					e.Val = h(e.Val, v2)
				} else {
					e.Val = v2
				}
				kept = append(kept, e)
			}
			return true
		})
		o.dec(t1)
		o.dec(t2)
		return o.mkLeafOwned(kept)
	}
	t2 = o.mutable(t2)
	l2, r2 := t2.left, t2.right
	t2.left, t2.right = nil, nil
	s := o.split(t1, t2.key)
	var l, r *node[K, V, A]
	big := size(s.l)+size(l2) > o.grainSize() || size(s.r)+size(r2) > o.grainSize()
	parallel.DoIf(big,
		func() { l = o.intersect(s.l, l2, h) },
		func() { r = o.intersect(s.r, r2, h) },
	)
	if s.found {
		if h != nil {
			t2.val = h(s.v, t2.val)
		}
		return o.join(l, t2, r)
	}
	o.dec(t2)
	return o.join2(l, r)
}

// difference keeps the entries of t1 whose keys are absent from t2 (both
// consumed).
func (o *ops[K, V, A, T]) difference(t1, t2 *node[K, V, A]) *node[K, V, A] {
	if t1 == nil {
		o.dec(t2)
		return nil
	}
	if t2 == nil {
		return t1
	}
	if isLeaf(t2) {
		keys := make([]K, 0, leafLen(t2))
		o.leafScanRange(t2, 0, leafLen(t2), func(e Entry[K, V]) bool {
			keys = append(keys, e.Key)
			return true
		})
		n := o.multiDeleteSorted(t1, keys)
		o.dec(t2)
		return n
	}
	if isLeaf(t1) {
		kept := make([]Entry[K, V], 0, leafLen(t1))
		o.leafScanRange(t1, 0, leafLen(t1), func(e Entry[K, V]) bool {
			if _, ok := o.find(t2, e.Key); !ok {
				kept = append(kept, e)
			}
			return true
		})
		o.dec(t1)
		o.dec(t2)
		return o.mkLeafOwned(kept)
	}
	k2 := t2.key
	l2, r2 := o.detach(t2)
	s := o.split(t1, k2)
	var l, r *node[K, V, A]
	big := size(s.l)+size(l2) > o.grainSize() || size(s.r)+size(r2) > o.grainSize()
	parallel.DoIf(big,
		func() { l = o.difference(s.l, l2) },
		func() { r = o.difference(s.r, r2) },
	)
	return o.join2(l, r)
}
