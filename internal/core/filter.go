package core

import "repro/internal/parallel"

// filter keeps the entries satisfying pred (t consumed): recurse on both
// children in parallel and recombine with join or join2 depending on the
// root (FILTER in Figure 2); a leaf block filters its array in one pass.
// O(n) work, O(log^2 n) span.
func (o *ops[K, V, A, T]) filter(t *node[K, V, A], pred func(k K, v V) bool) *node[K, V, A] {
	if t == nil {
		return nil
	}
	if isLeaf(t) {
		return o.leafFilter(t, pred)
	}
	keep := pred(t.key, t.val)
	sz := t.size
	var l, r *node[K, V, A]
	if keep {
		t = o.mutable(t)
		l, r = t.left, t.right
		t.left, t.right = nil, nil
	} else {
		l, r = o.detach(t)
	}
	var nl, nr *node[K, V, A]
	parallel.DoIf(sz > o.grainSize(),
		func() { nl = o.filter(l, pred) },
		func() { nr = o.filter(r, pred) },
	)
	if keep {
		return o.join(nl, t, nr)
	}
	return o.join2(nl, nr)
}

// leafFilter keeps the block entries satisfying pred (t consumed). The
// keep-everything case — the common one under selective AugFilter
// pruning — is detected by an allocation-free scan first.
func (o *ops[K, V, A, T]) leafFilter(t *node[K, V, A], pred func(k K, v V) bool) *node[K, V, A] {
	first, at := -1, 0
	o.leafScanRange(t, 0, leafLen(t), func(e Entry[K, V]) bool {
		if !pred(e.Key, e.Val) {
			first = at
			return false
		}
		at++
		return true
	})
	if first < 0 {
		return t
	}
	items := o.leafRead(t)
	kept := make([]Entry[K, V], 0, len(items)-1)
	kept = append(kept, items[:first]...)
	for _, e := range items[first+1:] {
		if pred(e.Key, e.Val) {
			kept = append(kept, e)
		}
	}
	o.dec(t)
	return o.mkLeafOwned(kept)
}

// augFilter is filter for predicates expressed on augmented values
// (AUGFILTER in Figure 2): h must satisfy h(f(a,b)) == h(a) || h(b), so
// a subtree (or block) whose augmented value fails h contains no
// matching entries and is discarded wholesale. O(k·log(n/k + 1)) work
// for k results, O(log^2 n) span.
func (o *ops[K, V, A, T]) augFilter(t *node[K, V, A], h func(a A) bool) *node[K, V, A] {
	hv := func(k K, v V) bool { return h(o.tr.Base(k, v)) }
	return o.augFilterPred(t, h, nil, hv)
}

// augFilter2 is augFilter with an additional take-all test (footnote 3
// of the paper): hAll(a) true means *every* entry of a subtree with
// augmented value a satisfies the filter, so the whole subtree (or
// block) is taken by reference without being visited — the selected
// regions cost O(1) each instead of O(size). hAll may be nil (no
// take-all pruning); when non-nil it must satisfy
// hAll(f(a,b)) == hAll(a) && hAll(b).
func (o *ops[K, V, A, T]) augFilter2(t *node[K, V, A], hAny, hAll func(a A) bool) *node[K, V, A] {
	hv := func(k K, v V) bool { return hAny(o.tr.Base(k, v)) }
	return o.augFilterPred(t, hAny, hAll, hv)
}

func (o *ops[K, V, A, T]) augFilterPred(t *node[K, V, A], hAny, hAll func(a A) bool, entryPred func(K, V) bool) *node[K, V, A] {
	if t == nil {
		return nil
	}
	if !hAny(t.aug) {
		o.dec(t)
		return nil
	}
	if hAll != nil && hAll(t.aug) {
		return t // take the whole subtree, keeping the reference
	}
	if isLeaf(t) {
		return o.leafFilter(t, entryPred)
	}
	keep := entryPred(t.key, t.val)
	sz := t.size
	var l, r *node[K, V, A]
	if keep {
		t = o.mutable(t)
		l, r = t.left, t.right
		t.left, t.right = nil, nil
	} else {
		l, r = o.detach(t)
	}
	var nl, nr *node[K, V, A]
	parallel.DoIf(sz > o.grainSize(),
		func() { nl = o.augFilterPred(l, hAny, hAll, entryPred) },
		func() { nr = o.augFilterPred(r, hAny, hAll, entryPred) },
	)
	if keep {
		return o.join(nl, t, nr)
	}
	return o.join2(nl, nr)
}
