package core

// Cursor is a stateful in-order iterator over a tree snapshot: Seek in
// O(log n), Next in amortized O(1) — and within a leaf block, a plain
// array scan. Because trees are persistent the cursor stays valid
// regardless of later updates to other handles — it iterates the version
// it was created from. Not safe for concurrent use of a single Cursor;
// create one per goroutine.
type Cursor[K, V, A any, T Traits[K, V, A]] struct {
	o *ops[K, V, A, T]
	// stack holds the path of interior nodes whose entry is still to be
	// emitted (each pushed node's left subtree has been fully handled).
	stack []*node[K, V, A]
	// leafItems/leafIdx point into the block currently being scanned, if
	// any: the block's own array for a flat leaf, the decode scratch for
	// a compressed one.
	leafItems []Entry[K, V]
	leafIdx   int
	// buf is the reusable decode scratch — one block decode per
	// compressed leaf visited, amortized across the whole iteration.
	buf []Entry[K, V]
}

// Cursor returns a cursor positioned before the first entry.
func (t Tree[K, V, A, T]) Cursor() *Cursor[K, V, A, T] {
	c := &Cursor[K, V, A, T]{o: t.o(), stack: make([]*node[K, V, A], 0, 32)}
	c.pushLeftSpine(t.root)
	return c
}

func (c *Cursor[K, V, A, T]) pushLeftSpine(n *node[K, V, A]) {
	for n != nil {
		if isLeaf(n) {
			c.setLeaf(n, 0)
			return
		}
		c.stack = append(c.stack, n)
		n = n.left
	}
}

// setLeaf positions the cursor at index i of leaf block n.
func (c *Cursor[K, V, A, T]) setLeaf(n *node[K, V, A], i int) {
	if n.packed != nil {
		c.buf = c.o.leafAppendTo(c.buf[:0], n)
		c.leafItems = c.buf
	} else {
		c.leafItems = n.items
	}
	c.leafIdx = i
}

// Next advances to the next entry; ok is false when exhausted.
func (c *Cursor[K, V, A, T]) Next() (k K, v V, ok bool) {
	if c.leafItems != nil {
		e := c.leafItems[c.leafIdx]
		c.leafIdx++
		if c.leafIdx == len(c.leafItems) {
			c.leafItems = nil
		}
		return e.Key, e.Val, true
	}
	if len(c.stack) == 0 {
		return k, v, false
	}
	n := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	c.pushLeftSpine(n.right)
	return n.key, n.val, true
}

// SeekGE repositions the cursor so that the next emitted entry is the
// first one with key >= target. O(log n).
func (c *Cursor[K, V, A, T]) SeekGE(t Tree[K, V, A, T], target K) {
	c.stack = c.stack[:0]
	c.leafItems = nil
	n := t.root
	for n != nil {
		if isLeaf(n) {
			if i, _ := c.o.leafBound(n, target); i < leafLen(n) {
				c.setLeaf(n, i)
			}
			return
		}
		if c.o.tr.Less(n.key, target) {
			n = n.right
		} else {
			c.stack = append(c.stack, n)
			n = n.left
		}
	}
}
