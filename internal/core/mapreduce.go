package core

import "repro/internal/parallel"

// forEach visits entries in key order, sequentially (borrows t).
// The visitor returns false to stop early; forEach reports whether the
// walk ran to completion.
func (o *ops[K, V, A, T]) forEach(t *node[K, V, A], visit func(k K, v V) bool) bool {
	if t == nil {
		return true
	}
	if isLeaf(t) {
		return o.leafScanRange(t, 0, leafLen(t), func(e Entry[K, V]) bool {
			return visit(e.Key, e.Val)
		})
	}
	return o.forEach(t.left, visit) && visit(t.key, t.val) && o.forEach(t.right, visit)
}

// toSlice materializes the entries in key order. Each subtree writes into
// its own slice segment (offsets are known from subtree sizes) and leaf
// blocks bulk-copy, so the fill parallelizes perfectly. Borrows t.
func (o *ops[K, V, A, T]) toSlice(t *node[K, V, A]) []Entry[K, V] {
	out := make([]Entry[K, V], size(t))
	o.fillSlice(t, out)
	return out
}

func (o *ops[K, V, A, T]) fillSlice(t *node[K, V, A], out []Entry[K, V]) {
	if t == nil {
		return
	}
	if isLeaf(t) {
		if t.packed != nil {
			o.leafAppendTo(out[:0], t) // decodes into the segment in place
			return
		}
		copy(out, t.items)
		return
	}
	ls := size(t.left)
	out[ls] = Entry[K, V]{Key: t.key, Val: t.val}
	parallel.DoIf(t.size > o.grainSize(),
		func() { o.fillSlice(t.left, out[:ls]) },
		func() { o.fillSlice(t.right, out[ls+1:]) },
	)
}

// keys materializes the keys in order, in parallel. Borrows t.
func (o *ops[K, V, A, T]) keys(t *node[K, V, A]) []K {
	out := make([]K, size(t))
	o.fillKeys(t, out)
	return out
}

func (o *ops[K, V, A, T]) fillKeys(t *node[K, V, A], out []K) {
	if t == nil {
		return
	}
	if isLeaf(t) {
		i := 0
		o.leafScanRange(t, 0, leafLen(t), func(e Entry[K, V]) bool {
			out[i] = e.Key
			i++
			return true
		})
		return
	}
	ls := size(t.left)
	out[ls] = t.key
	parallel.DoIf(t.size > o.grainSize(),
		func() { o.fillKeys(t.left, out[:ls]) },
		func() { o.fillKeys(t.right, out[ls+1:]) },
	)
}

// mapValues rebuilds t (consumed) with values fn(k, v). The tree shape is
// reused; augmented values are recomputed bottom-up. O(n) work,
// O(log n) span.
func (o *ops[K, V, A, T]) mapValues(t *node[K, V, A], fn func(k K, v V) V) *node[K, V, A] {
	if t == nil {
		return nil
	}
	t = o.mutable(t)
	if isLeaf(t) {
		if t.packed != nil {
			items := o.leafRead(t)
			for i := range items {
				items[i].Val = fn(items[i].Key, items[i].Val)
			}
			return o.rebuildLeaf(t, items)
		}
		for i := range t.items {
			t.items[i].Val = fn(t.items[i].Key, t.items[i].Val)
		}
		t.aug = o.leafAug(t.items)
		return t
	}
	l, r := t.left, t.right
	var nl, nr *node[K, V, A]
	parallel.DoIf(t.size > o.grainSize(),
		func() { nl = o.mapValues(l, fn) },
		func() { nr = o.mapValues(r, fn) },
	)
	t.val = fn(t.key, t.val)
	t.left, t.right = nl, nr
	o.update(t)
	return t
}

// mapReduceNode applies g to every entry and combines the results with f
// (identity id), in parallel over the tree structure (MAPREDUCE in
// Figure 2); leaf blocks fold sequentially. It is a free function
// because the result type B is not a parameter of ops. Borrows t. O(n)
// work, O(log n) span given constant-time f and g.
func mapReduceNode[K, V, A, B any, T Traits[K, V, A]](o *ops[K, V, A, T], t *node[K, V, A], g func(k K, v V) B, f func(x, y B) B, id B) B {
	if t == nil {
		return id
	}
	if isLeaf(t) {
		acc := id
		o.leafScanRange(t, 0, leafLen(t), func(e Entry[K, V]) bool {
			acc = f(acc, g(e.Key, e.Val))
			return true
		})
		return acc
	}
	var lv, rv B
	parallel.DoIf(t.size > o.grainSize(),
		func() { lv = mapReduceNode(o, t.left, g, f, id) },
		func() { rv = mapReduceNode(o, t.right, g, f, id) },
	)
	return f(lv, f(g(t.key, t.val), rv))
}
