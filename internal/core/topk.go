package core

import "container/heap"

// TopKByAug returns up to k entries in nonincreasing order of their Base
// values, for trees whose Combine is the maximum under the strict order
// less (so every node's augmented value is an upper bound on the Base
// values inside its subtree). It runs a best-first search with a heap of
// pending subtrees: O(k log n) time, independent of the map size beyond
// the logarithmic factor. Borrows t.
//
// This is the "select the k best results" query on inverted indices
// (§5.3): the augmentation prunes everything below the k-th best weight
// without touching it.
func TopKByAug[K, V, A any, T Traits[K, V, A]](t Tree[K, V, A, T], k int, less func(a, b A) bool) []Entry[K, V] {
	if k <= 0 || t.root == nil {
		return nil
	}
	o := t.o()
	h := &augHeap[K, V, A]{less: less}
	heap.Init(h)
	heap.Push(h, augItem[K, V, A]{n: t.root, prio: t.root.aug})
	out := make([]Entry[K, V], 0, k)
	for h.Len() > 0 && len(out) < k {
		it := heap.Pop(h).(augItem[K, V, A])
		if it.n == nil {
			out = append(out, Entry[K, V]{Key: it.k, Val: it.v})
			continue
		}
		n := it.n
		if isLeaf(n) {
			// A leaf block expands into its concrete entries, each
			// bounded by its exact Base value.
			o.leafScanRange(n, 0, leafLen(n), func(e Entry[K, V]) bool {
				heap.Push(h, augItem[K, V, A]{k: e.Key, v: e.Val, prio: o.tr.Base(e.Key, e.Val)})
				return true
			})
			continue
		}
		// Expand: the node's own entry plus its children, each bounded
		// by its exact priority.
		heap.Push(h, augItem[K, V, A]{k: n.key, v: n.val, prio: o.tr.Base(n.key, n.val)})
		if n.left != nil {
			heap.Push(h, augItem[K, V, A]{n: n.left, prio: n.left.aug})
		}
		if n.right != nil {
			heap.Push(h, augItem[K, V, A]{n: n.right, prio: n.right.aug})
		}
	}
	return out
}

// augItem is either a pending subtree (n != nil, prio = subtree max) or
// a concrete entry (n == nil, prio = its Base value).
type augItem[K, V, A any] struct {
	n    *node[K, V, A]
	k    K
	v    V
	prio A
}

type augHeap[K, V, A any] struct {
	items []augItem[K, V, A]
	less  func(a, b A) bool
}

func (h *augHeap[K, V, A]) Len() int { return len(h.items) }

// Less inverts the order: container/heap pops the minimum, we want the
// maximum priority first. Ties prefer concrete entries so equal-valued
// entries surface without extra expansion.
func (h *augHeap[K, V, A]) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.less(b.prio, a.prio) {
		return true
	}
	if h.less(a.prio, b.prio) {
		return false
	}
	return a.n == nil && b.n != nil
}

func (h *augHeap[K, V, A]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *augHeap[K, V, A]) Push(x any) { h.items = append(h.items, x.(augItem[K, V, A])) }

func (h *augHeap[K, V, A]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
