package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Structure-sharing-aware serialization (the durability substrate of the
// serve layer). The blocked fringe (PaC-tree leaves) maps naturally to
// disk: one leaf block is one contiguous record, and interior nodes are
// tiny records referencing their children by record id. Because trees
// are persistent, two trees — or two checkpoints of the same evolving
// tree — share subtrees by pointer; a RecordSet remembers which nodes
// already have on-disk records, so an incremental checkpoint emits only
// the records created since the previous one: O(k · polylog n) block
// records after k updates to an n-entry tree, not O(n).
//
// The wire format is a flat stream of records in bottom-up (post-)
// order, so every child id refers strictly backward:
//
//	leaf record:     0x00, varint count, count × (key, val)
//	interior record: 0x01, varint aux, varint leftID, varint rightID,
//	                 key, val
//
// Record ids are implicit: the i-th record emitted against a RecordSet
// has id firstID+i (ids start at 1; id 0 means the nil subtree), so the
// stream carries no per-record id and a decoder assigns them by
// position. Keys and values are encoded by a caller-supplied Codec.
//
// Augmented values are never serialized: a decoder recomputes them
// bottom-up exactly as Build does, which keeps the format independent
// of the augmentation type (map-valued augmentations like the range
// tree's inner maps are rebuilt, not stored).

// Codec supplies the byte encoding of one key and one value type.
// Append functions append the canonical encoding to buf; At functions
// decode a value from the front of data and return it with the number
// of bytes consumed, or an error on malformed input (they must never
// panic on arbitrary bytes).
type Codec[K, V any] struct {
	AppendKey func(buf []byte, k K) []byte
	KeyAt     func(data []byte) (K, int, error)
	AppendVal func(buf []byte, v V) []byte
	ValAt     func(data []byte) (V, int, error)
}

// Digest is a record's Merkle content hash: for a leaf record the
// sha256 of its encoded bytes, for an interior record the sha256 of its
// tag, aux, entry, and its children's digests. Two subtrees have equal
// digests iff their encoded content (including structure) is equal, so
// root digests make snapshots cheaply diffable across checkpoints and
// replicas; the zero Digest is the digest of the empty tree.
type Digest = [sha256.Size]byte

// recMeta is what a RecordSet (and, positionally, a DecodeTable)
// remembers per encoded node: its chain-wide record id and its Merkle
// digest, the latter so an incremental delta can chain a new parent to
// children encoded in earlier checkpoints without re-walking them.
type recMeta struct {
	id  uint64
	sum Digest
}

// RecordSet tracks the nodes that already have on-disk records, keyed
// by node identity, across a chain of incremental checkpoints. The set
// holds strong references to every node it has assigned an id, keeping
// encoded nodes reachable (and their pointers stable) for the lifetime
// of the chain; it must not be used with Config.Pool trees, whose
// Release recycles nodes for immediate reuse while the set still maps
// their addresses.
type RecordSet[K, V, A any] struct {
	ids  map[*node[K, V, A]]recMeta
	next uint64
}

// NewRecordSet returns an empty record set; the first record encoded
// against it gets id 1.
func NewRecordSet[K, V, A any]() *RecordSet[K, V, A] {
	return &RecordSet[K, V, A]{ids: make(map[*node[K, V, A]]recMeta), next: 1}
}

// NextID returns the id the next new record will be assigned.
func (rs *RecordSet[K, V, A]) NextID() uint64 { return rs.next }

// Clone returns an independent copy. The checkpoint protocol encodes
// against a clone and commits it only once the checkpoint file is
// durably published, so a failed write never burns record ids the
// on-disk chain has not seen.
func (rs *RecordSet[K, V, A]) Clone() *RecordSet[K, V, A] {
	ids := make(map[*node[K, V, A]]recMeta, len(rs.ids))
	for n, m := range rs.ids {
		ids[n] = m
	}
	return &RecordSet[K, V, A]{ids: ids, next: rs.next}
}

// Len returns the number of records assigned so far.
func (rs *RecordSet[K, V, A]) Len() int { return len(rs.ids) }

// RootDigest returns the Merkle digest of t's root record, which is in
// rs once t has been encoded against it (an empty tree has the zero
// digest and ok == true). ok == false means t's root was never encoded
// against rs.
func RootDigest[K, V, A any, T Traits[K, V, A]](t Tree[K, V, A, T], rs *RecordSet[K, V, A]) (Digest, bool) {
	if t.root == nil {
		return Digest{}, true
	}
	m, ok := rs.ids[t.root]
	return m.sum, ok
}

// RecordCount returns the number of records a from-scratch encode of t
// would emit — the count of physical nodes (leaf blocks plus interior
// nodes). The compaction dead-ratio policy compares it against the
// record count of the on-disk chain to estimate how many chain records
// no live tree references anymore.
func RecordCount[K, V, A any, T Traits[K, V, A]](t Tree[K, V, A, T]) int {
	var walk func(n *node[K, V, A]) int
	walk = func(n *node[K, V, A]) int {
		if n == nil {
			return 0
		}
		if isLeaf(n) {
			return 1
		}
		return 1 + walk(n.left) + walk(n.right)
	}
	return walk(t.root)
}

// leafDigest hashes one leaf record: exactly its encoded bytes (tag,
// count, entries), which contain no chain-position-dependent ids.
func leafDigest(encoded []byte) Digest { return sha256.Sum256(encoded) }

// interiorDigest hashes one interior record by chaining its children's
// digests instead of their (position-dependent) record ids, so equal
// subtrees have equal digests no matter where in a chain they were
// encoded.
func interiorDigest(scratch []byte, aux uint64, l, r Digest, entry []byte) ([]byte, Digest) {
	scratch = append(scratch[:0], recInterior)
	scratch = binary.AppendUvarint(scratch, aux)
	scratch = append(scratch, l[:]...)
	scratch = append(scratch, r[:]...)
	scratch = append(scratch, entry...)
	return scratch, sha256.Sum256(scratch)
}

const (
	recLeaf     = 0x00
	recInterior = 0x01
	// recLeafPacked carries a compressed leaf block's packed payload
	// verbatim (length-prefixed): the difference-encoded byte string is
	// already a canonical, self-contained encoding of the block, so
	// checkpoints of compressed trees serialize the fringe with no
	// per-entry re-encoding — and shrink by the same factor the in-memory
	// blocks do. Decoding requires the family's Compressor (the decoder
	// validates the payload and rebuilds the block from it); a family
	// without one fails with ErrNoCompressor.
	recLeafPacked = 0x02
)

// EncodeDelta appends, to buf, one record for every node of t not yet
// in rs (bottom-up, children before parents), assigns those nodes ids
// and Merkle digests in rs, and returns the extended buf, the root's
// record id (0 for an empty tree), and the number of new records
// written. Nodes already in rs — shared with a previously encoded tree
// — are referenced by id and cost nothing, which is what makes
// checkpoints incremental. The root's digest is available afterwards
// via RootDigest.
func EncodeDelta[K, V, A any, T Traits[K, V, A]](t Tree[K, V, A, T], rs *RecordSet[K, V, A], c *Codec[K, V], buf []byte) ([]byte, uint64, int) {
	var wrote int
	var scratch []byte
	var walk func(n *node[K, V, A]) recMeta
	walk = func(n *node[K, V, A]) recMeta {
		if n == nil {
			return recMeta{}
		}
		if m, ok := rs.ids[n]; ok {
			return m
		}
		var sum Digest
		if n.packed != nil {
			start := len(buf)
			buf = append(buf, recLeafPacked)
			buf = binary.AppendUvarint(buf, uint64(len(n.packed)))
			buf = append(buf, n.packed...)
			sum = leafDigest(buf[start:])
		} else if n.items != nil {
			start := len(buf)
			buf = append(buf, recLeaf)
			buf = binary.AppendUvarint(buf, uint64(len(n.items)))
			for _, e := range n.items {
				buf = c.AppendKey(buf, e.Key)
				buf = c.AppendVal(buf, e.Val)
			}
			sum = leafDigest(buf[start:])
		} else {
			lm := walk(n.left)
			rm := walk(n.right)
			buf = append(buf, recInterior)
			buf = binary.AppendUvarint(buf, uint64(n.aux))
			buf = binary.AppendUvarint(buf, lm.id)
			buf = binary.AppendUvarint(buf, rm.id)
			entryStart := len(buf)
			buf = c.AppendKey(buf, n.key)
			buf = c.AppendVal(buf, n.val)
			scratch, sum = interiorDigest(scratch, uint64(n.aux), lm.sum, rm.sum, buf[entryStart:])
		}
		m := recMeta{id: rs.next, sum: sum}
		rs.next++
		rs.ids[n] = m
		wrote++
		return m
	}
	root := walk(t.root)
	return buf, root.id, wrote
}

// Decode errors. All decoding is defensive: arbitrary bytes yield an
// error, never a panic. (A decoded tree can still be semantically wrong
// if the input was crafted — run Validate on recovered trees to reject
// unsorted leaves, broken balance, or wrong augmentation.)
var (
	ErrCorrupt       = errors.New("core: corrupt record stream")
	ErrBadRecordRef  = errors.New("core: record references an unknown or forward record id")
	ErrBadBlockSize  = errors.New("core: leaf record exceeds the configured block size")
	ErrUnsortedBlock = errors.New("core: leaf record keys not strictly increasing")
	ErrUnknownRecord = errors.New("core: unknown record id")
)

// DecodeTable accumulates decoded nodes by record id across the files
// of an incremental checkpoint chain; records from later files freely
// reference records decoded from earlier ones, reproducing the on-disk
// structure sharing in memory (two recovered trees share the subtrees
// they shared when encoded).
type DecodeTable[K, V, A any, T Traits[K, V, A]] struct {
	op    ops[K, V, A, T]
	nodes []*node[K, V, A] // nodes[i] has record id i+1
	sums  []Digest         // sums[i] is the Merkle digest of record i+1
}

// NewDecodeTable returns an empty table decoding into trees with the
// given configuration (which must match the encoder's Scheme and Block).
func NewDecodeTable[K, V, A any, T Traits[K, V, A]](cfg Config) *DecodeTable[K, V, A, T] {
	t := New[K, V, A, T](cfg)
	return &DecodeTable[K, V, A, T]{op: t.op}
}

// NextID returns the id the next decoded record will be assigned — the
// caller checks it against a checkpoint file's firstID header to detect
// a broken chain.
func (tb *DecodeTable[K, V, A, T]) NextID() uint64 { return uint64(len(tb.nodes)) + 1 }

// RecordSet converts the table into the encoder-side record set mapping
// every decoded node to its id, so a recovered process continues the
// incremental checkpoint chain exactly where the decoded files left it:
// the next delta writes only nodes created after recovery.
func (tb *DecodeTable[K, V, A, T]) RecordSet() *RecordSet[K, V, A] {
	ids := make(map[*node[K, V, A]]recMeta, len(tb.nodes))
	for i, n := range tb.nodes {
		ids[n] = recMeta{id: uint64(i) + 1, sum: tb.sums[i]}
	}
	return &RecordSet[K, V, A]{ids: ids, next: uint64(len(tb.nodes)) + 1}
}

// Digest returns the Merkle digest of the record with the given id
// (the zero digest for id 0, the empty tree), recomputed bottom-up
// while decoding. A checkpoint verifier compares it against the root
// digest stored in the file's footer: any bit flip in a record body —
// key, value, aux, structure — changes the recomputed root digest.
func (tb *DecodeTable[K, V, A, T]) Digest(id uint64) (Digest, error) {
	if id == 0 {
		return Digest{}, nil
	}
	if id > uint64(len(tb.sums)) {
		return Digest{}, ErrUnknownRecord
	}
	return tb.sums[id-1], nil
}

// node returns the decoded node with the given id, or an error for id 0
// (valid nil only where stated) and unknown ids.
func (tb *DecodeTable[K, V, A, T]) nodeAt(id uint64) (*node[K, V, A], error) {
	if id == 0 {
		return nil, nil
	}
	if id > uint64(len(tb.nodes)) {
		return nil, ErrBadRecordRef
	}
	return tb.nodes[id-1], nil
}

// DecodeRecords decodes exactly n records from the front of data,
// appending them to the table, and returns the remaining bytes. Leaf
// blocks are checked for emptiness, block-size overflow, and key order;
// child references must point at already-decoded records. Augmented
// values, sizes, and AVL heights are recomputed bottom-up.
func (tb *DecodeTable[K, V, A, T]) DecodeRecords(c *Codec[K, V], data []byte, n int) ([]byte, error) {
	o := &tb.op
	block := o.blockSize()
	var scratch []byte
	for rec := 0; rec < n; rec++ {
		if len(data) == 0 {
			return nil, ErrCorrupt
		}
		recStart := data
		kind := data[0]
		data = data[1:]
		switch kind {
		case recLeaf:
			count, sz := binary.Uvarint(data)
			if sz <= 0 {
				return nil, ErrCorrupt
			}
			data = data[sz:]
			if count == 0 || count > uint64(block) {
				return nil, ErrBadBlockSize
			}
			items := make([]Entry[K, V], count)
			for i := range items {
				k, kn, err := c.KeyAt(data)
				if err != nil {
					return nil, err
				}
				data = data[kn:]
				v, vn, err := c.ValAt(data)
				if err != nil {
					return nil, err
				}
				data = data[vn:]
				items[i] = Entry[K, V]{Key: k, Val: v}
				if i > 0 && !o.tr.Less(items[i-1].Key, k) {
					return nil, ErrUnsortedBlock
				}
			}
			tb.nodes = append(tb.nodes, o.mkLeafOwned(items))
			tb.sums = append(tb.sums, leafDigest(recStart[:len(recStart)-len(data)]))
		case recLeafPacked:
			if o.comp == nil {
				return nil, ErrNoCompressor
			}
			plen, sz := binary.Uvarint(data)
			if sz <= 0 {
				return nil, ErrCorrupt
			}
			data = data[sz:]
			if plen > uint64(len(data)) {
				return nil, ErrCorrupt
			}
			payload := data[:plen]
			data = data[plen:]
			// Defensive decode enforces count bounds, key order, full
			// consumption, and canonicality; mkLeafOwned then re-packs to
			// byte-identical payload, so a decoded block is
			// indistinguishable from a locally built one.
			items, err := decodePacked(o.comp, o.tr.Less, payload, block, nil)
			if err != nil {
				return nil, err
			}
			tb.nodes = append(tb.nodes, o.mkLeafOwned(items))
			tb.sums = append(tb.sums, leafDigest(recStart[:len(recStart)-len(data)]))
		case recInterior:
			aux, sz := binary.Uvarint(data)
			if sz <= 0 || aux > 1<<32-1 {
				return nil, ErrCorrupt
			}
			data = data[sz:]
			lid, sz := binary.Uvarint(data)
			if sz <= 0 {
				return nil, ErrCorrupt
			}
			data = data[sz:]
			rid, sz := binary.Uvarint(data)
			if sz <= 0 {
				return nil, ErrCorrupt
			}
			data = data[sz:]
			entryStart := data
			k, kn, err := c.KeyAt(data)
			if err != nil {
				return nil, err
			}
			data = data[kn:]
			v, vn, err := c.ValAt(data)
			if err != nil {
				return nil, err
			}
			data = data[vn:]
			l, err := tb.nodeAt(lid)
			if err != nil {
				return nil, err
			}
			r, err := tb.nodeAt(rid)
			if err != nil {
				return nil, err
			}
			lsum, _ := tb.Digest(lid)
			rsum, _ := tb.Digest(rid)
			nd := o.getNode()
			nd.key, nd.val = k, v
			nd.left, nd.right = inc(l), inc(r)
			nd.aux = uint32(aux)
			o.update(nd) // size, aug, and (for AVL) height, bottom-up
			tb.nodes = append(tb.nodes, nd)
			var sum Digest
			scratch, sum = interiorDigest(scratch, aux, lsum, rsum, entryStart[:len(entryStart)-len(data)])
			tb.sums = append(tb.sums, sum)
		default:
			return nil, ErrCorrupt
		}
	}
	return data, nil
}

// Tree returns the tree rooted at the record with the given id (0 for
// an empty tree), sharing decoded nodes with every other tree taken
// from the table.
func (tb *DecodeTable[K, V, A, T]) Tree(id uint64) (Tree[K, V, A, T], error) {
	empty := Tree[K, V, A, T]{op: tb.op}
	if id == 0 {
		return empty, nil
	}
	n, err := tb.nodeAt(id)
	if err != nil {
		return empty, ErrUnknownRecord
	}
	return empty.with(inc(n)), nil
}
