package core

// Pop-style accessors: remove the extreme entry, returning it and the
// rest. These make the map usable as a double-ended priority queue (by
// key) and exercise splitFirst/splitLast, the building blocks of join2.

// RemoveFirst returns the minimum entry and the map without it.
// ok is false on an empty map. O(log n).
func (t Tree[K, V, A, T]) RemoveFirst() (k K, v V, rest Tree[K, V, A, T], ok bool) {
	if t.root == nil {
		return k, v, t, false
	}
	r, k2, v2 := t.o().splitFirst(inc(t.root))
	return k2, v2, t.with(r), true
}

// RemoveLast returns the maximum entry and the map without it.
// ok is false on an empty map. O(log n).
func (t Tree[K, V, A, T]) RemoveLast() (k K, v V, rest Tree[K, V, A, T], ok bool) {
	if t.root == nil {
		return k, v, t, false
	}
	r, k2, v2 := t.o().splitLast(inc(t.root))
	return k2, v2, t.with(r), true
}
