package core

// Treap join. The aux word stores a pseudo-random priority assigned at
// allocation; the tree is a max-heap on priorities, which yields
// O(log n) expected height. join recurses toward the side whose root has
// the highest priority, placing m where its own priority dominates.

func treapPrio[K, V, A any](t *node[K, V, A]) uint32 { return t.aux }

func (o *ops[K, V, A, T]) joinTreap(l, m, r *node[K, V, A]) *node[K, V, A] {
	mp := treapPrio(m)
	if (l == nil || treapPrio(l) <= mp) && (r == nil || treapPrio(r) <= mp) {
		return o.attach(m, l, r)
	}
	if r == nil || (l != nil && treapPrio(l) >= treapPrio(r)) {
		l = o.mutable(l)
		l.right = o.joinTreap(l.right, m, r)
		o.update(l)
		return l
	}
	r = o.mutable(r)
	r.left = o.joinTreap(l, m, r.left)
	o.update(r)
	return r
}
