// Package core implements the paper's primary contribution: parallel,
// persistent, join-based balanced trees for augmented ordered maps (§4 of
// the paper).
//
// An augmented map AM(K, <, V, A, g, f, I) associates an ordered map with
// a monoid "sum" over its entries: A(m) = f(g(k1,v1), ..., g(kn,vn)).
// Every tree node stores the augmented value of its subtree, so range
// sums, prefix sums, augmented filtering and augmented projection run in
// polylogarithmic (or output-sensitive) work instead of linear.
//
// The design follows the paper closely:
//
//   - All balancing is abstracted behind a single join(l, e, r) function
//     (Blelloch, Ferizovic, Sun, SPAA'16); four schemes are provided:
//     weight-balanced (the PAM default), AVL, red-black, and treap.
//   - All other operations — split, join2, insert, delete, union,
//     intersect, difference, build, multi-insert, filter, mapReduce,
//     range extraction, and the augmented queries — are written once,
//     scheme-obliviously, on top of join.
//   - Trees are functional: operations path-copy rather than mutate, so
//     any snapshot remains valid forever. Reference counts on nodes track
//     sharing; a node with reference count 1 is reused in place (the
//     standard reuse optimization), which is what makes the functional
//     style competitive with in-place balanced trees.
//   - Bulk operations use binary fork-join parallelism over the tree
//     structure with a granularity cutoff, via internal/parallel.
//   - The fringe is blocked in the style of PaC-trees (arXiv:2204.06077):
//     subtrees of up to Config.Block entries are stored as leaf blocks —
//     sorted flat arrays with one precomputed augmented value and one
//     reference count per block — so copy-on-write, allocation, and
//     cache traffic are paid per block instead of per entry. join
//     collapses small results into blocks and the scheme-specific joins
//     cut blocks open when balancing must look inside one; everything
//     else treats a block as a height-1 subtree.
package core

// Traits supplies the ordering and the augmentation of a map type, the Go
// analogue of PAM's C++ "entry" template parameter. Implementations should
// be zero-size struct types so that calls devirtualize and inline.
//
// (A, Combine, Id) must form a monoid and Base maps one entry into it; the
// augmented value of a map is then Combine over Base of its entries, in
// key order.
type Traits[K, V, A any] interface {
	// Less is a strict total order on keys.
	Less(a, b K) bool
	// Id returns the identity of Combine (the augmented value of an
	// empty map).
	Id() A
	// Base returns the augmented value of the single entry (k, v).
	Base(k K, v V) A
	// Combine combines two augmented values; it must be associative with
	// identity Id().
	Combine(x, y A) A
}

// Scheme selects the balancing scheme interpreted by join. Everything
// except join (and singleton initialization) is scheme-oblivious, which is
// the point of the join-based design.
type Scheme uint8

const (
	// WeightBalanced is a BB[alpha] weight-balanced tree with
	// alpha = 0.29, PAM's default: the subtree size needed for balance is
	// stored in every node anyway (for rank/select), so no extra
	// balance field is needed.
	WeightBalanced Scheme = iota
	// AVL stores subtree height and maintains the AVL invariant.
	AVL
	// RedBlack stores color and black height and maintains the red-black
	// invariants.
	RedBlack
	// Treap stores a pseudo-random priority (derived deterministically
	// from an allocation counter) and maintains the max-heap-on-priority
	// invariant, giving probabilistic balance.
	Treap
)

// NumSchemes is the number of balancing schemes, for tests that iterate
// over all of them.
const NumSchemes = 4

func (s Scheme) String() string {
	switch s {
	case WeightBalanced:
		return "weight-balanced"
	case AVL:
		return "avl"
	case RedBlack:
		return "red-black"
	case Treap:
		return "treap"
	default:
		return "unknown-scheme"
	}
}
