package core

import (
	"repro/internal/parallel"
	"repro/internal/seq"
)

// Entry is a key-value pair, the element type of build and export
// operations.
type Entry[K, V any] struct {
	Key K
	Val V
}

// build constructs a tree from arbitrary entries, as in Figure 2: sort by
// key (stable, in parallel), combine duplicates left-to-right with h (nil
// h keeps the last value), then a balanced divide-and-conquer of joins.
// O(n log n) work, O(log n) span beyond the sort. The input slice is not
// modified.
func (o *ops[K, V, A, T]) build(items []Entry[K, V], h func(old, new V) V) *node[K, V, A] {
	if len(items) == 0 {
		return nil
	}
	s := make([]Entry[K, V], len(items))
	copy(s, items)
	seq.SortStable(s, func(a, b Entry[K, V]) bool { return o.tr.Less(a.Key, b.Key) })
	if h == nil {
		h = func(_, new V) V { return new }
	}
	eq := func(a, b Entry[K, V]) bool {
		return !o.tr.Less(a.Key, b.Key) && !o.tr.Less(b.Key, a.Key)
	}
	s = seq.DedupSortedBy(s, eq, func(acc, next Entry[K, V]) Entry[K, V] {
		return Entry[K, V]{Key: acc.Key, Val: h(acc.Val, next.Val)}
	})
	return o.buildSorted(s)
}

// buildSorted constructs a tree from strictly-increasing entries by
// balanced divide-and-conquer over joins (BUILD' in Figure 2).
func (o *ops[K, V, A, T]) buildSorted(s []Entry[K, V]) *node[K, V, A] {
	switch len(s) {
	case 0:
		return nil
	case 1:
		return o.singleton(s[0].Key, s[0].Val)
	}
	mid := len(s) / 2
	var l, r *node[K, V, A]
	parallel.DoIf(int64(len(s)) > o.grainSize(),
		func() { l = o.buildSorted(s[:mid]) },
		func() { r = o.buildSorted(s[mid+1:]) },
	)
	return o.joinKV(l, s[mid].Key, s[mid].Val, r)
}

// multiInsert inserts a batch of entries into t (consumed): sort and
// dedup the batch, then recursively partition it around tree nodes,
// descending both sides in parallel. Keys already present combine as
// h(old, new); nil h overwrites.
func (o *ops[K, V, A, T]) multiInsert(t *node[K, V, A], items []Entry[K, V], h func(old, new V) V) *node[K, V, A] {
	if len(items) == 0 {
		return t
	}
	s := make([]Entry[K, V], len(items))
	copy(s, items)
	seq.SortStable(s, func(a, b Entry[K, V]) bool { return o.tr.Less(a.Key, b.Key) })
	hh := h
	if hh == nil {
		hh = func(_, new V) V { return new }
	}
	eq := func(a, b Entry[K, V]) bool {
		return !o.tr.Less(a.Key, b.Key) && !o.tr.Less(b.Key, a.Key)
	}
	s = seq.DedupSortedBy(s, eq, func(acc, next Entry[K, V]) Entry[K, V] {
		return Entry[K, V]{Key: acc.Key, Val: hh(acc.Val, next.Val)}
	})
	return o.multiInsertSorted(t, s, h)
}

func (o *ops[K, V, A, T]) multiInsertSorted(t *node[K, V, A], s []Entry[K, V], h func(old, new V) V) *node[K, V, A] {
	if t == nil {
		return o.buildSorted(s)
	}
	if len(s) == 0 {
		return t
	}
	t = o.mutable(t)
	l, r := t.left, t.right
	pos := seq.LowerBound(s, Entry[K, V]{Key: t.key}, func(a, b Entry[K, V]) bool {
		return o.tr.Less(a.Key, b.Key)
	})
	right := pos
	if pos < len(s) && !o.tr.Less(t.key, s[pos].Key) {
		// s[pos].Key == t.key: merge into the existing entry.
		if h != nil {
			t.val = h(t.val, s[pos].Val)
		} else {
			t.val = s[pos].Val
		}
		right = pos + 1
	}
	var nl, nr *node[K, V, A]
	big := size(t)+int64(len(s)) > o.grainSize()
	parallel.DoIf(big,
		func() { nl = o.multiInsertSorted(l, s[:pos], h) },
		func() { nr = o.multiInsertSorted(r, s[right:], h) },
	)
	return o.join(nl, t, nr)
}

// multiDelete removes a batch of keys from t (consumed). The key slice is
// not modified.
func (o *ops[K, V, A, T]) multiDelete(t *node[K, V, A], keys []K) *node[K, V, A] {
	if len(keys) == 0 {
		return t
	}
	s := make([]K, len(keys))
	copy(s, keys)
	seq.Sort(s, o.tr.Less)
	s = seq.DedupSortedBy(s,
		func(a, b K) bool { return !o.tr.Less(a, b) && !o.tr.Less(b, a) },
		func(acc, _ K) K { return acc })
	return o.multiDeleteSorted(t, s)
}

func (o *ops[K, V, A, T]) multiDeleteSorted(t *node[K, V, A], s []K) *node[K, V, A] {
	if t == nil || len(s) == 0 {
		return t
	}
	pos := seq.LowerBound(s, t.key, o.tr.Less)
	found := pos < len(s) && !o.tr.Less(t.key, s[pos])
	right := pos
	if found {
		right = pos + 1
	}
	var l, r *node[K, V, A]
	if found {
		l, r = o.detach(t)
	} else {
		t = o.mutable(t)
		l, r = t.left, t.right
	}
	var nl, nr *node[K, V, A]
	big := size(l)+size(r)+int64(len(s)) > o.grainSize()
	parallel.DoIf(big,
		func() { nl = o.multiDeleteSorted(l, s[:pos]) },
		func() { nr = o.multiDeleteSorted(r, s[right:]) },
	)
	if found {
		return o.join2(nl, nr)
	}
	return o.join(nl, t, nr)
}
