package core

import (
	"repro/internal/parallel"
	"repro/internal/seq"
)

// Entry is a key-value pair, the element type of build and export
// operations.
type Entry[K, V any] struct {
	Key K
	Val V
}

// build constructs a tree from arbitrary entries, as in Figure 2: sort by
// key (stable, in parallel), combine duplicates left-to-right with h (nil
// h keeps the last value), then a balanced divide-and-conquer over leaf
// blocks and joins. O(n log n) work, O(log n) span beyond the sort. The
// input slice is not modified.
func (o *ops[K, V, A, T]) build(items []Entry[K, V], h func(old, new V) V) *node[K, V, A] {
	if len(items) == 0 {
		return nil
	}
	s := make([]Entry[K, V], len(items))
	copy(s, items)
	seq.SortStable(s, func(a, b Entry[K, V]) bool { return o.tr.Less(a.Key, b.Key) })
	if h == nil {
		h = func(_, new V) V { return new }
	}
	eq := func(a, b Entry[K, V]) bool {
		return !o.tr.Less(a.Key, b.Key) && !o.tr.Less(b.Key, a.Key)
	}
	s = seq.DedupSortedBy(s, eq, func(acc, next Entry[K, V]) Entry[K, V] {
		return Entry[K, V]{Key: acc.Key, Val: h(acc.Val, next.Val)}
	})
	return o.buildSorted(s)
}

// buildSorted constructs a tree from strictly-increasing entries (BUILD'
// in Figure 2, blocked): runs that fit a leaf block become one block
// (with a private copy of the entries — the caller keeps its slice), and
// Larger inputs split over the *minimal* number of leaf blocks rather
// than at the entry median: halving entries leaves every block just over
// half full, while giving each side its proportional share of
// ceil((n+1)/(B+1)) blocks lays the fringe out near-full — fewer nodes,
// fewer cache lines per scan, and (under compression) a smaller fixed
// overhead per entry. Joins rebalance, so the split point only chooses
// the layout, never threatens the invariants.
func (o *ops[K, V, A, T]) buildSorted(s []Entry[K, V]) *node[K, V, A] {
	if len(s) <= o.blockSize() {
		return o.mkLeafCopy(s)
	}
	b, n := o.blockSize(), len(s)
	blocks := (n + 1 + b) / (b + 1) // ceil((n+1)/(b+1)), >= 2 here
	lb := blocks / 2
	inBlocks := n - (blocks - 1) // entries living in blocks, not pivots
	mid := inBlocks*lb/blocks + (lb - 1)
	var l, r *node[K, V, A]
	parallel.DoIf(int64(len(s)) > o.grainSize(),
		func() { l = o.buildSorted(s[:mid]) },
		func() { r = o.buildSorted(s[mid+1:]) },
	)
	return o.joinKV(l, s[mid].Key, s[mid].Val, r)
}

// multiInsert inserts a batch of entries into t (consumed): sort and
// dedup the batch, then recursively partition it around tree nodes,
// descending both sides in parallel and merging batch runs directly into
// the leaf blocks they land in. Keys already present combine as
// h(old, new); nil h overwrites.
func (o *ops[K, V, A, T]) multiInsert(t *node[K, V, A], items []Entry[K, V], h func(old, new V) V) *node[K, V, A] {
	if len(items) == 0 {
		return t
	}
	s := make([]Entry[K, V], len(items))
	copy(s, items)
	seq.SortStable(s, func(a, b Entry[K, V]) bool { return o.tr.Less(a.Key, b.Key) })
	hh := h
	if hh == nil {
		hh = func(_, new V) V { return new }
	}
	eq := func(a, b Entry[K, V]) bool {
		return !o.tr.Less(a.Key, b.Key) && !o.tr.Less(b.Key, a.Key)
	}
	s = seq.DedupSortedBy(s, eq, func(acc, next Entry[K, V]) Entry[K, V] {
		return Entry[K, V]{Key: acc.Key, Val: hh(acc.Val, next.Val)}
	})
	return o.multiInsertSorted(t, s, h)
}

func (o *ops[K, V, A, T]) multiInsertSorted(t *node[K, V, A], s []Entry[K, V], h func(old, new V) V) *node[K, V, A] {
	if t == nil {
		return o.buildSorted(s)
	}
	if len(s) == 0 {
		return t
	}
	if isLeaf(t) {
		return o.leafMergeSorted(t, s, h)
	}
	t = o.mutable(t)
	l, r := t.left, t.right
	pos := seq.LowerBound(s, Entry[K, V]{Key: t.key}, func(a, b Entry[K, V]) bool {
		return o.tr.Less(a.Key, b.Key)
	})
	right := pos
	if pos < len(s) && !o.tr.Less(t.key, s[pos].Key) {
		// s[pos].Key == t.key: merge into the existing entry.
		if h != nil {
			t.val = h(t.val, s[pos].Val)
		} else {
			t.val = s[pos].Val
		}
		right = pos + 1
	}
	var nl, nr *node[K, V, A]
	big := size(t)+int64(len(s)) > o.grainSize()
	parallel.DoIf(big,
		func() { nl = o.multiInsertSorted(l, s[:pos], h) },
		func() { nr = o.multiInsertSorted(r, s[right:], h) },
	)
	return o.join(nl, t, nr)
}

// leafMergeSorted merges a sorted, deduplicated batch into a leaf block
// (consumed), rebuilding the region as blocks when it overflows.
// Collisions combine as h(block value, batch value); nil h overwrites.
func (o *ops[K, V, A, T]) leafMergeSorted(t *node[K, V, A], s []Entry[K, V], h func(old, new V) V) *node[K, V, A] {
	items := o.leafRead(t)
	merged := make([]Entry[K, V], 0, len(items)+len(s))
	i, j := 0, 0
	for i < len(items) && j < len(s) {
		switch {
		case o.tr.Less(items[i].Key, s[j].Key):
			merged = append(merged, items[i])
			i++
		case o.tr.Less(s[j].Key, items[i].Key):
			merged = append(merged, s[j])
			j++
		default:
			e := items[i]
			if h != nil {
				e.Val = h(e.Val, s[j].Val)
			} else {
				e.Val = s[j].Val
			}
			merged = append(merged, e)
			i++
			j++
		}
	}
	merged = append(merged, items[i:]...)
	merged = append(merged, s[j:]...)
	o.dec(t)
	b := o.blockSize()
	switch {
	case len(merged) <= b:
		return o.mkLeafOwned(merged)
	case len(merged) <= 2*b+1:
		// The common overflow (a block plus a batch tail): slice the
		// owned merged array into two blocks without another copy.
		return o.twoBlockNode(merged)
	default:
		return o.buildSorted(merged)
	}
}

// multiDelete removes a batch of keys from t (consumed). The key slice is
// not modified.
func (o *ops[K, V, A, T]) multiDelete(t *node[K, V, A], keys []K) *node[K, V, A] {
	if len(keys) == 0 {
		return t
	}
	s := make([]K, len(keys))
	copy(s, keys)
	seq.Sort(s, o.tr.Less)
	s = seq.DedupSortedBy(s,
		func(a, b K) bool { return !o.tr.Less(a, b) && !o.tr.Less(b, a) },
		func(acc, _ K) K { return acc })
	return o.multiDeleteSorted(t, s)
}

func (o *ops[K, V, A, T]) multiDeleteSorted(t *node[K, V, A], s []K) *node[K, V, A] {
	if t == nil || len(s) == 0 {
		return t
	}
	if isLeaf(t) {
		doomed := func(e Entry[K, V]) bool {
			pos := seq.LowerBound(s, e.Key, o.tr.Less)
			return pos < len(s) && !o.tr.Less(e.Key, s[pos])
		}
		// Allocation-free scan first: most visited blocks contain no
		// batch key at all and are returned untouched.
		first, at := -1, 0
		o.leafScanRange(t, 0, leafLen(t), func(e Entry[K, V]) bool {
			if doomed(e) {
				first = at
				return false
			}
			at++
			return true
		})
		if first < 0 {
			return t
		}
		items := o.leafRead(t)
		kept := make([]Entry[K, V], 0, len(items)-1)
		kept = append(kept, items[:first]...)
		for _, e := range items[first+1:] {
			if !doomed(e) {
				kept = append(kept, e)
			}
		}
		o.dec(t)
		return o.mkLeafOwned(kept)
	}
	pos := seq.LowerBound(s, t.key, o.tr.Less)
	found := pos < len(s) && !o.tr.Less(t.key, s[pos])
	right := pos
	if found {
		right = pos + 1
	}
	var l, r *node[K, V, A]
	if found {
		l, r = o.detach(t)
	} else {
		t = o.mutable(t)
		l, r = t.left, t.right
	}
	var nl, nr *node[K, V, A]
	big := size(l)+size(r)+int64(len(s)) > o.grainSize()
	parallel.DoIf(big,
		func() { nl = o.multiDeleteSorted(l, s[:pos]) },
		func() { nr = o.multiDeleteSorted(r, s[right:]) },
	)
	if found {
		return o.join2(nl, nr)
	}
	return o.join(nl, t, nr)
}
