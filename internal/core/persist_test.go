package core

import (
	"math/rand"
	"sync"
	"testing"
)

// Persistence: every operation leaves all previously obtained trees
// intact, and derived trees share structure with their inputs.

func TestSnapshotsSurviveUpdates(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(41))
		tr := newSum(sch)
		var snaps []sumTree
		var models []model
		m := model{}
		for i := 0; i < 1000; i++ {
			k := rng.Intn(400)
			v := int64(rng.Intn(1000))
			tr = tr.Insert(k, v)
			m[k] = v
			if i%100 == 99 {
				snaps = append(snaps, tr)
				mc := model{}
				for kk, vv := range m {
					mc[kk] = vv
				}
				models = append(models, mc)
			}
		}
		// Mutate further, including deletions; snapshots must not move.
		for i := 0; i < 500; i++ {
			tr = tr.Delete(rng.Intn(400))
		}
		for i, s := range snaps {
			mustMatch(t, s, models[i])
		}
	})
}

func TestDerivedTreesShareStructure(t *testing.T) {
	tr := newSum(WeightBalanced)
	n := 10000
	items := make([]Entry[int, int64], n)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i, Val: int64(i)}
	}
	tr = tr.BuildSorted(items)
	tr2 := tr.Insert(n+1, 1)
	if !tr.SharesStructureWith(tr2) {
		t.Fatal("insert result shares nothing with input")
	}
	// A single insert into an n-node tree must share almost everything:
	// the union of both trees has at most n + O(log n) unique nodes.
	unique := CountUniqueNodes(tr, tr2)
	if unique > int64(n)+64 {
		t.Fatalf("insert copied too much: %d unique nodes for n=%d", unique, n)
	}
}

func TestUnionSharingSkewed(t *testing.T) {
	// Table 4: persistent union with m << n re-uses about half of all
	// nodes (most of the larger tree appears verbatim in the output).
	n, m := 100000, 100
	big := newSum(WeightBalanced)
	items := make([]Entry[int, int64], n)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i * 10, Val: int64(i)}
	}
	big = big.BuildSorted(items)
	smallItems := make([]Entry[int, int64], m)
	for i := range smallItems {
		smallItems[i] = Entry[int, int64]{Key: i*1000 + 5, Val: int64(i)}
	}
	small := newSum(WeightBalanced).BuildSorted(smallItems)
	u := big.UnionWith(small, nil)
	if err := u.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
	// Unique across all three trees: without sharing it would be
	// ~ 2n + 2m; with path copying it must be far below n + n.
	unique := CountUniqueNodes(big, small, u)
	noSharing := int64(2*n + 2*m)
	if unique > noSharing*6/10 {
		t.Fatalf("too little sharing: %d unique vs %d unshared bound", unique, noSharing)
	}
}

func TestInPlaceOpsReuseNodes(t *testing.T) {
	st := &Stats{}
	tr := New[int, int64, int64, sumTraits](Config{Stats: st})
	for i := 0; i < 1000; i++ {
		tr.InsertInPlace(i, int64(i))
	}
	st.Reset()
	// Unshared tree: in-place inserts should mostly reuse nodes (and
	// blocks) rather than copy. With blocked leaves the allocation rate
	// is a few nodes per filled block, far below one per key.
	for i := 1000; i < 2000; i++ {
		tr.InsertInPlace(i, int64(i))
	}
	if c := st.Copies.Load(); c != 0 {
		t.Fatalf("in-place insert into unshared tree copied %d nodes", c)
	}
	if a := st.Allocated.Load(); a >= 1000/2 {
		t.Fatalf("allocated %d nodes for 1000 new keys; want ~3 per block of %d", a, DefaultBlock)
	}
	// Now share the tree and watch copies appear (persistence kicks in).
	snap := tr.Retain()
	st.Reset()
	tr.InsertInPlace(5000, 1)
	if c := st.Copies.Load(); c == 0 {
		t.Fatal("insert into shared tree did not path-copy")
	}
	if v, ok := snap.Find(5000); ok {
		t.Fatalf("snapshot sees later insert: %d", v)
	}
	_ = snap
}

func TestReleaseFreesExactly(t *testing.T) {
	st := &Stats{}
	a := New[int, int64, int64, sumTraits](Config{Stats: st})
	for i := 0; i < 500; i++ {
		a.InsertInPlace(i, 1)
	}
	b := a.Insert(999, 1) // shares structure with a
	a.Release()
	// b must still be fully valid after a's release.
	if err := b.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 501 {
		t.Fatalf("b size %d", b.Size())
	}
	b.Release()
	if st.Live() != 0 {
		t.Fatalf("%d nodes leaked after releasing all trees", st.Live())
	}
}

func TestConcurrentSnapshotReaders(t *testing.T) {
	// The paper's concurrency model: one writer applies bulk updates,
	// many readers query immutable snapshots. Run with -race.
	tr := newSum(WeightBalanced)
	items := make([]Entry[int, int64], 10000)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i, Val: int64(i)}
	}
	tr = tr.BuildSorted(items)

	var mu sync.Mutex
	current := tr
	snapshot := func() sumTree {
		mu.Lock()
		defer mu.Unlock()
		return current
	}
	publish := func(t2 sumTree) {
		mu.Lock()
		defer mu.Unlock()
		current = t2
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := snapshot()
				k := rng.Intn(10000)
				if v, ok := s.Find(k); ok && v < int64(k) {
					panic("snapshot value decreased")
				}
				_ = s.AugRange(k, k+100)
			}
		}(int64(r))
	}
	for i := 0; i < 50; i++ {
		batch := make([]Entry[int, int64], 100)
		for j := range batch {
			k := (i*100 + j) % 10000
			batch[j] = Entry[int, int64]{Key: k, Val: int64(k) + 1}
		}
		publish(snapshot().MultiInsert(batch, nil))
	}
	close(stop)
	wg.Wait()
	if err := snapshot().Validate(i64eq); err != nil {
		t.Fatal(err)
	}
}

func TestRangeExtractionPersistent(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(44))
		tr, m := fromKeysBulk(sch, randKeys(rng, 2000, 3000))
		for trial := 0; trial < 50; trial++ {
			lo := rng.Intn(3200) - 100
			hi := lo + rng.Intn(800)
			sub := tr.Range(lo, hi)
			if err := sub.Validate(i64eq); err != nil {
				t.Fatal(err)
			}
			ms := model{}
			for k, v := range m {
				if k >= lo && k <= hi {
					ms[k] = v
				}
			}
			mustMatch(t, sub, ms)
		}
		mustMatch(t, tr, m)
		// UpTo / DownTo against the model.
		k := 1500
		up := tr.UpTo(k)
		down := tr.DownTo(k)
		mu, md := model{}, model{}
		for kk, v := range m {
			if kk <= k {
				mu[kk] = v
			}
			if kk >= k {
				md[kk] = v
			}
		}
		mustMatch(t, up, mu)
		mustMatch(t, down, md)
	})
}
