package core

// Range extraction (range, upTo, downTo in Figure 1). These borrow their
// input and return a new tree that shares subtrees with it — persistence
// makes the sharing safe. Each walks one or two root-to-leaf paths,
// joining O(log n) shared subtrees; the boundary leaf blocks are cut
// into fresh blocks.

// leafSlice returns a new leaf block over items[i:j] of a borrowed leaf
// (nil when empty).
func (o *ops[K, V, A, T]) leafSlice(t *node[K, V, A], i, j int) *node[K, V, A] {
	return o.mkLeafCopy(t.items[i:j])
}

// rangeKeys extracts the entries with lo <= key <= hi.
func (o *ops[K, V, A, T]) rangeKeys(t *node[K, V, A], lo, hi K) *node[K, V, A] {
	for t != nil {
		if t.items != nil {
			i, _ := o.leafSearch(t.items, lo)
			j, foundHi := o.leafSearch(t.items, hi)
			if foundHi {
				j++
			}
			if i >= j {
				return nil
			}
			return o.leafSlice(t, i, j)
		}
		switch {
		case o.tr.Less(t.key, lo):
			t = t.right
		case o.tr.Less(hi, t.key):
			t = t.left
		default:
			l := o.rangeGE(t.left, lo)
			r := o.rangeLE(t.right, hi)
			return o.joinKV(l, t.key, t.val, r)
		}
	}
	return nil
}

// rangeGE extracts entries with key >= lo.
func (o *ops[K, V, A, T]) rangeGE(t *node[K, V, A], lo K) *node[K, V, A] {
	if t == nil {
		return nil
	}
	if t.items != nil {
		i, _ := o.leafSearch(t.items, lo)
		return o.leafSlice(t, i, len(t.items))
	}
	if o.tr.Less(t.key, lo) {
		return o.rangeGE(t.right, lo)
	}
	l := o.rangeGE(t.left, lo)
	return o.joinKV(l, t.key, t.val, inc(t.right))
}

// rangeLE extracts entries with key <= hi.
func (o *ops[K, V, A, T]) rangeLE(t *node[K, V, A], hi K) *node[K, V, A] {
	if t == nil {
		return nil
	}
	if t.items != nil {
		j, found := o.leafSearch(t.items, hi)
		if found {
			j++
		}
		return o.leafSlice(t, 0, j)
	}
	if o.tr.Less(hi, t.key) {
		return o.rangeLE(t.left, hi)
	}
	r := o.rangeLE(t.right, hi)
	return o.joinKV(inc(t.left), t.key, t.val, r)
}
