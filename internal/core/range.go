package core

// Range extraction (range, upTo, downTo in Figure 1). These borrow their
// input and return a new tree that shares subtrees with it — persistence
// makes the sharing safe. Each walks one or two root-to-leaf paths,
// joining O(log n) shared subtrees; the boundary leaf blocks are cut
// into fresh blocks.

// rangeKeys extracts the entries with lo <= key <= hi. (The boundary
// blocks are cut with leafSlice — see compress.go for the leaf seam.)
func (o *ops[K, V, A, T]) rangeKeys(t *node[K, V, A], lo, hi K) *node[K, V, A] {
	for t != nil {
		if isLeaf(t) {
			i, _ := o.leafBound(t, lo)
			j, foundHi := o.leafBound(t, hi)
			if foundHi {
				j++
			}
			return o.leafSlice(t, i, j)
		}
		switch {
		case o.tr.Less(t.key, lo):
			t = t.right
		case o.tr.Less(hi, t.key):
			t = t.left
		default:
			l := o.rangeGE(t.left, lo)
			r := o.rangeLE(t.right, hi)
			return o.joinKV(l, t.key, t.val, r)
		}
	}
	return nil
}

// rangeGE extracts entries with key >= lo.
func (o *ops[K, V, A, T]) rangeGE(t *node[K, V, A], lo K) *node[K, V, A] {
	if t == nil {
		return nil
	}
	if isLeaf(t) {
		i, _ := o.leafBound(t, lo)
		return o.leafSlice(t, i, leafLen(t))
	}
	if o.tr.Less(t.key, lo) {
		return o.rangeGE(t.right, lo)
	}
	l := o.rangeGE(t.left, lo)
	return o.joinKV(l, t.key, t.val, inc(t.right))
}

// rangeLE extracts entries with key <= hi.
func (o *ops[K, V, A, T]) rangeLE(t *node[K, V, A], hi K) *node[K, V, A] {
	if t == nil {
		return nil
	}
	if isLeaf(t) {
		j, found := o.leafBound(t, hi)
		if found {
			j++
		}
		return o.leafSlice(t, 0, j)
	}
	if o.tr.Less(hi, t.key) {
		return o.rangeLE(t.left, hi)
	}
	r := o.rangeLE(t.right, hi)
	return o.joinKV(inc(t.left), t.key, t.val, r)
}
