package core

// Augmented queries (Table 2 "Augmented operations"). All borrow their
// input. augVal is O(1); augLeft/augRight/augRange are O(log n + B):
// they walk one or two root-to-leaf paths combining whole-subtree
// augmented values that fall inside the query range, plus a partial fold
// over the boundary leaf blocks (located by binary search, so only the
// in-range entries are folded).

// augVal returns the augmented value of the whole tree.
func (o *ops[K, V, A, T]) augVal(t *node[K, V, A]) A { return o.augOf(t) }

// leafAugSlice folds Base over items[i:j] of a leaf block, Id for an
// empty range.
func (o *ops[K, V, A, T]) leafAugSlice(items []Entry[K, V], i, j int) A {
	if i >= j {
		return o.tr.Id()
	}
	return o.leafAug(items[i:j])
}

// augLeft returns the augmented value over entries with keys <= k
// (AUGLEFT in Figure 2; the paper's pseudocode includes the boundary key).
func (o *ops[K, V, A, T]) augLeft(t *node[K, V, A], k K) A {
	if t == nil {
		return o.tr.Id()
	}
	if isLeaf(t) {
		j, found := o.leafBound(t, k)
		if found {
			j++
		}
		if j == leafLen(t) {
			return t.aug // whole block in range: use the stored fold
		}
		return o.leafAugRange(t, 0, j)
	}
	if o.tr.Less(k, t.key) {
		return o.augLeft(t.left, k)
	}
	return o.tr.Combine(o.augOf(t.left),
		o.tr.Combine(o.tr.Base(t.key, t.val), o.augLeft(t.right, k)))
}

// augRight returns the augmented value over entries with keys >= k.
func (o *ops[K, V, A, T]) augRight(t *node[K, V, A], k K) A {
	if t == nil {
		return o.tr.Id()
	}
	if isLeaf(t) {
		i, _ := o.leafBound(t, k)
		if i == 0 {
			return t.aug // whole block in range: use the stored fold
		}
		return o.leafAugRange(t, i, leafLen(t))
	}
	if o.tr.Less(t.key, k) {
		return o.augRight(t.right, k)
	}
	return o.tr.Combine(o.augRight(t.left, k),
		o.tr.Combine(o.tr.Base(t.key, t.val), o.augOf(t.right)))
}

// augRange returns the augmented value over entries with lo <= key <= hi.
func (o *ops[K, V, A, T]) augRange(t *node[K, V, A], lo, hi K) A {
	for t != nil {
		if isLeaf(t) {
			i, _ := o.leafBound(t, lo)
			j, found := o.leafBound(t, hi)
			if found {
				j++
			}
			return o.leafAugRange(t, i, j)
		}
		switch {
		case o.tr.Less(t.key, lo):
			t = t.right
		case o.tr.Less(hi, t.key):
			t = t.left
		default:
			// lo <= t.key <= hi: the range spans this root.
			return o.tr.Combine(o.augRight(t.left, lo),
				o.tr.Combine(o.tr.Base(t.key, t.val), o.augLeft(t.right, hi)))
		}
	}
	return o.tr.Id()
}

// The aug projection functions live in project.go because they introduce
// an extra type parameter (the projected type B) and therefore cannot be
// methods.
