package core

import (
	"math/rand"
	"testing"
)

func TestBuildMatchesInsert(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(21))
		for _, n := range []int{0, 1, 2, 7, 100, 5000} {
			keys := randKeys(rng, n, n+1)
			items := make([]Entry[int, int64], n)
			m := model{}
			for i, k := range keys {
				items[i] = Entry[int, int64]{Key: k, Val: int64(i)}
				m[k] = int64(i) // last value wins (nil combiner)
			}
			tr := newSum(sch).Build(items, nil)
			mustMatch(t, tr, m)
		}
	})
}

func TestBuildCombinesDuplicates(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		items := []Entry[int, int64]{
			{Key: 1, Val: 1}, {Key: 2, Val: 10}, {Key: 1, Val: 2},
			{Key: 1, Val: 3}, {Key: 2, Val: 20},
		}
		tr := newSum(sch).Build(items, func(old, new int64) int64 { return old + new })
		if v, _ := tr.Find(1); v != 6 {
			t.Fatalf("key 1 combined to %d, want 6", v)
		}
		if v, _ := tr.Find(2); v != 30 {
			t.Fatalf("key 2 combined to %d, want 30", v)
		}
		if tr.Size() != 2 {
			t.Fatalf("size %d", tr.Size())
		}
	})
}

func TestBuildDoesNotModifyInput(t *testing.T) {
	items := []Entry[int, int64]{{Key: 3, Val: 3}, {Key: 1, Val: 1}, {Key: 2, Val: 2}}
	newSum(WeightBalanced).Build(items, nil)
	if items[0].Key != 3 || items[1].Key != 1 || items[2].Key != 2 {
		t.Fatalf("Build reordered its input: %v", items)
	}
}

func TestBuildSorted(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		n := 10000
		items := make([]Entry[int, int64], n)
		m := model{}
		for i := range items {
			items[i] = Entry[int, int64]{Key: i * 2, Val: int64(i)}
			m[i*2] = int64(i)
		}
		tr := newSum(sch).BuildSorted(items)
		mustMatch(t, tr, m)
	})
}

func TestMultiInsertMatchesModel(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(22))
		tr, m := fromKeysBulk(sch, randKeys(rng, 2000, 5000))
		batch := make([]Entry[int, int64], 1500)
		for i := range batch {
			k := rng.Intn(5000)
			batch[i] = Entry[int, int64]{Key: k, Val: int64(i + 10_000)}
		}
		add := func(old, new int64) int64 { return old + new }
		u := tr.MultiInsert(batch, add)
		// Model: combine duplicates within the batch first, then with
		// existing entries.
		batchAcc := map[int]int64{}
		for _, e := range batch {
			if old, ok := batchAcc[e.Key]; ok {
				batchAcc[e.Key] = add(old, e.Val)
			} else {
				batchAcc[e.Key] = e.Val
			}
		}
		mu := model{}
		for k, v := range m {
			mu[k] = v
		}
		for k, v := range batchAcc {
			if old, ok := mu[k]; ok {
				mu[k] = add(old, v)
			} else {
				mu[k] = v
			}
		}
		mustMatch(t, u, mu)
		mustMatch(t, tr, m) // input preserved
	})
}

func TestMultiInsertIntoEmpty(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		batch := []Entry[int, int64]{{Key: 5, Val: 5}, {Key: 1, Val: 1}, {Key: 9, Val: 9}}
		tr := newSum(sch).MultiInsert(batch, nil)
		mustMatch(t, tr, model{5: 5, 1: 1, 9: 9})
		empty := newSum(sch).MultiInsert(nil, nil)
		mustMatch(t, empty, model{})
	})
}

func TestMultiDelete(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(23))
		tr, m := fromKeysBulk(sch, randKeys(rng, 3000, 4000))
		var doomed []int
		for k := range m {
			if k%3 == 0 {
				doomed = append(doomed, k)
			}
		}
		doomed = append(doomed, -1, -2, 99_999) // absent keys
		doomed = append(doomed, doomed[0])      // duplicate key in batch
		got := tr.MultiDelete(doomed)
		md := model{}
		for k, v := range m {
			if k%3 != 0 {
				md[k] = v
			}
		}
		mustMatch(t, got, md)
		mustMatch(t, tr, m)
		// Deleting everything.
		all := tr.Keys()
		empty := tr.MultiDelete(all)
		mustMatch(t, empty, model{})
	})
}

func TestMultiInsertEquivalentToUnionBuild(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(24))
		tr, _ := fromKeysBulk(sch, randKeys(rng, 1000, 3000))
		batch := make([]Entry[int, int64], 800)
		for i := range batch {
			k := rng.Intn(3000)
			batch[i] = Entry[int, int64]{Key: k, Val: int64(k) * 7}
		}
		viaMI := tr.MultiInsert(batch, nil)
		viaUnion := tr.Union(newSum(sch).Build(batch, nil))
		a, b := viaMI.Entries(), viaUnion.Entries()
		if len(a) != len(b) {
			t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	})
}
