package core

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/seq"
)

// node is a tree node. The tree is two-layered in the style of PaC-trees
// (Dhulipala et al., arXiv:2204.06077): interior nodes carry one entry
// each and one layout serves all four balancing schemes (size doubles as
// the weight-balance criterion and supports rank/select; aux holds the
// AVL height, the red-black color+black-height, or the treap priority),
// while the fringe is made of *leaf blocks* — nodes whose items slice
// holds up to blockSize() entries in strictly increasing key order, with
// the block's augmented value precomputed in aug. A node is a leaf iff
// items != nil; leaves have nil children, size == len(items), and unused
// key/val. Blocking cuts the node count (and with it allocation and
// pointer-chasing) by roughly a factor of B on every bulk path.
//
// Reference counts implement the paper's functional persistence: a node
// is shared freely between trees, and only a node whose count is 1 may be
// mutated in place (the reuse optimization described in §4 "Persistence").
// For leaves the unit of copy-on-write is the whole block: a leaf's items
// array is referenced by that leaf node alone, so refs == 1 licenses
// in-place edits of the array.
type node[K, V, A any] struct {
	left, right *node[K, V, A]
	items       []Entry[K, V] // non-nil: flat leaf block (sorted, 1..B entries)
	packed      []byte        // non-nil: compressed leaf block (see compress.go)
	key         K
	val         V
	aug         A
	size        int64
	aux         uint32
	refs        atomic.Int32
}

// isLeaf reports whether t is a leaf block (flat or compressed). nil is
// not a leaf. Within one tree family exactly one of the two leaf
// representations occurs: packed iff a Compressor is configured.
func isLeaf[K, V, A any](t *node[K, V, A]) bool {
	return t != nil && (t.items != nil || t.packed != nil)
}

// Stats tracks node allocation for the space experiments (Table 4). All
// counters are cumulative; Live = Allocated - Freed. Allocated/Freed
// count nodes of both kinds; LeafAllocated/LeafFreed count the subset
// that are leaf blocks (so interior = total - leaf).
type Stats struct {
	Allocated     atomic.Int64
	Freed         atomic.Int64
	LeafAllocated atomic.Int64 // leaf blocks, included in Allocated
	LeafFreed     atomic.Int64 // leaf blocks, included in Freed
	Copies        atomic.Int64 // path copies forced by sharing (refs > 1)
	Reuses        atomic.Int64 // in-place reuses permitted by refs == 1
}

// Live reports currently-live node count (interior nodes + leaf blocks).
func (s *Stats) Live() int64 { return s.Allocated.Load() - s.Freed.Load() }

// LiveLeaves reports currently-live leaf block count.
func (s *Stats) LiveLeaves() int64 { return s.LeafAllocated.Load() - s.LeafFreed.Load() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Allocated.Store(0)
	s.Freed.Store(0)
	s.LeafAllocated.Store(0)
	s.LeafFreed.Store(0)
	s.Copies.Store(0)
	s.Reuses.Store(0)
}

// prioSeed feeds deterministic-but-well-mixed treap priorities.
var prioSeed atomic.Uint64

// ops bundles the traits, scheme, grain, block size, and statistics
// shared by every operation on a tree type. It is embedded by value in
// Tree handles and passed by pointer internally. The zero grain means
// DefaultGrain; the zero block means DefaultBlock.
type ops[K, V, A any, T Traits[K, V, A]] struct {
	tr    T
	sch   Scheme
	grain int64
	block int
	stats *Stats
	pool  *sync.Pool       // non-nil when node recycling is enabled
	comp  Compressor[K, V] // non-nil: leaf blocks are difference-encoded
}

// DefaultGrain is the subproblem size below which bulk operations stop
// forking. PAM uses a node-count granularity of a few hundred; the same
// magnitude works here. BenchmarkGrainSweep (root bench_test.go) sweeps
// Union/Build/MapReduce over 64..16384 at elevated parallelism; on the
// reference machine every grain lands within ~5% and 1024–4096 sit at
// the minimum, so 1024 stays — re-run the sweep before changing it.
const DefaultGrain = 1024

// DefaultBlock is the default leaf block size B. PaC-trees report the
// space/time sweet spot in the tens-of-entries range: large enough that
// leaf arrays amortize the per-node header and fill cache lines, small
// enough that the O(B) copy on a blocked insert or split stays cheap
// next to the O(log n) search above it.
const DefaultBlock = 32

func (o *ops[K, V, A, T]) grainSize() int64 {
	if o.grain > 0 {
		return o.grain
	}
	return DefaultGrain
}

func (o *ops[K, V, A, T]) blockSize() int {
	if o.block > 1 {
		return o.block
	}
	if o.block != 0 {
		return 2 // blocks below 2 break the red-black block split; clamp
	}
	return DefaultBlock
}

// size returns the subtree size of t (0 for nil), counting entries.
func size[K, V, A any](t *node[K, V, A]) int64 {
	if t == nil {
		return 0
	}
	return t.size
}

// weight is size+1, the quantity the weight-balance criterion is defined
// on (so empty subtrees have positive weight).
func weight[K, V, A any](t *node[K, V, A]) int64 { return size(t) + 1 }

// augOf returns the augmented value of t, or the identity for nil.
func (o *ops[K, V, A, T]) augOf(t *node[K, V, A]) A {
	if t == nil {
		return o.tr.Id()
	}
	return t.aug
}

// freedRef is the poisoned refcount of a node sitting in the pool.
// Any release or mutation reaching such a node — a Tree handle used
// after Release, the misuse Config.Pool's invariant forbids — trips a
// panic instead of silently corrupting whatever tree adopts the node
// next. Detection is best-effort: it holds until the pool re-issues
// the node (and the poison write itself gives the race detector a
// racing address for concurrent misuse).
const freedRef = math.MinInt32 / 2

// getNode returns an uninitialized node with refs == 1, recycling from
// the pool when enabled.
func (o *ops[K, V, A, T]) getNode() *node[K, V, A] {
	var n *node[K, V, A]
	if o.pool != nil {
		if x := o.pool.Get(); x != nil {
			n = x.(*node[K, V, A])
			if n.refs.Load() != freedRef {
				panic("core: pooled node resurrected with a live refcount — tree handle used after Release?")
			}
			*n = node[K, V, A]{}
		}
	}
	if n == nil {
		n = &node[K, V, A]{}
	}
	if o.stats != nil {
		o.stats.Allocated.Add(1)
	}
	n.refs.Store(1)
	return n
}

// alloc returns a fresh interior node with refs == 1 and the scheme's
// singleton aux value. Children, size, aug are set by the caller (via
// update).
func (o *ops[K, V, A, T]) alloc(k K, v V) *node[K, V, A] {
	n := o.getNode()
	n.key = k
	n.val = v
	switch o.sch {
	case AVL:
		n.aux = 1
	case RedBlack:
		n.aux = rbMake(1, false) // fresh singletons are black, bh 1
	case Treap:
		n.aux = uint32(seq.Mix64(prioSeed.Add(0x9e3779b97f4a7c15)))
	}
	return n
}

// leafAux is the aux value of a leaf block: AVL height 1, black with
// black height 1, and the all-schemes-minimal treap priority 0 (leaves
// sit at the fringe, so the heap-on-priority invariant holds trivially).
func (o *ops[K, V, A, T]) leafAux() uint32 {
	switch o.sch {
	case AVL:
		return 1
	case RedBlack:
		return rbMake(1, false)
	default:
		return 0
	}
}

// leafAug folds the augmented value of a run of entries:
// Combine(Base(e0), Base(e1), ...), associativity making the fold shape
// irrelevant. items must be non-empty.
func (o *ops[K, V, A, T]) leafAug(items []Entry[K, V]) A {
	a := o.tr.Base(items[0].Key, items[0].Val)
	for _, e := range items[1:] {
		a = o.tr.Combine(a, o.tr.Base(e.Key, e.Val))
	}
	return a
}

// mkLeafOwned wraps a fresh leaf node around items, taking ownership of
// the slice (the caller must not retain it). Empty items yield nil.
// items must be sorted, deduplicated, and no longer than the block size.
// With a Compressor configured the entries are packed into a byte
// string instead and the slice is released to the GC.
func (o *ops[K, V, A, T]) mkLeafOwned(items []Entry[K, V]) *node[K, V, A] {
	if len(items) == 0 {
		return nil
	}
	n := o.getNode()
	if o.stats != nil {
		o.stats.LeafAllocated.Add(1)
	}
	if o.comp != nil {
		p := o.packLeafInto(nil, items)
		// Right-size: append growth can leave the buffer mostly slack,
		// which defeats the point of packing. (rebuildLeaf deliberately
		// keeps its reused buffer's capacity — mutation churn wants it.)
		if cap(p)-len(p) > len(p)/8 {
			p = append(make([]byte, 0, len(p)), p...)
		}
		n.packed = p
	} else {
		n.items = items
	}
	n.size = int64(len(items))
	n.aug = o.leafAug(items)
	n.aux = o.leafAux()
	return n
}

// mkLeafCopy is mkLeafOwned over a private copy of items (for borrowed
// input slices). Compressed families skip the intermediate copy —
// packing never retains the input slice.
func (o *ops[K, V, A, T]) mkLeafCopy(items []Entry[K, V]) *node[K, V, A] {
	if len(items) == 0 {
		return nil
	}
	if o.comp != nil {
		return o.mkLeafOwned(items)
	}
	own := make([]Entry[K, V], len(items))
	copy(own, items)
	return o.mkLeafOwned(own)
}

// singleton builds a one-entry tree (a one-entry leaf block, so
// subsequent inserts grow the array instead of the node count).
func (o *ops[K, V, A, T]) singleton(k K, v V) *node[K, V, A] {
	return o.mkLeafOwned([]Entry[K, V]{{Key: k, Val: v}})
}

// update recomputes the derived fields of n (size, augmented value, and
// for AVL the height) from its children. It must be called after any
// change to n's children; n must be an exclusively owned interior node
// (refs == 1 or fresh).
func (o *ops[K, V, A, T]) update(n *node[K, V, A]) {
	n.size = size(n.left) + size(n.right) + 1
	// Two applications of Combine, exactly as §4 "Augmentation":
	// f(A(L), f(g(k, v), A(R))).
	n.aug = o.tr.Combine(o.augOf(n.left), o.tr.Combine(o.tr.Base(n.key, n.val), o.augOf(n.right)))
	if o.sch == AVL {
		n.aux = 1 + max(avlHeight(n.left), avlHeight(n.right))
	}
}

// mkNode allocates an interior node with the given children and updates
// it. It takes ownership of l and r.
func (o *ops[K, V, A, T]) mkNode(l *node[K, V, A], k K, v V, r *node[K, V, A]) *node[K, V, A] {
	n := o.alloc(k, v)
	n.left, n.right = l, r
	o.update(n)
	return n
}

// inc takes an additional reference to t (no-op for nil).
func inc[K, V, A any](t *node[K, V, A]) *node[K, V, A] {
	if t != nil {
		t.refs.Add(1)
	}
	return t
}

// dec releases one reference to t; at zero the node is freed and its
// children released recursively. The recursion depth is the tree height,
// which is O(log n) for every scheme, so plain recursion is safe.
func (o *ops[K, V, A, T]) dec(t *node[K, V, A]) {
	if t == nil {
		return
	}
	if n := t.refs.Add(-1); n != 0 {
		if n < freedRef/2 {
			panic("core: releasing an already-freed node — tree handle used after Release?")
		}
		return
	}
	l, r := t.left, t.right
	o.free(t)
	o.dec(l)
	o.dec(r)
}

// free recycles a dead node. The children must already have been
// released; the caller observed the refcount hit zero. Pooled nodes
// are poisoned (see freedRef) so stale handles fail loudly.
func (o *ops[K, V, A, T]) free(t *node[K, V, A]) {
	if o.stats != nil {
		o.stats.Freed.Add(1)
		if isLeaf(t) {
			o.stats.LeafFreed.Add(1)
		}
	}
	if o.pool != nil {
		var zk K
		var zv V
		t.left, t.right = nil, nil
		t.items = nil  // the block array is garbage-collected, not pooled
		t.packed = nil // likewise the packed byte string
		// Zero the entry too: a recycled node reused as a leaf block
		// never rewrites key/val, and stale values would otherwise stay
		// reachable (pinned) for the new node's whole life.
		t.key, t.val = zk, zv
		t.refs.Store(freedRef)
		o.pool.Put(t)
	}
}

// mutable returns a node with the contents of t that the caller may
// mutate: t itself when the caller holds the only reference, otherwise a
// copy (with child references taken, and for leaves a private copy of
// the items array) while t's own reference is dropped. t must be non-nil
// and owned by the caller.
func (o *ops[K, V, A, T]) mutable(t *node[K, V, A]) *node[K, V, A] {
	if r := t.refs.Load(); r == 1 {
		if o.stats != nil {
			o.stats.Reuses.Add(1)
		}
		return t
	} else if r < freedRef/2 {
		panic("core: mutating an already-freed node — tree handle used after Release?")
	}
	var n *node[K, V, A]
	if isLeaf(t) {
		n = o.getNode()
		if o.stats != nil {
			o.stats.LeafAllocated.Add(1)
		}
		if t.packed != nil {
			n.packed = append([]byte(nil), t.packed...)
		} else {
			n.items = make([]Entry[K, V], len(t.items))
			copy(n.items, t.items)
		}
	} else {
		n = o.getNode()
		n.key, n.val = t.key, t.val
		n.left, n.right = inc(t.left), inc(t.right)
	}
	n.size, n.aug, n.aux = t.size, t.aug, t.aux
	if o.stats != nil {
		o.stats.Copies.Add(1)
	}
	// Drop the caller's reference to t. The count cannot hit zero here:
	// we observed refs > 1 and this caller held one of those references,
	// and no other thread can concurrently release references it does
	// not own.
	t.refs.Add(-1)
	return n
}

// detach dismantles an owned interior node, transferring ownership of its
// children to the caller and releasing (or reusing) the node itself. It
// returns the children. Used by split/union to consume input trees. Must
// not be called on a leaf (leaves have no children to transfer).
func (o *ops[K, V, A, T]) detach(t *node[K, V, A]) (l, r *node[K, V, A]) {
	l, r = t.left, t.right
	if t.refs.Add(-1) == 0 {
		o.free(t)
	} else {
		// Other trees still reference t (and through it, its children):
		// take fresh references for the caller.
		inc(l)
		inc(r)
	}
	return l, r
}

// Ownership discipline (mirrors PAM's reference-counting GC):
//
//   - Functions that *consume* a tree argument receive one reference and
//     must account for it: pass it on, detach it, or dec it.
//   - Before mutating any owned node, call mutable; afterwards its child
//     pointers may be reassigned freely — the node holds one reference to
//     each child, and moving a pointer moves that reference. A child
//     pointer passed to a consuming call transfers its reference.
//   - Borrowing (read-only) functions never touch counts; when they embed
//     a borrowed subtree into a new tree they inc it first.
//   - A leaf's items array belongs to that leaf node alone; refs == 1 on
//     the node therefore licenses in-place edits of the array.

// decParallel is dec with the recursive child releases forked in
// parallel for large subtrees. Used by Tree.ReleaseParallel.
func (o *ops[K, V, A, T]) decParallel(t *node[K, V, A]) {
	if t == nil {
		return
	}
	if t.refs.Add(-1) != 0 {
		return
	}
	l, r := t.left, t.right
	big := size(l)+size(r) > o.grainSize()
	o.free(t)
	parallel.DoIf(big,
		func() { o.decParallel(l) },
		func() { o.decParallel(r) },
	)
}

// leafSearch binary-searches items for k, returning the index of the
// first entry with key >= k and whether that entry's key equals k.
func (o *ops[K, V, A, T]) leafSearch(items []Entry[K, V], k K) (int, bool) {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.tr.Less(items[mid].Key, k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(items) && !o.tr.Less(k, items[lo].Key)
}

// gather appends every entry of t (in key order) to buf, borrowing t.
// Used to collapse small subtrees into leaf blocks.
func (o *ops[K, V, A, T]) gather(t *node[K, V, A], buf []Entry[K, V]) []Entry[K, V] {
	if t == nil {
		return buf
	}
	if isLeaf(t) {
		return o.leafAppendTo(buf, t)
	}
	buf = o.gather(t.left, buf)
	buf = append(buf, Entry[K, V]{Key: t.key, Val: t.val})
	return o.gather(t.right, buf)
}

// twoBlockNode builds an interior node over two blocks from an owned,
// sorted, deduplicated run of between blockSize+1 and 2*blockSize+1
// entries, without re-copying: the blocks are backed by disjoint
// subslices of all, capacity-clamped so a later in-place grow of either
// block reallocates instead of crossing into its sibling's region.
func (o *ops[K, V, A, T]) twoBlockNode(all []Entry[K, V]) *node[K, V, A] {
	mid := len(all) / 2
	n := o.mkNode(
		o.mkLeafOwned(all[:mid:mid]),
		all[mid].Key, all[mid].Val,
		o.mkLeafOwned(all[mid+1:len(all):len(all)]),
	)
	if o.sch == RedBlack {
		n.aux = rbMake(2, false) // black root over two bh-1 blocks
	}
	return n
}

// expandLeaf converts an owned leaf block into an interior node over two
// half blocks split at the median (nil halves for tiny leaves). Both
// halves are within every scheme's local balance criterion; expansion is
// weight-neutral, so weight-balanced spine descents and rotations may
// apply it freely when they need to look inside a block. Consumes t.
func (o *ops[K, V, A, T]) expandLeaf(t *node[K, V, A]) *node[K, V, A] {
	items := o.leafRead(t)
	mid := len(items) / 2
	l := o.mkLeafCopy(items[:mid])
	r := o.mkLeafCopy(items[mid+1:])
	m := o.alloc(items[mid].Key, items[mid].Val)
	o.dec(t)
	n := o.attach(m, l, r)
	if o.sch == RedBlack {
		// Unreachable from the red-black join (its descents stop at
		// blocks), but keep the expansion closed over all schemes: a red
		// root preserves the block's contextual black height of 1.
		n.aux = rbMake(1, true)
	}
	return n
}
