package core

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/seq"
)

// node is a tree node. One layout serves all four balancing schemes:
// size doubles as the weight-balance criterion and supports rank/select;
// aux holds the AVL height, the red-black color+black-height, or the
// treap priority.
//
// Reference counts implement the paper's functional persistence: a node
// is shared freely between trees, and only a node whose count is 1 may be
// mutated in place (the reuse optimization described in §4 "Persistence").
type node[K, V, A any] struct {
	left, right *node[K, V, A]
	key         K
	val         V
	aug         A
	size        int64
	aux         uint32
	refs        atomic.Int32
}

// Stats tracks node allocation for the space experiments (Table 4). All
// counters are cumulative; Live = Allocated - Freed.
type Stats struct {
	Allocated atomic.Int64
	Freed     atomic.Int64
	Copies    atomic.Int64 // path copies forced by sharing (refs > 1)
	Reuses    atomic.Int64 // in-place reuses permitted by refs == 1
}

// Live reports currently-live node count.
func (s *Stats) Live() int64 { return s.Allocated.Load() - s.Freed.Load() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Allocated.Store(0)
	s.Freed.Store(0)
	s.Copies.Store(0)
	s.Reuses.Store(0)
}

// prioSeed feeds deterministic-but-well-mixed treap priorities.
var prioSeed atomic.Uint64

// ops bundles the traits, scheme, grain, and statistics shared by every
// operation on a tree type. It is embedded by value in Tree handles and
// passed by pointer internally. The zero grain means DefaultGrain.
type ops[K, V, A any, T Traits[K, V, A]] struct {
	tr    T
	sch   Scheme
	grain int64
	stats *Stats
	pool  *sync.Pool // non-nil when node recycling is enabled
}

// DefaultGrain is the subproblem size below which bulk operations stop
// forking. PAM uses a node-count granularity of a few hundred; the same
// magnitude works here. BenchmarkGrainSweep (root bench_test.go) sweeps
// Union/Build/MapReduce over 64..16384 at elevated parallelism; on the
// reference machine every grain lands within ~5% and 1024–4096 sit at
// the minimum, so 1024 stays — re-run the sweep before changing it.
const DefaultGrain = 1024

func (o *ops[K, V, A, T]) grainSize() int64 {
	if o.grain > 0 {
		return o.grain
	}
	return DefaultGrain
}

// size returns the subtree size of t (0 for nil).
func size[K, V, A any](t *node[K, V, A]) int64 {
	if t == nil {
		return 0
	}
	return t.size
}

// weight is size+1, the quantity the weight-balance criterion is defined
// on (so empty subtrees have positive weight).
func weight[K, V, A any](t *node[K, V, A]) int64 { return size(t) + 1 }

// augOf returns the augmented value of t, or the identity for nil.
func (o *ops[K, V, A, T]) augOf(t *node[K, V, A]) A {
	if t == nil {
		return o.tr.Id()
	}
	return t.aug
}

// freedRef is the poisoned refcount of a node sitting in the pool.
// Any release or mutation reaching such a node — a Tree handle used
// after Release, the misuse Config.Pool's invariant forbids — trips a
// panic instead of silently corrupting whatever tree adopts the node
// next. Detection is best-effort: it holds until the pool re-issues
// the node (and the poison write itself gives the race detector a
// racing address for concurrent misuse).
const freedRef = math.MinInt32 / 2

// alloc returns a fresh node with refs == 1 and the scheme's singleton
// aux value. Children, size, aug are set by the caller (via update).
func (o *ops[K, V, A, T]) alloc(k K, v V) *node[K, V, A] {
	var n *node[K, V, A]
	if o.pool != nil {
		if x := o.pool.Get(); x != nil {
			n = x.(*node[K, V, A])
			if n.refs.Load() != freedRef {
				panic("core: pooled node resurrected with a live refcount — tree handle used after Release?")
			}
			*n = node[K, V, A]{}
		}
	}
	if n == nil {
		n = &node[K, V, A]{}
	}
	if o.stats != nil {
		o.stats.Allocated.Add(1)
	}
	n.key = k
	n.val = v
	n.refs.Store(1)
	switch o.sch {
	case AVL:
		n.aux = 1
	case RedBlack:
		n.aux = rbMake(1, false) // fresh singletons are black, bh 1
	case Treap:
		n.aux = uint32(seq.Mix64(prioSeed.Add(0x9e3779b97f4a7c15)))
	}
	return n
}

// singleton builds a one-entry tree.
func (o *ops[K, V, A, T]) singleton(k K, v V) *node[K, V, A] {
	n := o.alloc(k, v)
	n.size = 1
	n.aug = o.tr.Base(k, v)
	return n
}

// update recomputes the derived fields of n (size, augmented value, and
// for AVL the height) from its children. It must be called after any
// change to n's children; n must be exclusively owned (refs == 1 or fresh).
func (o *ops[K, V, A, T]) update(n *node[K, V, A]) {
	n.size = size(n.left) + size(n.right) + 1
	// Two applications of Combine, exactly as §4 "Augmentation":
	// f(A(L), f(g(k, v), A(R))).
	n.aug = o.tr.Combine(o.augOf(n.left), o.tr.Combine(o.tr.Base(n.key, n.val), o.augOf(n.right)))
	if o.sch == AVL {
		n.aux = 1 + max(avlHeight(n.left), avlHeight(n.right))
	}
}

// mkNode allocates a node with the given children and updates it. It
// takes ownership of l and r.
func (o *ops[K, V, A, T]) mkNode(l *node[K, V, A], k K, v V, r *node[K, V, A]) *node[K, V, A] {
	n := o.alloc(k, v)
	n.left, n.right = l, r
	o.update(n)
	return n
}

// inc takes an additional reference to t (no-op for nil).
func inc[K, V, A any](t *node[K, V, A]) *node[K, V, A] {
	if t != nil {
		t.refs.Add(1)
	}
	return t
}

// dec releases one reference to t; at zero the node is freed and its
// children released recursively. The recursion depth is the tree height,
// which is O(log n) for every scheme, so plain recursion is safe.
func (o *ops[K, V, A, T]) dec(t *node[K, V, A]) {
	if t == nil {
		return
	}
	if n := t.refs.Add(-1); n != 0 {
		if n < freedRef/2 {
			panic("core: releasing an already-freed node — tree handle used after Release?")
		}
		return
	}
	l, r := t.left, t.right
	o.free(t)
	o.dec(l)
	o.dec(r)
}

// free recycles a dead node. The children must already have been
// released; the caller observed the refcount hit zero. Pooled nodes
// are poisoned (see freedRef) so stale handles fail loudly.
func (o *ops[K, V, A, T]) free(t *node[K, V, A]) {
	if o.stats != nil {
		o.stats.Freed.Add(1)
	}
	if o.pool != nil {
		t.left, t.right = nil, nil
		t.refs.Store(freedRef)
		o.pool.Put(t)
	}
}

// mutable returns a node with the contents of t that the caller may
// mutate: t itself when the caller holds the only reference, otherwise a
// copy (with child references taken) while t's own reference is dropped.
// t must be non-nil and owned by the caller.
func (o *ops[K, V, A, T]) mutable(t *node[K, V, A]) *node[K, V, A] {
	if r := t.refs.Load(); r == 1 {
		if o.stats != nil {
			o.stats.Reuses.Add(1)
		}
		return t
	} else if r < freedRef/2 {
		panic("core: mutating an already-freed node — tree handle used after Release?")
	}
	n := o.alloc(t.key, t.val)
	n.left, n.right = inc(t.left), inc(t.right)
	n.size, n.aug, n.aux = t.size, t.aug, t.aux
	if o.stats != nil {
		o.stats.Copies.Add(1)
	}
	// Drop the caller's reference to t. The count cannot hit zero here:
	// we observed refs > 1 and this caller held one of those references,
	// and no other thread can concurrently release references it does
	// not own.
	t.refs.Add(-1)
	return n
}

// detach dismantles an owned node, transferring ownership of its children
// to the caller and releasing (or reusing) the node itself. It returns
// the children. Used by split/union to consume input trees.
func (o *ops[K, V, A, T]) detach(t *node[K, V, A]) (l, r *node[K, V, A]) {
	l, r = t.left, t.right
	if t.refs.Add(-1) == 0 {
		o.free(t)
	} else {
		// Other trees still reference t (and through it, its children):
		// take fresh references for the caller.
		inc(l)
		inc(r)
	}
	return l, r
}

// Ownership discipline (mirrors PAM's reference-counting GC):
//
//   - Functions that *consume* a tree argument receive one reference and
//     must account for it: pass it on, detach it, or dec it.
//   - Before mutating any owned node, call mutable; afterwards its child
//     pointers may be reassigned freely — the node holds one reference to
//     each child, and moving a pointer moves that reference. A child
//     pointer passed to a consuming call transfers its reference.
//   - Borrowing (read-only) functions never touch counts; when they embed
//     a borrowed subtree into a new tree they inc it first.

// decParallel is dec with the recursive child releases forked in
// parallel for large subtrees. Used by Tree.ReleaseParallel.
func (o *ops[K, V, A, T]) decParallel(t *node[K, V, A]) {
	if t == nil {
		return
	}
	if t.refs.Add(-1) != 0 {
		return
	}
	l, r := t.left, t.right
	big := size(l)+size(r) > o.grainSize()
	o.free(t)
	parallel.DoIf(big,
		func() { o.decParallel(l) },
		func() { o.decParallel(r) },
	)
}
