package core

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func testCodec() *Codec[int, int64] {
	return &Codec[int, int64]{
		AppendKey: func(buf []byte, k int) []byte { return binary.AppendVarint(buf, int64(k)) },
		KeyAt: func(data []byte) (int, int, error) {
			v, n := binary.Varint(data)
			if n <= 0 {
				return 0, 0, ErrCorrupt
			}
			return int(v), n, nil
		},
		AppendVal: func(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) },
		ValAt: func(data []byte) (int64, int, error) {
			v, n := binary.Varint(data)
			if n <= 0 {
				return 0, 0, ErrCorrupt
			}
			return v, n, nil
		},
	}
}

// TestEncodeDecodeRoundTrip encodes and decodes trees of every scheme
// and several block sizes, checking exact contents and full structural
// validity (including recomputed augmented values) of the decoded tree.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for sch := Scheme(0); sch < NumSchemes; sch++ {
		for _, block := range []int{0, 2, 5} {
			for _, n := range []int{0, 1, 7, 300} {
				cfg := Config{Scheme: sch, Block: block}
				tr := New[int, int64, int64, sumTraits](cfg)
				for i := 0; i < n; i++ {
					tr = tr.Insert((i*37)%(2*n+1), int64(i))
				}
				rs := NewRecordSet[int, int64, int64]()
				buf, root, wrote := EncodeDelta(tr, rs, testCodec(), nil)
				if n == 0 && (root != 0 || wrote != 0 || len(buf) != 0) {
					t.Fatalf("empty tree encoded to %d records, root %d", wrote, root)
				}
				tb := NewDecodeTable[int, int64, int64, sumTraits](cfg)
				rest, err := tb.DecodeRecords(testCodec(), buf, wrote)
				if err != nil {
					t.Fatalf("scheme %v block %d n %d: decode: %v", sch, block, n, err)
				}
				if len(rest) != 0 {
					t.Fatalf("decode left %d bytes", len(rest))
				}
				got, err := tb.Tree(root)
				if err != nil {
					t.Fatalf("Tree(%d): %v", root, err)
				}
				if err := got.Validate(func(a, b int64) bool { return a == b }); err != nil {
					t.Fatalf("scheme %v block %d n %d: decoded tree invalid: %v", sch, block, n, err)
				}
				we, ge := tr.Entries(), got.Entries()
				if len(we) != len(ge) {
					t.Fatalf("decoded %d entries, want %d", len(ge), len(we))
				}
				for i := range we {
					if we[i] != ge[i] {
						t.Fatalf("entry %d = %v, want %v", i, ge[i], we[i])
					}
				}
				if tr.AugVal() != got.AugVal() {
					t.Fatalf("AugVal = %d, want %d", got.AugVal(), tr.AugVal())
				}
			}
		}
	}
}

// TestEncodeDeltaShares checks that a second tree sharing structure
// with an already-encoded one writes only its unshared nodes, and that
// both decoded trees reproduce the sharing (decode each root from one
// table and compare).
func TestEncodeDeltaShares(t *testing.T) {
	tr := New[int, int64, int64, sumTraits](Config{})
	for i := 0; i < 5000; i++ {
		tr = tr.Insert(i, int64(i))
	}
	rs := NewRecordSet[int, int64, int64]()
	buf, root0, wrote0 := EncodeDelta(tr, rs, testCodec(), nil)
	tr2 := tr.Insert(5000, 5000).Insert(-3, 1).Delete(17)
	buf, root1, wrote1 := EncodeDelta(tr2, rs, testCodec(), buf)
	if wrote1 >= wrote0/4 {
		t.Fatalf("delta after 3 updates wrote %d records vs %d for the base — not incremental", wrote1, wrote0)
	}
	tb := NewDecodeTable[int, int64, int64, sumTraits](Config{})
	rest, err := tb.DecodeRecords(testCodec(), buf, wrote0+wrote1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d bytes", len(rest))
	}
	for _, tc := range []struct {
		id   uint64
		want Tree[int, int64, int64, sumTraits]
	}{{root0, tr}, {root1, tr2}} {
		got, err := tb.Tree(tc.id)
		if err != nil {
			t.Fatalf("Tree(%d): %v", tc.id, err)
		}
		if err := got.Validate(func(a, b int64) bool { return a == b }); err != nil {
			t.Fatalf("decoded tree invalid: %v", err)
		}
		if got.Size() != tc.want.Size() || got.AugVal() != tc.want.AugVal() {
			t.Fatalf("decoded tree size/aug = %d/%d, want %d/%d",
				got.Size(), got.AugVal(), tc.want.Size(), tc.want.AugVal())
		}
	}
}

// TestEncodeDeltaPolylog is the incremental-checkpoint cost bound: a
// delta after k updates to an n-entry tree writes O(k · log n) records
// (each update path-copies O(log n) interior nodes plus one leaf
// block), far below the O(n/B + n-ish) records of a full encoding.
func TestEncodeDeltaPolylog(t *testing.T) {
	const n = 1 << 16
	tr := New[int, int64, int64, sumTraits](Config{})
	items := make([]Entry[int, int64], n)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i, Val: int64(i)}
	}
	tr = tr.BuildSorted(items)
	rs := NewRecordSet[int, int64, int64]()
	_, _, full := EncodeDelta(tr, rs, testCodec(), nil)

	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 16, 256} {
		t2 := tr
		for i := 0; i < k; i++ {
			t2 = t2.Insert(rng.Intn(2*n), int64(i))
		}
		_, _, wrote := EncodeDelta(t2, rs, testCodec(), nil)
		logn := math.Log2(n)
		// Per update: ≤ ~log n interior copies + a handful of leaf
		// blocks (an insert can split one block into two plus touch a
		// neighbor). The constant 4 absorbs rebalancing copies.
		bound := int(4*logn+8) * k
		if wrote > bound {
			t.Fatalf("delta after %d updates wrote %d records, bound %d (full encoding: %d)", k, wrote, bound, full)
		}
		if wrote >= full/4 {
			t.Fatalf("delta after %d updates wrote %d records, full encoding only %d — not incremental", k, wrote, full)
		}
		tr = t2 // chain the checkpoints like the serving layer does
	}
}

// TestDecodeCorrupt feeds malformed streams to the decoder: every
// mutation must produce an error or a tree that fails Validate — never
// a panic, never a silently wrong tree.
func TestDecodeCorrupt(t *testing.T) {
	tr := New[int, int64, int64, sumTraits](Config{})
	for i := 0; i < 500; i++ {
		tr = tr.Insert(i*3, int64(i))
	}
	rs := NewRecordSet[int, int64, int64]()
	buf, root, wrote := EncodeDelta(tr, rs, testCodec(), nil)
	want := tr.Entries()

	check := func(name string, data []byte) {
		t.Helper()
		tb := NewDecodeTable[int, int64, int64, sumTraits](Config{})
		rest, err := tb.DecodeRecords(testCodec(), data, wrote)
		if err != nil {
			return // rejected: good
		}
		if len(rest) != 0 {
			return // trailing garbage detected by the caller's framing
		}
		got, err := tb.Tree(root)
		if err != nil {
			return
		}
		if err := got.Validate(func(a, b int64) bool { return a == b }); err != nil {
			return // structurally rejected: good
		}
		// It decoded and validated: it must then be byte-identical input
		// or at least the same logical contents.
		ge := got.Entries()
		if len(ge) != len(want) {
			t.Errorf("%s: corrupt stream decoded+validated to %d entries (want %d)", name, len(ge), len(want))
		}
	}

	// Truncations at every prefix length (sampled).
	for cut := 0; cut < len(buf); cut += 17 {
		check("truncate", buf[:cut])
	}
	// Single bit flips (sampled).
	for pos := 0; pos < len(buf); pos += 13 {
		mut := append([]byte(nil), buf...)
		mut[pos] ^= 1 << (pos % 8)
		check("bitflip", mut)
	}
	// Duplicate a record's bytes (prefix doubling).
	dup := append(append([]byte(nil), buf[:40]...), buf...)
	check("dup", dup)
}
