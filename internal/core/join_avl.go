package core

// AVL join (SPAA'16, Figure 1). The aux word stores subtree height;
// update() maintains it. A leaf block has height 1 regardless of how
// many entries it holds, so the AVL criterion balances the interior
// skeleton above the blocks.
//
// Blocked layout notes: the spine descent can never step *into* a block
// (a block's height is 1, and the descent stops at the first subtree c
// with h(c) <= h(r)+1, which any block satisfies since h(r) >= 0). The
// one place a block can become a rotation pivot is the double-rotation
// case with c a block and r empty/shallow; there the block is first
// expanded at its median (making c an interior node of height <= 2) and
// the step retried, after which the standard rotations apply.

func avlHeight[K, V, A any](t *node[K, V, A]) uint32 {
	if t == nil {
		return 0
	}
	return t.aux
}

func (o *ops[K, V, A, T]) joinAVL(l, m, r *node[K, V, A]) *node[K, V, A] {
	hl, hr := avlHeight(l), avlHeight(r)
	switch {
	case hl > hr+1:
		return o.joinRightAVL(l, m, r)
	case hr > hl+1:
		return o.joinLeftAVL(l, m, r)
	default:
		return o.attach(m, l, r)
	}
}

// joinRightAVL handles h(l) > h(r)+1: descend l's right spine to the
// first subtree c with h(c) <= h(r)+1, attach there, and rebalance on the
// way up with at most one rotation per level.
func (o *ops[K, V, A, T]) joinRightAVL(l, m, r *node[K, V, A]) *node[K, V, A] {
	l = o.mutable(l)
	c := l.right
	if avlHeight(c) <= avlHeight(r)+1 {
		// Double rotation fires when Node(c, m, r) would be two taller
		// than l.left (only possible with h(c) == h(r)+1). Its first
		// rotation pivots on c; a leaf block there is expanded at its
		// median first and the step retried (the expanded c is interior,
		// and if its height grew the retry descends into it instead).
		if max(avlHeight(c), avlHeight(r))+1 > avlHeight(l.left)+1 && isLeaf(c) {
			l.right = o.expandLeaf(c)
			o.update(l)
			return o.joinRightAVL(l, m, r)
		}
		t := o.attach(m, c, r)
		if avlHeight(t) <= avlHeight(l.left)+1 {
			l.right = t
			o.update(l)
			return l
		}
		l.right = o.rotateRight(t)
		o.update(l)
		return o.rotateLeft(l)
	}
	t := o.joinRightAVL(c, m, r)
	l.right = t
	o.update(l)
	if avlHeight(t) > avlHeight(l.left)+1 {
		return o.rotateLeft(l)
	}
	return l
}

func (o *ops[K, V, A, T]) joinLeftAVL(l, m, r *node[K, V, A]) *node[K, V, A] {
	r = o.mutable(r)
	c := r.left
	if avlHeight(c) <= avlHeight(l)+1 {
		if max(avlHeight(c), avlHeight(l))+1 > avlHeight(r.right)+1 && isLeaf(c) {
			r.left = o.expandLeaf(c)
			o.update(r)
			return o.joinLeftAVL(l, m, r)
		}
		t := o.attach(m, l, c)
		if avlHeight(t) <= avlHeight(r.right)+1 {
			r.left = t
			o.update(r)
			return r
		}
		r.left = o.rotateLeft(t)
		o.update(r)
		return o.rotateRight(r)
	}
	t := o.joinLeftAVL(l, m, c)
	r.left = t
	o.update(r)
	if avlHeight(t) > avlHeight(r.right)+1 {
		return o.rotateRight(r)
	}
	return r
}
