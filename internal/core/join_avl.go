package core

// AVL join (SPAA'16, Figure 1). The aux word stores subtree height;
// update() maintains it.

func avlHeight[K, V, A any](t *node[K, V, A]) uint32 {
	if t == nil {
		return 0
	}
	return t.aux
}

func (o *ops[K, V, A, T]) joinAVL(l, m, r *node[K, V, A]) *node[K, V, A] {
	hl, hr := avlHeight(l), avlHeight(r)
	switch {
	case hl > hr+1:
		return o.joinRightAVL(l, m, r)
	case hr > hl+1:
		return o.joinLeftAVL(l, m, r)
	default:
		return o.attach(m, l, r)
	}
}

// joinRightAVL handles h(l) > h(r)+1: descend l's right spine to the
// first subtree c with h(c) <= h(r)+1, attach there, and rebalance on the
// way up with at most one rotation per level.
func (o *ops[K, V, A, T]) joinRightAVL(l, m, r *node[K, V, A]) *node[K, V, A] {
	l = o.mutable(l)
	c := l.right
	if avlHeight(c) <= avlHeight(r)+1 {
		t := o.attach(m, c, r)
		if avlHeight(t) <= avlHeight(l.left)+1 {
			l.right = t
			o.update(l)
			return l
		}
		// t = Node(c, m, r) is two taller than l.left, which can only
		// happen when h(c) == h(r)+1: double rotation.
		l.right = o.rotateRight(t)
		o.update(l)
		return o.rotateLeft(l)
	}
	t := o.joinRightAVL(c, m, r)
	l.right = t
	o.update(l)
	if avlHeight(t) > avlHeight(l.left)+1 {
		return o.rotateLeft(l)
	}
	return l
}

func (o *ops[K, V, A, T]) joinLeftAVL(l, m, r *node[K, V, A]) *node[K, V, A] {
	r = o.mutable(r)
	c := r.left
	if avlHeight(c) <= avlHeight(l)+1 {
		t := o.attach(m, l, c)
		if avlHeight(t) <= avlHeight(r.right)+1 {
			r.left = t
			o.update(r)
			return r
		}
		r.left = o.rotateLeft(t)
		o.update(r)
		return o.rotateRight(r)
	}
	t := o.joinLeftAVL(l, m, c)
	r.left = t
	o.update(r)
	if avlHeight(t) > avlHeight(r.right)+1 {
		return o.rotateRight(r)
	}
	return r
}
