package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

// sumTraits: integer keys, int64 values, augmented by value sum — the
// paper's Equation 1 map type.
type sumTraits struct{}

func (sumTraits) Less(a, b int) bool        { return a < b }
func (sumTraits) Id() int64                 { return 0 }
func (sumTraits) Base(_ int, v int64) int64 { return v }
func (sumTraits) Combine(x, y int64) int64  { return x + y }

// maxTraits: augmented by max value, identity minInt64.
type maxTraits struct{}

const negInf = int64(-1 << 62)

func (maxTraits) Less(a, b int) bool        { return a < b }
func (maxTraits) Id() int64                 { return negInf }
func (maxTraits) Base(_ int, v int64) int64 { return v }
func (maxTraits) Combine(x, y int64) int64  { return max(x, y) }

// noAugTraits: plain map, no augmentation.
type noAugTraits struct{}

func (noAugTraits) Less(a, b int) bool                  { return a < b }
func (noAugTraits) Id() struct{}                        { return struct{}{} }
func (noAugTraits) Base(int, int64) struct{}            { return struct{}{} }
func (noAugTraits) Combine(struct{}, struct{}) struct{} { return struct{}{} }

// cmpCount counts comparisons for the empirical work-bound tests
// (Table 2). countingTraits must stay zero-size so the global is shared.
var cmpCount atomic.Int64

type countingTraits struct{}

func (countingTraits) Less(a, b int) bool        { cmpCount.Add(1); return a < b }
func (countingTraits) Id() int64                 { return 0 }
func (countingTraits) Base(_ int, v int64) int64 { return v }
func (countingTraits) Combine(x, y int64) int64  { return x + y }

type sumTree = Tree[int, int64, int64, sumTraits]

func i64eq(a, b int64) bool { return a == b }

var allSchemes = []Scheme{WeightBalanced, AVL, RedBlack, Treap}

func newSum(sch Scheme) sumTree {
	return New[int, int64, int64, sumTraits](Config{Scheme: sch})
}

// model is the reference implementation every scheme is checked against.
type model map[int]int64

func (m model) entries() []Entry[int, int64] {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Entry[int, int64], len(keys))
	for i, k := range keys {
		out[i] = Entry[int, int64]{Key: k, Val: m[k]}
	}
	return out
}

// mustMatch verifies that t holds exactly the model's entries and that
// all invariants hold.
func mustMatch(t *testing.T, tr sumTree, m model) {
	t.Helper()
	if err := tr.Validate(i64eq); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	got := tr.Entries()
	want := m.entries()
	if len(got) != len(want) {
		t.Fatalf("size: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func forAllSchemes(t *testing.T, f func(t *testing.T, sch Scheme)) {
	t.Helper()
	for _, sch := range allSchemes {
		t.Run(sch.String(), func(t *testing.T) { f(t, sch) })
	}
}

func TestEmptyTree(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		tr := newSum(sch)
		if !tr.IsEmpty() || tr.Size() != 0 {
			t.Fatal("new tree not empty")
		}
		if _, ok := tr.Find(1); ok {
			t.Fatal("found key in empty tree")
		}
		if got := tr.AugVal(); got != 0 {
			t.Fatalf("AugVal of empty: %d", got)
		}
		if err := tr.Validate(i64eq); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := tr.First(); ok {
			t.Fatal("First on empty returned ok")
		}
		if _, _, ok := tr.Last(); ok {
			t.Fatal("Last on empty returned ok")
		}
	})
}

func TestZeroValueTreeUsable(t *testing.T) {
	var tr sumTree // zero value: weight-balanced, default grain
	tr = tr.Insert(1, 10).Insert(2, 20)
	if v, ok := tr.Find(2); !ok || v != 20 {
		t.Fatalf("zero-value tree broken: %v %v", v, ok)
	}
	if tr.AugVal() != 30 {
		t.Fatalf("AugVal = %d", tr.AugVal())
	}
}

func TestInsertFindDelete(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(1))
		tr := newSum(sch)
		m := model{}
		for i := 0; i < 3000; i++ {
			k := rng.Intn(1000)
			v := int64(rng.Intn(100))
			tr = tr.Insert(k, v)
			m[k] = v
		}
		mustMatch(t, tr, m)
		// Delete half the present keys and some absent ones.
		for k := range m {
			if k%2 == 0 {
				tr = tr.Delete(k)
				delete(m, k)
			}
		}
		tr = tr.Delete(-5).Delete(10_000)
		mustMatch(t, tr, m)
		for k, v := range m {
			got, ok := tr.Find(k)
			if !ok || got != v {
				t.Fatalf("Find(%d) = %d,%v want %d", k, got, ok, v)
			}
		}
	})
}

func TestInsertWith(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		tr := newSum(sch)
		add := func(old, new int64) int64 { return old + new }
		for i := 0; i < 10; i++ {
			tr = tr.InsertWith(7, 1, add)
		}
		if v, _ := tr.Find(7); v != 10 {
			t.Fatalf("InsertWith accumulated %d, want 10", v)
		}
		if tr.Size() != 1 {
			t.Fatalf("size %d", tr.Size())
		}
	})
}

func TestOrderedQueries(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		tr := newSum(sch)
		// keys 0, 10, 20, ..., 990
		for i := 0; i < 100; i++ {
			tr = tr.Insert(i*10, int64(i))
		}
		if k, _, _ := tr.First(); k != 0 {
			t.Fatalf("First = %d", k)
		}
		if k, _, _ := tr.Last(); k != 990 {
			t.Fatalf("Last = %d", k)
		}
		if k, _, ok := tr.Previous(55); !ok || k != 50 {
			t.Fatalf("Previous(55) = %d, %v", k, ok)
		}
		if k, _, ok := tr.Previous(50); !ok || k != 40 {
			t.Fatalf("Previous(50) = %d (strictly-less expected 40)", k)
		}
		if _, _, ok := tr.Previous(0); ok {
			t.Fatal("Previous(0) should not exist")
		}
		if k, _, ok := tr.Next(55); !ok || k != 60 {
			t.Fatalf("Next(55) = %d, %v", k, ok)
		}
		if k, _, ok := tr.Next(50); !ok || k != 60 {
			t.Fatalf("Next(50) = %d", k)
		}
		if _, _, ok := tr.Next(990); ok {
			t.Fatal("Next(990) should not exist")
		}
		if r := tr.Rank(500); r != 50 {
			t.Fatalf("Rank(500) = %d", r)
		}
		if r := tr.Rank(505); r != 51 {
			t.Fatalf("Rank(505) = %d", r)
		}
		if r := tr.Rank(-1); r != 0 {
			t.Fatalf("Rank(-1) = %d", r)
		}
		if r := tr.Rank(10_000); r != 100 {
			t.Fatalf("Rank(10000) = %d", r)
		}
		for i := int64(0); i < 100; i++ {
			k, v, ok := tr.Select(i)
			if !ok || k != int(i*10) || v != i {
				t.Fatalf("Select(%d) = %d,%d,%v", i, k, v, ok)
			}
		}
		if _, _, ok := tr.Select(100); ok {
			t.Fatal("Select(100) out of range should fail")
		}
		if _, _, ok := tr.Select(-1); ok {
			t.Fatal("Select(-1) should fail")
		}
	})
}

func TestRankSelectInverse(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(5))
		tr := newSum(sch)
		seen := map[int]bool{}
		for len(seen) < 500 {
			k := rng.Intn(100000)
			if !seen[k] {
				seen[k] = true
				tr = tr.Insert(k, 1)
			}
		}
		for i := int64(0); i < tr.Size(); i++ {
			k, _, ok := tr.Select(i)
			if !ok {
				t.Fatalf("Select(%d) failed", i)
			}
			if r := tr.Rank(k); r != i {
				t.Fatalf("Rank(Select(%d)) = %d", i, r)
			}
		}
	})
}

func TestHeightLogarithmic(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		tr := newSum(sch)
		n := 1 << 14
		// Adversarial sorted insertion.
		for i := 0; i < n; i++ {
			tr.InsertInPlace(i, int64(i))
		}
		h := tr.Height()
		limit := 3 * 14 // generous: 3 log2(n), treap included
		if sch == Treap {
			limit = 6 * 14
		}
		if h > limit {
			t.Fatalf("height %d exceeds %d for n=%d", h, limit, n)
		}
		if err := tr.Validate(i64eq); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRandomOpSequenceMatchesModel(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(42))
		tr := newSum(sch)
		m := model{}
		for step := 0; step < 2000; step++ {
			k := rng.Intn(300)
			switch rng.Intn(3) {
			case 0, 1:
				v := int64(rng.Intn(1000))
				tr = tr.Insert(k, v)
				m[k] = v
			case 2:
				tr = tr.Delete(k)
				delete(m, k)
			}
			if step%250 == 0 {
				mustMatch(t, tr, m)
			}
		}
		mustMatch(t, tr, m)
	})
}

func TestStringOfSchemes(t *testing.T) {
	names := map[string]bool{}
	for _, sch := range allSchemes {
		names[sch.String()] = true
	}
	if len(names) != NumSchemes {
		t.Fatalf("scheme names not distinct: %v", names)
	}
	if Scheme(99).String() != "unknown-scheme" {
		t.Fatal("unknown scheme String")
	}
}

func TestForEachAndAll(t *testing.T) {
	tr := newSum(WeightBalanced)
	for i := 0; i < 50; i++ {
		tr = tr.Insert(i, int64(i))
	}
	var got []int
	tr.ForEach(func(k int, _ int64) bool {
		got = append(got, k)
		return k < 25 // early stop
	})
	if len(got) != 26 {
		t.Fatalf("early stop visited %d entries", len(got))
	}
	count := 0
	for k, v := range tr.All() {
		if int64(k) != v {
			t.Fatalf("All() mismatched entry %d=%d", k, v)
		}
		count++
	}
	if count != 50 {
		t.Fatalf("All() visited %d", count)
	}
}

func TestMapValues(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		tr := newSum(sch)
		for i := 0; i < 100; i++ {
			tr = tr.Insert(i, int64(i))
		}
		dbl := tr.MapValues(func(_ int, v int64) int64 { return v * 2 })
		if err := dbl.Validate(i64eq); err != nil {
			t.Fatal(err)
		}
		if got := dbl.AugVal(); got != 99*100 {
			t.Fatalf("AugVal after MapValues = %d", got)
		}
		// Original untouched (persistence).
		if got := tr.AugVal(); got != 99*100/2 {
			t.Fatalf("original changed: %d", got)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	st := &Stats{}
	tr := New[int, int64, int64, sumTraits](Config{Stats: st})
	for i := 0; i < 100; i++ {
		tr.InsertInPlace(i, 1)
	}
	// Blocked layout: 100 entries fit in a handful of leaf blocks plus
	// interior nodes — far fewer allocations than entries, but well more
	// than zero, and every block shows up in the leaf counters.
	if a := st.Allocated.Load(); a < 4 || a >= 100 {
		t.Fatalf("allocated %d nodes for 100 entries; want a few dozen at most", a)
	}
	if st.LeafAllocated.Load() == 0 {
		t.Fatal("no leaf blocks allocated")
	}
	if st.LiveLeaves() <= 0 || st.LiveLeaves() > st.Live() {
		t.Fatalf("live leaves %d out of range (live %d)", st.LiveLeaves(), st.Live())
	}
	if st.Live() <= 0 {
		t.Fatalf("live %d", st.Live())
	}
	before := st.Live()
	tr.Release()
	if st.Live() >= before {
		t.Fatalf("release did not free: live %d -> %d", before, st.Live())
	}
	st.Reset()
	if st.Allocated.Load() != 0 || st.Live() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestPooledAllocatorReusesNodes(t *testing.T) {
	st := &Stats{}
	tr := New[int, int64, int64, sumTraits](Config{Stats: st, Pool: true})
	for i := 0; i < 1000; i++ {
		tr.InsertInPlace(i, 1)
	}
	tr.Release()
	tr2 := New[int, int64, int64, sumTraits](Config{Stats: st, Pool: true})
	for i := 0; i < 1000; i++ {
		tr2.InsertInPlace(i, 1)
	}
	if err := tr2.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
	tr2.Release()
	if st.Live() != 0 {
		t.Fatalf("leak: %d live nodes after releasing everything", st.Live())
	}
}

func ExampleTree_AugRange() {
	// The paper's Equation 1: sum of values, queried over a key range.
	tr := New[int, int64, int64, sumTraits](Config{})
	for i := 1; i <= 100; i++ {
		tr.InsertInPlace(i, int64(i))
	}
	fmt.Println(tr.AugRange(10, 20))
	fmt.Println(tr.AugVal())
	// Output:
	// 165
	// 5050
}
