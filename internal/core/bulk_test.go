package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func fromKeys(sch Scheme, keys []int) (sumTree, model) {
	tr := newSum(sch)
	m := model{}
	for _, k := range keys {
		tr = tr.Insert(k, int64(k))
		m[k] = int64(k)
	}
	return tr, m
}

func randKeys(rng *rand.Rand, n, space int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(space)
	}
	return out
}

func TestUnionMatchesModel(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 20; trial++ {
			n1, n2 := rng.Intn(400), rng.Intn(400)
			t1, m1 := fromKeys(sch, randKeys(rng, n1, 500))
			t2, m2 := fromKeys(sch, randKeys(rng, n2, 500))
			u := t1.Union(t2)
			mu := model{}
			for k, v := range m1 {
				mu[k] = v
			}
			for k, v := range m2 {
				mu[k] = v // right wins
			}
			mustMatch(t, u, mu)
			// Inputs unchanged (persistence).
			mustMatch(t, t1, m1)
			mustMatch(t, t2, m2)
		}
	})
}

func TestUnionWithCombine(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		t1, _ := fromKeys(sch, []int{1, 2, 3, 4})
		t2, _ := fromKeys(sch, []int{3, 4, 5, 6})
		u := t1.UnionWith(t2, func(a, b int64) int64 { return a + b })
		if v, _ := u.Find(3); v != 6 {
			t.Fatalf("combined value at 3: %d", v)
		}
		if v, _ := u.Find(1); v != 1 {
			t.Fatalf("value at 1: %d", v)
		}
		if u.Size() != 6 {
			t.Fatalf("size %d", u.Size())
		}
		if err := u.Validate(i64eq); err != nil {
			t.Fatal(err)
		}
	})
}

func TestUnionEdgeCases(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		empty := newSum(sch)
		t1, m1 := fromKeys(sch, []int{1, 2, 3})
		mustMatch(t, empty.Union(t1), m1)
		mustMatch(t, t1.Union(empty), m1)
		mustMatch(t, empty.Union(empty), model{})
		mustMatch(t, t1.Union(t1), m1) // self-union
	})
}

func TestIntersectMatchesModel(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(10))
		for trial := 0; trial < 20; trial++ {
			t1, m1 := fromKeys(sch, randKeys(rng, rng.Intn(300), 200))
			t2, m2 := fromKeys(sch, randKeys(rng, rng.Intn(300), 200))
			in := t1.IntersectWith(t2, func(a, b int64) int64 { return a * 1000 })
			mi := model{}
			for k := range m1 {
				if _, ok := m2[k]; ok {
					mi[k] = int64(k) * 1000
				}
			}
			mustMatch(t, in, mi)
			mustMatch(t, t1, m1)
			mustMatch(t, t2, m2)
		}
	})
}

func TestIntersectEdgeCases(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		empty := newSum(sch)
		t1, m1 := fromKeys(sch, []int{1, 2, 3})
		t2, _ := fromKeys(sch, []int{10, 20})
		mustMatch(t, t1.Intersect(empty), model{})
		mustMatch(t, empty.Intersect(t1), model{})
		mustMatch(t, t1.Intersect(t2), model{})
		mustMatch(t, t1.Intersect(t1), m1)
	})
}

func TestDifferenceMatchesModel(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 20; trial++ {
			t1, m1 := fromKeys(sch, randKeys(rng, rng.Intn(300), 200))
			t2, m2 := fromKeys(sch, randKeys(rng, rng.Intn(300), 200))
			d := t1.Difference(t2)
			md := model{}
			for k, v := range m1 {
				if _, ok := m2[k]; !ok {
					md[k] = v
				}
			}
			mustMatch(t, d, md)
			mustMatch(t, t1, m1)
			mustMatch(t, t2, m2)
		}
	})
}

func TestDifferenceEdgeCases(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		empty := newSum(sch)
		t1, m1 := fromKeys(sch, []int{1, 2, 3})
		mustMatch(t, t1.Difference(t1), model{})
		mustMatch(t, t1.Difference(empty), m1)
		mustMatch(t, empty.Difference(t1), model{})
	})
}

func TestSplitJoinRoundTrip(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(12))
		tr, m := fromKeys(sch, randKeys(rng, 500, 1000))
		for trial := 0; trial < 30; trial++ {
			k := rng.Intn(1000)
			l, v, found, r := tr.Split(k)
			if err := l.Validate(i64eq); err != nil {
				t.Fatalf("left: %v", err)
			}
			if err := r.Validate(i64eq); err != nil {
				t.Fatalf("right: %v", err)
			}
			_, inModel := m[k]
			if found != inModel {
				t.Fatalf("Split(%d) found=%v, model=%v", k, found, inModel)
			}
			l.ForEach(func(kk int, _ int64) bool {
				if kk >= k {
					t.Errorf("left side has key %d >= %d", kk, k)
				}
				return true
			})
			r.ForEach(func(kk int, _ int64) bool {
				if kk <= k {
					t.Errorf("right side has key %d <= %d", kk, k)
				}
				return true
			})
			// Rejoin and compare with the original.
			var back sumTree
			if found {
				back = l.Join(k, v, r)
			} else {
				back = l.Concat(r)
			}
			mustMatch(t, back, m)
			mustMatch(t, tr, m) // original intact
		}
	})
}

func TestConcatEmpty(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		empty := newSum(sch)
		t1, m1 := fromKeys(sch, []int{1, 2, 3})
		mustMatch(t, empty.Concat(t1), m1)
		mustMatch(t, t1.Concat(empty), m1)
		mustMatch(t, empty.Concat(empty), model{})
	})
}

// Property: union is associative and commutative on key sets, and
// size(union) = |keys1 ∪ keys2| — checked with testing/quick over all
// schemes.
func TestUnionPropertyQuick(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		f := func(a, b, c []uint8) bool {
			ta, _ := fromKeys(sch, bytesToInts(a))
			tb, _ := fromKeys(sch, bytesToInts(b))
			tc, _ := fromKeys(sch, bytesToInts(c))
			left := ta.Union(tb).Union(tc)
			right := ta.Union(tb.Union(tc))
			if left.Size() != right.Size() {
				return false
			}
			if err := left.Validate(i64eq); err != nil {
				return false
			}
			le, re := left.Entries(), right.Entries()
			for i := range le {
				if le[i].Key != re[i].Key {
					return false
				}
			}
			set := map[int]bool{}
			for _, k := range bytesToInts(a) {
				set[k] = true
			}
			for _, k := range bytesToInts(b) {
				set[k] = true
			}
			for _, k := range bytesToInts(c) {
				set[k] = true
			}
			return int(left.Size()) == len(set)
		}
		cfg := &quick.Config{MaxCount: 50}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// Property: intersect distributes over union on key sets:
// a ∩ (b ∪ c) == (a ∩ b) ∪ (a ∩ c).
func TestIntersectUnionDistributivityQuick(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		f := func(a, b, c []uint8) bool {
			ta, _ := fromKeys(sch, bytesToInts(a))
			tb, _ := fromKeys(sch, bytesToInts(b))
			tc, _ := fromKeys(sch, bytesToInts(c))
			lhs := ta.Intersect(tb.Union(tc))
			rhs := ta.Intersect(tb).Union(ta.Intersect(tc))
			if lhs.Size() != rhs.Size() {
				return false
			}
			le, re := lhs.Entries(), rhs.Entries()
			for i := range le {
				if le[i].Key != re[i].Key {
					return false
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 50}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

func bytesToInts(b []uint8) []int {
	out := make([]int, len(b))
	for i, x := range b {
		out[i] = int(x)
	}
	return out
}

func TestUnionLargeParallel(t *testing.T) {
	// Large enough to exercise the parallel paths (grain is 1024).
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		rng := rand.New(rand.NewSource(13))
		n := 50000
		t1, m1 := fromKeysBulk(sch, randKeys(rng, n, n*4))
		t2, m2 := fromKeysBulk(sch, randKeys(rng, n, n*4))
		u := t1.Union(t2)
		if err := u.Validate(i64eq); err != nil {
			t.Fatal(err)
		}
		mu := model{}
		for k, v := range m1 {
			mu[k] = v
		}
		for k, v := range m2 {
			mu[k] = v
		}
		if int(u.Size()) != len(mu) {
			t.Fatalf("union size %d want %d", u.Size(), len(mu))
		}
		for k, v := range mu {
			if got, ok := u.Find(k); !ok || got != v {
				t.Fatalf("Find(%d)=%d,%v want %d", k, got, ok, v)
			}
		}
	})
}

// fromKeysBulk builds via Build (exercising sort+dedup+join-build).
func fromKeysBulk(sch Scheme, keys []int) (sumTree, model) {
	m := model{}
	items := make([]Entry[int, int64], len(keys))
	for i, k := range keys {
		items[i] = Entry[int, int64]{Key: k, Val: int64(k)}
		m[k] = int64(k)
	}
	tr := newSum(sch).Build(items, nil)
	return tr, m
}
