package core

import (
	"math/rand"
	"testing"
)

// Leaf-block boundary tests: occupancy at exactly B and B±1, splits and
// joins landing inside a block, per-block copy-on-write between
// snapshots, and the occupancy invariants enforced by Validate.

func newSumBlock(sch Scheme, block int) sumTree {
	return New[int, int64, int64, sumTraits](Config{Scheme: sch, Block: block})
}

// TestLeafBoundaryOccupancy drives a single block through the exact
// fill boundary: B-1, B (still one block), and B+1 (must split), with
// every invariant checked at each step, for several block sizes and all
// schemes.
func TestLeafBoundaryOccupancy(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		for _, b := range []int{2, 3, 4, 7, DefaultBlock} {
			tr := newSumBlock(sch, b)
			m := model{}
			for i := 0; i < b+1; i++ {
				tr = tr.Insert(i, int64(i))
				m[i] = int64(i)
				if err := tr.Validate(i64eq); err != nil {
					t.Fatalf("block=%d after %d inserts: %v", b, i+1, err)
				}
			}
			mustMatch(t, tr, m)
			// At B entries the whole map must still be a single block
			// (height 1); at B+1 it must have split.
			probe := newSumBlock(sch, b)
			for i := 0; i < b; i++ {
				probe = probe.Insert(i, 1)
			}
			if h := probe.Height(); h != 1 {
				t.Fatalf("block=%d: %d entries have height %d, want a single block", b, b, h)
			}
			if h := tr.Height(); h < 2 {
				t.Fatalf("block=%d: %d entries still height %d, split expected", b, b+1, h)
			}
			// Shrink back across the boundary: delete down to 1 entry.
			for i := b; i >= 1; i-- {
				tr = tr.Delete(i)
				delete(m, i)
				if err := tr.Validate(i64eq); err != nil {
					t.Fatalf("block=%d deleting %d: %v", b, i, err)
				}
			}
			mustMatch(t, tr, m)
		}
	})
}

// TestSplitInsideLeaf splits at every possible position of a blocked
// map — including keys in the interior of blocks and keys between
// entries — and checks the pieces and their rejoin.
func TestSplitInsideLeaf(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		n := 3*DefaultBlock + 5 // several blocks plus a partial one
		items := make([]Entry[int, int64], n)
		for i := range items {
			items[i] = Entry[int, int64]{Key: 2 * i, Val: int64(i)}
		}
		tr := newSum(sch).BuildSorted(items)
		for k := -1; k <= 2*n; k++ {
			l, v, found, r := tr.Split(k)
			wantFound := k >= 0 && k < 2*n && k%2 == 0
			if found != wantFound {
				t.Fatalf("Split(%d) found=%v want %v", k, found, wantFound)
			}
			if found && v != int64(k/2) {
				t.Fatalf("Split(%d) value %d", k, v)
			}
			if err := l.Validate(i64eq); err != nil {
				t.Fatalf("left of Split(%d): %v", k, err)
			}
			if err := r.Validate(i64eq); err != nil {
				t.Fatalf("right of Split(%d): %v", k, err)
			}
			var re sumTree
			if found {
				re = l.Join(k, v, r)
			} else {
				re = l.Concat(r)
			}
			if err := re.Validate(i64eq); err != nil {
				t.Fatalf("rejoin of Split(%d): %v", k, err)
			}
			if re.Size() != int64(n) {
				t.Fatalf("rejoin of Split(%d) lost entries: %d", k, re.Size())
			}
		}
	})
}

// TestLeafSharingBetweenSnapshots pins the per-block copy-on-write
// semantics: snapshots share blocks; updating one map copies only the
// touched block while the other snapshot keeps the old one.
func TestLeafSharingBetweenSnapshots(t *testing.T) {
	st := &Stats{}
	tr := New[int, int64, int64, sumTraits](Config{Stats: st})
	items := make([]Entry[int, int64], 1000)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i, Val: int64(i)}
	}
	tr = tr.BuildSorted(items)
	snap := tr

	st.Reset()
	upd := tr.Insert(500, -1) // lands inside an existing block
	if c := st.Copies.Load(); c == 0 {
		t.Fatal("insert into shared blocked tree did not copy-on-write")
	}
	// Only the one touched block plus the interior path may be new:
	// everything else is shared between the three handles.
	unique := CountUniqueNodes(tr, snap, upd)
	base := CountUniqueNodes(tr)
	if unique > base+64 {
		t.Fatalf("block update copied too much: %d unique vs %d base", unique, base)
	}
	// The snapshot still sees the old value; the update the new one.
	if v, _ := snap.Find(500); v != 500 {
		t.Fatalf("snapshot value changed to %d", v)
	}
	if v, _ := upd.Find(500); v != -1 {
		t.Fatalf("update lost: %d", v)
	}
	if err := snap.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
	if err := upd.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
	if !snap.SharesStructureWith(upd) {
		t.Fatal("snapshot and update share nothing")
	}
}

// TestLeafInPlaceGrowth: an unshared map grows its blocks in place —
// inserting into an exclusively owned block must not allocate a node
// per entry.
func TestLeafInPlaceGrowth(t *testing.T) {
	st := &Stats{}
	tr := New[int, int64, int64, sumTraits](Config{Stats: st})
	for i := 0; i < 10*DefaultBlock; i++ {
		tr.InsertInPlace(i, int64(i))
	}
	if a := st.Allocated.Load(); a > int64(10*DefaultBlock/4) {
		t.Fatalf("in-place fill of %d entries allocated %d nodes", 10*DefaultBlock, a)
	}
	if st.Copies.Load() != 0 {
		t.Fatalf("unshared fill copied %d nodes", st.Copies.Load())
	}
	if err := tr.Validate(i64eq); err != nil {
		t.Fatal(err)
	}
}

// TestValidateCatchesLeafViolations constructs corrupt blocks directly
// and checks Validate rejects each: over-occupancy, out-of-order block
// entries, a wrong block size field, and a stale block augmentation.
func TestValidateCatchesLeafViolations(t *testing.T) {
	base := newSum(WeightBalanced)
	o := base.o()
	mk := func(items []Entry[int, int64]) sumTree {
		return base.with(o.mkLeafCopy(items))
	}
	over := make([]Entry[int, int64], DefaultBlock+1)
	for i := range over {
		over[i] = Entry[int, int64]{Key: i, Val: 1}
	}
	if err := mk(over).Validate(i64eq); err == nil {
		t.Fatal("over-full block passed Validate")
	}
	if err := mk([]Entry[int, int64]{{Key: 5, Val: 1}, {Key: 3, Val: 1}}).Validate(i64eq); err == nil {
		t.Fatal("out-of-order block passed Validate")
	}
	bad := mk([]Entry[int, int64]{{Key: 1, Val: 1}, {Key: 2, Val: 2}})
	bad.root.size = 7
	if err := bad.Validate(i64eq); err == nil {
		t.Fatal("wrong block size field passed Validate")
	}
	stale := mk([]Entry[int, int64]{{Key: 1, Val: 1}, {Key: 2, Val: 2}})
	stale.root.aug = 999
	if err := stale.Validate(i64eq); err == nil {
		t.Fatal("stale block augmentation passed Validate")
	}
}

// TestBlockedRandomOps is the belt-and-braces differential run at small
// block sizes, where every operation constantly crosses block
// boundaries.
func TestBlockedRandomOps(t *testing.T) {
	forAllSchemes(t, func(t *testing.T, sch Scheme) {
		for _, b := range []int{2, 5} {
			rng := rand.New(rand.NewSource(int64(100 + b)))
			tr := newSumBlock(sch, b)
			m := model{}
			for step := 0; step < 1200; step++ {
				k := rng.Intn(200)
				switch rng.Intn(4) {
				case 0, 1:
					v := int64(rng.Intn(1000))
					tr = tr.Insert(k, v)
					m[k] = v
				case 2:
					tr = tr.Delete(k)
					delete(m, k)
				case 3:
					l, v, found, r := tr.Split(k)
					if found {
						tr = l.Join(k, v, r)
					} else {
						tr = l.Concat(r)
					}
				}
				if step%200 == 199 {
					mustMatch(t, tr, m)
				}
			}
			mustMatch(t, tr, m)
		}
	})
}

// TestSpaceStats sanity-checks the blocked-layout space accounting.
func TestSpaceStats(t *testing.T) {
	items := make([]Entry[int, int64], 10_000)
	for i := range items {
		items[i] = Entry[int, int64]{Key: i, Val: int64(i)}
	}
	tr := newSum(WeightBalanced).BuildSorted(items)
	s := tr.SpaceStats()
	if s.Entries != 10_000 {
		t.Fatalf("entries %d", s.Entries)
	}
	if s.LeafBlocks < 10_000/(DefaultBlock+1) || s.LeafBlocks > 2*10_000/DefaultBlock+1 {
		t.Fatalf("leaf blocks %d out of range", s.LeafBlocks)
	}
	if s.InteriorNodes >= 10_000/2 {
		t.Fatalf("interior nodes %d — blocking not effective", s.InteriorNodes)
	}
	if s.BytesPerEntry <= 0 || s.BytesPerEntry > 64 {
		t.Fatalf("bytes/entry %.1f implausible (entry is 16B)", s.BytesPerEntry)
	}
	// A per-entry layout for comparison: block 2 (the minimum).
	s2 := New[int, int64, int64, sumTraits](Config{Block: 2}).BuildSorted(items).SpaceStats()
	if s2.BytesPerEntry <= s.BytesPerEntry {
		t.Fatalf("small blocks (%.1f B/entry) not costlier than default (%.1f)", s2.BytesPerEntry, s.BytesPerEntry)
	}
}
