// Package parallel provides the fork-join substrate used by every bulk
// operation in the library.
//
// PAM is written against Cilk Plus (cilk_spawn / cilk_sync / cilk_for): a
// work-stealing fork-join runtime with explicit granularity control. Go has
// goroutines but no user-visible work-stealing task pool, so this package
// rebuilds the needed subset:
//
//   - Do(f, g) runs two tasks, in parallel when a worker token is
//     available, sequentially otherwise. Tokens bound the number of
//     in-flight forked goroutines so that nested recursive forking (the
//     shape of every tree algorithm in this library) cannot explode into
//     millions of goroutines; the Go scheduler's own work stealing
//     balances the resulting tasks across Ps.
//   - DoIf(cond, f, g) is Do with a granularity cutoff decided by the
//     caller (typically "subtree size exceeds the grain").
//   - For(n, grain, body) is the cilk_for analogue: a blocked,
//     recursively-split parallel loop.
//
// Parallelism is controlled by SetParallelism; with parallelism 1 every
// combinator degrades to plain sequential calls, which is how the "T1"
// (one-thread) measurements in the paper's tables are produced.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// tokens is the number of additional goroutines Do is still allowed to
// fork. It is a semaphore implemented with a lock-free counter: acquire
// decrements if positive, release increments.
var tokens atomic.Int64

// parallelism is the configured parallelism level (see SetParallelism).
var parallelism atomic.Int64

// forks counts successful forks since the last ResetStats. It is only
// incremented when stats collection is enabled.
var forks atomic.Int64

// statsEnabled gates fork counting so the hot path pays one atomic load.
var statsEnabled atomic.Bool

// spawnFactor is the token multiplier: with parallelism p, up to
// p*spawnFactor forked tasks may be in flight. A factor > 1 keeps workers
// busy when tasks are irregular (e.g. union of skewed trees) at a small
// scheduling cost.
const spawnFactor = 8

func init() {
	SetParallelism(runtime.GOMAXPROCS(0))
}

// SetParallelism sets the target parallelism level. p <= 1 makes all
// combinators run sequentially. Calling it while parallel work is in
// flight is not supported (tokens would be miscounted); the benchmark
// harness only calls it between runs.
func SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	parallelism.Store(int64(p))
	if p == 1 {
		tokens.Store(0)
		return
	}
	tokens.Store(int64(p * spawnFactor))
}

// Parallelism reports the configured parallelism level.
func Parallelism() int { return int(parallelism.Load()) }

// EnableStats turns fork counting on or off and resets the counter.
func EnableStats(on bool) {
	statsEnabled.Store(on)
	forks.Store(0)
}

// Forks reports the number of forked (actually parallel) Do calls since
// stats were enabled or last reset.
func Forks() int64 { return forks.Load() }

// tryAcquire takes a fork token if one is available.
func tryAcquire() bool {
	for {
		c := tokens.Load()
		if c <= 0 {
			return false
		}
		if tokens.CompareAndSwap(c, c-1) {
			return true
		}
	}
}

func release() { tokens.Add(1) }

// Do runs f and g and returns when both have completed. When a fork token
// is available g runs in a fresh goroutine while f runs on the calling
// goroutine; otherwise both run sequentially. Panics in either task are
// propagated to the caller (the first one observed wins).
func Do(f, g func()) {
	if !tryAcquire() {
		f()
		g()
		return
	}
	if statsEnabled.Load() {
		forks.Add(1)
	}
	var wg sync.WaitGroup
	var gPanic any
	wg.Add(1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				gPanic = r
			}
			release()
			wg.Done()
		}()
		g()
	}()
	f()
	wg.Wait()
	if gPanic != nil {
		panic(gPanic)
	}
}

// DoIf runs f and g, in parallel only when cond is true. It is the
// granularity-control primitive: tree algorithms pass "subtree is larger
// than the grain" as cond.
func DoIf(cond bool, f, g func()) {
	if cond {
		Do(f, g)
		return
	}
	f()
	g()
}

// Do3 runs three tasks, possibly in parallel. It is used where the paper's
// pseudocode forks over the left child, the root work, and the right child.
func Do3(f, g, h func()) {
	Do(func() { Do(f, g) }, h)
}

// For runs body(i) for every i in [0, n), splitting the index space
// recursively and running halves in parallel while each half is larger
// than grain. grain <= 0 selects a default that yields roughly 8 blocks
// per worker token.
func For(n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = defaultGrain(n)
	}
	forRange(0, n, grain, body)
}

func forRange(lo, hi, grain int, body func(i int)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		lo2, hi2 := lo, mid // capture for the spawned half
		if !tryAcquire() {
			// No token: run the left half inline and loop on the right,
			// keeping the stack shallow in the sequential case.
			for i := lo2; i < hi2; i++ {
				body(i)
			}
			lo = mid
			continue
		}
		if statsEnabled.Load() {
			forks.Add(1)
		}
		var wg sync.WaitGroup
		var p any
		wg.Add(1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					p = r
				}
				release()
				wg.Done()
			}()
			forRange(lo2, hi2, grain, body)
		}()
		forRange(mid, hi, grain, body)
		wg.Wait()
		if p != nil {
			panic(p)
		}
		return
	}
	for i := lo; i < hi; i++ {
		body(i)
	}
}

// ForBlocked runs body(lo, hi) over disjoint blocks covering [0, n).
// It is For for callers that want to amortize per-iteration overhead
// themselves (e.g. scan passes).
func ForBlocked(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = defaultGrain(n)
	}
	blocks := (n + grain - 1) / grain
	For(blocks, 1, func(b int) {
		lo := b * grain
		hi := min(lo+grain, n)
		body(lo, hi)
	})
}

func defaultGrain(n int) int {
	p := Parallelism()
	g := n / (p * spawnFactor)
	if g < 1 {
		g = 1
	}
	return g
}

// NumBlocks reports the block count ForBlocked would use for n items with
// the given grain (after defaulting), letting callers size per-block
// scratch arrays.
func NumBlocks(n, grain int) (blocks, actualGrain int) {
	if n <= 0 {
		return 0, 1
	}
	if grain <= 0 {
		grain = defaultGrain(n)
	}
	return (n + grain - 1) / grain, grain
}
