package parallel

import (
	"sync/atomic"
	"testing"
)

func TestDoRunsBoth(t *testing.T) {
	var a, b atomic.Int32
	Do(func() { a.Store(1) }, func() { b.Store(2) })
	if a.Load() != 1 || b.Load() != 2 {
		t.Fatalf("Do did not run both tasks: a=%d b=%d", a.Load(), b.Load())
	}
}

func TestDoIfSequential(t *testing.T) {
	order := make([]int, 0, 2)
	// cond=false must run f then g on the calling goroutine, in order.
	DoIf(false,
		func() { order = append(order, 1) },
		func() { order = append(order, 2) })
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("DoIf(false) ran out of order: %v", order)
	}
}

func TestDoNested(t *testing.T) {
	// Deep nested forking must neither deadlock nor lose tasks.
	var count atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			count.Add(1)
			return
		}
		Do(func() { rec(depth - 1) }, func() { rec(depth - 1) })
	}
	rec(12)
	if got := count.Load(); got != 1<<12 {
		t.Fatalf("nested Do lost tasks: got %d want %d", got, 1<<12)
	}
}

func TestDoPanicPropagates(t *testing.T) {
	for name, f := range map[string]func(){
		"left":  func() { Do(func() { panic("boom") }, func() {}) },
		"right": func() { Do(func() {}, func() { panic("boom") }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: panic was swallowed", name)
				}
			}()
			f()
		}()
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 100000} {
		hit := make([]atomic.Int32, n)
		For(n, 13, func(i int) { hit[i].Add(1) })
		for i := range hit {
			if hit[i].Load() != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, hit[i].Load())
			}
		}
	}
}

func TestForBlockedCoversAll(t *testing.T) {
	n := 100001
	hit := make([]atomic.Int32, n)
	ForBlocked(n, 997, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i].Add(1)
		}
	})
	for i := range hit {
		if hit[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, hit[i].Load())
		}
	}
}

func TestSetParallelismSequential(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(1)
	EnableStats(true)
	defer EnableStats(false)
	var c atomic.Int64
	Do(func() { c.Add(1) }, func() { c.Add(1) })
	For(1000, 10, func(int) {})
	if Forks() != 0 {
		t.Fatalf("parallelism=1 still forked %d times", Forks())
	}
	if c.Load() != 2 {
		t.Fatalf("tasks lost in sequential mode")
	}
}

func TestForksCounted(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(4)
	EnableStats(true)
	defer EnableStats(false)
	Do(func() {}, func() {})
	if Forks() < 1 {
		t.Fatalf("expected at least one fork with parallelism 4")
	}
}

func TestDo3(t *testing.T) {
	var c atomic.Int64
	Do3(func() { c.Add(1) }, func() { c.Add(10) }, func() { c.Add(100) })
	if c.Load() != 111 {
		t.Fatalf("Do3 lost a task: %d", c.Load())
	}
}

func TestNumBlocks(t *testing.T) {
	b, g := NumBlocks(100, 30)
	if b != 4 || g != 30 {
		t.Fatalf("NumBlocks(100,30) = %d,%d; want 4,30", b, g)
	}
	if b, _ := NumBlocks(0, 10); b != 0 {
		t.Fatalf("NumBlocks(0) = %d; want 0", b)
	}
}
