// Benchmarks regenerating the paper's evaluation (§6) as testing.B
// harnesses — one family per table and figure. cmd/pambench runs the
// same experiments with full tables and thread sweeps; these benches
// measure the central operation of each at a fixed laptop scale, so
// `go test -bench=. -benchmem` gives the whole evaluation in one run.
//
// Naming: BenchmarkTableN_* / BenchmarkFig6x_* matches the experiment
// index in DESIGN.md.
package repro

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/baseline/btree"
	"repro/internal/baseline/llrb"
	"repro/internal/baseline/naiverect"
	"repro/internal/baseline/naiveseg"
	"repro/internal/baseline/seqrangetree"
	"repro/internal/baseline/skiplist"
	"repro/internal/baseline/sortedarray"
	"repro/internal/baseline/sortrebuild"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/seq"
	"repro/internal/workload"
	"repro/interval"
	"repro/invindex"
	"repro/pam"
	"repro/rangetree"
	"repro/segcount"
	"repro/serve"
	"repro/stabbing"
)

const benchN = 100_000 // paper: 10^8; scaled for the suite

type sumMap = pam.AugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]]

func addv(a, b int64) int64 { return a + b }

func benchItems(seed uint64, n int) []pam.KV[uint64, int64] {
	ks, vs := workload.KeyValues(seed, n, uint64(2*n))
	out := make([]pam.KV[uint64, int64], n)
	for i := range out {
		out[i] = pam.KV[uint64, int64]{Key: ks[i], Val: vs[i]}
	}
	return out
}

func benchSumMap(seed uint64, n int) sumMap {
	return pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}).
		Build(benchItems(seed, n), addv)
}

// ---------------------------------------------------------------- Table 1

func BenchmarkTable1_RangeSumBuild(b *testing.B) {
	items := benchItems(1, benchN)
	m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Build(items, addv)
	}
	b.ReportMetric(float64(benchN), "elems/op")
}

func BenchmarkTable1_RangeSumQuery(b *testing.B) {
	m := benchSumMap(1, benchN)
	los := workload.Keys(2, 1024, uint64(2*benchN))
	span := uint64(2 * benchN / 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := los[i%len(los)]
		_ = m.AugRange(lo, lo+span)
	}
}

// ---------------------------------------------------------------- Table 2

// Table 2 is about work bounds; the bench exposes the output-size
// dependence of union, its headline bound m log(n/m + 1).
func BenchmarkTable2_UnionWorkBound(b *testing.B) {
	big := benchSumMap(1, benchN)
	for _, m := range []int{100, 10_000, benchN} {
		small := benchSumMap(uint64(m)+7, m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = big.UnionWith(small, addv)
			}
		})
	}
}

// ---------------------------------------------------------------- Table 3

func BenchmarkTable3_UnionEqual(b *testing.B) {
	t1 := benchSumMap(1, benchN)
	t2 := benchSumMap(2, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t1.UnionWith(t2, addv)
	}
}

func BenchmarkTable3_UnionSkewed(b *testing.B) {
	t1 := benchSumMap(1, benchN)
	t2 := benchSumMap(2, benchN/1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t1.UnionWith(t2, addv)
	}
}

func BenchmarkTable3_Find(b *testing.B) {
	m := benchSumMap(1, benchN)
	keys := workload.Keys(3, 4096, uint64(2*benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Find(keys[i%len(keys)])
	}
}

func BenchmarkTable3_Insert(b *testing.B) {
	items := benchItems(4, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
		b.StartTimer()
		for _, e := range items[:10_000] {
			m.InsertInPlace(e.Key, e.Val)
		}
	}
	b.ReportMetric(10_000, "inserts/op")
}

func BenchmarkTable3_Build(b *testing.B) {
	items := benchItems(5, benchN)
	m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Build(items, addv)
	}
}

func BenchmarkTable3_Filter(b *testing.B) {
	m := benchSumMap(1, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Filter(func(k uint64, _ int64) bool { return k%2 == 0 })
	}
}

func BenchmarkTable3_MultiInsert(b *testing.B) {
	m := benchSumMap(1, benchN)
	batch := benchItems(6, benchN/1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.MultiInsert(batch, addv)
	}
}

func BenchmarkTable3_Range(b *testing.B) {
	m := benchSumMap(1, benchN)
	los := workload.Keys(7, 1024, uint64(2*benchN))
	span := uint64(2 * benchN / 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := los[i%len(los)]
		_ = m.Range(lo, lo+span)
	}
}

func BenchmarkTable3_AugLeft(b *testing.B) {
	m := benchSumMap(1, benchN)
	keys := workload.Keys(8, 1024, uint64(2*benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.AugLeft(keys[i%len(keys)])
	}
}

func BenchmarkTable3_AugRange(b *testing.B) {
	m := benchSumMap(1, benchN)
	keys := workload.Keys(9, 1024, uint64(2*benchN))
	span := uint64(2 * benchN / 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := keys[i%len(keys)]
		_ = m.AugRange(lo, lo+span)
	}
}

// AugRange without augmentation: extract the range and scan it — the
// paper's "non-augmented PAM (augmented functions)" rows.
func BenchmarkTable3_AugRangeByScan(b *testing.B) {
	m := pam.NewMap[uint64, int64](pam.Options{}).Build(benchItems(1, benchN), nil)
	keys := workload.Keys(9, 1024, uint64(2*benchN))
	span := uint64(2 * benchN / 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := keys[i%len(keys)]
		var s int64
		m.Range(lo, lo+span).ForEach(func(_ uint64, v int64) bool { s += v; return true })
	}
}

func BenchmarkTable3_AugFilter(b *testing.B) {
	m := pam.NewAugMap[uint64, int64, int64, pam.MaxEntry[uint64, int64]](pam.Options{}).
		Build(benchItems(1, benchN), nil)
	for _, k := range []int{benchN / 1000, benchN / 100} {
		th := int64(1000 - k*1000/benchN) // values uniform in [0,1000)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m.AugFilter(func(a int64) bool { return a >= th })
			}
		})
	}
}

func BenchmarkTable3_FilterPlainForComparison(b *testing.B) {
	m := pam.NewMap[uint64, int64](pam.Options{}).Build(benchItems(1, benchN), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Filter(func(_ uint64, v int64) bool { return v >= 999 })
	}
}

func BenchmarkTable3_STLUnionTree(b *testing.B) {
	t1, t2 := &llrb.Tree{}, &llrb.Tree{}
	for _, e := range benchItems(1, benchN) {
		t1.Insert(e.Key, e.Val)
	}
	for _, e := range benchItems(2, benchN) {
		t2.Insert(e.Key, e.Val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = llrb.UnionInto(t1, t2)
	}
}

func BenchmarkTable3_STLUnionArray(b *testing.B) {
	toPairs := func(items []pam.KV[uint64, int64]) []sortedarray.Pair {
		out := make([]sortedarray.Pair, len(items))
		for i, e := range items {
			out[i] = sortedarray.Pair{Key: e.Key, Val: e.Val}
		}
		return out
	}
	a1 := sortedarray.Build(toPairs(benchItems(1, benchN)))
	a2 := sortedarray.Build(toPairs(benchItems(2, benchN)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sortedarray.Union(a1, a2)
	}
}

func BenchmarkTable3_STLInsert(b *testing.B) {
	items := benchItems(4, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := &llrb.Tree{}
		b.StartTimer()
		for _, e := range items[:10_000] {
			t.Insert(e.Key, e.Val)
		}
	}
	b.ReportMetric(10_000, "inserts/op")
}

func BenchmarkTable3_MCSTLMultiInsert(b *testing.B) {
	base := make([]sortedarray.Pair, benchN)
	for i, e := range benchItems(1, benchN) {
		base[i] = sortedarray.Pair{Key: e.Key, Val: e.Val}
	}
	batch := make([]sortedarray.Pair, benchN/1000)
	for i, e := range benchItems(2, benchN/1000) {
		batch[i] = sortedarray.Pair{Key: e.Key, Val: e.Val}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sortrebuild.FromPairs(base)
		s.MultiInsert(batch)
	}
}

// ---------------------------------------------------------------- Table 4

// Space benchmark: reports the sharing percentage of persistent union as
// a custom metric (allocations tracked by -benchmem tell the same story).
func BenchmarkTable4_UnionSharing(b *testing.B) {
	mkCore := func(seed uint64, n int) core.Tree[uint64, int64, int64, pam.SumEntry[uint64, int64]] {
		items := make([]core.Entry[uint64, int64], n)
		for i, e := range benchItems(seed, n) {
			items[i] = core.Entry[uint64, int64]{Key: e.Key, Val: e.Val}
		}
		return core.New[uint64, int64, int64, pam.SumEntry[uint64, int64]](core.Config{}).Build(items, addv)
	}
	t1 := mkCore(1, benchN)
	t2 := mkCore(2, benchN/1000)
	var last coreSum
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = t1.UnionWith(t2, addv)
	}
	b.StopTimer()
	// The sharing metric is a property of one union result; computing it
	// per iteration would dominate wall-clock without being timed.
	unshared := t1.Size() + t2.Size() + last.Size()
	actual := core.CountUniqueNodes(t1, t2, last)
	b.ReportMetric(100*(1-float64(actual)/float64(unshared)), "%shared")
}

// ---------------------------------------------------------------- Table 5

func benchIntervals(n int) []interval.Interval {
	raw := workload.Intervals(11, n, float64(n), float64(n)/1000)
	out := make([]interval.Interval, n)
	for i, iv := range raw {
		out[i] = interval.Interval{Lo: iv.Lo, Hi: iv.Hi}
	}
	return out
}

func BenchmarkTable5_IntervalBuild(b *testing.B) {
	ivs := benchIntervals(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = interval.New(pam.Options{}).Build(ivs)
	}
}

func BenchmarkTable5_IntervalStab(b *testing.B) {
	m := interval.New(pam.Options{}).Build(benchIntervals(benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Stab(float64(i % benchN))
	}
}

func BenchmarkTable5_IntervalStabNaive(b *testing.B) {
	raw := workload.Intervals(11, 10_000, 10_000, 10)
	ivs := make([]naiveIv, len(raw))
	for i, iv := range raw {
		ivs[i] = naiveIv{iv.Lo, iv.Hi}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := float64(i % 10_000)
		hit := false
		for _, iv := range ivs {
			if iv.lo <= p && p <= iv.hi {
				hit = true
				break
			}
		}
		_ = hit
	}
}

type naiveIv struct{ lo, hi float64 }

func benchPoints(n int) []rangetree.Weighted {
	raw := workload.Points(12, n, float64(n), 100)
	out := make([]rangetree.Weighted, n)
	for i, p := range raw {
		out[i] = rangetree.Weighted{Point: rangetree.Point{X: p.X, Y: p.Y}, W: p.W}
	}
	return out
}

func BenchmarkTable5_RangeTreeBuild(b *testing.B) {
	pts := benchPoints(benchN / 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rangetree.New(pam.Options{}).Build(pts)
	}
}

func BenchmarkTable5_RangeTreeQuerySum(b *testing.B) {
	n := benchN / 10
	t := rangetree.New(pam.Options{}).Build(benchPoints(n))
	w := float64(n) / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % n)
		_ = t.QuerySum(rangetree.Rect{XLo: x, XHi: x + w, YLo: x, YHi: x + w})
	}
}

func BenchmarkTable5_RangeTreeReportAll(b *testing.B) {
	n := benchN / 10
	t := rangetree.New(pam.Options{}).Build(benchPoints(n))
	w := float64(n) / 30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % n)
		_ = t.ReportAll(rangetree.Rect{XLo: x, XHi: x + w, YLo: x, YHi: x + w})
	}
}

func BenchmarkTable5_SeqRangeTreeBuild(b *testing.B) {
	raw := workload.Points(12, benchN/10, float64(benchN/10), 100)
	pts := make([]seqrangetree.Point, len(raw))
	for i, p := range raw {
		pts[i] = seqrangetree.Point{X: p.X, Y: p.Y, W: p.W}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = seqrangetree.Build(pts)
	}
}

// ---------------------------------------------------------------- Table 6

func benchCorpus() ([]invindex.Triple, workload.CorpusSpec) {
	spec := workload.DefaultCorpus(benchN, 13)
	occ := spec.Generate()
	triples := make([]invindex.Triple, len(occ))
	for i, o := range occ {
		triples[i] = invindex.Triple{Word: o.Word, Doc: invindex.DocID(o.Doc), W: invindex.Weight(o.W)}
	}
	return triples, spec
}

func BenchmarkTable6_IndexBuild(b *testing.B) {
	triples, _ := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = invindex.Build(triples)
	}
	b.ReportMetric(float64(len(triples)), "tokens/op")
}

func BenchmarkTable6_IndexQueryTop10(b *testing.B) {
	triples, spec := benchCorpus()
	ix := invindex.Build(triples)
	queries := spec.QueryWords(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		and := ix.QueryAnd(q[0], q[1])
		_ = invindex.TopK(and, 10)
	}
}

// ---------------------------------------------------------------- Fig 6a

func BenchmarkFig6a_PamMultiInsertLoad(b *testing.B) {
	items := benchItems(14, benchN)
	const batches = 10
	bs := benchN / batches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
		for j := 0; j < batches; j++ {
			m.MultiInsertInPlace(items[j*bs:(j+1)*bs], addv)
		}
	}
	b.ReportMetric(float64(benchN), "inserts/op")
}

func BenchmarkFig6a_SkiplistLoad(b *testing.B) {
	ks, vs := workload.KeyValues(14, benchN, uint64(2*benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := skiplist.New()
		for j := range ks {
			l.Insert(ks[j], vs[j])
		}
	}
	b.ReportMetric(float64(benchN), "inserts/op")
}

func BenchmarkFig6a_BtreeLoad(b *testing.B) {
	ks, vs := workload.KeyValues(14, benchN, uint64(2*benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := btree.New()
		for j := range ks {
			t.Insert(ks[j], vs[j])
		}
	}
	b.ReportMetric(float64(benchN), "inserts/op")
}

// ---------------------------------------------------------------- Fig 6b

func BenchmarkFig6b_PamFind(b *testing.B) {
	m := benchSumMap(15, benchN)
	reads := workload.ReadStream(16, 4096, workload.Keys(15, benchN, uint64(2*benchN)), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Find(reads[i%len(reads)])
	}
}

func BenchmarkFig6b_SkiplistFind(b *testing.B) {
	ks, vs := workload.KeyValues(15, benchN, uint64(2*benchN))
	l := skiplist.New()
	for j := range ks {
		l.Insert(ks[j], vs[j])
	}
	reads := workload.ReadStream(16, 4096, ks, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Find(reads[i%len(reads)])
	}
}

func BenchmarkFig6b_BtreeFind(b *testing.B) {
	ks, vs := workload.KeyValues(15, benchN, uint64(2*benchN))
	t := btree.New()
	for j := range ks {
		t.Insert(ks[j], vs[j])
	}
	reads := workload.ReadStream(16, 4096, ks, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Find(reads[i%len(reads)])
	}
}

// ---------------------------------------------------------------- Fig 6c

func BenchmarkFig6c_UnionBySize(b *testing.B) {
	big := benchSumMap(17, benchN)
	for m := 100; m <= benchN; m *= 10 {
		small := benchSumMap(uint64(m), m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = big.UnionWith(small, addv)
			}
		})
	}
}

func BenchmarkFig6c_BuildBySize(b *testing.B) {
	for n := 100; n <= benchN; n *= 10 {
		items := benchItems(uint64(n), n)
		m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m.Build(items, addv)
			}
		})
	}
}

// ---------------------------------------------------------------- Fig 6d

func BenchmarkFig6d_IntervalBuildByThreads(b *testing.B) {
	ivs := benchIntervals(benchN)
	for _, th := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p=%d", th), func(b *testing.B) {
			old := parallel.Parallelism()
			parallel.SetParallelism(th)
			defer parallel.SetParallelism(old)
			for i := 0; i < b.N; i++ {
				_ = interval.New(pam.Options{}).Build(ivs)
			}
		})
	}
}

// ---------------------------------------------------------------- Fig 6e

func BenchmarkFig6e_RangeTreeBuildBySize(b *testing.B) {
	for n := 1000; n <= benchN/10; n *= 10 {
		pts := benchPoints(n)
		b.Run(fmt.Sprintf("pam/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = rangetree.New(pam.Options{}).Build(pts)
			}
		})
		raw := workload.Points(12, n, float64(n), 100)
		spts := make([]seqrangetree.Point, n)
		for i, p := range raw {
			spts[i] = seqrangetree.Point{X: p.X, Y: p.Y, W: p.W}
		}
		b.Run(fmt.Sprintf("seq/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = seqrangetree.Build(spts)
			}
		})
	}
}

// ------------------------------------------ arXiv:1803.08621: segment & rectangle queries

func benchSegments(n int) []segcount.Segment {
	raw := workload.Segments(13, n, float64(n), float64(n)/1000)
	out := make([]segcount.Segment, n)
	for i, s := range raw {
		out[i] = segcount.Segment{XLo: s.XLo, XHi: s.XHi, Y: s.Y}
	}
	return out
}

func BenchmarkSegRect_SegCountBuild(b *testing.B) {
	segs := benchSegments(benchN / 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = segcount.New(pam.Options{}).Build(segs)
	}
}

func BenchmarkSegRect_SegCountCrossing(b *testing.B) {
	n := benchN / 10
	m := segcount.New(pam.Options{}).Build(benchSegments(n))
	w := float64(n) / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % n)
		_ = m.CountCrossing(x, x-w, x+w)
	}
}

func BenchmarkSegRect_SegReportWindow(b *testing.B) {
	n := benchN / 10
	m := segcount.New(pam.Options{}).Build(benchSegments(n))
	w := float64(n) / 30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % n)
		_ = m.ReportWindow(x, x+w, x, x+w)
	}
}

func BenchmarkSegRect_SegCountNaive(b *testing.B) {
	raw := workload.Segments(13, 10_000, 10_000, 10)
	segs := make([]naiveseg.Segment, len(raw))
	for i, s := range raw {
		segs[i] = naiveseg.Segment{XLo: s.XLo, XHi: s.XHi, Y: s.Y}
	}
	set := naiveseg.Build(segs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % 10_000)
		_ = set.CountCrossing(x, x-1000, x+1000)
	}
}

func benchRects(n int) []stabbing.Rect {
	raw := workload.Rects(14, n, float64(n), float64(n)/1000)
	out := make([]stabbing.Rect, n)
	for i, r := range raw {
		out[i] = stabbing.Rect{XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi}
	}
	return out
}

func BenchmarkSegRect_StabBuild(b *testing.B) {
	rects := benchRects(benchN / 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stabbing.New(pam.Options{}).Build(rects)
	}
}

func BenchmarkSegRect_StabCount(b *testing.B) {
	n := benchN / 10
	m := stabbing.New(pam.Options{}).Build(benchRects(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % n)
		_ = m.CountStab(x, x)
	}
}

func BenchmarkSegRect_StabReport(b *testing.B) {
	n := benchN / 10
	m := stabbing.New(pam.Options{}).Build(benchRects(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % n)
		_ = m.ReportStab(x, x)
	}
}

func BenchmarkSegRect_StabCountNaive(b *testing.B) {
	raw := workload.Rects(14, 10_000, 10_000, 10)
	rects := make([]naiverect.Rect, len(raw))
	for i, r := range raw {
		rects[i] = naiverect.Rect{XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi}
	}
	set := naiverect.Build(rects)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % 10_000)
		_ = set.CountStab(x, x)
	}
}

// ------------------------------------------------- Dynamic updates

// Update-throughput benchmarks for the dynamic (logarithmic-method
// ladder) nested-augmentation structures: persistent single-element
// Insert into a pre-built structure, carries included, so the reported
// ns/op is the amortized cost the complexity test bounds. The
// ByRebuild variant is the naive alternative — a full rebuild per
// update — that the layering exists to beat.

func BenchmarkDynamic_RangeTreeInsert(b *testing.B) {
	n := benchN / 10
	t := rangetree.New(pam.Options{}).Build(benchPoints(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Insert(rangetree.Point{X: float64(i%n) + 0.25, Y: float64(i / n)}, 1)
	}
}

func BenchmarkDynamic_RangeTreeDeleteInsert(b *testing.B) {
	// One delete + one re-insert of the same point per iteration, so
	// the tree stays at size n and every delete hits a live point
	// (deleting into an emptied tree would be a no-op).
	n := benchN / 10
	pts := benchPoints(n)
	t := rangetree.New(pam.Options{}).Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%n]
		t = t.Delete(p.Point)
		t = t.Insert(p.Point, p.W)
	}
}

func BenchmarkDynamic_RangeTreeInsertByRebuild(b *testing.B) {
	// The linear baseline at a tenth of the scale: one seqrangetree
	// index rebuild per insert (its index builds lazily, so a query per
	// iteration forces the rebuild this baseline exists to show).
	raw := workload.Points(12, benchN/100, float64(benchN/100), 100)
	pts := make([]seqrangetree.Point, len(raw))
	for i, p := range raw {
		pts[i] = seqrangetree.Point{X: p.X, Y: p.Y, W: p.W}
	}
	t := seqrangetree.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Insert(seqrangetree.Point{X: float64(i), Y: float64(i), W: 1})
		_ = t.QuerySum(float64(i), float64(i)+1, 0, 1)
	}
}

func BenchmarkDynamic_SegCountInsert(b *testing.B) {
	n := benchN / 10
	m := segcount.New(pam.Options{}).Build(benchSegments(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i%n) + 0.25
		m = m.Insert(segcount.Segment{XLo: x, XHi: x + 50, Y: float64(i / n)})
	}
}

func BenchmarkDynamic_StabbingInsert(b *testing.B) {
	n := benchN / 10
	m := stabbing.New(pam.Options{}).Build(benchRects(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i%n) + 0.25
		m = m.Insert(stabbing.Rect{XLo: x, XHi: x + 20, YLo: x, YHi: x + 20})
	}
}

func BenchmarkDynamic_SegCountQueryWhileBuffered(b *testing.B) {
	// Query cost with pending updates spread across the ladder: the
	// layered read path (O(log n) levels plus the constant write
	// buffer).
	n := benchN / 10
	m := segcount.New(pam.Options{}).Build(benchSegments(n))
	for i := 0; i < n/20; i++ {
		x := float64(i) + 0.25
		m = m.Insert(segcount.Segment{XLo: x, XHi: x + 50, Y: float64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i % n)
		_ = m.CountCrossing(x, x, x+100)
	}
}

// BenchmarkDynamicQueryTail is the worst-case-latency acceptance
// benchmark: p50/p99 CountLine latency under a sustained insert stream
// at n = 64k, for the ladder engine and for the PR-2 single-buffer
// design it replaced (re-implemented in internal/experiments). The
// ladder's win is the p99 gap: the buffer design's queries scan up to
// n/8 pending records, the ladder's scan at most dynamic.BufCap plus
// O(log n) polylog level queries. `pambench -json` commits the same
// numbers to the perf trajectory.
func BenchmarkDynamicQueryTail(b *testing.B) {
	const n = 1 << 16
	report := func(b *testing.B, run func(n, updates int) experiments.TailStats) {
		var last experiments.TailStats
		for i := 0; i < b.N; i++ {
			last = run(n, n/4)
		}
		b.ReportMetric(float64(last.P50.Nanoseconds()), "p50-ns/query")
		b.ReportMetric(float64(last.P99.Nanoseconds()), "p99-ns/query")
		b.ReportMetric(float64(last.Mean.Nanoseconds()), "mean-ns/query")
	}
	b.Run("ladder", func(b *testing.B) { report(b, experiments.QueryTailLadder) })
	b.Run("pr2buffer", func(b *testing.B) { report(b, experiments.QueryTailBuffer) })
}

// ------------------------------------------------- Grain sweep

// Granularity sweep for the parallel bulk operations: Union, Build,
// and MapReduce across Options.Grain values bracketing
// core.DefaultGrain, at an elevated parallelism level so fork overhead
// is visible even on small machines. Too-small grains pay
// fork/scheduling overhead; too-large grains serialize. The committed
// constants were chosen from this sweep (see the PR); re-run with
//
//	go test -bench BenchmarkGrainSweep -benchmem .
func BenchmarkGrainSweep(b *testing.B) {
	grains := []int64{64, 256, 1024, 4096, 16384}
	withGrain := func(g int64, seed uint64, n int) sumMap {
		return pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{Grain: g}).
			Build(benchItems(seed, n), addv)
	}
	atParallelism := func(b *testing.B, p int, f func()) {
		old := parallel.Parallelism()
		parallel.SetParallelism(p)
		defer parallel.SetParallelism(old)
		b.ResetTimer()
		f()
	}
	b.Run("Union", func(b *testing.B) {
		for _, g := range grains {
			t1, t2 := withGrain(g, 1, benchN), withGrain(g, 2, benchN)
			b.Run(fmt.Sprintf("grain=%d", g), func(b *testing.B) {
				atParallelism(b, 4, func() {
					for i := 0; i < b.N; i++ {
						_ = t1.UnionWith(t2, addv)
					}
				})
			})
		}
	})
	b.Run("Build", func(b *testing.B) {
		items := benchItems(5, benchN)
		for _, g := range grains {
			m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{Grain: g})
			b.Run(fmt.Sprintf("grain=%d", g), func(b *testing.B) {
				atParallelism(b, 4, func() {
					for i := 0; i < b.N; i++ {
						_ = m.Build(items, addv)
					}
				})
			})
		}
	})
	b.Run("MapReduce", func(b *testing.B) {
		for _, g := range grains {
			m := withGrain(g, 1, benchN)
			b.Run(fmt.Sprintf("grain=%d", g), func(b *testing.B) {
				atParallelism(b, 4, func() {
					for i := 0; i < b.N; i++ {
						_ = pam.MapReduce(m,
							func(_ uint64, v int64) int64 { return v },
							func(x, y int64) int64 { return x + y },
							0)
					}
				})
			})
		}
	})
}

// BenchmarkParallelScaling measures the two headline bulk operations at
// parallelism 1, 2, and 4 so the speedup (or its absence on small
// machines — compare runtime.NumCPU in the output environment) is part
// of the recorded trajectory. The same sweep backs the *_par entries of
// BENCH_PRn.json; see the bench fidelity note in README.md.
func BenchmarkParallelScaling(b *testing.B) {
	atParallelism := func(b *testing.B, p int, f func()) {
		old := parallel.Parallelism()
		parallel.SetParallelism(p)
		defer parallel.SetParallelism(old)
		b.ResetTimer()
		f()
	}
	items := benchItems(1, benchN)
	mk := func(seed uint64) sumMap {
		return pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{}).
			Build(benchItems(seed, benchN), addv)
	}
	t1, t2 := mk(1), mk(2)
	empty := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("Build/par=%d", p), func(b *testing.B) {
			atParallelism(b, p, func() {
				for i := 0; i < b.N; i++ {
					_ = empty.Build(items, addv)
				}
			})
		})
		b.Run(fmt.Sprintf("Union/par=%d", p), func(b *testing.B) {
			atParallelism(b, p, func() {
				for i := 0; i < b.N; i++ {
					_ = t1.UnionWith(t2, addv)
				}
			})
		})
	}
}

// ---- the serving layer (serve): PR 4 --------------------------------

func serveBenchStore(b *testing.B, shards int) *serve.Store[uint64, int64, int64, pam.SumEntry[uint64, int64]] {
	s, err := serve.NewHashStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
		pam.Options{}, shards, seq.Mix64)
	if err != nil {
		b.Fatalf("NewHashStore: %v", err)
	}
	b.Cleanup(s.Close)
	return s
}

// BenchmarkServe_WriteThroughput measures batched write throughput
// against shard count: each iteration is one 64-op batch, submitted by
// concurrent writer goroutines through the sequencer and shard
// mailboxes. The ops/s metric is the one recorded in BENCH_PRn.json.
func BenchmarkServe_WriteThroughput(b *testing.B) {
	const batchLen = 64
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := serveBenchStore(b, shards)
			var ctr atomic.Uint64
			b.SetParallelism(4) // 4×GOMAXPROCS writer goroutines
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				batch := make([]serve.Op[uint64, int64], batchLen)
				for pb.Next() {
					base := ctr.Add(1) * batchLen
					for j := range batch {
						batch[j] = serve.Put((base+uint64(j))%(1<<20), int64(j))
					}
					s.Apply(batch)
				}
			})
			b.ReportMetric(float64(b.N)*batchLen/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkServe_SnapshotFindUnderWrites measures the serving read
// path — Snapshot + routed Find — while a background writer streams
// 64-op batches into the store.
func BenchmarkServe_SnapshotFindUnderWrites(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := serveBenchStore(b, shards)
			for i := 0; i < 1<<14; i += 64 {
				batch := make([]serve.Op[uint64, int64], 64)
				for j := range batch {
					batch[j] = serve.Put(uint64(i+j), int64(j))
				}
				s.Apply(batch)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				batch := make([]serve.Op[uint64, int64], 64)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					for j := range batch {
						batch[j] = serve.Put(uint64(i*64+j)%(1<<14), int64(j))
					}
					s.Apply(batch)
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, _ := s.Snapshot()
				v.Find(uint64(i) % (1 << 14))
			}
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}

// BenchmarkServe_PointQueryUnderWrites is the spatial serving path:
// Snapshot + cross-shard QuerySum on the sharded ladder-backed range
// tree while a background writer streams point inserts.
func BenchmarkServe_PointQueryUnderWrites(b *testing.B) {
	s := serve.NewPointStore(pam.Options{}, []float64{256, 512, 768})
	b.Cleanup(s.Close)
	pts := workload.Points(77, 1<<13, 1024, 100)
	batch := make([]serve.PointOp, 0, 64)
	for _, p := range pts {
		batch = append(batch, serve.InsertPoint(rangetree.Point{X: p.X, Y: p.Y}, p.W))
		if len(batch) == cap(batch) {
			s.Apply(batch)
			batch = batch[:0]
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			x := float64(i % 1024)
			s.Insert(rangetree.Point{X: x, Y: float64((i * 7) % 1024)}, 1)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := s.Snapshot()
		x := float64(i % 512)
		v.QuerySum(rangetree.Rect{XLo: x, XHi: x + 256, YLo: 0, YHi: 512})
	}
	b.StopTimer()
	close(stop)
	<-done
}
