// The shared differential op-sequence harness for the dynamic
// nested-augmentation structures: random interleaved
// Insert/Delete/Query/Merge/Snapshot sequences (internal/workload.Ops)
// are applied in lockstep to rangetree, segcount, and stabbing and to
// their naive baselines, and every query — including re-queries of old
// snapshots taken before later updates — must agree exactly. The same
// drivers back the FuzzDynamic* targets (fuzzer bytes decode to op
// sequences), an allocation-based amortized-complexity check, and a
// concurrent snapshot-reader stress test for `go test -race`.
package repro

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/baseline/naiverect"
	"repro/internal/baseline/naiveseg"
	"repro/internal/baseline/seqrangetree"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/parallel"
	"repro/internal/workload"
	"repro/pam"
	"repro/rangetree"
	"repro/segcount"
	"repro/stabbing"
)

// dynUniverse is the coordinate grid: small, so random inserts collide,
// random deletes hit live elements, and random queries graze boundaries.
const dynUniverse = 12

// dynGrid snaps a unit coordinate onto the integer grid.
func dynGrid(u float64) float64 { return math.Floor(u * dynUniverse) }

// dynQ maps a unit coordinate onto half-integers, so query boundaries
// land both exactly on element coordinates and strictly between them.
func dynQ(u float64) float64 { return math.Floor(u*dynUniverse*2) / 2 }

// dynDiff runs one structure/baseline pair through an op sequence.
// apply handles OpInsert/OpDelete/OpMerge and returns the new pair;
// check runs the op-derived queries on both and fails on any mismatch.
// Both must be persistent: run re-queries old snapshots after later
// updates and expects frozen answers.
type dynDiff[S any] struct {
	apply func(S, workload.Op) S
	check func(t *testing.T, s S, op workload.Op, label string)
}

func (d dynDiff[S]) run(t *testing.T, s S, ops []workload.Op) {
	t.Helper()
	type snap struct {
		s    S
		step int
	}
	var snaps []snap
	for i, op := range ops {
		switch op.Kind {
		case workload.OpQuery:
			d.check(t, s, op, fmt.Sprintf("step %d", i))
		case workload.OpSnapshot:
			snaps = append(snaps, snap{s, i})
		default:
			s = d.apply(s, op)
			if len(snaps) > 0 {
				// An old snapshot must answer the op's query from its
				// frozen contents, updates and folds notwithstanding.
				sn := snaps[i%len(snaps)]
				d.check(t, sn.s, op, fmt.Sprintf("snapshot@%d re-queried after step %d", sn.step, i))
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
	for _, sn := range snaps {
		d.check(t, sn.s, ops[sn.step], fmt.Sprintf("snapshot@%d at end", sn.step))
	}
}

// ---- rangetree vs seqrangetree -------------------------------------

type dynRT struct {
	tr   rangetree.Tree
	base *seqrangetree.Tree
}

func dynRTFresh() dynRT {
	return dynRT{tr: rangetree.New(pam.Options{}), base: seqrangetree.Build(nil)}
}

func dynRTPoint(op workload.Op) rangetree.Point {
	return rangetree.Point{X: dynGrid(op.A), Y: dynGrid(op.B)}
}

// dynRTAggregate collapses the duplicate-keeping baseline report into
// rangetree's distinct-point form: weights of identical points add.
func dynRTAggregate(pts []seqrangetree.Point) []rangetree.Weighted {
	sums := make(map[rangetree.Point]int64, len(pts))
	for _, p := range pts {
		sums[rangetree.Point{X: p.X, Y: p.Y}] += p.W
	}
	out := make([]rangetree.Weighted, 0, len(sums))
	for p, w := range sums {
		out = append(out, rangetree.Weighted{Point: p, W: w})
	}
	slices.SortFunc(out, func(a, b rangetree.Weighted) int {
		switch {
		case a.X != b.X && a.X < b.X:
			return -1
		case a.X != b.X:
			return 1
		case a.Y < b.Y:
			return -1
		case a.Y > b.Y:
			return 1
		default:
			return 0
		}
	})
	return out
}

func dynRTApply(s dynRT, op workload.Op) dynRT {
	switch op.Kind {
	case workload.OpInsert:
		p := dynRTPoint(op)
		s.tr = s.tr.Insert(p, op.W)
		s.base = s.base.Insert(seqrangetree.Point{X: p.X, Y: p.Y, W: op.W})
	case workload.OpDelete:
		p := dynRTPoint(op)
		s.tr = s.tr.Delete(p)
		s.base = s.base.Delete(p.X, p.Y)
	case workload.OpMerge:
		n := 1 + int(op.C*6)
		raw := workload.Points(uint64(op.A*1e9), n, 1, 9)
		batch := make([]rangetree.Weighted, n)
		basePts := s.base.Points()
		for i, p := range raw {
			w := rangetree.Weighted{
				Point: rangetree.Point{X: dynGrid(p.X), Y: dynGrid(p.Y)},
				W:     p.W + 1,
			}
			batch[i] = w
			basePts = append(basePts, seqrangetree.Point{X: w.X, Y: w.Y, W: w.W})
		}
		s.tr = s.tr.Merge(rangetree.New(pam.Options{}).Build(batch))
		s.base = seqrangetree.Build(basePts)
	}
	return s
}

func dynRTCheck(t *testing.T, s dynRT, op workload.Op, label string) {
	t.Helper()
	xa, xb := dynQ(op.A), dynQ(op.B)
	ya, yb := dynQ(op.C), dynQ(op.D)
	r := rangetree.Rect{XLo: min(xa, xb), XHi: max(xa, xb), YLo: min(ya, yb), YHi: max(ya, yb)}
	want := dynRTAggregate(s.base.ReportAll(r.XLo, r.XHi, r.YLo, r.YHi))
	var wantSum int64
	for _, p := range want {
		wantSum += p.W
	}
	if got := s.tr.QuerySum(r); got != wantSum {
		t.Errorf("%s: QuerySum(%+v) = %d, baseline %d", label, r, got, wantSum)
		return
	}
	if got := s.tr.QueryCount(r); got != int64(len(want)) {
		t.Errorf("%s: QueryCount(%+v) = %d, baseline %d", label, r, got, len(want))
		return
	}
	if got := s.tr.ReportAll(r); !slices.Equal(got, want) {
		t.Errorf("%s: ReportAll(%+v) = %v, baseline %v", label, r, got, want)
		return
	}
	if op.W == 1 { // ~1 in 9 checks: the expensive full-structure assertions
		full := dynRTAggregate(s.base.Points())
		if got := s.tr.Size(); got != int64(len(full)) {
			t.Errorf("%s: Size = %d, baseline %d", label, got, len(full))
			return
		}
		if err := s.tr.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", label, err)
		}
	}
}

func dynRTDiff() dynDiff[dynRT] { return dynDiff[dynRT]{apply: dynRTApply, check: dynRTCheck} }

// ---- segcount vs naiveseg ------------------------------------------

type dynSC struct {
	m    segcount.Map
	base *naiveseg.Set
}

func dynSCFresh() dynSC {
	return dynSC{m: segcount.New(pam.Options{}), base: naiveseg.Build(nil)}
}

func dynSCSeg(op workload.Op) segcount.Segment {
	lo := dynGrid(op.A)
	return segcount.Segment{XLo: lo, XHi: lo + math.Floor(op.B*5), Y: dynGrid(op.C)}
}

func dynSCApply(s dynSC, op workload.Op) dynSC {
	switch op.Kind {
	case workload.OpInsert:
		seg := dynSCSeg(op)
		s.m = s.m.Insert(seg)
		s.base = s.base.Insert(naiveseg.Segment(seg))
	case workload.OpDelete:
		seg := dynSCSeg(op)
		s.m = s.m.Delete(seg)
		s.base = s.base.Delete(naiveseg.Segment(seg))
	case workload.OpMerge:
		n := 1 + int(op.C*6)
		raw := workload.Segments(uint64(op.A*1e9), n, dynUniverse, 3)
		batch := make([]segcount.Segment, n)
		naive := make([]naiveseg.Segment, n)
		for i, g := range raw {
			seg := segcount.Segment{XLo: math.Floor(g.XLo), XHi: math.Floor(g.XHi), Y: math.Floor(g.Y)}
			batch[i] = seg
			naive[i] = naiveseg.Segment(seg)
		}
		s.m = s.m.Merge(segcount.New(pam.Options{}).Build(batch))
		s.base = s.base.Merge(naiveseg.Build(naive))
	}
	return s
}

func dynSCCheck(t *testing.T, s dynSC, op workload.Op, label string) {
	t.Helper()
	x := dynQ(op.A)
	xHi := x + math.Floor(op.B*5)
	ya, yb := dynQ(op.C), dynQ(op.D)
	yLo, yHi := min(ya, yb), max(ya, yb)
	if got, want := s.m.CountCrossing(x, yLo, yHi), int64(s.base.CountCrossing(x, yLo, yHi)); got != want {
		t.Errorf("%s: CountCrossing(%v,[%v,%v]) = %d, baseline %d", label, x, yLo, yHi, got, want)
		return
	}
	if got, want := s.m.CountWindow(x, xHi, yLo, yHi), int64(s.base.CountWindow(x, xHi, yLo, yHi)); got != want {
		t.Errorf("%s: CountWindow([%v,%v]x[%v,%v]) = %d, baseline %d", label, x, xHi, yLo, yHi, got, want)
		return
	}
	got := s.m.ReportWindow(x, xHi, yLo, yHi)
	want := make([]segcount.Segment, 0)
	for _, g := range s.base.ReportWindow(x, xHi, yLo, yHi) {
		want = append(want, segcount.Segment(g))
	}
	if !slices.Equal(got, want) { // both are in (y, xLo, xHi) order
		t.Errorf("%s: ReportWindow([%v,%v]x[%v,%v]) = %v, baseline %v", label, x, xHi, yLo, yHi, got, want)
		return
	}
	if op.W == 1 { // ~1 in 9 checks: the expensive full-structure assertions
		if got, want := s.m.Size(), int64(s.base.Size()); got != want {
			t.Errorf("%s: Size = %d, baseline %d", label, got, want)
			return
		}
		segs := s.m.Segments()
		base := s.base.Segments()
		for i := range segs {
			if segcount.Segment(base[i]) != segs[i] {
				t.Errorf("%s: Segments()[%d] = %v, baseline %v", label, i, segs[i], base[i])
				return
			}
		}
		if err := s.m.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", label, err)
		}
	}
}

func dynSCDiff() dynDiff[dynSC] { return dynDiff[dynSC]{apply: dynSCApply, check: dynSCCheck} }

// ---- stabbing vs naiverect -----------------------------------------

type dynST struct {
	m    stabbing.Map
	base *naiverect.Set
}

func dynSTFresh() dynST {
	return dynST{m: stabbing.New(pam.Options{}), base: naiverect.Build(nil)}
}

func dynSTRect(op workload.Op) stabbing.Rect {
	xlo, ylo := dynGrid(op.A), dynGrid(op.B)
	return stabbing.Rect{
		XLo: xlo, XHi: xlo + math.Floor(op.C*5),
		YLo: ylo, YHi: ylo + math.Floor(op.D*5),
	}
}

func dynSTApply(s dynST, op workload.Op) dynST {
	switch op.Kind {
	case workload.OpInsert:
		r := dynSTRect(op)
		s.m = s.m.Insert(r)
		s.base = s.base.Insert(naiverect.Rect(r))
	case workload.OpDelete:
		r := dynSTRect(op)
		s.m = s.m.Delete(r)
		s.base = s.base.Delete(naiverect.Rect(r))
	case workload.OpMerge:
		n := 1 + int(op.C*6)
		raw := workload.Rects(uint64(op.A*1e9), n, dynUniverse, 3)
		batch := make([]stabbing.Rect, n)
		naive := make([]naiverect.Rect, n)
		for i, g := range raw {
			r := stabbing.Rect{
				XLo: math.Floor(g.XLo), XHi: math.Floor(g.XHi),
				YLo: math.Floor(g.YLo), YHi: math.Floor(g.YHi),
			}
			batch[i] = r
			naive[i] = naiverect.Rect(r)
		}
		s.m = s.m.Merge(stabbing.New(pam.Options{}).Build(batch))
		s.base = s.base.Merge(naiverect.Build(naive))
	}
	return s
}

func dynSTCheck(t *testing.T, s dynST, op workload.Op, label string) {
	t.Helper()
	x, y := dynQ(op.A), dynQ(op.B)
	if got, want := s.m.CountStab(x, y), int64(s.base.CountStab(x, y)); got != want {
		t.Errorf("%s: CountStab(%v,%v) = %d, baseline %d", label, x, y, got, want)
		return
	}
	got := s.m.ReportStab(x, y)
	want := make([]stabbing.Rect, 0)
	for _, g := range s.base.ReportStab(x, y) {
		want = append(want, stabbing.Rect(g))
	}
	if !slices.Equal(got, want) { // both are in (xLo, xHi, yLo, yHi) order
		t.Errorf("%s: ReportStab(%v,%v) = %v, baseline %v", label, x, y, got, want)
		return
	}
	if s.m.Stabbed(x, y) != (len(want) > 0) {
		t.Errorf("%s: Stabbed(%v,%v) disagrees with report", label, x, y)
		return
	}
	if op.W == 1 { // ~1 in 9 checks: the expensive full-structure assertions
		if got, want := s.m.Size(), int64(s.base.Size()); got != want {
			t.Errorf("%s: Size = %d, baseline %d", label, got, want)
			return
		}
		rects := s.m.Rects()
		base := s.base.Rects()
		for i := range rects {
			if stabbing.Rect(base[i]) != rects[i] {
				t.Errorf("%s: Rects()[%d] = %v, baseline %v", label, i, rects[i], base[i])
				return
			}
		}
		if err := s.m.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", label, err)
		}
	}
}

func dynSTDiff() dynDiff[dynST] { return dynDiff[dynST]{apply: dynSTApply, check: dynSTCheck} }

// ---- the differential op-sequence tests ----------------------------

const dynOpCount = 1200 // interleaved ops per structure, > 1000

func TestDynamicRangeTreeDifferential(t *testing.T) {
	dynSmallFlushCap(t)
	dynRTDiff().run(t, dynRTFresh(), workload.Ops(101, dynOpCount, workload.DefaultMix))
}

func TestDynamicSegCountDifferential(t *testing.T) {
	dynSmallFlushCap(t)
	dynSCDiff().run(t, dynSCFresh(), workload.Ops(202, dynOpCount, workload.DefaultMix))
}

func TestDynamicStabbingDifferential(t *testing.T) {
	dynSmallFlushCap(t)
	dynSTDiff().run(t, dynSTFresh(), workload.Ops(303, dynOpCount, workload.DefaultMix))
}

// TestDynamicUpdateHeavy skews the mix toward updates so the buffer
// folds many times at many sizes, with no merges muddying attribution.
func TestDynamicUpdateHeavy(t *testing.T) {
	dynSmallFlushCap(t)
	mix := workload.Mix{Insert: 12, Delete: 6, Query: 3, Snapshot: 1}
	t.Run("rangetree", func(t *testing.T) {
		dynRTDiff().run(t, dynRTFresh(), workload.Ops(404, dynOpCount, mix))
	})
	t.Run("segcount", func(t *testing.T) {
		dynSCDiff().run(t, dynSCFresh(), workload.Ops(505, dynOpCount, mix))
	})
	t.Run("stabbing", func(t *testing.T) {
		dynSTDiff().run(t, dynSTFresh(), workload.Ops(606, dynOpCount, mix))
	})
}

// ---- fuzz targets ---------------------------------------------------

// dynOpsFromBytes decodes fuzzer bytes into an op sequence: five bytes
// per op — kind, then the four unit coordinates in 1/256 steps.
func dynOpsFromBytes(data []byte) []workload.Op {
	var ops []workload.Op
	for i := 0; i+4 < len(data) && len(ops) < 80; i += 5 {
		ops = append(ops, workload.Op{
			Kind: workload.OpKind(data[i] % 5),
			A:    float64(data[i+1]) / 256,
			B:    float64(data[i+2]) / 256,
			C:    float64(data[i+3]) / 256,
			D:    float64(data[i+4]) / 256,
			W:    int64(data[i]%7) + 1,
		})
	}
	return ops
}

// dynCarrySeed builds a carry-edge seed: a run of distinct inserts
// crossing the write-buffer cascade boundary, a snapshot, then
// deletes cancelling every insert, then a full-range query — the
// delete-heavy whole-level-cancellation shape at fuzz scale.
func dynCarrySeed(inserts int) []byte {
	var s []byte
	coord := func(i int) (byte, byte) { return byte((i * 5) % 251), byte((i * 7) % 251) }
	for i := 0; i < inserts; i++ {
		a, b := coord(i)
		s = append(s, 0, a, b, 10, 10)
	}
	s = append(s, 4, 0, 0, 0, 0) // snapshot (re-queried after the deletes fold)
	for i := 0; i < inserts; i++ {
		a, b := coord(i)
		s = append(s, 1, a, b, 10, 10)
	}
	s = append(s, 2, 0, 255, 0, 255) // query the full range
	return s
}

// dynFuzzSeeds covers every op kind (first byte mod 5 selects it):
// insert/query bursts, delete-after-insert, a merge, snapshots
// re-queried after updates, and carry-edge shapes around the ladder's
// BufCap flush boundary.
func dynFuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{
		0, 10, 20, 200, 40, // insert
		2, 10, 60, 200, 80, // query
	})
	f.Add([]byte{
		0, 128, 128, 128, 128, // insert
		4, 0, 0, 0, 0, // snapshot
		1, 128, 128, 128, 128, // delete the same element
		2, 130, 130, 130, 130, // query
		3, 77, 20, 180, 40, // merge a small batch
		2, 0, 255, 0, 255, // query the full range
	})
	f.Add([]byte{
		5, 30, 40, 50, 60, // insert (5 % 5 == 0)
		6, 30, 40, 50, 60, // delete
		7, 30, 40, 50, 60, // query
		9, 1, 2, 3, 4, // snapshot
		8, 90, 10, 10, 10, // merge
		7, 0, 0, 255, 255, // query
	})
	// Carry-propagation edges: insert runs one short of, exactly at,
	// and one past the write-buffer capacity, each followed by a
	// cancelling delete run (the 80-op cap trims the longest tail).
	f.Add(dynCarrySeed(dynamic.FlushCap() - 1))
	f.Add(dynCarrySeed(dynamic.FlushCap()))
	f.Add(dynCarrySeed(dynamic.FlushCap() + 1))
	// Leaf-block boundary: one past a full core block (default 32), so
	// the ladder's level builds split a block and the cancelling deletes
	// re-merge one, inside every backing structure.
	f.Add(dynCarrySeed(core.DefaultBlock + 1))
}

func FuzzDynamicRangeTree(f *testing.F) {
	old := dynamic.SetFlushCap(16)
	f.Cleanup(func() { dynamic.SetFlushCap(old) })
	dynFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		dynRTDiff().run(t, dynRTFresh(), dynOpsFromBytes(data))
	})
}

func FuzzDynamicSegCount(f *testing.F) {
	old := dynamic.SetFlushCap(16)
	f.Cleanup(func() { dynamic.SetFlushCap(old) })
	dynFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		dynSCDiff().run(t, dynSCFresh(), dynOpsFromBytes(data))
	})
}

func FuzzDynamicStabbing(f *testing.F) {
	old := dynamic.SetFlushCap(16)
	f.Cleanup(func() { dynamic.SetFlushCap(old) })
	dynFuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		dynSTDiff().run(t, dynSTFresh(), dynOpsFromBytes(data))
	})
}

// ---- ladder carry-propagation edges --------------------------------

// dynSmallFlushCap shrinks the ladder's write-buffer capacity so a
// short update sequence packs in many carry cascades, restoring the
// default when the test ends.
func dynSmallFlushCap(t *testing.T) {
	old := dynamic.SetFlushCap(16)
	t.Cleanup(func() { dynamic.SetFlushCap(old) })
}

// dynCheckLadderShape asserts the geometric level bound: level i holds
// at most (cap+1)<<i records (one update can append a live entry
// plus a tombstone), and the level count stays logarithmic in the
// total records ever inserted.
func dynCheckLadderShape(t *testing.T, counts []int64, totalOps int, label string) {
	t.Helper()
	cap := int64(dynamic.FlushCap())
	for i, c := range counts {
		if c > (cap+1)<<i {
			t.Fatalf("%s: level %d holds %d records, capacity %d", label, i, c, (cap+1)<<i)
		}
	}
	maxLevels := 2
	for cap<<maxLevels < int64(2*totalOps)+1 {
		maxLevels++
	}
	if len(counts) > maxLevels+1 {
		t.Fatalf("%s: %d levels for %d ops — not logarithmic", label, len(counts), totalOps)
	}
}

// TestDynamicLadderCarryEdges drives each structure through adversarial
// sizes around the flush boundaries — 2^k−1, 2^k, and 2^k+1 distinct
// inserts, so the final insert of the 2^k runs triggers a full
// cascaded carry — then a delete-heavy run that cancels whole levels,
// re-querying pre-fold snapshots after the cascades. Differential
// against flat oracles.
func TestDynamicLadderCarryEdges(t *testing.T) {
	dynSmallFlushCap(t)
	bufCap := dynamic.FlushCap()
	type snapshotRT struct {
		tr   rangetree.Tree
		size int64
		sum  int64
	}
	t.Run("rangetree", func(t *testing.T) {
		for _, k := range []int{6, 9, 11} {
			for _, n := range []int{1<<k - 1, 1 << k, 1<<k + 1} {
				t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
					tr := rangetree.New(pam.Options{})
					oracle := make(map[rangetree.Point]int64, n)
					var oracleSum int64
					pt := func(i int) rangetree.Point {
						return rangetree.Point{X: float64(i % 61), Y: float64(i / 61)}
					}
					var snaps []snapshotRT
					for i := 0; i < n; i++ {
						w := int64(i%7) + 1
						tr = tr.Insert(pt(i), w)
						oracle[pt(i)] += w
						oracleSum += w
						// Snapshot one op before each power-of-two flush
						// count, i.e. right before a fully cascaded carry.
						if c := i + 2; c >= 2*bufCap && c&(c-1) == 0 {
							snaps = append(snaps, snapshotRT{tr, int64(len(oracle)), oracleSum})
						}
					}
					all := rangetree.Rect{XLo: -1, XHi: 1e9, YLo: -1, YHi: 1e9}
					if got := tr.QueryCount(all); got != int64(len(oracle)) {
						t.Fatalf("QueryCount after inserts = %d, want %d", got, len(oracle))
					}
					if got := tr.QuerySum(all); got != oracleSum {
						t.Fatalf("QuerySum after inserts = %d, want %d", got, oracleSum)
					}
					// Spot rectangle against the oracle.
					spot := rangetree.Rect{XLo: 5, XHi: 30, YLo: 2, YHi: 20}
					var spotSum int64
					for p, w := range oracle {
						if p.X >= spot.XLo && p.X <= spot.XHi && p.Y >= spot.YLo && p.Y <= spot.YHi {
							spotSum += w
						}
					}
					if got := tr.QuerySum(spot); got != spotSum {
						t.Fatalf("QuerySum(spot) = %d, want %d", got, spotSum)
					}
					dynCheckLadderShape(t, tr.LevelRecordCounts(), n, "after inserts")
					if err := tr.Validate(); err != nil {
						t.Fatalf("Validate after inserts: %v", err)
					}

					// Delete everything, evens first then odds, so carries
					// annihilate whole levels on the way down.
					for i := 0; i < n; i += 2 {
						tr = tr.Delete(pt(i))
					}
					for i := 1; i < n; i += 2 {
						tr = tr.Delete(pt(i))
					}
					if got := tr.Size(); got != 0 {
						t.Fatalf("Size after deleting all = %d", got)
					}
					if got := tr.QueryCount(all); got != 0 {
						t.Fatalf("QueryCount after deleting all = %d", got)
					}
					// Mass cancellation must condense the ladder: with zero
					// live entries, at most the engine's condense floor of
					// dead records may remain in the levels.
					var records int64
					for _, c := range tr.LevelRecordCounts() {
						records += c
					}
					if records > 4*int64(bufCap) {
						t.Fatalf("%d level records after deleting everything — cancelled levels not condensed", records)
					}
					if err := tr.Validate(); err != nil {
						t.Fatalf("Validate after deletes: %v", err)
					}

					// Pre-fold snapshots answer from frozen contents after
					// every later cascade and the delete storm.
					for i, sn := range snaps {
						if got := sn.tr.Size(); got != sn.size {
							t.Fatalf("snapshot %d: Size = %d, want %d", i, got, sn.size)
						}
						if got := sn.tr.QuerySum(all); got != sn.sum {
							t.Fatalf("snapshot %d: QuerySum = %d, want %d", i, got, sn.sum)
						}
					}

					// The emptied structure keeps working.
					tr = tr.Insert(rangetree.Point{X: 1, Y: 1}, 9)
					if got := tr.QuerySum(all); got != 9 {
						t.Fatalf("QuerySum after re-insert = %d, want 9", got)
					}
				})
			}
		}
	})

	t.Run("segcount", func(t *testing.T) {
		for _, k := range []int{6, 8} {
			for _, n := range []int{1<<k - 1, 1 << k, 1<<k + 1} {
				t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
					m := segcount.New(pam.Options{})
					seg := func(i int) segcount.Segment {
						x := float64(i % 41)
						return segcount.Segment{XLo: x, XHi: x + 3, Y: float64(i / 41)}
					}
					var snaps []segcount.Map
					var snapCounts []int64
					for i := 0; i < n; i++ {
						m = m.Insert(seg(i))
						if c := i + 2; c >= 2*bufCap && c&(c-1) == 0 {
							snaps = append(snaps, m)
							snapCounts = append(snapCounts, m.CountLine(2))
						}
					}
					want := int64(0)
					for i := 0; i < n; i++ {
						if s := seg(i); s.CrossesLine(2) {
							want++
						}
					}
					if got := m.CountLine(2); got != want {
						t.Fatalf("CountLine(2) = %d, want %d", got, want)
					}
					dynCheckLadderShape(t, m.LevelRecordCounts(), n, "after inserts")
					if err := m.Validate(); err != nil {
						t.Fatalf("Validate after inserts: %v", err)
					}
					for i := n - 1; i >= 0; i-- {
						m = m.Delete(seg(i))
					}
					if m.Size() != 0 || m.CountLine(2) != 0 {
						t.Fatalf("size %d, CountLine %d after deleting all", m.Size(), m.CountLine(2))
					}
					for i := range snaps {
						if got := snaps[i].CountLine(2); got != snapCounts[i] {
							t.Fatalf("snapshot %d: CountLine = %d, want %d", i, got, snapCounts[i])
						}
					}
				})
			}
		}
	})

	t.Run("stabbing", func(t *testing.T) {
		for _, k := range []int{6, 8} {
			for _, n := range []int{1<<k - 1, 1 << k, 1<<k + 1} {
				t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
					m := stabbing.New(pam.Options{})
					rect := func(i int) stabbing.Rect {
						x, y := float64(i%37), float64(i/37)
						return stabbing.Rect{XLo: x, XHi: x + 4, YLo: y, YHi: y + 4}
					}
					for i := 0; i < n; i++ {
						m = m.Insert(rect(i))
					}
					want := int64(0)
					for i := 0; i < n; i++ {
						if rect(i).Contains(3, 3) {
							want++
						}
					}
					if got := m.CountStab(3, 3); got != want {
						t.Fatalf("CountStab(3,3) = %d, want %d", got, want)
					}
					dynCheckLadderShape(t, m.LevelRecordCounts(), n, "after inserts")
					if err := m.Validate(); err != nil {
						t.Fatalf("Validate after inserts: %v", err)
					}
					for i := 0; i < n; i++ {
						m = m.Delete(rect(i))
					}
					if m.Size() != 0 || m.CountStab(3, 3) != 0 {
						t.Fatalf("size %d, CountStab %d after deleting all", m.Size(), m.CountStab(3, 3))
					}
				})
			}
		}
	})
}

// ---- amortized complexity ------------------------------------------

// dynAllocs counts heap allocations across one call of f, single-
// threaded (the way segcount's complexity tests count allocations, but
// without AllocsPerRun's warm-up call — f here is a whole build, too
// expensive to run twice).
func dynAllocs(f func()) float64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs - before.Mallocs)
}

// TestDynamicInsertComplexity asserts the amortized insert bound of the
// logarithmic-method ladder: growing an empty structure to n by single
// Inserts must cost amortized polylog(n) allocations per insert — each
// record is rebuilt once per level it carries through, and the levels
// are geometric, so total carry work is O(n · polylog n) — far below
// the Θ(n) per insert a rebuild-per-update design pays. The resulting
// ladder must also have the binary-counter shape: per-level record
// counts bounded by the geometric capacities, logarithmically many
// levels. rangetree runs the issue's full 1k → 64k range; segcount and
// stabbing (three bulk maps per level, so ~3x the constant) run 1k →
// 16k to keep the suite fast, asserting the same growth bounds.
func TestDynamicInsertComplexity(t *testing.T) {
	old := parallel.Parallelism()
	parallel.SetParallelism(1)
	defer parallel.SetParallelism(old)

	check := func(t *testing.T, small, large int, perInsert func(n int) float64) {
		t.Helper()
		aSmall, aLarge := perInsert(small), perInsert(large)
		// Far below linear: a rebuild-per-insert design allocates
		// Θ(n log n) per insert — millions of allocations at these
		// sizes, where the amortized scheme stays in the hundreds
		// (polylog with a per-fold constant of one nested-augmented
		// map for rangetree, three for segcount/stabbing).
		if aLarge > float64(large)/8 {
			t.Fatalf("amortized insert at n=%d cost %v allocs — near-linear work", large, aLarge)
		}
		// Growth check: n grew %dx, amortized polylog cost must grow
		// like (log n)^c, i.e. by a small constant factor.
		if aLarge > 6*aSmall+64 {
			t.Fatalf("amortized insert cost not polylog: n %dx => allocs/insert %v -> %v",
				large/small, aSmall, aLarge)
		}
		t.Logf("allocs/insert: n=%d: %.1f, n=%d: %.1f", small, aSmall, large, aLarge)
	}

	t.Run("rangetree", func(t *testing.T) {
		check(t, 1<<10, 1<<16, func(n int) float64 {
			return dynAllocs(func() {
				tr := rangetree.New(pam.Options{})
				for i := 0; i < n; i++ {
					tr = tr.Insert(rangetree.Point{X: float64(i % 509), Y: float64(i / 509)}, 1)
				}
				if tr.Size() != int64(n) {
					t.Fatalf("lost inserts: size %d of %d", tr.Size(), n)
				}
				dynCheckLadderShape(t, tr.LevelRecordCounts(), n, fmt.Sprintf("n=%d", n))
			}) / float64(n)
		})
	})
	t.Run("segcount", func(t *testing.T) {
		check(t, 1<<10, 1<<14, func(n int) float64 {
			return dynAllocs(func() {
				m := segcount.New(pam.Options{})
				for i := 0; i < n; i++ {
					x := float64(i % 509)
					m = m.Insert(segcount.Segment{XLo: x, XHi: x + 1, Y: float64(i / 509)})
				}
				if m.Size() != int64(n) {
					t.Fatalf("lost inserts: size %d of %d", m.Size(), n)
				}
			}) / float64(n)
		})
	})
	t.Run("stabbing", func(t *testing.T) {
		check(t, 1<<10, 1<<14, func(n int) float64 {
			return dynAllocs(func() {
				m := stabbing.New(pam.Options{})
				for i := 0; i < n; i++ {
					x, y := float64(i%509), float64(i/509)
					m = m.Insert(stabbing.Rect{XLo: x, XHi: x + 1, YLo: y, YHi: y + 1})
				}
				if m.Size() != int64(n) {
					t.Fatalf("lost inserts: size %d of %d", m.Size(), n)
				}
			}) / float64(n)
		})
	})
}

// ---- concurrency ----------------------------------------------------

// TestDynamicConcurrentSnapshotReads stresses the snapshot-isolation
// model the dynamic layering inherits from pam: one writer inserts and
// deletes (triggering buffer folds and bulk rebuilds) while readers
// hammer a frozen snapshot — whose answers must never change — and
// whatever the latest published version is. `make race` runs this
// under the race detector.
func TestDynamicConcurrentSnapshotReads(t *testing.T) {
	raw := workload.Segments(31, 256, 64, 8)
	segs := make([]segcount.Segment, len(raw))
	for i, g := range raw {
		segs[i] = segcount.Segment(g)
	}
	m0 := segcount.New(pam.Options{}).Build(segs)
	const probes = 32
	want := [probes]int64{}
	for i := range want {
		want[i] = m0.CountLine(float64(i * 2))
	}

	var latest atomic.Pointer[segcount.Map]
	latest.Store(&m0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := i % probes
				if got := m0.CountLine(float64(p * 2)); got != want[p] {
					t.Errorf("frozen snapshot changed: CountLine(%d) = %d, want %d", p*2, got, want[p])
					return
				}
				cur := latest.Load()
				if got := cur.CountCrossing(float64(p*2), 0, 64); got < 0 {
					t.Errorf("latest version returned negative count %d", got)
					return
				}
			}
		}()
	}

	updates := workload.Segments(32, 1500, 64, 8)
	m := m0
	for i, g := range updates {
		m = m.Insert(segcount.Segment(g))
		if i%3 == 0 {
			m = m.Delete(segcount.Segment(updates[i/2]))
		}
		cp := m
		latest.Store(&cp)
	}
	close(stop)
	wg.Wait()

	// The writer's final version answers like a from-scratch oracle.
	final := naiveseg.Build(nil)
	for _, s := range segs {
		final = final.Insert(naiveseg.Segment(s))
	}
	for i, g := range updates {
		final = final.Insert(naiveseg.Segment(g))
		if i%3 == 0 {
			final = final.Delete(naiveseg.Segment(updates[i/2]))
		}
	}
	if m.Size() != int64(final.Size()) {
		t.Fatalf("final size %d, oracle %d", m.Size(), final.Size())
	}
	for p := 0; p < probes; p++ {
		x := float64(p * 2)
		if got, want := m.CountLine(x), int64(final.CountCrossing(x, math.Inf(-1), math.Inf(1))); got != want {
			t.Fatalf("final CountLine(%v) = %d, oracle %d", x, got, want)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("final version invalid: %v", err)
	}
}
