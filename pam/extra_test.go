package pam

import (
	"math/rand"
	"slices"
	"testing"
)

func TestMapWrapperOps(t *testing.T) {
	mk := func(keys ...string) Map[string, int] {
		m := NewMap[string, int](Options{})
		for i, k := range keys {
			m = m.Insert(k, i)
		}
		return m
	}
	a := mk("a", "b", "c", "d")
	b := mk("c", "d", "e")

	if got := a.UnionWith(b, func(x, y int) int { return x + y }).Size(); got != 5 {
		t.Fatalf("UnionWith size %d", got)
	}
	if got := a.IntersectWith(b, func(x, y int) int { return 100 }).Size(); got != 2 {
		t.Fatalf("IntersectWith size %d", got)
	}
	if v, _ := a.IntersectWith(b, func(x, y int) int { return 100 }).Find("c"); v != 100 {
		t.Fatalf("IntersectWith value %d", v)
	}
	if got := a.Range("b", "c").Keys(); !slices.Equal(got, []string{"b", "c"}) {
		t.Fatalf("Range keys %v", got)
	}
	if got := a.UpTo("b").Size(); got != 2 {
		t.Fatalf("UpTo size %d", got)
	}
	if got := a.DownTo("c").Size(); got != 2 {
		t.Fatalf("DownTo size %d", got)
	}
	if got := a.Filter(func(k string, _ int) bool { return k > "b" }).Size(); got != 2 {
		t.Fatalf("Filter size %d", got)
	}
	dbl := a.MapValues(func(_ string, v int) int { return v * 2 })
	if v, _ := dbl.Find("d"); v != 6 {
		t.Fatalf("MapValues %d", v)
	}
	md := a.MultiDelete([]string{"a", "z"})
	if md.Size() != 3 || md.Contains("a") {
		t.Fatal("MultiDelete wrong")
	}
	mi := a.MultiInsert([]KV[string, int]{{Key: "x", Val: 9}}, nil)
	if v, _ := mi.Find("x"); v != 9 {
		t.Fatal("MultiInsert wrong")
	}
	bs := NewMap[string, int](Options{}).BuildSorted([]KV[string, int]{{Key: "m", Val: 1}, {Key: "n", Val: 2}})
	if bs.Size() != 2 {
		t.Fatal("BuildSorted wrong")
	}
	iw := a.InsertWith("a", 10, func(old, new int) int { return old + new })
	if v, _ := iw.Find("a"); v != 10 { // old value was 0
		t.Fatalf("InsertWith %d", v)
	}
}

func TestForEachRangeAndValues(t *testing.T) {
	m := newSumMap()
	for i := uint64(0); i < 100; i++ {
		m = m.Insert(i, int64(i))
	}
	var got []uint64
	m.ForEachRange(10, 20, func(k uint64, _ int64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("ForEachRange got %v", got)
	}
	vals := m.Values()
	if len(vals) != 100 || vals[42] != 42 {
		t.Fatalf("Values wrong: len=%d", len(vals))
	}
}

func TestAugTopK(t *testing.T) {
	m := NewAugMap[int, int64, int64, MaxEntry[int, int64]](Options{})
	rng := rand.New(rand.NewSource(5))
	n := 2000
	all := make([]int64, n)
	for i := 0; i < n; i++ {
		v := int64(rng.Intn(1 << 20))
		m = m.Insert(i, v)
		all[i] = v
	}
	slices.Sort(all)
	slices.Reverse(all)
	top := AugTopK(m, 25, func(a, b int64) bool { return a < b })
	if len(top) != 25 {
		t.Fatalf("AugTopK returned %d", len(top))
	}
	for i, e := range top {
		if e.Val != all[i] {
			t.Fatalf("AugTopK[%d] = %d want %d", i, e.Val, all[i])
		}
	}
}

func TestAugFilterWithAtFacade(t *testing.T) {
	m := NewAugMap[int, int64, int64, MaxEntry[int, int64]](Options{})
	for i := 0; i < 1000; i++ {
		m = m.Insert(i, int64(i))
	}
	// hAny: some entry >= 500; hAll cannot be expressed with max for
	// "all >= 500", so pass nil and check equivalence with AugFilter.
	a := m.AugFilterWith(func(x int64) bool { return x >= 500 }, nil)
	b := m.AugFilter(func(x int64) bool { return x >= 500 })
	if a.Size() != b.Size() || a.Size() != 500 {
		t.Fatalf("sizes %d vs %d", a.Size(), b.Size())
	}
}

func TestInPlaceAndRetain(t *testing.T) {
	st := &Stats{}
	m := NewAugMap[uint64, int64, int64, SumEntry[uint64, int64]](Options{Stats: st})
	for i := uint64(0); i < 1000; i++ {
		m.InsertInPlace(i, 1)
	}
	if m.AugVal() != 1000 {
		t.Fatalf("in-place inserts lost entries: %d", m.AugVal())
	}
	snap := m.Retain()
	m.InsertInPlace(5000, 1)
	if snap.Contains(5000) {
		t.Fatal("retained snapshot observed in-place update")
	}
	m.DeleteInPlace(0)
	if !snap.Contains(0) {
		t.Fatal("retained snapshot lost a key")
	}
	m.MultiInsertInPlace([]KV[uint64, int64]{{Key: 7000, Val: 3}}, nil)
	if v, _ := m.Find(7000); v != 3 {
		t.Fatal("MultiInsertInPlace missed")
	}
	m.Release()
	snapCopy := snap
	snapCopy.Release()
	if st.Live() != 0 {
		t.Fatalf("leaked %d nodes", st.Live())
	}
}

func TestSharedUpdate(t *testing.T) {
	s := NewShared(newSumMap())
	s.Update(func(m sumMap) sumMap { return m.Insert(1, 10) })
	s.Update(func(m sumMap) sumMap { return m.Insert(2, 20) })
	if got := s.Snapshot().AugVal(); got != 30 {
		t.Fatalf("after updates AugVal = %d", got)
	}
	s.Store(newSumMap())
	if !s.Snapshot().IsEmpty() {
		t.Fatal("Store did not replace")
	}
}

func TestSetOperationsComplete(t *testing.T) {
	s := NewSet[string](Options{}).FromKeys([]string{"b", "a", "c"})
	var seen []string
	s.ForEach(func(k string) bool {
		seen = append(seen, k)
		return true
	})
	if !slices.Equal(seen, []string{"a", "b", "c"}) {
		t.Fatalf("ForEach order %v", seen)
	}
	s2 := s.Add("d").Remove("a")
	if s2.Contains("a") || !s2.Contains("d") {
		t.Fatal("Add/Remove wrong")
	}
	if s.Contains("d") {
		t.Fatal("set not persistent")
	}
	u := s.Union(s2)
	if u.Size() != 4 {
		t.Fatalf("set union size %d", u.Size())
	}
	if s.IsEmpty() {
		t.Fatal("IsEmpty wrong")
	}
}

func TestMinEntryIdentities(t *testing.T) {
	// Exercise minOf/maxOf across value types.
	mInt8 := NewAugMap[int, int8, int8, MaxEntry[int, int8]](Options{})
	if mInt8.AugVal() != -128 {
		t.Fatalf("int8 max identity %d", mInt8.AugVal())
	}
	mU16 := NewAugMap[int, uint16, uint16, MinEntry[int, uint16]](Options{})
	if mU16.AugVal() != 65535 {
		t.Fatalf("uint16 min identity %d", mU16.AugVal())
	}
	mF32 := NewAugMap[int, float32, float32, MaxEntry[int, float32]](Options{})
	if !(mF32.AugVal() < -1e38) {
		t.Fatalf("float32 max identity %v", mF32.AugVal())
	}
	// Strings: min identity is "", usable for MaxEntry.
	mStr := NewAugMap[int, string, string, MaxEntry[int, string]](Options{})
	mStr = mStr.Insert(1, "b").Insert(2, "a")
	if mStr.AugVal() != "b" {
		t.Fatalf("string max aug %q", mStr.AugVal())
	}
}
