package pam

import "math"

// Ready-made entry (augmentation) specifications. Each is a zero-size
// struct implementing Aug for a family of key/value types, mirroring the
// entry structs users write for PAM in C++ (Figure 3 of the paper).

// SumEntry augments with the sum of values: the paper's Equation 1 map
// AM(K, <, V, V, (k,v) -> v, +, 0).
type SumEntry[K Ordered, V Number] struct{}

// Less orders keys with <.
func (SumEntry[K, V]) Less(a, b K) bool { return a < b }

// Id returns 0.
func (SumEntry[K, V]) Id() V { var z V; return z }

// Base returns the entry's value.
func (SumEntry[K, V]) Base(_ K, v V) V { return v }

// Combine adds.
func (SumEntry[K, V]) Combine(x, y V) V { return x + y }

// MaxEntry augments with the maximum value. Id is the minimum of V, so
// the augmented value of an empty map compares below every real value.
type MaxEntry[K Ordered, V Ordered] struct{}

// Less orders keys with <.
func (MaxEntry[K, V]) Less(a, b K) bool { return a < b }

// Id returns the minimum value of V.
func (MaxEntry[K, V]) Id() V { return minOf[V]() }

// Base returns the entry's value.
func (MaxEntry[K, V]) Base(_ K, v V) V { return v }

// Combine takes the maximum.
func (MaxEntry[K, V]) Combine(x, y V) V { return max(x, y) }

// MinEntry augments with the minimum value.
type MinEntry[K Ordered, V Ordered] struct{}

// Less orders keys with <.
func (MinEntry[K, V]) Less(a, b K) bool { return a < b }

// Id returns the maximum value of V.
func (MinEntry[K, V]) Id() V { return maxOf[V]() }

// Base returns the entry's value.
func (MinEntry[K, V]) Base(_ K, v V) V { return v }

// Combine takes the minimum.
func (MinEntry[K, V]) Combine(x, y V) V { return min(x, y) }

// CountEntry augments with the entry count (so AugRange counts entries
// in a key range in O(log n); note Size/Rank already cover the common
// cases — CountEntry exists for composition with filtered views).
type CountEntry[K Ordered, V any] struct{}

// Less orders keys with <.
func (CountEntry[K, V]) Less(a, b K) bool { return a < b }

// Id returns 0.
func (CountEntry[K, V]) Id() int64 { return 0 }

// Base returns 1.
func (CountEntry[K, V]) Base(K, V) int64 { return 1 }

// Combine adds.
func (CountEntry[K, V]) Combine(x, y int64) int64 { return x + y }

// NoAug is the trivial augmentation used by plain Maps.
type NoAug[K Ordered, V any] struct{}

// Less orders keys with <.
func (NoAug[K, V]) Less(a, b K) bool { return a < b }

// Id returns the empty struct.
func (NoAug[K, V]) Id() struct{} { return struct{}{} }

// Base returns the empty struct.
func (NoAug[K, V]) Base(K, V) struct{} { return struct{}{} }

// Combine returns the empty struct.
func (NoAug[K, V]) Combine(struct{}, struct{}) struct{} { return struct{}{} }

// minOf returns the least value of an ordered numeric or string type.
func minOf[V Ordered]() V {
	var z V
	switch p := any(&z).(type) {
	case *int:
		*p = math.MinInt
	case *int8:
		*p = math.MinInt8
	case *int16:
		*p = math.MinInt16
	case *int32:
		*p = math.MinInt32
	case *int64:
		*p = math.MinInt64
	case *float32:
		*p = float32(math.Inf(-1))
	case *float64:
		*p = math.Inf(-1)
	}
	// Unsigned and string types: the zero value is already the minimum.
	return z
}

// maxOf returns the greatest value of an ordered numeric type. For
// strings there is no maximum; MinEntry on string values would need a
// custom entry.
func maxOf[V Ordered]() V {
	var z V
	switch p := any(&z).(type) {
	case *int:
		*p = math.MaxInt
	case *int8:
		*p = math.MaxInt8
	case *int16:
		*p = math.MaxInt16
	case *int32:
		*p = math.MaxInt32
	case *int64:
		*p = math.MaxInt64
	case *uint:
		*p = math.MaxUint
	case *uint8:
		*p = math.MaxUint8
	case *uint16:
		*p = math.MaxUint16
	case *uint32:
		*p = math.MaxUint32
	case *uint64:
		*p = math.MaxUint64
	case *float32:
		*p = float32(math.Inf(1))
	case *float64:
		*p = math.Inf(1)
	}
	return z
}
