// Package pam provides parallel augmented maps: ordered key-value maps
// augmented with an associative "sum" over their entries, after the PAM
// library of Sun, Ferizovic and Blelloch (PPoPP 2018).
//
// An augmented map type AM(K, <, V, A, g, f, I) is parameterized by a key
// type and ordering, a value type, and an augmenting monoid (A, f, I)
// with base function g mapping one entry to an augmented value. The
// augmented value of a map is then
//
//	A(m) = f(g(k1,v1), g(k2,v2), ..., g(kn,vn))
//
// and is maintained in the tree so that range sums (AugRange, AugLeft),
// augmented filtering (AugFilter) and augmented projection (AugProject)
// run in polylogarithmic or output-sensitive time instead of linear.
//
// The parameterization is supplied as an Entry implementation (the
// analogue of PAM's C++ entry struct): a zero-size type with Less, Id,
// Base and Combine methods. Ready-made entries cover the common cases:
// SumEntry, MaxEntry, MinEntry and CountEntry for augmented maps, and
// NoAug (used implicitly by Map and Set) for plain ones.
//
// All maps are functional (persistent): operations return new maps and
// never modify existing ones, so any snapshot stays valid and can be
// read concurrently while new versions are produced — the paper's
// snapshot-isolation concurrency model (see Shared). Bulk operations
// (Union, Intersect, Difference, Build, MultiInsert, Filter, MapReduce)
// run in parallel with work-efficient join-based algorithms.
package pam

import (
	"cmp"

	"repro/internal/core"
)

// Aug is the augmentation specification of a map type: ordering plus the
// augmenting monoid. Implementations should be zero-size structs so the
// compiler can inline the calls; see SumEntry for an example.
type Aug[K, V, A any] interface {
	// Less is a strict total order on keys.
	Less(a, b K) bool
	// Id is the identity of Combine.
	Id() A
	// Base maps the entry (k, v) to its augmented value.
	Base(k K, v V) A
	// Combine folds two augmented values; it must be associative.
	Combine(x, y A) A
}

// KV is a key-value pair.
type KV[K, V any] struct {
	Key K
	Val V
}

// Scheme selects the balancing scheme backing a map.
type Scheme = core.Scheme

// Balancing schemes. All provide the same asymptotic guarantees; the
// paper (and this library) defaults to weight-balanced trees because the
// subtree sizes they balance on are stored in every node anyway.
const (
	WeightBalanced = core.WeightBalanced
	AVL            = core.AVL
	RedBlack       = core.RedBlack
	Treap          = core.Treap
)

// Stats exposes node-allocation counters for space experiments.
type Stats = core.Stats

// Options configures a map family; the zero value is a weight-balanced
// tree with default parallel grain, default leaf block size, and no
// statistics.
type Options struct {
	// Scheme is the balancing scheme.
	Scheme Scheme
	// Grain overrides the sequential-cutoff size of parallel operations.
	Grain int64
	// Block is the leaf block size B (PaC-tree style blocked leaves):
	// the fringe of every map stores sorted runs of up to B entries as
	// flat arrays with one precomputed augmented value per block, so
	// builds, unions and scans allocate and pointer-chase ~B times less
	// at the price of O(B) array work in the one block an update lands
	// in. 0 means the default (32, the PaC-tree sweet spot: big enough
	// to amortize the node header and fill cache lines, small enough
	// that block copies stay cheap next to the O(log n) search above).
	// Raise it (64-128) for read-mostly scan/aggregate workloads; lower
	// it (8-16) when values are large or single-key updates dominate.
	// Block is independent of Grain (Grain caps parallel fork-out by
	// subtree size; Block shapes the memory layout) and orthogonal to
	// Pool (blocks are recycled through the same pool as nodes; their
	// entry arrays are released to the GC). Like Scheme, Block must
	// agree between maps that are combined (Union, Concat, ...).
	Block int
	// Compress, when non-nil, must be a Compressor[K, V] for the map's
	// key and value types (NewAugMap panics on a mismatch): leaf blocks
	// are then stored difference-encoded — a first-key anchor plus
	// zig-zag varint key deltas, with compressor-encoded values —
	// instead of flat entry arrays, cutting bytes/entry 2-5x for
	// integer-keyed maps with locally dense keys (ids, timestamps,
	// offsets) at the price of sequential O(B) block decoding on probes
	// and re-encoding on block mutation. Scans decode on the fly and
	// checkpoints serialize packed blocks verbatim, so durable stores
	// shrink by the same factor. Requires keys with an exact uint64
	// round-trip (see Compressor); CompressUint64 and CompressInt are
	// the stock instances. Like Scheme and Block, Compress must agree
	// between maps that are combined.
	Compress any
	// Stats, when non-nil, collects node allocation counters.
	Stats *Stats
	// Pool enables node recycling through a sync.Pool. Safety
	// invariant: snapshots must not outlive releases — once Release
	// (or an InPlace operation) drops the last reference to nodes a
	// handle shares, that handle and every map derived from it are
	// dead, because the nodes return to the pool for immediate reuse.
	// Use Retain to keep a snapshot alive across a Release. Misuse
	// fails loudly (best-effort): freed nodes are poisoned so a stale
	// release or mutation panics, and `go test -race` flags concurrent
	// stale reads. See core.Config.Pool.
	Pool bool
}

func (o Options) coreConfig() core.Config {
	return core.Config{Scheme: o.Scheme, Grain: o.Grain, Block: o.Block, Compress: o.Compress, Stats: o.Stats, Pool: o.Pool}
}

// AugMap is a persistent augmented ordered map with entry specification E.
// The zero value is an empty weight-balanced map, immediately usable.
type AugMap[K, V, A any, E Aug[K, V, A]] struct {
	t core.Tree[K, V, A, E]
}

// NewAugMap returns an empty augmented map with the given options.
func NewAugMap[K, V, A any, E Aug[K, V, A]](opts Options) AugMap[K, V, A, E] {
	return AugMap[K, V, A, E]{t: core.New[K, V, A, E](opts.coreConfig())}
}

func wrap[K, V, A any, E Aug[K, V, A]](t core.Tree[K, V, A, E]) AugMap[K, V, A, E] {
	return AugMap[K, V, A, E]{t: t}
}

// Size returns the number of entries.
func (m AugMap[K, V, A, E]) Size() int64 { return m.t.Size() }

// IsEmpty reports whether the map is empty.
func (m AugMap[K, V, A, E]) IsEmpty() bool { return m.t.IsEmpty() }

// Find returns the value at k.
func (m AugMap[K, V, A, E]) Find(k K) (V, bool) { return m.t.Find(k) }

// Contains reports whether k is present.
func (m AugMap[K, V, A, E]) Contains(k K) bool { return m.t.Contains(k) }

// Insert returns m with (k, v) added, replacing any existing value.
func (m AugMap[K, V, A, E]) Insert(k K, v V) AugMap[K, V, A, E] {
	return wrap(m.t.Insert(k, v))
}

// InsertWith returns m with (k, v) added, combining with an existing
// value as h(old, v).
func (m AugMap[K, V, A, E]) InsertWith(k K, v V, h func(old, new V) V) AugMap[K, V, A, E] {
	return wrap(m.t.InsertWith(k, v, h))
}

// Delete returns m without k.
func (m AugMap[K, V, A, E]) Delete(k K) AugMap[K, V, A, E] { return wrap(m.t.Delete(k)) }

// Union returns the union of m and other (other's values win on
// collisions). Runs in parallel; O(x·log(y/x+1)) work for sizes x <= y.
func (m AugMap[K, V, A, E]) Union(other AugMap[K, V, A, E]) AugMap[K, V, A, E] {
	return wrap(m.t.Union(other.t))
}

// UnionWith returns the union, combining values of keys present in both
// maps as h(m's value, other's value).
func (m AugMap[K, V, A, E]) UnionWith(other AugMap[K, V, A, E], h func(v1, v2 V) V) AugMap[K, V, A, E] {
	return wrap(m.t.UnionWith(other.t, h))
}

// Intersect returns the entries whose keys appear in both maps, keeping
// other's values.
func (m AugMap[K, V, A, E]) Intersect(other AugMap[K, V, A, E]) AugMap[K, V, A, E] {
	return wrap(m.t.Intersect(other.t))
}

// IntersectWith returns the intersection with values h(v1, v2).
func (m AugMap[K, V, A, E]) IntersectWith(other AugMap[K, V, A, E], h func(v1, v2 V) V) AugMap[K, V, A, E] {
	return wrap(m.t.IntersectWith(other.t, h))
}

// Difference returns the entries of m whose keys are not in other.
func (m AugMap[K, V, A, E]) Difference(other AugMap[K, V, A, E]) AugMap[K, V, A, E] {
	return wrap(m.t.Difference(other.t))
}

// Filter returns the entries satisfying pred. O(n) work, polylog span.
func (m AugMap[K, V, A, E]) Filter(pred func(k K, v V) bool) AugMap[K, V, A, E] {
	return wrap(m.t.Filter(pred))
}

// AugFilter returns the entries e whose Base value satisfies h, where h
// must satisfy h(Combine(a,b)) == h(a) || h(b) (e.g. a threshold test
// under a max augmentation). Subtrees whose augmented value fails h are
// pruned unvisited: O(k·log(n/k+1)) work for k results.
func (m AugMap[K, V, A, E]) AugFilter(h func(a A) bool) AugMap[K, V, A, E] {
	return wrap(m.t.AugFilter(h))
}

// Build returns a map (with m's options) holding items; duplicate keys
// combine left-to-right with h (nil h keeps the last value). The paper's
// BUILD: parallel sort, parallel dedup, balanced join construction.
func (m AugMap[K, V, A, E]) Build(items []KV[K, V], h func(old, new V) V) AugMap[K, V, A, E] {
	return wrap(m.t.Build(toEntries(items), h))
}

// BuildSorted is Build for strictly-increasing keyed input.
func (m AugMap[K, V, A, E]) BuildSorted(items []KV[K, V]) AugMap[K, V, A, E] {
	return wrap(m.t.BuildSorted(toEntries(items)))
}

// MultiInsert returns m with the batch inserted (parallel bulk update);
// collisions combine as h(old, new), nil h overwrites.
func (m AugMap[K, V, A, E]) MultiInsert(items []KV[K, V], h func(old, new V) V) AugMap[K, V, A, E] {
	return wrap(m.t.MultiInsert(toEntries(items), h))
}

// MultiDelete returns m without the given keys (parallel bulk update).
func (m AugMap[K, V, A, E]) MultiDelete(keys []K) AugMap[K, V, A, E] {
	return wrap(m.t.MultiDelete(keys))
}

// Range returns the submap with lo <= key <= hi.
func (m AugMap[K, V, A, E]) Range(lo, hi K) AugMap[K, V, A, E] { return wrap(m.t.Range(lo, hi)) }

// UpTo returns the submap with key <= hi.
func (m AugMap[K, V, A, E]) UpTo(hi K) AugMap[K, V, A, E] { return wrap(m.t.UpTo(hi)) }

// DownTo returns the submap with key >= lo.
func (m AugMap[K, V, A, E]) DownTo(lo K) AugMap[K, V, A, E] { return wrap(m.t.DownTo(lo)) }

// Split divides m at k into entries below k, the value at k if present,
// and entries above k.
func (m AugMap[K, V, A, E]) Split(k K) (left AugMap[K, V, A, E], v V, found bool, right AugMap[K, V, A, E]) {
	l, v, found, r := m.t.Split(k)
	return wrap(l), v, found, wrap(r)
}

// Join composes m, (k, v), and other; keys of m must be < k and keys of
// other > k.
func (m AugMap[K, V, A, E]) Join(k K, v V, other AugMap[K, V, A, E]) AugMap[K, V, A, E] {
	return wrap(m.t.Join(k, v, other.t))
}

// Concat composes m and other when every key of m is below every key of
// other (the paper's join2).
func (m AugMap[K, V, A, E]) Concat(other AugMap[K, V, A, E]) AugMap[K, V, A, E] {
	return wrap(m.t.Concat(other.t))
}

// First returns the minimum entry.
func (m AugMap[K, V, A, E]) First() (K, V, bool) { return m.t.First() }

// Last returns the maximum entry.
func (m AugMap[K, V, A, E]) Last() (K, V, bool) { return m.t.Last() }

// Previous returns the largest entry with key < k.
func (m AugMap[K, V, A, E]) Previous(k K) (K, V, bool) { return m.t.Previous(k) }

// Next returns the smallest entry with key > k.
func (m AugMap[K, V, A, E]) Next(k K) (K, V, bool) { return m.t.Next(k) }

// Rank returns the number of keys < k.
func (m AugMap[K, V, A, E]) Rank(k K) int64 { return m.t.Rank(k) }

// Select returns the i-th smallest entry (0-based).
func (m AugMap[K, V, A, E]) Select(i int64) (K, V, bool) { return m.t.Select(i) }

// AugVal returns the augmented value of the whole map in O(1).
func (m AugMap[K, V, A, E]) AugVal() A { return m.t.AugVal() }

// AugLeft returns the augmented value over keys <= k in O(log n).
func (m AugMap[K, V, A, E]) AugLeft(k K) A { return m.t.AugLeft(k) }

// AugRight returns the augmented value over keys >= k in O(log n).
func (m AugMap[K, V, A, E]) AugRight(k K) A { return m.t.AugRight(k) }

// AugRange returns the augmented value over lo <= key <= hi in O(log n).
func (m AugMap[K, V, A, E]) AugRange(lo, hi K) A { return m.t.AugRange(lo, hi) }

// ForEach visits entries in key order until visit returns false.
func (m AugMap[K, V, A, E]) ForEach(visit func(k K, v V) bool) { m.t.ForEach(visit) }

// Entries materializes the entries in key order (in parallel).
func (m AugMap[K, V, A, E]) Entries() []KV[K, V] { return fromEntries(m.t.Entries()) }

// Keys materializes the keys in order (in parallel).
func (m AugMap[K, V, A, E]) Keys() []K { return m.t.Keys() }

// MapValues returns m with values fn(k, v) and recomputed augmentation.
func (m AugMap[K, V, A, E]) MapValues(fn func(k K, v V) V) AugMap[K, V, A, E] {
	return wrap(m.t.MapValues(fn))
}

// Validate checks all structural invariants (ordering, sizes, balance,
// augmented values compared with augEq; nil augEq skips augmentation).
// Intended for tests.
func (m AugMap[K, V, A, E]) Validate(augEq func(x, y A) bool) error { return m.t.Validate(augEq) }

// Tree exposes the underlying core tree for packages building richer
// structures on top (interval maps, range trees).
func (m AugMap[K, V, A, E]) Tree() core.Tree[K, V, A, E] { return m.t }

// WrapTree builds an AugMap around an existing core tree.
func WrapTree[K, V, A any, E Aug[K, V, A]](t core.Tree[K, V, A, E]) AugMap[K, V, A, E] {
	return wrap(t)
}

// MapReduce applies g to every entry and folds the results through the
// monoid (B, f, id), in parallel.
func MapReduce[K, V, A, B any, E Aug[K, V, A]](m AugMap[K, V, A, E], g func(k K, v V) B, f func(x, y B) B, id B) B {
	return core.MapReduce(m.t, g, f, id)
}

// AugProject computes the projection g of the augmented value of
// [lo, hi], folding per-subtree projections with f: the result equals
// g(AugRange(lo, hi)) whenever f(g(a), g(b)) == g(Combine(a, b)), in
// O(log n) applications of f and g even when Combine is expensive (the
// key query on range trees, §5.2).
func AugProject[K, V, A, B any, E Aug[K, V, A]](m AugMap[K, V, A, E], lo, hi K, g func(A) B, f func(x, y B) B, id B) B {
	return core.AugProject(m.t, lo, hi, g, f, id)
}

// AugProjectKV is AugProject with the projection of a single boundary
// entry supplied directly: gEntry must satisfy
// gEntry(k, v) == g(E{}.Base(k, v)). It avoids materializing Base for
// the O(log n) entries on the search paths — for map-valued
// augmentations (range trees, segment maps) each Base is a
// heap-allocated singleton map, so direct projection makes count
// queries allocation-free.
func AugProjectKV[K, V, A, B any, E Aug[K, V, A]](m AugMap[K, V, A, E], lo, hi K, gEntry func(K, V) B, g func(A) B, f func(x, y B) B, id B) B {
	return core.AugProjectKV(m.t, lo, hi, gEntry, g, f, id)
}

func toEntries[K, V any](items []KV[K, V]) []core.Entry[K, V] {
	out := make([]core.Entry[K, V], len(items))
	for i, e := range items {
		out[i] = core.Entry[K, V]{Key: e.Key, Val: e.Val}
	}
	return out
}

func fromEntries[K, V any](items []core.Entry[K, V]) []KV[K, V] {
	out := make([]KV[K, V], len(items))
	for i, e := range items {
		out[i] = KV[K, V]{Key: e.Key, Val: e.Val}
	}
	return out
}

// Ordered is the constraint for keys usable with the ready-made entries.
type Ordered = cmp.Ordered

// Number constrains the value types of the arithmetic entries.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// AugTopK returns up to k entries in nonincreasing order of their Base
// values. It requires the map's Combine to be the maximum under the
// strict order less (e.g. MaxEntry). O(k log n) — the augmentation
// prunes everything below the k-th best value.
func AugTopK[K, V, A any, E Aug[K, V, A]](m AugMap[K, V, A, E], k int, less func(a, b A) bool) []KV[K, V] {
	return fromEntries(core.TopKByAug(m.t, k, less))
}

// In-place variants. These consume the receiver's reference: the old
// value of the handle must not be used afterwards (other, explicitly
// retained snapshots remain valid). When the tree is unshared they reuse
// nodes instead of path-copying, which is how an ephemeral workload
// (load phase, benchmark loops) avoids paying for persistence it does
// not use — PAM gets the same effect from C++ move semantics.

// InsertInPlace inserts (k, v), consuming the receiver's reference.
func (m *AugMap[K, V, A, E]) InsertInPlace(k K, v V) { m.t.InsertInPlace(k, v) }

// DeleteInPlace removes k, consuming the receiver's reference.
func (m *AugMap[K, V, A, E]) DeleteInPlace(k K) { m.t.DeleteInPlace(k) }

// MultiInsertInPlace bulk-inserts, consuming the receiver's reference.
func (m *AugMap[K, V, A, E]) MultiInsertInPlace(items []KV[K, V], h func(old, new V) V) {
	m.t.MultiInsertInPlace(toEntries(items), h)
}

// Retain takes an extra reference, so the handle survives a subsequent
// in-place update or Release on a copy.
func (m AugMap[K, V, A, E]) Retain() AugMap[K, V, A, E] { return wrap(m.t.Retain()) }

// Release drops the receiver's reference and empties the handle; only
// needed with Options.Pool or for allocation statistics.
func (m *AugMap[K, V, A, E]) Release() { m.t.Release() }

// ForEachRange visits entries with lo <= key <= hi in key order until
// visit returns false. O(log n + k) for k visited entries, allocation
// free — the iteration analogue of Range.
func (m AugMap[K, V, A, E]) ForEachRange(lo, hi K, visit func(k K, v V) bool) {
	m.t.ForEachRange(lo, hi, visit)
}

// Values materializes the values in key order (in parallel).
func (m AugMap[K, V, A, E]) Values() []V { return m.t.Values() }

// AugFilterWith is AugFilter with an additional take-all predicate
// (footnote 3 of the paper): subtrees whose augmented value satisfies
// hAll are taken whole by reference, unvisited. hAll must satisfy
// hAll(Combine(a,b)) == hAll(a) && hAll(b); nil disables the take-all
// pruning (making this identical to AugFilter).
func (m AugMap[K, V, A, E]) AugFilterWith(hAny, hAll func(a A) bool) AugMap[K, V, A, E] {
	return wrap(m.t.AugFilterWith(hAny, hAll))
}
