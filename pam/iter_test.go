package pam

// Iteration and order-statistic edge cases at map boundaries — the
// primitives the serve package's merged cross-shard iterator leans on
// (seek via Find+Next, advance via Next, k-way merge termination).

import (
	"slices"
	"testing"
)

func TestNextPreviousEmptyMap(t *testing.T) {
	m := newSumMap()
	if _, _, ok := m.First(); ok {
		t.Fatal("First on empty map reported an entry")
	}
	if _, _, ok := m.Last(); ok {
		t.Fatal("Last on empty map reported an entry")
	}
	if _, _, ok := m.Next(0); ok {
		t.Fatal("Next on empty map reported an entry")
	}
	if _, _, ok := m.Previous(^uint64(0)); ok {
		t.Fatal("Previous on empty map reported an entry")
	}
}

func TestSelectRankEmptyMap(t *testing.T) {
	m := newSumMap()
	if _, _, ok := m.Select(0); ok {
		t.Fatal("Select(0) on empty map reported an entry")
	}
	if _, _, ok := m.Select(-1); ok {
		t.Fatal("Select(-1) reported an entry")
	}
	if got := m.Rank(123); got != 0 {
		t.Fatalf("Rank on empty map = %d", got)
	}
}

func TestSingleEntryBoundaries(t *testing.T) {
	m := newSumMap().Insert(5, 50)
	if k, v, ok := m.First(); !ok || k != 5 || v != 50 {
		t.Fatalf("First = %d,%d,%v", k, v, ok)
	}
	if k, _, ok := m.Last(); !ok || k != 5 {
		t.Fatalf("Last = %d,%v", k, ok)
	}
	// Next is strict: from below it finds the entry, from the entry and
	// above nothing.
	if k, _, ok := m.Next(4); !ok || k != 5 {
		t.Fatalf("Next(4) = %d,%v", k, ok)
	}
	if _, _, ok := m.Next(5); ok {
		t.Fatal("Next(5) found an entry past the maximum")
	}
	if _, _, ok := m.Next(6); ok {
		t.Fatal("Next(6) found an entry")
	}
	// Previous mirrors.
	if k, _, ok := m.Previous(6); !ok || k != 5 {
		t.Fatalf("Previous(6) = %d,%v", k, ok)
	}
	if _, _, ok := m.Previous(5); ok {
		t.Fatal("Previous(5) found an entry before the minimum")
	}
	// Select/Rank.
	if k, _, ok := m.Select(0); !ok || k != 5 {
		t.Fatalf("Select(0) = %d,%v", k, ok)
	}
	if _, _, ok := m.Select(1); ok {
		t.Fatal("Select(1) on a single-entry map reported an entry")
	}
	if m.Rank(5) != 0 || m.Rank(6) != 1 || m.Rank(0) != 0 {
		t.Fatalf("single-entry ranks: %d %d %d", m.Rank(5), m.Rank(6), m.Rank(0))
	}
}

// TestNextWalkReconstructs checks that seek-then-Next iteration (the
// merged iterator's cursor discipline) reconstructs the map exactly,
// including across gaps and at both boundaries.
func TestNextWalkReconstructs(t *testing.T) {
	m := newSumMap()
	var want []uint64
	for i := uint64(0); i < 60; i++ {
		k := i*3 + 1 // gaps: keys 1, 4, 7, ...
		m = m.Insert(k, int64(k))
		want = append(want, k)
	}
	// Walk from the front.
	var got []uint64
	k, _, ok := m.First()
	for ok {
		got = append(got, k)
		k, _, ok = m.Next(k)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("Next walk got %d keys, want %d", len(got), len(want))
	}
	// Walk backwards.
	var back []uint64
	k, _, ok = m.Last()
	for ok {
		back = append(back, k)
		k, _, ok = m.Previous(k)
	}
	slices.Reverse(back)
	if !slices.Equal(back, want) {
		t.Fatalf("Previous walk got %d keys, want %d", len(back), len(want))
	}
	// Next from a gap key (absent) finds the successor; Next from before
	// the first key finds the first.
	if k, _, ok := m.Next(2); !ok || k != 4 {
		t.Fatalf("Next(2) = %d,%v, want 4", k, ok)
	}
	if k, _, ok := m.Next(0); !ok || k != 1 {
		t.Fatalf("Next(0) = %d,%v, want 1", k, ok)
	}
	// Select agrees with the walk at both ends and the middle.
	for _, i := range []int64{0, 1, 29, 58, 59} {
		if k, _, ok := m.Select(i); !ok || k != want[i] {
			t.Fatalf("Select(%d) = %d,%v, want %d", i, k, ok, want[i])
		}
	}
	if _, _, ok := m.Select(60); ok {
		t.Fatal("Select past the end reported an entry")
	}
	// Rank is the inverse of Select and counts strictly-below keys for
	// absent arguments too.
	if got := m.Rank(want[30]); got != 30 {
		t.Fatalf("Rank(%d) = %d", want[30], got)
	}
	if got := m.Rank(want[30] + 1); got != 31 {
		t.Fatalf("Rank(%d) = %d", want[30]+1, got)
	}
}

// TestForEachRangeDegenerate pins ForEachRange behavior at degenerate
// bounds: inverted ranges visit nothing, point ranges visit one entry.
func TestForEachRangeDegenerate(t *testing.T) {
	m := newSumMap()
	for i := uint64(0); i < 20; i++ {
		m = m.Insert(i*2, int64(i))
	}
	visited := 0
	m.ForEachRange(10, 4, func(uint64, int64) bool { visited++; return true })
	if visited != 0 {
		t.Fatalf("inverted range visited %d entries", visited)
	}
	var point []uint64
	m.ForEachRange(8, 8, func(k uint64, _ int64) bool { point = append(point, k); return true })
	if !slices.Equal(point, []uint64{8}) {
		t.Fatalf("point range visited %v", point)
	}
	// Bounds between keys (both absent): exactly the interior entries.
	var interior []uint64
	m.ForEachRange(5, 11, func(k uint64, _ int64) bool { interior = append(interior, k); return true })
	if !slices.Equal(interior, []uint64{6, 8, 10}) {
		t.Fatalf("absent-bound range visited %v", interior)
	}
}
