package pam

// Map is a plain (unaugmented) persistent ordered map over cmp.Ordered
// keys: AugMap with the trivial augmentation, matching the paper's
// M(K, <, V) notation. The zero value is an empty usable map.
type Map[K Ordered, V any] struct {
	AugMap[K, V, struct{}, NoAug[K, V]]
}

// NewMap returns an empty plain map with the given options.
func NewMap[K Ordered, V any](opts Options) Map[K, V] {
	return Map[K, V]{AugMap: NewAugMap[K, V, struct{}, NoAug[K, V]](opts)}
}

func wrapMap[K Ordered, V any](m AugMap[K, V, struct{}, NoAug[K, V]]) Map[K, V] {
	return Map[K, V]{AugMap: m}
}

// The wrappers below re-type the AugMap results so Map operations stay
// closed over Map.

// Insert returns m with (k, v) added, replacing any existing value.
func (m Map[K, V]) Insert(k K, v V) Map[K, V] { return wrapMap(m.AugMap.Insert(k, v)) }

// InsertWith returns m with (k, v) added, combining as h(old, v).
func (m Map[K, V]) InsertWith(k K, v V, h func(old, new V) V) Map[K, V] {
	return wrapMap(m.AugMap.InsertWith(k, v, h))
}

// Delete returns m without k.
func (m Map[K, V]) Delete(k K) Map[K, V] { return wrapMap(m.AugMap.Delete(k)) }

// Union returns the union of m and other (other's values win).
func (m Map[K, V]) Union(other Map[K, V]) Map[K, V] { return wrapMap(m.AugMap.Union(other.AugMap)) }

// UnionWith returns the union combining shared keys with h.
func (m Map[K, V]) UnionWith(other Map[K, V], h func(v1, v2 V) V) Map[K, V] {
	return wrapMap(m.AugMap.UnionWith(other.AugMap, h))
}

// Intersect returns the intersection keeping other's values.
func (m Map[K, V]) Intersect(other Map[K, V]) Map[K, V] {
	return wrapMap(m.AugMap.Intersect(other.AugMap))
}

// IntersectWith returns the intersection with values h(v1, v2).
func (m Map[K, V]) IntersectWith(other Map[K, V], h func(v1, v2 V) V) Map[K, V] {
	return wrapMap(m.AugMap.IntersectWith(other.AugMap, h))
}

// Difference returns the entries of m not keyed in other.
func (m Map[K, V]) Difference(other Map[K, V]) Map[K, V] {
	return wrapMap(m.AugMap.Difference(other.AugMap))
}

// Filter returns the entries satisfying pred.
func (m Map[K, V]) Filter(pred func(k K, v V) bool) Map[K, V] {
	return wrapMap(m.AugMap.Filter(pred))
}

// Build returns a map holding items, combining duplicate keys with h.
func (m Map[K, V]) Build(items []KV[K, V], h func(old, new V) V) Map[K, V] {
	return wrapMap(m.AugMap.Build(items, h))
}

// BuildSorted is Build for strictly-increasing keyed input.
func (m Map[K, V]) BuildSorted(items []KV[K, V]) Map[K, V] {
	return wrapMap(m.AugMap.BuildSorted(items))
}

// MultiInsert returns m with the batch inserted.
func (m Map[K, V]) MultiInsert(items []KV[K, V], h func(old, new V) V) Map[K, V] {
	return wrapMap(m.AugMap.MultiInsert(items, h))
}

// MultiDelete returns m without the given keys.
func (m Map[K, V]) MultiDelete(keys []K) Map[K, V] { return wrapMap(m.AugMap.MultiDelete(keys)) }

// Range returns the submap with lo <= key <= hi.
func (m Map[K, V]) Range(lo, hi K) Map[K, V] { return wrapMap(m.AugMap.Range(lo, hi)) }

// UpTo returns the submap with key <= hi.
func (m Map[K, V]) UpTo(hi K) Map[K, V] { return wrapMap(m.AugMap.UpTo(hi)) }

// DownTo returns the submap with key >= lo.
func (m Map[K, V]) DownTo(lo K) Map[K, V] { return wrapMap(m.AugMap.DownTo(lo)) }

// MapValues returns m with values fn(k, v).
func (m Map[K, V]) MapValues(fn func(k K, v V) V) Map[K, V] {
	return wrapMap(m.AugMap.MapValues(fn))
}

// Set is a persistent ordered set: a Map with empty values.
type Set[K Ordered] struct {
	m Map[K, struct{}]
}

// NewSet returns an empty set with the given options.
func NewSet[K Ordered](opts Options) Set[K] { return Set[K]{m: NewMap[K, struct{}](opts)} }

// Size returns the number of elements.
func (s Set[K]) Size() int64 { return s.m.Size() }

// IsEmpty reports whether the set is empty.
func (s Set[K]) IsEmpty() bool { return s.m.IsEmpty() }

// Contains reports membership.
func (s Set[K]) Contains(k K) bool { return s.m.Contains(k) }

// Add returns s with k added.
func (s Set[K]) Add(k K) Set[K] { return Set[K]{m: s.m.Insert(k, struct{}{})} }

// Remove returns s without k.
func (s Set[K]) Remove(k K) Set[K] { return Set[K]{m: s.m.Delete(k)} }

// Union returns the set union.
func (s Set[K]) Union(other Set[K]) Set[K] { return Set[K]{m: s.m.Union(other.m)} }

// Intersect returns the set intersection.
func (s Set[K]) Intersect(other Set[K]) Set[K] { return Set[K]{m: s.m.Intersect(other.m)} }

// Difference returns the elements of s not in other.
func (s Set[K]) Difference(other Set[K]) Set[K] { return Set[K]{m: s.m.Difference(other.m)} }

// FromKeys returns a set (with s's options) holding the given elements.
func (s Set[K]) FromKeys(keys []K) Set[K] {
	items := make([]KV[K, struct{}], len(keys))
	for i, k := range keys {
		items[i] = KV[K, struct{}]{Key: k}
	}
	return Set[K]{m: s.m.Build(items, nil)}
}

// Elements materializes the elements in order.
func (s Set[K]) Elements() []K { return s.m.Keys() }

// ForEach visits elements in order until visit returns false.
func (s Set[K]) ForEach(visit func(k K) bool) {
	s.m.ForEach(func(k K, _ struct{}) bool { return visit(k) })
}

// First returns the minimum element.
func (s Set[K]) First() (K, bool) {
	k, _, ok := s.m.First()
	return k, ok
}

// Last returns the maximum element.
func (s Set[K]) Last() (K, bool) {
	k, _, ok := s.m.Last()
	return k, ok
}

// Rank returns the number of elements < k.
func (s Set[K]) Rank(k K) int64 { return s.m.Rank(k) }

// Select returns the i-th smallest element.
func (s Set[K]) Select(i int64) (K, bool) {
	k, _, ok := s.m.Select(i)
	return k, ok
}
