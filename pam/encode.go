package pam

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
)

// Structure-sharing-aware serialization (see internal/core/encode.go
// for the wire format). Each leaf block is one contiguous record;
// interior nodes reference children by record id; a RecordSet carried
// across checkpoints makes encoding incremental — only nodes created
// since the previous checkpoint are written. Augmented values are
// recomputed on decode, never stored.
//
// Serialization requires Options.Pool == false: a RecordSet (and a
// DecodeTable) identifies nodes by address, which pool recycling
// invalidates.

// Codec supplies the byte encoding of a map's key and value types. See
// Uint64Codec for a ready-made instance and a template.
type Codec[K, V any] = core.Codec[K, V]

// RecordSet tracks which nodes already have on-disk records across a
// chain of incremental checkpoints (it keeps those nodes reachable).
type RecordSet[K, V, A any] = core.RecordSet[K, V, A]

// Digest is a record's Merkle content hash (sha256); equal subtrees
// have equal digests regardless of where in a checkpoint chain they
// were encoded, so root digests make snapshots tamper-evident and
// cheaply diffable. The zero Digest is the digest of the empty map.
type Digest = core.Digest

// NewRecordSet returns an empty record set.
func NewRecordSet[K, V, A any]() *RecordSet[K, V, A] {
	return core.NewRecordSet[K, V, A]()
}

// EncodeDelta appends records for every node of m not yet in rs to buf
// and returns the extended buf, m's root record id (0 when empty), and
// the number of new records written. Nodes shared with previously
// encoded maps are referenced by id, not rewritten.
func (m AugMap[K, V, A, E]) EncodeDelta(rs *RecordSet[K, V, A], c *Codec[K, V], buf []byte) ([]byte, uint64, int) {
	return core.EncodeDelta(m.t, rs, c, buf)
}

// RootDigest returns the Merkle digest of m's root record once m has
// been encoded against rs (ok == false if it never was; an empty map
// has the zero digest).
func (m AugMap[K, V, A, E]) RootDigest(rs *RecordSet[K, V, A]) (Digest, bool) {
	return core.RootDigest(m.t, rs)
}

// RecordCount returns the number of records a from-scratch encode of m
// would emit (leaf blocks plus interior nodes) — the live-record count
// the compaction dead-ratio policy compares against the on-disk chain.
func (m AugMap[K, V, A, E]) RecordCount() int {
	return core.RecordCount(m.t)
}

// DecodeTable accumulates decoded records across the files of an
// incremental checkpoint chain; maps taken from it share decoded nodes
// exactly as the encoded maps shared them.
type DecodeTable[K, V, A any, E Aug[K, V, A]] struct {
	tb *core.DecodeTable[K, V, A, E]
}

// NewDecodeTable returns an empty table decoding into maps with the
// given options (Scheme and Block must match the encoder's).
func NewDecodeTable[K, V, A any, E Aug[K, V, A]](opts Options) *DecodeTable[K, V, A, E] {
	return &DecodeTable[K, V, A, E]{tb: core.NewDecodeTable[K, V, A, E](opts.coreConfig())}
}

// NextID returns the id the next decoded record will receive; callers
// check it against a file's first-id header to detect a broken chain.
func (tb *DecodeTable[K, V, A, E]) NextID() uint64 { return tb.tb.NextID() }

// DecodeRecords decodes exactly n records from the front of data and
// returns the remaining bytes. Malformed input yields an error, never a
// panic; run Validate on recovered maps to reject crafted streams that
// decode but violate tree invariants.
func (tb *DecodeTable[K, V, A, E]) DecodeRecords(c *Codec[K, V], data []byte, n int) ([]byte, error) {
	return tb.tb.DecodeRecords(c, data, n)
}

// Map returns the map rooted at the given record id (0 for an empty
// map).
func (tb *DecodeTable[K, V, A, E]) Map(id uint64) (AugMap[K, V, A, E], error) {
	t, err := tb.tb.Tree(id)
	return wrap(t), err
}

// RecordSet converts the table into the encoder-side record set, so a
// recovered process continues the incremental checkpoint chain where
// the decoded files left it.
func (tb *DecodeTable[K, V, A, E]) RecordSet() *RecordSet[K, V, A] { return tb.tb.RecordSet() }

// Digest returns the Merkle digest of the record with the given id,
// recomputed bottom-up during decode; comparing it with a stored root
// digest detects any bit flip in the decoded records.
func (tb *DecodeTable[K, V, A, E]) Digest(id uint64) (Digest, error) { return tb.tb.Digest(id) }

// Uint64Codec returns a Codec for uint64 keys and int64 values (varint
// and zigzag-varint encoded), the instantiation used by the serve
// tests and examples.
func Uint64Codec() *Codec[uint64, int64] {
	return &Codec[uint64, int64]{
		AppendKey: func(buf []byte, k uint64) []byte { return binary.AppendUvarint(buf, k) },
		KeyAt:     UvarintAt,
		AppendVal: func(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) },
		ValAt:     VarintAt,
	}
}

// UvarintAt decodes a uvarint from the front of data (a ready-made
// Codec field for unsigned keys).
func UvarintAt(data []byte) (uint64, int, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, core.ErrCorrupt
	}
	return v, n, nil
}

// VarintAt decodes a zigzag varint from the front of data.
func VarintAt(data []byte) (int64, int, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, 0, core.ErrCorrupt
	}
	return v, n, nil
}

// Float64At decodes a little-endian float64 from the front of data.
func Float64At(data []byte) (float64, int, error) {
	if len(data) < 8 {
		return 0, 0, core.ErrCorrupt
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), 8, nil
}

// AppendFloat64 appends the little-endian encoding of f.
func AppendFloat64(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// ErrCorrupt is the generic malformed-stream error decoders return (and
// Codec implementations should return for truncated input).
var ErrCorrupt = core.ErrCorrupt

// Compressor supplies the integer key image and value byte codec of a
// compressed-leaf map (Options.Compress). KeyUint/KeyFromUint must be
// exact inverses — this is the integer-key requirement of compressed
// blocks: the key type needs a bijective uint64 image (the image order
// need not match the map order; deltas are taken modulo 2^64). ValAt
// must decode exactly what AppendVal appended and return an error,
// never panic, on malformed bytes.
type Compressor[K, V any] = core.Compressor[K, V]

// ErrNoCompressor reports a compressed checkpoint record decoded by a
// map family configured without Options.Compress (or vice versa).
var ErrNoCompressor = core.ErrNoCompressor

type uint64Compressor struct{}

func (uint64Compressor) KeyUint(k uint64) uint64     { return k }
func (uint64Compressor) KeyFromUint(u uint64) uint64 { return u }
func (uint64Compressor) AppendVal(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}
func (uint64Compressor) ValAt(data []byte) (int64, int, error) { return VarintAt(data) }

// CompressUint64 returns the Compressor for uint64 keys and int64
// values (zig-zag varint encoded) — the instantiation the serve layer's
// durable stores use, and the compressed counterpart of Uint64Codec.
func CompressUint64() Compressor[uint64, int64] { return uint64Compressor{} }

type intCompressor struct{}

func (intCompressor) KeyUint(k int) uint64     { return uint64(k) }
func (intCompressor) KeyFromUint(u uint64) int { return int(u) }
func (intCompressor) AppendVal(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}
func (intCompressor) ValAt(data []byte) (int64, int, error) { return VarintAt(data) }

// CompressInt returns the Compressor for int keys and int64 values.
// The two's-complement uint64 cast round-trips negative keys exactly
// (deltas are modular, so image wraparound is harmless).
func CompressInt() Compressor[int, int64] { return intCompressor{} }
