package pam

import "sync"

// Shared implements the paper's concurrency model (§4 "Concurrency"):
// any number of readers take atomic snapshots of the current map version
// and work on them without locks or interference, while writers prepare
// new versions functionally and publish them by swapping the root.
// Updates are serialized (the paper: "updates are sequentialized...
// accumulated and applied when needed in bulk using the parallel
// multi-insert"); reads never block reads and never observe partial
// updates, giving snapshot isolation.
type Shared[K, V, A any, E Aug[K, V, A]] struct {
	mu      sync.Mutex
	current AugMap[K, V, A, E]
}

// NewShared returns a shared cell holding m.
func NewShared[K, V, A any, E Aug[K, V, A]](m AugMap[K, V, A, E]) *Shared[K, V, A, E] {
	return &Shared[K, V, A, E]{current: m}
}

// Snapshot returns the current version. The snapshot is immutable and
// remains valid indefinitely.
func (s *Shared[K, V, A, E]) Snapshot() AugMap[K, V, A, E] {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// Store publishes m as the current version.
func (s *Shared[K, V, A, E]) Store(m AugMap[K, V, A, E]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.current = m
}

// Update atomically replaces the current version with f(current). f must
// be pure (it may be retried never, but runs under the update lock, so
// it should not block on other updates).
func (s *Shared[K, V, A, E]) Update(f func(AugMap[K, V, A, E]) AugMap[K, V, A, E]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.current = f(s.current)
}

// MultiInsert applies a bulk insertion to the shared map, the paper's
// recommended write path for concurrent workloads.
func (s *Shared[K, V, A, E]) MultiInsert(items []KV[K, V], h func(old, new V) V) {
	s.Update(func(m AugMap[K, V, A, E]) AugMap[K, V, A, E] { return m.MultiInsert(items, h) })
}
