package pam_test

import (
	"fmt"

	"repro/pam"
)

// Plain maps are persistent ordered maps with parallel bulk operations;
// Union merges two of them without modifying either.
func ExampleMap_Union() {
	inventory := pam.NewMap[string, int](pam.Options{}).
		Build([]pam.KV[string, int]{{Key: "apple", Val: 3}, {Key: "pear", Val: 5}}, nil)
	delivery := pam.NewMap[string, int](pam.Options{}).
		Build([]pam.KV[string, int]{{Key: "apple", Val: 7}, {Key: "plum", Val: 2}}, nil)

	merged := inventory.UnionWith(delivery, func(a, b int) int { return a + b })
	merged.ForEach(func(k string, v int) bool {
		fmt.Println(k, v)
		return true
	})
	// inventory is unchanged (persistence):
	fmt.Println(inventory.Size())
	// Output:
	// apple 10
	// pear 5
	// plum 2
	// 2
}

// An augmented map maintains a monoid over its entries — here the sum of
// values (the paper's Equation 1 map) — so any key range can be summed
// in O(log n) without visiting its entries.
func ExampleAugMap_AugRange() {
	sales := pam.NewAugMap[int, int64, int64, pam.SumEntry[int, int64]](pam.Options{}).
		Build([]pam.KV[int, int64]{
			{Key: 1, Val: 10}, {Key: 2, Val: 20}, {Key: 3, Val: 30}, {Key: 4, Val: 40},
		}, nil)

	fmt.Println(sales.AugVal())       // whole-map sum, O(1)
	fmt.Println(sales.AugRange(2, 3)) // sum over keys in [2, 3], O(log n)
	fmt.Println(sales.AugLeft(3))     // sum over keys <= 3
	// Output:
	// 100
	// 50
	// 60
}

// AugFilter selects entries through the augmentation, pruning whole
// subtrees whose augmented value fails the predicate — output-sensitive
// instead of linear.
func ExampleAugMap_AugFilter() {
	scores := pam.NewAugMap[string, int64, int64, pam.MaxEntry[string, int64]](pam.Options{}).
		Build([]pam.KV[string, int64]{
			{Key: "a", Val: 4}, {Key: "b", Val: 9}, {Key: "c", Val: 2}, {Key: "d", Val: 7},
		}, nil)

	high := scores.AugFilter(func(maxBelow int64) bool { return maxBelow >= 7 })
	high.ForEach(func(k string, v int64) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// b 9
	// d 7
}
