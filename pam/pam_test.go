package pam

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"
)

type sumMap = AugMap[uint64, int64, int64, SumEntry[uint64, int64]]

func newSumMap() sumMap {
	return NewAugMap[uint64, int64, int64, SumEntry[uint64, int64]](Options{})
}

func TestAugMapBasics(t *testing.T) {
	m := newSumMap()
	m = m.Insert(5, 50).Insert(1, 10).Insert(9, 90)
	if m.Size() != 3 {
		t.Fatalf("size %d", m.Size())
	}
	if v, ok := m.Find(5); !ok || v != 50 {
		t.Fatalf("Find(5) = %d,%v", v, ok)
	}
	if m.AugVal() != 150 {
		t.Fatalf("AugVal %d", m.AugVal())
	}
	if m.AugRange(2, 9) != 140 {
		t.Fatalf("AugRange(2,9) = %d", m.AugRange(2, 9))
	}
	if m.AugLeft(5) != 60 {
		t.Fatalf("AugLeft(5) = %d", m.AugLeft(5))
	}
	if m.AugRight(5) != 140 {
		t.Fatalf("AugRight(5) = %d", m.AugRight(5))
	}
	m2 := m.Delete(5)
	if m2.Contains(5) || !m.Contains(5) {
		t.Fatal("persistence violated by Delete")
	}
	if err := m.Validate(func(a, b int64) bool { return a == b }); err != nil {
		t.Fatal(err)
	}
}

func TestMapAndSet(t *testing.T) {
	m := NewMap[string, int](Options{})
	m = m.Insert("b", 2).Insert("a", 1).Insert("c", 3)
	if v, ok := m.Find("b"); !ok || v != 2 {
		t.Fatalf("Find(b) = %d,%v", v, ok)
	}
	keys := m.Keys()
	if !slices.Equal(keys, []string{"a", "b", "c"}) {
		t.Fatalf("keys %v", keys)
	}
	m = m.Delete("b")
	if m.Contains("b") {
		t.Fatal("delete failed")
	}
	u := m.Union(NewMap[string, int](Options{}).Insert("z", 26))
	if u.Size() != 3 {
		t.Fatalf("union size %d", u.Size())
	}

	s := NewSet[int](Options{}).FromKeys([]int{3, 1, 4, 1, 5, 9, 2, 6})
	if s.Size() != 7 {
		t.Fatalf("set size %d", s.Size())
	}
	if !s.Contains(4) || s.Contains(7) {
		t.Fatal("set membership wrong")
	}
	s2 := s.FromKeys([]int{4, 7, 10})
	if got := s.Intersect(s2).Elements(); !slices.Equal(got, []int{4}) {
		t.Fatalf("intersect %v", got)
	}
	if got := s.Difference(s2).Size(); got != 6 {
		t.Fatalf("difference size %d", got)
	}
	if k, ok := s.First(); !ok || k != 1 {
		t.Fatalf("First %d", k)
	}
	if k, ok := s.Last(); !ok || k != 9 {
		t.Fatalf("Last %d", k)
	}
	if k, ok := s.Select(2); !ok || k != 3 {
		t.Fatalf("Select(2) = %d", k)
	}
	if s.Rank(5) != 4 {
		t.Fatalf("Rank(5) = %d", s.Rank(5))
	}
}

func TestReadyMadeEntries(t *testing.T) {
	maxM := NewAugMap[int, float64, float64, MaxEntry[int, float64]](Options{})
	maxM = maxM.Insert(1, 1.5).Insert(2, -3.0).Insert(3, 2.5)
	if got := maxM.AugVal(); got != 2.5 {
		t.Fatalf("max AugVal %v", got)
	}
	if got := maxM.AugRange(1, 2); got != 1.5 {
		t.Fatalf("max AugRange %v", got)
	}
	empty := NewAugMap[int, float64, float64, MaxEntry[int, float64]](Options{})
	if !empty.IsEmpty() || empty.AugVal() > -1e300 {
		t.Fatalf("empty max identity %v", empty.AugVal())
	}

	minM := NewAugMap[int, int32, int32, MinEntry[int, int32]](Options{})
	minM = minM.Insert(1, 5).Insert(2, -7).Insert(3, 9)
	if got := minM.AugVal(); got != -7 {
		t.Fatalf("min AugVal %v", got)
	}

	cntM := NewAugMap[int, string, int64, CountEntry[int, string]](Options{})
	for i := 0; i < 100; i++ {
		cntM = cntM.Insert(i, "x")
	}
	if got := cntM.AugRange(10, 19); got != 10 {
		t.Fatalf("count AugRange %d", got)
	}
}

func TestBuildAndBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := make([]KV[uint64, int64], 20000)
	for i := range items {
		items[i] = KV[uint64, int64]{Key: rng.Uint64() % 50000, Val: 1}
	}
	m := newSumMap().Build(items, func(old, new int64) int64 { return old + new })
	if m.AugVal() != int64(len(items)) {
		t.Fatalf("duplicate-combining build lost values: %d", m.AugVal())
	}
	keys := m.Keys()
	if !slices.IsSorted(keys) {
		t.Fatal("keys not sorted")
	}
	batch := make([]KV[uint64, int64], 5000)
	for i := range batch {
		batch[i] = KV[uint64, int64]{Key: rng.Uint64() % 50000, Val: 1}
	}
	m2 := m.MultiInsert(batch, func(old, new int64) int64 { return old + new })
	if m2.AugVal() != int64(len(items)+len(batch)) {
		t.Fatalf("multi-insert sum %d", m2.AugVal())
	}
	if m.AugVal() != int64(len(items)) {
		t.Fatal("multi-insert modified its input")
	}
	m3 := m2.MultiDelete(keys[:100])
	for _, k := range keys[:100] {
		if m3.Contains(k) {
			t.Fatalf("key %d survived MultiDelete", k)
		}
	}
}

func TestSplitJoinConcat(t *testing.T) {
	m := newSumMap()
	for i := uint64(0); i < 100; i++ {
		m = m.Insert(i, int64(i))
	}
	l, v, found, r := m.Split(50)
	if !found || v != 50 {
		t.Fatalf("Split found=%v v=%d", found, v)
	}
	if l.Size() != 50 || r.Size() != 49 {
		t.Fatalf("split sizes %d/%d", l.Size(), r.Size())
	}
	back := l.Join(50, 50, r)
	if back.Size() != 100 || back.AugVal() != m.AugVal() {
		t.Fatal("join did not invert split")
	}
	cat := l.Concat(r)
	if cat.Size() != 99 || cat.Contains(50) {
		t.Fatal("concat wrong")
	}
}

func TestMapReduceAndAugProject(t *testing.T) {
	m := newSumMap()
	for i := uint64(1); i <= 1000; i++ {
		m = m.Insert(i, int64(i))
	}
	cnt := MapReduce(m, func(_ uint64, v int64) int { return 1 }, func(a, b int) int { return a + b }, 0)
	if cnt != 1000 {
		t.Fatalf("MapReduce count %d", cnt)
	}
	s := AugProject(m, 10, 20,
		func(a int64) int64 { return a },
		func(x, y int64) int64 { return x + y }, 0)
	if s != 165 {
		t.Fatalf("AugProject sum %d", s)
	}
}

func TestAugFilterTopValues(t *testing.T) {
	m := NewAugMap[int, int64, int64, MaxEntry[int, int64]](Options{})
	rng := rand.New(rand.NewSource(4))
	n := 10000
	items := make([]KV[int, int64], n)
	for i := range items {
		items[i] = KV[int, int64]{Key: i, Val: int64(rng.Intn(1_000_000))}
	}
	m = m.Build(items, nil)
	th := int64(995_000)
	top := m.AugFilter(func(a int64) bool { return a >= th })
	cnt := 0
	for _, e := range items {
		if e.Val >= th {
			cnt++
		}
	}
	if int(top.Size()) != cnt {
		t.Fatalf("AugFilter kept %d entries, want %d", top.Size(), cnt)
	}
	top.ForEach(func(_ int, v int64) bool {
		if v < th {
			t.Errorf("value %d below threshold", v)
		}
		return true
	})
}

func TestSharedSnapshotIsolation(t *testing.T) {
	s := NewShared(newSumMap())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				sz := snap.Size()
				// A snapshot's size must never change underneath us.
				for j := 0; j < 10; j++ {
					if snap.Size() != sz {
						panic("snapshot changed size")
					}
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		batch := []KV[uint64, int64]{{Key: uint64(i), Val: int64(i)}}
		s.MultiInsert(batch, nil)
	}
	close(stop)
	wg.Wait()
	if got := s.Snapshot().Size(); got != 100 {
		t.Fatalf("final size %d", got)
	}
}

func TestOptionsSchemes(t *testing.T) {
	for _, sch := range []Scheme{WeightBalanced, AVL, RedBlack, Treap} {
		m := NewAugMap[int, int64, int64, SumEntry[int, int64]](Options{Scheme: sch})
		for i := 0; i < 500; i++ {
			m = m.Insert(i, 1)
		}
		if m.AugVal() != 500 {
			t.Fatalf("%v: AugVal %d", sch, m.AugVal())
		}
		if err := m.Validate(func(a, b int64) bool { return a == b }); err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
	}
}

func ExampleAugMap() {
	// The paper's running example (Equation 1): an ordered map from int
	// keys to int values augmented with the sum of values.
	m := NewAugMap[int, int64, int64, SumEntry[int, int64]](Options{})
	sales := []KV[int, int64]{
		{Key: 900, Val: 20}, {Key: 930, Val: 35}, {Key: 1000, Val: 10},
		{Key: 1430, Val: 50}, {Key: 1600, Val: 25},
	}
	m = m.Build(sales, nil)
	fmt.Println("total:", m.AugVal())
	fmt.Println("morning:", m.AugRange(900, 1200))
	// Output:
	// total: 140
	// morning: 65
}
