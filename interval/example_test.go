package interval_test

import (
	"fmt"

	"repro/interval"
	"repro/pam"
)

// An interval map answers stabbing queries through the max-right-endpoint
// augmentation: Stab is one O(log n) AugLeft call, ReportAll an
// output-sensitive AugFilter.
func ExampleMap_Stab() {
	m := interval.New(pam.Options{}).Build([]interval.Interval{
		{Lo: 0, Hi: 10}, {Lo: 5, Hi: 6}, {Lo: 20, Hi: 30},
	})

	fmt.Println(m.Stab(5.5))
	fmt.Println(m.CountStab(5.5))
	fmt.Println(m.Stab(15))
	fmt.Println(m.ReportAll(5.5))
	// Output:
	// true
	// 2
	// false
	// [{0 10} {5 6}]
}
