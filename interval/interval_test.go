package interval

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/pam"
)

// naiveStab is the reference implementation: linear scan.
func naiveStab(ivs []Interval, p float64) bool {
	for _, iv := range ivs {
		if iv.Covers(p) {
			return true
		}
	}
	return false
}

func naiveReport(ivs []Interval, p float64) []Interval {
	var out []Interval
	for _, iv := range ivs {
		if iv.Covers(p) {
			out = append(out, iv)
		}
	}
	slices.SortFunc(out, cmpIv)
	return out
}

func cmpIv(a, b Interval) int {
	switch {
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	default:
		return 0
	}
}

func randIntervals(rng *rand.Rand, n int, span float64) []Interval {
	out := make([]Interval, n)
	for i := range out {
		lo := rng.Float64() * span
		out[i] = Interval{Lo: lo, Hi: lo + rng.Float64()*span/10}
	}
	return out
}

func TestStabMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ivs := randIntervals(rng, 2000, 1000)
	m := New(pam.Options{}).Build(ivs)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Size() != int64(len(ivs)) {
		t.Fatalf("size %d", m.Size())
	}
	for trial := 0; trial < 2000; trial++ {
		p := rng.Float64() * 1100
		if got, want := m.Stab(p), naiveStab(ivs, p); got != want {
			t.Fatalf("Stab(%v) = %v want %v", p, got, want)
		}
	}
}

func TestReportAllMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ivs := randIntervals(rng, 1000, 500)
	m := New(pam.Options{}).Build(ivs)
	for trial := 0; trial < 300; trial++ {
		p := rng.Float64() * 550
		got := m.ReportAll(p)
		want := naiveReport(ivs, p)
		if !slices.Equal(got, want) {
			t.Fatalf("ReportAll(%v): got %d intervals want %d", p, len(got), len(want))
		}
		if cnt := m.CountStab(p); cnt != int64(len(want)) {
			t.Fatalf("CountStab(%v) = %d want %d", p, cnt, len(want))
		}
		for _, iv := range got {
			if !iv.Covers(p) {
				t.Fatalf("reported interval %v does not cover %v", iv, p)
			}
		}
	}
}

func TestInsertDeletePersistent(t *testing.T) {
	m := New(pam.Options{})
	a := Interval{1, 5}
	b := Interval{3, 9}
	m1 := m.Insert(a)
	m2 := m1.Insert(b)
	if m1.Stab(7) {
		t.Fatal("old version sees new interval")
	}
	if !m2.Stab(7) {
		t.Fatal("new version misses interval")
	}
	m3 := m2.Delete(b)
	if m3.Stab(7) || !m3.Stab(4) {
		t.Fatal("delete wrong")
	}
	if !m2.Stab(7) {
		t.Fatal("delete mutated old version")
	}
	if m3.Size() != 1 {
		t.Fatalf("size %d", m3.Size())
	}
}

func TestDuplicateLeftEndpoints(t *testing.T) {
	m := New(pam.Options{}).Build([]Interval{{1, 2}, {1, 5}, {1, 9}, {1, 9}})
	if m.Size() != 3 { // exact duplicate collapses
		t.Fatalf("size %d want 3", m.Size())
	}
	if !m.Stab(8) || m.Stab(9.5) {
		t.Fatal("stab on shared-left intervals wrong")
	}
	got := m.ReportAll(4)
	want := []Interval{{1, 5}, {1, 9}}
	if !slices.Equal(got, want) {
		t.Fatalf("ReportAll(4) = %v", got)
	}
}

func TestEmptyAndBoundaries(t *testing.T) {
	m := New(pam.Options{})
	if m.Stab(0) || m.CountStab(0) != 0 || len(m.ReportAll(0)) != 0 {
		t.Fatal("empty map stabbed")
	}
	m = m.Insert(Interval{2, 4})
	// Closed interval: both endpoints covered.
	if !m.Stab(2) || !m.Stab(4) {
		t.Fatal("endpoints not covered")
	}
	if m.Stab(1.999) || m.Stab(4.001) {
		t.Fatal("outside endpoints covered")
	}
	// Degenerate (point) interval.
	m = m.Insert(Interval{7, 7})
	if !m.Stab(7) {
		t.Fatal("point interval not stabbed")
	}
}

func TestMultiInsertAndUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randIntervals(rng, 500, 100)
	b := randIntervals(rng, 500, 100)
	viaMI := New(pam.Options{}).Build(a).MultiInsert(b)
	viaUnion := New(pam.Options{}).Build(a).Union(New(pam.Options{}).Build(b))
	if viaMI.Size() != viaUnion.Size() {
		t.Fatalf("sizes differ: %d vs %d", viaMI.Size(), viaUnion.Size())
	}
	all := append(slices.Clone(a), b...)
	for trial := 0; trial < 500; trial++ {
		p := rng.Float64() * 110
		want := naiveStab(all, p)
		if viaMI.Stab(p) != want || viaUnion.Stab(p) != want {
			t.Fatalf("stab mismatch at %v", p)
		}
	}
}

// Property test: stabbing results always match the naive scan.
func TestStabQuick(t *testing.T) {
	f := func(raw []struct{ A, B uint16 }, probe uint16) bool {
		ivs := make([]Interval, len(raw))
		for i, r := range raw {
			lo, hi := float64(r.A), float64(r.B)
			if lo > hi {
				lo, hi = hi, lo
			}
			ivs[i] = Interval{lo, hi}
		}
		m := New(pam.Options{}).Build(ivs)
		p := float64(probe)
		return m.Stab(p) == naiveStab(ivs, p) &&
			m.CountStab(p) == int64(len(naiveReport(ivs, p)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
