// Package interval implements interval maps (§5.1 of the PAM paper): a
// set of closed intervals on the real line supporting stabbing queries
// ("is point p covered by any interval?", "report all intervals covering
// p") in logarithmic or output-sensitive time.
//
// It is a direct instantiation of an augmented map, the Go analogue of
// the ~30-line C++ definition in Figure 3 of the paper: intervals are
// keyed by left endpoint, and the augmentation keeps the maximum right
// endpoint of every subtree (g(k,v) = right, f = max). A point p is
// covered iff the maximum right endpoint among intervals starting at or
// before p reaches p — one AugLeft call.
//
// Keys are full (Lo, Hi) pairs ordered lexicographically, so intervals
// sharing a left endpoint coexist; exact duplicates behave as a set.
package interval

import (
	"math"

	"repro/pam"
)

// Interval is a closed interval [Lo, Hi]; it covers p iff Lo <= p <= Hi.
type Interval struct {
	Lo, Hi float64
}

// Covers reports whether the interval contains p.
func (iv Interval) Covers(p float64) bool { return iv.Lo <= p && p <= iv.Hi }

// entry is the augmented-map specification: keys are intervals ordered
// by (Lo, Hi), values are empty, and the augmented value is the maximum
// right endpoint (identity -Inf). This mirrors Figure 3's entry struct.
type entry struct{}

func (entry) Less(a, b Interval) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	return a.Hi < b.Hi
}

func (entry) Id() float64 { return math.Inf(-1) }

func (entry) Base(k Interval, _ struct{}) float64 { return k.Hi }

func (entry) Combine(x, y float64) float64 { return max(x, y) }

// amap is the underlying augmented map type.
type amap = pam.AugMap[Interval, struct{}, float64, entry]

// Map is a persistent interval map. The zero value is empty and usable;
// all operations are functional (old versions remain valid) and the bulk
// ones run in parallel.
type Map struct {
	m amap
}

// New returns an empty interval map with the given options.
func New(opts pam.Options) Map {
	return Map{m: pam.NewAugMap[Interval, struct{}, float64, entry](opts)}
}

// Build returns a map (with m's options) holding the given intervals;
// duplicates collapse. O(n log n) work, polylogarithmic span.
func (m Map) Build(ivs []Interval) Map {
	items := make([]pam.KV[Interval, struct{}], len(ivs))
	for i, iv := range ivs {
		items[i] = pam.KV[Interval, struct{}]{Key: iv}
	}
	return Map{m: m.m.Build(items, nil)}
}

// Size returns the number of intervals.
func (m Map) Size() int64 { return m.m.Size() }

// IsEmpty reports whether the map is empty.
func (m Map) IsEmpty() bool { return m.m.IsEmpty() }

// Insert returns m with iv added. O(log n).
func (m Map) Insert(iv Interval) Map {
	return Map{m: m.m.Insert(iv, struct{}{})}
}

// Delete returns m without iv. O(log n).
func (m Map) Delete(iv Interval) Map { return Map{m: m.m.Delete(iv)} }

// MultiInsert returns m with a batch of intervals added (parallel).
func (m Map) MultiInsert(ivs []Interval) Map {
	items := make([]pam.KV[Interval, struct{}], len(ivs))
	for i, iv := range ivs {
		items[i] = pam.KV[Interval, struct{}]{Key: iv}
	}
	return Map{m: m.m.MultiInsert(items, nil)}
}

// Union merges two interval maps (parallel, persistent).
func (m Map) Union(other Map) Map { return Map{m: m.m.Union(other.m)} }

// Stab reports whether any interval covers p: the maximum right endpoint
// over intervals with Lo <= p, against p. O(log n) — Figure 3's stab.
func (m Map) Stab(p float64) bool {
	return m.m.AugLeft(Interval{Lo: p, Hi: math.Inf(1)}) >= p
}

// ReportAll returns the intervals covering p, in (Lo, Hi) order: the
// intervals starting at or before p whose right endpoint reaches p,
// selected with an augmented filter — O(k log(n/k + 1)) work for k
// results (Figure 3's report_all).
func (m Map) ReportAll(p float64) []Interval {
	candidates := m.m.UpTo(Interval{Lo: p, Hi: math.Inf(1)})
	hits := candidates.AugFilter(func(maxHi float64) bool { return maxHi >= p })
	out := make([]Interval, 0, hits.Size())
	hits.ForEach(func(iv Interval, _ struct{}) bool {
		out = append(out, iv)
		return true
	})
	return out
}

// CountStab returns the number of intervals covering p, with the same
// output-sensitive cost as ReportAll.
func (m Map) CountStab(p float64) int64 {
	candidates := m.m.UpTo(Interval{Lo: p, Hi: math.Inf(1)})
	return candidates.AugFilter(func(maxHi float64) bool { return maxHi >= p }).Size()
}

// Intervals materializes all intervals in order.
func (m Map) Intervals() []Interval {
	out := make([]Interval, 0, m.m.Size())
	m.m.ForEach(func(iv Interval, _ struct{}) bool {
		out = append(out, iv)
		return true
	})
	return out
}

// Validate checks the underlying tree invariants (for tests).
func (m Map) Validate() error {
	return m.m.Validate(func(a, b float64) bool { return a == b })
}

// RankByLo returns the number of intervals strictly below iv in the
// (Lo, Hi) key order — the rank primitive overlap counting builds on.
func (m Map) RankByLo(iv Interval) int64 { return m.m.Rank(iv) }

// ReportOverlapping returns the intervals overlapping the closed query
// interval [lo, hi], in (Lo, Hi) order: candidates starting at or before
// hi, augment-filtered down to those whose right endpoint reaches lo.
// O(log n + k log(n/k+1)) for k results.
func (m Map) ReportOverlapping(lo, hi float64) []Interval {
	candidates := m.m.UpTo(Interval{Lo: hi, Hi: math.Inf(1)})
	hits := candidates.AugFilter(func(maxHi float64) bool { return maxHi >= lo })
	out := make([]Interval, 0, hits.Size())
	hits.ForEach(func(iv Interval, _ struct{}) bool {
		out = append(out, iv)
		return true
	})
	return out
}
