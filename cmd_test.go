package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// Subprocess smoke tests: the two CLI tools and every example build and
// run end to end. These need the go toolchain (always present when the
// tests themselves run) and are skipped under -short.

func runGo(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s failed: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestPambenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := runGo(t, "run", "./cmd/pambench", "-list")
	for _, exp := range []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e"} {
		if !strings.Contains(out, exp) {
			t.Fatalf("-list missing %s:\n%s", exp, out)
		}
	}
	out = runGo(t, "run", "./cmd/pambench", "-exp", "table4", "-n", "20000")
	if !strings.Contains(out, "node sharing") || !strings.Contains(out, "%") {
		t.Fatalf("table4 output unexpected:\n%s", out)
	}
	out = runGo(t, "run", "./cmd/pambench", "-exp", "table2", "-n", "50000", "-csv")
	if !strings.Contains(out, "Operation,Bound") {
		t.Fatalf("csv output unexpected:\n%s", out)
	}
}

func TestWordindexCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	out := runGo(t, "run", "./cmd/wordindex",
		"-words", "20000", "-query", "w000000 AND w000001", "-k", "3")
	if !strings.Contains(out, "built index") {
		t.Fatalf("missing build line:\n%s", out)
	}
	if !strings.Contains(out, "matched") {
		t.Fatalf("missing query result:\n%s", out)
	}
	out = runGo(t, "run", "./cmd/wordindex", "-words", "20000", "-bench", "-nq", "200")
	if !strings.Contains(out, "queries in") {
		t.Fatalf("missing bench line:\n%s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	checks := map[string]string{
		"quickstart":  "range sum 100..199",
		"analytics":   "end-of-day total",
		"intervals":   "sessions covering t=700",
		"rangetree2d": "headcount by age band",
		"textsearch":  "indexed 6 documents",
		"snapshots":   "snapshot isolation held",
	}
	for name, want := range checks {
		t.Run(name, func(t *testing.T) {
			out := runGo(t, "run", "./examples/"+name)
			if !strings.Contains(out, want) {
				t.Fatalf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
}
