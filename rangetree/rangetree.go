// Package rangetree implements 2D range trees (§5.2 of the PAM paper):
// a set of weighted points in the plane answering rectangle weight-sum,
// count, and report queries.
//
// It is the paper's flagship demonstration of nested augmented maps: the
// outer map stores points sorted by (x, y) and its *augmented value is
// itself an augmented map* — all points of the subtree sorted by (y, x),
// augmented by the sum of weights:
//
//	R_I = AM(P, <_y, W, W,  v,        +, 0)
//	R_O = AM(P, <_x, W, R_I, singleton, union, empty)
//
// Because maps are persistent, the inner map of a node shares structure
// with the inner maps of its children (Table 4 measures this sharing).
// A rectangle weight query runs two nested logarithmic searches: an
// AugProject over x projects each covered inner map through an AugRange
// over y — O(log^2 n) total.
package rangetree

import (
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/pam"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Weighted is a point with an integer weight.
type Weighted struct {
	Point
	W int64
}

// innerEntry: points ordered by (y, x), values are weights, augmented by
// the weight sum.
type innerEntry struct{}

func (innerEntry) Less(a, b Point) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

func (innerEntry) Id() int64 { return 0 }

func (innerEntry) Base(_ Point, w int64) int64 { return w }

func (innerEntry) Combine(x, y int64) int64 { return x + y }

// Inner is the inner map type: by-(y,x) points augmented with weight sum.
type Inner = pam.AugMap[Point, int64, int64, innerEntry]

// outerEntry: points ordered by (x, y), values are weights, augmented by
// the inner map; Combine is (persistent, parallel) map union.
type outerEntry struct{}

func (outerEntry) Less(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

func (outerEntry) Id() Inner { return Inner{} }

func (outerEntry) Base(p Point, w int64) Inner {
	return Inner{}.Insert(p, w)
}

func (outerEntry) Combine(x, y Inner) Inner {
	return x.UnionWith(y, func(a, b int64) int64 { return a + b })
}

// outer is the static structure: the nested-augmentation outer map,
// built only in bulk and consulted per ladder level.
type outer = pam.AugMap[Point, int64, Inner, outerEntry]

// bufEntry orders buffered points like the outer map, unaugmented.
type bufEntry struct{}

func (bufEntry) Less(a, b Point) bool                { return outerEntry{}.Less(a, b) }
func (bufEntry) Id() struct{}                        { return struct{}{} }
func (bufEntry) Base(Point, int64) struct{}          { return struct{}{} }
func (bufEntry) Combine(struct{}, struct{}) struct{} { return struct{}{} }

// ladder is the dynamization engine instance (see internal/dynamic).
type ladder = dynamic.Ladder[Point, int64, outer, bufEntry]

func addWeights(a, b int64) int64 { return a + b }

// backend drives the generic ladder with this package's static
// structure. Level builds assume distinct keys (the engine merges
// duplicates away), so Build's combine is never invoked.
var backend = &dynamic.Backend[Point, int64, outer]{
	Build:   func(proto outer, items []pam.KV[Point, int64]) outer { return proto.Build(items, addWeights) },
	Entries: outer.Entries,
	Size:    outer.Size,
	Find:    outer.Find,
	Less:    outerEntry{}.Less,
	ValEq:   func(a, b int64) bool { return a == b },
}

// Tree is a persistent 2D range tree over weighted points. Duplicate
// points combine by adding weights. Construction is O(n log n) work;
// QuerySum and QueryCount are O(log^2 n); ReportAll is O(log^2 n + k)
// for k reported points.
//
// The union-augmentation makes per-update augmented-value recomputation
// linear in the worst case, so single-point tree updates are off the
// table; instead the tree is dynamized by a logarithmic-method ladder
// (internal/dynamic): O(log n) immutable bulk structures of
// geometrically increasing size plus a constant-capacity write buffer.
// Insert and Delete write the buffer in O(log n) and carry it down the
// ladder with parallel rebuilds — amortized O(polylog n) per update —
// while every query consults the O(log n) levels and stays worst-case
// O(polylog n), with no O(n/ratio) buffer tail. Build and Merge return
// fully condensed single-level trees. Every operation is persistent:
// it returns a new handle and old handles keep answering from exactly
// the contents they had.
type Tree struct {
	lad ladder
}

// New returns an empty range tree with the given options.
func New(opts pam.Options) Tree {
	return Tree{lad: dynamic.New[Point, int64, outer, bufEntry](
		pam.NewAugMap[Point, int64, Inner, outerEntry](opts))}
}

// Build returns a range tree (with t's options) over the given points,
// ignoring t's contents.
func (t Tree) Build(pts []Weighted) Tree {
	items := make([]pam.KV[Point, int64], len(pts))
	for i, p := range pts {
		items[i] = pam.KV[Point, int64]{Key: p.Point, Val: p.W}
	}
	return Tree{lad: t.lad.WithStatic(backend, t.lad.Proto().Build(items, addWeights))}
}

// Insert returns a tree with the weighted point added (the weight of an
// already-present point increases by w, matching Build and Merge).
// Amortized O(polylog n): the point lands in the ladder's write buffer,
// which carries down the geometric levels with parallel rebuilds.
func (t Tree) Insert(p Point, w int64) Tree {
	return Tree{lad: t.lad.Insert(backend, p, w, addWeights)}
}

// Delete returns a tree without the given point (whatever its weight);
// deleting an absent point is a no-op. Amortized O(polylog n).
func (t Tree) Delete(p Point) Tree {
	return Tree{lad: t.lad.Delete(backend, p)}
}

// Pending returns the number of updates in the ladder's write buffer,
// bounded by the write-buffer capacity (dynamic.BufCap by default;
// 0 after Build or Merge).
func (t Tree) Pending() int64 { return t.lad.Pending() }

// LevelRecordCounts reports the record count of each ladder level
// (diagnostics for the geometric-growth tests).
func (t Tree) LevelRecordCounts() []int64 { return t.lad.LevelRecordCounts() }

// Contains reports whether the point is present.
func (t Tree) Contains(p Point) bool { return t.lad.Contains(backend, p) }

// Weight returns the weight at p.
func (t Tree) Weight(p Point) (int64, bool) { return t.lad.Find(backend, p) }

// Merge combines two range trees (weights of identical points add),
// condensing both sides' ladders first; the result is a fully
// condensed single-level tree.
func (t Tree) Merge(other Tree) Tree {
	a, b := t.lad.Condense(backend), other.lad.Condense(backend)
	return Tree{lad: t.lad.WithStatic(backend, a.UnionWith(b, addWeights))}
}

// Size returns the number of distinct points.
func (t Tree) Size() int64 { return t.lad.Size() }

// Rect is a closed query rectangle.
type Rect struct {
	XLo, XHi float64
	YLo, YHi float64
}

func (r Rect) contains(p Point) bool {
	return p.X >= r.XLo && p.X <= r.XHi && p.Y >= r.YLo && p.Y <= r.YHi
}

// xLoKey/xHiKey are the outer-key sentinels bounding the x-range.
func (r Rect) xLoKey() Point { return Point{X: r.XLo, Y: math.Inf(-1)} }
func (r Rect) xHiKey() Point { return Point{X: r.XHi, Y: math.Inf(1)} }

func (r Rect) yLoKey() Point { return Point{Y: r.YLo, X: math.Inf(-1)} }
func (r Rect) yHiKey() Point { return Point{Y: r.YHi, X: math.Inf(1)} }

// bufDelta folds the write buffer's contribution to a per-point
// aggregate over r: + each buffered insert inside r, − each tombstone
// inside r. O(dynamic.BufCap) = O(1) records scanned.
func (t Tree) bufDelta(r Rect, f func(sign int64, p Point, w int64)) {
	buf := t.lad.Buf()
	if buf.IsEmpty() {
		return
	}
	buf.Adds.ForEachRange(r.xLoKey(), r.xHiKey(), func(p Point, w int64) bool {
		if r.contains(p) {
			f(+1, p, w)
		}
		return true
	})
	buf.Dels.ForEachRange(r.xLoKey(), r.xHiKey(), func(p Point, w int64) bool {
		if r.contains(p) {
			f(-1, p, w)
		}
		return true
	})
}

// yIn reports whether a point's y lies in the rectangle's y-range —
// exactly the contribution of a singleton inner map to the y-range
// queries, so the AugProjectKV boundary projections below stay
// equivalent to their g(Base(k, v)) forms.
func (r Rect) yIn(p Point) bool { return p.Y >= r.YLo && p.Y <= r.YHi }

// sumIn is the paper's QUERY over one static structure: AugProjectKV
// over the x-range, projecting each covered inner map through a
// y-range weight sum and each boundary point directly (allocation
// free). O(log^2 of the structure's size).
func sumIn(s outer, r Rect) int64 {
	return pam.AugProjectKV(s, r.xLoKey(), r.xHiKey(),
		func(p Point, w int64) int64 {
			if r.yIn(p) {
				return w
			}
			return 0
		},
		func(in Inner) int64 { return in.AugRange(r.yLoKey(), r.yHiKey()) },
		func(a, b int64) int64 { return a + b },
		0)
}

// QuerySum returns the sum of weights of the points inside r, summing
// the signed contributions of every ladder level plus the write
// buffer's correction. Worst-case O(log^3 n): O(log n) levels at
// O(log^2) each.
func (t Tree) QuerySum(r Rect) int64 {
	var sum int64
	t.lad.EachSide(func(sign int64, s outer) { sum += sign * sumIn(s, r) })
	t.bufDelta(r, func(sign int64, _ Point, w int64) { sum += sign * w })
	return sum
}

// QueryCount returns the number of points inside r, by projecting inner
// maps through rank differences instead of weight sums. Tombstoned
// points appear once live and once as a tombstone across the levels,
// so signed summation counts them zero times. Worst-case O(log^3 n).
func (t Tree) QueryCount(r Rect) int64 {
	lo, hi := r.yLoKey(), r.yHiKey()
	var count int64
	t.lad.EachSide(func(sign int64, s outer) {
		count += sign * pam.AugProjectKV(s, r.xLoKey(), r.xHiKey(),
			func(p Point, _ int64) int64 {
				if r.yIn(p) {
					return 1
				}
				return 0
			},
			// Rank counts keys strictly below its argument; the ±Inf x
			// sentinels make the difference exactly the per-subtree count of
			// points with YLo <= y <= YHi.
			func(in Inner) int64 { return in.Rank(hi) - in.Rank(lo) },
			func(a, b int64) int64 { return a + b },
			0)
	})
	t.bufDelta(r, func(sign int64, _ Point, _ int64) { count += sign })
	return count
}

// ReportAll returns the points inside r with their weights, sorted by
// (x, y). Each level reports its matches; a point cancelled by a
// tombstone contributes a live record and a tombstone record with the
// same weight, so per-point signed aggregation leaves exactly the live
// points. O(log^2 n per level + matches) — output-sensitive up to the
// tombstoned matches, which the ladder's dead-record bound keeps
// proportional.
func (t Tree) ReportAll(r Rect) []Weighted {
	// Fully condensed tree (fresh from Build or Merge): one pure level,
	// nothing to cancel — append matches directly, no aggregation map.
	if s, ok := t.lad.Single(); ok {
		var parts []Weighted
		pam.AugProjectKV(s, r.xLoKey(), r.xHiKey(),
			func(p Point, w int64) struct{} {
				if r.yIn(p) {
					parts = append(parts, Weighted{Point: p, W: w})
				}
				return struct{}{}
			},
			func(in Inner) struct{} {
				in.ForEachRange(r.yLoKey(), r.yHiKey(), func(p Point, w int64) bool {
					parts = append(parts, Weighted{Point: p, W: w})
					return true
				})
				return struct{}{}
			},
			func(a, b struct{}) struct{} { return a },
			struct{}{})
		sortWeighted(parts)
		return parts
	}
	type acc struct {
		n int64
		w int64
	}
	sums := make(map[Point]acc)
	add := func(sign int64, p Point, w int64) {
		a := sums[p]
		a.n += sign
		a.w += sign * w
		sums[p] = a
	}
	t.lad.EachSide(func(sign int64, s outer) {
		pam.AugProjectKV(s, r.xLoKey(), r.xHiKey(),
			func(p Point, w int64) struct{} {
				if r.yIn(p) {
					add(sign, p, w)
				}
				return struct{}{}
			},
			func(in Inner) struct{} {
				in.ForEachRange(r.yLoKey(), r.yHiKey(), func(p Point, w int64) bool {
					add(sign, p, w)
					return true
				})
				return struct{}{}
			},
			func(a, b struct{}) struct{} { return a },
			struct{}{})
	})
	t.bufDelta(r, add)
	parts := make([]Weighted, 0, len(sums))
	for p, a := range sums {
		if a.n > 0 {
			parts = append(parts, Weighted{Point: p, W: a.w})
		}
	}
	sortWeighted(parts)
	return parts
}

func sortWeighted(parts []Weighted) {
	slices.SortFunc(parts, func(a, b Weighted) int {
		if a.X != b.X {
			if a.X < b.X {
				return -1
			}
			return 1
		}
		switch {
		case a.Y < b.Y:
			return -1
		case a.Y > b.Y:
			return 1
		default:
			return 0
		}
	})
}

// Validate checks the ladder invariants (carry propagation, buffer
// contract, level capacities) and, for every level structure, the
// outer-tree invariants including that every node's inner map holds
// exactly the subtree's points with correct weight sums (for tests).
// O(n log n).
func (t Tree) Validate() error {
	if err := t.lad.Validate(backend); err != nil {
		return err
	}
	innerEq := func(a, b Inner) bool {
		if a.Size() != b.Size() {
			return false
		}
		if a.AugVal() != b.AugVal() {
			return false
		}
		ae, be := a.Entries(), b.Entries()
		for i := range ae {
			if ae[i] != be[i] {
				return false
			}
		}
		return true
	}
	var err error
	t.lad.EachSide(func(_ int64, s outer) {
		if err == nil {
			err = s.Validate(innerEq)
		}
	})
	return err
}

// InnerNodeCounts reports the space effect of persistence on the inner
// maps across every ladder level (Table 4): unshared is the physical
// node count (interior nodes plus leaf blocks, one inner map per outer
// node or leaf block) if every inner map stored its own private copy;
// actual is the number of physically distinct inner nodes, which path
// copying makes far smaller because each parent's inner map shares
// structure with its children's.
func (t Tree) InnerNodeCounts() (unshared, actual int64) {
	var trees []core.Tree[Point, int64, int64, innerEntry]
	t.lad.EachSide(func(_ int64, s outer) {
		for _, in := range core.NodeAugs(s.Tree()) {
			unshared += core.CountUniqueNodes(in.Tree())
			trees = append(trees, in.Tree())
		}
	})
	return unshared, core.CountUniqueNodes(trees...)
}
