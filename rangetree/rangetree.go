// Package rangetree implements 2D range trees (§5.2 of the PAM paper):
// a set of weighted points in the plane answering rectangle weight-sum,
// count, and report queries.
//
// It is the paper's flagship demonstration of nested augmented maps: the
// outer map stores points sorted by (x, y) and its *augmented value is
// itself an augmented map* — all points of the subtree sorted by (y, x),
// augmented by the sum of weights:
//
//	R_I = AM(P, <_y, W, W,  v,        +, 0)
//	R_O = AM(P, <_x, W, R_I, singleton, union, empty)
//
// Because maps are persistent, the inner map of a node shares structure
// with the inner maps of its children (Table 4 measures this sharing).
// A rectangle weight query runs two nested logarithmic searches: an
// AugProject over x projects each covered inner map through an AugRange
// over y — O(log^2 n) total.
package rangetree

import (
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/pam"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Weighted is a point with an integer weight.
type Weighted struct {
	Point
	W int64
}

// innerEntry: points ordered by (y, x), values are weights, augmented by
// the weight sum.
type innerEntry struct{}

func (innerEntry) Less(a, b Point) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

func (innerEntry) Id() int64 { return 0 }

func (innerEntry) Base(_ Point, w int64) int64 { return w }

func (innerEntry) Combine(x, y int64) int64 { return x + y }

// Inner is the inner map type: by-(y,x) points augmented with weight sum.
type Inner = pam.AugMap[Point, int64, int64, innerEntry]

// outerEntry: points ordered by (x, y), values are weights, augmented by
// the inner map; Combine is (persistent, parallel) map union.
type outerEntry struct{}

func (outerEntry) Less(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

func (outerEntry) Id() Inner { return Inner{} }

func (outerEntry) Base(p Point, w int64) Inner {
	return Inner{}.Insert(p, w)
}

func (outerEntry) Combine(x, y Inner) Inner {
	return x.UnionWith(y, func(a, b int64) int64 { return a + b })
}

// outer is the outer map type.
type outer = pam.AugMap[Point, int64, Inner, outerEntry]

// bufEntry orders buffered points like the outer map, unaugmented.
type bufEntry struct{}

func (bufEntry) Less(a, b Point) bool                { return outerEntry{}.Less(a, b) }
func (bufEntry) Id() struct{}                        { return struct{}{} }
func (bufEntry) Base(Point, int64) struct{}          { return struct{}{} }
func (bufEntry) Combine(struct{}, struct{}) struct{} { return struct{}{} }

// buffer is the secondary update layer (see internal/dynamic).
type buffer = dynamic.Buffer[Point, int64, bufEntry]

func addWeights(a, b int64) int64 { return a + b }

// Tree is a persistent 2D range tree over weighted points. Duplicate
// points combine by adding weights. Construction is O(n log n) work;
// QuerySum and QueryCount are O(log^2 n); ReportAll is O(log^2 n + k)
// for k reported points.
//
// The union-augmentation makes per-update augmented-value recomputation
// linear in the worst case, so single-point tree updates are off the
// table; instead the tree is layered (internal/dynamic): an immutable
// bulk structure plus a small persistent update buffer that queries
// consult alongside it. Insert and Delete write the buffer in O(log n)
// and fold it down with a full parallel rebuild once it outgrows a
// fixed fraction of the bulk layer — amortized O(polylog n) per
// update. Build and Merge return fully folded trees. Every operation
// is persistent: it returns a new handle and old handles keep
// answering from exactly the contents they had.
type Tree struct {
	bulk outer
	buf  buffer
}

// New returns an empty range tree with the given options.
func New(opts pam.Options) Tree {
	return Tree{bulk: pam.NewAugMap[Point, int64, Inner, outerEntry](opts)}
}

// Build returns a range tree (with t's options) over the given points,
// ignoring t's contents.
func (t Tree) Build(pts []Weighted) Tree {
	items := make([]pam.KV[Point, int64], len(pts))
	for i, p := range pts {
		items[i] = pam.KV[Point, int64]{Key: p.Point, Val: p.W}
	}
	return Tree{bulk: t.bulk.Build(items, addWeights)}
}

// Insert returns a tree with the weighted point added (the weight of an
// already-present point increases by w, matching Build and Merge).
// Amortized O(polylog n): the point lands in the update buffer, which
// periodically folds into the bulk layer with a parallel rebuild.
func (t Tree) Insert(p Point, w int64) Tree {
	bv, inBulk := t.bulk.Find(p)
	nt := Tree{bulk: t.bulk, buf: t.buf.Insert(p, w, bv, inBulk, addWeights)}
	if nt.buf.ShouldFold(nt.bulk.Size()) {
		return nt.fold()
	}
	return nt
}

// Delete returns a tree without the given point (whatever its weight);
// deleting an absent point is a no-op. Amortized O(polylog n).
func (t Tree) Delete(p Point) Tree {
	bv, inBulk := t.bulk.Find(p)
	nt := Tree{bulk: t.bulk, buf: t.buf.Delete(p, bv, inBulk)}
	if nt.buf.ShouldFold(nt.bulk.Size()) {
		return nt.fold()
	}
	return nt
}

// fold rebuilds the bulk layer over the buffered updates, returning a
// tree with an empty buffer.
func (t Tree) fold() Tree {
	if t.buf.IsEmpty() {
		return Tree{bulk: t.bulk}
	}
	return Tree{bulk: t.bulk.Build(t.buf.Apply(t.bulk.Entries()), addWeights)}
}

// Pending returns the number of buffered updates not yet folded into
// the bulk layer (0 after Build, Merge, or a fold).
func (t Tree) Pending() int64 { return t.buf.Pending() }

// Contains reports whether the point is present.
func (t Tree) Contains(p Point) bool {
	return t.buf.Contains(p, t.bulk.Contains(p))
}

// Weight returns the weight at p.
func (t Tree) Weight(p Point) (int64, bool) {
	bv, inBulk := t.bulk.Find(p)
	return t.buf.Find(p, bv, inBulk)
}

// Merge combines two range trees (weights of identical points add),
// folding both sides' buffered updates first.
func (t Tree) Merge(other Tree) Tree {
	a, b := t.fold(), other.fold()
	return Tree{bulk: a.bulk.UnionWith(b.bulk, addWeights)}
}

// Size returns the number of distinct points.
func (t Tree) Size() int64 { return t.buf.LogicalSize(t.bulk.Size()) }

// Rect is a closed query rectangle.
type Rect struct {
	XLo, XHi float64
	YLo, YHi float64
}

func (r Rect) contains(p Point) bool {
	return p.X >= r.XLo && p.X <= r.XHi && p.Y >= r.YLo && p.Y <= r.YHi
}

// xLoKey/xHiKey are the outer-key sentinels bounding the x-range.
func (r Rect) xLoKey() Point { return Point{X: r.XLo, Y: math.Inf(-1)} }
func (r Rect) xHiKey() Point { return Point{X: r.XHi, Y: math.Inf(1)} }

func (r Rect) yLoKey() Point { return Point{Y: r.YLo, X: math.Inf(-1)} }
func (r Rect) yHiKey() Point { return Point{Y: r.YHi, X: math.Inf(1)} }

// bufDelta folds the update buffer's contribution to a per-point
// aggregate over r: + each buffered insert inside r, − each tombstone
// inside r. O(log b + matches in the x-range) for a buffer of b points.
func (t Tree) bufDelta(r Rect, f func(sign int64, p Point, w int64)) {
	if t.buf.IsEmpty() {
		return
	}
	t.buf.Adds.ForEachRange(r.xLoKey(), r.xHiKey(), func(p Point, w int64) bool {
		if r.contains(p) {
			f(+1, p, w)
		}
		return true
	})
	t.buf.Dels.ForEachRange(r.xLoKey(), r.xHiKey(), func(p Point, w int64) bool {
		if r.contains(p) {
			f(-1, p, w)
		}
		return true
	})
}

// QuerySum returns the sum of weights of the points inside r: the
// paper's QUERY — AugProject over the x-range, projecting each inner map
// through a y-range weight sum, plus the update buffer's correction.
// O(log^2 n + |buffer|).
func (t Tree) QuerySum(r Rect) int64 {
	sum := pam.AugProject(t.bulk, r.xLoKey(), r.xHiKey(),
		func(in Inner) int64 { return in.AugRange(r.yLoKey(), r.yHiKey()) },
		func(a, b int64) int64 { return a + b },
		0)
	t.bufDelta(r, func(sign int64, _ Point, w int64) { sum += sign * w })
	return sum
}

// QueryCount returns the number of points inside r, by projecting inner
// maps through rank differences instead of weight sums.
// O(log^2 n + |buffer|).
func (t Tree) QueryCount(r Rect) int64 {
	lo, hi := r.yLoKey(), r.yHiKey()
	count := pam.AugProject(t.bulk, r.xLoKey(), r.xHiKey(),
		// Rank counts keys strictly below its argument; the ±Inf x
		// sentinels make the difference exactly the per-subtree count of
		// points with YLo <= y <= YHi.
		func(in Inner) int64 { return in.Rank(hi) - in.Rank(lo) },
		func(a, b int64) int64 { return a + b },
		0)
	t.bufDelta(r, func(sign int64, _ Point, _ int64) { count += sign })
	return count
}

// ReportAll returns the points inside r with their weights, sorted by
// (x, y). O(log^2 n + k + |buffer|) for k results.
func (t Tree) ReportAll(r Rect) []Weighted {
	parts := pam.AugProject(t.bulk, r.xLoKey(), r.xHiKey(),
		func(in Inner) []Weighted {
			sub := in.Range(r.yLoKey(), r.yHiKey())
			out := make([]Weighted, 0, sub.Size())
			sub.ForEach(func(p Point, w int64) bool {
				out = append(out, Weighted{Point: p, W: w})
				return true
			})
			return out
		},
		func(a, b []Weighted) []Weighted { return append(a, b...) },
		nil)
	if !t.buf.IsEmpty() {
		// Cancel tombstoned points, then append the buffered inserts
		// inside r (points in both layers are tombstoned, so no point
		// appears twice).
		kept := parts[:0]
		for _, p := range parts {
			if !t.buf.Dels.Contains(p.Point) {
				kept = append(kept, p)
			}
		}
		parts = kept
		t.buf.Adds.ForEachRange(r.xLoKey(), r.xHiKey(), func(p Point, w int64) bool {
			if r.contains(p) {
				parts = append(parts, Weighted{Point: p, W: w})
			}
			return true
		})
	}
	slices.SortFunc(parts, func(a, b Weighted) int {
		if a.X != b.X {
			if a.X < b.X {
				return -1
			}
			return 1
		}
		switch {
		case a.Y < b.Y:
			return -1
		case a.Y > b.Y:
			return 1
		default:
			return 0
		}
	})
	return parts
}

// Validate checks outer-tree invariants including that every node's
// inner map holds exactly the subtree's points with correct weight sums,
// plus the update-buffer invariants (for tests). O(n log n).
func (t Tree) Validate() error {
	if err := t.buf.Validate(t.bulk.Find, func(a, b int64) bool { return a == b }); err != nil {
		return err
	}
	return t.bulk.Validate(func(a, b Inner) bool {
		if a.Size() != b.Size() {
			return false
		}
		if a.AugVal() != b.AugVal() {
			return false
		}
		ae, be := a.Entries(), b.Entries()
		for i := range ae {
			if ae[i] != be[i] {
				return false
			}
		}
		return true
	})
}

// InnerNodeCounts reports the space effect of persistence on the inner
// maps of the bulk layer (Table 4): unshared is the node count if every
// outer node stored its own copy of its inner map (the sum of inner
// sizes over all outer nodes); actual is the number of physically
// distinct inner nodes, which path copying makes far smaller because
// each parent's inner map shares structure with its children's.
func (t Tree) InnerNodeCounts() (unshared, actual int64) {
	augs := core.NodeAugs(t.bulk.Tree())
	trees := make([]core.Tree[Point, int64, int64, innerEntry], 0, len(augs))
	for _, in := range augs {
		unshared += in.Size()
		trees = append(trees, in.Tree())
	}
	return unshared, core.CountUniqueNodes(trees...)
}
