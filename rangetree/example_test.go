package rangetree_test

import (
	"fmt"

	"repro/pam"
	"repro/rangetree"
)

// A 2D range tree sums, counts, or reports the weighted points inside a
// rectangle: nested augmented maps make QuerySum and QueryCount
// O(log^2 n).
func ExampleTree_QuerySum() {
	t := rangetree.New(pam.Options{}).Build([]rangetree.Weighted{
		{Point: rangetree.Point{X: 1, Y: 1}, W: 10},
		{Point: rangetree.Point{X: 2, Y: 5}, W: 20},
		{Point: rangetree.Point{X: 6, Y: 2}, W: 40},
	})

	box := rangetree.Rect{XLo: 0, XHi: 5, YLo: 0, YHi: 5}
	fmt.Println(t.QuerySum(box))
	fmt.Println(t.QueryCount(box))
	fmt.Println(t.ReportAll(box))
	// Output:
	// 30
	// 2
	// [{{1 1} 10} {{2 5} 20}]
}

// Insert and Delete are persistent amortized-polylog updates: each
// returns a new tree, and old handles — like the snapshot taken before
// the updates — keep answering from exactly the contents they had.
func ExampleTree_Insert() {
	t := rangetree.New(pam.Options{}).Build([]rangetree.Weighted{
		{Point: rangetree.Point{X: 1, Y: 1}, W: 10},
		{Point: rangetree.Point{X: 2, Y: 5}, W: 20},
	})
	box := rangetree.Rect{XLo: 0, XHi: 5, YLo: 0, YHi: 5}

	snapshot := t
	t = t.Insert(rangetree.Point{X: 3, Y: 2}, 5) // new point
	t = t.Insert(rangetree.Point{X: 1, Y: 1}, 1) // weights add
	t = t.Delete(rangetree.Point{X: 2, Y: 5})

	fmt.Println(t.QuerySum(box), t.QueryCount(box))
	fmt.Println(snapshot.QuerySum(box), snapshot.QueryCount(box))
	// Output:
	// 16 2
	// 30 2
}
