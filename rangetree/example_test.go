package rangetree_test

import (
	"fmt"

	"repro/pam"
	"repro/rangetree"
)

// A 2D range tree sums, counts, or reports the weighted points inside a
// rectangle: nested augmented maps make QuerySum and QueryCount
// O(log^2 n).
func ExampleTree_QuerySum() {
	t := rangetree.New(pam.Options{}).Build([]rangetree.Weighted{
		{Point: rangetree.Point{X: 1, Y: 1}, W: 10},
		{Point: rangetree.Point{X: 2, Y: 5}, W: 20},
		{Point: rangetree.Point{X: 6, Y: 2}, W: 40},
	})

	box := rangetree.Rect{XLo: 0, XHi: 5, YLo: 0, YHi: 5}
	fmt.Println(t.QuerySum(box))
	fmt.Println(t.QueryCount(box))
	fmt.Println(t.ReportAll(box))
	// Output:
	// 30
	// 2
	// [{{1 1} 10} {{2 5} 20}]
}
