package rangetree

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/pam"
)

func naiveSum(pts []Weighted, r Rect) int64 {
	var s int64
	for _, p := range pts {
		if r.contains(p.Point) {
			s += p.W
		}
	}
	return s
}

func naiveCount(pts []Weighted, r Rect) int64 {
	var c int64
	for _, p := range pts {
		if r.contains(p.Point) {
			c++
		}
	}
	return c
}

func randPoints(rng *rand.Rand, n int, span float64) []Weighted {
	out := make([]Weighted, n)
	for i := range out {
		out[i] = Weighted{
			Point: Point{X: rng.Float64() * span, Y: rng.Float64() * span},
			W:     int64(rng.Intn(100)),
		}
	}
	return out
}

func randRect(rng *rand.Rand, span float64) Rect {
	x1, x2 := rng.Float64()*span, rng.Float64()*span
	y1, y2 := rng.Float64()*span, rng.Float64()*span
	return Rect{XLo: min(x1, x2), XHi: max(x1, x2), YLo: min(y1, y2), YHi: max(y1, y2)}
}

func TestQuerySumMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 2000, 1000)
	tr := New(pam.Options{}).Build(pts)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		r := randRect(rng, 1000)
		if got, want := tr.QuerySum(r), naiveSum(pts, r); got != want {
			t.Fatalf("QuerySum(%+v) = %d want %d", r, got, want)
		}
		if got, want := tr.QueryCount(r), naiveCount(pts, r); got != want {
			t.Fatalf("QueryCount(%+v) = %d want %d", r, got, want)
		}
	}
}

func TestReportAllMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 800, 300)
	tr := New(pam.Options{}).Build(pts)
	for trial := 0; trial < 100; trial++ {
		r := randRect(rng, 300)
		got := tr.ReportAll(r)
		var want []Weighted
		for _, p := range pts {
			if r.contains(p.Point) {
				want = append(want, p)
			}
		}
		slices.SortFunc(want, func(a, b Weighted) int {
			switch {
			case a.X != b.X:
				if a.X < b.X {
					return -1
				}
				return 1
			case a.Y < b.Y:
				return -1
			case a.Y > b.Y:
				return 1
			default:
				return 0
			}
		})
		if !slices.Equal(got, want) {
			t.Fatalf("ReportAll: got %d points want %d", len(got), len(want))
		}
	}
}

func TestDuplicatePointsCombineWeights(t *testing.T) {
	pts := []Weighted{
		{Point{1, 1}, 5}, {Point{1, 1}, 7}, {Point{2, 2}, 1},
	}
	tr := New(pam.Options{}).Build(pts)
	if tr.Size() != 2 {
		t.Fatalf("size %d want 2", tr.Size())
	}
	all := Rect{XLo: 0, XHi: 10, YLo: 0, YHi: 10}
	if got := tr.QuerySum(all); got != 13 {
		t.Fatalf("sum %d want 13", got)
	}
	if got := tr.QueryCount(all); got != 2 {
		t.Fatalf("count %d want 2", got)
	}
}

func TestBoundariesInclusive(t *testing.T) {
	tr := New(pam.Options{}).Build([]Weighted{
		{Point{0, 0}, 1}, {Point{5, 5}, 10}, {Point{10, 10}, 100},
	})
	// Closed rectangle: corners included.
	if got := tr.QuerySum(Rect{0, 10, 0, 10}); got != 111 {
		t.Fatalf("full sum %d", got)
	}
	if got := tr.QuerySum(Rect{5, 5, 5, 5}); got != 10 {
		t.Fatalf("point rect sum %d", got)
	}
	if got := tr.QuerySum(Rect{XLo: 5.0001, XHi: 10, YLo: 0, YHi: 10}); got != 100 {
		t.Fatalf("open-edge sum %d", got)
	}
	// Empty/inverted rectangles.
	if got := tr.QuerySum(Rect{XLo: 6, XHi: 4, YLo: 0, YHi: 10}); got != 0 {
		t.Fatalf("inverted rect sum %d", got)
	}
	// x-range covers a point but y-range excludes it (exercises the
	// nested query rejecting on the inner dimension).
	if got := tr.QuerySum(Rect{XLo: 4, XHi: 6, YLo: 6, YHi: 9}); got != 0 {
		t.Fatalf("y-excluded sum %d", got)
	}
}

func TestMergePersistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randPoints(rng, 300, 100)
	b := randPoints(rng, 300, 100)
	ta := New(pam.Options{}).Build(a)
	tb := New(pam.Options{}).Build(b)
	merged := ta.Merge(tb)
	all := append(slices.Clone(a), b...)
	for trial := 0; trial < 100; trial++ {
		r := randRect(rng, 100)
		if got, want := merged.QuerySum(r), naiveSum(all, r); got != want {
			t.Fatalf("merged QuerySum = %d want %d", got, want)
		}
		// Originals unchanged.
		if got, want := ta.QuerySum(r), naiveSum(a, r); got != want {
			t.Fatalf("merge mutated input a")
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(pam.Options{})
	r := Rect{0, 100, 0, 100}
	if tr.QuerySum(r) != 0 || tr.QueryCount(r) != 0 || len(tr.ReportAll(r)) != 0 {
		t.Fatal("empty tree returned non-empty results")
	}
}

// Property: QuerySum always equals the naive scan for arbitrary small
// integer point sets.
func TestQuerySumQuick(t *testing.T) {
	f := func(raw []struct{ X, Y, W uint8 }, rect struct{ A, B, C, D uint8 }) bool {
		pts := make([]Weighted, len(raw))
		for i, r := range raw {
			pts[i] = Weighted{Point{float64(r.X), float64(r.Y)}, int64(r.W)}
		}
		// Duplicates combine additively in the tree; mirror that in the
		// naive model by summing weights directly (contains() is on
		// points, so duplicate coordinates just add twice).
		tr := New(pam.Options{}).Build(pts)
		r := Rect{
			XLo: float64(min(rect.A, rect.B)), XHi: float64(max(rect.A, rect.B)),
			YLo: float64(min(rect.C, rect.D)), YHi: float64(max(rect.C, rect.D)),
		}
		return tr.QuerySum(r) == naiveSum(pts, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
