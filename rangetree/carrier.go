package rangetree

import "repro/internal/dynamic"

// Background carries (see internal/dynamic): a Carrier lets the
// goroutine that owns a Tree defer ladder level merges to a shared
// worker pool. Writes go through InsertWith/DeleteWith; a full write
// buffer spills to a pending overflow run instead of cascading
// synchronously, and every query keeps answering exactly from
// {buffer + overflow runs + levels} while the carry runs in the
// background. serve.PointStore wires one Carrier per shard when
// Tuning.CarryWorkers > 0.

// Carrier schedules background ladder carries for trees owned by one
// goroutine. Construct with NewCarrier; see dynamic.Carrier for the
// threading contract.
type Carrier struct {
	c *dynamic.Carrier[Point, int64, outer, bufEntry]
}

// NewCarrier returns a carrier feeding the given pool; maxPending is
// the pending-overflow-run count at which writes block on the
// in-flight carry.
func NewCarrier(pool *dynamic.CarryPool, maxPending int) *Carrier {
	return &Carrier{c: dynamic.NewCarrier[Point, int64, outer, bufEntry](backend, pool, maxPending)}
}

// Invalidate discards any in-flight or undelivered carry result; call
// it when the trees the carrier serves are replaced wholesale (e.g. a
// shard rebalance rebuilds them).
func (c *Carrier) Invalidate() { c.c.Invalidate() }

// Carries reports the number of background carries installed so far.
func (c *Carrier) Carries() uint64 { return c.c.Carries() }

// InsertWith is Insert with the carry deferred to the carrier's worker
// pool: the update itself is O(log n) plus at most one O(cap) overflow
// spill, never a synchronous level cascade.
func (t Tree) InsertWith(c *Carrier, p Point, w int64) Tree {
	return Tree{lad: c.c.Insert(t.lad, p, w, addWeights)}
}

// DeleteWith is Delete with the carry deferred; see InsertWith.
func (t Tree) DeleteWith(c *Carrier, p Point) Tree {
	return Tree{lad: c.c.Delete(t.lad, p)}
}

// PendingCarries reports the number of spilled overflow runs not yet
// carried into the levels (0 for trees written without a carrier).
func (t Tree) PendingCarries() int { return t.lad.OverflowRuns() }
