package rangetree

import "repro/internal/dynamic"

// State is the dehydrated form of a Tree: the ladder's write buffer and
// per-level records with rung boundaries preserved (see
// dynamic.LadderState). It is what the serving layer's checkpoints
// serialize for a PointStore; Rehydrate rebuilds an equivalent tree —
// same logical contents, same ladder shape — via the parallel bulk
// Build per level.
type State = dynamic.LadderState[Point, int64]

// Dehydrate materializes the tree's ladder state for serialization.
func (t Tree) Dehydrate() State { return t.lad.Dehydrate(backend) }

// Rehydrate rebuilds a tree (with t's options) from a dehydrated state,
// validating the ladder invariants; corrupt states yield an error,
// never a structurally broken tree.
func (t Tree) Rehydrate(st State) (Tree, error) {
	lad, err := t.lad.Rehydrate(backend, st)
	if err != nil {
		return Tree{}, err
	}
	return Tree{lad: lad}, nil
}
