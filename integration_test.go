package repro

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestAllExperimentsRunSmall executes every registered experiment at a
// tiny scale and sanity-checks the produced tables: the full harness
// (workload generation, all four applications, all baselines, both
// renderers) end to end.
func TestAllExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness integration is not -short")
	}
	cfg := experiments.Config{N: 20_000, Q: 2_000, Threads: []int{1, 2}, Seed: 7}
	for _, e := range experiments.All() {
		t.Run(e.Name, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Header) == 0 {
					t.Fatalf("malformed table %+v", tb.Title)
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q has no rows", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("table %q: row width %d != header width %d",
							tb.Title, len(row), len(tb.Header))
					}
				}
			}
			var txt, csv bytes.Buffer
			experiments.Render(&txt, tables)
			experiments.RenderCSV(&csv, tables)
			if !strings.Contains(txt.String(), tables[0].Title) {
				t.Fatal("text renderer dropped the title")
			}
			if !strings.Contains(csv.String(), ",") {
				t.Fatal("CSV renderer produced no cells")
			}
		})
	}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{"dynamic", "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "replica",
		"segrect", "serve", "table1", "table2", "table3", "table4", "table5", "table6"}
	all := experiments.All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.Name != want[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.Name, want[i])
		}
		if _, ok := experiments.ByName(e.Name); !ok {
			t.Fatalf("ByName(%q) failed", e.Name)
		}
	}
	if _, ok := experiments.ByName("nope"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
}
