// Package repro is a Go reproduction of PAM (Parallel Augmented Maps,
// PPoPP 2018): a parallel, persistent, join-based balanced-tree library for
// augmented ordered maps, together with the paper's four applications
// (augmented range sums, interval trees, 2D range trees, and weighted
// inverted indices), the segment- and rectangle-query structures of the
// follow-up paper (arXiv:1803.08621), the baselines the evaluation
// compares against, and a benchmark harness that regenerates every table
// and figure in the evaluation.
//
// Since PR 5 the core tree uses blocked leaves in the style of PAM's
// successor library PaC-trees (arXiv:2204.06077): interior nodes carry
// one entry each as before, but the fringe stores sorted flat arrays of
// up to B entries (pam.Options.Block, default 32) with one precomputed
// augmented value and one reference count per block, so bulk builds,
// unions, and scans allocate and pointer-chase roughly B times less
// while the public persistent-map semantics are unchanged.
//
// Since PR 10 leaf blocks can additionally be compressed
// (pam.Options.Compress, e.g. pam.CompressUint64): each block stores a
// first-key anchor plus zig-zag varint key deltas and
// compressor-encoded values, decoded on the fly during scans and
// re-encoded on copy-on-write. Compression requires keys with a
// bijective uint64 image (integer-like keys); on dense 64-bit keys it
// cuts resident bytes/entry from ~22 to ~9, and durable checkpoints
// serialize the packed blocks nearly verbatim.
//
// The public entry points are:
//
//   - repro/pam: the augmented map library (the paper's contribution)
//   - repro/interval: interval maps with stabbing queries (§5.1)
//   - repro/overlap: interval-overlap counting and reporting (§1)
//   - repro/rangetree: 2D range trees with nested augmented maps (§5.2)
//   - repro/invindex: weighted inverted indices with top-k search (§5.3)
//   - repro/segcount: segment-crossing queries (arXiv:1803.08621 §4)
//   - repro/stabbing: rectangle stabbing queries (arXiv:1803.08621 §5)
//   - repro/serve: the sharded serving layer with snapshot-consistent
//     cross-shard reads
//
// See README.md for the package map, the paper-to-code mapping, and how
// to run the tests and reproductions. The benchmarks in bench_test.go
// regenerate the evaluation tables and figures; cmd/pambench is the CLI
// driver.
package repro
