# Development targets; `make ci` is what a CI pipeline should run
# (.github/workflows/ci.yml does exactly that, plus a fuzz smoke job).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test vet race crash compact-crash bench bench-json bench-gate fuzz ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-heavy packages plus the
# dynamic-structure snapshot stress test (concurrent readers vs. an
# inserting/folding writer), the background-carry worker pool, and the
# whole serving layer, including the 1000-schedule differential harness
# with its concurrent replica readers, the crash–recovery
# fault-injection harness, and the writer/reader/snapshotter/rebalancer
# stress tests (TestServeStressCarries covers carries racing
# rebalances).
race:
	$(GO) test -race ./internal/core ./internal/parallel
	$(GO) test -race -run 'TestDynamicConcurrent' .
	$(GO) test -race ./internal/dynamic
	$(GO) test -race ./serve

# The durability suite on its own: the crash–recovery fault-injection
# harness (1000+ randomized kill-point schedules) under -race, plus the
# deterministic checkpoint/WAL/recovery tests.
crash:
	$(GO) test -race -count=1 -run 'TestCrashRecoverySchedules|TestPointCrashRecoverySchedules|TestDurable|TestLadderHydrate' ./serve

# The self-healing suite (PR 8): 1100+ randomized kill-point schedules
# crashing mid-compaction and mid-scrub with bit-flip media corruption
# layered on top, plus the deterministic compaction / Merkle tamper /
# quarantine / repair tests. Contract: every injected corruption is
# repaired or reported, never silent.
compact-crash:
	$(GO) test -race -count=1 -run 'TestCompactCrashSchedules|TestScrubCrashSchedules|TestCompact|TestMerkle|TestRecovery|TestScrub|TestVerify|TestTmpSweep|TestPointCheckpointTamper|TestMemFS' ./serve

bench:
	$(GO) test -bench=. -benchmem .

# The committed perf trajectory: the pambench perf suite (ns/op,
# allocs/op, dynamic query-tail p50/p99) as a JSON artifact. CI uploads
# it; bump the filename each PR that re-measures.
BENCH_JSON ?= BENCH_PR10.json
bench-json:
	$(GO) run ./cmd/pambench -json > $(BENCH_JSON)

# Soft perf-regression gate (CI): compare a head perf-suite run against
# a base run and fail only when an allowlisted tier-1 benchmark
# regresses >25% in ns/op or allocs/op. Everything else is
# informational. Both files should come from the same machine.
GATE_BASE ?= $(BENCH_JSON)
GATE_HEAD ?= /tmp/BENCH_head.json
bench-gate:
	$(GO) run ./cmd/benchgate -base $(GATE_BASE) -head $(GATE_HEAD)

# Short exploratory fuzz burst over every fuzz target (each already
# runs its seed corpus under plain `go test`).
fuzz:
	$(GO) test -fuzz=FuzzTreeOps -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz=FuzzCompressedBlock -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz=FuzzDynamicLadder -fuzztime=$(FUZZTIME) ./internal/dynamic
	$(GO) test -fuzz=FuzzSegQueries -fuzztime=$(FUZZTIME) ./segcount
	$(GO) test -fuzz=FuzzRectQueries -fuzztime=$(FUZZTIME) ./stabbing
	$(GO) test -fuzz=FuzzDynamicRangeTree -fuzztime=$(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz=FuzzDynamicSegCount -fuzztime=$(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz=FuzzDynamicStabbing -fuzztime=$(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz=FuzzServe -fuzztime=$(FUZZTIME) -run '^$$' ./serve
	$(GO) test -fuzz=FuzzCheckpointDecode -fuzztime=$(FUZZTIME) -run '^$$' ./serve
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=$(FUZZTIME) -run '^$$' ./serve
	$(GO) test -fuzz=FuzzCompactDecode -fuzztime=$(FUZZTIME) -run '^$$' ./serve

ci: vet build test race
