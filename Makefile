# Development targets; `make ci` is what a CI pipeline should run.

GO ?= go

.PHONY: all build test vet race bench fuzz ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrency-heavy packages.
race:
	$(GO) test -race ./internal/core ./internal/parallel

bench:
	$(GO) test -bench=. -benchmem .

# Short exploratory fuzz burst over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzTreeOps -fuzztime=10s ./internal/core
	$(GO) test -fuzz=FuzzSegQueries -fuzztime=10s ./segcount
	$(GO) test -fuzz=FuzzRectQueries -fuzztime=10s ./stabbing

ci: vet build test race
