package repro

// Ablation benchmarks for the design choices called out in DESIGN.md:
// balancing scheme, parallel grain size, augmentation maintenance cost,
// and the refcount-1 reuse optimization. These quantify the paper's
// claims that (a) the choice of balancing scheme barely matters once
// everything is join-based, (b) maintaining a constant-time augmentation
// costs ~10% on bulk operations, and (c) in-place reuse makes the
// functional structure competitive with ephemeral ones.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/pam"
)

type coreSum = core.Tree[uint64, int64, int64, pam.SumEntry[uint64, int64]]

func coreSumTree(cfg core.Config, seed uint64, n int) coreSum {
	items := make([]core.Entry[uint64, int64], n)
	for i, e := range benchItems(seed, n) {
		items[i] = core.Entry[uint64, int64]{Key: e.Key, Val: e.Val}
	}
	return core.New[uint64, int64, int64, pam.SumEntry[uint64, int64]](cfg).Build(items, addv)
}

// BenchmarkAblation_SchemeUnion compares union across the four balancing
// schemes (paper §4: "similar algorithm can be applied to AVL trees,
// red-black trees, weight-balanced trees and treaps").
func BenchmarkAblation_SchemeUnion(b *testing.B) {
	for _, sch := range []core.Scheme{core.WeightBalanced, core.AVL, core.RedBlack, core.Treap} {
		t1 := coreSumTree(core.Config{Scheme: sch}, 1, benchN)
		t2 := coreSumTree(core.Config{Scheme: sch}, 2, benchN)
		b.Run(sch.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = t1.UnionWith(t2, addv)
			}
		})
	}
}

// BenchmarkAblation_SchemeInsert compares sequential insertion loops.
func BenchmarkAblation_SchemeInsert(b *testing.B) {
	items := benchItems(3, 20_000)
	for _, sch := range []core.Scheme{core.WeightBalanced, core.AVL, core.RedBlack, core.Treap} {
		b.Run(sch.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := core.New[uint64, int64, int64, pam.SumEntry[uint64, int64]](core.Config{Scheme: sch})
				for _, e := range items {
					t.InsertInPlace(e.Key, e.Val)
				}
			}
		})
	}
}

// BenchmarkAblation_Grain sweeps the parallel grain size on union
// (PAM fixes a node-count granularity; this shows the plateau).
func BenchmarkAblation_Grain(b *testing.B) {
	for _, grain := range []int64{64, 256, 1024, 4096, 16384} {
		t1 := coreSumTree(core.Config{Grain: grain}, 1, benchN)
		t2 := coreSumTree(core.Config{Grain: grain}, 2, benchN)
		b.Run(fmt.Sprintf("grain=%d", grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = t1.UnionWith(t2, addv)
			}
		})
	}
}

// BenchmarkAblation_AugOverhead measures the cost of maintaining the
// augmentation on a bulk op: augmented vs plain union (paper: within
// ~10%).
func BenchmarkAblation_AugOverhead(b *testing.B) {
	b.Run("augmented", func(b *testing.B) {
		t1 := benchSumMap(1, benchN)
		t2 := benchSumMap(2, benchN)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = t1.UnionWith(t2, addv)
		}
	})
	b.Run("plain", func(b *testing.B) {
		t1 := pam.NewMap[uint64, int64](pam.Options{}).Build(benchItems(1, benchN), nil)
		t2 := pam.NewMap[uint64, int64](pam.Options{}).Build(benchItems(2, benchN), nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = t1.UnionWith(t2, addv)
		}
	})
}

// BenchmarkAblation_ReuseVsPersistent measures the refcount-1 reuse
// optimization: in-place inserts into an unshared tree vs fully
// persistent inserts that keep every version reachable.
func BenchmarkAblation_ReuseVsPersistent(b *testing.B) {
	items := benchItems(4, 20_000)
	b.Run("inplace-reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
			for _, e := range items {
				m.InsertInPlace(e.Key, e.Val)
			}
		}
	})
	b.Run("persistent-allversions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := pam.NewAugMap[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
			keep := m
			for _, e := range items {
				m = m.Insert(e.Key, e.Val)
			}
			_ = keep
		}
	})
}

// BenchmarkAblation_AugFilterVsFilter is the headline augmentation win:
// output-sensitive augmented filtering vs the linear plain filter at
// shrinking output sizes.
func BenchmarkAblation_AugFilterVsFilter(b *testing.B) {
	m := pam.NewAugMap[uint64, int64, int64, pam.MaxEntry[uint64, int64]](pam.Options{}).
		Build(benchItems(1, benchN), nil)
	for _, k := range []int{benchN / 10, benchN / 100, benchN / 1000} {
		th := int64(1000 - k*1000/benchN)
		b.Run(fmt.Sprintf("augfilter/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m.AugFilter(func(a int64) bool { return a >= th })
			}
		})
		b.Run(fmt.Sprintf("plainfilter/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m.Filter(func(_ uint64, v int64) bool { return v >= th })
			}
		})
	}
}
