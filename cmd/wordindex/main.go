// Wordindex builds a weighted inverted index and runs ranked boolean
// queries against it, reproducing the paper's §6.4 experiment (Table 6)
// end to end as a usable tool.
//
// With -dir it indexes the .txt files of a directory (one document per
// file, whitespace-tokenized, case-folded, weight = term frequency);
// without it, a synthetic Zipf corpus of -words tokens stands in for the
// paper's Wikipedia dump. -query runs one query and prints the top -k
// documents; -bench runs the throughput measurement.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/workload"
	"repro/invindex"
)

func main() {
	var (
		dir   = flag.String("dir", "", "directory of .txt documents to index (default: synthetic corpus)")
		words = flag.Int("words", 2_000_000, "synthetic corpus size in tokens")
		query = flag.String("query", "", "query: words separated by AND/OR, e.g. 'go AND maps'")
		k     = flag.Int("k", 10, "number of top documents to report")
		bench = flag.Bool("bench", false, "run the Table 6 throughput benchmark")
		nq    = flag.Int("nq", 10_000, "benchmark query count")
	)
	flag.Parse()

	var triples []invindex.Triple
	var docNames []string
	var spec workload.CorpusSpec
	if *dir != "" {
		var err error
		triples, docNames, err = indexDir(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wordindex: %v\n", err)
			os.Exit(1)
		}
	} else {
		spec = workload.DefaultCorpus(*words, 1)
		occ := spec.Generate()
		triples = make([]invindex.Triple, len(occ))
		for i, o := range occ {
			triples[i] = invindex.Triple{Word: o.Word, Doc: invindex.DocID(o.Doc), W: invindex.Weight(o.W)}
		}
		fmt.Printf("synthetic corpus: %d tokens, %d docs, %d-word vocabulary\n",
			spec.TotalWords(), spec.Docs, spec.Vocabulary)
	}

	start := time.Now()
	ix := invindex.Build(triples)
	buildTime := time.Since(start)
	fmt.Printf("built index: %d tokens -> %d words in %v (%.2f Melts/s)\n",
		len(triples), ix.Words(), buildTime.Round(time.Millisecond),
		float64(len(triples))/buildTime.Seconds()/1e6)

	if *query != "" {
		runQuery(ix, *query, *k, docNames)
	}

	if *bench {
		if *dir != "" {
			fmt.Fprintln(os.Stderr, "wordindex: -bench requires the synthetic corpus")
			os.Exit(1)
		}
		queries := spec.QueryWords(*nq)
		start = time.Now()
		for _, q := range queries {
			and := ix.QueryAnd(q[0], q[1])
			_ = invindex.TopK(and, *k)
		}
		d := time.Since(start)
		fmt.Printf("ran %d and+top-%d queries in %v (%.1f Kq/s)\n",
			*nq, *k, d.Round(time.Millisecond), float64(*nq)/d.Seconds()/1e3)
	}
}

func runQuery(ix invindex.Index, q string, k int, docNames []string) {
	fields := strings.Fields(q)
	if len(fields) == 0 {
		return
	}
	result := ix.Posting(strings.ToLower(fields[0]))
	for i := 1; i+1 < len(fields); i += 2 {
		word := ix.Posting(strings.ToLower(fields[i+1]))
		switch strings.ToUpper(fields[i]) {
		case "AND":
			result = invindex.And(result, word)
		case "OR":
			result = invindex.Or(result, word)
		case "NOT":
			result = invindex.AndNot(result, word)
		default:
			fmt.Fprintf(os.Stderr, "wordindex: bad operator %q (want AND/OR/NOT)\n", fields[i])
			os.Exit(2)
		}
	}
	fmt.Printf("query %q matched %d documents; top %d:\n", q, result.Size(), k)
	for _, dw := range invindex.TopK(result, k) {
		name := fmt.Sprintf("doc%d", dw.Doc)
		if int(dw.Doc) < len(docNames) {
			name = docNames[dw.Doc]
		}
		fmt.Printf("  %-30s %.4f\n", name, float64(dw.W))
	}
}

// indexDir tokenizes every .txt file under dir (weight = term count).
func indexDir(dir string) ([]invindex.Triple, []string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.txt"))
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no .txt files in %s", dir)
	}
	var triples []invindex.Triple
	var names []string
	for docID, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, filepath.Base(path))
		counts := map[string]int{}
		for _, w := range strings.Fields(string(data)) {
			w = strings.ToLower(strings.Trim(w, ".,;:!?\"'()[]{}"))
			if w != "" {
				counts[w]++
			}
		}
		for w, c := range counts {
			triples = append(triples, invindex.Triple{
				Word: w, Doc: invindex.DocID(docID), W: invindex.Weight(c),
			})
		}
	}
	return triples, names, nil
}
