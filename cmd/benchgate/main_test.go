package main

import (
	"io"
	"strings"
	"testing"
)

func res(op string, ns, allocs float64) result {
	return result{Op: op, N: 1000, NsPerOp: ns, AllocsPerOp: allocs}
}

func toMap(rs ...result) map[string]result {
	out := make(map[string]result, len(rs))
	for _, r := range rs {
		out[r.Op] = r
	}
	return out
}

func TestRunGate(t *testing.T) {
	cfg := func(gate string) gateConfig {
		return gateConfig{gated: parseGateList(gate), maxRegress: 0.25, minGateNs: 1000}
	}
	cases := []struct {
		name     string
		base     []result
		head     []result
		cfg      gateConfig
		failures []string
	}{
		{
			name: "within threshold passes",
			base: []result{res("find", 2000, 0)},
			head: []result{res("find", 2400, 0)}, // +20% < 25%
			cfg:  cfg("find"),
		},
		{
			name: "ns regression over 25% fails",
			base: []result{res("find", 2000, 0)},
			head: []result{res("find", 2600, 0)}, // +30%
			cfg:  cfg("find"),
			failures: []string{
				"find ns/op 2000 -> 2600 (+30.0%)",
			},
		},
		{
			name: "exactly 25% passes (strict inequality)",
			base: []result{res("find", 2000, 8)},
			head: []result{res("find", 2500, 10)},
			cfg:  cfg("find"),
		},
		{
			name: "allocs regression fails even when ns improves",
			base: []result{res("union_equal", 5000, 8)},
			head: []result{res("union_equal", 3000, 11)}, // allocs +37.5%
			cfg:  cfg("union_equal"),
			failures: []string{
				"union_equal allocs/op 8 -> 11 (+37.5%)",
			},
		},
		{
			name: "zero-alloc baseline trips on any alloc",
			base: []result{res("find", 2000, 0)},
			head: []result{res("find", 2000, 1)},
			cfg:  cfg("find"),
			failures: []string{
				"find allocs/op 0 -> 1 (n/a)",
			},
		},
		{
			name: "sub-microsecond op gated on allocs only",
			base: []result{res("find", 100, 2)},
			head: []result{res("find", 900, 2)}, // 9× wall time but below minGateNs
			cfg:  cfg("find"),
		},
		{
			name: "sub-microsecond op still fails on allocs",
			base: []result{res("find", 100, 2)},
			head: []result{res("find", 100, 4)},
			cfg:  cfg("find"),
			failures: []string{
				"find allocs/op 2 -> 4 (+100.0%)",
			},
		},
		{
			name: "ungated op never blocks",
			base: []result{res("scan", 1000, 1)},
			head: []result{res("scan", 9000, 99)},
			cfg:  cfg("find,union_equal"),
			failures: []string{
				`gated op "find" missing from head run`,
				`gated op "union_equal" missing from head run`,
			},
		},
		{
			name: "gated op missing from head fails",
			base: []result{res("find", 2000, 0), res("union_equal", 5000, 8)},
			head: []result{res("find", 2000, 0)},
			cfg:  cfg("find,union_equal"),
			failures: []string{
				`gated op "union_equal" missing from head run`,
			},
		},
		{
			name: "op new in head is informational",
			base: []result{res("find", 2000, 0)},
			head: []result{res("find", 2000, 0), res("checkpoint_incremental", 12345, 99)},
			cfg:  cfg("find"),
		},
		{
			name: "empty gate list gates nothing",
			base: []result{res("find", 2000, 0)},
			head: []result{res("find", 99999, 99)},
			cfg:  cfg(" , "),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runGate(toMap(tc.base...), toMap(tc.head...), tc.cfg, io.Discard)
			if len(got) != len(tc.failures) {
				t.Fatalf("failures = %q, want %q", got, tc.failures)
			}
			for i := range got {
				if got[i] != tc.failures[i] {
					t.Fatalf("failure %d = %q, want %q", i, got[i], tc.failures[i])
				}
			}
		})
	}
}

func TestParseReport(t *testing.T) {
	cases := []struct {
		name    string
		raw     string
		wantErr bool
		wantOps int
	}{
		{
			name:    "valid report",
			raw:     `{"results":[{"op":"find","n":10,"ns_op":123.4,"allocs_op":0},{"op":"union_equal","n":5,"ns_op":5000,"allocs_op":8}]}`,
			wantOps: 2,
		},
		{name: "empty results", raw: `{"results":[]}`, wantOps: 0},
		{name: "malformed JSON", raw: `{"results":[{"op":`, wantErr: true},
		{name: "wrong type", raw: `{"results":[{"op":"find","ns_op":"fast"}]}`, wantErr: true},
		{name: "not JSON at all", raw: `ns/op\t1234`, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseReport([]byte(tc.raw))
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if err == nil && len(got) != tc.wantOps {
				t.Fatalf("parsed %d ops, want %d", len(got), tc.wantOps)
			}
		})
	}
	// Duplicate op names: last one wins, no error (pambench never emits
	// duplicates; the map shape just makes the behavior explicit).
	got, err := parseReport([]byte(`{"results":[{"op":"find","ns_op":1},{"op":"find","ns_op":2}]}`))
	if err != nil || got["find"].NsPerOp != 2 {
		t.Fatalf("duplicate ops: got %v, %v", got, err)
	}
}

func TestRunGateReportLayout(t *testing.T) {
	var sb strings.Builder
	base := toMap(res("find", 100, 2), res("union_equal", 5000, 8))
	head := toMap(res("find", 120, 2), res("union_equal", 5100, 8), res("fresh_op", 10, 0))
	fails := runGate(base, head, gateConfig{gated: parseGateList("find,union_equal"), maxRegress: 0.25, minGateNs: 1000}, &sb)
	if len(fails) != 0 {
		t.Fatalf("unexpected failures: %q", fails)
	}
	out := sb.String()
	for _, want := range []string{"GATED (allocs only)", "GATED", "new", "+2.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
