// Benchgate is the CI soft regression gate over the perf-trajectory
// JSON (`pambench -json`, BENCH_PRn.json): it compares a head run
// against a base run and fails only when one of an explicit allowlist
// of tier-1 operations regresses by more than the threshold in ns/op or
// allocs/op. Sub-microsecond ops (below -min-gate-ns) are gated on
// allocs/op alone — their wall times are scheduler noise on shared CI
// runners. Every other delta is printed for information but never
// blocks.
//
// Both files should come from the same machine (CI builds the base
// checkout's suite on the same runner) so the ns/op comparison is
// apples to apples; allocs/op is machine-independent.
//
// Usage:
//
//	benchgate -base /tmp/base.json -head /tmp/head.json \
//	    -gate rangesum_build,rangesum_query,union_equal,find,serve_write_async_4shard \
//	    -max-regress 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

type result struct {
	Op          string  `json:"op"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

type report struct {
	Results []result `json:"results"`
}

// parseReport decodes one pambench -json report into an op-keyed map.
func parseReport(raw []byte) (map[string]result, error) {
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, err
	}
	out := make(map[string]result, len(r.Results))
	for _, res := range r.Results {
		out[res.Op] = res
	}
	return out, nil
}

func load(path string) (map[string]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out, err := parseReport(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// parseGateList splits the -gate flag into the gated-op set.
func parseGateList(list string) map[string]bool {
	gated := map[string]bool{}
	for _, op := range strings.Split(list, ",") {
		if op = strings.TrimSpace(op); op != "" {
			gated[op] = true
		}
	}
	return gated
}

func pct(base, head float64) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(head/base-1))
}

// gateConfig carries the thresholds of one benchgate run.
type gateConfig struct {
	gated      map[string]bool
	maxRegress float64
	minGateNs  float64
}

// runGate prints the comparison table to w and returns the gated
// regressions (empty means the gate passes).
func runGate(base, head map[string]result, cfg gateConfig, w io.Writer) []string {
	var failures []string
	fmt.Fprintf(w, "%-32s %14s %14s %9s %12s %12s %9s  gate\n",
		"op", "base ns/op", "head ns/op", "Δns", "base allocs", "head allocs", "Δallocs")
	for _, h := range headOrder(head) {
		b, ok := base[h.Op]
		if !ok {
			fmt.Fprintf(w, "%-32s %14s %14.0f %9s %12s %12.0f %9s  new\n",
				h.Op, "-", h.NsPerOp, "-", "-", h.AllocsPerOp, "-")
			continue
		}
		mark := "info"
		if cfg.gated[h.Op] {
			mark = "GATED"
			// Wall time is gated only above the noise floor: a ~100ns op
			// on a shared runner can drift >25% with no code change, so
			// fast ops are held to their (deterministic) allocation count.
			if b.NsPerOp >= cfg.minGateNs && h.NsPerOp > b.NsPerOp*(1+cfg.maxRegress) {
				failures = append(failures, fmt.Sprintf("%s ns/op %.0f -> %.0f (%s)", h.Op, b.NsPerOp, h.NsPerOp, pct(b.NsPerOp, h.NsPerOp)))
			} else if b.NsPerOp > 0 && b.NsPerOp < cfg.minGateNs {
				mark = "GATED (allocs only)"
			}
			// An allocation-free baseline is a deliverable: any alloc
			// appearing on such an op fails (the threshold is relative,
			// so with base 0 any head > 0 trips it).
			if h.AllocsPerOp > b.AllocsPerOp*(1+cfg.maxRegress) {
				failures = append(failures, fmt.Sprintf("%s allocs/op %.0f -> %.0f (%s)", h.Op, b.AllocsPerOp, h.AllocsPerOp, pct(b.AllocsPerOp, h.AllocsPerOp)))
			}
		}
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %9s %12.0f %12.0f %9s  %s\n",
			h.Op, b.NsPerOp, h.NsPerOp, pct(b.NsPerOp, h.NsPerOp),
			b.AllocsPerOp, h.AllocsPerOp, pct(b.AllocsPerOp, h.AllocsPerOp), mark)
	}
	for _, op := range sortedKeys(cfg.gated) {
		if _, ok := head[op]; !ok {
			failures = append(failures, fmt.Sprintf("gated op %q missing from head run", op))
		}
	}
	return failures
}

func main() {
	var (
		basePath   = flag.String("base", "", "baseline JSON (committed BENCH_PRn.json or a fresh base-ref run)")
		headPath   = flag.String("head", "", "head JSON to check")
		gateList   = flag.String("gate", "rangesum_build,rangesum_query,union_equal,find,serve_write_async_4shard,recovery_replay,recovery_replay_compacted,update_tail_p99,replica_read_throughput,block_scan_throughput,block_scan_throughput_compressed", "comma-separated ops gated on regression")
		maxRegress = flag.Float64("max-regress", 0.25, "maximum tolerated relative regression for gated ops")
		minGateNs  = flag.Float64("min-gate-ns", 1000, "ns/op floor below which gated ops are checked on allocs only (sub-microsecond wall times are scheduler noise on shared CI runners)")
	)
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	head, err := load(*headPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cfg := gateConfig{gated: parseGateList(*gateList), maxRegress: *maxRegress, minGateNs: *minGateNs}
	failures := runGate(base, head, cfg, os.Stdout)
	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Printf("REGRESSION: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: all gated benchmarks within threshold")
}

// headOrder returns head results sorted by op name for a deterministic
// report layout.
func headOrder(head map[string]result) []result {
	out := make([]result, 0, len(head))
	for _, r := range head {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// sortedKeys returns m's keys in order, so missing-op failures are
// reported deterministically.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
