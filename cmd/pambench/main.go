// Pambench regenerates the tables and figures of the PAM paper's
// evaluation (§6) at a configurable scale.
//
// Usage:
//
//	pambench -list
//	pambench -exp table3 -n 1000000
//	pambench -exp all -n 200000 -csv
//
// Paper sizes were n = 10^8..10^10 on 72 cores; the defaults here are
// laptop-scale. Thread sweeps use -threads (comma-separated), defaulting
// to powers of two up to NumCPU.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	var (
		expName = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		n       = flag.Int("n", 1_000_000, "primary input size (the paper's n)")
		q       = flag.Int("q", 0, "query count (default n/10)")
		threads = flag.String("threads", "", "comma-separated thread counts to sweep (default 1,2,4,...,NumCPU)")
		seed    = flag.Uint64("seed", 0, "workload seed (default fixed)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list    = flag.Bool("list", false, "list experiments")
		jsonOut = flag.Bool("json", false, "run the perf suite and emit JSON (the BENCH_PRn.json trajectory; `make bench-json`)")
	)
	flag.Parse()

	if *jsonOut {
		start := time.Now()
		fmt.Fprintln(os.Stderr, "== perf suite (ns/op, allocs/op, query-tail percentiles)")
		// Bench fidelity: num_cpu alone undersold the PR-4 numbers (they
		// were captured at num_cpu 1); record the effective GOMAXPROCS
		// and the library's fork-join parallelism cap alongside, so a
		// trajectory point is interpretable without guessing.
		report := struct {
			Go          string                    `json:"go"`
			GOOS        string                    `json:"goos"`
			GOARCH      string                    `json:"goarch"`
			NumCPU      int                       `json:"num_cpu"`
			GOMAXPROCS  int                       `json:"gomaxprocs"`
			Parallelism int                       `json:"parallelism"`
			Results     []experiments.BenchResult `json:"results"`
		}{
			Go:          runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Parallelism: parallel.Parallelism(),
			Results:     experiments.RunPerfSuite(),
		}
		fmt.Fprintf(os.Stderr, "   done in %v\n", time.Since(start).Round(time.Millisecond))
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "pambench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *expName == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Desc)
		}
		if *expName == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{N: *n, Q: *q, Seed: *seed}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			t, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || t < 1 {
				fmt.Fprintf(os.Stderr, "pambench: bad -threads entry %q\n", part)
				os.Exit(2)
			}
			cfg.Threads = append(cfg.Threads, t)
		}
	}

	var todo []experiments.Experiment
	if *expName == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByName(*expName)
		if !ok {
			fmt.Fprintf(os.Stderr, "pambench: unknown experiment %q (try -list)\n", *expName)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	for _, e := range todo {
		fmt.Fprintf(os.Stderr, "== %s: %s (n=%d)\n", e.Name, e.Desc, *n)
		start := time.Now()
		tables := e.Run(cfg)
		fmt.Fprintf(os.Stderr, "   done in %v\n", time.Since(start).Round(time.Millisecond))
		if *csv {
			experiments.RenderCSV(os.Stdout, tables)
		} else {
			experiments.Render(os.Stdout, tables)
		}
	}
}
