// Pamverify is the offline scrub: it walks a durable store directory
// (checkpoint chain plus WAL generations) and verifies every file's
// framing and checksums without opening the store or needing its
// codec — the same structural pass the background scrubber runs online.
//
// Usage:
//
//	pamverify -dir /path/to/store
//
// Exit status 0 means every file verified clean; 1 means corruption was
// found (each corrupt file is listed on stderr); 2 means the directory
// could not be read. Files already quarantined by a previous repair
// (*.quarantine) are ignored.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/serve"
)

func main() {
	dir := flag.String("dir", ".", "durable store directory to verify")
	flag.Parse()

	rep, err := serve.VerifyFiles(serve.OSFS{Dir: *dir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pamverify: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("pamverify: %d files, %d bytes checked\n", rep.Files, rep.Bytes)
	if len(rep.Corrupt) > 0 {
		for _, name := range rep.Corrupt {
			fmt.Fprintf(os.Stderr, "pamverify: CORRUPT %s\n", name)
		}
		os.Exit(1)
	}
}
