// Package overlap implements interval-overlap queries, one of the
// further augmented-map applications listed in §1 of the PAM paper
// ("range overlaps"): maintain a set of closed intervals and report or
// count, for a query interval [lo, hi], the intervals overlapping it.
//
// Counting uses the complement identity
//
//	#overlapping [lo,hi] = n - #(Hi < lo) - #(Lo > hi)
//
// where both complement counts are rank queries on ordered maps: one
// keyed by (Hi, Lo), one keyed by (Lo, Hi). Both maps are persistent PAM
// maps sharing the same interval set, so the structure inherits
// snapshots, bulk construction, and parallel set operations. Reporting
// combines a DownTo extraction with the interval package's max-endpoint
// augmentation pattern.
//
// All operations: Insert/Delete O(log n); Count O(log n); Report
// O(log n + k·log(n/k+1)) for k results; Build O(n log n).
package overlap

import (
	"math"

	"repro/interval"
	"repro/pam"
)

// Interval is a closed interval [Lo, Hi]; it overlaps [a, b] iff
// Lo <= b && Hi >= a.
type Interval = interval.Interval

// byHi orders intervals by (Hi, Lo) — the complement-rank map.
type byHi struct{}

func (byHi) Less(a, b Interval) bool {
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.Lo < b.Lo
}
func (byHi) Id() struct{}                        { return struct{}{} }
func (byHi) Base(Interval, struct{}) struct{}    { return struct{}{} }
func (byHi) Combine(struct{}, struct{}) struct{} { return struct{}{} }

type hiMap = pam.AugMap[Interval, struct{}, struct{}, byHi]

// Set is a persistent set of intervals supporting overlap queries. The
// zero value is empty and usable.
type Set struct {
	byLo interval.Map // interval map: (Lo, Hi) order + max-Hi augmentation
	byHi hiMap        // (Hi, Lo) order, for the complement rank
}

// New returns an empty set with the given options.
func New(opts pam.Options) Set {
	return Set{
		byLo: interval.New(opts),
		byHi: pam.NewAugMap[Interval, struct{}, struct{}, byHi](opts),
	}
}

// Build returns a set holding the given intervals (duplicates collapse).
func (s Set) Build(ivs []Interval) Set {
	items := make([]pam.KV[Interval, struct{}], len(ivs))
	for i, iv := range ivs {
		items[i] = pam.KV[Interval, struct{}]{Key: iv}
	}
	return Set{
		byLo: s.byLo.Build(ivs),
		byHi: s.byHi.Build(items, nil),
	}
}

// Size returns the number of intervals.
func (s Set) Size() int64 { return s.byLo.Size() }

// Insert returns s with iv added.
func (s Set) Insert(iv Interval) Set {
	return Set{byLo: s.byLo.Insert(iv), byHi: s.byHi.Insert(iv, struct{}{})}
}

// Delete returns s without iv.
func (s Set) Delete(iv Interval) Set {
	return Set{byLo: s.byLo.Delete(iv), byHi: s.byHi.Delete(iv)}
}

// CountOverlapping returns the number of intervals overlapping [lo, hi]
// in O(log n): total minus those ending before lo minus those starting
// after hi.
func (s Set) CountOverlapping(lo, hi float64) int64 {
	n := s.byHi.Size()
	// #(Hi < lo): rank of the (lo, -Inf) sentinel in (Hi, Lo) order.
	endBefore := s.byHi.Rank(Interval{Hi: lo, Lo: math.Inf(-1)})
	// #(Lo > hi): n - rank of the (hi, +Inf) sentinel in (Lo, Hi) order.
	startAfterRank := s.byLo.RankByLo(Interval{Lo: hi, Hi: math.Inf(1)})
	startAfter := n - startAfterRank
	return n - endBefore - startAfter
}

// Overlapping reports whether any interval overlaps [lo, hi].
func (s Set) Overlapping(lo, hi float64) bool { return s.CountOverlapping(lo, hi) > 0 }

// ReportOverlapping returns the intervals overlapping [lo, hi] in
// (Lo, Hi) order: candidates starting at or before hi, filtered by the
// max-right-endpoint augmentation to those reaching lo —
// O(log n + k·log(n/k+1)).
func (s Set) ReportOverlapping(lo, hi float64) []Interval {
	return s.byLo.ReportOverlapping(lo, hi)
}
