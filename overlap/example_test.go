package overlap_test

import (
	"fmt"

	"repro/overlap"
	"repro/pam"
)

// CountOverlapping counts in O(log n) via the complement identity
// (total minus intervals ending before lo minus intervals starting
// after hi); intervals touching the query at an endpoint count, since
// all intervals are closed.
func ExampleSet_CountOverlapping() {
	s := overlap.New(pam.Options{}).Build([]overlap.Interval{
		{Lo: 0, Hi: 2}, {Lo: 1, Hi: 5}, {Lo: 8, Hi: 9},
	})

	fmt.Println(s.CountOverlapping(2, 8)) // [0,2] and [8,9] touch, [1,5] overlaps
	fmt.Println(s.CountOverlapping(6, 7))
	fmt.Println(s.ReportOverlapping(2, 8))
	// Output:
	// 3
	// 0
	// [{0 2} {1 5} {8 9}]
}
