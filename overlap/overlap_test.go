package overlap

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/pam"
)

func overlaps(iv Interval, lo, hi float64) bool { return iv.Lo <= hi && iv.Hi >= lo }

func naiveCount(ivs []Interval, lo, hi float64) int64 {
	var c int64
	for _, iv := range ivs {
		if overlaps(iv, lo, hi) {
			c++
		}
	}
	return c
}

func randIvs(rng *rand.Rand, n int, span float64) []Interval {
	out := make([]Interval, n)
	for i := range out {
		lo := rng.Float64() * span
		out[i] = Interval{Lo: lo, Hi: lo + rng.Float64()*span/8}
	}
	return out
}

func TestCountOverlappingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ivs := randIvs(rng, 2000, 1000)
	s := New(pam.Options{}).Build(ivs)
	if s.Size() != int64(len(ivs)) {
		t.Fatalf("size %d", s.Size())
	}
	for trial := 0; trial < 500; trial++ {
		a, b := rng.Float64()*1100, rng.Float64()*1100
		lo, hi := min(a, b), max(a, b)
		if got, want := s.CountOverlapping(lo, hi), naiveCount(ivs, lo, hi); got != want {
			t.Fatalf("CountOverlapping(%v,%v) = %d want %d", lo, hi, got, want)
		}
		if s.Overlapping(lo, hi) != (naiveCount(ivs, lo, hi) > 0) {
			t.Fatal("Overlapping mismatch")
		}
	}
}

func TestReportOverlappingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ivs := randIvs(rng, 800, 400)
	s := New(pam.Options{}).Build(ivs)
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Float64()*440, rng.Float64()*440
		lo, hi := min(a, b), max(a, b)
		got := s.ReportOverlapping(lo, hi)
		var want []Interval
		for _, iv := range ivs {
			if overlaps(iv, lo, hi) {
				want = append(want, iv)
			}
		}
		slices.SortFunc(want, func(x, y Interval) int {
			switch {
			case x.Lo < y.Lo:
				return -1
			case x.Lo > y.Lo:
				return 1
			case x.Hi < y.Hi:
				return -1
			case x.Hi > y.Hi:
				return 1
			default:
				return 0
			}
		})
		if !slices.Equal(got, want) {
			t.Fatalf("ReportOverlapping(%v,%v): %d results want %d", lo, hi, len(got), len(want))
		}
		if int64(len(got)) != s.CountOverlapping(lo, hi) {
			t.Fatal("count and report disagree")
		}
	}
}

func TestInsertDeletePersistence(t *testing.T) {
	s := New(pam.Options{})
	a := Interval{Lo: 1, Hi: 4}
	b := Interval{Lo: 6, Hi: 9}
	s1 := s.Insert(a)
	s2 := s1.Insert(b)
	if s1.CountOverlapping(5, 10) != 0 {
		t.Fatal("old version sees new interval")
	}
	if s2.CountOverlapping(5, 10) != 1 {
		t.Fatal("new version misses interval")
	}
	s3 := s2.Delete(a)
	if s3.Size() != 1 || s3.Overlapping(0, 5) {
		t.Fatal("delete wrong")
	}
	if s2.Size() != 2 {
		t.Fatal("delete mutated old version")
	}
}

func TestBoundaryTouching(t *testing.T) {
	s := New(pam.Options{}).Build([]Interval{{Lo: 2, Hi: 4}})
	// Closed intervals: touching endpoints overlap.
	if !s.Overlapping(4, 10) || !s.Overlapping(0, 2) {
		t.Fatal("endpoint touch not counted")
	}
	if s.Overlapping(4.0001, 10) || s.Overlapping(0, 1.9999) {
		t.Fatal("non-overlap counted")
	}
	// Query interval inside a stored interval and vice versa.
	if !s.Overlapping(2.5, 3.5) || !s.Overlapping(0, 100) {
		t.Fatal("containment cases missed")
	}
	// Empty set.
	if New(pam.Options{}).Overlapping(0, 1) {
		t.Fatal("empty set overlapped")
	}
}

// Property: count always matches the naive scan for small integer
// interval sets.
func TestCountQuick(t *testing.T) {
	f := func(raw []struct{ A, B uint8 }, q struct{ A, B uint8 }) bool {
		ivs := make([]Interval, len(raw))
		for i, r := range raw {
			lo, hi := float64(r.A), float64(r.B)
			if lo > hi {
				lo, hi = hi, lo
			}
			ivs[i] = Interval{Lo: lo, Hi: hi}
		}
		s := New(pam.Options{}).Build(ivs)
		qlo, qhi := float64(q.A), float64(q.B)
		if qlo > qhi {
			qlo, qhi = qhi, qlo
		}
		// Deduplicate for the naive count (Build collapses duplicates).
		seen := map[Interval]bool{}
		var uniq []Interval
		for _, iv := range ivs {
			if !seen[iv] {
				seen[iv] = true
				uniq = append(uniq, iv)
			}
		}
		return s.CountOverlapping(qlo, qhi) == naiveCount(uniq, qlo, qhi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
