package segcount_test

import (
	"fmt"

	"repro/pam"
	"repro/segcount"
)

// CountCrossing answers "how many segments cross the vertical segment
// x = q, yLo <= y <= yHi" in O(log^2 n) via endpoint maps augmented with
// nested count maps; ReportWindow reports output-sensitively.
func ExampleMap_CountCrossing() {
	m := segcount.New(pam.Options{}).Build([]segcount.Segment{
		{XLo: 0, XHi: 10, Y: 1},
		{XLo: 2, XHi: 4, Y: 2},
		{XLo: 3, XHi: 12, Y: 8},
	})

	fmt.Println(m.CountCrossing(3, 0, 5)) // vertical segment at x=3 spanning y in [0,5]
	fmt.Println(m.CountLine(3))           // the whole vertical line x=3
	fmt.Println(m.ReportWindow(0, 3, 0, 2))
	// Output:
	// 2
	// 3
	// [{0 10 1} {2 4 2}]
}

// Insert and Delete are persistent amortized-polylog updates: each
// returns a new map, and old handles — like the snapshot taken before
// the updates — keep answering from exactly the contents they had.
func ExampleMap_Insert() {
	m := segcount.New(pam.Options{}).Build([]segcount.Segment{
		{XLo: 0, XHi: 4, Y: 1},
		{XLo: 2, XHi: 6, Y: 3},
	})

	snapshot := m
	m = m.Insert(segcount.Segment{XLo: 1, XHi: 5, Y: 2})
	m = m.Delete(segcount.Segment{XLo: 2, XHi: 6, Y: 3})

	fmt.Println(m.CountLine(3), m.Size())
	fmt.Println(snapshot.CountLine(3), snapshot.Size())
	// Output:
	// 2 2
	// 2 2
}
