package segcount_test

import (
	"fmt"

	"repro/pam"
	"repro/segcount"
)

// CountCrossing answers "how many segments cross the vertical segment
// x = q, yLo <= y <= yHi" in O(log^2 n) via endpoint maps augmented with
// nested count maps; ReportWindow reports output-sensitively.
func ExampleMap_CountCrossing() {
	m := segcount.New(pam.Options{}).Build([]segcount.Segment{
		{XLo: 0, XHi: 10, Y: 1},
		{XLo: 2, XHi: 4, Y: 2},
		{XLo: 3, XHi: 12, Y: 8},
	})

	fmt.Println(m.CountCrossing(3, 0, 5)) // vertical segment at x=3 spanning y in [0,5]
	fmt.Println(m.CountLine(3))           // the whole vertical line x=3
	fmt.Println(m.ReportWindow(0, 3, 0, 2))
	// Output:
	// 2
	// 3
	// [{0 10 1} {2 4 2}]
}
