package segcount

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/baseline/naiveseg"
	"repro/internal/parallel"
	"repro/pam"
)

func cmpSeg(a, b Segment) int {
	if a.Y != b.Y {
		if a.Y < b.Y {
			return -1
		}
		return 1
	}
	if a.XLo != b.XLo {
		if a.XLo < b.XLo {
			return -1
		}
		return 1
	}
	switch {
	case a.XHi < b.XHi:
		return -1
	case a.XHi > b.XHi:
		return 1
	default:
		return 0
	}
}

// randSegments draws coordinates from a small integer universe so
// touching endpoints, shared heights, and exact duplicates all occur.
func randSegments(rng *rand.Rand, n int, universe int) []Segment {
	out := make([]Segment, n)
	for i := range out {
		lo := float64(rng.Intn(universe))
		out[i] = Segment{
			XLo: lo,
			XHi: lo + float64(rng.Intn(universe/3)),
			Y:   float64(rng.Intn(universe)),
		}
	}
	return out
}

func toNaive(segs []Segment) []naiveseg.Segment {
	out := make([]naiveseg.Segment, len(segs))
	for i, s := range segs {
		out[i] = naiveseg.Segment{XLo: s.XLo, XHi: s.XHi, Y: s.Y}
	}
	return out
}

func fromNaive(segs []naiveseg.Segment) []Segment {
	out := make([]Segment, len(segs))
	for i, s := range segs {
		out[i] = Segment{XLo: s.XLo, XHi: s.XHi, Y: s.Y}
	}
	return out
}

// queryCoord sometimes lands exactly on endpoints (integer) and
// sometimes strictly between them.
func queryCoord(rng *rand.Rand, universe int) float64 {
	c := float64(rng.Intn(universe + 2))
	if rng.Intn(2) == 0 {
		c += 0.5
	}
	return c
}

func TestCountsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const universe = 24
	for _, n := range []int{0, 1, 7, 300} {
		segs := randSegments(rng, n, universe)
		m := New(pam.Options{}).Build(segs)
		naive := naiveseg.Build(toNaive(segs))
		if m.Size() != int64(naive.Size()) {
			t.Fatalf("n=%d: Size = %d, naive %d", n, m.Size(), naive.Size())
		}
		for q := 0; q < 500; q++ {
			x := queryCoord(rng, universe)
			yLo := queryCoord(rng, universe)
			yHi := queryCoord(rng, universe)
			if yHi < yLo {
				yLo, yHi = yHi, yLo
			}
			want := int64(naive.CountCrossing(x, yLo, yHi))
			if got := m.CountCrossing(x, yLo, yHi); got != want {
				t.Fatalf("n=%d CountCrossing(%v,[%v,%v]) = %d, naive %d", n, x, yLo, yHi, got, want)
			}
			// The by-y window path must agree with the endpoint-map path.
			if got := m.CountWindow(x, x, yLo, yHi); got != want {
				t.Fatalf("n=%d CountWindow(x=x) = %d, endpoint-map count %d", n, got, want)
			}
			xHi := x + float64(rng.Intn(6))
			wantW := int64(naive.CountWindow(x, xHi, yLo, yHi))
			if got := m.CountWindow(x, xHi, yLo, yHi); got != wantW {
				t.Fatalf("n=%d CountWindow([%v,%v]x[%v,%v]) = %d, naive %d", n, x, xHi, yLo, yHi, got, wantW)
			}
		}
	}
}

func TestReportsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const universe = 24
	segs := randSegments(rng, 250, universe)
	m := New(pam.Options{}).Build(segs)
	naive := naiveseg.Build(toNaive(segs))
	for q := 0; q < 300; q++ {
		xLo := queryCoord(rng, universe)
		xHi := xLo + float64(rng.Intn(8))
		yLo := queryCoord(rng, universe)
		yHi := yLo + float64(rng.Intn(8))
		got := m.ReportWindow(xLo, xHi, yLo, yHi)
		if !slices.IsSortedFunc(got, cmpSeg) {
			t.Fatalf("ReportWindow output not in (y, xLo, xHi) order: %v", got)
		}
		want := fromNaive(naive.ReportWindow(xLo, xHi, yLo, yHi))
		slices.SortFunc(got, cmpSeg)
		slices.SortFunc(want, cmpSeg)
		if !slices.Equal(got, want) {
			t.Fatalf("ReportWindow([%v,%v]x[%v,%v]) = %v, naive %v", xLo, xHi, yLo, yHi, got, want)
		}
		if int64(len(got)) != m.CountWindow(xLo, xHi, yLo, yHi) {
			t.Fatalf("report length %d disagrees with CountWindow", len(got))
		}
		line := m.ReportCrossing(xLo, yLo, yHi)
		wantLine := fromNaive(naive.ReportCrossing(xLo, yLo, yHi))
		slices.SortFunc(line, cmpSeg)
		slices.SortFunc(wantLine, cmpSeg)
		if !slices.Equal(line, wantLine) {
			t.Fatalf("ReportCrossing(%v,[%v,%v]) = %v, naive %v", xLo, yLo, yHi, line, wantLine)
		}
	}
}

func TestMergeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSegments(rng, 150, 24)
	b := randSegments(rng, 150, 24)
	merged := New(pam.Options{}).Build(a).Merge(New(pam.Options{}).Build(b))
	rebuilt := New(pam.Options{}).Build(append(append([]Segment{}, a...), b...))
	if merged.Size() != rebuilt.Size() {
		t.Fatalf("merged size %d != rebuilt size %d", merged.Size(), rebuilt.Size())
	}
	if !slices.Equal(merged.Segments(), rebuilt.Segments()) {
		t.Fatal("merged segments differ from rebuilt")
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged map invalid: %v", err)
	}
	for q := 0; q < 100; q++ {
		x, y := queryCoord(rng, 24), queryCoord(rng, 24)
		if merged.CountCrossing(x, y-3, y+3) != rebuilt.CountCrossing(x, y-3, y+3) {
			t.Fatalf("merged and rebuilt disagree at x=%v y=%v", x, y)
		}
	}
}

func TestPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := randSegments(rng, 200, 24)
	m1 := New(pam.Options{}).Build(base)
	naive1 := naiveseg.Build(toNaive(base))

	// Record pre-merge answers, merge in more segments, and verify the
	// old snapshot still answers from the old segment set.
	type query struct{ x, yLo, yHi float64 }
	queries := make([]query, 50)
	before := make([]int64, len(queries))
	for i := range queries {
		q := query{queryCoord(rng, 24), queryCoord(rng, 24), queryCoord(rng, 24)}
		if q.yHi < q.yLo {
			q.yLo, q.yHi = q.yHi, q.yLo
		}
		queries[i] = q
		before[i] = m1.CountCrossing(q.x, q.yLo, q.yHi)
	}
	m2 := m1.Merge(New(pam.Options{}).Build(randSegments(rng, 200, 24)))
	for i, q := range queries {
		if got := m1.CountCrossing(q.x, q.yLo, q.yHi); got != before[i] {
			t.Fatalf("snapshot changed after Merge: query %d was %d, now %d", i, before[i], got)
		}
		if got := m1.CountCrossing(q.x, q.yLo, q.yHi); got != int64(naive1.CountCrossing(q.x, q.yLo, q.yHi)) {
			t.Fatalf("snapshot no longer matches its own naive set")
		}
	}
	if m2.Size() < m1.Size() {
		t.Fatal("merge lost segments")
	}
	if err := m1.Validate(); err != nil {
		t.Fatalf("snapshot invalid after merge: %v", err)
	}
}

func TestValidateAndZeroValue(t *testing.T) {
	var m Map // zero value must be usable
	if !m.IsEmpty() || m.Size() != 0 {
		t.Fatal("zero-value map should be empty")
	}
	if got := m.CountCrossing(1, 0, 10); got != 0 {
		t.Fatalf("empty CountCrossing = %d", got)
	}
	if got := m.ReportLine(1); len(got) != 0 {
		t.Fatalf("empty ReportLine = %v", got)
	}
	rng := rand.New(rand.NewSource(5))
	m = m.Build(randSegments(rng, 500, 24))
	if err := m.Validate(); err != nil {
		t.Fatalf("built map invalid: %v", err)
	}
}

func TestSchemesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	segs := randSegments(rng, 200, 24)
	ref := New(pam.Options{}).Build(segs)
	for _, sch := range []pam.Scheme{pam.AVL, pam.RedBlack, pam.Treap} {
		m := New(pam.Options{Scheme: sch}).Build(segs)
		if err := m.Validate(); err != nil {
			t.Fatalf("scheme %v: invalid: %v", sch, err)
		}
		for q := 0; q < 100; q++ {
			x, y := queryCoord(rng, 24), queryCoord(rng, 24)
			if m.CountCrossing(x, y-2, y+2) != ref.CountCrossing(x, y-2, y+2) {
				t.Fatalf("scheme %v disagrees with weight-balanced at x=%v y=%v", sch, x, y)
			}
		}
	}
}

// withSequential forces parallelism 1 so allocation counts are exact and
// deterministic (the complexity tests below count allocations the way
// internal/core/complexity_test.go counts comparisons).
func withSequential(t *testing.T, f func()) {
	t.Helper()
	old := parallel.Parallelism()
	parallel.SetParallelism(1)
	defer parallel.SetParallelism(old)
	f()
}

// disjointSegments builds n pairwise x-disjoint unit segments at
// distinct heights, so any vertical line crosses at most one.
func disjointSegments(n int) []Segment {
	out := make([]Segment, n)
	for i := range out {
		out[i] = Segment{XLo: float64(2 * i), XHi: float64(2*i + 1), Y: float64(i)}
	}
	return out
}

// TestReportComplexity verifies the output-sensitivity bound the way
// internal/core/complexity_test.go verifies work bounds, with heap
// allocations standing in for comparisons: reporting k of n segments
// must cost polylog(n) + O(k·log), far below the Θ(n) a scan pays, and
// growing n at fixed k must not grow the cost linearly.
func TestReportComplexity(t *testing.T) {
	withSequential(t, func() {
		const small, large = 1 << 13, 1 << 17
		allocsAt := func(n int) float64 {
			m := New(pam.Options{}).Build(disjointSegments(n))
			x := float64(n) // crosses exactly segment n/2's span? no: line x=n lies in segment n/2 iff n even
			return testing.AllocsPerRun(10, func() {
				if len(m.ReportLine(x)) > 1 {
					t.Fatal("disjoint segments: at most one crossing expected")
				}
			})
		}
		aSmall, aLarge := allocsAt(small), allocsAt(large)
		// Far below linear: a scan (or an unpruned filter) allocates or
		// touches Θ(n); the augmented report must stay polylogarithmic.
		if aLarge > float64(large)/64 {
			t.Fatalf("report on n=%d did %v allocations — near-linear work", large, aLarge)
		}
		// Growth check: n grew 16x; polylog cost must grow far slower.
		if aLarge > 4*aSmall+64 {
			t.Fatalf("report cost not output-sensitive: n 16x => allocs %v -> %v", aSmall, aLarge)
		}
	})
}

// TestCountComplexity: the O(log^2 n) count query, same methodology.
func TestCountComplexity(t *testing.T) {
	withSequential(t, func() {
		const small, large = 1 << 13, 1 << 17
		allocsAt := func(n int) float64 {
			m := New(pam.Options{}).Build(disjointSegments(n))
			x := float64(n)
			return testing.AllocsPerRun(10, func() {
				m.CountCrossing(x, 0, float64(n))
			})
		}
		aSmall, aLarge := allocsAt(small), allocsAt(large)
		if aLarge > float64(large)/64 {
			t.Fatalf("count on n=%d did %v allocations — near-linear work", large, aLarge)
		}
		if aLarge > 4*aSmall+64 {
			t.Fatalf("count cost not polylogarithmic: n 16x => allocs %v -> %v", aSmall, aLarge)
		}
	})
}

// TestReportScalesWithOutput: at fixed n, reporting k results costs
// roughly proportional to k, not n.
func TestReportScalesWithOutput(t *testing.T) {
	withSequential(t, func() {
		const n = 1 << 15
		segs := disjointSegments(n)
		// Add wide segments all crossing x = -10 (nothing else does).
		const kBig = 1 << 10
		for i := 0; i < kBig; i++ {
			segs = append(segs, Segment{XLo: -20, XHi: -5, Y: float64(i)})
		}
		m := New(pam.Options{}).Build(segs)
		allocsFor := func(k int) float64 {
			return testing.AllocsPerRun(10, func() {
				got := m.ReportCrossing(-10, 0, float64(k-1))
				if len(got) != k {
					t.Fatalf("expected %d results, got %d", k, len(got))
				}
			})
		}
		aSmall := allocsFor(16)
		aBig := allocsFor(kBig)
		if aSmall*8 > aBig {
			t.Fatalf("k=16 report (%v allocs) not far cheaper than k=%d report (%v allocs)", aSmall, kBig, aBig)
		}
		if aBig > float64(n)/4 {
			t.Fatalf("k=%d report did %v allocations on n=%d — near-linear", kBig, aBig, n+kBig)
		}
	})
}

func FuzzSegQueries(f *testing.F) {
	f.Add([]byte{0, 4, 1, 2, 3, 2, 8, 1, 5}, byte(3), byte(0), byte(9))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, byte(1), byte(1), byte(1))
	f.Add([]byte{}, byte(0), byte(0), byte(0))
	f.Fuzz(func(t *testing.T, data []byte, qx, qy1, qy2 byte) {
		var segs []Segment
		for i := 0; i+2 < len(data) && len(segs) < 64; i += 3 {
			lo := float64(data[i] % 16)
			segs = append(segs, Segment{
				XLo: lo,
				XHi: lo + float64(data[i+1]%8),
				Y:   float64(data[i+2] % 16),
			})
		}
		m := New(pam.Options{}).Build(segs)
		naive := naiveseg.Build(toNaive(segs))
		x := float64(qx % 24)
		yLo, yHi := float64(qy1%24), float64(qy2%24)
		if yHi < yLo {
			yLo, yHi = yHi, yLo
		}
		if got, want := m.CountCrossing(x, yLo, yHi), int64(naive.CountCrossing(x, yLo, yHi)); got != want {
			t.Fatalf("CountCrossing(%v,[%v,%v]) = %d, naive %d (segs %v)", x, yLo, yHi, got, want, segs)
		}
		got := m.ReportWindow(x, x+2, yLo, yHi)
		want := fromNaive(naive.ReportWindow(x, x+2, yLo, yHi))
		slices.SortFunc(got, cmpSeg)
		slices.SortFunc(want, cmpSeg)
		if !slices.Equal(got, want) {
			t.Fatalf("ReportWindow mismatch: %v vs naive %v (segs %v)", got, want, segs)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid map: %v (segs %v)", err, segs)
		}
	})
}

func TestInfiniteRangesAndCountLine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	segs := randSegments(rng, 100, 24)
	m := New(pam.Options{}).Build(segs)
	naive := naiveseg.Build(toNaive(segs))
	for q := 0; q < 50; q++ {
		x := queryCoord(rng, 24)
		want := int64(naive.CountCrossing(x, math.Inf(-1), math.Inf(1)))
		if got := m.CountLine(x); got != want {
			t.Fatalf("CountLine(%v) = %d, naive %d", x, got, want)
		}
		if got := int64(len(m.ReportLine(x))); got != want {
			t.Fatalf("len(ReportLine(%v)) = %d, want %d", x, got, want)
		}
	}
	if got := m.CountWindow(math.Inf(-1), math.Inf(1), math.Inf(-1), math.Inf(1)); got != m.Size() {
		t.Fatalf("full-window count %d != size %d", got, m.Size())
	}
}
