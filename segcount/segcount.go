// Package segcount implements segment queries from the follow-up paper
// "Parallel Range, Segment and Rectangle Queries with Augmented Maps"
// (Sun & Blelloch, arXiv:1803.08621, §4): maintain a set of axis-parallel
// (horizontal) segments in the plane and, for a vertical query segment
// x = q, yLo <= y <= yHi, count or report the segments crossing it. A
// window variant counts/reports the segments intersecting an axis-parallel
// query rectangle.
//
// Two nested-augmented-map structures back the queries, both direct
// instantiations of pam.AugMap:
//
//   - SegCount (the paper's §4 structure): two maps keyed by segment
//     endpoints in x — one by left endpoints ("opens"), one by right
//     endpoints ("closes") — whose augmented values are *nested count
//     maps*: the subtree's segments keyed by y, combined by parallel
//     persistent map union. (The paper stores one endpoint map augmented
//     with a pair of count maps; splitting the pair into two maps is the
//     same factoring the overlap package uses for its complement ranks.)
//     A segment [xl, xh] at height y crosses the vertical line x iff
//     xl <= x <= xh, so with C(m, p) counting segments of a nested map m
//     whose y lies in the query range,
//
//     count = C(opens with xl <= x) - C(closes with xh < x)
//
//     and both terms are AugProject prefix sums projecting each nested
//     map through an O(log n) rank difference: O(log^2 n) per query.
//
//   - A by-y map for reporting: segments keyed by y, augmented with an
//     interval-map pair over their x-extents ((xl, xh, y) order with
//     max-xh augmentation, plus the (xh, xl, y) order for complement
//     ranks — the §5.1 interval-map idea nested as an augmented value).
//     A window query AugProjects over the y-range, stabbing each of the
//     O(log n) covered interval maps: O(log^2 n) counts and
//     O(log^2 n + k log(n/k + 1)) output-sensitive reports.
//
// Segments are closed on both endpoints and behave as a set: exact
// duplicates collapse. All maps are persistent — snapshots taken before
// a Merge remain valid — and Build and Merge run in parallel.
package segcount

import (
	"math"
	"slices"

	"repro/internal/dynamic"
	"repro/internal/parallel"
	"repro/pam"
)

// Segment is a closed horizontal segment [XLo, XHi] at height Y.
type Segment struct {
	XLo, XHi, Y float64
}

// CrossesLine reports whether the segment crosses the vertical line at x.
func (s Segment) CrossesLine(x float64) bool { return s.XLo <= x && x <= s.XHi }

// IntersectsWindow reports whether the segment intersects the closed
// window [xLo, xHi] x [yLo, yHi].
func (s Segment) IntersectsWindow(xLo, xHi, yLo, yHi float64) bool {
	return s.Y >= yLo && s.Y <= yHi && s.XLo <= xHi && s.XHi >= xLo
}

// The three key orders. Ties break lexicographically on the remaining
// coordinates so distinct segments always compare distinct and ±Inf
// sentinels bound exactly the prefixes the queries need.

func lessYX(a, b Segment) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	return a.XHi < b.XHi
}

func lessXLo(a, b Segment) bool {
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	if a.XHi != b.XHi {
		return a.XHi < b.XHi
	}
	return a.Y < b.Y
}

func lessXHi(a, b Segment) bool {
	if a.XHi != b.XHi {
		return a.XHi < b.XHi
	}
	if a.XLo != b.XLo {
		return a.XLo < b.XLo
	}
	return a.Y < b.Y
}

// yKey orders the nested count maps by (Y, XLo, XHi) with no augmentation;
// counting in a y-range is a Rank difference.
type yKey struct{}

func (yKey) Less(a, b Segment) bool              { return lessYX(a, b) }
func (yKey) Id() struct{}                        { return struct{}{} }
func (yKey) Base(Segment, struct{}) struct{}     { return struct{}{} }
func (yKey) Combine(struct{}, struct{}) struct{} { return struct{}{} }

// yMap is the nested count map: the subtree's segments keyed by y.
type yMap = pam.AugMap[Segment, struct{}, struct{}, yKey]

// yRangeCount counts entries of a nested map with yLo <= Y <= yHi.
func yRangeCount(in yMap, yLo, yHi float64) int64 {
	hi := in.Rank(Segment{Y: yHi, XLo: math.Inf(1), XHi: math.Inf(1)})   // #(Y <= yHi)
	lo := in.Rank(Segment{Y: yLo, XLo: math.Inf(-1), XHi: math.Inf(-1)}) // #(Y < yLo)
	return hi - lo
}

// loKey orders segments by (XLo, XHi, Y) augmented with the maximum
// right endpoint — the interval-map augmentation of §5.1.
type loKey struct{}

func (loKey) Less(a, b Segment) bool             { return lessXLo(a, b) }
func (loKey) Id() float64                        { return math.Inf(-1) }
func (loKey) Base(s Segment, _ struct{}) float64 { return s.XHi }
func (loKey) Combine(x, y float64) float64       { return max(x, y) }

type loMap = pam.AugMap[Segment, struct{}, float64, loKey]

// hiKey orders segments by (XHi, XLo, Y), unaugmented (complement rank).
type hiKey struct{}

func (hiKey) Less(a, b Segment) bool              { return lessXHi(a, b) }
func (hiKey) Id() struct{}                        { return struct{}{} }
func (hiKey) Base(Segment, struct{}) struct{}     { return struct{}{} }
func (hiKey) Combine(struct{}, struct{}) struct{} { return struct{}{} }

type hiMap = pam.AugMap[Segment, struct{}, struct{}, hiKey]

// xSet is the nested x-extent interval structure augmenting the by-y
// map: the subtree's segments in left-endpoint order with max-right
// augmentation, plus in right-endpoint order for the complement rank.
type xSet struct {
	byLo loMap
	byHi hiMap
}

func (s xSet) union(o xSet) xSet {
	return xSet{byLo: s.byLo.Union(o.byLo), byHi: s.byHi.Union(o.byHi)}
}

// countOverlapping counts segments whose x-extent meets [xLo, xHi] in
// O(log n): those starting at or before xHi minus those ending before
// xLo (the two miss-sets are disjoint, so inclusion-exclusion is exact).
func (s xSet) countOverlapping(xLo, xHi float64) int64 {
	startAtOrBefore := s.byLo.Rank(Segment{XLo: xHi, XHi: math.Inf(1), Y: math.Inf(1)})
	endBefore := s.byHi.Rank(Segment{XHi: xLo, XLo: math.Inf(-1), Y: math.Inf(-1)})
	return startAtOrBefore - endBefore
}

// reportOverlapping appends the segments whose x-extent meets [xLo, xHi]:
// candidates starting at or before xHi, pruned by the max-right-endpoint
// augmentation to those reaching xLo — O(log n + k log(n/k + 1)).
func (s xSet) reportOverlapping(xLo, xHi float64, out []Segment) []Segment {
	candidates := s.byLo.UpTo(Segment{XLo: xHi, XHi: math.Inf(1), Y: math.Inf(1)})
	hits := candidates.AugFilter(func(maxHi float64) bool { return maxHi >= xLo })
	hits.ForEach(func(seg Segment, _ struct{}) bool {
		out = append(out, seg)
		return true
	})
	return out
}

// byYEntry: the reporting map — segments keyed by y, augmented with the
// nested xSet of the subtree, combined by persistent parallel union.
type byYEntry struct{}

func (byYEntry) Less(a, b Segment) bool { return lessYX(a, b) }
func (byYEntry) Id() xSet               { return xSet{} }
func (byYEntry) Base(s Segment, _ struct{}) xSet {
	return xSet{byLo: loMap{}.Insert(s, struct{}{}), byHi: hiMap{}.Insert(s, struct{}{})}
}
func (byYEntry) Combine(x, y xSet) xSet { return x.union(y) }

// opensEntry: segments keyed by left endpoint, augmented with the nested
// count map of the subtree keyed by y.
type opensEntry struct{}

func (opensEntry) Less(a, b Segment) bool { return lessXLo(a, b) }
func (opensEntry) Id() yMap               { return yMap{} }
func (opensEntry) Base(s Segment, _ struct{}) yMap {
	return yMap{}.Insert(s, struct{}{})
}
func (opensEntry) Combine(x, y yMap) yMap { return x.Union(y) }

// closesEntry: the same nested count maps keyed by right endpoint.
type closesEntry struct{}

func (closesEntry) Less(a, b Segment) bool { return lessXHi(a, b) }
func (closesEntry) Id() yMap               { return yMap{} }
func (closesEntry) Base(s Segment, _ struct{}) yMap {
	return yMap{}.Insert(s, struct{}{})
}
func (closesEntry) Combine(x, y yMap) yMap { return x.Union(y) }

type byYMap = pam.AugMap[Segment, struct{}, xSet, byYEntry]
type opensMap = pam.AugMap[Segment, struct{}, yMap, opensEntry]
type closesMap = pam.AugMap[Segment, struct{}, yMap, closesEntry]

// static is the immutable bulk structure one ladder level holds: the
// three constituent maps, built and merged in parallel.
type static struct {
	byY    byYMap
	opens  opensMap
	closes closesMap
}

// build constructs the three maps over the items in parallel; proto
// supplies the options.
func (s static) build(items []pam.KV[Segment, struct{}]) static {
	var out static
	parallel.Do3(
		func() { out.byY = s.byY.Build(items, nil) },
		func() { out.opens = s.opens.Build(items, nil) },
		func() { out.closes = s.closes.Build(items, nil) },
	)
	return out
}

// union merges two static structures with parallel persistent union.
func (s static) union(o static) static {
	var out static
	parallel.Do3(
		func() { out.byY = s.byY.Union(o.byY) },
		func() { out.opens = s.opens.Union(o.opens) },
		func() { out.closes = s.closes.Union(o.closes) },
	)
	return out
}

// bufKey orders buffered segments in the canonical (y, xLo, xHi) order,
// unaugmented.
type bufKey struct{}

func (bufKey) Less(a, b Segment) bool              { return lessYX(a, b) }
func (bufKey) Id() struct{}                        { return struct{}{} }
func (bufKey) Base(Segment, struct{}) struct{}     { return struct{}{} }
func (bufKey) Combine(struct{}, struct{}) struct{} { return struct{}{} }

// ladder is the dynamization engine instance (see internal/dynamic).
type ladder = dynamic.Ladder[Segment, struct{}, static, bufKey]

// backend drives the generic ladder with this package's static
// structure; the by-y map is the canonical key order.
var backend = &dynamic.Backend[Segment, struct{}, static]{
	Build:   func(proto static, items []pam.KV[Segment, struct{}]) static { return proto.build(items) },
	Entries: func(s static) []pam.KV[Segment, struct{}] { return s.byY.Entries() },
	Size:    func(s static) int64 { return s.byY.Size() },
	Find:    func(s static, k Segment) (struct{}, bool) { return s.byY.Find(k) },
	Less:    lessYX,
	ValEq:   nil,
}

// Map is a persistent segment-query structure. The zero value is empty
// and usable. As with rangetree, the union-valued augmentations make
// single-segment tree updates linear in the worst case, so the
// structure is dynamized by a logarithmic-method ladder
// (internal/dynamic): O(log n) immutable bulk structures — each the
// three maps above, built and merged in parallel — of geometrically
// increasing size, plus a constant-capacity write buffer. Insert and
// Delete write the buffer in O(log n) and carry it down the ladder
// with parallel rebuilds, for amortized O(polylog n) updates and
// worst-case polylog queries; Build and Merge return fully condensed
// single-level maps. All versions persist: updates return new handles
// and old handles keep answering from exactly the contents they had.
type Map struct {
	lad ladder
}

// New returns an empty segment map with the given options.
func New(opts pam.Options) Map {
	return Map{lad: dynamic.New[Segment, struct{}, static, bufKey](static{
		byY:    pam.NewAugMap[Segment, struct{}, xSet, byYEntry](opts),
		opens:  pam.NewAugMap[Segment, struct{}, yMap, opensEntry](opts),
		closes: pam.NewAugMap[Segment, struct{}, yMap, closesEntry](opts),
	})}
}

// Build returns a map (with m's options) over the given segments
// (duplicates collapse). O(n log^2 n) work, polylogarithmic span; the
// three constituent maps build in parallel.
func (m Map) Build(segs []Segment) Map {
	items := make([]pam.KV[Segment, struct{}], len(segs))
	for i, s := range segs {
		items[i] = pam.KV[Segment, struct{}]{Key: s}
	}
	return Map{lad: m.lad.WithStatic(backend, m.lad.Proto().build(items))}
}

// Insert returns a map with the segment added (a duplicate is a no-op).
// Amortized O(polylog n): the segment lands in the ladder's write
// buffer, which carries down the geometric levels with parallel
// rebuilds.
func (m Map) Insert(s Segment) Map {
	return Map{lad: m.lad.Insert(backend, s, struct{}{}, nil)}
}

// Delete returns a map without the segment; deleting an absent segment
// is a no-op. Amortized O(polylog n).
func (m Map) Delete(s Segment) Map {
	return Map{lad: m.lad.Delete(backend, s)}
}

// Pending returns the number of updates in the ladder's write buffer,
// bounded by the write-buffer capacity (dynamic.BufCap by default;
// 0 after Build or Merge).
func (m Map) Pending() int64 { return m.lad.Pending() }

// LevelRecordCounts reports the record count of each ladder level
// (diagnostics for the geometric-growth tests).
func (m Map) LevelRecordCounts() []int64 { return m.lad.LevelRecordCounts() }

// PendingCarries reports the ladder's spilled overflow runs not yet
// carried into the levels (always 0 here: segcount has no deferred
// write path yet, but queries already answer exactly over {buffer +
// overflow runs + levels}, so a future carrier needs no query changes).
func (m Map) PendingCarries() int { return m.lad.OverflowRuns() }

// Contains reports whether the segment is present.
func (m Map) Contains(s Segment) bool { return m.lad.Contains(backend, s) }

// Merge returns the union of two segment maps (parallel, persistent),
// condensing both sides' ladders first; the result is fully condensed.
func (m Map) Merge(other Map) Map {
	a, b := m.lad.Condense(backend), other.lad.Condense(backend)
	return Map{lad: m.lad.WithStatic(backend, a.union(b))}
}

// Size returns the number of distinct segments.
func (m Map) Size() int64 { return m.lad.Size() }

// IsEmpty reports whether the map is empty.
func (m Map) IsEmpty() bool { return m.Size() == 0 }

// bufDelta folds the write buffer's contribution to a per-segment
// aggregate over the y-range: +1 for each buffered insert matching
// pred, −1 for each matching tombstone. O(dynamic.BufCap) = O(1)
// records scanned.
func (m Map) bufDelta(yLo, yHi float64, pred func(Segment) bool) int64 {
	buf := m.lad.Buf()
	if buf.IsEmpty() {
		return 0
	}
	lo := Segment{Y: yLo, XLo: math.Inf(-1), XHi: math.Inf(-1)}
	hi := Segment{Y: yHi, XLo: math.Inf(1), XHi: math.Inf(1)}
	var d int64
	buf.Adds.ForEachRange(lo, hi, func(s Segment, _ struct{}) bool {
		if pred(s) {
			d++
		}
		return true
	})
	buf.Dels.ForEachRange(lo, hi, func(s Segment, _ struct{}) bool {
		if pred(s) {
			d--
		}
		return true
	})
	return d
}

// countCrossingIn counts the crossing segments of one static structure:
// segments opened at or before x minus segments closed before x, each
// an AugProjectKV prefix sum over nested count maps (boundary segments
// are counted directly, allocation free — a singleton nested map
// contributes 1 exactly when its segment's y is in range).
func countCrossingIn(s static, x, yLo, yHi float64) int64 {
	neg := math.Inf(-1)
	countOne := func(seg Segment, _ struct{}) int64 {
		if seg.Y >= yLo && seg.Y <= yHi {
			return 1
		}
		return 0
	}
	count := func(in yMap) int64 { return yRangeCount(in, yLo, yHi) }
	add := func(a, b int64) int64 { return a + b }
	opened := pam.AugProjectKV(s.opens,
		Segment{XLo: neg, XHi: neg, Y: neg},
		Segment{XLo: x, XHi: math.Inf(1), Y: math.Inf(1)},
		countOne, count, add, 0)
	closed := pam.AugProjectKV(s.closes,
		Segment{XHi: neg, XLo: neg, Y: neg},
		Segment{XHi: x, XLo: neg, Y: neg},
		countOne, count, add, 0)
	return opened - closed
}

// CountCrossing counts the segments crossing the vertical query segment
// at x spanning [yLo, yHi], via the paper's SegCount endpoint maps,
// summing the signed contributions of every ladder level plus the
// write buffer's correction. Worst-case O(log^3 n).
func (m Map) CountCrossing(x, yLo, yHi float64) int64 {
	var count int64
	m.lad.EachSide(func(sign int64, s static) { count += sign * countCrossingIn(s, x, yLo, yHi) })
	return count + m.bufDelta(yLo, yHi, func(s Segment) bool { return s.CrossesLine(x) })
}

// CountLine counts the segments crossing the full vertical line at x.
func (m Map) CountLine(x float64) int64 {
	return m.CountCrossing(x, math.Inf(-1), math.Inf(1))
}

// CountWindow counts the segments intersecting the closed window
// [xLo, xHi] x [yLo, yHi], AugProjecting each level's by-y map over the
// y-range and stabbing each covered nested interval structure, plus the
// write buffer's correction. Worst-case O(log^3 n).
func (m Map) CountWindow(xLo, xHi, yLo, yHi float64) int64 {
	var count int64
	m.lad.EachSide(func(sign int64, s static) {
		count += sign * pam.AugProjectKV(s.byY,
			Segment{Y: yLo, XLo: math.Inf(-1), XHi: math.Inf(-1)},
			Segment{Y: yHi, XLo: math.Inf(1), XHi: math.Inf(1)},
			func(seg Segment, _ struct{}) int64 {
				if seg.XLo <= xHi && seg.XHi >= xLo {
					return 1
				}
				return 0
			},
			func(in xSet) int64 { return in.countOverlapping(xLo, xHi) },
			func(a, b int64) int64 { return a + b },
			0)
	})
	return count + m.bufDelta(yLo, yHi, func(s Segment) bool {
		return s.IntersectsWindow(xLo, xHi, yLo, yHi)
	})
}

// ReportWindow returns the segments intersecting the closed window, in
// (y, xLo, xHi) order. Each level reports its matches
// output-sensitively; a tombstoned segment appears once live and once
// as a tombstone, so per-segment signed aggregation leaves exactly the
// live matches.
func (m Map) ReportWindow(xLo, xHi, yLo, yHi float64) []Segment {
	// Fully condensed map (fresh from Build or Merge): one pure level,
	// nothing to cancel — append matches directly, no aggregation map.
	if s, ok := m.lad.Single(); ok {
		out := pam.AugProjectKV(s.byY,
			Segment{Y: yLo, XLo: math.Inf(-1), XHi: math.Inf(-1)},
			Segment{Y: yHi, XLo: math.Inf(1), XHi: math.Inf(1)},
			func(seg Segment, _ struct{}) []Segment {
				if seg.XLo <= xHi && seg.XHi >= xLo {
					return []Segment{seg}
				}
				return nil
			},
			func(in xSet) []Segment { return in.reportOverlapping(xLo, xHi, nil) },
			func(a, b []Segment) []Segment { return append(a, b...) },
			nil)
		sortYX(out)
		return out
	}
	counts := make(map[Segment]int64)
	m.lad.EachSide(func(sign int64, s static) {
		pam.AugProjectKV(s.byY,
			Segment{Y: yLo, XLo: math.Inf(-1), XHi: math.Inf(-1)},
			Segment{Y: yHi, XLo: math.Inf(1), XHi: math.Inf(1)},
			func(seg Segment, _ struct{}) struct{} {
				if seg.XLo <= xHi && seg.XHi >= xLo {
					counts[seg] += sign
				}
				return struct{}{}
			},
			func(in xSet) struct{} {
				for _, seg := range in.reportOverlapping(xLo, xHi, nil) {
					counts[seg] += sign
				}
				return struct{}{}
			},
			func(a, b struct{}) struct{} { return a },
			struct{}{})
	})
	buf := m.lad.Buf()
	if !buf.IsEmpty() {
		lo := Segment{Y: yLo, XLo: math.Inf(-1), XHi: math.Inf(-1)}
		hi := Segment{Y: yHi, XLo: math.Inf(1), XHi: math.Inf(1)}
		buf.Adds.ForEachRange(lo, hi, func(s Segment, _ struct{}) bool {
			if s.IntersectsWindow(xLo, xHi, yLo, yHi) {
				counts[s]++
			}
			return true
		})
		buf.Dels.ForEachRange(lo, hi, func(s Segment, _ struct{}) bool {
			if s.IntersectsWindow(xLo, xHi, yLo, yHi) {
				counts[s]--
			}
			return true
		})
	}
	out := make([]Segment, 0, len(counts))
	for seg, c := range counts {
		if c > 0 {
			out = append(out, seg)
		}
	}
	sortYX(out)
	return out
}

func sortYX(segs []Segment) {
	slices.SortFunc(segs, func(a, b Segment) int {
		switch {
		case lessYX(a, b):
			return -1
		case lessYX(b, a):
			return 1
		default:
			return 0
		}
	})
}

// ReportCrossing returns the segments crossing the vertical query
// segment at x spanning [yLo, yHi], in (y, xLo, xHi) order, with
// ReportWindow's output-sensitive cost.
func (m Map) ReportCrossing(x, yLo, yHi float64) []Segment {
	return m.ReportWindow(x, x, yLo, yHi)
}

// ReportLine returns the segments crossing the full vertical line at x.
func (m Map) ReportLine(x float64) []Segment {
	return m.ReportCrossing(x, math.Inf(-1), math.Inf(1))
}

// Segments materializes all segments in (y, xLo, xHi) order.
func (m Map) Segments() []Segment {
	entries := m.lad.Entries(backend)
	out := make([]Segment, len(entries))
	for i, e := range entries {
		out[i] = e.Key
	}
	return out
}

// Validate checks the ladder invariants (carry propagation, buffer
// contract, level capacities) and the structural invariants of every
// level's three constituent trees, including that every node's nested
// maps hold exactly the subtree's segments (for tests). O(n log n).
func (m Map) Validate() error {
	if err := m.lad.Validate(backend); err != nil {
		return err
	}
	sameKeys := func(a, b []Segment) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	yEq := func(a, b yMap) bool {
		return a.Size() == b.Size() && sameKeys(a.Keys(), b.Keys())
	}
	var err error
	m.lad.EachSide(func(_ int64, s static) {
		if err != nil {
			return
		}
		err = s.byY.Validate(func(a, b xSet) bool {
			if a.byLo.Size() != b.byLo.Size() || a.byLo.AugVal() != b.byLo.AugVal() {
				return false
			}
			return sameKeys(a.byLo.Keys(), b.byLo.Keys()) && sameKeys(a.byHi.Keys(), b.byHi.Keys())
		})
		if err == nil {
			err = s.opens.Validate(yEq)
		}
		if err == nil {
			err = s.closes.Validate(yEq)
		}
	})
	return err
}
