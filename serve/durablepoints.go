package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dynamic"
	"repro/pam"
	"repro/rangetree"
)

// dynLevelState is one serialized ladder rung (see rangetree.State).
type dynLevelState = dynamic.LevelState[rangetree.Point, int64]

// Durable PointStore: the same WAL and recovery protocol as
// DurableStore, with checkpoints that serialize each shard's full
// ladder state (rangetree.State) instead of an incremental record
// chain — the ladder's level structures are nested-augmentation
// composites that are rebuilt by the parallel bulk Build on recovery,
// preserving the exact rung boundaries (and so the amortization state
// of the logarithmic method). Point checkpoints are therefore
// standalone: recovery reads only the newest intact one (quarantining
// corrupt ones and falling back to an older checkpoint plus a longer
// WAL replay), and superseded files are dropped once a new one is
// published, minus the KeepGenerations fallback window.
//
// Checkpoint file format:
//
//	"PAMPTCK2" | uvarint seq | uvarint shards | shards × ladder state |
//	32-byte sha256(everything before) | u32le crc32(everything before)
//
// with each ladder state encoded as
//
//	uvarint flushCap | run(bufAdds) | run(bufDels) |
//	uvarint numLevels | numLevels × (run(adds) | run(dels))
//	run: uvarint count | count × (f64le x | f64le y | varint w)
//
// The sha256 is the file's content digest — the point-store analogue of
// the chain store's Merkle root: recomputed and verified on decode and
// by the scrubber, reported in CheckpointStats.Digest as the
// cross-replica comparison and external tamper-evidence anchor.

const ptCkptMagic = "PAMPTCK2"

// pointOpEnc encodes one PointOp for WAL records.
var pointOpEnc = opCodec[PointOp]{
	append: func(buf []byte, op PointOp) []byte {
		buf = append(buf, byte(op.Kind))
		buf = pam.AppendFloat64(buf, op.P.X)
		buf = pam.AppendFloat64(buf, op.P.Y)
		if op.Kind == OpPut {
			buf = binary.AppendVarint(buf, op.W)
		}
		return buf
	},
	at: func(data []byte) (PointOp, int, error) {
		var op PointOp
		if len(data) < 17 {
			return op, 0, ErrCorruptFile
		}
		op.Kind = OpKind(data[0])
		if op.Kind != OpPut && op.Kind != OpDelete {
			return op, 0, ErrCorruptFile
		}
		x, _, err := pam.Float64At(data[1:])
		if err != nil {
			return op, 0, err
		}
		y, _, err := pam.Float64At(data[9:])
		if err != nil {
			return op, 0, err
		}
		op.P = rangetree.Point{X: x, Y: y}
		used := 17
		if op.Kind == OpPut {
			w, n, err := pam.VarintAt(data[17:])
			if err != nil {
				return op, 0, err
			}
			op.W = w
			used += n
		}
		return op, used, nil
	},
}

func appendPointRun(buf []byte, run []pam.KV[rangetree.Point, int64]) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(run)))
	for _, e := range run {
		buf = pam.AppendFloat64(buf, e.Key.X)
		buf = pam.AppendFloat64(buf, e.Key.Y)
		buf = binary.AppendVarint(buf, e.Val)
	}
	return buf
}

func pointRunAt(data []byte) ([]pam.KV[rangetree.Point, int64], int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, ErrCorruptFile
	}
	used := n
	// Every entry is at least 17 bytes; a larger count is corruption,
	// not an allocation request.
	if count > uint64(len(data)-used)/17 {
		return nil, 0, ErrCorruptFile
	}
	run := make([]pam.KV[rangetree.Point, int64], count)
	for i := range run {
		x, _, err := pam.Float64At(data[used:])
		if err != nil {
			return nil, 0, err
		}
		y, _, err := pam.Float64At(data[used+8:])
		if err != nil {
			return nil, 0, err
		}
		w, n, err := pam.VarintAt(data[used+16:])
		if err != nil {
			return nil, 0, err
		}
		run[i] = pam.KV[rangetree.Point, int64]{Key: rangetree.Point{X: x, Y: y}, Val: w}
		used += 16 + n
	}
	return run, used, nil
}

func appendLadderState(buf []byte, st rangetree.State) []byte {
	buf = binary.AppendUvarint(buf, uint64(st.FlushCap))
	buf = appendPointRun(buf, st.BufAdds)
	buf = appendPointRun(buf, st.BufDels)
	buf = binary.AppendUvarint(buf, uint64(len(st.Levels)))
	for _, lv := range st.Levels {
		buf = appendPointRun(buf, lv.Adds)
		buf = appendPointRun(buf, lv.Dels)
	}
	return buf
}

func ladderStateAt(data []byte) (rangetree.State, int, error) {
	var st rangetree.State
	cap64, n := binary.Uvarint(data)
	if n <= 0 || cap64 > 1<<31 {
		return st, 0, ErrCorruptFile
	}
	st.FlushCap = int64(cap64)
	used := n
	var err error
	if st.BufAdds, n, err = pointRunAt(data[used:]); err != nil {
		return st, 0, err
	}
	used += n
	if st.BufDels, n, err = pointRunAt(data[used:]); err != nil {
		return st, 0, err
	}
	used += n
	numLevels, n := binary.Uvarint(data[used:])
	if n <= 0 || numLevels > uint64(len(data)-used) {
		return st, 0, ErrCorruptFile
	}
	used += n
	st.Levels = make([]dynLevelState, numLevels)
	for i := range st.Levels {
		if st.Levels[i].Adds, n, err = pointRunAt(data[used:]); err != nil {
			return st, 0, err
		}
		used += n
		if st.Levels[i].Dels, n, err = pointRunAt(data[used:]); err != nil {
			return st, 0, err
		}
		used += n
	}
	return st, used, nil
}

// ptCkptSeq parses just a point checkpoint's magic and sequence number,
// CRC unchecked — recovery's bound on the highest sequence the
// directory ever covered.
func ptCkptSeq(data []byte) (uint64, bool) {
	if len(data) < len(ptCkptMagic) || string(data[:len(ptCkptMagic)]) != ptCkptMagic {
		return 0, false
	}
	seq, n := binary.Uvarint(data[len(ptCkptMagic):])
	return seq, n > 0
}

// verifyPtCkptStructure is the codec-independent integrity check of one
// point checkpoint: magic, trailing CRC, and the whole-file digest.
func verifyPtCkptStructure(data []byte) bool {
	if len(data) < len(ptCkptMagic)+sha256.Size+4 {
		return false
	}
	body := data[: len(data)-4 : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return false
	}
	var want [sha256.Size]byte
	copy(want[:], body[len(body)-sha256.Size:])
	return sha256.Sum256(body[:len(body)-sha256.Size]) == want
}

// decodePointCheckpoint decodes one standalone point checkpoint file,
// verifying the CRC and the whole-file digest.
func decodePointCheckpoint(proto rangetree.Tree, shards int, data []byte) (uint64, []rangetree.Tree, [sha256.Size]byte, error) {
	var digest [sha256.Size]byte
	if len(data) < len(ptCkptMagic)+sha256.Size+4 || string(data[:len(ptCkptMagic)]) != ptCkptMagic {
		return 0, nil, digest, ErrCorruptFile
	}
	body := data[: len(data)-4 : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return 0, nil, digest, ErrCorruptFile
	}
	copy(digest[:], body[len(body)-sha256.Size:])
	if sha256.Sum256(body[:len(body)-sha256.Size]) != digest {
		return 0, nil, digest, ErrDigestMismatch
	}
	p := body[len(ptCkptMagic) : len(body)-sha256.Size]
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, digest, ErrCorruptFile
	}
	p = p[n:]
	nShards, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, digest, ErrCorruptFile
	}
	p = p[n:]
	if nShards != uint64(shards) {
		return 0, nil, digest, fmt.Errorf("%w: checkpoint has %d shards, store has %d", ErrCorruptFile, nShards, shards)
	}
	states := make([]rangetree.Tree, shards)
	for i := range states {
		st, used, err := ladderStateAt(p)
		if err != nil {
			return 0, nil, digest, err
		}
		p = p[used:]
		// Rehydrate rebuilds per level and validates the ladder
		// invariants, so a crafted file cannot produce a broken tree.
		t, err := proto.Rehydrate(st)
		if err != nil {
			return 0, nil, digest, err
		}
		states[i] = t
	}
	if len(p) != 0 {
		return 0, nil, digest, ErrCorruptFile
	}
	return seq, states, digest, nil
}

// DurablePointStore wraps a PointStore with the WAL and full ladder
// checkpoints. The same opts and splits must be passed at every reopen;
// requires opts.Pool == false. See DurableStore for the acknowledgment
// and recovery guarantees — they are identical, including quarantine,
// fallback, and scrub/repair.
type DurablePointStore struct {
	s  *PointStore
	fs FS
	w  *wal[PointOp]

	ckptMu  sync.Mutex
	every   uint64
	batches atomic.Uint64
	keep    int

	epoch    atomic.Uint64
	recovery RecoveryStats
	scrub    *scrubber

	errMu sync.Mutex
	bgErr error
}

// OpenDurablePointStore opens (or creates) a durable point store on
// cfg.FS, recovering the newest intact checkpoint plus the WAL suffix.
// A corrupt checkpoint is quarantined; recovery falls back to an older
// one (within DurableConfig.KeepGenerations) and refuses to open if the
// surviving files cannot cover the acknowledged sequence prefix.
// CompactEvery and CompactDeadRatio are ignored: point checkpoints are
// already full rewrites, so every checkpoint bounds recovery the way a
// compaction does.
func OpenDurablePointStore(opts pam.Options, splits []float64, cfg DurableConfig) (*DurablePointStore, error) {
	if cfg.FS == nil {
		return nil, errors.New("serve: DurableConfig.FS is required")
	}
	if opts.Pool {
		return nil, errors.New("serve: durable stores require Options.Pool == false")
	}
	names, err := cfg.FS.List()
	if err != nil {
		return nil, err
	}
	sweepTmpFiles(cfg.FS, names)
	ckpts, walGens := parseDurableDir(names)
	shards := len(splits) + 1
	proto := rangetree.New(opts)

	// Newest intact checkpoint wins; corrupt ones are quarantined and
	// recovery falls back, tracking the highest sequence number any
	// readable header claims so a fallback can never silently lose
	// acknowledged batches.
	var rec RecoveryStats
	states := make([]rangetree.Tree, shards)
	for i := range states {
		states[i] = rangetree.New(opts)
	}
	var seq, maxSeq uint64
	lastIdx := 0
	for i := len(ckpts) - 1; i >= 0; i-- {
		idx := ckpts[i]
		data, err := cfg.FS.ReadFile(ckptName(idx))
		if err != nil {
			return nil, err
		}
		if s, ok := ptCkptSeq(data); ok && s > maxSeq {
			maxSeq = s
		}
		s, st, _, derr := decodePointCheckpoint(proto, shards, data)
		if derr == nil {
			seq, states, lastIdx = s, st, idx
			rec.ChainFiles = 1
			break
		}
		q, qerr := quarantineFile(cfg.FS, ckptName(idx))
		if qerr != nil {
			return nil, qerr
		}
		rec.Quarantined = append(rec.Quarantined, q)
	}
	// Older checkpoints below the chosen one stay on disk until the next
	// checkpoint's retention pass drops them.

	route := pointRouter(splits)
	next := seq
	maxGen := lastIdx
	for _, g := range walGens {
		if g < lastIdx {
			continue
		}
		if g > maxGen {
			maxGen = g
		}
		data, err := cfg.FS.ReadFile(walName(g))
		if err != nil {
			return nil, err
		}
		batches, valid := decodeWALFile(pointOpEnc, data)
		for _, b := range batches {
			if b.seq != next {
				return nil, fmt.Errorf("%s: %w: batch seq %d, want %d", walName(g), ErrCorruptFile, b.seq, next)
			}
			per := make([][]PointOp, shards)
			for _, op := range b.ops {
				i := route(op)
				per[i] = append(per[i], op)
			}
			for i, sub := range per {
				if len(sub) > 0 {
					states[i] = applyPointOps(states[i], sub)
				}
			}
			next++
			rec.WALBatches++
		}
		if valid != len(data) {
			if err := writeFileAtomic(cfg.FS, walTmpName, walName(g), data[:valid]); err != nil {
				return nil, err
			}
		}
	}
	if next < maxSeq {
		return nil, fmt.Errorf("%w: recovered to seq %d, but a checkpoint at seq %d existed (quarantined: %s)",
			ErrUnrecoverable, next, maxSeq, strings.Join(rec.Quarantined, ", "))
	}
	if len(rec.Quarantined) > 0 {
		rec.Repaired = true
	}

	w := newWAL(cfg.FS, pointOpEnc, maxGen, next)
	keep := cfg.KeepGenerations
	if keep < 1 {
		keep = 1
	}
	d := &DurablePointStore{
		fs:       cfg.FS,
		w:        w,
		every:    uint64(cfg.CheckpointEvery),
		keep:     keep,
		recovery: rec,
	}
	h := hooks[PointOp]{logAppend: w.appendLocked, commit: d.commitSeq}
	d.s = newPointStoreAt(opts, splits, states, next, h, cfg.Tuning)
	if cfg.ScrubEvery > 0 {
		d.scrub = startScrubber(cfg.ScrubEvery, cfg.ScrubBytesPerSec, scrubHooks{
			epoch:  d.epoch.Load,
			verify: d.verifyPass,
			repair: func(corrupt []string) error { return d.repairCorrupt(corrupt) },
			onErr:  d.setErr,
		})
	}
	return d, nil
}

// Recovery reports what the opening recovery read and repaired.
func (d *DurablePointStore) Recovery() RecoveryStats { return d.recovery }

// commitSeq is the resolver-side durability step; see
// DurableStore.commitSeq.
func (d *DurablePointStore) commitSeq(seq uint64) error {
	if err := d.w.Sync(seq); err != nil {
		return err
	}
	if d.every > 0 && d.batches.Add(1)%d.every == 0 {
		if _, err := d.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
			d.setErr(err)
		}
	}
	return nil
}

// Apply submits one write batch; acknowledgment (nil error) means the
// batch is durable. See DurableStore.Apply.
func (d *DurablePointStore) Apply(ops []PointOp) (uint64, error) {
	return d.s.Apply(ops)
}

// ApplyAsync submits one write batch fire-and-forget; the returned
// future resolves only after the batch's WAL record is fsynced. See
// DurableStore.ApplyAsync.
func (d *DurablePointStore) ApplyAsync(ops []PointOp) (*Future, error) {
	return d.s.ApplyAsync(ops)
}

// Insert durably adds the weighted point.
func (d *DurablePointStore) Insert(p rangetree.Point, w int64) (uint64, error) {
	return d.Apply([]PointOp{InsertPoint(p, w)})
}

// InsertAsync is the fire-and-forget Insert; see ApplyAsync.
func (d *DurablePointStore) InsertAsync(p rangetree.Point, w int64) (*Future, error) {
	return d.ApplyAsync([]PointOp{InsertPoint(p, w)})
}

// Delete durably removes the point.
func (d *DurablePointStore) Delete(p rangetree.Point) (uint64, error) {
	return d.Apply([]PointOp{DeletePoint(p)})
}

// DeleteAsync is the fire-and-forget Delete; see ApplyAsync.
func (d *DurablePointStore) DeleteAsync(p rangetree.Point) (*Future, error) {
	return d.ApplyAsync([]PointOp{DeletePoint(p)})
}

// Stats samples the per-shard pipeline counters; see Store.Stats.
func (d *DurablePointStore) Stats() []ShardStats { return d.s.Stats() }

// Snapshot assembles a consistent cross-shard view; see Store.Snapshot.
func (d *DurablePointStore) Snapshot() (PointView, error) { return d.s.Snapshot() }

// ReaderView returns the read-only replica view; see
// PointStore.ReaderView.
func (d *DurablePointStore) ReaderView() (PointView, error) { return d.s.ReaderView() }

// NumShards returns the partition count.
func (d *DurablePointStore) NumShards() int { return d.s.NumShards() }

// checkpointAt writes a standalone checkpoint and drops files below the
// retention bound (checkpoints and WAL generations older than keepBack
// files behind the new one).
func (d *DurablePointStore) checkpointAt(keepBack int) (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	var idx int
	states, _, seq, _, ok := d.s.eng.trySnapshotWith(func() { idx = d.w.rotateLocked() })
	if !ok {
		return CheckpointStats{}, ErrClosed
	}

	file := append([]byte(nil), ptCkptMagic...)
	file = binary.AppendUvarint(file, seq)
	file = binary.AppendUvarint(file, uint64(len(states)))
	records := 0
	for _, t := range states {
		st := t.Dehydrate()
		records += len(st.BufAdds) + len(st.BufDels)
		for _, lv := range st.Levels {
			records += len(lv.Adds) + len(lv.Dels)
		}
		file = appendLadderState(file, st)
	}
	digest := sha256.Sum256(file)
	file = append(file, digest[:]...)
	file = binary.LittleEndian.AppendUint32(file, crc32.ChecksumIEEE(file))
	if err := writeFileAtomic(d.fs, ckptTmpName, ckptName(idx), file); err != nil {
		return CheckpointStats{}, err
	}
	d.epoch.Add(1)
	if seq == 0 || d.w.Sync(seq-1) == nil {
		dropOldWALs(d.fs, idx-keepBack)
		dropOldCkpts(d.fs, idx-keepBack)
	}
	return CheckpointStats{
		Seq: seq, Index: idx, Records: records, Bytes: len(file),
		Digest: digest, Base: true, ChainRecords: records, LiveRecords: records,
	}, nil
}

// Checkpoint writes a standalone checkpoint of every shard's ladder
// state at one sequence point, publishes it atomically, and drops the
// files it supersedes (keeping KeepGenerations checkpoints and WAL
// generations for corruption fallback). Records in the returned stats
// counts the ladder records serialized (point checkpoints are full, not
// incremental, so every checkpoint is a base).
func (d *DurablePointStore) Checkpoint() (CheckpointStats, error) {
	return d.checkpointAt(d.keep)
}

// Compact writes a fresh checkpoint and drops everything it supersedes,
// including the fallback window — the point-store form of chain
// compaction (point checkpoints are already full rewrites, so Compact
// differs from Checkpoint only in retention). It is also the scrubber's
// repair step.
func (d *DurablePointStore) Compact() (CheckpointStats, error) {
	return d.checkpointAt(0)
}

// verifyPass re-reads and verifies every sealed durable file once:
// checkpoint CRC and whole-file digest, WAL framing. Reads happen under
// ckptMu; verification outside it.
func (d *DurablePointStore) verifyPass() (corrupt []string, files, bytes int, err error) {
	d.ckptMu.Lock()
	names, lerr := d.fs.List()
	if lerr != nil {
		d.ckptMu.Unlock()
		return nil, 0, 0, lerr
	}
	ckpts, walGens := parseDurableDir(names)
	sealed := d.w.sealedBelow()
	ckptData := make(map[int][]byte, len(ckpts))
	walData := make(map[int][]byte, len(walGens))
	for _, idx := range ckpts {
		if data, rerr := d.fs.ReadFile(ckptName(idx)); rerr == nil {
			ckptData[idx] = data
		}
	}
	for _, g := range walGens {
		if g >= sealed {
			continue
		}
		if data, rerr := d.fs.ReadFile(walName(g)); rerr == nil {
			walData[g] = data
		}
	}
	d.ckptMu.Unlock()

	for _, idx := range ckpts {
		data, ok := ckptData[idx]
		if !ok {
			continue
		}
		files++
		bytes += len(data)
		if !verifyPtCkptStructure(data) {
			corrupt = append(corrupt, ckptName(idx))
		}
	}
	for _, g := range walGens {
		data, ok := walData[g]
		if !ok {
			continue
		}
		files++
		bytes += len(data)
		if _, valid := decodeWALFile(pointOpEnc, data); valid != len(data) {
			corrupt = append(corrupt, walName(g))
		}
	}
	return corrupt, files, bytes, nil
}

// Verify runs one synchronous, check-only scrub pass; see
// DurableStore.Verify.
func (d *DurablePointStore) Verify() ([]string, error) {
	corrupt, _, _, err := d.verifyPass()
	return corrupt, err
}

// repairCorrupt quarantines the corrupt files and rewrites a fresh
// checkpoint from the live state.
func (d *DurablePointStore) repairCorrupt(corrupt []string) error {
	d.ckptMu.Lock()
	for _, name := range corrupt {
		if _, err := quarantineFile(d.fs, name); err != nil && !errors.Is(err, os.ErrNotExist) {
			d.ckptMu.Unlock()
			return err
		}
	}
	d.epoch.Add(1)
	d.ckptMu.Unlock()
	_, err := d.Compact()
	return err
}

// ScrubStats reports the background scrubber's lifetime counters (zero
// when no scrubber is configured).
func (d *DurablePointStore) ScrubStats() ScrubStats {
	if d.scrub == nil {
		return ScrubStats{}
	}
	return d.scrub.Stats()
}

// Err returns the first background error; see DurableStore.Err.
func (d *DurablePointStore) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.bgErr
}

func (d *DurablePointStore) setErr(err error) {
	d.errMu.Lock()
	if d.bgErr == nil {
		d.bgErr = err
	}
	d.errMu.Unlock()
}

// Close stops the scrubber and the shard goroutines and flushes the
// WAL. In-flight futures resolve (durably committed) before Close
// returns.
func (d *DurablePointStore) Close() error {
	if d.scrub != nil {
		d.scrub.Stop()
	}
	d.s.Close()
	return d.w.Close()
}
