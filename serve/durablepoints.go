package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/dynamic"
	"repro/pam"
	"repro/rangetree"
)

// dynLevelState is one serialized ladder rung (see rangetree.State).
type dynLevelState = dynamic.LevelState[rangetree.Point, int64]

// Durable PointStore: the same WAL and recovery protocol as
// DurableStore, with checkpoints that serialize each shard's full
// ladder state (rangetree.State) instead of an incremental record
// chain — the ladder's level structures are nested-augmentation
// composites that are rebuilt by the parallel bulk Build on recovery,
// preserving the exact rung boundaries (and so the amortization state
// of the logarithmic method). Point checkpoints are therefore
// standalone: recovery reads only the newest one, and older files are
// dropped once a new one is published.
//
// Checkpoint file format:
//
//	"PAMPTCK1" | uvarint seq | uvarint shards | shards × ladder state |
//	u32le crc32(everything before)
//
// with each ladder state encoded as
//
//	uvarint flushCap | run(bufAdds) | run(bufDels) |
//	uvarint numLevels | numLevels × (run(adds) | run(dels))
//	run: uvarint count | count × (f64le x | f64le y | varint w)

const ptCkptMagic = "PAMPTCK1"

// pointOpEnc encodes one PointOp for WAL records.
var pointOpEnc = opCodec[PointOp]{
	append: func(buf []byte, op PointOp) []byte {
		buf = append(buf, byte(op.Kind))
		buf = pam.AppendFloat64(buf, op.P.X)
		buf = pam.AppendFloat64(buf, op.P.Y)
		if op.Kind == OpPut {
			buf = binary.AppendVarint(buf, op.W)
		}
		return buf
	},
	at: func(data []byte) (PointOp, int, error) {
		var op PointOp
		if len(data) < 17 {
			return op, 0, ErrCorruptFile
		}
		op.Kind = OpKind(data[0])
		if op.Kind != OpPut && op.Kind != OpDelete {
			return op, 0, ErrCorruptFile
		}
		x, _, err := pam.Float64At(data[1:])
		if err != nil {
			return op, 0, err
		}
		y, _, err := pam.Float64At(data[9:])
		if err != nil {
			return op, 0, err
		}
		op.P = rangetree.Point{X: x, Y: y}
		used := 17
		if op.Kind == OpPut {
			w, n, err := pam.VarintAt(data[17:])
			if err != nil {
				return op, 0, err
			}
			op.W = w
			used += n
		}
		return op, used, nil
	},
}

func appendPointRun(buf []byte, run []pam.KV[rangetree.Point, int64]) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(run)))
	for _, e := range run {
		buf = pam.AppendFloat64(buf, e.Key.X)
		buf = pam.AppendFloat64(buf, e.Key.Y)
		buf = binary.AppendVarint(buf, e.Val)
	}
	return buf
}

func pointRunAt(data []byte) ([]pam.KV[rangetree.Point, int64], int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, ErrCorruptFile
	}
	used := n
	// Every entry is at least 17 bytes; a larger count is corruption,
	// not an allocation request.
	if count > uint64(len(data)-used)/17 {
		return nil, 0, ErrCorruptFile
	}
	run := make([]pam.KV[rangetree.Point, int64], count)
	for i := range run {
		x, _, err := pam.Float64At(data[used:])
		if err != nil {
			return nil, 0, err
		}
		y, _, err := pam.Float64At(data[used+8:])
		if err != nil {
			return nil, 0, err
		}
		w, n, err := pam.VarintAt(data[used+16:])
		if err != nil {
			return nil, 0, err
		}
		run[i] = pam.KV[rangetree.Point, int64]{Key: rangetree.Point{X: x, Y: y}, Val: w}
		used += 16 + n
	}
	return run, used, nil
}

func appendLadderState(buf []byte, st rangetree.State) []byte {
	buf = binary.AppendUvarint(buf, uint64(st.FlushCap))
	buf = appendPointRun(buf, st.BufAdds)
	buf = appendPointRun(buf, st.BufDels)
	buf = binary.AppendUvarint(buf, uint64(len(st.Levels)))
	for _, lv := range st.Levels {
		buf = appendPointRun(buf, lv.Adds)
		buf = appendPointRun(buf, lv.Dels)
	}
	return buf
}

func ladderStateAt(data []byte) (rangetree.State, int, error) {
	var st rangetree.State
	cap64, n := binary.Uvarint(data)
	if n <= 0 || cap64 > 1<<31 {
		return st, 0, ErrCorruptFile
	}
	st.FlushCap = int64(cap64)
	used := n
	var err error
	if st.BufAdds, n, err = pointRunAt(data[used:]); err != nil {
		return st, 0, err
	}
	used += n
	if st.BufDels, n, err = pointRunAt(data[used:]); err != nil {
		return st, 0, err
	}
	used += n
	numLevels, n := binary.Uvarint(data[used:])
	if n <= 0 || numLevels > uint64(len(data)-used) {
		return st, 0, ErrCorruptFile
	}
	used += n
	st.Levels = make([]dynLevelState, numLevels)
	for i := range st.Levels {
		if st.Levels[i].Adds, n, err = pointRunAt(data[used:]); err != nil {
			return st, 0, err
		}
		used += n
		if st.Levels[i].Dels, n, err = pointRunAt(data[used:]); err != nil {
			return st, 0, err
		}
		used += n
	}
	return st, used, nil
}

// decodePointCheckpoint decodes one standalone point checkpoint file.
func decodePointCheckpoint(proto rangetree.Tree, shards int, data []byte) (uint64, []rangetree.Tree, error) {
	if len(data) < len(ptCkptMagic)+4 || string(data[:len(ptCkptMagic)]) != ptCkptMagic {
		return 0, nil, ErrCorruptFile
	}
	body := data[: len(data)-4 : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return 0, nil, ErrCorruptFile
	}
	p := body[len(ptCkptMagic):]
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, ErrCorruptFile
	}
	p = p[n:]
	nShards, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, ErrCorruptFile
	}
	p = p[n:]
	if nShards != uint64(shards) {
		return 0, nil, fmt.Errorf("%w: checkpoint has %d shards, store has %d", ErrCorruptFile, nShards, shards)
	}
	states := make([]rangetree.Tree, shards)
	for i := range states {
		st, used, err := ladderStateAt(p)
		if err != nil {
			return 0, nil, err
		}
		p = p[used:]
		// Rehydrate rebuilds per level and validates the ladder
		// invariants, so a crafted file cannot produce a broken tree.
		t, err := proto.Rehydrate(st)
		if err != nil {
			return 0, nil, err
		}
		states[i] = t
	}
	if len(p) != 0 {
		return 0, nil, ErrCorruptFile
	}
	return seq, states, nil
}

// DurablePointStore wraps a PointStore with the WAL and full ladder
// checkpoints. The same opts and splits must be passed at every reopen;
// requires opts.Pool == false. See DurableStore for the acknowledgment
// and recovery guarantees — they are identical.
type DurablePointStore struct {
	s  *PointStore
	fs FS
	w  *wal[PointOp]

	ckptMu  sync.Mutex
	every   uint64
	batches atomic.Uint64

	errMu sync.Mutex
	bgErr error
}

// OpenDurablePointStore opens (or creates) a durable point store on
// cfg.FS, recovering the newest checkpoint plus the WAL suffix.
func OpenDurablePointStore(opts pam.Options, splits []float64, cfg DurableConfig) (*DurablePointStore, error) {
	if cfg.FS == nil {
		return nil, errors.New("serve: DurableConfig.FS is required")
	}
	if opts.Pool {
		return nil, errors.New("serve: durable stores require Options.Pool == false")
	}
	names, err := cfg.FS.List()
	if err != nil {
		return nil, err
	}
	ckpts, walGens := parseDurableDir(names)
	shards := len(splits) + 1
	proto := rangetree.New(opts)

	states := make([]rangetree.Tree, shards)
	for i := range states {
		states[i] = rangetree.New(opts)
	}
	var seq uint64
	lastIdx := 0
	if len(ckpts) > 0 {
		lastIdx = ckpts[len(ckpts)-1]
		data, err := cfg.FS.ReadFile(ckptName(lastIdx))
		if err != nil {
			return nil, err
		}
		if seq, states, err = decodePointCheckpoint(proto, shards, data); err != nil {
			return nil, fmt.Errorf("%s: %w", ckptName(lastIdx), err)
		}
	}

	route := pointRouter(splits)
	next := seq
	maxGen := lastIdx
	for _, g := range walGens {
		if g < lastIdx {
			continue
		}
		if g > maxGen {
			maxGen = g
		}
		data, err := cfg.FS.ReadFile(walName(g))
		if err != nil {
			return nil, err
		}
		batches, valid := decodeWALFile(pointOpEnc, data)
		for _, b := range batches {
			if b.seq != next {
				return nil, fmt.Errorf("%s: %w: batch seq %d, want %d", walName(g), ErrCorruptFile, b.seq, next)
			}
			per := make([][]PointOp, shards)
			for _, op := range b.ops {
				i := route(op)
				per[i] = append(per[i], op)
			}
			for i, sub := range per {
				if len(sub) > 0 {
					states[i] = applyPointOps(states[i], sub)
				}
			}
			next++
		}
		if valid != len(data) {
			if err := writeFileAtomic(cfg.FS, walTmpName, walName(g), data[:valid]); err != nil {
				return nil, err
			}
		}
	}

	w := newWAL(cfg.FS, pointOpEnc, maxGen, next)
	d := &DurablePointStore{
		fs:    cfg.FS,
		w:     w,
		every: uint64(cfg.CheckpointEvery),
	}
	h := hooks[PointOp]{logAppend: w.appendLocked, commit: d.commitSeq}
	d.s = &PointStore{
		eng:   newEngineAt(states, route, applyPointOps, next, h, cfg.Tuning.withDefaults()),
		proto: proto,
	}
	return d, nil
}

// commitSeq is the resolver-side durability step; see
// DurableStore.commitSeq.
func (d *DurablePointStore) commitSeq(seq uint64) error {
	if err := d.w.Sync(seq); err != nil {
		return err
	}
	if d.every > 0 && d.batches.Add(1)%d.every == 0 {
		if _, err := d.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
			d.setErr(err)
		}
	}
	return nil
}

// Apply submits one write batch; acknowledgment (nil error) means the
// batch is durable. See DurableStore.Apply.
func (d *DurablePointStore) Apply(ops []PointOp) (uint64, error) {
	return d.s.eng.applyBatch(ops)
}

// ApplyAsync submits one write batch fire-and-forget; the returned
// future resolves only after the batch's WAL record is fsynced. See
// DurableStore.ApplyAsync.
func (d *DurablePointStore) ApplyAsync(ops []PointOp) (*Future, error) {
	return d.s.eng.applyAsync(ops, false)
}

// Insert durably adds the weighted point.
func (d *DurablePointStore) Insert(p rangetree.Point, w int64) (uint64, error) {
	return d.Apply([]PointOp{InsertPoint(p, w)})
}

// InsertAsync is the fire-and-forget Insert; see ApplyAsync.
func (d *DurablePointStore) InsertAsync(p rangetree.Point, w int64) (*Future, error) {
	return d.ApplyAsync([]PointOp{InsertPoint(p, w)})
}

// Delete durably removes the point.
func (d *DurablePointStore) Delete(p rangetree.Point) (uint64, error) {
	return d.Apply([]PointOp{DeletePoint(p)})
}

// DeleteAsync is the fire-and-forget Delete; see ApplyAsync.
func (d *DurablePointStore) DeleteAsync(p rangetree.Point) (*Future, error) {
	return d.ApplyAsync([]PointOp{DeletePoint(p)})
}

// Stats samples the per-shard pipeline counters; see Store.Stats.
func (d *DurablePointStore) Stats() []ShardStats { return d.s.Stats() }

// Snapshot assembles a consistent cross-shard view; see Store.Snapshot.
func (d *DurablePointStore) Snapshot() PointView { return d.s.Snapshot() }

// NumShards returns the partition count.
func (d *DurablePointStore) NumShards() int { return d.s.NumShards() }

// Checkpoint writes a standalone checkpoint of every shard's ladder
// state at one sequence point, publishes it atomically, and drops the
// files it supersedes. Records in the returned stats counts the ladder
// records serialized (point checkpoints are full, not incremental).
func (d *DurablePointStore) Checkpoint() (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	var idx int
	states, _, seq, _, ok := d.s.eng.trySnapshotWith(func() { idx = d.w.rotateLocked() })
	if !ok {
		return CheckpointStats{}, ErrClosed
	}

	file := append([]byte(nil), ptCkptMagic...)
	file = binary.AppendUvarint(file, seq)
	file = binary.AppendUvarint(file, uint64(len(states)))
	records := 0
	for _, t := range states {
		st := t.Dehydrate()
		records += len(st.BufAdds) + len(st.BufDels)
		for _, lv := range st.Levels {
			records += len(lv.Adds) + len(lv.Dels)
		}
		file = appendLadderState(file, st)
	}
	file = binary.LittleEndian.AppendUint32(file, crc32.ChecksumIEEE(file))
	if err := writeFileAtomic(d.fs, ckptTmpName, ckptName(idx), file); err != nil {
		return CheckpointStats{}, err
	}
	if seq == 0 || d.w.Sync(seq-1) == nil {
		dropOldWALs(d.fs, idx)
		dropOldCkpts(d.fs, idx)
	}
	return CheckpointStats{Seq: seq, Index: idx, Records: records, Bytes: len(file)}, nil
}

// dropOldCkpts removes superseded standalone checkpoints, best-effort.
func dropOldCkpts(fs FS, idx int) {
	names, err := fs.List()
	if err != nil {
		return
	}
	ckpts, _ := parseDurableDir(names)
	for _, c := range ckpts {
		if c < idx {
			fs.Remove(ckptName(c))
		}
	}
}

// Err returns the first automatic-checkpoint error; see DurableStore.Err.
func (d *DurablePointStore) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.bgErr
}

func (d *DurablePointStore) setErr(err error) {
	d.errMu.Lock()
	if d.bgErr == nil {
		d.bgErr = err
	}
	d.errMu.Unlock()
}

// Close stops the shard goroutines and flushes the WAL. In-flight
// futures resolve (durably committed) before Close returns.
func (d *DurablePointStore) Close() error {
	d.s.Close()
	return d.w.Close()
}
