package serve

import (
	"sort"
	"sync"

	"repro/pam"
)

// OpKind says what one serving op does.
type OpKind uint8

const (
	// OpPut stores Val at Key, overwriting any existing value.
	OpPut OpKind = iota
	// OpDelete removes Key; deleting an absent key is a no-op.
	OpDelete
)

// Op is one key-value operation of a write batch. Within a batch, ops
// apply in slice order.
type Op[K, V any] struct {
	Kind OpKind
	Key  K
	Val  V // ignored by OpDelete
}

// Put returns an OpPut op.
func Put[K, V any](k K, v V) Op[K, V] { return Op[K, V]{Kind: OpPut, Key: k, Val: v} }

// Del returns an OpDelete op. V is not inferrable from the arguments;
// either instantiate it explicitly or use an Op literal in a typed
// slice.
func Del[K, V any](k K) Op[K, V] { return Op[K, V]{Kind: OpDelete, Key: k} }

// Store is a sharded serving layer over a persistent augmented map: a
// pam.AugMap[K, V, A, E] hash- or range-partitioned across N
// goroutine-owned shards, with batched sync/async writes and
// snapshot-consistent cross-shard reads (see the package comment for
// the exact guarantees). All methods are safe for concurrent use.
type Store[K, V, A any, E pam.Aug[K, V, A]] struct {
	eng    *engine[Op[K, V], pam.AugMap[K, V, A, E]]
	ranged bool

	policyStop chan struct{}
	policyWg   sync.WaitGroup
	policyOnce sync.Once
}

// pickTuning normalizes the optional trailing Tuning argument of the
// store constructors.
func pickTuning(tuning []Tuning) Tuning {
	if len(tuning) > 0 {
		return tuning[0].withDefaults()
	}
	return Tuning{}.withDefaults()
}

// NewHashStore returns a store hash-partitioned across the given number
// of shards: key k lives in shard hash(k) % shards. Hash must be
// deterministic. With hash partitioning the shards hold interleaved key
// ranges, so View.AugVal and View.AugRange additionally require Combine
// to be commutative (true of the ready-made entries); range queries and
// ordered iteration remain correct regardless via the merged iterator.
// An optional Tuning configures the async pipeline (Tuning.AutoRebalance
// is ignored: hash stores do not rebalance). Returns ErrNoShards when
// shards < 1.
func NewHashStore[K, V, A any, E pam.Aug[K, V, A]](opts pam.Options, shards int, hash func(K) uint64, tuning ...Tuning) (*Store[K, V, A, E], error) {
	if shards < 1 {
		return nil, ErrNoShards
	}
	states := make([]pam.AugMap[K, V, A, E], shards)
	for i := range states {
		states[i] = pam.NewAugMap[K, V, A, E](opts)
	}
	n := uint64(shards)
	route := func(o Op[K, V]) int { return int(hash(o.Key) % n) }
	return &Store[K, V, A, E]{eng: newEngine(states, route, applyMapOps[K, V, A, E], pickTuning(tuning))}, nil
}

// NewRangeStore returns a store range-partitioned at the given split
// keys (strictly increasing in E's order): shard 0 owns keys below
// splits[0], shard i owns splits[i-1] <= k < splits[i], and the last
// shard owns keys at or above the last split — len(splits)+1 shards in
// ascending key order. Range stores support Rebalance, and an optional
// Tuning with AutoRebalance set starts the automatic skew-triggered
// rebalance policy.
func NewRangeStore[K, V, A any, E pam.Aug[K, V, A]](opts pam.Options, splits []K, tuning ...Tuning) *Store[K, V, A, E] {
	states := make([]pam.AugMap[K, V, A, E], len(splits)+1)
	for i := range states {
		states[i] = pam.NewAugMap[K, V, A, E](opts)
	}
	tun := pickTuning(tuning)
	s := &Store[K, V, A, E]{
		eng:    newEngine(states, opRouter[K, V](rangeRouter[K, E](splits)), applyMapOps[K, V, A, E], tun),
		ranged: true,
	}
	if tun.AutoRebalance != nil {
		s.policyStop = make(chan struct{})
		startAutoRebalance(s.eng, *tun.AutoRebalance,
			func(m pam.AugMap[K, V, A, E]) int64 { return m.Size() },
			s.Rebalance, s.policyStop, &s.policyWg)
	}
	return s
}

// rangeRouter routes a key to the count of splits at or below it.
func rangeRouter[K any, E interface{ Less(a, b K) bool }](splits []K) func(K) int {
	var less E
	return func(k K) int {
		lo, hi := 0, len(splits)
		for lo < hi {
			mid := (lo + hi) / 2
			if less.Less(k, splits[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
}

func opRouter[K, V any](key func(K) int) func(Op[K, V]) int {
	return func(o Op[K, V]) int { return key(o.Key) }
}

// applyMapOps adapts applyOps to the engine's per-shard apply
// signature (maps need no per-shard context).
func applyMapOps[K, V, A any, E pam.Aug[K, V, A]](_ int, m pam.AugMap[K, V, A, E], ops []Op[K, V]) pam.AugMap[K, V, A, E] {
	return applyOps(m, ops)
}

// applyOps applies a sub-batch to one shard's map, grouping consecutive
// runs of the same kind into the parallel bulk operations.
func applyOps[K, V, A any, E pam.Aug[K, V, A]](m pam.AugMap[K, V, A, E], ops []Op[K, V]) pam.AugMap[K, V, A, E] {
	for i := 0; i < len(ops); {
		j := i
		for j < len(ops) && ops[j].Kind == ops[i].Kind {
			j++
		}
		if ops[i].Kind == OpPut {
			items := make([]pam.KV[K, V], j-i)
			for t, op := range ops[i:j] {
				items[t] = pam.KV[K, V]{Key: op.Key, Val: op.Val}
			}
			m = m.MultiInsert(items, nil) // nil combine: last write in the run wins
		} else {
			keys := make([]K, j-i)
			for t, op := range ops[i:j] {
				keys[t] = op.Key
			}
			m = m.MultiDelete(keys)
		}
		i = j
	}
	return m
}

// Apply submits one write batch, blocks until every involved shard has
// applied it and every earlier batch has resolved, and returns the
// batch's global sequence number. Ops apply in slice order; a batch is
// atomic with respect to snapshots. Returns ErrClosed after Close and
// ErrOverloaded under fast-fail backpressure (in both cases no
// sequence number was consumed).
func (s *Store[K, V, A, E]) Apply(ops []Op[K, V]) (uint64, error) { return s.eng.applyBatch(ops) }

// ApplyAsync submits one write batch fire-and-forget and returns its
// completion future: the batch is already sequenced (Future.Seq) but
// may not be applied yet. Shards may hold async batches up to
// Tuning.FlushWait to coalesce them. Futures resolve in global
// sequence order; see the package comment.
func (s *Store[K, V, A, E]) ApplyAsync(ops []Op[K, V]) (*Future, error) {
	return s.eng.applyAsync(ops, false)
}

// Put stores (k, v), overwriting any existing value, and returns the
// write's sequence number.
func (s *Store[K, V, A, E]) Put(k K, v V) (uint64, error) {
	return s.Apply([]Op[K, V]{{Kind: OpPut, Key: k, Val: v}})
}

// PutAsync is the fire-and-forget Put.
func (s *Store[K, V, A, E]) PutAsync(k K, v V) (*Future, error) {
	return s.ApplyAsync([]Op[K, V]{{Kind: OpPut, Key: k, Val: v}})
}

// Delete removes k (a no-op when absent) and returns the write's
// sequence number.
func (s *Store[K, V, A, E]) Delete(k K) (uint64, error) {
	return s.Apply([]Op[K, V]{{Kind: OpDelete, Key: k}})
}

// DeleteAsync is the fire-and-forget Delete.
func (s *Store[K, V, A, E]) DeleteAsync(k K) (*Future, error) {
	return s.ApplyAsync([]Op[K, V]{{Kind: OpDelete, Key: k}})
}

// Snapshot assembles a consistent cross-shard view: the store's exact
// contents after the batches sequenced before View.Seq, nothing else.
// Zero-copy (the per-shard maps are persistent); the view stays valid
// forever and is safe to read from any goroutine. Returns ErrClosed
// after Close.
func (s *Store[K, V, A, E]) Snapshot() (View[K, V, A, E], error) {
	states, versions, seq, route, err := s.eng.snapshot()
	if err != nil {
		return View[K, V, A, E]{}, err
	}
	return View[K, V, A, E]{
		shards:   states,
		versions: versions,
		seq:      seq,
		route:    route,
		ranged:   s.ranged,
	}, nil
}

// ReaderView assembles a read-only replica view from the per-shard
// states last published at an epoch boundary, without touching the
// sequencer: replica reads are lock-free and scale independently of
// writers, snapshotters, and each other. The staleness contract is
// per-shard prefix consistency — each shard's slice of the view equals
// that shard's state after some prefix of its applied sub-batches
// (epochs and versions, see View.Epochs, only ever move forward) — but
// unlike Snapshot the shards are not cut at one sequence point, so a
// cross-shard batch may be partially visible and View.Seq is 0. Use
// Snapshot when atomicity across shards matters; use ReaderView for
// read traffic that only needs fresh-enough monotone data. Returns
// ErrClosed after Close; views obtained earlier remain valid.
func (s *Store[K, V, A, E]) ReaderView() (View[K, V, A, E], error) {
	p, err := s.eng.readerView()
	if err != nil {
		return View[K, V, A, E]{}, err
	}
	return View[K, V, A, E]{
		shards:   p.states,
		versions: p.versions,
		epochs:   p.epochs,
		route:    p.route,
		ranged:   s.ranged,
	}, nil
}

// Stats samples the per-shard pipeline counters: queued (admission
// budget charge) and applied batch/op counts plus the flush-latency
// EWMA feeding the auto-rebalance policy.
func (s *Store[K, V, A, E]) Stats() []ShardStats { return s.eng.stats() }

// NumShards returns the partition count.
func (s *Store[K, V, A, E]) NumShards() int { return s.eng.numShards() }

// Close stops the auto-rebalance policy (if any) and the shard
// goroutines. In-flight batches are flushed and their futures resolve;
// subsequent writes return ErrClosed. Views taken earlier remain valid.
func (s *Store[K, V, A, E]) Close() {
	s.policyOnce.Do(func() {
		if s.policyStop != nil {
			close(s.policyStop)
			s.policyWg.Wait()
		}
	})
	s.eng.close()
}

// Rebalance re-splits a range-partitioned store so shard sizes are
// equal to within one entry, moving whole subtrees between shards via
// persistent Split/Concat. It blocks writers and snapshotters for the
// duration (readers of existing views are untouched), changes no
// logical content, and consumes no sequence number. Returns false (and
// does nothing) on hash-partitioned stores, whose balance is up to the
// hash, and ErrClosed after Close. With Tuning.AutoRebalance set this
// fires automatically on sustained size or latency skew.
func (s *Store[K, V, A, E]) Rebalance() (bool, error) {
	if !s.ranged {
		return false, nil
	}
	type T = pam.AugMap[K, V, A, E]
	err := s.eng.rebalance(func(states []T) ([]T, func(Op[K, V]) int) {
		n := len(states)
		cum := make([]int64, n+1)
		for i, st := range states {
			cum[i+1] = cum[i] + st.Size()
		}
		total := cum[n]
		if total == 0 || n == 1 {
			return states, nil
		}
		// New split j sits at global rank j*total/n; the states are
		// disjoint ascending ranges, so rank r is Select(r - cum[i]) in
		// the shard i whose cumulative range covers r.
		splits := make([]K, 0, n-1)
		for j := 1; j < n; j++ {
			r := int64(j) * total / int64(n)
			if r >= total {
				r = total - 1
			}
			si := sort.Search(n, func(i int) bool { return cum[i+1] > r })
			k, _, _ := states[si].Select(r - cum[si])
			splits = append(splits, k)
		}
		return cutStates(states, splits), opRouter[K, V](rangeRouter[K, E](splits))
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

// cutStates re-slices ordered disjoint range shards at the new splits:
// each old shard is cut by persistent Split, and each new shard is the
// ordered concatenation of its pieces (a split key belongs to the shard
// at or above it, matching rangeRouter).
func cutStates[K, V, A any, E pam.Aug[K, V, A]](states []pam.AugMap[K, V, A, E], splits []K) []pam.AugMap[K, V, A, E] {
	n := len(states)
	out := make([]pam.AugMap[K, V, A, E], n)
	filled := make([]bool, n)
	add := func(i int, piece pam.AugMap[K, V, A, E]) {
		if !filled[i] {
			out[i], filled[i] = piece, true
			return
		}
		out[i] = out[i].Concat(piece)
	}
	for _, st := range states {
		rem := st
		for j, sp := range splits {
			left, v, found, right := rem.Split(sp)
			if found {
				right = right.Insert(sp, v)
			}
			add(j, left)
			rem = right
		}
		add(n-1, rem)
	}
	return out
}
