package serve

import (
	"encoding/binary"
	"hash/crc32"
	"sync"
	"time"
)

// Background scrubbing: a store-agnostic loop that periodically re-reads
// and verifies every sealed durable file, quarantines corrupt ones, and
// triggers a repair (compaction of the live state into a fresh base).
// DurableStore and DurablePointStore plug in through scrubHooks; the
// scrubber itself only paces passes, throttles bandwidth, and keeps
// counters.

// ScrubStats reports a background scrubber's lifetime counters.
type ScrubStats struct {
	// Passes is the number of completed verification passes.
	Passes int
	// FilesChecked and BytesChecked total the files and bytes verified
	// across all passes.
	FilesChecked int
	BytesChecked int64
	// CorruptFound counts corrupt files detected (before repair).
	CorruptFound int
	// Quarantined counts files renamed aside with the .quarantine
	// suffix.
	Quarantined int
	// Repairs counts successful repairs: a fresh base checkpoint written
	// from the live state after quarantining.
	Repairs int
}

// scrubHooks is what a store gives its scrubber.
type scrubHooks struct {
	// epoch returns a counter bumped whenever the file set changes
	// (checkpoint, compaction, quarantine); a pass whose epoch moved
	// discards its verdicts instead of acting on stale reads.
	epoch func() uint64
	// verify runs one check-only pass and returns the corrupt file
	// names plus the files and bytes it read.
	verify func() (corrupt []string, files, bytes int, err error)
	// repair quarantines the given files and rewrites a fresh base
	// checkpoint from the live state.
	repair func(corrupt []string) error
	// onErr records a background error (the store's sticky Err).
	onErr func(error)
}

type scrubber struct {
	every time.Duration
	bps   int
	h     scrubHooks

	mu    sync.Mutex
	stats ScrubStats

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// startScrubber launches the background loop; Stop joins it.
func startScrubber(every time.Duration, bps int, h scrubHooks) *scrubber {
	sc := &scrubber{every: every, bps: bps, h: h, stop: make(chan struct{}), done: make(chan struct{})}
	go sc.run()
	return sc
}

func (sc *scrubber) run() {
	defer close(sc.done)
	wait := sc.every
	for {
		select {
		case <-sc.stop:
			return
		case <-time.After(wait):
		}
		wait = sc.every + sc.pass()
	}
}

// pass runs one verify-and-repair cycle and returns the extra delay the
// bandwidth throttle asks for before the next pass.
func (sc *scrubber) pass() time.Duration {
	e := sc.h.epoch()
	corrupt, files, bytes, err := sc.h.verify()
	sc.mu.Lock()
	sc.stats.Passes++
	sc.stats.FilesChecked += files
	sc.stats.BytesChecked += int64(bytes)
	sc.mu.Unlock()
	if err != nil {
		sc.h.onErr(err)
		return 0
	}
	// Act only if the file set is still the one we verified: a
	// checkpoint or compaction mid-pass may have retired the files the
	// verdicts are about (they will be re-verified next pass if not).
	if len(corrupt) > 0 && sc.h.epoch() == e {
		sc.mu.Lock()
		sc.stats.CorruptFound += len(corrupt)
		sc.mu.Unlock()
		if rerr := sc.h.repair(corrupt); rerr != nil {
			sc.h.onErr(rerr)
		} else {
			sc.mu.Lock()
			sc.stats.Quarantined += len(corrupt)
			sc.stats.Repairs++
			sc.mu.Unlock()
		}
	}
	if sc.bps > 0 && bytes > 0 {
		return time.Duration(float64(bytes) / float64(sc.bps) * float64(time.Second))
	}
	return 0
}

// Stats samples the lifetime counters.
func (sc *scrubber) Stats() ScrubStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.stats
}

// Stop terminates the loop and joins the goroutine; safe to call more
// than once.
func (sc *scrubber) Stop() {
	sc.once.Do(func() { close(sc.stop) })
	<-sc.done
}

// VerifyReport summarizes a VerifyFiles pass.
type VerifyReport struct {
	// Files and Bytes total what was checked.
	Files int
	Bytes int64
	// Corrupt lists files failing the structural checks.
	Corrupt []string
}

// VerifyFiles runs the codec-independent integrity checks over a durable
// store's directory: checkpoint magic, CRC, header framing, and chain
// continuity (each file's firstID must continue the previous file's
// records, restarting at each base); point-store checkpoint CRC and
// whole-file digest; WAL record framing (a torn tail is tolerated only
// in the newest generation, where a crash legitimately leaves one).
// It reads but never modifies files, and needs no key/value codec — it
// cannot verify Merkle record digests (DurableStore.Verify does), but
// any structural or checksum damage is reported. cmd/pamverify is its
// command-line front end.
func VerifyFiles(fsys FS) (VerifyReport, error) {
	names, err := fsys.List()
	if err != nil {
		return VerifyReport{}, err
	}
	ckpts, walGens := parseDurableDir(names)
	var rep VerifyReport
	var nextID uint64
	haveChain := false
	for _, idx := range ckpts {
		data, err := fsys.ReadFile(ckptName(idx))
		if err != nil {
			continue
		}
		rep.Files++
		rep.Bytes += int64(len(data))
		if !verifyCkptStructure(data, &nextID, &haveChain) {
			rep.Corrupt = append(rep.Corrupt, ckptName(idx))
		}
	}
	for i, g := range walGens {
		data, err := fsys.ReadFile(walName(g))
		if err != nil {
			continue
		}
		rep.Files++
		rep.Bytes += int64(len(data))
		if !verifyWALFraming(data, i == len(walGens)-1) {
			rep.Corrupt = append(rep.Corrupt, walName(g))
		}
	}
	return rep, nil
}

// verifyCkptStructure checks one checkpoint file without a codec:
// magic, CRC, header framing, and (for chain files) firstID continuity.
// nextID/haveChain carry the chain state across files; a corrupt file
// resets it so later files aren't blamed for the hole.
func verifyCkptStructure(data []byte, nextID *uint64, haveChain *bool) bool {
	if len(data) >= len(ptCkptMagic) && string(data[:len(ptCkptMagic)]) == ptCkptMagic {
		return verifyPtCkptStructure(data)
	}
	hdr, ok := ckptHeaderFull(data)
	if !ok || len(data) < len(ckptMagic)+4 {
		*haveChain = false
		return false
	}
	body := data[: len(data)-4 : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		*haveChain = false
		return false
	}
	firstID, nRecs := hdr[2], hdr[3]
	if firstID == 1 {
		*haveChain = true
		*nextID = 1
	}
	if !*haveChain || firstID != *nextID {
		*haveChain = false
		return false
	}
	*nextID = firstID + nRecs
	return true
}

// verifyWALFraming checks that data is a sequence of complete,
// checksummed WAL records; when allowTorn, a trailing torn record is
// accepted (the newest generation after a crash without recovery).
func verifyWALFraming(data []byte, allowTorn bool) bool {
	valid := 0
	for {
		rest := data[valid:]
		if len(rest) == 0 {
			return true
		}
		if len(rest) < 8 {
			return allowTorn
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen < 0 || len(rest)-8 < plen {
			return allowTorn
		}
		if crc32.ChecksumIEEE(rest[8:8+plen]) != crc {
			// A torn write lands a prefix, never a complete frame with
			// wrong bytes — a full frame failing its checksum is damage.
			return false
		}
		valid += 8 + plen
	}
}
