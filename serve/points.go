package serve

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/dynamic"
	"repro/pam"
	"repro/rangetree"
)

// PointOp is one write of a PointStore batch.
type PointOp struct {
	Kind OpKind
	P    rangetree.Point
	W    int64 // ignored by OpDelete
}

// InsertPoint returns an OpPut point op (weights of an already-present
// point add, matching rangetree.Tree.Insert).
func InsertPoint(p rangetree.Point, w int64) PointOp { return PointOp{Kind: OpPut, P: p, W: w} }

// DeletePoint returns an OpDelete point op.
func DeletePoint(p rangetree.Point) PointOp { return PointOp{Kind: OpDelete, P: p} }

// PointStore shards a dynamic 2D range tree (rangetree.Tree, backed by
// the internal/dynamic ladder) across goroutine-owned x-range
// partitions, so spatial queries are servable under the same
// snapshot-consistency guarantee as Store: each shard's ladder carries
// its own write buffer and geometric levels, and a snapshot freezes all
// of them at one sequencer point. All methods are safe for concurrent
// use.
type PointStore struct {
	eng   *engine[PointOp, rangetree.Tree]
	proto rangetree.Tree // empty tree with the configured options, for rebuilds

	// pool/carriers implement background ladder carries
	// (Tuning.CarryWorkers > 0): one carrier per shard schedules that
	// shard's deferred level merges onto the shared worker pool.
	pool     *dynamic.CarryPool
	carriers []*rangetree.Carrier
	// splits is the active x-partition vector, swapped by Rebalance
	// (observable via Splits without taking the sequencer).
	splits atomic.Pointer[[]float64]

	policyStop chan struct{}
	policyWg   sync.WaitGroup
	policyOnce sync.Once
}

// NewPointStore returns a point store partitioned at the given strictly
// increasing x splits (len(splits)+1 shards): a point belongs to the
// shard of its x coordinate, points with x at or above a split go
// right. Point stores support Rebalance, and an optional Tuning with
// AutoRebalance set starts the automatic skew-triggered rebalance
// policy; Tuning.CarryWorkers > 0 moves ladder carry cascades off the
// shard goroutines onto a background pool.
func NewPointStore(opts pam.Options, splits []float64, tuning ...Tuning) *PointStore {
	states := make([]rangetree.Tree, len(splits)+1)
	for i := range states {
		states[i] = rangetree.New(opts)
	}
	tun := pickTuning(tuning)
	s := newPointStoreAt(opts, splits, states, 0, hooks[PointOp]{}, tun)
	if tun.AutoRebalance != nil {
		s.policyStop = make(chan struct{})
		startAutoRebalance(s.eng, *tun.AutoRebalance,
			func(t rangetree.Tree) int64 { return t.Size() },
			s.Rebalance, s.policyStop, &s.policyWg)
	}
	return s
}

// newPointStoreAt wires a point store around pre-built shard states —
// shared by NewPointStore and the durable recovery path. When
// tun.CarryWorkers > 0 it builds the carry pool and per-shard carriers
// and binds the carrier-aware apply.
func newPointStoreAt(opts pam.Options, splits []float64, states []rangetree.Tree, startSeq uint64, h hooks[PointOp], tun Tuning) *PointStore {
	tun = tun.withDefaults()
	s := &PointStore{proto: rangetree.New(opts)}
	sp := append([]float64(nil), splits...)
	s.splits.Store(&sp)
	apply := func(_ int, t rangetree.Tree, ops []PointOp) rangetree.Tree {
		return applyPointOps(t, ops)
	}
	if tun.CarryWorkers > 0 {
		s.pool = dynamic.NewCarryPool(tun.CarryWorkers)
		s.carriers = make([]*rangetree.Carrier, len(states))
		for i := range s.carriers {
			s.carriers[i] = rangetree.NewCarrier(s.pool, tun.MaxPendingCarries)
		}
		apply = func(i int, t rangetree.Tree, ops []PointOp) rangetree.Tree {
			return applyPointOpsWith(s.carriers[i], t, ops)
		}
	}
	s.eng = newEngineAt(states, pointRouter(splits), apply, startSeq, h, tun)
	return s
}

// pointRouter routes a point to the count of splits at or below its x.
// A NaN x compares false against every split and lands deterministically
// in the last shard — but writes reject NaN coordinates with
// ErrNaNPoint before routing, so only crafted states can carry one.
func pointRouter(splits []float64) func(PointOp) int {
	return func(o PointOp) int {
		lo, hi := 0, len(splits)
		for lo < hi {
			mid := (lo + hi) / 2
			if o.P.X < splits[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
}

// applyPointOps feeds a sub-batch through the shard tree's ladder;
// carry cascades and condenses happen here, inside the shard goroutine
// (the synchronous path, and WAL replay at recovery).
func applyPointOps(t rangetree.Tree, ops []PointOp) rangetree.Tree {
	for _, op := range ops {
		if op.Kind == OpPut {
			t = t.Insert(op.P, op.W)
		} else {
			t = t.Delete(op.P)
		}
	}
	return t
}

// applyPointOpsWith is applyPointOps with the carry cascades deferred
// to the shard's carrier: full write buffers spill to overflow runs
// that background workers merge into the levels, so the shard
// goroutine's per-op cost stays O(log n) + O(cap).
func applyPointOpsWith(c *rangetree.Carrier, t rangetree.Tree, ops []PointOp) rangetree.Tree {
	for _, op := range ops {
		if op.Kind == OpPut {
			t = t.InsertWith(c, op.P, op.W)
		} else {
			t = t.DeleteWith(c, op.P)
		}
	}
	return t
}

// checkPointOps rejects batches containing NaN coordinates (NaN is
// unordered: such a point could never be routed or queried coherently).
func checkPointOps(ops []PointOp) error {
	for _, op := range ops {
		if math.IsNaN(op.P.X) || math.IsNaN(op.P.Y) {
			return ErrNaNPoint
		}
	}
	return nil
}

// Apply submits one write batch, blocks until every involved shard has
// applied it and every earlier batch has resolved, and returns the
// batch's global sequence number. Returns ErrClosed after Close,
// ErrOverloaded under fast-fail backpressure, and ErrNaNPoint for a
// batch containing a NaN coordinate (in every case no sequence number
// was consumed).
func (s *PointStore) Apply(ops []PointOp) (uint64, error) {
	if err := checkPointOps(ops); err != nil {
		return 0, err
	}
	return s.eng.applyBatch(ops)
}

// ApplyAsync submits one write batch fire-and-forget and returns its
// completion future; see Store.ApplyAsync. Batches with NaN
// coordinates are rejected with ErrNaNPoint before sequencing.
func (s *PointStore) ApplyAsync(ops []PointOp) (*Future, error) {
	if err := checkPointOps(ops); err != nil {
		return nil, err
	}
	return s.eng.applyAsync(ops, false)
}

// Insert adds the weighted point (weights add for an already-present
// point) and returns the write's sequence number.
func (s *PointStore) Insert(p rangetree.Point, w int64) (uint64, error) {
	return s.Apply([]PointOp{InsertPoint(p, w)})
}

// InsertAsync is the fire-and-forget Insert.
func (s *PointStore) InsertAsync(p rangetree.Point, w int64) (*Future, error) {
	return s.ApplyAsync([]PointOp{InsertPoint(p, w)})
}

// Delete removes the point (a no-op when absent) and returns the
// write's sequence number.
func (s *PointStore) Delete(p rangetree.Point) (uint64, error) {
	return s.Apply([]PointOp{DeletePoint(p)})
}

// DeleteAsync is the fire-and-forget Delete.
func (s *PointStore) DeleteAsync(p rangetree.Point) (*Future, error) {
	return s.ApplyAsync([]PointOp{DeletePoint(p)})
}

// Stats samples the per-shard pipeline counters; see Store.Stats.
func (s *PointStore) Stats() []ShardStats { return s.eng.stats() }

// Snapshot assembles a consistent cross-shard view of the point set;
// see Store.Snapshot for the guarantee. Returns ErrClosed after Close.
func (s *PointStore) Snapshot() (PointView, error) {
	states, versions, seq, route, err := s.eng.snapshot()
	if err != nil {
		return PointView{}, err
	}
	return PointView{shards: states, versions: versions, seq: seq, route: route}, nil
}

// ReaderView assembles a read-only replica view from the per-shard
// trees last published at an epoch boundary, without touching the
// sequencer; see Store.ReaderView for the staleness contract
// (per-shard prefix consistency, monotone epochs, no cross-shard
// atomicity, Seq reports 0). Shard trees may carry spilled overflow
// runs whose background carry is still in flight — queries on them are
// exact regardless. Returns ErrClosed after Close.
func (s *PointStore) ReaderView() (PointView, error) {
	p, err := s.eng.readerView()
	if err != nil {
		return PointView{}, err
	}
	return PointView{shards: p.states, versions: p.versions, epochs: p.epochs, route: p.route}, nil
}

// Splits returns the active x-partition vector (a copy). Rebalance
// swaps it atomically with the router.
func (s *PointStore) Splits() []float64 {
	return append([]float64(nil), (*s.splits.Load())...)
}

// PendingCarries sums the per-shard overflow runs awaiting a background
// carry, sampled from the last published replica states (always 0 when
// Tuning.CarryWorkers is 0).
func (s *PointStore) PendingCarries() int {
	p := s.eng.pub.Load()
	var n int
	for _, t := range p.states {
		n += t.PendingCarries()
	}
	return n
}

// NumShards returns the partition count.
func (s *PointStore) NumShards() int { return s.eng.numShards() }

// Close stops the auto-rebalance policy (if any) and the shard
// goroutines, then the carry workers: in-flight background carries
// finish (shards waiting on one are woken) before the pool shuts down.
// See Store.Close.
func (s *PointStore) Close() {
	s.policyOnce.Do(func() {
		if s.policyStop != nil {
			close(s.policyStop)
			s.policyWg.Wait()
		}
	})
	s.eng.close()
	if s.pool != nil {
		s.pool.Close()
	}
}

// everything is the whole plane.
var everything = rangetree.Rect{
	XLo: math.Inf(-1), XHi: math.Inf(1),
	YLo: math.Inf(-1), YHi: math.Inf(1),
}

// Rebalance re-splits the x partitions so shard point counts are as
// equal as the distinct x coordinates allow (routing is by x, so
// points sharing an x can never be split across shards), rebuilding
// each shard tree (fully condensed ladders) from the redistributed
// points. Blocks writers and snapshotters for the duration; changes no
// logical content. Returns ErrClosed after Close.
func (s *PointStore) Rebalance() (bool, error) {
	err := s.eng.rebalance(func(states []rangetree.Tree) ([]rangetree.Tree, func(PointOp) int) {
		n := len(states)
		var pts []rangetree.Weighted
		for _, t := range states {
			pts = append(pts, t.ReportAll(everything)...)
		}
		if len(pts) == 0 || n == 1 {
			return states, nil
		}
		// states are ascending x ranges and ReportAll sorts by (x, y),
		// so pts is globally sorted; split j at rank j*len/n, advanced
		// past any x already used so splits stay strictly increasing
		// (a dominant x value would otherwise produce duplicate splits
		// and unroutable empty shards).
		splits := make([]float64, 0, n-1)
		for j := 1; j < n; j++ {
			r := j * len(pts) / n
			if r >= len(pts) {
				r = len(pts) - 1
			}
			x := pts[r].X
			for len(splits) > 0 && x <= splits[len(splits)-1] {
				for r < len(pts) && pts[r].X <= splits[len(splits)-1] {
					r++
				}
				if r == len(pts) {
					break
				}
				x = pts[r].X
			}
			if len(splits) > 0 && x <= splits[len(splits)-1] {
				break // no distinct x left; fewer, strictly increasing splits
			}
			splits = append(splits, x)
		}
		// Pad with strictly increasing splits above every point so the
		// shard count is preserved; the trailing shards stay empty (with
		// fewer distinct xs than shards, some must). Nextafter steps one
		// representable float at a time — pad++ would be a no-op for
		// x >= 2^53 (1 is below the ulp) and for ±Inf, looping forever.
		pad := pts[len(pts)-1].X
		if len(splits) > 0 && splits[len(splits)-1] > pad {
			pad = splits[len(splits)-1]
		}
		for len(splits) < n-1 {
			next := math.Nextafter(pad, math.Inf(1))
			if next == pad {
				break // pinned at +Inf; pad downward instead
			}
			pad = next
			splits = append(splits, pad)
		}
		if len(splits) < n-1 {
			// The top is pinned at +Inf: prepend strictly decreasing
			// splits below every point, so the *leading* shards go empty.
			low := pts[0].X
			if len(splits) > 0 && splits[0] < low {
				low = splits[0]
			}
			var lower []float64
			for len(splits)+len(lower) < n-1 {
				next := math.Nextafter(low, math.Inf(-1))
				if next == low {
					break // the whole float line is exhausted
				}
				low = next
				lower = append(lower, low)
			}
			slices.Reverse(lower)
			splits = append(lower, splits...)
		}
		route := pointRouter(splits)
		buckets := make([][]rangetree.Weighted, n)
		for _, p := range pts {
			i := route(PointOp{P: p.Point})
			buckets[i] = append(buckets[i], p)
		}
		newStates := make([]rangetree.Tree, n)
		for i := range newStates {
			newStates[i] = s.proto.Build(buckets[i])
		}
		// Shards are frozen at markers here: discard in-flight background
		// carries against the old trees and publish the new partition.
		for _, c := range s.carriers {
			c.Invalidate()
		}
		sp := append([]float64(nil), splits...)
		s.splits.Store(&sp)
		return newStates, route
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

// PointView is a consistent cross-shard snapshot of a PointStore. The
// shard trees are immutable; every query sums or concatenates disjoint
// per-shard answers.
type PointView struct {
	shards   []rangetree.Tree
	versions []uint64
	epochs   []uint64 // non-nil only for replica views (ReaderView)
	seq      uint64
	route    func(PointOp) int
}

// Seq returns the snapshot's position in the global write sequence: the
// view contains exactly the batches sequenced before it. Replica views
// (ReaderView) are not cut at a sequence point and report 0.
func (v PointView) Seq() uint64 { return v.seq }

// Versions returns the per-shard version vector (applied sub-batch
// counts); treat it as read-only.
func (v PointView) Versions() []uint64 { return v.versions }

// Epochs returns the per-shard replica-publication epochs for views
// from ReaderView (componentwise nondecreasing across successive
// replica views), or nil for marker-based snapshots. Treat it as
// read-only.
func (v PointView) Epochs() []uint64 { return v.epochs }

// NumShards returns the partition count.
func (v PointView) NumShards() int { return len(v.shards) }

// Shard exposes one frozen shard tree.
func (v PointView) Shard(i int) rangetree.Tree { return v.shards[i] }

// Size returns the number of distinct points.
func (v PointView) Size() int64 {
	var n int64
	for _, t := range v.shards {
		n += t.Size()
	}
	return n
}

// Weight returns the weight at p.
func (v PointView) Weight(p rangetree.Point) (int64, bool) {
	return v.shards[v.route(PointOp{P: p})].Weight(p)
}

// Contains reports whether the point is present.
func (v PointView) Contains(p rangetree.Point) bool {
	_, ok := v.Weight(p)
	return ok
}

// QuerySum returns the total weight inside r, summing the disjoint
// per-shard answers.
func (v PointView) QuerySum(r rangetree.Rect) int64 {
	var sum int64
	for _, t := range v.shards {
		sum += t.QuerySum(r)
	}
	return sum
}

// QueryCount returns the number of points inside r.
func (v PointView) QueryCount(r rangetree.Rect) int64 {
	var n int64
	for _, t := range v.shards {
		n += t.QueryCount(r)
	}
	return n
}

// ReportAll returns the points inside r with their weights, sorted by
// (x, y): the shards are ascending disjoint x ranges, so concatenating
// their sorted reports is already globally sorted.
func (v PointView) ReportAll(r rangetree.Rect) []rangetree.Weighted {
	var out []rangetree.Weighted
	for _, t := range v.shards {
		out = append(out, t.ReportAll(r)...)
	}
	return out
}
