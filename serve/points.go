package serve

import (
	"math"
	"sync"

	"repro/pam"
	"repro/rangetree"
)

// PointOp is one write of a PointStore batch.
type PointOp struct {
	Kind OpKind
	P    rangetree.Point
	W    int64 // ignored by OpDelete
}

// InsertPoint returns an OpPut point op (weights of an already-present
// point add, matching rangetree.Tree.Insert).
func InsertPoint(p rangetree.Point, w int64) PointOp { return PointOp{Kind: OpPut, P: p, W: w} }

// DeletePoint returns an OpDelete point op.
func DeletePoint(p rangetree.Point) PointOp { return PointOp{Kind: OpDelete, P: p} }

// PointStore shards a dynamic 2D range tree (rangetree.Tree, backed by
// the internal/dynamic ladder) across goroutine-owned x-range
// partitions, so spatial queries are servable under the same
// snapshot-consistency guarantee as Store: each shard's ladder carries
// its own write buffer and geometric levels, and a snapshot freezes all
// of them at one sequencer point. All methods are safe for concurrent
// use.
type PointStore struct {
	eng   *engine[PointOp, rangetree.Tree]
	proto rangetree.Tree // empty tree with the configured options, for rebuilds

	policyStop chan struct{}
	policyWg   sync.WaitGroup
	policyOnce sync.Once
}

// NewPointStore returns a point store partitioned at the given strictly
// increasing x splits (len(splits)+1 shards): a point belongs to the
// shard of its x coordinate, points with x at or above a split go
// right. Point stores support Rebalance, and an optional Tuning with
// AutoRebalance set starts the automatic skew-triggered rebalance
// policy.
func NewPointStore(opts pam.Options, splits []float64, tuning ...Tuning) *PointStore {
	states := make([]rangetree.Tree, len(splits)+1)
	for i := range states {
		states[i] = rangetree.New(opts)
	}
	tun := pickTuning(tuning)
	s := &PointStore{
		eng:   newEngine(states, pointRouter(splits), applyPointOps, tun),
		proto: rangetree.New(opts),
	}
	if tun.AutoRebalance != nil {
		s.policyStop = make(chan struct{})
		startAutoRebalance(s.eng, *tun.AutoRebalance,
			func(t rangetree.Tree) int64 { return t.Size() },
			s.Rebalance, s.policyStop, &s.policyWg)
	}
	return s
}

// pointRouter routes a point to the count of splits at or below its x.
func pointRouter(splits []float64) func(PointOp) int {
	return func(o PointOp) int {
		lo, hi := 0, len(splits)
		for lo < hi {
			mid := (lo + hi) / 2
			if o.P.X < splits[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
}

// applyPointOps feeds a sub-batch through the shard tree's ladder;
// carry cascades and condenses happen here, inside the shard goroutine.
func applyPointOps(t rangetree.Tree, ops []PointOp) rangetree.Tree {
	for _, op := range ops {
		if op.Kind == OpPut {
			t = t.Insert(op.P, op.W)
		} else {
			t = t.Delete(op.P)
		}
	}
	return t
}

// Apply submits one write batch, blocks until every involved shard has
// applied it and every earlier batch has resolved, and returns the
// batch's global sequence number. Returns ErrClosed after Close and
// ErrOverloaded under fast-fail backpressure.
func (s *PointStore) Apply(ops []PointOp) (uint64, error) { return s.eng.applyBatch(ops) }

// ApplyAsync submits one write batch fire-and-forget and returns its
// completion future; see Store.ApplyAsync.
func (s *PointStore) ApplyAsync(ops []PointOp) (*Future, error) {
	return s.eng.applyAsync(ops, false)
}

// Insert adds the weighted point (weights add for an already-present
// point) and returns the write's sequence number.
func (s *PointStore) Insert(p rangetree.Point, w int64) (uint64, error) {
	return s.Apply([]PointOp{InsertPoint(p, w)})
}

// InsertAsync is the fire-and-forget Insert.
func (s *PointStore) InsertAsync(p rangetree.Point, w int64) (*Future, error) {
	return s.ApplyAsync([]PointOp{InsertPoint(p, w)})
}

// Delete removes the point (a no-op when absent) and returns the
// write's sequence number.
func (s *PointStore) Delete(p rangetree.Point) (uint64, error) {
	return s.Apply([]PointOp{DeletePoint(p)})
}

// DeleteAsync is the fire-and-forget Delete.
func (s *PointStore) DeleteAsync(p rangetree.Point) (*Future, error) {
	return s.ApplyAsync([]PointOp{DeletePoint(p)})
}

// Stats samples the per-shard pipeline counters; see Store.Stats.
func (s *PointStore) Stats() []ShardStats { return s.eng.stats() }

// Snapshot assembles a consistent cross-shard view of the point set;
// see Store.Snapshot for the guarantee. Returns ErrClosed after Close.
func (s *PointStore) Snapshot() (PointView, error) {
	states, versions, seq, route, err := s.eng.snapshot()
	if err != nil {
		return PointView{}, err
	}
	return PointView{shards: states, versions: versions, seq: seq, route: route}, nil
}

// NumShards returns the partition count.
func (s *PointStore) NumShards() int { return s.eng.numShards() }

// Close stops the auto-rebalance policy (if any) and the shard
// goroutines; see Store.Close.
func (s *PointStore) Close() {
	s.policyOnce.Do(func() {
		if s.policyStop != nil {
			close(s.policyStop)
			s.policyWg.Wait()
		}
	})
	s.eng.close()
}

// everything is the whole plane.
var everything = rangetree.Rect{
	XLo: math.Inf(-1), XHi: math.Inf(1),
	YLo: math.Inf(-1), YHi: math.Inf(1),
}

// Rebalance re-splits the x partitions so shard point counts are as
// equal as the distinct x coordinates allow (routing is by x, so
// points sharing an x can never be split across shards), rebuilding
// each shard tree (fully condensed ladders) from the redistributed
// points. Blocks writers and snapshotters for the duration; changes no
// logical content. Returns ErrClosed after Close.
func (s *PointStore) Rebalance() (bool, error) {
	err := s.eng.rebalance(func(states []rangetree.Tree) ([]rangetree.Tree, func(PointOp) int) {
		n := len(states)
		var pts []rangetree.Weighted
		for _, t := range states {
			pts = append(pts, t.ReportAll(everything)...)
		}
		if len(pts) == 0 || n == 1 {
			return states, nil
		}
		// states are ascending x ranges and ReportAll sorts by (x, y),
		// so pts is globally sorted; split j at rank j*len/n, advanced
		// past any x already used so splits stay strictly increasing
		// (a dominant x value would otherwise produce duplicate splits
		// and unroutable empty shards).
		splits := make([]float64, 0, n-1)
		for j := 1; j < n; j++ {
			r := j * len(pts) / n
			if r >= len(pts) {
				r = len(pts) - 1
			}
			x := pts[r].X
			for len(splits) > 0 && x <= splits[len(splits)-1] {
				for r < len(pts) && pts[r].X <= splits[len(splits)-1] {
					r++
				}
				if r == len(pts) {
					break
				}
				x = pts[r].X
			}
			if len(splits) > 0 && x <= splits[len(splits)-1] {
				break // no distinct x left; fewer, strictly increasing splits
			}
			splits = append(splits, x)
		}
		for pad := pts[len(pts)-1].X; len(splits) < n-1; {
			// Pad with strictly increasing splits above every point so
			// the shard count is preserved; the trailing shards stay
			// empty (with fewer distinct xs than shards, some must).
			pad++
			splits = append(splits, pad)
		}
		route := pointRouter(splits)
		buckets := make([][]rangetree.Weighted, n)
		for _, p := range pts {
			i := route(PointOp{P: p.Point})
			buckets[i] = append(buckets[i], p)
		}
		newStates := make([]rangetree.Tree, n)
		for i := range newStates {
			newStates[i] = s.proto.Build(buckets[i])
		}
		return newStates, route
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

// PointView is a consistent cross-shard snapshot of a PointStore. The
// shard trees are immutable; every query sums or concatenates disjoint
// per-shard answers.
type PointView struct {
	shards   []rangetree.Tree
	versions []uint64
	seq      uint64
	route    func(PointOp) int
}

// Seq returns the snapshot's position in the global write sequence: the
// view contains exactly the batches sequenced before it.
func (v PointView) Seq() uint64 { return v.seq }

// Versions returns the per-shard version vector (applied sub-batch
// counts); treat it as read-only.
func (v PointView) Versions() []uint64 { return v.versions }

// NumShards returns the partition count.
func (v PointView) NumShards() int { return len(v.shards) }

// Shard exposes one frozen shard tree.
func (v PointView) Shard(i int) rangetree.Tree { return v.shards[i] }

// Size returns the number of distinct points.
func (v PointView) Size() int64 {
	var n int64
	for _, t := range v.shards {
		n += t.Size()
	}
	return n
}

// Weight returns the weight at p.
func (v PointView) Weight(p rangetree.Point) (int64, bool) {
	return v.shards[v.route(PointOp{P: p})].Weight(p)
}

// Contains reports whether the point is present.
func (v PointView) Contains(p rangetree.Point) bool {
	_, ok := v.Weight(p)
	return ok
}

// QuerySum returns the total weight inside r, summing the disjoint
// per-shard answers.
func (v PointView) QuerySum(r rangetree.Rect) int64 {
	var sum int64
	for _, t := range v.shards {
		sum += t.QuerySum(r)
	}
	return sum
}

// QueryCount returns the number of points inside r.
func (v PointView) QueryCount(r rangetree.Rect) int64 {
	var n int64
	for _, t := range v.shards {
		n += t.QueryCount(r)
	}
	return n
}

// ReportAll returns the points inside r with their weights, sorted by
// (x, y): the shards are ascending disjoint x ranges, so concatenating
// their sorted reports is already globally sorted.
func (v PointView) ReportAll(r rangetree.Rect) []rangetree.Weighted {
	var out []rangetree.Weighted
	for _, t := range v.shards {
		out = append(out, t.ReportAll(r)...)
	}
	return out
}
