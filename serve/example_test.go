package serve_test

import (
	"fmt"

	"repro/internal/seq"
	"repro/pam"
	"repro/serve"
)

// Example serves a sum-augmented map from four range-partitioned
// shards: batched writes go through the shard mailboxes, and Snapshot
// assembles a consistent zero-copy view that answers point lookups,
// augmented range sums, and merged ordered iteration.
func Example() {
	// Keys 0..99 | 100..199 | 200..299 | 300.. across four shards.
	store := serve.NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
		pam.Options{}, []uint64{100, 200, 300})
	defer store.Close()

	// One atomic batch spanning three shards.
	store.Apply([]serve.Op[uint64, int64]{
		serve.Put[uint64, int64](42, 10),
		serve.Put[uint64, int64](150, 20),
		serve.Put[uint64, int64](250, 30),
	})
	store.Put(350, 40)
	store.Delete(150)

	v, _ := store.Snapshot()
	if val, ok := v.Find(42); ok {
		fmt.Println("find 42:", val)
	}
	fmt.Println("size:", v.Size())
	fmt.Println("sum:", v.AugVal())
	fmt.Println("sum 0..299:", v.AugRange(0, 299))
	v.ForEach(func(k uint64, val int64) bool {
		fmt.Println("entry:", k, val)
		return true
	})
	// Output:
	// find 42: 10
	// size: 3
	// sum: 80
	// sum 0..299: 40
	// entry: 42 10
	// entry: 250 30
	// entry: 350 40
}

// ExampleOpenDurableStore walks the durability lifecycle: writes are
// acknowledged only once they reach the write-ahead log, Checkpoint
// persists the shard trees incrementally (only blocks created since the
// previous checkpoint), and reopening the same filesystem recovers the
// checkpoint plus the logged tail — the exact acknowledged history.
func ExampleOpenDurableStore() {
	fs := serve.NewMemFS() // or serve.OSFS{Dir: "/var/lib/mystore"}

	open := func() *serve.DurableStore[uint64, int64, int64, pam.SumEntry[uint64, int64]] {
		d, err := serve.OpenDurableStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
			pam.Options{}, 2, seq.Mix64, pam.Uint64Codec(), serve.DurableConfig{FS: fs})
		if err != nil {
			panic(err)
		}
		return d
	}

	d := open()
	d.Put(1, 10)
	d.Put(2, 20)
	stats, _ := d.Checkpoint() // durable base image
	fmt.Println("checkpointed seq:", stats.Seq)
	d.Put(3, 30) // lands in the WAL generation after the checkpoint
	d.Delete(1)  // ditto
	d.Close()

	d = open() // recovery: checkpoint chain + WAL replay
	defer d.Close()
	v, _ := d.Snapshot()
	fmt.Println("recovered seq:", v.Seq())
	fmt.Println("recovered sum:", v.AugVal())
	v.ForEach(func(k uint64, val int64) bool {
		fmt.Println("entry:", k, val)
		return true
	})
	// Output:
	// checkpointed seq: 2
	// recovered seq: 4
	// recovered sum: 50
	// entry: 2 20
	// entry: 3 30
}
