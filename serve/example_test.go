package serve_test

import (
	"fmt"

	"repro/pam"
	"repro/serve"
)

// Example serves a sum-augmented map from four range-partitioned
// shards: batched writes go through the shard mailboxes, and Snapshot
// assembles a consistent zero-copy view that answers point lookups,
// augmented range sums, and merged ordered iteration.
func Example() {
	// Keys 0..99 | 100..199 | 200..299 | 300.. across four shards.
	store := serve.NewRangeStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
		pam.Options{}, []uint64{100, 200, 300})
	defer store.Close()

	// One atomic batch spanning three shards.
	store.Apply([]serve.Op[uint64, int64]{
		serve.Put[uint64, int64](42, 10),
		serve.Put[uint64, int64](150, 20),
		serve.Put[uint64, int64](250, 30),
	})
	store.Put(350, 40)
	store.Delete(150)

	v := store.Snapshot()
	if val, ok := v.Find(42); ok {
		fmt.Println("find 42:", val)
	}
	fmt.Println("size:", v.Size())
	fmt.Println("sum:", v.AugVal())
	fmt.Println("sum 0..299:", v.AugRange(0, 299))
	v.ForEach(func(k uint64, val int64) bool {
		fmt.Println("entry:", k, val)
		return true
	})
	// Output:
	// find 42: 10
	// size: 3
	// sum: 80
	// sum 0..299: 40
	// entry: 42 10
	// entry: 250 30
	// entry: 350 40
}
