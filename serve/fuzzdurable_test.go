package serve

// Fuzzing the durability decoders. Both targets hold the same contract:
// arbitrary bytes — truncated, bit-flipped, duplicated, or wholly
// invented — must produce an error (or, for the WAL, a shorter valid
// prefix), never a panic, an allocation blow-up, or a silently-wrong
// tree. Trees that do decode are checked with Validate, the recovery
// side's defense against crafted streams that parse but violate
// structural invariants.

import (
	"bytes"
	"testing"

	"repro/pam"
	"repro/rangetree"
)

// durableCorpus builds real checkpoint and WAL files by running durable
// stores in memory, returning (store ckpt, store WAL, point ckpt) bytes.
func durableCorpus(f *testing.F) (ckpt, wal, ptCkpt []byte) {
	f.Helper()
	readKind := func(fs *MemFS, wantCkpt bool) []byte {
		names, err := fs.List()
		if err != nil {
			f.Fatal(err)
		}
		ckpts, wals := parseDurableDir(names)
		var name string
		if wantCkpt {
			name = ckptName(ckpts[len(ckpts)-1])
		} else {
			name = walName(wals[len(wals)-1])
		}
		data, err := fs.ReadFile(name)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}

	fs := NewMemFS()
	d, err := openDurSum(fs, 2, 0)
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if _, err := d.Put(i*3, int64(i)); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		f.Fatal(err)
	}
	for i := uint64(0); i < 40; i++ { // populate the post-checkpoint WAL generation
		if _, err := d.Put(i, -int64(i)); err != nil {
			f.Fatal(err)
		}
	}
	ckpt, wal = readKind(fs, true), readKind(fs, false)
	d.Close()

	pfs := NewMemFS()
	pd, err := OpenDurablePointStore(pam.Options{}, []float64{8}, DurableConfig{FS: pfs})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if _, err := pd.Insert(rangetree.Point{X: float64(i % 13), Y: float64(i % 7)}, 1); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := pd.Checkpoint(); err != nil {
		f.Fatal(err)
	}
	ptCkpt = readKind(pfs, true)
	pd.Close()
	return ckpt, wal, ptCkpt
}

// mutations seeds the classic corruption shapes for a valid file:
// truncations, single-bit flips, and a duplicated body.
func mutations(valid []byte) [][]byte {
	out := [][]byte{valid, {}}
	for _, n := range []int{1, 8, 9, len(valid) / 2, len(valid) - 1} {
		if n >= 0 && n < len(valid) {
			out = append(out, valid[:n])
		}
	}
	for _, off := range []int{0, 9, len(valid) / 3, len(valid) - 5} {
		if off >= 0 && off < len(valid) {
			flip := bytes.Clone(valid)
			flip[off] ^= 0x10
			out = append(out, flip)
		}
	}
	out = append(out, append(bytes.Clone(valid), valid...)) // duplicated records
	return out
}

// FuzzCheckpointDecode throws arbitrary bytes at both checkpoint
// decoders (store chain files and point-store ladder files).
func FuzzCheckpointDecode(f *testing.F) {
	ckpt, _, ptCkpt := durableCorpus(f)
	for _, m := range mutations(ckpt) {
		f.Add(m)
	}
	for _, m := range mutations(ptCkpt) {
		f.Add(m)
	}

	proto := rangetree.New(pam.Options{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tb := pam.NewDecodeTable[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
		if _, roots, err := decodeStoreCheckpoint(tb, pam.Uint64Codec(), 2, data); err == nil {
			for _, id := range roots {
				m, err := tb.Map(id)
				if err != nil {
					t.Fatalf("decoder accepted a file whose root id %d is unresolvable: %v", id, err)
				}
				// Validate is the recovery side's last line against
				// crafted streams: it must reject, never let a broken
				// tree through silently (and never panic doing so).
				if err := m.Validate(func(a, b int64) bool { return a == b }); err != nil {
					continue
				}
				if got := int64(len(m.Entries())); got != m.Size() {
					t.Fatalf("validated tree is inconsistent: %d entries, Size %d", got, m.Size())
				}
			}
		}
		if _, trees, _, err := decodePointCheckpoint(proto, 2, data); err == nil {
			for _, tr := range trees {
				// decodePointCheckpoint rehydrates through the ladder
				// validator, so success means a checked structure.
				if err := tr.Validate(); err != nil {
					t.Fatalf("point decoder accepted an invalid ladder: %v", err)
				}
				_ = tr.ReportAll(everything)
			}
		}
	})
}

// FuzzCompactDecode seeds the checkpoint decoder with a COMPACTED base
// file — the single-file recovery image Compact publishes — plus its
// truncated, bit-flipped, and duplicated mutants. The contract is the
// self-healing one: a damaged base either errors out of the decoder
// (digest mismatches included — never silently wrong) or survives
// tree validation; and the structural verifier (the scrub/pamverify
// path) never panics on the same bytes.
func FuzzCompactDecode(f *testing.F) {
	fs := NewMemFS()
	d, err := openDurSum(fs, 2, 0)
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		if _, err := d.Put(i%40, int64(i)); err != nil { // heavy overwrite: dead records in the chain
			f.Fatal(err)
		}
		if i%60 == 0 {
			if _, err := d.Checkpoint(); err != nil {
				f.Fatal(err)
			}
		}
	}
	cs, err := d.Compact()
	if err != nil {
		f.Fatal(err)
	}
	base, err := fs.ReadFile(ckptName(cs.Index))
	if err != nil {
		f.Fatal(err)
	}
	d.Close()
	for _, m := range mutations(base) {
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tb := pam.NewDecodeTable[uint64, int64, int64, pam.SumEntry[uint64, int64]](pam.Options{})
		if _, roots, err := decodeStoreCheckpoint(tb, pam.Uint64Codec(), 2, data); err == nil {
			for _, id := range roots {
				m, err := tb.Map(id)
				if err != nil {
					t.Fatalf("compact decoder accepted unresolvable root %d: %v", id, err)
				}
				if err := m.Validate(func(a, b int64) bool { return a == b }); err != nil {
					continue
				}
				if got := int64(len(m.Entries())); got != m.Size() {
					t.Fatalf("validated tree inconsistent: %d entries, Size %d", got, m.Size())
				}
			}
		}
		// The same bytes through the codec-independent structural
		// verifier used by the scrubber and pamverify: any verdict is
		// fine, panicking or erroring on the filesystem walk is not.
		vfs := NewMemFSFrom(map[string][]byte{ckptName(1): data})
		if _, err := VerifyFiles(vfs); err != nil {
			t.Fatalf("VerifyFiles errored on fuzzed bytes: %v", err)
		}
	})
}

// FuzzWALDecode throws arbitrary bytes at the WAL record parser with
// both op codecs. The parser's contract is prefix semantics: it returns
// the batches of the longest valid prefix and its length, treating
// everything after the first torn or corrupt record as crash debris.
func FuzzWALDecode(f *testing.F) {
	_, wal, _ := durableCorpus(f)
	for _, m := range mutations(wal) {
		f.Add(m)
	}

	kvEnc := storeOpCodec(pam.Uint64Codec())
	f.Fuzz(func(t *testing.T, data []byte) {
		batches, valid := decodeWALFile(kvEnc, data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		// A record costs at least its 8-byte header.
		if len(batches)*8 > valid {
			t.Fatalf("%d batches from a %d-byte valid prefix", len(batches), valid)
		}
		// Prefix semantics: re-parsing the valid prefix must accept all
		// of it and yield the same batches.
		again, v2 := decodeWALFile(kvEnc, data[:valid])
		if v2 != valid || len(again) != len(batches) {
			t.Fatalf("re-parse of valid prefix diverged: %d/%d bytes, %d/%d batches",
				v2, valid, len(again), len(batches))
		}
		for i := range batches {
			if again[i].seq != batches[i].seq || len(again[i].ops) != len(batches[i].ops) {
				t.Fatalf("re-parse changed batch %d", i)
			}
		}
		// The same bytes through the point-op codec.
		pb, pvalid := decodeWALFile(pointOpEnc, data)
		if pvalid < 0 || pvalid > len(data) || len(pb)*8 > pvalid {
			t.Fatalf("point-op parse: %d batches, valid %d of %d", len(pb), pvalid, len(data))
		}
	})
}
