package serve

// Direct unit tests of the MemFS failpoint model — the instrument every
// crash schedule trusts. Pinned here: kill-point budget accounting,
// torn-write prefixes, the synced/unsynced split in DurableState, the
// rename publication rule, and CorruptFile's exactly-one-bit semantics.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestMemFSKillPointBudget(t *testing.T) {
	fs := NewMemFS()
	fs.SetKillPoint(3, rand.New(rand.NewSource(1)))

	f, err := fs.Create("a") // op 1
	if err != nil {
		t.Fatalf("Create within budget: %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil { // op 2
		t.Fatalf("Write within budget: %v", err)
	}
	if err := f.Sync(); err != nil { // op 3: budget exhausted after this
		t.Fatalf("Sync within budget: %v", err)
	}
	if fs.Crashed() {
		t.Fatal("crashed before the budget ran out")
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrCrashed) { // op 4 crashes
		t.Fatalf("op past budget = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() false after the kill point fired")
	}
	// Once crashed, everything fails — reads included.
	if _, err := fs.ReadFile("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadFile after crash = %v", err)
	}
	if _, err := fs.List(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("List after crash = %v", err)
	}
	if _, err := fs.Create("b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Create after crash = %v", err)
	}
	if err := fs.Rename("a", "c"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Rename after crash = %v", err)
	}
}

func TestMemFSReadsAreFree(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs.SetKillPoint(1, rand.New(rand.NewSource(2)))
	for i := 0; i < 50; i++ { // reads and listings never consume budget
		if _, err := fs.ReadFile("a"); err != nil {
			t.Fatalf("ReadFile %d: %v", i, err)
		}
		if _, err := fs.List(); err != nil {
			t.Fatalf("List %d: %v", i, err)
		}
	}
	if fs.Crashed() {
		t.Fatal("reads consumed kill-point budget")
	}
}

func TestMemFSTornWrite(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	fs.SetKillPoint(0, rand.New(rand.NewSource(7)))
	if _, err := f.Write([]byte("BBBBBBBB")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at zero budget = %v, want ErrCrashed", err)
	}

	state := fs.DurableState()
	got := state["a"]
	// The synced prefix survives whole; the torn write contributes some
	// prefix of the attempted bytes, never garbage and never a suffix.
	if !bytes.HasPrefix(got, []byte("AAAA")) {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if len(got) > len("AAAA")+len("BBBBBBBB") {
		t.Fatalf("torn write grew the file: %q", got)
	}
	for _, b := range got[4:] {
		if b != 'B' {
			t.Fatalf("torn tail holds invented bytes: %q", got)
		}
	}
}

func TestMemFSDurableStateSyncSplit(t *testing.T) {
	fs := NewMemFS()
	fs.SetKillPoint(1000, rand.New(rand.NewSource(11)))
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	// No sync for the tail: a power cut keeps the synced ten bytes and an
	// arbitrary prefix of the rest.
	seenLens := map[int]bool{}
	for i := 0; i < 64; i++ {
		got := NewMemFSFrom(fs.DurableState()).files["a"].data
		if !bytes.HasPrefix(got, []byte("0123456789")) {
			t.Fatalf("synced bytes lost: %q", got)
		}
		if !bytes.HasPrefix([]byte("abcdef"), got[10:]) {
			t.Fatalf("unsynced tail is not a prefix: %q", got)
		}
		seenLens[len(got)] = true
	}
	if len(seenLens) < 2 {
		t.Fatalf("unsynced tail never varied across 64 draws: %v", seenLens)
	}
}

func TestMemFSRenamePublishes(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("file.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Rename("file.tmp", "file"); err != nil {
		t.Fatal(err)
	}
	// Crash immediately after the rename: the published name must hold
	// the full synced contents and the temp name must be gone.
	fs.SetKillPoint(0, rand.New(rand.NewSource(3)))
	_, _ = fs.Create("x") // trip the kill point
	state := fs.DurableState()
	if !bytes.Equal(state["file"], []byte("payload")) {
		t.Fatalf("rename did not publish synced contents: %q", state["file"])
	}
	if _, ok := state["file.tmp"]; ok {
		t.Fatal("source name survived the rename")
	}

	if err := NewMemFS().Rename("missing", "dst"); err == nil {
		t.Fatal("rename of a missing file succeeded")
	}
}

func TestMemFSRemove(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.Close()
	if err := fs.Remove("a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := fs.ReadFile("a"); err == nil {
		t.Fatal("file readable after Remove")
	}
	if _, ok := fs.DurableState()["a"]; ok {
		t.Fatal("removed file reappeared in DurableState")
	}
}

func TestMemFSCorruptFile(t *testing.T) {
	fs := NewMemFS()
	rng := rand.New(rand.NewSource(5))
	if fs.CorruptFile("missing", rng) {
		t.Fatal("corrupted a file that does not exist")
	}
	f, _ := fs.Create("empty")
	f.Close()
	if fs.CorruptFile("empty", rng) {
		t.Fatal("corrupted an empty file")
	}

	g, _ := fs.Create("a")
	orig := []byte("some durable payload")
	if _, err := g.Write(orig); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	g.Close()

	fs.SetKillPoint(2, rand.New(rand.NewSource(6)))
	if !fs.CorruptFile("a", rng) { // must not charge the budget
		t.Fatal("CorruptFile failed on a non-empty file")
	}
	got, err := fs.ReadFile("a")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	diff := 0
	for i := range got {
		if b := got[i] ^ orig[i]; b != 0 {
			diff += popcount(b)
		}
	}
	if len(got) != len(orig) || diff != 1 {
		t.Fatalf("CorruptFile changed %d bits and length %d->%d, want exactly 1 bit", diff, len(orig), len(got))
	}
	// Budget untouched: two mutating ops still succeed.
	h, err := fs.Create("b")
	if err != nil {
		t.Fatalf("op 1 after CorruptFile: %v", err)
	}
	if _, err := h.Write([]byte("x")); err != nil {
		t.Fatalf("op 2 after CorruptFile: %v", err)
	}
	if fs.Crashed() {
		t.Fatal("CorruptFile consumed kill-point budget")
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
