package serve

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCrashed is returned by every operation of a failpoint filesystem
// once its kill point has fired: the simulated process is dead, and
// only the durable state (MemFS.DurableState) survives.
var ErrCrashed = errors.New("serve: filesystem crashed (failpoint)")

// FS is the filesystem surface the durability layer writes through — a
// flat namespace of files with the exact primitives the WAL and
// checkpoint protocols need. OSFS backs it with a directory; MemFS is
// the in-memory failpoint implementation the crash–recovery harness
// injects faults through.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Append opens name for appending, creating it when absent.
	Append(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's file: after a
	// crash, a reader sees the old file or the new one, never a mix.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// List returns the sorted names of all files.
	List() ([]string, error)
}

// File is an open writable file.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes every byte written so far durable: it survives a crash.
	Sync() error
	Close() error
}

// OSFS implements FS on a directory of the real filesystem.
type OSFS struct {
	// Dir is the directory holding the files; it must exist.
	Dir string
}

func (o OSFS) path(name string) string { return filepath.Join(o.Dir, name) }

func (o OSFS) Create(name string) (File, error) { return os.Create(o.path(name)) }

func (o OSFS) Append(name string) (File, error) {
	return os.OpenFile(o.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (o OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(o.path(name)) }

func (o OSFS) Rename(oldname, newname string) error {
	return os.Rename(o.path(oldname), o.path(newname))
}

func (o OSFS) Remove(name string) error { return os.Remove(o.path(name)) }

func (o OSFS) List() ([]string, error) {
	ents, err := os.ReadDir(o.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MemFS is an in-memory FS with failpoint injection, the fault model of
// the crash–recovery harness. Arm a kill point with SetKillPoint: after
// the given number of mutating operations, the filesystem "crashes" —
// the tripping write may tear (a random prefix of its bytes lands), and
// every operation from then on returns ErrCrashed. DurableState then
// reconstructs what a real disk would hold after the crash: for each
// file, the synced prefix plus a random (possibly empty, possibly torn
// mid-record) prefix of the unsynced tail. Renames, creates, and
// removes that succeeded are durable — the atomic-rename model the
// checkpoint protocol is built on.
//
// All methods are safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	rng     *rand.Rand
	budget  int64 // mutating ops until the crash; <0 = never
	crashed bool
}

type memFile struct {
	data   []byte
	synced int // length of the prefix known durable
}

// NewMemFS returns an empty in-memory filesystem with no kill point.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), budget: -1}
}

// NewMemFSFrom returns a filesystem holding the given files, all fully
// durable — the reincarnation step of the harness: pass a crashed
// filesystem's DurableState to get the disk the recovering process
// mounts.
func NewMemFSFrom(state map[string][]byte) *MemFS {
	m := NewMemFS()
	for name, data := range state {
		m.files[name] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
	}
	return m
}

// SetKillPoint arms the failpoint: the filesystem crashes on the
// (ops+1)-th mutating operation from now (writes, syncs, creates,
// renames, removes each count as one). rng drives the torn-write and
// torn-tail randomness and must not be shared with other goroutines.
func (m *MemFS) SetKillPoint(ops int64, rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = ops
	m.rng = rng
}

// Crashed reports whether the kill point has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// charge books one mutating operation against the budget; it reports
// false when this operation is the one that crashes (or the filesystem
// is already dead).
func (m *MemFS) charge() bool {
	if m.crashed {
		return false
	}
	if m.budget < 0 {
		return true
	}
	if m.budget == 0 {
		m.crashed = true
		return false
	}
	m.budget--
	return true
}

// DurableState returns what survives the crash: per file, the synced
// prefix plus a random prefix of the unsynced tail (unsynced data may
// partially reach disk, in write order). Call it once, after the crash,
// to build the filesystem the recovery opens (NewMemFSFrom).
func (m *MemFS) DurableState() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.files))
	for name, f := range m.files {
		keep := f.synced
		if tail := len(f.data) - f.synced; tail > 0 && m.rng != nil {
			keep += m.rng.Intn(tail + 1)
		} else {
			keep = len(f.data)
		}
		out[name] = append([]byte(nil), f.data[:keep]...)
	}
	return out
}

// CorruptFile flips one random bit of name's contents — media
// corruption, not process I/O, so it charges no kill-point budget and
// leaves the synced length untouched. It reports false if the file is
// missing or empty. The scrub/repair tests inject silent disk
// corruption with it.
func (m *MemFS) CorruptFile(name string, rng *rand.Rand) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok || len(f.data) == 0 {
		return false
	}
	bit := rng.Intn(len(f.data) * 8)
	f.data[bit/8] ^= 1 << (bit % 8)
	return true
}

type memHandle struct {
	fs   *MemFS
	name string
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.charge() {
		return nil, ErrCrashed
	}
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.charge() {
		return nil, ErrCrashed
	}
	if _, ok := m.files[name]; !ok {
		m.files[name] = &memFile{}
	}
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[name]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.charge() {
		return ErrCrashed
	}
	f, ok := m.files[oldname]
	if !ok {
		return os.ErrNotExist
	}
	// Renaming publishes the file as-is: the checkpoint protocol syncs
	// before renaming, so a renamed file is fully durable.
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.charge() {
		return ErrCrashed
	}
	if _, ok := m.files[name]; !ok {
		return os.ErrNotExist
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok {
		return 0, os.ErrNotExist
	}
	if !h.fs.charge() {
		// Torn write: a random prefix of p lands before the crash.
		n := 0
		if h.fs.rng != nil {
			n = h.fs.rng.Intn(len(p) + 1)
		}
		f.data = append(f.data, p[:n]...)
		return 0, ErrCrashed
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if !h.fs.charge() {
		return ErrCrashed
	}
	if f, ok := h.fs.files[h.name]; ok {
		f.synced = len(f.data)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	return nil
}
