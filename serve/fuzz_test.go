package serve

// FuzzServe fuzzes the differential harness itself: every input is one
// randomized concurrent schedule (map leg + ladder-backed spatial leg)
// whose snapshots must all equal their sequential prefix states. The
// seed corpus interleaves snapshot acquisition with carry cascades:
// tiny flush capacities and op counts just past powers of two keep the
// spatial shards mid-carry when markers arrive.

import (
	"testing"

	"repro/internal/workload"
)

func FuzzServe(f *testing.F) {
	// seed, shards, writers, batches, batchLen, flushCap, ranged
	f.Add(uint64(1), uint8(2), uint8(2), uint8(4), uint8(6), uint8(4), true)
	f.Add(uint64(7), uint8(3), uint8(3), uint8(8), uint8(3), uint8(2), false)
	// Carry-cascade seeds: flushCap 2 with op counts crossing 2^k flushes,
	// snapshots interleaved with the cascades.
	f.Add(uint64(17), uint8(4), uint8(2), uint8(9), uint8(7), uint8(2), true)
	f.Add(uint64(33), uint8(1), uint8(3), uint8(5), uint8(5), uint8(3), true)
	f.Add(uint64(64), uint8(2), uint8(4), uint8(7), uint8(4), uint8(2), false)
	// Leaf-block boundary: a single shard with maximal batch volume on
	// the 64-key space drives the shard map across the default 32-entry
	// block size, so coalesced MultiInserts split and re-merge blocks
	// while snapshots hold references to the old ones.
	f.Add(uint64(91), uint8(1), uint8(3), uint8(8), uint8(8), uint8(3), true)

	f.Fuzz(func(t *testing.T, seed uint64, shards, writers, batches, batchLen, flushCap uint8, ranged bool) {
		cfg := workload.ScheduleCfg{
			Writers:   1 + int(writers)%3,
			Batches:   1 + int(batches)%8,
			BatchLen:  1 + int(batchLen)%8,
			KeySpace:  64,
			DelEvery:  3,
			SnapEvery: 2,
		}
		nShards := 1 + int(shards)%4
		runMapSchedule(t, seed, cfg, nShards, ranged, ranged)
		runPointSchedule(t, seed, cfg.Writers, 16+int(batches)*8, 1+int(shards)%3, 2+int(flushCap)%14)
	})
}
