package serve

// FuzzServe fuzzes the differential harness itself: every input is one
// randomized concurrent schedule (map leg + ladder-backed spatial leg)
// whose snapshots must all equal their sequential prefix states, plus
// an async leg running the same schedule through the future pipeline
// under fuzzed tuning (mailbox depth, op budget, flush window,
// backpressure mode, auto-rebalance). The seed corpus interleaves
// snapshot acquisition with carry cascades and pins the async corner
// cases: a perpetually full mailbox, a flush window that always fires
// before the size trigger, and a skew that trips the rebalance policy.

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func FuzzServe(f *testing.F) {
	// seed, shards, writers, batches, batchLen, flushCap,
	// depth, budget, waitMicros, carry, ranged, fastfail, autoRe
	f.Add(uint64(1), uint8(2), uint8(2), uint8(4), uint8(6), uint8(4), uint8(0), uint8(0), uint8(0), uint8(0), true, false, false)
	f.Add(uint64(7), uint8(3), uint8(3), uint8(8), uint8(3), uint8(2), uint8(0), uint8(0), uint8(0), uint8(0), false, false, false)
	// Carry-cascade seeds: flushCap 2 with op counts crossing 2^k flushes,
	// snapshots interleaved with the cascades.
	f.Add(uint64(17), uint8(4), uint8(2), uint8(9), uint8(7), uint8(2), uint8(0), uint8(0), uint8(0), uint8(0), true, false, false)
	f.Add(uint64(33), uint8(1), uint8(3), uint8(5), uint8(5), uint8(3), uint8(0), uint8(0), uint8(0), uint8(0), true, false, false)
	f.Add(uint64(64), uint8(2), uint8(4), uint8(7), uint8(4), uint8(2), uint8(0), uint8(0), uint8(0), uint8(0), false, false, false)
	// Leaf-block boundary: a single shard with maximal batch volume on
	// the 64-key space drives the shard map across the default 32-entry
	// block size, so coalesced MultiInserts split and re-merge blocks
	// while snapshots hold references to the old ones.
	f.Add(uint64(91), uint8(1), uint8(3), uint8(8), uint8(8), uint8(3), uint8(0), uint8(0), uint8(0), uint8(0), true, false, false)
	// Full-mailbox seed: depth 1 and a 2-op budget on a single shard keep
	// every admission decision on the backpressure path, in both modes.
	f.Add(uint64(1001), uint8(0), uint8(3), uint8(8), uint8(8), uint8(3), uint8(1), uint8(1), uint8(0), uint8(0), true, false, false)
	f.Add(uint64(1002), uint8(0), uint8(3), uint8(8), uint8(8), uint8(3), uint8(1), uint8(1), uint8(0), uint8(0), true, true, false)
	// Max-wait-fires-first seed: a huge budget with a tiny flush window
	// means every flush is triggered by the timer, never by FlushOps.
	f.Add(uint64(1003), uint8(2), uint8(2), uint8(6), uint8(2), uint8(4), uint8(7), uint8(31), uint8(49), uint8(0), true, false, false)
	// Skew-triggered-rebalance seed: ranged with auto-rebalance armed at
	// an aggressive threshold while writers hammer a 64-key space.
	f.Add(uint64(1004), uint8(3), uint8(3), uint8(8), uint8(6), uint8(3), uint8(3), uint8(15), uint8(99), uint8(0), true, false, true)
	// Background-carry seeds: carry workers with flushCap 2 force spill +
	// deferred cascades on every few writes while replica readers and a
	// rebalancer are in flight; maximal batch volume on one shard keeps
	// several overflow runs pending at once (the backpressure bound is 2).
	f.Add(uint64(2001), uint8(2), uint8(3), uint8(9), uint8(8), uint8(2), uint8(0), uint8(0), uint8(0), uint8(1), true, false, false)
	f.Add(uint64(2002), uint8(0), uint8(4), uint8(9), uint8(8), uint8(2), uint8(0), uint8(0), uint8(0), uint8(2), false, false, false)
	f.Add(uint64(2003), uint8(3), uint8(3), uint8(8), uint8(6), uint8(3), uint8(3), uint8(15), uint8(49), uint8(2), true, false, true)

	f.Fuzz(func(t *testing.T, seed uint64, shards, writers, batches, batchLen, flushCap, depth, budget, waitMicros, carry uint8, ranged, fastfail, autoRe bool) {
		cfg := workload.ScheduleCfg{
			Writers:   1 + int(writers)%3,
			Batches:   1 + int(batches)%8,
			BatchLen:  1 + int(batchLen)%8,
			KeySpace:  64,
			DelEvery:  3,
			SnapEvery: 2,
		}
		nShards := 1 + int(shards)%4
		runMapSchedule(t, seed, cfg, nShards, ranged, ranged)
		runPointSchedule(t, seed, cfg.Writers, 16+int(batches)*8, 1+int(shards)%3, 2+int(flushCap)%14, int(carry)%3)

		tun := Tuning{
			MailboxDepth:  1 + int(depth)%8,
			ShardOpBudget: 1 + int(budget)%32,
			FlushOps:      1 + int(batchLen)%16,
			FlushWait:     time.Duration(waitMicros%200) * time.Microsecond,
		}
		if fastfail {
			tun.Backpressure = BackpressureFastFail
		}
		if autoRe && ranged {
			tun.AutoRebalance = &AutoRebalance{
				CheckEvery: 500 * time.Microsecond,
				SizeSkew:   1.2,
				Sustain:    1,
				MinSize:    8,
			}
		}
		runAsyncMapSchedule(t, seed, cfg, nShards, ranged, ranged, tun)
	})
}
