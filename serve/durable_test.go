package serve

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/pam"
	"repro/rangetree"
)

type durSumStore = DurableStore[uint64, int64, int64, pam.SumEntry[uint64, int64]]

func openDurSum(fs FS, shards, every int, tuning ...Tuning) (*durSumStore, error) {
	return openDurSumOpts(pam.Options{}, fs, shards, every, tuning...)
}

// openDurSumOpts is openDurSum with explicit map options — the crash
// harness uses it to run half its schedules over compressed leaf blocks
// (recovery must reopen with the same options the store was built
// with).
func openDurSumOpts(opts pam.Options, fs FS, shards, every int, tuning ...Tuning) (*durSumStore, error) {
	cfg := DurableConfig{FS: fs, CheckpointEvery: every}
	if len(tuning) > 0 {
		cfg.Tuning = tuning[0]
	}
	return OpenDurableStore[uint64, int64, int64, pam.SumEntry[uint64, int64]](
		opts, shards, mixHash, pam.Uint64Codec(), cfg)
}

// applyAll applies a batch and fails the test on any durability error.
func applyAll(t *testing.T, d *durSumStore, ops []kvop) uint64 {
	t.Helper()
	seq, err := d.Apply(ops)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return seq
}

// TestDurableStoreRoundTrip runs the full lifecycle on a real directory
// (OSFS): write, checkpoint, write more, close, reopen, verify that the
// recovered contents equal the acknowledged history, then keep writing.
func TestDurableStoreRoundTrip(t *testing.T) {
	fs := OSFS{Dir: t.TempDir()}
	d, err := openDurSum(fs, 3, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	oracle := map[uint64]int64{}
	put := func(k uint64, v int64) {
		if _, err := d.Put(k, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
		oracle[k] = v
	}
	del := func(k uint64) {
		if _, err := d.Delete(k); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		delete(oracle, k)
	}
	for i := uint64(0); i < 200; i++ {
		put(i, int64(i)*3)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := uint64(0); i < 50; i++ {
		del(i * 4)
	}
	put(1000, -7)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d, err = openDurSum(fs, 3, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d.Close()
	v, _ := d.Snapshot()
	if got, want := v.Size(), int64(len(oracle)); got != want {
		t.Fatalf("recovered Size = %d, want %d", got, want)
	}
	for k, want := range oracle {
		if got, ok := v.Find(k); !ok || got != want {
			t.Fatalf("recovered Find(%d) = %d,%v, want %d", k, got, ok, want)
		}
	}
	// The store is live after recovery and continues the sequence.
	seq, err := d.Put(2000, 5)
	if err != nil {
		t.Fatalf("post-recovery Put: %v", err)
	}
	if seq != v.Seq() {
		t.Fatalf("post-recovery seq = %d, want %d (sequence must resume)", seq, v.Seq())
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("post-recovery Checkpoint: %v", err)
	}
}

// TestDurableStoreAutoCheckpoint checks CheckpointEvery triggers and
// that reopening after only automatic checkpoints recovers everything.
func TestDurableStoreAutoCheckpoint(t *testing.T) {
	fs := NewMemFS()
	d, err := openDurSum(fs, 2, 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(0); i < 20; i++ {
		if _, err := d.Put(i, int64(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := d.Err(); err != nil {
		t.Fatalf("automatic checkpoint failed: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, _ := fs.List()
	ckpts, _ := parseDurableDir(names)
	if len(ckpts) == 0 {
		t.Fatalf("no automatic checkpoint written; files: %v", names)
	}
	d, err = openDurSum(fs, 2, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d.Close()
	v, _ := d.Snapshot()
	if v.Seq() != 20 || v.Size() != 20 {
		t.Fatalf("recovered Seq/Size = %d/%d, want 20/20", v.Seq(), v.Size())
	}
}

// TestDurableCheckpointIncremental is the cost-bound acceptance test: a
// checkpoint after k single-key updates to an n-entry store writes
// O(k · polylog n) tree records — the structure-sharing delta — not the
// O(n / B) records of the base, and a checkpoint with no intervening
// writes writes none at all.
func TestDurableCheckpointIncremental(t *testing.T) {
	const n = 1 << 15
	fs := NewMemFS()
	d, err := openDurSum(fs, 2, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	for lo := 0; lo < n; lo += 1024 {
		ops := make([]kvop, 1024)
		for i := range ops {
			ops[i] = kvop{Kind: OpPut, Key: uint64(lo + i), Val: int64(lo + i)}
		}
		applyAll(t, d, ops)
	}
	full, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("full checkpoint: %v", err)
	}
	if full.Records == 0 {
		t.Fatal("base checkpoint wrote no records")
	}

	empty, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("empty checkpoint: %v", err)
	}
	if empty.Records != 0 {
		t.Fatalf("checkpoint with no intervening writes wrote %d records", empty.Records)
	}

	rng := rand.New(rand.NewSource(11))
	const k = 16
	for i := 0; i < k; i++ {
		applyAll(t, d, []kvop{{Kind: OpPut, Key: uint64(rng.Intn(2 * n)), Val: int64(i)}})
	}
	delta, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("delta checkpoint: %v", err)
	}
	// Per update: ≤ ~log n interior path copies plus a few leaf blocks
	// (same bound as the core-level TestEncodeDeltaPolylog).
	bound := k * int(4*math.Log2(n)+8)
	if delta.Records > bound {
		t.Fatalf("delta checkpoint after %d updates wrote %d records, bound %d (base: %d)",
			k, delta.Records, bound, full.Records)
	}
	if delta.Records >= full.Records/4 {
		t.Fatalf("delta checkpoint wrote %d records vs %d for the base — not incremental",
			delta.Records, full.Records)
	}
}

// TestDurableCompressedRoundTrip is the compressed-layout durability
// acceptance test: a store with Options.Compress checkpoints, keeps
// writing (so recovery also replays a WAL tail), crashes, and comes
// back byte-identical — packing is canonical, so re-encoding each
// recovered shard from a fresh record set must reproduce exactly the
// bytes the pre-crash store would have written.
func TestDurableCompressedRoundTrip(t *testing.T) {
	const shards = 3
	opts := pam.Options{Compress: pam.CompressUint64()}
	fs := NewMemFS()
	d, err := openDurSumOpts(opts, fs, shards, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	oracle := map[uint64]int64{}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 600; i++ {
		k := uint64(rng.Intn(300))
		if rng.Intn(5) == 0 {
			if _, err := d.Delete(k); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			delete(oracle, k)
		} else {
			v := int64(rng.Intn(1000)) - 500
			if _, err := d.Put(k, v); err != nil {
				t.Fatalf("Put: %v", err)
			}
			oracle[k] = v
		}
		if i == 250 || i == 400 {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	// The writes after i=400 live only in the WAL tail.
	encodeShards := func(v View[uint64, int64, int64, pam.SumEntry[uint64, int64]]) [][]byte {
		out := make([][]byte, shards)
		for i := 0; i < shards; i++ {
			rs := pam.NewRecordSet[uint64, int64, int64]()
			out[i], _, _ = v.Shard(i).EncodeDelta(rs, pam.Uint64Codec(), nil)
		}
		return out
	}
	v1, _ := d.Snapshot()
	want := encodeShards(v1)
	d.Close() // no crash needed: DurableState below simulates losing the process anyway

	d2, err := openDurSumOpts(opts, NewMemFSFrom(fs.DurableState()), shards, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	v2, _ := d2.Snapshot()
	if v2.Seq() != v1.Seq() || v2.Size() != v1.Size() {
		t.Fatalf("recovered Seq/Size = %d/%d, want %d/%d", v2.Seq(), v2.Size(), v1.Seq(), v1.Size())
	}
	for k, wantV := range oracle {
		if got, ok := v2.Find(k); !ok || got != wantV {
			t.Fatalf("recovered Find(%d) = %d,%v, want %d", k, got, ok, wantV)
		}
	}
	for i := 0; i < shards; i++ {
		sh := v2.Shard(i)
		if sh.Size() > 0 && !sh.Tree().Compressed() {
			t.Fatalf("recovered shard %d is not compressed", i)
		}
	}
	got := encodeShards(v2)
	for i := range want {
		if !slices.Equal(got[i], want[i]) {
			t.Fatalf("shard %d: recovered encoding differs from pre-crash encoding (%d vs %d bytes)",
				i, len(got[i]), len(want[i]))
		}
	}
	if probs, err := d2.Verify(); err != nil || len(probs) > 0 {
		t.Fatalf("Verify after recovery: %v / %v", probs, err)
	}
	// Liveness: the recovered compressed store keeps writing.
	if _, err := d2.Put(1<<40, 7); err != nil {
		t.Fatalf("post-recovery Put: %v", err)
	}
	if _, err := d2.Checkpoint(); err != nil {
		t.Fatalf("post-recovery Checkpoint: %v", err)
	}
}

// TestDurablePointStoreRoundTrip checks the point store's full ladder
// checkpoints and WAL replay across a clean restart, with a small flush
// capacity so the checkpoint serializes a multi-level ladder mid-carry.
func TestDurablePointStoreRoundTrip(t *testing.T) {
	fs := NewMemFS()
	open := func() *DurablePointStore {
		d, err := OpenDurablePointStore(pam.Options{}, []float64{8}, DurableConfig{FS: fs})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return d
	}
	d := open()
	oracle := map[rangetree.Point]int64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		p := rangetree.Point{X: float64(rng.Intn(16)), Y: float64(rng.Intn(16))}
		if rng.Intn(4) == 0 {
			if _, err := d.Delete(p); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			delete(oracle, p)
		} else {
			if _, err := d.Insert(p, 1); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			oracle[p]++
		}
		if i == 150 {
			if _, err := d.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d = open()
	defer d.Close()
	v, _ := d.Snapshot()
	if got, want := v.Size(), int64(len(oracle)); got != want {
		t.Fatalf("recovered Size = %d, want %d", got, want)
	}
	for _, p := range v.ReportAll(everything) {
		if w, ok := oracle[p.Point]; !ok || w != p.W {
			t.Fatalf("recovered point (%v, %d), oracle %d,%v", p.Point, p.W, w, ok)
		}
	}
	var sum int64
	for _, w := range oracle {
		sum += w
	}
	if got := v.QuerySum(everything); got != sum {
		t.Fatalf("recovered QuerySum = %d, want %d", got, sum)
	}
}

// TestLadderHydrateRoundTrip drives Dehydrate/Rehydrate directly: the
// rebuilt tree must validate and preserve the exact level shapes.
func TestLadderHydrateRoundTrip(t *testing.T) {
	tr := rangetree.New(pam.Options{})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 600; i++ {
		p := rangetree.Point{X: float64(rng.Intn(32)), Y: float64(rng.Intn(32))}
		if rng.Intn(5) == 0 {
			tr = tr.Delete(p)
		} else {
			tr = tr.Insert(p, int64(1+rng.Intn(3)))
		}
	}
	st := tr.Dehydrate()
	got, err := tr.Rehydrate(st)
	if err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("rehydrated tree invalid: %v", err)
	}
	if got.Size() != tr.Size() {
		t.Fatalf("rehydrated Size = %d, want %d", got.Size(), tr.Size())
	}
	if !slices.Equal(got.LevelRecordCounts(), tr.LevelRecordCounts()) {
		t.Fatalf("level shapes diverged: %v vs %v", got.LevelRecordCounts(), tr.LevelRecordCounts())
	}
	w, g := tr.ReportAll(everything), got.ReportAll(everything)
	if !slices.Equal(w, g) {
		t.Fatalf("rehydrated contents diverged")
	}
	// A corrupt state (orphan tombstone) must be rejected.
	bad := st
	bad.BufDels = append([]pam.KV[rangetree.Point, int64](nil), bad.BufDels...)
	bad.BufDels = append(bad.BufDels, pam.KV[rangetree.Point, int64]{Key: rangetree.Point{X: -99, Y: -99}, Val: 1})
	if _, err := tr.Rehydrate(bad); err == nil {
		t.Fatal("Rehydrate accepted a tombstone for a point that was never live")
	}
}
