package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/pam"
)

// Durable serving: incremental block checkpoints plus the
// sequencer-granularity WAL (wal.go), glued by a recovery protocol that
// restores exactly an acknowledged-closed prefix of the write sequence,
// with chain compaction (bounded recovery), Merkle root digests (tamper
// evidence), and a scrub/repair pipeline (self-healing) on top.
//
// On-disk layout (one flat FS namespace per store):
//
//	ckpt-%06d   checkpoint files — an incremental chain for DurableStore
//	wal-%06d    WAL generation g: the batches sequenced between
//	            checkpoint g and checkpoint g+1
//	*.tmp       scratch for atomic publication (write + sync + rename);
//	            a crash leaves at worst a stale tmp, never a torn
//	            published file — recovery sweeps them
//	*.quarantine  corrupt files set aside (never deleted) by recovery or
//	              the scrubber; ignored by every other code path
//
// Checkpoint file format (DurableStore):
//
//	"PAMCKPT2" | uvarint seq | uvarint shards | uvarint firstID |
//	uvarint numRecords | records | shards × (uvarint rootID |
//	32-byte root digest) | u32le crc32(everything before)
//
// The records are the structure-sharing delta encoding of
// internal/core: each file carries only the tree records created since
// the previous checkpoint (firstID states where the chain must resume;
// a mismatch means a missing or reordered file). A file whose firstID
// is 1 is a base: it starts a fresh chain and everything before it is
// superseded — Compact writes bases. Each shard root carries its Merkle
// digest (sha256, chained through children's digests by internal/core);
// decode recomputes every digest bottom-up and rejects the file on
// mismatch, so any bit flip — in a key, value, aux, or child reference
// — is a detected error, not silent corruption, even past the CRC.
//
// Recovery decodes the newest intact chain (newest base onward) into
// one table, takes the last file's per-shard roots, replays the WAL
// generations from the last checkpoint on top, and reseeds the
// encoder's record set from the decoded table so the chain continues
// incrementally across restarts. A corrupt chain file is quarantined
// and recovery falls back to the prefix before it (or an older base)
// plus WAL replay; the gapless-sequence check and the
// highest-known-sequence bound guarantee the fallback never silently
// loses an acknowledged batch — if the surviving files cannot cover the
// sequence, open fails loudly.
//
// Crash-safety invariants:
//
//   - Apply acknowledges only after the batch's WAL record is fsynced;
//     WAL order equals sequence order (the engine's logAppend hook runs
//     under the sequencer lock), so the durable batches always form a
//     gapless prefix extending past every acknowledged batch.
//   - A checkpoint (and a compaction) is published by rename after a
//     full sync; a crash mid-publish leaves the previous chain + WAL
//     intact. Compact deletes the superseded chain and WAL generations
//     only after the new base is published, so a crash at any point
//     leaves either the old chain whole or the new base recoverable.
//   - WAL generations are flushed strictly in order, so recovery's
//     stop-at-first-torn-record rule drops only unacknowledged batches.

// Errors recovery and the decoders return. All file parsing is
// defensive: corrupt bytes yield an error, never a panic.
var (
	// ErrCorruptFile reports a checkpoint or WAL file whose contents
	// fail the checksum or framing checks.
	ErrCorruptFile = errors.New("serve: corrupt durable file")
	// ErrBrokenChain reports a checkpoint chain with a missing or
	// out-of-order incremental file (firstID mismatch).
	ErrBrokenChain = errors.New("serve: broken checkpoint chain")
	// ErrDigestMismatch reports a checkpoint whose recomputed Merkle
	// root digest differs from the stored one: the records decoded but
	// their content is not what was written — tampering or corruption
	// that slipped past the CRC.
	ErrDigestMismatch = errors.New("serve: checkpoint root digest mismatch")
	// ErrUnrecoverable reports that the surviving files cannot cover the
	// acknowledged sequence prefix: corrupt files were quarantined and
	// neither an older checkpoint nor the WAL reaches the highest
	// sequence number the directory is known to have held. Nothing is
	// lost silently; the quarantined files remain for inspection.
	ErrUnrecoverable = errors.New("serve: recovery cannot cover the acknowledged prefix")
)

const (
	ckptMagic        = "PAMCKPT2"
	ckptTmpName      = "ckpt.tmp"
	walTmpName       = "wal.tmp"
	tmpSuffix        = ".tmp"
	quarantineSuffix = ".quarantine"
)

func ckptName(idx int) string { return fmt.Sprintf("ckpt-%06d", idx) }

// DurableConfig configures the durability layer of a store.
type DurableConfig struct {
	// FS is the filesystem holding this store's files (required). Use
	// OSFS{Dir: ...} for a real directory, MemFS for fault injection.
	FS FS
	// CheckpointEvery, when positive, takes an automatic checkpoint
	// after every that-many acknowledged batches. A failed automatic
	// checkpoint does not fail the Apply that triggered it (the batch
	// is already durable); the error is surfaced by Err.
	CheckpointEvery int
	// CompactEvery, when positive, compacts the chain (rewrites the
	// live state as a fresh base checkpoint and drops the superseded
	// tail) after every that-many automatic checkpoints since the last
	// base. It bounds both the chain length and recovery time.
	CompactEvery int
	// CompactDeadRatio, when in (0, 1], compacts after an automatic
	// checkpoint whenever the fraction of on-disk records no live tree
	// references exceeds it — space-driven compaction, complementary to
	// the count-driven CompactEvery. Enabling it adds an O(live-records)
	// walk to each automatic checkpoint.
	CompactDeadRatio float64
	// KeepGenerations is how many WAL generations at or below the newest
	// checkpoint are retained (minimum and default 1) instead of being
	// dropped as superseded. The retained generations let recovery fall
	// back past that many corrupt chain-tail files without losing
	// acknowledged batches. Compact ignores it: a base supersedes
	// everything before it.
	KeepGenerations int
	// ScrubEvery, when positive, starts a background scrubber that
	// re-reads and verifies every sealed durable file (checkpoint CRCs,
	// Merkle root digests, WAL framing) at that interval, quarantines
	// corrupt files, and repairs by compacting the live state into a
	// fresh base. Results surface through ScrubStats and Err.
	ScrubEvery time.Duration
	// ScrubBytesPerSec, when positive, throttles the scrubber to
	// approximately that verification bandwidth.
	ScrubBytesPerSec int
	// Tuning configures the async write pipeline of the underlying
	// store (mailbox bounds, backpressure, flush triggers).
	// Tuning.AutoRebalance is ignored: a durable store's routing is
	// part of its on-disk schema and never changes.
	Tuning Tuning
}

// CheckpointStats reports what one checkpoint (or compaction) wrote.
type CheckpointStats struct {
	// Seq is the checkpoint's position in the write sequence: it covers
	// exactly the batches sequenced below Seq.
	Seq uint64
	// Index is the checkpoint file's chain index.
	Index int
	// Records is the number of new tree records written — the
	// incremental delta. After k updates to an n-entry store this is
	// O(k · polylog n), not O(n): blocks shared with the previous
	// checkpoint are referenced, not rewritten. For a compaction it is
	// the full live record count.
	Records int
	// Bytes is the checkpoint file's size.
	Bytes int
	// Digest is the checkpoint's root digest — the hash of the per-shard
	// Merkle roots. Two stores (replicas, or the same store before and
	// after recovery) hold identical content iff their digests match,
	// making it the cheap cross-replica comparison and external
	// tamper-evidence anchor (record it somewhere the disk can't touch).
	Digest [sha256.Size]byte
	// Base reports whether this file starts a fresh chain (firstID 1):
	// true for Compact, false for incremental checkpoints (except the
	// first checkpoint of an empty store, which is naturally a base).
	Base bool
	// ChainRecords is the total record count of the on-disk chain after
	// this checkpoint — what recovery will decode.
	ChainRecords int
	// LiveRecords is the number of records a from-scratch encode would
	// write, i.e. the records still referenced by live trees. Computed
	// only when it is needed (compactions, and checkpoints under a
	// CompactDeadRatio policy); zero otherwise.
	LiveRecords int
}

// RecoveryStats reports what OpenDurableStore (or OpenDurablePointStore)
// read and repaired to reach the recovered state.
type RecoveryStats struct {
	// ChainFiles is the number of checkpoint files decoded.
	ChainFiles int
	// ChainRecords is the number of tree records decoded from the chain.
	// After a compaction this is O(live records) regardless of how many
	// updates the store ever processed — the bounded-recovery guarantee.
	ChainRecords int
	// WALBatches is the number of batches replayed from the log.
	WALBatches int
	// Quarantined lists files found corrupt and renamed aside (their
	// new names, ending in ".quarantine").
	Quarantined []string
	// Repaired reports that recovery quarantined corrupt files and
	// still reached a state covering every acknowledged batch, via an
	// older checkpoint and/or WAL replay.
	Repaired bool
}

// DurableStore wraps a hash-partitioned Store with a write-ahead log
// and incremental block checkpoints. Apply acknowledges a batch only
// once its WAL record is fsynced (group commit across concurrent
// writers); OpenDurableStore recovers the latest checkpoint plus the
// WAL suffix — a gapless prefix of the write sequence containing every
// batch ever acknowledged, possibly followed by durable-but-unobserved
// batches that crashed mid-acknowledgment.
//
// The same opts, shard count, hash, and codec must be passed at every
// reopen; they are the store's schema, not part of the files.
// Serialization requires opts.Pool == false. All methods are safe for
// concurrent use.
type DurableStore[K, V, A any, E pam.Aug[K, V, A]] struct {
	s     *Store[K, V, A, E]
	fs    FS
	w     *wal[Op[K, V]]
	codec *pam.Codec[K, V]
	opts  pam.Options // the tree schema, needed to re-decode chains (Verify)

	ckptMu     sync.Mutex // serializes checkpoints; guards rs and the chain fields
	rs         *pam.RecordSet[K, V, A]
	baseIdx    int // chain index of the current base checkpoint (0: none yet)
	ckptsSince int // incremental checkpoints since the current base

	every     uint64
	batches   atomic.Uint64
	compEvery int
	deadRatio float64
	keep      int

	// epoch is bumped whenever the file set changes underneath a scrub
	// pass (checkpoint, compaction, quarantine); a pass that observes a
	// bump discards its verdicts instead of acting on stale reads.
	epoch atomic.Uint64

	recovery RecoveryStats
	scrub    *scrubber

	errMu sync.Mutex
	bgErr error
}

// storeOpCodec encodes one Op for WAL records: kind byte, key, and (for
// puts) value.
func storeOpCodec[K, V any](c *pam.Codec[K, V]) opCodec[Op[K, V]] {
	return opCodec[Op[K, V]]{
		append: func(buf []byte, op Op[K, V]) []byte {
			buf = append(buf, byte(op.Kind))
			buf = c.AppendKey(buf, op.Key)
			if op.Kind == OpPut {
				buf = c.AppendVal(buf, op.Val)
			}
			return buf
		},
		at: func(data []byte) (Op[K, V], int, error) {
			var op Op[K, V]
			if len(data) == 0 {
				return op, 0, ErrCorruptFile
			}
			op.Kind = OpKind(data[0])
			if op.Kind != OpPut && op.Kind != OpDelete {
				return op, 0, ErrCorruptFile
			}
			used := 1
			k, n, err := c.KeyAt(data[used:])
			if err != nil {
				return op, 0, err
			}
			op.Key = k
			used += n
			if op.Kind == OpPut {
				v, n, err := c.ValAt(data[used:])
				if err != nil {
					return op, 0, err
				}
				op.Val = v
				used += n
			}
			return op, used, nil
		},
	}
}

// parseDurableDir splits a file listing into checkpoint indices and WAL
// generations, each ascending; other names (tmp scratch, quarantined
// files) are ignored. Only exact round-trip matches count: a name like
// "ckpt-000004.quarantine" parses under Sscanf but is not a chain file.
func parseDurableDir(names []string) (ckpts, walGens []int) {
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(name, "ckpt-%06d", &n); err == nil && ckptName(n) == name {
			ckpts = append(ckpts, n)
		} else if _, err := fmt.Sscanf(name, "wal-%06d", &n); err == nil && walName(n) == name {
			walGens = append(walGens, n)
		}
	}
	sort.Ints(ckpts)
	sort.Ints(walGens)
	return ckpts, walGens
}

// sweepTmpFiles deletes orphaned *.tmp scratch left by a crash between
// write and rename; they were never published and hold nothing durable.
func sweepTmpFiles(fs FS, names []string) {
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			fs.Remove(name)
		}
	}
}

// quarantineFile sets a corrupt file aside by renaming it with the
// .quarantine suffix (layered, so re-quarantining a name never clobbers
// earlier evidence) and returns the new name.
func quarantineFile(fs FS, name string) (string, error) {
	q := name + quarantineSuffix
	return q, fs.Rename(name, q)
}

// writeFileAtomic publishes data under final via tmp + sync + rename:
// after any crash, final holds either its old contents or all of data.
func writeFileAtomic(fs FS, tmp, final string, data []byte) error {
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, final)
}

// ckptHeaderFull parses just the fixed header of a checkpoint file — no
// CRC or record validation — returning [seq, shards, firstID, nRecords].
func ckptHeaderFull(data []byte) (hdr [4]uint64, ok bool) {
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return hdr, false
	}
	p := data[len(ckptMagic):]
	for i := range hdr {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return hdr, false
		}
		hdr[i] = v
		p = p[n:]
	}
	return hdr, true
}

// ckptHeader returns a checkpoint header's sequence number and firstID.
// Recovery uses it to locate chain bases and to bound the highest
// sequence number the directory ever held (so falling back past a
// corrupt file can never silently lose acknowledged batches).
func ckptHeader(data []byte) (seq, firstID uint64, ok bool) {
	hdr, ok := ckptHeaderFull(data)
	return hdr[0], hdr[2], ok
}

// decodeStoreCheckpoint decodes one chain file into the accumulating
// table, verifies every shard root's Merkle digest against the stored
// one, and returns the file's sequence number and per-shard root ids.
func decodeStoreCheckpoint[K, V, A any, E pam.Aug[K, V, A]](tb *pam.DecodeTable[K, V, A, E], c *pam.Codec[K, V], shards int, data []byte) (uint64, []uint64, error) {
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, ErrCorruptFile
	}
	body := data[: len(data)-4 : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return 0, nil, ErrCorruptFile
	}
	p := body[len(ckptMagic):]
	var hdr [4]uint64
	for i := range hdr {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, nil, ErrCorruptFile
		}
		hdr[i] = v
		p = p[n:]
	}
	seq, nShards, firstID, nRecs := hdr[0], hdr[1], hdr[2], hdr[3]
	if nShards != uint64(shards) {
		return 0, nil, fmt.Errorf("%w: checkpoint has %d shards, store has %d", ErrCorruptFile, nShards, shards)
	}
	if firstID != tb.NextID() {
		return 0, nil, ErrBrokenChain
	}
	// Every record is at least two bytes; a larger count is framing
	// corruption, not work to attempt.
	if nRecs > uint64(len(p)) {
		return 0, nil, ErrCorruptFile
	}
	rest, err := tb.DecodeRecords(c, p, int(nRecs))
	if err != nil {
		return 0, nil, err
	}
	roots := make([]uint64, shards)
	for i := range roots {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, nil, ErrCorruptFile
		}
		roots[i] = v
		rest = rest[n:]
		if len(rest) < sha256.Size {
			return 0, nil, ErrCorruptFile
		}
		var want pam.Digest
		copy(want[:], rest)
		rest = rest[sha256.Size:]
		got, err := tb.Digest(roots[i])
		if err != nil {
			return 0, nil, ErrCorruptFile
		}
		if got != want {
			return 0, nil, ErrDigestMismatch
		}
	}
	if len(rest) != 0 {
		return 0, nil, ErrCorruptFile
	}
	return seq, roots, nil
}

// storeChain is the outcome of decoding the checkpoint chain during
// recovery.
type storeChain[K, V, A any, E pam.Aug[K, V, A]] struct {
	tb      *pam.DecodeTable[K, V, A, E]
	roots   []uint64
	seq     uint64
	lastIdx int // chain index of the last decoded file (0: none)
	baseIdx int // chain index of the base the chain starts at (0: none)
	files   int
}

// recoverStoreChain decodes the newest intact checkpoint chain. A
// corrupt file is quarantined together with every later chain file (a
// chain is useless past a hole); decoding then falls back to the prefix
// before it, or to an older base if the newest base itself is corrupt.
// maxSeq is the highest sequence number any readable header claims —
// the caller must refuse to open unless WAL replay reaches it whenever
// anything was quarantined.
func recoverStoreChain[K, V, A any, E pam.Aug[K, V, A]](fs FS, opts pam.Options, codec *pam.Codec[K, V], shards int, ckpts []int, rec *RecoveryStats) (chain storeChain[K, V, A, E], maxSeq uint64, err error) {
	quarantined := make(map[int]bool)
	quarantine := func(idx int) error {
		q, err := quarantineFile(fs, ckptName(idx))
		if err != nil {
			return err
		}
		quarantined[idx] = true
		rec.Quarantined = append(rec.Quarantined, q)
		return nil
	}
	datas := make(map[int][]byte, len(ckpts))
	var bases []int // positions in ckpts whose file claims firstID == 1
	for pos, idx := range ckpts {
		data, err := fs.ReadFile(ckptName(idx))
		if err != nil {
			return chain, 0, err
		}
		datas[idx] = data
		seq, firstID, ok := ckptHeader(data)
		if !ok {
			// An unreadable header is corruption in its own right:
			// quarantine it now so it is reported, not silently skipped.
			if qerr := quarantine(idx); qerr != nil {
				return chain, maxSeq, qerr
			}
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if firstID == 1 {
			bases = append(bases, pos)
		}
	}
	for attempt := len(bases) - 1; attempt >= 0; attempt-- {
		start := bases[attempt]
		if quarantined[ckpts[start]] {
			continue
		}
		tb := pam.NewDecodeTable[K, V, A, E](opts)
		cand := storeChain[K, V, A, E]{tb: tb, roots: make([]uint64, shards), baseIdx: ckpts[start]}
		baseOK := false
		for pos := start; pos < len(ckpts); pos++ {
			idx := ckpts[pos]
			if quarantined[idx] {
				continue
			}
			s, r, derr := decodeStoreCheckpoint(tb, codec, shards, datas[idx])
			if derr != nil {
				// This file — and every chain file after it, which can
				// only reference records through it — is unusable.
				for p2 := pos; p2 < len(ckpts); p2++ {
					if !quarantined[ckpts[p2]] {
						if qerr := quarantine(ckpts[p2]); qerr != nil {
							return chain, maxSeq, qerr
						}
					}
				}
				break
			}
			cand.seq, cand.roots, cand.lastIdx = s, r, idx
			cand.files++
			baseOK = true
		}
		if baseOK {
			return cand, maxSeq, nil
		}
	}
	// No intact base: recovery starts from an empty chain. The caller's
	// sequence-coverage check decides whether the WAL alone suffices.
	return storeChain[K, V, A, E]{tb: pam.NewDecodeTable[K, V, A, E](opts), roots: make([]uint64, shards)}, maxSeq, nil
}

// OpenDurableStore opens (or creates) a durable hash-partitioned store
// on cfg.FS: it sweeps crash leftovers, loads the newest intact
// checkpoint chain (quarantining corrupt files and falling back if
// needed), replays the WAL suffix, and resumes the write sequence where
// the recovered prefix ends. See DurableStore for the recovery
// guarantee; Recovery reports what was read and repaired.
func OpenDurableStore[K, V, A any, E pam.Aug[K, V, A]](opts pam.Options, shards int, hash func(K) uint64, codec *pam.Codec[K, V], cfg DurableConfig) (*DurableStore[K, V, A, E], error) {
	if cfg.FS == nil {
		return nil, errors.New("serve: DurableConfig.FS is required")
	}
	if opts.Pool {
		return nil, errors.New("serve: durable stores require Options.Pool == false")
	}
	if shards < 1 {
		return nil, errors.New("serve: OpenDurableStore needs at least one shard")
	}
	names, err := cfg.FS.List()
	if err != nil {
		return nil, err
	}
	sweepTmpFiles(cfg.FS, names)
	ckpts, walGens := parseDurableDir(names)

	var rec RecoveryStats
	chain, maxSeq, err := recoverStoreChain[K, V, A, E](cfg.FS, opts, codec, shards, ckpts, &rec)
	if err != nil {
		return nil, err
	}
	tb := chain.tb
	rec.ChainFiles = chain.files
	rec.ChainRecords = int(tb.NextID() - 1)
	states := make([]pam.AugMap[K, V, A, E], shards)
	for i := range states {
		m, err := tb.Map(chain.roots[i])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ckptName(chain.lastIdx), err)
		}
		states[i] = m
	}
	// Chain files below the recovered base are superseded leftovers of a
	// compaction that crashed before its deletes; sweep them.
	for _, idx := range ckpts {
		if idx < chain.baseIdx {
			cfg.FS.Remove(ckptName(idx))
		}
	}

	// Replay the WAL generations from the last checkpoint on: batches
	// must continue the sequence gaplessly; a torn tail ends replay and
	// is trimmed so the resumed log appends onto a clean file.
	n := uint64(shards)
	route := func(o Op[K, V]) int { return int(hash(o.Key) % n) }
	enc := storeOpCodec(codec)
	next := chain.seq
	maxGen := chain.lastIdx
	for _, g := range walGens {
		if g < chain.lastIdx {
			continue // superseded by the checkpoint; awaiting removal
		}
		if g > maxGen {
			maxGen = g
		}
		data, err := cfg.FS.ReadFile(walName(g))
		if err != nil {
			return nil, err
		}
		batches, valid := decodeWALFile(enc, data)
		for _, b := range batches {
			if b.seq != next {
				return nil, fmt.Errorf("%s: %w: batch seq %d, want %d", walName(g), ErrCorruptFile, b.seq, next)
			}
			per := make([][]Op[K, V], shards)
			for _, op := range b.ops {
				i := route(op)
				per[i] = append(per[i], op)
			}
			for i, sub := range per {
				if len(sub) > 0 {
					states[i] = applyOps(states[i], sub)
				}
			}
			next++
			rec.WALBatches++
		}
		if valid != len(data) {
			if err := writeFileAtomic(cfg.FS, walTmpName, walName(g), data[:valid]); err != nil {
				return nil, err
			}
		}
	}
	// Never proceed past lost acknowledged batches: the surviving chain +
	// WAL must reach every sequence number a readable header proves the
	// directory once covered. The check is unconditional — a corrupt file
	// can fall out of consideration without ever being decoded (a garbled
	// firstID, say), and the coverage gap is the only remaining evidence.
	if next < maxSeq {
		return nil, fmt.Errorf("%w: recovered to seq %d, but a checkpoint at seq %d existed (quarantined: %s)",
			ErrUnrecoverable, next, maxSeq, strings.Join(rec.Quarantined, ", "))
	}
	if len(rec.Quarantined) > 0 {
		rec.Repaired = true
	}

	w := newWAL(cfg.FS, enc, maxGen, next)
	keep := cfg.KeepGenerations
	if keep < 1 {
		keep = 1
	}
	d := &DurableStore[K, V, A, E]{
		fs:         cfg.FS,
		w:          w,
		codec:      codec,
		opts:       opts,
		rs:         tb.RecordSet(),
		baseIdx:    chain.baseIdx,
		ckptsSince: chain.files - 1,
		every:      uint64(cfg.CheckpointEvery),
		compEvery:  cfg.CompactEvery,
		deadRatio:  cfg.CompactDeadRatio,
		keep:       keep,
		recovery:   rec,
	}
	if d.ckptsSince < 0 {
		d.ckptsSince = 0
	}
	// The commit hook runs on the engine's resolver, in sequence order,
	// after the batch is applied: group-commit the WAL through seq, then
	// count the batch toward the automatic checkpoint. A future
	// therefore resolves only once its batch is fsynced.
	h := hooks[Op[K, V]]{logAppend: w.appendLocked, commit: d.commitSeq}
	d.s = &Store[K, V, A, E]{eng: newEngineAt(states, route, applyMapOps[K, V, A, E], next, h, cfg.Tuning.withDefaults())}
	if cfg.ScrubEvery > 0 {
		d.scrub = startScrubber(cfg.ScrubEvery, cfg.ScrubBytesPerSec, scrubHooks{
			epoch:  d.epoch.Load,
			verify: d.verifyPass,
			repair: func(corrupt []string) error { return d.repairCorrupt(corrupt) },
			onErr:  d.setErr,
		})
	}
	return d, nil
}

// Recovery reports what the opening recovery read and repaired.
func (d *DurableStore[K, V, A, E]) Recovery() RecoveryStats { return d.recovery }

// commitSeq is the resolver-side durability step: fsync the WAL through
// seq (instant when a group commit already covered it), take the
// periodic automatic checkpoint, and apply the compaction policy.
func (d *DurableStore[K, V, A, E]) commitSeq(seq uint64) error {
	if err := d.w.Sync(seq); err != nil {
		return err
	}
	if d.every > 0 && d.batches.Add(1)%d.every == 0 {
		// ErrClosed means the engine is shutting down under the resolver
		// while it drains the final futures; the batches are already
		// durable, so a skipped periodic checkpoint is not an error.
		cs, err := d.Checkpoint()
		switch {
		case errors.Is(err, ErrClosed):
		case err != nil:
			d.setErr(err)
		default:
			d.maybeCompact(cs)
		}
	}
	return nil
}

// maybeCompact applies the automatic compaction policy after a
// successful automatic checkpoint.
func (d *DurableStore[K, V, A, E]) maybeCompact(cs CheckpointStats) {
	d.ckptMu.Lock()
	since := d.ckptsSince
	d.ckptMu.Unlock()
	due := d.compEvery > 0 && since >= d.compEvery
	if !due && d.deadRatio > 0 && cs.ChainRecords > 0 && !cs.Base {
		dead := 1 - float64(cs.LiveRecords)/float64(cs.ChainRecords)
		due = dead >= d.deadRatio
	}
	if !due {
		return
	}
	if _, err := d.Compact(); err != nil && !errors.Is(err, ErrClosed) {
		d.setErr(err)
	}
}

// Apply submits one write batch and blocks until every involved shard
// has applied it AND its WAL record is durable; only then is the batch
// acknowledged (nil error). On a WAL error the batch is unacknowledged:
// it may or may not survive a crash, but never breaks the recovered
// prefix; the returned sequence number is still the batch's. ErrClosed
// and ErrOverloaded mean the batch was never admitted at all.
func (d *DurableStore[K, V, A, E]) Apply(ops []Op[K, V]) (uint64, error) {
	return d.s.eng.applyBatch(ops)
}

// ApplyAsync submits one write batch fire-and-forget and returns its
// completion future. The future resolves — in global sequence order —
// only after the batch's WAL record is fsynced, so a nil Ack.Err is
// the same durability guarantee the sync Apply gives.
func (d *DurableStore[K, V, A, E]) ApplyAsync(ops []Op[K, V]) (*Future, error) {
	return d.s.eng.applyAsync(ops, false)
}

// Put durably stores (k, v) and returns the write's sequence number.
func (d *DurableStore[K, V, A, E]) Put(k K, v V) (uint64, error) {
	return d.Apply([]Op[K, V]{{Kind: OpPut, Key: k, Val: v}})
}

// PutAsync is the fire-and-forget Put; see ApplyAsync.
func (d *DurableStore[K, V, A, E]) PutAsync(k K, v V) (*Future, error) {
	return d.ApplyAsync([]Op[K, V]{{Kind: OpPut, Key: k, Val: v}})
}

// Delete durably removes k and returns the write's sequence number.
func (d *DurableStore[K, V, A, E]) Delete(k K) (uint64, error) {
	return d.Apply([]Op[K, V]{{Kind: OpDelete, Key: k}})
}

// DeleteAsync is the fire-and-forget Delete; see ApplyAsync.
func (d *DurableStore[K, V, A, E]) DeleteAsync(k K) (*Future, error) {
	return d.ApplyAsync([]Op[K, V]{{Kind: OpDelete, Key: k}})
}

// Stats samples the per-shard pipeline counters; see Store.Stats.
func (d *DurableStore[K, V, A, E]) Stats() []ShardStats { return d.s.Stats() }

// Snapshot assembles a consistent cross-shard view; see Store.Snapshot.
func (d *DurableStore[K, V, A, E]) Snapshot() (View[K, V, A, E], error) { return d.s.Snapshot() }

// ReaderView returns the read-only replica view; see Store.ReaderView.
func (d *DurableStore[K, V, A, E]) ReaderView() (View[K, V, A, E], error) { return d.s.ReaderView() }

// NumShards returns the partition count.
func (d *DurableStore[K, V, A, E]) NumShards() int { return d.s.NumShards() }

// encodeStoreCheckpoint builds one checkpoint file: the states' delta
// against rs, the per-shard roots with their Merkle digests, and the
// trailing CRC.
func encodeStoreCheckpoint[K, V, A any, E pam.Aug[K, V, A]](states []pam.AugMap[K, V, A, E], rs *pam.RecordSet[K, V, A], codec *pam.Codec[K, V], seq uint64) (file []byte, wrote int, digest [sha256.Size]byte) {
	firstID := rs.NextID()
	var recs []byte
	roots := make([]uint64, len(states))
	sums := make([]pam.Digest, len(states))
	for i, m := range states {
		var w int
		recs, roots[i], w = m.EncodeDelta(rs, codec, recs)
		wrote += w
		sums[i], _ = m.RootDigest(rs)
	}
	file = append([]byte(nil), ckptMagic...)
	file = binary.AppendUvarint(file, seq)
	file = binary.AppendUvarint(file, uint64(len(states)))
	file = binary.AppendUvarint(file, firstID)
	file = binary.AppendUvarint(file, uint64(wrote))
	file = append(file, recs...)
	h := sha256.New()
	for i, r := range roots {
		file = binary.AppendUvarint(file, r)
		file = append(file, sums[i][:]...)
		h.Write(sums[i][:])
	}
	file = binary.LittleEndian.AppendUint32(file, crc32.ChecksumIEEE(file))
	copy(digest[:], h.Sum(nil))
	return file, wrote, digest
}

// Checkpoint writes the next incremental checkpoint: it snapshots all
// shards at one sequence point (rotating the WAL generation at exactly
// that point), encodes only the tree records created since the previous
// checkpoint, publishes the file atomically, and then drops the WAL
// generations the new checkpoint supersedes (keeping KeepGenerations
// for corruption fallback). Concurrent writes proceed; concurrent
// Checkpoint calls serialize.
func (d *DurableStore[K, V, A, E]) Checkpoint() (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	var idx int
	states, _, seq, _, ok := d.s.eng.trySnapshotWith(func() { idx = d.w.rotateLocked() })
	if !ok {
		return CheckpointStats{}, ErrClosed
	}

	// Encode against a clone: ids are committed only with the file, so
	// a failed attempt never burns ids the on-disk chain hasn't seen.
	rs := d.rs.Clone()
	base := rs.NextID() == 1
	file, wrote, digest := encodeStoreCheckpoint(states, rs, d.codec, seq)
	if err := writeFileAtomic(d.fs, ckptTmpName, ckptName(idx), file); err != nil {
		return CheckpointStats{}, err
	}
	d.rs = rs
	if base {
		d.baseIdx = idx
		d.ckptsSince = 0
	} else {
		d.ckptsSince++
	}
	d.epoch.Add(1)
	// Old WAL generations are superseded, but only drop them once their
	// records are flushed, so no in-flight group commit is still writing
	// the files being removed.
	if seq == 0 || d.w.Sync(seq-1) == nil {
		dropOldWALs(d.fs, idx-d.keep)
	}
	stats := CheckpointStats{
		Seq: seq, Index: idx, Records: wrote, Bytes: len(file),
		Digest: digest, Base: base, ChainRecords: rs.Len(),
	}
	if d.deadRatio > 0 || base {
		for _, m := range states {
			stats.LiveRecords += m.RecordCount()
		}
	}
	return stats, nil
}

// Compact rewrites the live state as a fresh base checkpoint and drops
// the superseded chain tail and WAL generations, bounding recovery to
// O(live records) regardless of update history. It is crash-safe at
// every point: the base is published by rename after a full sync, and
// the old chain is deleted only afterwards — a crash leaves either the
// old chain whole or the new base recoverable (recovery picks the
// newest intact base and sweeps leftovers). Concurrent writes proceed;
// Compact serializes with Checkpoint. It is also the self-healing
// repair step: the live in-memory state is the redundancy a fresh base
// is rebuilt from when a chain file is found corrupt.
func (d *DurableStore[K, V, A, E]) Compact() (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	var idx int
	states, _, seq, _, ok := d.s.eng.trySnapshotWith(func() { idx = d.w.rotateLocked() })
	if !ok {
		return CheckpointStats{}, ErrClosed
	}

	// A fresh record set: the encode is a full rewrite of the live
	// records (firstID 1 marks the file as a base).
	rs := pam.NewRecordSet[K, V, A]()
	file, wrote, digest := encodeStoreCheckpoint(states, rs, d.codec, seq)
	if err := writeFileAtomic(d.fs, ckptTmpName, ckptName(idx), file); err != nil {
		return CheckpointStats{}, err
	}
	d.rs = rs
	d.baseIdx = idx
	d.ckptsSince = 0
	d.epoch.Add(1)
	// The base supersedes the whole previous chain and every WAL
	// generation below it. As with Checkpoint, WAL files are removed
	// only once their records are flushed.
	if seq == 0 || d.w.Sync(seq-1) == nil {
		dropOldWALs(d.fs, idx)
	}
	dropOldCkpts(d.fs, idx)
	return CheckpointStats{
		Seq: seq, Index: idx, Records: wrote, Bytes: len(file),
		Digest: digest, Base: true, ChainRecords: wrote, LiveRecords: wrote,
	}, nil
}

// dropOldWALs removes WAL generations below bound, best-effort: a
// leftover file is ignored by the next recovery and removed by the next
// checkpoint.
func dropOldWALs(fs FS, bound int) {
	names, err := fs.List()
	if err != nil {
		return
	}
	_, gens := parseDurableDir(names)
	for _, g := range gens {
		if g < bound {
			fs.Remove(walName(g))
		}
	}
}

// dropOldCkpts removes checkpoint files below bound (the chain a new
// base supersedes), best-effort: recovery sweeps leftovers.
func dropOldCkpts(fs FS, bound int) {
	names, err := fs.List()
	if err != nil {
		return
	}
	ckpts, _ := parseDurableDir(names)
	for _, idx := range ckpts {
		if idx < bound {
			fs.Remove(ckptName(idx))
		}
	}
}

// verifyPass re-reads and verifies every sealed durable file once: the
// checkpoint chain is decoded in full (CRCs, record framing, Merkle
// root digests) and sealed WAL generations are checked for complete,
// checksummed framing. It returns the corrupt file names and the bytes
// read. File contents are read under ckptMu (so the set is a consistent
// snapshot against concurrent checkpoints and compactions); decoding
// and hashing run outside the lock.
func (d *DurableStore[K, V, A, E]) verifyPass() (corrupt []string, files, bytes int, err error) {
	d.ckptMu.Lock()
	names, lerr := d.fs.List()
	if lerr != nil {
		d.ckptMu.Unlock()
		return nil, 0, 0, lerr
	}
	ckpts, walGens := parseDurableDir(names)
	sealed := d.w.sealedBelow()
	ckptData := make(map[int][]byte, len(ckpts))
	walData := make(map[int][]byte, len(walGens))
	for _, idx := range ckpts {
		if data, rerr := d.fs.ReadFile(ckptName(idx)); rerr == nil {
			ckptData[idx] = data
		}
	}
	for _, g := range walGens {
		if g >= sealed {
			continue // open generation: legitimately unfinished
		}
		if data, rerr := d.fs.ReadFile(walName(g)); rerr == nil {
			walData[g] = data
		}
	}
	d.ckptMu.Unlock()

	return d.verifyChainAndWAL(ckpts, ckptData, walGens, walData)
}

// verifyChainAndWAL checks the in-memory copies of the chain and sealed
// WAL files. A chain file that fails to decode marks only itself
// corrupt; later files of that chain are skipped (unverifiable without
// it, and repair rewrites everything anyway).
func (d *DurableStore[K, V, A, E]) verifyChainAndWAL(ckpts []int, ckptData map[int][]byte, walGens []int, walData map[int][]byte) (corrupt []string, files, bytes int, err error) {
	shards := d.s.NumShards()
	var tb *pam.DecodeTable[K, V, A, E]
	skipChain := false
	for _, idx := range ckpts {
		data, ok := ckptData[idx]
		if !ok {
			continue // raced with a compaction's deletes; epoch check handles it
		}
		files++
		bytes += len(data)
		if _, firstID, hok := ckptHeader(data); hok && firstID == 1 {
			tb = pam.NewDecodeTable[K, V, A, E](d.opts)
			skipChain = false
		}
		if skipChain {
			continue
		}
		if tb == nil {
			// No base seen yet: a stale pre-base leftover; verify it in
			// isolation is impossible, so skip (recovery deletes these).
			continue
		}
		if _, _, derr := decodeStoreCheckpoint(tb, d.codec, shards, data); derr != nil {
			corrupt = append(corrupt, ckptName(idx))
			skipChain = true
		}
	}
	for _, g := range walGens {
		data, ok := walData[g]
		if !ok {
			continue
		}
		files++
		bytes += len(data)
		if _, valid := decodeWALFile(d.w.enc, data); valid != len(data) {
			corrupt = append(corrupt, walName(g))
		}
	}
	return corrupt, files, bytes, nil
}

// Verify runs one synchronous, check-only scrub pass over all sealed
// durable files and returns the names of corrupt ones (nil when the
// store is clean). It never modifies files; the background scrubber
// (DurableConfig.ScrubEvery) is the quarantining, self-repairing
// variant.
func (d *DurableStore[K, V, A, E]) Verify() ([]string, error) {
	corrupt, _, _, err := d.verifyPass()
	return corrupt, err
}

// repairCorrupt is the scrubber's action on corrupt files: quarantine
// them, then compact — the live in-memory state is the redundancy the
// fresh base checkpoint is rebuilt from, after which the quarantined
// files are not part of any chain.
func (d *DurableStore[K, V, A, E]) repairCorrupt(corrupt []string) error {
	d.ckptMu.Lock()
	for _, name := range corrupt {
		if _, err := quarantineFile(d.fs, name); err != nil && !errors.Is(err, os.ErrNotExist) {
			d.ckptMu.Unlock()
			return err
		}
	}
	d.epoch.Add(1)
	d.ckptMu.Unlock()
	_, err := d.Compact()
	return err
}

// ScrubStats reports the background scrubber's lifetime counters (zero
// when no scrubber is configured).
func (d *DurableStore[K, V, A, E]) ScrubStats() ScrubStats {
	if d.scrub == nil {
		return ScrubStats{}
	}
	return d.scrub.Stats()
}

// Err returns the first background error — from an automatic
// (CheckpointEvery) checkpoint, an automatic compaction, or the
// scrubber — which cannot be reported by the Apply that triggered it.
func (d *DurableStore[K, V, A, E]) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.bgErr
}

func (d *DurableStore[K, V, A, E]) setErr(err error) {
	d.errMu.Lock()
	if d.bgErr == nil {
		d.bgErr = err
	}
	d.errMu.Unlock()
}

// Close stops the scrubber and the shard goroutines and flushes the
// WAL. In-flight futures resolve (durably committed) before Close
// returns; subsequent writes return ErrClosed.
func (d *DurableStore[K, V, A, E]) Close() error {
	if d.scrub != nil {
		d.scrub.Stop()
	}
	d.s.Close()
	return d.w.Close()
}
