package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"

	"repro/pam"
)

// Durable serving: incremental block checkpoints plus the
// sequencer-granularity WAL (wal.go), glued by a recovery protocol that
// restores exactly an acknowledged-closed prefix of the write sequence.
//
// On-disk layout (one flat FS namespace per store):
//
//	ckpt-%06d   checkpoint files — an incremental chain for DurableStore
//	wal-%06d    WAL generation g: the batches sequenced between
//	            checkpoint g and checkpoint g+1
//	ckpt.tmp,   scratch for atomic publication (write + sync + rename);
//	wal.tmp     a crash leaves at worst a stale tmp, never a torn
//	            published file
//
// Checkpoint file format (DurableStore):
//
//	"PAMCKPT1" | uvarint seq | uvarint shards | uvarint firstID |
//	uvarint numRecords | records | shards × uvarint rootID |
//	u32le crc32(everything before)
//
// The records are the structure-sharing delta encoding of
// internal/core: each file carries only the tree records created since
// the previous checkpoint (firstID states where the chain must resume;
// a mismatch means a missing or reordered file). Recovery decodes the
// chain oldest-first into one table, takes the last file's per-shard
// roots, replays the WAL generations from the last checkpoint on top,
// and reseeds the encoder's record set from the decoded table so the
// chain continues incrementally across restarts.
//
// Crash-safety invariants:
//
//   - Apply acknowledges only after the batch's WAL record is fsynced;
//     WAL order equals sequence order (the engine's logAppend hook runs
//     under the sequencer lock), so the durable batches always form a
//     gapless prefix extending past every acknowledged batch.
//   - A checkpoint is published by rename after a full sync; a crash
//     mid-checkpoint leaves the previous chain + WAL intact.
//   - WAL generations are flushed strictly in order, so recovery's
//     stop-at-first-torn-record rule drops only unacknowledged batches.

// Errors recovery and the decoders return. All file parsing is
// defensive: corrupt bytes yield an error, never a panic.
var (
	// ErrCorruptFile reports a checkpoint or WAL file whose contents
	// fail the checksum or framing checks.
	ErrCorruptFile = errors.New("serve: corrupt durable file")
	// ErrBrokenChain reports a checkpoint chain with a missing or
	// out-of-order incremental file (firstID mismatch).
	ErrBrokenChain = errors.New("serve: broken checkpoint chain")
)

const (
	ckptMagic   = "PAMCKPT1"
	ckptTmpName = "ckpt.tmp"
	walTmpName  = "wal.tmp"
)

func ckptName(idx int) string { return fmt.Sprintf("ckpt-%06d", idx) }

// DurableConfig configures the durability layer of a store.
type DurableConfig struct {
	// FS is the filesystem holding this store's files (required). Use
	// OSFS{Dir: ...} for a real directory, MemFS for fault injection.
	FS FS
	// CheckpointEvery, when positive, takes an automatic checkpoint
	// after every that-many acknowledged batches. A failed automatic
	// checkpoint does not fail the Apply that triggered it (the batch
	// is already durable); the error is surfaced by Err.
	CheckpointEvery int
	// Tuning configures the async write pipeline of the underlying
	// store (mailbox bounds, backpressure, flush triggers).
	// Tuning.AutoRebalance is ignored: a durable store's routing is
	// part of its on-disk schema and never changes.
	Tuning Tuning
}

// CheckpointStats reports what one checkpoint wrote.
type CheckpointStats struct {
	// Seq is the checkpoint's position in the write sequence: it covers
	// exactly the batches sequenced below Seq.
	Seq uint64
	// Index is the checkpoint file's chain index.
	Index int
	// Records is the number of new tree records written — the
	// incremental delta. After k updates to an n-entry store this is
	// O(k · polylog n), not O(n): blocks shared with the previous
	// checkpoint are referenced, not rewritten.
	Records int
	// Bytes is the checkpoint file's size.
	Bytes int
}

// DurableStore wraps a hash-partitioned Store with a write-ahead log
// and incremental block checkpoints. Apply acknowledges a batch only
// once its WAL record is fsynced (group commit across concurrent
// writers); OpenDurableStore recovers the latest checkpoint plus the
// WAL suffix — a gapless prefix of the write sequence containing every
// batch ever acknowledged, possibly followed by durable-but-unobserved
// batches that crashed mid-acknowledgment.
//
// The same opts, shard count, hash, and codec must be passed at every
// reopen; they are the store's schema, not part of the files.
// Serialization requires opts.Pool == false. All methods are safe for
// concurrent use.
type DurableStore[K, V, A any, E pam.Aug[K, V, A]] struct {
	s     *Store[K, V, A, E]
	fs    FS
	w     *wal[Op[K, V]]
	codec *pam.Codec[K, V]

	ckptMu sync.Mutex // serializes checkpoints; guards rs
	rs     *pam.RecordSet[K, V, A]

	every   uint64
	batches atomic.Uint64

	errMu sync.Mutex
	bgErr error
}

// storeOpCodec encodes one Op for WAL records: kind byte, key, and (for
// puts) value.
func storeOpCodec[K, V any](c *pam.Codec[K, V]) opCodec[Op[K, V]] {
	return opCodec[Op[K, V]]{
		append: func(buf []byte, op Op[K, V]) []byte {
			buf = append(buf, byte(op.Kind))
			buf = c.AppendKey(buf, op.Key)
			if op.Kind == OpPut {
				buf = c.AppendVal(buf, op.Val)
			}
			return buf
		},
		at: func(data []byte) (Op[K, V], int, error) {
			var op Op[K, V]
			if len(data) == 0 {
				return op, 0, ErrCorruptFile
			}
			op.Kind = OpKind(data[0])
			if op.Kind != OpPut && op.Kind != OpDelete {
				return op, 0, ErrCorruptFile
			}
			used := 1
			k, n, err := c.KeyAt(data[used:])
			if err != nil {
				return op, 0, err
			}
			op.Key = k
			used += n
			if op.Kind == OpPut {
				v, n, err := c.ValAt(data[used:])
				if err != nil {
					return op, 0, err
				}
				op.Val = v
				used += n
			}
			return op, used, nil
		},
	}
}

// parseDurableDir splits a file listing into checkpoint indices and WAL
// generations, each ascending; other names (tmp scratch) are ignored.
func parseDurableDir(names []string) (ckpts, walGens []int) {
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(name, "ckpt-%06d", &n); err == nil {
			ckpts = append(ckpts, n)
		} else if _, err := fmt.Sscanf(name, "wal-%06d", &n); err == nil {
			walGens = append(walGens, n)
		}
	}
	sort.Ints(ckpts)
	sort.Ints(walGens)
	return ckpts, walGens
}

// writeFileAtomic publishes data under final via tmp + sync + rename:
// after any crash, final holds either its old contents or all of data.
func writeFileAtomic(fs FS, tmp, final string, data []byte) error {
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, final)
}

// decodeStoreCheckpoint decodes one chain file into the accumulating
// table and returns its sequence number and per-shard root ids.
func decodeStoreCheckpoint[K, V, A any, E pam.Aug[K, V, A]](tb *pam.DecodeTable[K, V, A, E], c *pam.Codec[K, V], shards int, data []byte) (uint64, []uint64, error) {
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, ErrCorruptFile
	}
	body := data[: len(data)-4 : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return 0, nil, ErrCorruptFile
	}
	p := body[len(ckptMagic):]
	var hdr [4]uint64
	for i := range hdr {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, nil, ErrCorruptFile
		}
		hdr[i] = v
		p = p[n:]
	}
	seq, nShards, firstID, nRecs := hdr[0], hdr[1], hdr[2], hdr[3]
	if nShards != uint64(shards) {
		return 0, nil, fmt.Errorf("%w: checkpoint has %d shards, store has %d", ErrCorruptFile, nShards, shards)
	}
	if firstID != tb.NextID() {
		return 0, nil, ErrBrokenChain
	}
	// Every record is at least two bytes; a larger count is framing
	// corruption, not work to attempt.
	if nRecs > uint64(len(p)) {
		return 0, nil, ErrCorruptFile
	}
	rest, err := tb.DecodeRecords(c, p, int(nRecs))
	if err != nil {
		return 0, nil, err
	}
	roots := make([]uint64, shards)
	for i := range roots {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, nil, ErrCorruptFile
		}
		roots[i] = v
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return 0, nil, ErrCorruptFile
	}
	return seq, roots, nil
}

// OpenDurableStore opens (or creates) a durable hash-partitioned store
// on cfg.FS: it loads the checkpoint chain, replays the WAL suffix, and
// resumes the write sequence where the recovered prefix ends. See
// DurableStore for the recovery guarantee.
func OpenDurableStore[K, V, A any, E pam.Aug[K, V, A]](opts pam.Options, shards int, hash func(K) uint64, codec *pam.Codec[K, V], cfg DurableConfig) (*DurableStore[K, V, A, E], error) {
	if cfg.FS == nil {
		return nil, errors.New("serve: DurableConfig.FS is required")
	}
	if opts.Pool {
		return nil, errors.New("serve: durable stores require Options.Pool == false")
	}
	if shards < 1 {
		return nil, errors.New("serve: OpenDurableStore needs at least one shard")
	}
	names, err := cfg.FS.List()
	if err != nil {
		return nil, err
	}
	ckpts, walGens := parseDurableDir(names)

	// Load the checkpoint chain, oldest first, into one decode table.
	tb := pam.NewDecodeTable[K, V, A, E](opts)
	roots := make([]uint64, shards)
	var seq uint64
	lastIdx := 0
	for _, idx := range ckpts {
		data, err := cfg.FS.ReadFile(ckptName(idx))
		if err != nil {
			return nil, err
		}
		s, r, err := decodeStoreCheckpoint(tb, codec, shards, data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ckptName(idx), err)
		}
		seq, roots, lastIdx = s, r, idx
	}
	states := make([]pam.AugMap[K, V, A, E], shards)
	for i := range states {
		m, err := tb.Map(roots[i])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ckptName(lastIdx), err)
		}
		states[i] = m
	}

	// Replay the WAL generations from the last checkpoint on: batches
	// must continue the sequence gaplessly; a torn tail ends replay and
	// is trimmed so the resumed log appends onto a clean file.
	n := uint64(shards)
	route := func(o Op[K, V]) int { return int(hash(o.Key) % n) }
	enc := storeOpCodec(codec)
	next := seq
	maxGen := lastIdx
	for _, g := range walGens {
		if g < lastIdx {
			continue // superseded by the checkpoint; awaiting removal
		}
		if g > maxGen {
			maxGen = g
		}
		data, err := cfg.FS.ReadFile(walName(g))
		if err != nil {
			return nil, err
		}
		batches, valid := decodeWALFile(enc, data)
		for _, b := range batches {
			if b.seq != next {
				return nil, fmt.Errorf("%s: %w: batch seq %d, want %d", walName(g), ErrCorruptFile, b.seq, next)
			}
			per := make([][]Op[K, V], shards)
			for _, op := range b.ops {
				i := route(op)
				per[i] = append(per[i], op)
			}
			for i, sub := range per {
				if len(sub) > 0 {
					states[i] = applyOps(states[i], sub)
				}
			}
			next++
		}
		if valid != len(data) {
			if err := writeFileAtomic(cfg.FS, walTmpName, walName(g), data[:valid]); err != nil {
				return nil, err
			}
		}
	}

	w := newWAL(cfg.FS, enc, maxGen, next)
	d := &DurableStore[K, V, A, E]{
		fs:    cfg.FS,
		w:     w,
		codec: codec,
		rs:    tb.RecordSet(),
		every: uint64(cfg.CheckpointEvery),
	}
	// The commit hook runs on the engine's resolver, in sequence order,
	// after the batch is applied: group-commit the WAL through seq, then
	// count the batch toward the automatic checkpoint. A future
	// therefore resolves only once its batch is fsynced.
	h := hooks[Op[K, V]]{logAppend: w.appendLocked, commit: d.commitSeq}
	d.s = &Store[K, V, A, E]{eng: newEngineAt(states, route, applyOps[K, V, A, E], next, h, cfg.Tuning.withDefaults())}
	return d, nil
}

// commitSeq is the resolver-side durability step: fsync the WAL through
// seq (instant when a group commit already covered it) and take the
// periodic automatic checkpoint.
func (d *DurableStore[K, V, A, E]) commitSeq(seq uint64) error {
	if err := d.w.Sync(seq); err != nil {
		return err
	}
	if d.every > 0 && d.batches.Add(1)%d.every == 0 {
		// ErrClosed means the engine is shutting down under the resolver
		// while it drains the final futures; the batches are already
		// durable, so a skipped periodic checkpoint is not an error.
		if _, err := d.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
			d.setErr(err)
		}
	}
	return nil
}

// Apply submits one write batch and blocks until every involved shard
// has applied it AND its WAL record is durable; only then is the batch
// acknowledged (nil error). On a WAL error the batch is unacknowledged:
// it may or may not survive a crash, but never breaks the recovered
// prefix; the returned sequence number is still the batch's. ErrClosed
// and ErrOverloaded mean the batch was never admitted at all.
func (d *DurableStore[K, V, A, E]) Apply(ops []Op[K, V]) (uint64, error) {
	return d.s.eng.applyBatch(ops)
}

// ApplyAsync submits one write batch fire-and-forget and returns its
// completion future. The future resolves — in global sequence order —
// only after the batch's WAL record is fsynced, so a nil Ack.Err is
// the same durability guarantee the sync Apply gives.
func (d *DurableStore[K, V, A, E]) ApplyAsync(ops []Op[K, V]) (*Future, error) {
	return d.s.eng.applyAsync(ops, false)
}

// Put durably stores (k, v) and returns the write's sequence number.
func (d *DurableStore[K, V, A, E]) Put(k K, v V) (uint64, error) {
	return d.Apply([]Op[K, V]{{Kind: OpPut, Key: k, Val: v}})
}

// PutAsync is the fire-and-forget Put; see ApplyAsync.
func (d *DurableStore[K, V, A, E]) PutAsync(k K, v V) (*Future, error) {
	return d.ApplyAsync([]Op[K, V]{{Kind: OpPut, Key: k, Val: v}})
}

// Delete durably removes k and returns the write's sequence number.
func (d *DurableStore[K, V, A, E]) Delete(k K) (uint64, error) {
	return d.Apply([]Op[K, V]{{Kind: OpDelete, Key: k}})
}

// DeleteAsync is the fire-and-forget Delete; see ApplyAsync.
func (d *DurableStore[K, V, A, E]) DeleteAsync(k K) (*Future, error) {
	return d.ApplyAsync([]Op[K, V]{{Kind: OpDelete, Key: k}})
}

// Stats samples the per-shard pipeline counters; see Store.Stats.
func (d *DurableStore[K, V, A, E]) Stats() []ShardStats { return d.s.Stats() }

// Snapshot assembles a consistent cross-shard view; see Store.Snapshot.
func (d *DurableStore[K, V, A, E]) Snapshot() View[K, V, A, E] { return d.s.Snapshot() }

// NumShards returns the partition count.
func (d *DurableStore[K, V, A, E]) NumShards() int { return d.s.NumShards() }

// Checkpoint writes the next incremental checkpoint: it snapshots all
// shards at one sequence point (rotating the WAL generation at exactly
// that point), encodes only the tree records created since the previous
// checkpoint, publishes the file atomically, and then drops the WAL
// generations the new checkpoint supersedes. Concurrent writes proceed;
// concurrent Checkpoint calls serialize.
func (d *DurableStore[K, V, A, E]) Checkpoint() (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	var idx int
	states, _, seq, _, ok := d.s.eng.trySnapshotWith(func() { idx = d.w.rotateLocked() })
	if !ok {
		return CheckpointStats{}, ErrClosed
	}

	// Encode against a clone: ids are committed only with the file, so
	// a failed attempt never burns ids the on-disk chain hasn't seen.
	rs := d.rs.Clone()
	firstID := rs.NextID()
	var recs []byte
	roots := make([]uint64, len(states))
	wrote := 0
	for i, m := range states {
		var w int
		recs, roots[i], w = m.EncodeDelta(rs, d.codec, recs)
		wrote += w
	}
	file := append([]byte(nil), ckptMagic...)
	file = binary.AppendUvarint(file, seq)
	file = binary.AppendUvarint(file, uint64(len(states)))
	file = binary.AppendUvarint(file, firstID)
	file = binary.AppendUvarint(file, uint64(wrote))
	file = append(file, recs...)
	for _, r := range roots {
		file = binary.AppendUvarint(file, r)
	}
	file = binary.LittleEndian.AppendUint32(file, crc32.ChecksumIEEE(file))
	if err := writeFileAtomic(d.fs, ckptTmpName, ckptName(idx), file); err != nil {
		return CheckpointStats{}, err
	}
	d.rs = rs
	// Old WAL generations are superseded, but only drop them once their
	// records are flushed, so no in-flight group commit is still writing
	// the files being removed.
	if seq == 0 || d.w.Sync(seq-1) == nil {
		dropOldWALs(d.fs, idx)
	}
	return CheckpointStats{Seq: seq, Index: idx, Records: wrote, Bytes: len(file)}, nil
}

// dropOldWALs removes WAL generations below idx, best-effort: a leftover
// file is ignored by the next recovery and removed by the next
// checkpoint.
func dropOldWALs(fs FS, idx int) {
	names, err := fs.List()
	if err != nil {
		return
	}
	_, gens := parseDurableDir(names)
	for _, g := range gens {
		if g < idx {
			fs.Remove(walName(g))
		}
	}
}

// Err returns the first error from an automatic (CheckpointEvery)
// checkpoint, which cannot be reported by the Apply that triggered it.
func (d *DurableStore[K, V, A, E]) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.bgErr
}

func (d *DurableStore[K, V, A, E]) setErr(err error) {
	d.errMu.Lock()
	if d.bgErr == nil {
		d.bgErr = err
	}
	d.errMu.Unlock()
}

// Close stops the shard goroutines and flushes the WAL. In-flight
// futures resolve (durably committed) before Close returns; subsequent
// writes return ErrClosed.
func (d *DurableStore[K, V, A, E]) Close() error {
	d.s.Close()
	return d.w.Close()
}
