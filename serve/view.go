package serve

import "repro/pam"

// View is a consistent cross-shard snapshot of a Store: one frozen
// persistent map per shard, assembled at a single point of the global
// write sequence (see the package comment for the exact guarantee).
// Views are immutable, valid forever, and safe to read from any
// goroutine; taking one copies no entries.
type View[K, V, A any, E pam.Aug[K, V, A]] struct {
	shards   []pam.AugMap[K, V, A, E]
	versions []uint64
	epochs   []uint64 // non-nil only for replica views (ReaderView)
	seq      uint64
	route    func(Op[K, V]) int
	ranged   bool
}

// Seq returns the snapshot's position in the global write sequence: the
// view contains exactly the batches sequenced before it. Replica views
// (ReaderView) are not cut at a sequence point and report 0.
func (v View[K, V, A, E]) Seq() uint64 { return v.seq }

// Versions returns the per-shard version vector (applied sub-batch
// counts, bumped once more per rebalance); treat it as read-only.
// Successive snapshots have componentwise nondecreasing vectors.
func (v View[K, V, A, E]) Versions() []uint64 { return v.versions }

// Epochs returns the per-shard replica-publication epochs for views
// from ReaderView (componentwise nondecreasing across successive
// replica views; each shard's epoch bumps once per publication), or
// nil for marker-based snapshots. Treat it as read-only.
func (v View[K, V, A, E]) Epochs() []uint64 { return v.epochs }

// NumShards returns the partition count.
func (v View[K, V, A, E]) NumShards() int { return len(v.shards) }

// Shard exposes one frozen shard map (for per-shard diagnostics and
// tests).
func (v View[K, V, A, E]) Shard(i int) pam.AugMap[K, V, A, E] { return v.shards[i] }

// Find returns the value at k, routed to the owning shard: one O(log)
// lookup, no cross-shard work.
func (v View[K, V, A, E]) Find(k K) (V, bool) {
	return v.shards[v.route(Op[K, V]{Key: k})].Find(k)
}

// Contains reports whether k is present.
func (v View[K, V, A, E]) Contains(k K) bool {
	_, ok := v.Find(k)
	return ok
}

// Size returns the total entry count.
func (v View[K, V, A, E]) Size() int64 {
	var n int64
	for _, m := range v.shards {
		n += m.Size()
	}
	return n
}

// AugVal folds the shards' augmented values in shard order. Exact for
// range-partitioned stores; hash-partitioned stores interleave key
// ranges across shards, so the fold additionally requires Combine to be
// commutative (true of the ready-made entries).
func (v View[K, V, A, E]) AugVal() A {
	var e E
	a := e.Id()
	for _, m := range v.shards {
		a = e.Combine(a, m.AugVal())
	}
	return a
}

// AugRange folds the shards' augmented values over lo <= key <= hi, in
// shard order; the same commutativity caveat as AugVal applies to
// hash-partitioned stores. O(shards · log n).
func (v View[K, V, A, E]) AugRange(lo, hi K) A {
	var e E
	a := e.Id()
	for _, m := range v.shards {
		a = e.Combine(a, m.AugRange(lo, hi))
	}
	return a
}

// cursor is one shard's position in the merged iteration.
type cursor[K, V any] struct {
	k  K
	v  V
	ok bool
}

// seekCursor positions a cursor at the first entry with key >= lo (nil
// lo: the shard's first entry).
func seekCursor[K, V, A any, E pam.Aug[K, V, A]](m pam.AugMap[K, V, A, E], lo *K) cursor[K, V] {
	if lo == nil {
		k, val, ok := m.First()
		return cursor[K, V]{k: k, v: val, ok: ok}
	}
	if val, ok := m.Find(*lo); ok {
		return cursor[K, V]{k: *lo, v: val, ok: true}
	}
	k, val, ok := m.Next(*lo)
	return cursor[K, V]{k: k, v: val, ok: ok}
}

// forEachMerged visits entries in ascending key order, starting at lo
// (nil: the smallest key) and stopping after hi (nil: the largest),
// until visit returns false. Range-partitioned shards are already
// disjoint ascending key ranges, so they iterate natively one after
// another at O(1) amortized per entry; hash-partitioned shards pay a
// k-way merge — O(shards) key comparisons plus one O(log n) successor
// lookup per visited entry.
func (v View[K, V, A, E]) forEachMerged(lo, hi *K, visit func(K, V) bool) {
	var e E
	if v.ranged {
		// Callers pass either no bounds (ForEach) or both (ForEachRange).
		stopped := false
		wrapped := func(k K, val V) bool {
			if !visit(k, val) {
				stopped = true
				return false
			}
			return true
		}
		for _, m := range v.shards {
			if lo != nil && hi != nil {
				m.ForEachRange(*lo, *hi, wrapped)
			} else {
				m.ForEach(wrapped)
			}
			if stopped {
				return
			}
		}
		return
	}
	cur := make([]cursor[K, V], len(v.shards))
	for i, m := range v.shards {
		cur[i] = seekCursor(m, lo)
	}
	for {
		best := -1
		for i := range cur {
			if cur[i].ok && (best < 0 || e.Less(cur[i].k, cur[best].k)) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		c := cur[best]
		// c.k is the global minimum of the remaining entries, so once it
		// passes hi, everything else does too.
		if hi != nil && e.Less(*hi, c.k) {
			return
		}
		if !visit(c.k, c.v) {
			return
		}
		k, val, ok := v.shards[best].Next(c.k)
		cur[best] = cursor[K, V]{k: k, v: val, ok: ok}
	}
}

// ForEach visits all entries in ascending key order (merged across
// shards) until visit returns false.
func (v View[K, V, A, E]) ForEach(visit func(K, V) bool) { v.forEachMerged(nil, nil, visit) }

// ForEachRange visits entries with lo <= key <= hi in ascending key
// order until visit returns false.
func (v View[K, V, A, E]) ForEachRange(lo, hi K, visit func(K, V) bool) {
	v.forEachMerged(&lo, &hi, visit)
}

// Entries materializes all entries in ascending key order. For
// range-partitioned stores this concatenates the shards' parallel
// Entries; hash-partitioned stores pay the merged iteration.
func (v View[K, V, A, E]) Entries() []pam.KV[K, V] {
	out := make([]pam.KV[K, V], 0, v.Size())
	if v.ranged {
		for _, m := range v.shards {
			out = append(out, m.Entries()...)
		}
		return out
	}
	v.ForEach(func(k K, val V) bool {
		out = append(out, pam.KV[K, V]{Key: k, Val: val})
		return true
	})
	return out
}

// Keys materializes all keys in ascending order.
func (v View[K, V, A, E]) Keys() []K {
	out := make([]K, 0, v.Size())
	if v.ranged {
		for _, m := range v.shards {
			out = append(out, m.Keys()...)
		}
		return out
	}
	v.ForEach(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}
